package compliance_test

import (
	"errors"
	"testing"

	"susc/internal/compliance"
	"susc/internal/hexpr"
	"susc/internal/paperex"
)

// TestWitnessPairsTraceTheRun checks that the witness carries the full
// product-state sequence: Pairs[0] is the initial pair, each step follows
// an edge labelled with the corresponding channel, and the last pair is
// the stuck one.
func TestWitnessPairsTraceTheRun(t *testing.T) {
	brBody := requestBody(t, paperex.Broker(), "r3")
	p, err := compliance.NewProduct(brBody, paperex.S2())
	if err != nil {
		t.Fatal(err)
	}
	w := p.FindWitness()
	if w == nil {
		t.Fatal("expected a witness")
	}
	if len(w.Pairs) != len(w.Path)+1 {
		t.Fatalf("len(Pairs) = %d, want len(Path)+1 = %d", len(w.Pairs), len(w.Path)+1)
	}
	if w.Pairs[0].Key() != p.States[0].Key() {
		t.Errorf("Pairs[0] is not the initial pair: %s", w.Pairs[0])
	}
	if w.Pairs[len(w.Pairs)-1].Key() != w.Stuck.Key() {
		t.Errorf("last pair %s is not the stuck pair %s", w.Pairs[len(w.Pairs)-1], w.Stuck)
	}
	// every step replays over an edge with the recorded channel
	state := 0
	for i, ch := range w.Path {
		next := -1
		for _, e := range p.Edges[state] {
			if e.Channel == ch && p.States[e.To].Key() == w.Pairs[i+1].Key() {
				next = e.To
				break
			}
		}
		if next < 0 {
			t.Fatalf("step %d (%s) does not replay from state %d", i, ch, state)
		}
		state = next
	}
	if !p.Final[state] {
		t.Error("replayed run does not end in a stuck state")
	}
}

// TestCheckReturnsTypedFailure checks the typed error carries the witness
// and keeps the historical message text.
func TestCheckReturnsTypedFailure(t *testing.T) {
	brBody := requestBody(t, paperex.Broker(), "r3")
	err := compliance.Check(brBody, paperex.S2())
	var f *compliance.Failure
	if !errors.As(err, &f) {
		t.Fatalf("err = %T, want *Failure", err)
	}
	if f.Witness == nil || len(f.Witness.Pairs) == 0 {
		t.Fatal("failure must carry a structured witness")
	}
	want := "compliance: not compliant: " + f.Witness.String()
	if err.Error() != want {
		t.Errorf("message = %q, want %q", err.Error(), want)
	}
}

// TestWitnessImmediateStuck covers the zero-length path: a deadlocked
// initial pair yields Pairs == [stuck] and an empty Path.
func TestWitnessImmediateStuck(t *testing.T) {
	recv := hexpr.RecvThen("a", hexpr.Eps())
	p, err := compliance.NewProduct(recv, recv)
	if err != nil {
		t.Fatal(err)
	}
	w := p.FindWitness()
	if w == nil {
		t.Fatal("recv|recv deadlocks immediately")
	}
	if len(w.Path) != 0 || len(w.Pairs) != 1 {
		t.Errorf("Path = %v, Pairs = %v", w.Path, w.Pairs)
	}
}
