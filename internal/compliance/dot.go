package compliance

import (
	"fmt"
	"strings"
)

// DOT renders the product automaton in Graphviz dot syntax: stuck (final)
// states are drawn as red double circles, terminated-client states as
// green double circles, and edges carry the synchronised channel.
func (p *Product) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	b.WriteString("  __start [shape=point];\n  __start -> p0;\n")
	for i, st := range p.States {
		attrs := []string{fmt.Sprintf("tooltip=%q", st.String())}
		switch {
		case p.Final[i]:
			attrs = append(attrs, "shape=doublecircle", "color=red")
		case len(p.Edges[i]) == 0:
			attrs = append(attrs, "shape=doublecircle", "color=darkgreen")
		}
		fmt.Fprintf(&b, "  p%d [%s];\n", i, strings.Join(attrs, ", "))
	}
	for i, es := range p.Edges {
		for _, e := range es {
			fmt.Fprintf(&b, "  p%d -> p%d [label=%q];\n", i, e.To, e.Channel)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
