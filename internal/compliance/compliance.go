// Package compliance decides whether a client and a service are compliant
// (§4 of the paper): every message either party decides to send is matched
// by a corresponding input of the other, so their session always
// progresses and the client can terminate.
//
// Two independent deciders are provided and cross-checked by the tests:
//
//   - the product automaton H₁ ⊗ H₂ of Definition 5, whose final states are
//     exactly the stuck configurations; compliance holds iff its language
//     is empty (Theorem 1);
//   - a direct checker implementing Definition 4 via observable ready sets
//     (condition (1)) on all reachable pairs, i.e. the ready-set side of
//     Lemma 1.
//
// Compliance is an invariant of the product (Theorem 2) and hence a safety
// property (Corollary 1), which is what makes it model-checkable.
package compliance

import (
	"fmt"
	"strings"

	"susc/internal/autom"
	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/intern"
	"susc/internal/lts"
)

// Pair is a state of the product automaton: a pair of contract residuals.
type Pair struct {
	Client hexpr.Expr
	Server hexpr.Expr
}

// Key returns the canonical key of the pair.
func (p Pair) Key() string { return p.Client.Key() + " | " + p.Server.Key() }

func (p Pair) String() string {
	return "<" + hexpr.Pretty(p.Client) + " , " + hexpr.Pretty(p.Server) + ">"
}

// Edge is a synchronisation step of the product: the label records which
// channel synchronised (the observable action is τ; the channel is kept
// for diagnostics).
type Edge struct {
	Channel string
	To      int
}

// Product is the product automaton A = H₁! ⊗ H₂! of Definition 5,
// restricted to its reachable part. Final states are the stuck
// configurations; per the definition, final states have no outgoing
// transitions.
type Product struct {
	States []Pair
	Edges  [][]Edge
	Final  []bool
}

// MaxStates bounds product construction; guarded tail recursion keeps real
// contracts far below it.
const MaxStates = 1 << 20

// NewProduct builds the product automaton of the two expressions. The
// arguments are projected onto their communication actions first, so any
// closed well-formed history expressions are accepted.
func NewProduct(client, server hexpr.Expr) (*Product, error) {
	return NewProductWith(nil, nil, client, server)
}

// NewProductWith is NewProduct over a caller-supplied interning table and
// step function, so repeated constructions (e.g. through a shared
// memo.Cache) reuse interning and one-step computation across products.
// Either argument may be nil: tab defaults to a fresh table, step to
// lts.Step. The construction memoises pairs on packed interned IDs
// instead of the recursive Pair.Key() strings.
func NewProductWith(tab *intern.Table, step func(hexpr.Expr) []lts.Transition,
	client, server hexpr.Expr) (*Product, error) {
	return NewProductProjected(tab, step, contract.Project(client), contract.Project(server))
}

// NewProductProjected is NewProductWith over arguments already projected
// onto their communication actions (H!), so callers memoising projections
// (memo.Cache) skip re-projecting per product.
func NewProductProjected(tab *intern.Table, step func(hexpr.Expr) []lts.Transition,
	h1, h2 hexpr.Expr) (*Product, error) {

	if !hexpr.Closed(h1) || !hexpr.Closed(h2) {
		return nil, fmt.Errorf("compliance: contracts must be closed")
	}
	if tab == nil {
		tab = intern.NewTable()
	}
	if step == nil {
		step = lts.Step
	}
	p := &Product{}
	index := map[uint64]int{}
	key := func(pr Pair) uint64 {
		return intern.Pack(tab.Expr(pr.Client), tab.Expr(pr.Server))
	}
	var queue []Pair
	add := func(pr Pair) int {
		k := key(pr)
		if i, ok := index[k]; ok {
			return i
		}
		i := len(p.States)
		index[k] = i
		p.States = append(p.States, pr)
		p.Edges = append(p.Edges, nil)
		p.Final = append(p.Final, false)
		queue = append(queue, pr)
		return i
	}
	add(Pair{Client: h1, Server: h2})
	for done := 0; done < len(queue); done++ {
		if len(p.States) > MaxStates {
			return nil, fmt.Errorf("compliance: product exceeds %d states", MaxStates)
		}
		pr := queue[done]
		i := done
		c := step(pr.Client)
		s := step(pr.Server)
		if stuck(pr, c, s) {
			p.Final[i] = true
			continue // final states have no outgoing transitions (Def. 5)
		}
		for _, tc := range c {
			for _, ts := range s {
				if tc.Label.Comm == ts.Label.Comm.Co() {
					j := add(Pair{Client: tc.To, Server: ts.To})
					p.Edges[i] = append(p.Edges[i], Edge{Channel: tc.Label.Comm.Channel, To: j})
				}
			}
		}
	}
	return p, nil
}

// stuck evaluates the final-state conditions of Definition 5 on a pair,
// given the transitions of the two sides:
//
//	final ⟺ H₁ ≠ ε ∧ (¬(i) ∨ ¬(ii))
//	(i)  some side can fire an output;
//	(ii) every output either side offers is matched by an input of the
//	     other side.
func stuck(pr Pair, c, s []lts.Transition) bool {
	if hexpr.IsNil(pr.Client) {
		return false // the client has terminated: success, not stuck
	}
	someOutput := false
	for _, t := range c {
		if t.Label.Comm.IsSend() {
			someOutput = true
			if !hasComm(s, t.Label.Comm.Co()) {
				return true // ¬(ii): client output unmatched
			}
		}
	}
	for _, t := range s {
		if t.Label.Comm.IsSend() {
			someOutput = true
			if !hasComm(c, t.Label.Comm.Co()) {
				return true // ¬(ii): server output unmatched
			}
		}
	}
	return !someOutput // ¬(i): both sides wait on inputs (or the server died)
}

func hasComm(ts []lts.Transition, c hexpr.Comm) bool {
	for _, t := range ts {
		if t.Label.Comm == c {
			return true
		}
	}
	return false
}

// Empty reports whether the language of the product is empty, i.e. no
// final state is reachable. By Theorem 1 this is exactly compliance.
func (p *Product) Empty() bool {
	for _, f := range p.Final {
		if f {
			return false // every state is reachable by construction
		}
	}
	return true
}

// NFA renders the product as an automaton over {"tau"}, with the stuck
// states accepting — the literal object of Definition 5, suitable for the
// language-emptiness formulation of Theorem 1 via the autom substrate.
func (p *Product) NFA() *autom.NFA {
	n := autom.NewNFA()
	for i := 1; i < len(p.States); i++ {
		n.AddState()
	}
	for i, es := range p.Edges {
		for _, e := range es {
			n.AddEdge(i, "tau", e.To)
		}
		n.SetAccept(i, p.Final[i])
	}
	return n
}

// Witness describes how a non-compliant pair gets stuck: the channel
// synchronisations leading to the stuck pair, the sequence of product
// states traversed (both endpoints' residuals at every step), and the
// stuck pair itself.
type Witness struct {
	Path []string
	// Pairs is the product-state sequence of the run: Pairs[0] is the
	// initial pair, Pairs[len(Path)] == Stuck.
	Pairs []Pair
	Stuck Pair
}

func (w *Witness) String() string {
	if len(w.Path) == 0 {
		return "stuck immediately at " + w.Stuck.String()
	}
	return "after " + strings.Join(w.Path, "·") + " stuck at " + w.Stuck.String()
}

// FindWitness returns a BFS-shortest path to a stuck state, or nil when
// the product is empty (the parties are compliant). Parent pointers keep
// the search linear in the state count; the path and the state sequence
// are reconstructed only for the returned witness.
func (p *Product) FindWitness() *Witness {
	type pred struct {
		prev    int // BFS-parent state, -1 for the start
		channel string
	}
	parent := make([]pred, len(p.States))
	seen := make([]bool, len(p.States))
	queue := []int{0}
	seen[0] = true
	parent[0] = pred{prev: -1}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if p.Final[s] {
			w := &Witness{Stuck: p.States[s]}
			for x := s; x >= 0; x = parent[x].prev {
				w.Pairs = append(w.Pairs, p.States[x])
				if parent[x].prev >= 0 {
					w.Path = append(w.Path, parent[x].channel)
				}
			}
			for i, j := 0, len(w.Path)-1; i < j; i, j = i+1, j-1 {
				w.Path[i], w.Path[j] = w.Path[j], w.Path[i]
			}
			for i, j := 0, len(w.Pairs)-1; i < j; i, j = i+1, j-1 {
				w.Pairs[i], w.Pairs[j] = w.Pairs[j], w.Pairs[i]
			}
			return w
		}
		for _, e := range p.Edges[s] {
			if !seen[e.To] {
				seen[e.To] = true
				parent[e.To] = pred{prev: s, channel: e.Channel}
				queue = append(queue, e.To)
			}
		}
	}
	return nil
}

// Compliant reports H_c ⊢ H_s via the product automaton (Theorem 1). The
// arguments may be arbitrary closed history expressions; they are
// projected first.
func Compliant(client, server hexpr.Expr) (bool, error) {
	p, err := NewProduct(client, server)
	if err != nil {
		return false, err
	}
	return p.Empty(), nil
}

// Failure is the typed non-compliance error: it carries the structured
// witness so callers can inspect the stuck run instead of parsing the
// message.
type Failure struct {
	Witness *Witness
}

func (f *Failure) Error() string {
	return fmt.Sprintf("compliance: not compliant: %s", f.Witness)
}

// Check is Compliant with a witness: it returns nil when compliant and a
// *Failure holding the shortest stuck run otherwise.
func Check(client, server hexpr.Expr) error {
	p, err := NewProduct(client, server)
	if err != nil {
		return err
	}
	if w := p.FindWitness(); w != nil {
		return &Failure{Witness: w}
	}
	return nil
}
