package compliance

import (
	"fmt"

	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/lts"
)

// Substitutable decides a *subcontract* relation in the spirit of the
// theory of contracts the paper builds on [Castagna–Gesbert–Padovani]:
// when it holds, the new service can replace the old one in the repository
// and every client compliant with the old service stays compliant — so
// plans need no re-validation of their compliance side.
//
// The relation is the greatest relation R over contract residuals such
// that (o, n) ∈ R implies: wherever the old service would be
//
//   - waiting (external choice): the new one is also waiting, offering at
//     least the same inputs, every new continuation covered by an old one
//     in R;
//   - sending (internal choice): the new one is also sending, a non-empty
//     subset of the old outputs, every new continuation covered by an old
//     one in R;
//   - terminated: unconstrained — a client compliant with a terminated
//     service has itself terminated, so nothing more happens.
//
// Extra inputs of the new service are never exercised by old clients and
// are unconstrained too. It is computed as a greatest fixpoint: start from
// all reachable pairs and refine away violations. Soundness (not
// completeness) is what is guaranteed and property-tested:
// Substitutable(old,new) ∧ C ⊢ old ⟹ C ⊢ new.
func Substitutable(oldSvc, newSvc hexpr.Expr) (bool, error) {
	o := contract.Project(oldSvc)
	n := contract.Project(newSvc)
	if !hexpr.Closed(o) || !hexpr.Closed(n) {
		return false, fmt.Errorf("compliance: contracts must be closed")
	}
	s := newSubstSpace(o, n)
	return s.gfp(), nil
}

// substPair is one candidate pair of the relation.
type substPair struct {
	o, n hexpr.Expr
}

func (p substPair) key() string { return p.o.Key() + "\x00" + p.n.Key() }

// substSpace holds the over-approximated reachable pair set and the
// channel-indexed successor structure needed by the refinement.
type substSpace struct {
	pairs map[string]substPair
	rel   map[string]bool
	init  substPair
}

func newSubstSpace(o, n hexpr.Expr) *substSpace {
	s := &substSpace{
		pairs: map[string]substPair{},
		rel:   map[string]bool{},
		init:  substPair{o: o, n: n},
	}
	// collect all pairs reachable through any shared channel step (an
	// over-approximation of what the relation can exercise)
	queue := []substPair{s.init}
	s.pairs[s.init.key()] = s.init
	s.rel[s.init.key()] = true
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		oIn, oOut := splitComm(lts.Step(p.o))
		nIn, nOut := splitComm(lts.Step(p.n))
		expand := func(oConts, nConts []hexpr.Expr) {
			for _, oc := range oConts {
				for _, nc := range nConts {
					next := substPair{o: oc, n: nc}
					k := next.key()
					if _, seen := s.pairs[k]; !seen {
						s.pairs[k] = next
						s.rel[k] = true
						queue = append(queue, next)
					}
				}
			}
		}
		for ch, oConts := range oIn {
			expand(oConts, nIn[ch])
		}
		for ch, nConts := range nOut {
			expand(oOut[ch], nConts)
		}
	}
	return s
}

// gfp refines the relation until stable and reports whether the initial
// pair survives.
func (s *substSpace) gfp() bool {
	for {
		changed := false
		for k, p := range s.pairs {
			if !s.rel[k] {
				continue
			}
			if !s.holds(p) {
				s.rel[k] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return s.rel[s.init.key()]
}

// holds evaluates the step condition of the relation on one pair, under
// the current approximation of the relation.
func (s *substSpace) holds(p substPair) bool {
	if hexpr.IsNil(p.o) {
		return true
	}
	oIn, oOut := splitComm(lts.Step(p.o))
	nIn, nOut := splitComm(lts.Step(p.n))
	switch {
	case len(oOut) > 0:
		// sending mode: new sends a non-empty subset with covered conts
		if len(nOut) == 0 {
			return false
		}
		for ch, nConts := range nOut {
			oConts, ok := oOut[ch]
			if !ok || !s.covered(oConts, nConts) {
				return false
			}
		}
		return true
	case len(oIn) > 0:
		// waiting mode: new waits for at least the same inputs, covered
		// conts, and must not volunteer sends
		if len(nOut) > 0 {
			return false
		}
		for ch, oConts := range oIn {
			nConts, ok := nIn[ch]
			if !ok || !s.covered(oConts, nConts) {
				return false
			}
		}
		return true
	default:
		// terminated old service: unconstrained
		return true
	}
}

// covered checks ∀n′ ∃o′: (o′,n′) ∈ rel.
func (s *substSpace) covered(oConts, nConts []hexpr.Expr) bool {
	for _, nc := range nConts {
		found := false
		for _, oc := range oConts {
			if s.rel[substPair{o: oc, n: nc}.key()] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// splitComm groups the communication successors of a contract state by
// direction and channel.
func splitComm(ts []lts.Transition) (ins, outs map[string][]hexpr.Expr) {
	ins = map[string][]hexpr.Expr{}
	outs = map[string][]hexpr.Expr{}
	for _, t := range ts {
		if t.Label.Kind != hexpr.LComm {
			continue
		}
		if t.Label.Comm.IsSend() {
			outs[t.Label.Comm.Channel] = append(outs[t.Label.Comm.Channel], t.To)
		} else {
			ins[t.Label.Comm.Channel] = append(ins[t.Label.Comm.Channel], t.To)
		}
	}
	return ins, outs
}
