package compliance_test

import (
	"math/rand"
	"strings"
	"testing"

	"susc/internal/compliance"
	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/paperex"
)

// requestBody extracts the body of request r of e.
func requestBody(t *testing.T, e hexpr.Expr, r hexpr.RequestID) hexpr.Expr {
	t.Helper()
	body, _, err := contract.RequestBody(e, r)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestFig2ComplianceMatrix reproduces the compliance claims of §2:
// the clients are compliant with the broker; the broker (request r3) is
// compliant with S1, S3, S4 but NOT with S2, which may send Del.
func TestFig2ComplianceMatrix(t *testing.T) {
	br := paperex.Broker()
	brBody := requestBody(t, br, "r3")

	// clients vs broker
	for _, c := range []struct {
		name string
		e    hexpr.Expr
		req  hexpr.RequestID
	}{
		{"C1", paperex.C1(), "r1"},
		{"C2", paperex.C2(), "r2"},
	} {
		body := requestBody(t, c.e, c.req)
		ok, err := compliance.Compliant(body, br)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s should be compliant with Br", c.name)
		}
	}

	// broker vs hotels
	cases := []struct {
		name      string
		hotel     hexpr.Expr
		compliant bool
	}{
		{"S1", paperex.S1(), true},
		{"S2", paperex.S2(), false},
		{"S3", paperex.S3(), true},
		{"S4", paperex.S4(), true},
	}
	for _, c := range cases {
		ok, err := compliance.Compliant(brBody, c.hotel)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.compliant {
			t.Errorf("Br ⊢ %s = %v, want %v", c.name, ok, c.compliant)
		}
	}
}

func TestS2WitnessMentionsDel(t *testing.T) {
	brBody := requestBody(t, paperex.Broker(), "r3")
	err := compliance.Check(brBody, paperex.S2())
	if err == nil {
		t.Fatal("Br must not be compliant with S2")
	}
	if !strings.Contains(err.Error(), "IdC") {
		t.Errorf("witness should pass through IdC: %v", err)
	}
	p, err2 := compliance.NewProduct(brBody, paperex.S2())
	if err2 != nil {
		t.Fatal(err2)
	}
	w := p.FindWitness()
	if w == nil {
		t.Fatal("expected a witness")
	}
	// the stuck pair is reached right after the IdC synchronisation
	if len(w.Path) != 1 || w.Path[0] != "IdC" {
		t.Errorf("witness path = %v, want [IdC]", w.Path)
	}
}

func TestBasicComplianceShapes(t *testing.T) {
	send := hexpr.SendThen("a", hexpr.Eps())
	recv := hexpr.RecvThen("a", hexpr.Eps())
	cases := []struct {
		name           string
		client, server hexpr.Expr
		want           bool
	}{
		{"matching send/recv", send, recv, true},
		{"matching recv/send", recv, send, true},
		{"both wait: deadlock", recv, recv, false},
		{"both send: mismatch", send, send, false},
		{"client sends, server gone", send, hexpr.Eps(), false},
		{"client waits, server gone", recv, hexpr.Eps(), false},
		{"client done, server waits", hexpr.Eps(), recv, true},
		{"client done, server sends", hexpr.Eps(), send, true},
		{"both done", hexpr.Eps(), hexpr.Eps(), true},
		{"wrong channel", send, hexpr.RecvThen("b", hexpr.Eps()), false},
	}
	for _, c := range cases {
		got, err := compliance.Compliant(c.client, c.server)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: compliant = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestInternalChoiceNeedsAllOutputsMatched(t *testing.T) {
	// client ⊕{ā, b̄}; server handles only a → not compliant
	client := hexpr.IntCh(
		hexpr.B(hexpr.Out("a"), hexpr.Eps()),
		hexpr.B(hexpr.Out("b"), hexpr.Eps()),
	)
	server1 := hexpr.RecvThen("a", hexpr.Eps())
	if ok, _ := compliance.Compliant(client, server1); ok {
		t.Error("server missing b must not be compliant")
	}
	server2 := hexpr.Ext(
		hexpr.B(hexpr.In("a"), hexpr.Eps()),
		hexpr.B(hexpr.In("b"), hexpr.Eps()),
	)
	if ok, _ := compliance.Compliant(client, server2); !ok {
		t.Error("server handling both must be compliant")
	}
}

func TestExternalChoiceNeedsOnlyOffered(t *testing.T) {
	// client a?+b?; server sends only ā → compliant (external choice is
	// driven by the received message)
	client := hexpr.Ext(
		hexpr.B(hexpr.In("a"), hexpr.Eps()),
		hexpr.B(hexpr.In("b"), hexpr.Eps()),
	)
	server := hexpr.SendThen("a", hexpr.Eps())
	if ok, _ := compliance.Compliant(client, server); !ok {
		t.Error("client offering a superset of inputs must be compliant")
	}
}

func TestRecursiveCompliance(t *testing.T) {
	// client: μh. ā.(ack?.h + done?) ; server: μk. a?.(ack̄.k ⊕ donē)
	client := hexpr.Mu("h", hexpr.SendThen("a",
		hexpr.Ext(
			hexpr.B(hexpr.In("ack"), hexpr.V("h")),
			hexpr.B(hexpr.In("done"), hexpr.Eps()),
		)))
	server := hexpr.Mu("k", hexpr.RecvThen("a",
		hexpr.IntCh(
			hexpr.B(hexpr.Out("ack"), hexpr.V("k")),
			hexpr.B(hexpr.Out("done"), hexpr.Eps()),
		)))
	if ok, err := compliance.Compliant(client, server); err != nil || !ok {
		t.Errorf("recursive pair should be compliant: %v %v", ok, err)
	}
	// Break the server: it may also send "retry", unknown to the client.
	bad := hexpr.Mu("k", hexpr.RecvThen("a",
		hexpr.IntCh(
			hexpr.B(hexpr.Out("ack"), hexpr.V("k")),
			hexpr.B(hexpr.Out("done"), hexpr.Eps()),
			hexpr.B(hexpr.Out("retry"), hexpr.V("k")),
		)))
	if ok, _ := compliance.Compliant(client, bad); ok {
		t.Error("unmatched retry must break compliance")
	}
}

func TestInfiniteInteractionIsCompliant(t *testing.T) {
	// Progress, not termination: an infinite ping/pong loop is compliant.
	client := hexpr.Mu("h", hexpr.SendThen("ping", hexpr.RecvThen("pong", hexpr.V("h"))))
	server := hexpr.Mu("k", hexpr.RecvThen("ping", hexpr.SendThen("pong", hexpr.V("k"))))
	if ok, err := compliance.Compliant(client, server); err != nil || !ok {
		t.Errorf("infinite ping/pong should be compliant: %v %v", ok, err)
	}
}

// TestTheorem1Agreement (experiment E6): the product-automaton decision
// (Theorem 1) agrees with the direct ready-set decision (Definition 4 via
// Lemma 1) on randomized contract pairs.
func TestTheorem1Agreement(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	agree, compliant := 0, 0
	for i := 0; i < 400; i++ {
		c := hexpr.GenerateContract(rnd, 4)
		s := hexpr.GenerateContract(rnd, 4)
		viaProduct, err := compliance.Compliant(c, s)
		if err != nil {
			t.Fatal(err)
		}
		viaReady, err := compliance.CompliantReadySets(c, s)
		if err != nil {
			t.Fatal(err)
		}
		if viaProduct != viaReady {
			t.Fatalf("disagreement on\n  client %s\n  server %s\n  product=%v readySets=%v",
				hexpr.Pretty(c), hexpr.Pretty(s), viaProduct, viaReady)
		}
		agree++
		if viaProduct {
			compliant++
		}
	}
	if compliant == 0 || compliant == agree {
		t.Errorf("degenerate sample: %d/%d compliant", compliant, agree)
	}
}

// TestTheorem1NFAEmptiness: compliance ⟺ L(H₁⊗H₂) = ∅, with the language
// emptiness checked on the rendered NFA.
func TestTheorem1NFAEmptiness(t *testing.T) {
	rnd := rand.New(rand.NewSource(43))
	for i := 0; i < 200; i++ {
		c := hexpr.GenerateContract(rnd, 4)
		s := hexpr.GenerateContract(rnd, 4)
		p, err := compliance.NewProduct(c, s)
		if err != nil {
			t.Fatal(err)
		}
		if p.Empty() != p.NFA().IsEmpty() {
			t.Fatalf("product emptiness and NFA emptiness disagree on %s | %s",
				hexpr.Pretty(c), hexpr.Pretty(s))
		}
	}
}

// TestTheorem2Invariant (experiment E7): compliance is an invariant
// property — when H₁ ⊢ H₂, every reachable product state is non-final and
// the residual pair is itself compliant (compliance is preserved under
// transitions).
func TestTheorem2Invariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(44))
	checked := 0
	for i := 0; i < 150 && checked < 40; i++ {
		c := hexpr.GenerateContract(rnd, 4)
		s := hexpr.GenerateContract(rnd, 4)
		p, err := compliance.NewProduct(c, s)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Empty() {
			continue
		}
		checked++
		for _, st := range p.States {
			ok, err := compliance.Compliant(st.Client, st.Server)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("compliance not preserved: reachable pair %s not compliant", st)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no compliant samples generated")
	}
}

// TestLemma1Agreement (experiment E8): on every reachable pair of every
// random product, the ready-set formulation of stuckness agrees with the
// transition formulation, i.e. final states are exactly the pairs failing
// condition (1) with a non-terminated client.
func TestLemma1Agreement(t *testing.T) {
	rnd := rand.New(rand.NewSource(45))
	for i := 0; i < 200; i++ {
		c := hexpr.GenerateContract(rnd, 4)
		s := hexpr.GenerateContract(rnd, 4)
		p, err := compliance.NewProduct(c, s)
		if err != nil {
			t.Fatal(err)
		}
		for idx, st := range p.States {
			viaReady, err := compliance.CompliantPairReadySets(st)
			if err != nil {
				t.Fatal(err)
			}
			if p.Final[idx] == viaReady {
				t.Fatalf("Lemma 1 mismatch on %s: final=%v readyOK=%v", st, p.Final[idx], viaReady)
			}
		}
	}
}

func TestProductFinalStatesHaveNoEdges(t *testing.T) {
	brBody := requestBody(t, paperex.Broker(), "r3")
	p, err := compliance.NewProduct(brBody, paperex.S2())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.States {
		if p.Final[i] && len(p.Edges[i]) > 0 {
			t.Errorf("final state %d has outgoing edges", i)
		}
	}
}

func TestComplianceRejectsOpenTerms(t *testing.T) {
	if _, err := compliance.Compliant(hexpr.V("h"), hexpr.Eps()); err == nil {
		t.Error("open client must be rejected")
	}
	if _, err := compliance.CompliantReadySets(hexpr.V("h"), hexpr.Eps()); err == nil {
		t.Error("open client must be rejected (ready sets)")
	}
}
