package compliance_test

import (
	"math/rand"
	"testing"

	"susc/internal/compliance"
	"susc/internal/hexpr"
	"susc/internal/paperex"
)

func mustSubst(t *testing.T, oldSvc, newSvc hexpr.Expr) bool {
	t.Helper()
	ok, err := compliance.Substitutable(oldSvc, newSvc)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestSubstitutableReflexive(t *testing.T) {
	rnd := rand.New(rand.NewSource(51))
	for i := 0; i < 200; i++ {
		s := hexpr.GenerateContract(rnd, 4)
		if !mustSubst(t, s, s) {
			t.Fatalf("subcontract not reflexive on %s", hexpr.Pretty(s))
		}
	}
}

func TestSubstitutableFewerOutputs(t *testing.T) {
	// old: IdC?.(Bok! ⊕ UnA!); new: IdC?.Bok! — dropping an output is safe.
	oldSvc := paperex.S1()
	newSvc := hexpr.RecvThen("IdC", hexpr.SendThen("Bok", hexpr.Eps()))
	if !mustSubst(t, oldSvc, newSvc) {
		t.Error("dropping an output should be substitutable")
	}
	// the reverse adds an output (Del): NOT substitutable
	if mustSubst(t, paperex.S1(), paperex.S2()) {
		t.Error("adding the Del output must not be substitutable")
	}
	// dropping ALL outputs is not: the client would wait forever
	bad := hexpr.RecvThen("IdC", hexpr.Eps())
	if mustSubst(t, oldSvc, bad) {
		t.Error("terminating instead of answering must not be substitutable")
	}
}

func TestSubstitutableMoreInputs(t *testing.T) {
	oldSvc := hexpr.RecvThen("a", hexpr.SendThen("r", hexpr.Eps()))
	// new accepts an extra message b: safe, old clients never send it
	newSvc := hexpr.Ext(
		hexpr.B(hexpr.In("a"), hexpr.SendThen("r", hexpr.Eps())),
		hexpr.B(hexpr.In("b"), hexpr.Eps()),
	)
	if !mustSubst(t, oldSvc, newSvc) {
		t.Error("adding an input should be substitutable")
	}
	// dropping an input is not: clients may rely on it
	oldWide := hexpr.Ext(
		hexpr.B(hexpr.In("a"), hexpr.Eps()),
		hexpr.B(hexpr.In("b"), hexpr.Eps()),
	)
	newNarrow := hexpr.RecvThen("a", hexpr.Eps())
	if mustSubst(t, oldWide, newNarrow) {
		t.Error("dropping an input must not be substitutable")
	}
}

func TestSubstitutableModeSwitchRejected(t *testing.T) {
	waiting := hexpr.RecvThen("a", hexpr.Eps())
	sending := hexpr.SendThen("a", hexpr.Eps())
	if mustSubst(t, waiting, sending) {
		t.Error("waiting -> sending must not be substitutable")
	}
	if mustSubst(t, sending, waiting) {
		t.Error("sending -> waiting must not be substitutable")
	}
}

func TestSubstitutableAfterTermination(t *testing.T) {
	// old terminates right away: any new service is fine, clients are done.
	oldSvc := hexpr.Eps()
	newSvc := hexpr.SendThen("noise", hexpr.Eps())
	if !mustSubst(t, oldSvc, newSvc) {
		t.Error("anything substitutes a terminated service")
	}
}

func TestSubstitutableRecursive(t *testing.T) {
	// old: μk. a?.(r̄.k ⊕ donē); new drops the done choice but keeps r̄ — the
	// interaction can still loop forever, which compliance permits.
	oldSvc := hexpr.Mu("k", hexpr.RecvThen("a", hexpr.IntCh(
		hexpr.B(hexpr.Out("r"), hexpr.V("k")),
		hexpr.B(hexpr.Out("done"), hexpr.Eps()),
	)))
	newSvc := hexpr.Mu("k", hexpr.RecvThen("a",
		hexpr.SendThen("r", hexpr.V("k"))))
	if !mustSubst(t, oldSvc, newSvc) {
		t.Error("dropping one recursive output branch should be substitutable")
	}
	// new answering on a channel the old never used is rejected
	bad := hexpr.Mu("k", hexpr.RecvThen("a",
		hexpr.SendThen("zzz", hexpr.V("k"))))
	if mustSubst(t, oldSvc, bad) {
		t.Error("new output channel must not be substitutable")
	}
}

// TestSubstitutableSoundness is the headline property (randomized): if
// Substitutable(old,new) and a client is compliant with old, then the
// client is compliant with new.
func TestSubstitutableSoundness(t *testing.T) {
	rnd := rand.New(rand.NewSource(52))
	triples, substitutables := 0, 0
	for i := 0; i < 1500 && substitutables < 120; i++ {
		client := hexpr.GenerateContract(rnd, 3)
		oldSvc := hexpr.GenerateContract(rnd, 3)
		newSvc := hexpr.GenerateContract(rnd, 3)
		okOld, err := compliance.Compliant(client, oldSvc)
		if err != nil {
			t.Fatal(err)
		}
		if !okOld {
			continue
		}
		triples++
		sub, err := compliance.Substitutable(oldSvc, newSvc)
		if err != nil {
			t.Fatal(err)
		}
		if !sub {
			continue
		}
		substitutables++
		okNew, err := compliance.Compliant(client, newSvc)
		if err != nil {
			t.Fatal(err)
		}
		if !okNew {
			t.Fatalf("soundness violated:\n  client %s\n  old    %s\n  new    %s",
				hexpr.Pretty(client), hexpr.Pretty(oldSvc), hexpr.Pretty(newSvc))
		}
	}
	if substitutables == 0 {
		t.Fatalf("degenerate sample: %d compliant triples, 0 substitutable", triples)
	}
}

// TestSubstitutableTransitivity (randomized): the relation composes.
func TestSubstitutableTransitivity(t *testing.T) {
	rnd := rand.New(rand.NewSource(53))
	found := 0
	for i := 0; i < 2000 && found < 60; i++ {
		a := hexpr.GenerateContract(rnd, 3)
		b := hexpr.GenerateContract(rnd, 3)
		c := hexpr.GenerateContract(rnd, 3)
		ab, _ := compliance.Substitutable(a, b)
		bc, _ := compliance.Substitutable(b, c)
		if !ab || !bc {
			continue
		}
		found++
		ac, _ := compliance.Substitutable(a, c)
		if !ac {
			t.Fatalf("transitivity violated:\n  a %s\n  b %s\n  c %s",
				hexpr.Pretty(a), hexpr.Pretty(b), hexpr.Pretty(c))
		}
	}
	if found == 0 {
		t.Fatal("degenerate sample: no chained substitutables")
	}
}

func TestSubstitutableRejectsOpenTerms(t *testing.T) {
	if _, err := compliance.Substitutable(hexpr.V("h"), hexpr.Eps()); err == nil {
		t.Error("open old service must be rejected")
	}
}
