package compliance_test

import (
	"fmt"

	"susc/internal/compliance"
	"susc/internal/hexpr"
)

// A client that orders and waits for either a parcel or a rejection is
// compliant with a shop that decides between the two — and not with a shop
// that may answer on a channel the client cannot handle.
func ExampleCompliant() {
	client := hexpr.SendThen("Order", hexpr.Ext(
		hexpr.B(hexpr.In("Parcel"), hexpr.Eps()),
		hexpr.B(hexpr.In("Reject"), hexpr.Eps()),
	))
	shop := hexpr.RecvThen("Order", hexpr.IntCh(
		hexpr.B(hexpr.Out("Parcel"), hexpr.Eps()),
		hexpr.B(hexpr.Out("Reject"), hexpr.Eps()),
	))
	chatty := hexpr.RecvThen("Order", hexpr.IntCh(
		hexpr.B(hexpr.Out("Parcel"), hexpr.Eps()),
		hexpr.B(hexpr.Out("Backorder"), hexpr.Eps()),
	))
	ok, _ := compliance.Compliant(client, shop)
	fmt.Println("shop:", ok)
	ok, _ = compliance.Compliant(client, chatty)
	fmt.Println("chatty:", ok)
	// Output:
	// shop: true
	// chatty: false
}

// The product automaton explains *why* a pair is not compliant.
func ExampleProduct_FindWitness() {
	client := hexpr.SendThen("Order", hexpr.RecvThen("Parcel", hexpr.Eps()))
	shop := hexpr.RecvThen("Order", hexpr.SendThen("Backorder", hexpr.Eps()))
	p, _ := compliance.NewProduct(client, shop)
	fmt.Println(p.FindWitness())
	// Output:
	// after Order stuck at <Parcel? , Backorder!>
}

// Substitutable decides when a service upgrade is safe for every client.
func ExampleSubstitutable() {
	oldSvc := hexpr.RecvThen("Order", hexpr.IntCh(
		hexpr.B(hexpr.Out("Parcel"), hexpr.Eps()),
		hexpr.B(hexpr.Out("Reject"), hexpr.Eps()),
	))
	// the new shop never rejects: fewer behaviours, still safe
	newSvc := hexpr.RecvThen("Order", hexpr.SendThen("Parcel", hexpr.Eps()))
	ok, _ := compliance.Substitutable(oldSvc, newSvc)
	fmt.Println("fewer outputs:", ok)
	// the reverse direction adds a behaviour old clients cannot handle
	ok, _ = compliance.Substitutable(newSvc, oldSvc)
	fmt.Println("more outputs:", ok)
	// Output:
	// fewer outputs: true
	// more outputs: false
}
