package compliance

import (
	"fmt"

	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/lts"
)

// CompliantReadySets decides H_c ⊢ H_s directly from Definition 4, using
// observable ready sets: on every reachable pair ⟨H₁,H₂⟩,
//
//	(1) H₁ ⇓ C and H₂ ⇓ S implies C = ∅ or C ∩ S̄ ≠ ∅,
//
// and (2) closure under synchronisations, realised here by exploring all
// reachable pairs. By Lemma 1 this agrees with the product-automaton
// decision of Compliant; the tests check the agreement on randomized
// contracts (experiment E6/E8).
func CompliantReadySets(client, server hexpr.Expr) (bool, error) {
	h1 := contract.Project(client)
	h2 := contract.Project(server)
	if !hexpr.Closed(h1) || !hexpr.Closed(h2) {
		return false, fmt.Errorf("compliance: contracts must be closed")
	}
	seen := map[string]bool{}
	queue := []Pair{{Client: h1, Server: h2}}
	seen[queue[0].Key()] = true
	for len(queue) > 0 {
		pr := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		ok, err := readySetCondition(pr)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		c := lts.Step(pr.Client)
		s := lts.Step(pr.Server)
		for _, tc := range c {
			for _, ts := range s {
				if tc.Label.Comm == ts.Label.Comm.Co() {
					next := Pair{Client: tc.To, Server: ts.To}
					if !seen[next.Key()] {
						seen[next.Key()] = true
						queue = append(queue, next)
					}
				}
			}
		}
	}
	return true, nil
}

// CompliantPairReadySets evaluates condition (1) of Definition 4 on a
// single pair of contract residuals. By Lemma 1, it is false exactly on the
// final (stuck) states of the product automaton with a non-terminated
// client, and true on states with a terminated client.
func CompliantPairReadySets(pr Pair) (bool, error) { return readySetCondition(pr) }

// readySetCondition evaluates condition (1) of Definition 4 on one pair:
// for all C, S with H₁ ⇓ C and H₂ ⇓ S, C = ∅ or C ∩ S̄ ≠ ∅. Symmetrically,
// because the server may hold outputs the client must be able to receive,
// the stuck conditions of Definition 5 also require every server ready set
// offering outputs to synchronise; Lemma 1's proof covers this by the
// symmetric case ("the proof in the other case is symmetric").
func readySetCondition(pr Pair) (bool, error) {
	cs, err := contract.ReadySets(pr.Client)
	if err != nil {
		return false, err
	}
	ss, err := contract.ReadySets(pr.Server)
	if err != nil {
		return false, err
	}
	// Condition (1) subsumes its symmetric variant: contract ready sets are
	// homogeneous (all inputs, or a singleton output), so for a server
	// ready set S = {ā} the tests C ∩ S̄ ≠ ∅ and S ∩ C̄ ≠ ∅ coincide, and a
	// server ready set of inputs imposes nothing.
	for _, c := range cs {
		if len(c) == 0 {
			continue // C = ∅: the client may terminate
		}
		for _, s := range ss {
			if !c.IntersectsCo(s) {
				return false, nil
			}
		}
	}
	return true, nil
}
