package faultinject

import (
	"sync"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	if Enabled() {
		t.Fatal("hook installed at package init")
	}
	Fire(VerifyState, "x") // must be a no-op, not a nil deref
}

func TestSetAndRestore(t *testing.T) {
	var got []string
	restore := Set(func(p Point, unit string) { got = append(got, string(p)+":"+unit) })
	if !Enabled() {
		t.Fatal("Enabled() false after Set")
	}
	Fire(PlansWorker, "p1")
	restore()
	if Enabled() {
		t.Fatal("Enabled() true after restore")
	}
	Fire(PlansWorker, "p2")
	if len(got) != 1 || got[0] != "plans.worker:p1" {
		t.Fatalf("fired: %v", got)
	}
}

func TestSetNilUninstalls(t *testing.T) {
	restore := Set(func(Point, string) {})
	defer restore()
	restore2 := Set(nil)
	defer restore2()
	if Enabled() {
		t.Fatal("nil hook counts as enabled")
	}
	Fire(VerifyState, "")
}

func TestPanicOncePanicsExactlyOnceAndFilters(t *testing.T) {
	h := PanicOnce(FusedExpand, "needle", "boom")
	h(FusedReplay, "needle")   // wrong point: no panic
	h(FusedExpand, "haystack") // wrong unit: no panic
	panicked := func(fn func()) (p bool) {
		defer func() { p = recover() != nil }()
		fn()
		return
	}
	if !panicked(func() { h(FusedExpand, "a needle here") }) {
		t.Fatal("matching firing did not panic")
	}
	if panicked(func() { h(FusedExpand, "a needle here") }) {
		t.Fatal("second firing panicked again")
	}
}

func TestPanicOnceRaceSafe(t *testing.T) {
	h := PanicOnce(PlansWorker, "", "boom")
	var wg sync.WaitGroup
	var mu sync.Mutex
	panics := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					mu.Lock()
					panics++
					mu.Unlock()
				}
			}()
			for i := 0; i < 100; i++ {
				h(PlansWorker, "u")
			}
		}()
	}
	wg.Wait()
	if panics != 1 {
		t.Fatalf("PanicOnce fired %d times", panics)
	}
}

func TestCancelAfter(t *testing.T) {
	cancelled := 0
	h := CancelAfter(VerifyState, 3, func() { cancelled++ })
	for i := 0; i < 10; i++ {
		h(VerifyState, "")
	}
	h(NetworkState, "") // other points don't count
	if cancelled != 1 {
		t.Fatalf("cancel ran %d times, want 1", cancelled)
	}
}

func TestChain(t *testing.T) {
	var order []int
	h := Chain(
		func(Point, string) { order = append(order, 1) },
		func(Point, string) { order = append(order, 2) },
	)
	h(LintAnalyzer, "")
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("chain order: %v", order)
	}
}
