// Package faultinject deterministically injects faults — panics, delays,
// cancellations — at named points in the exploration engines, so every
// degradation path (panic isolation, budget exhaustion, cancellation
// mid-BFS) is exercised by tests instead of by luck.
//
// The mechanism is hook-based and nil-by-default: production code calls
// Enabled() (one atomic load) before building the unit key and firing,
// so with no hook installed the instrumented paths cost a nanosecond and
// allocate nothing. No build tags are involved — the same binary that
// ships is the one under fault injection.
//
// Tests install a hook with Set and restore the previous one when done:
//
//	restore := faultinject.Set(faultinject.PanicOnce(faultinject.FusedExpand, "", "injected"))
//	defer restore()
//
// Hooks run on the engine goroutine that reaches the point, so a panic
// raised by a hook is exactly a worker panic.
package faultinject

import (
	"strings"
	"sync/atomic"
	"time"
)

// Point names one injection site. The set of points is part of the
// engines' testing contract: each names a memo, worker or BFS path whose
// degradation behaviour is pinned by table-driven tests.
type Point string

const (
	// PlansWorker fires before a plan-synthesis worker assesses one plan
	// (legacy and fused engines, sequential and parallel); the unit is
	// the plan key.
	PlansWorker Point = "plans.worker"
	// FusedExpand fires when the fused engine expands a shared graph
	// node (inside the node lock, before the move relation is computed);
	// the unit is the node's session-tree key.
	FusedExpand Point = "plans.fused.expand"
	// FusedReplay fires on every state visit of a fused plan replay; the
	// unit is the visited node's session-tree key.
	FusedReplay Point = "plans.fused.replay"
	// VerifyState fires on every state the direct exploration of
	// verify.CheckPlanOpts pops; the unit is the session-tree key.
	VerifyState Point = "verify.state"
	// NetworkState fires on every state verify.CheckNetwork pops; the
	// unit is the joined component-tree key.
	NetworkState Point = "verify.network.state"
	// LintAnalyzer fires before each lint analyzer runs; the unit is the
	// analyzer name.
	LintAnalyzer Point = "lint.analyzer"
	// LTSBuild fires on every state lts.BuildBudgeted adds; the unit is
	// empty (the builder is too hot to render expression keys).
	LTSBuild Point = "lts.build"
	// ServeAccept fires in the server's admission path, before the
	// in-flight semaphore is tried; the unit is the request mode
	// ("checkall", "plans", …).
	ServeAccept Point = "serve.accept"
	// ServeHandler fires inside a server request's panic guard, after
	// admission and before the engine runs; the unit is "mode#id"
	// (e.g. "plans#7"), so one specific request can be poisoned.
	ServeHandler Point = "serve.handler"
	// StoreWrite fires in store.Put before a record is appended; the
	// unit is the record-kind name ("plan", "compliance", …).
	StoreWrite Point = "store.write"
	// WebhookDeliver fires before each webhook delivery attempt
	// (retries included); the unit is the destination URL.
	WebhookDeliver Point = "webhook.deliver"
)

// Hook observes (and may sabotage) one fired point.
type Hook func(p Point, unit string)

var hook atomic.Pointer[Hook]

// Enabled reports whether a hook is installed. Hot paths check it before
// building the unit string, so disabled injection costs one atomic load.
func Enabled() bool { return hook.Load() != nil }

// Fire invokes the installed hook, if any, at point p.
func Fire(p Point, unit string) {
	if h := hook.Load(); h != nil {
		(*h)(p, unit)
	}
}

// Set installs h (nil uninstalls) and returns a function restoring the
// previous hook — meant for defer in tests.
func Set(h Hook) (restore func()) {
	var ptr *Hook
	if h != nil {
		ptr = &h
	}
	prev := hook.Swap(ptr)
	return func() { hook.Store(prev) }
}

// PanicOnce returns a hook that panics with msg the first time point p
// fires with a unit containing substr (empty substr matches any unit).
// Later firings pass, so retried units succeed — the panic is a one-shot
// poisoned unit, the shape the isolation machinery must absorb.
func PanicOnce(p Point, substr, msg string) Hook {
	var fired atomic.Bool
	return func(pt Point, unit string) {
		if pt != p || !strings.Contains(unit, substr) {
			return
		}
		if fired.CompareAndSwap(false, true) {
			panic(msg)
		}
	}
}

// CancelAfter returns a hook calling cancel once point p has fired n
// times — a deterministic cancellation point mid-exploration.
func CancelAfter(p Point, n int64, cancel func()) Hook {
	var count atomic.Int64
	var fired atomic.Bool
	return func(pt Point, unit string) {
		if pt != p {
			return
		}
		if count.Add(1) >= n && fired.CompareAndSwap(false, true) {
			cancel()
		}
	}
}

// DelayAt returns a hook sleeping d every time point p fires — for
// driving wall-clock deadlines through otherwise-fast explorations.
func DelayAt(p Point, d time.Duration) Hook {
	return func(pt Point, unit string) {
		if pt == p {
			time.Sleep(d)
		}
	}
}

// Chain composes hooks; each fires in order.
func Chain(hs ...Hook) Hook {
	return func(p Point, unit string) {
		for _, h := range hs {
			h(p, unit)
		}
	}
}
