package contract

import (
	"fmt"

	"susc/internal/hexpr"
)

// Dual returns the canonical dual of a contract: inputs become outputs and
// vice versa, so external choices become internal ones and conversely. The
// dual is the most permissive partner: every contract is compliant with
// its dual (property-tested), which makes Dual useful both as a test
// oracle and as a "what would a satisfying service look like" query.
//
// The argument is projected first, so any closed history expression is
// accepted; the result is its contract's dual.
func Dual(e hexpr.Expr) (hexpr.Expr, error) {
	c := Project(e)
	if !hexpr.Closed(c) {
		return nil, fmt.Errorf("contract: dual of an open term")
	}
	return dual(c), nil
}

// MustDual is Dual panicking on error.
func MustDual(e hexpr.Expr) hexpr.Expr {
	d, err := Dual(e)
	if err != nil {
		panic(err)
	}
	return d
}

func dual(e hexpr.Expr) hexpr.Expr {
	switch t := e.(type) {
	case hexpr.Nil, hexpr.Var:
		return e
	case hexpr.Rec:
		return hexpr.Mu(t.Name, dual(t.Body))
	case hexpr.Seq:
		return hexpr.Cat(dual(t.Left), dual(t.Right))
	case hexpr.ExtChoice:
		return hexpr.IntCh(dualBranches(t.Branches)...)
	case hexpr.IntChoice:
		return hexpr.Ext(dualBranches(t.Branches)...)
	}
	panic(fmt.Sprintf("contract: dual of non-contract node %T", e))
}

func dualBranches(bs []hexpr.Branch) []hexpr.Branch {
	out := make([]hexpr.Branch, len(bs))
	for i, b := range bs {
		out[i] = hexpr.Branch{Comm: b.Comm.Co(), Cont: dual(b.Cont)}
	}
	return out
}
