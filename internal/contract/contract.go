// Package contract implements the projection of history expressions onto
// their communication actions (§4 of the paper) and the observable ready
// sets of Definition 3. The projection H! of a history expression is a
// behavioural contract in the sense of Castagna–Gesbert–Padovani [12],
// restricted as in the paper: internal choices guarded by outputs, external
// choices by inputs, and guarded tail recursion only — which makes every
// contract finite-state.
package contract

import (
	"fmt"
	"sort"
	"strings"

	"susc/internal/hexpr"
	"susc/internal/lts"
)

// Project computes H!: it erases access events, policy framings and whole
// inner session requests (open_{r,φ}…close_{r,φ}), keeping only the
// communication structure:
//
//	(H·H′)! = H!·H′!      h! = h        φ[H]! = H!
//	(μh.H)! = μh.(H!)     (Σ aᵢ.Hᵢ)! = Σ aᵢ.(Hᵢ!)
//	(⊕ āᵢ.Hᵢ)! = ⊕ āᵢ.(Hᵢ)!
//	(open_{r,φ}·H·close_{r,φ})! = ε! = α! = ε
//
// As a simplification, μh.H! collapses to H! when h no longer occurs after
// projection, so a fully erased recursion becomes ε rather than μh.ε.
func Project(e hexpr.Expr) hexpr.Expr {
	switch t := e.(type) {
	case hexpr.Nil, hexpr.Var:
		return e
	case hexpr.Ev:
		return hexpr.Eps()
	case hexpr.Session:
		return hexpr.Eps()
	case hexpr.CloseTag:
		return hexpr.Eps()
	case hexpr.Framing:
		return Project(t.Body)
	case hexpr.FrameClose:
		return hexpr.Eps()
	case hexpr.Seq:
		return hexpr.Cat(Project(t.Left), Project(t.Right))
	case hexpr.ExtChoice:
		return hexpr.Ext(projectBranches(t.Branches)...)
	case hexpr.IntChoice:
		return hexpr.IntCh(projectBranches(t.Branches)...)
	case hexpr.Rec:
		body := Project(t.Body)
		if !hexpr.FreeVars(body)[t.Name] {
			return body
		}
		return hexpr.Mu(t.Name, body)
	}
	panic(fmt.Sprintf("contract: unknown expression %T", e))
}

func projectBranches(bs []hexpr.Branch) []hexpr.Branch {
	out := make([]hexpr.Branch, len(bs))
	for i, b := range bs {
		out[i] = hexpr.Branch{Comm: b.Comm, Cont: Project(b.Cont)}
	}
	return out
}

// IsContract reports whether e lies in the contract fragment: only ε,
// recursion variables, guarded tail recursion, choices and sequencing of
// these ((H·H′)! = H!·H′!, so projections keep sequential structure).
// Projections of closed expressions always satisfy it.
func IsContract(e hexpr.Expr) bool {
	ok := true
	hexpr.Walk(e, func(x hexpr.Expr) {
		switch x.(type) {
		case hexpr.Ev, hexpr.Session, hexpr.Framing, hexpr.CloseTag, hexpr.FrameClose:
			ok = false
		}
	})
	return ok
}

// ReadySet is an observable ready set S ⊆ Comm: the communication actions a
// contract is ready to execute. An internal choice offers one output at a
// time; an external choice offers all its inputs at once.
type ReadySet []hexpr.Comm

// NewReadySet builds a canonical (sorted, deduplicated) ready set.
func NewReadySet(cs ...hexpr.Comm) ReadySet {
	seen := map[hexpr.Comm]bool{}
	out := make(ReadySet, 0, len(cs))
	for _, c := range cs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Channel != out[j].Channel {
			return out[i].Channel < out[j].Channel
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}

// Key returns a canonical string for the set.
func (s ReadySet) Key() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (s ReadySet) String() string { return s.Key() }

// Contains reports membership.
func (s ReadySet) Contains(c hexpr.Comm) bool {
	for _, x := range s {
		if x == c {
			return true
		}
	}
	return false
}

// IntersectsCo reports whether some action of s has its co-action in t —
// the C ∩ S̄ ≠ ∅ test of Definition 4.
func (s ReadySet) IntersectsCo(t ReadySet) bool {
	for _, c := range s {
		if t.Contains(c.Co()) {
			return true
		}
	}
	return false
}

// ReadySets computes the finite set {S | H ⇓ S} of Definition 3. The
// expression must be in the contract fragment (project first otherwise).
func ReadySets(e hexpr.Expr) ([]ReadySet, error) {
	switch t := e.(type) {
	case hexpr.Nil, hexpr.Var:
		// ε ⇓ ∅ and h ⇓ ∅
		return []ReadySet{NewReadySet()}, nil
	case hexpr.IntChoice:
		// ⊕ᵢ āᵢ.Hᵢ ⇓ {āᵢ}, one singleton per branch
		out := make([]ReadySet, 0, len(t.Branches))
		seen := map[string]bool{}
		for _, b := range t.Branches {
			s := NewReadySet(b.Comm)
			if !seen[s.Key()] {
				seen[s.Key()] = true
				out = append(out, s)
			}
		}
		return out, nil
	case hexpr.ExtChoice:
		// Σᵢ aᵢ.Hᵢ ⇓ ∪ᵢ{aᵢ}, a single set
		cs := make([]hexpr.Comm, len(t.Branches))
		for i, b := range t.Branches {
			cs[i] = b.Comm
		}
		return []ReadySet{NewReadySet(cs...)}, nil
	case hexpr.Rec:
		// μh.H ⇓ S iff H ⇓ S
		return ReadySets(t.Body)
	case hexpr.Seq:
		// H·H′ ⇓ S if H ⇓ S with S ≠ ∅; and H·H′ ⇓ S if H ⇓ ∅ and H′ ⇓ S
		left, err := ReadySets(t.Left)
		if err != nil {
			return nil, err
		}
		var out []ReadySet
		seen := map[string]bool{}
		add := func(s ReadySet) {
			if !seen[s.Key()] {
				seen[s.Key()] = true
				out = append(out, s)
			}
		}
		emptyLeft := false
		for _, s := range left {
			if len(s) == 0 {
				emptyLeft = true
			} else {
				add(s)
			}
		}
		if emptyLeft {
			right, err := ReadySets(t.Right)
			if err != nil {
				return nil, err
			}
			for _, s := range right {
				add(s)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("contract: ready sets undefined on %T (project first)", e)
	}
}

// MustReadySets is ReadySets for expressions known to be contracts.
func MustReadySets(e hexpr.Expr) []ReadySet {
	out, err := ReadySets(e)
	if err != nil {
		panic(err)
	}
	return out
}

// RequestBody returns the body H₁ of the request open_{r,φ} H₁ close_{r,φ}
// with the given identifier inside e, together with its policy. It is the
// starting point of per-request compliance checking.
func RequestBody(e hexpr.Expr, r hexpr.RequestID) (hexpr.Expr, hexpr.PolicyID, error) {
	var body hexpr.Expr
	var pol hexpr.PolicyID
	found := false
	hexpr.Walk(e, func(x hexpr.Expr) {
		if s, ok := x.(hexpr.Session); ok && s.Req == r && !found {
			found = true
			body = s.Body
			pol = s.Policy
		}
	})
	if !found {
		return nil, hexpr.NoPolicy, fmt.Errorf("contract: no request %q in expression", r)
	}
	return body, pol, nil
}

// Equivalent reports whether the contracts of two expressions are strongly
// bisimilar: H₁! and H₂! match communication for communication. Equivalent
// services are compliant with exactly the same clients, so either can
// replace the other in a repository with no re-analysis (a two-sided
// strengthening of compliance-preserving substitutability).
func Equivalent(a, b hexpr.Expr) (bool, error) {
	return lts.Bisimilar(Project(a), Project(b))
}
