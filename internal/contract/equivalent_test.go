package contract_test

import (
	"math/rand"
	"testing"

	"susc/internal/compliance"
	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/paperex"
)

func TestEquivalentIgnoresEventsAndFramings(t *testing.T) {
	// the same communications, different security decoration
	a := hexpr.Cat(
		hexpr.Act(hexpr.E("x")),
		hexpr.Frame("phi", hexpr.RecvThen("go", hexpr.SendThen("done", hexpr.Eps()))),
	)
	b := hexpr.RecvThen("go", hexpr.Cat(hexpr.Act(hexpr.E("y")), hexpr.SendThen("done", hexpr.Eps())))
	ok, err := contract.Equivalent(a, b)
	if err != nil || !ok {
		t.Errorf("contracts should be equivalent: %v %v", ok, err)
	}
}

func TestEquivalentHotels(t *testing.T) {
	// S1, S3 and S4 all have the same contract; S2 differs (Del)
	ok, err := contract.Equivalent(paperex.S1(), paperex.S3())
	if err != nil || !ok {
		t.Errorf("S1 ≡ S3: %v %v", ok, err)
	}
	ok, err = contract.Equivalent(paperex.S1(), paperex.S2())
	if err != nil || ok {
		t.Errorf("S1 ≢ S2: %v %v", ok, err)
	}
}

// TestEquivalentPreservesCompliance (randomized): equivalent servers are
// compliant with the same clients.
func TestEquivalentPreservesCompliance(t *testing.T) {
	rnd := rand.New(rand.NewSource(63))
	equivalents := 0
	for i := 0; i < 800 && equivalents < 60; i++ {
		s1 := hexpr.GenerateContract(rnd, 3)
		s2 := hexpr.GenerateContract(rnd, 3)
		eq, err := contract.Equivalent(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			continue
		}
		equivalents++
		client := hexpr.GenerateContract(rnd, 3)
		c1, err := compliance.Compliant(client, s1)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := compliance.Compliant(client, s2)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Fatalf("equivalence does not preserve compliance:\n  client %s\n  s1 %s\n  s2 %s",
				hexpr.Pretty(client), hexpr.Pretty(s1), hexpr.Pretty(s2))
		}
	}
	if equivalents == 0 {
		t.Fatal("degenerate sample: no equivalent pairs")
	}
}

// TestEquivalentImpliesTwoWaySubstitutable: equivalence is stronger than
// substitutability in both directions on the samples.
func TestEquivalentImpliesTwoWaySubstitutable(t *testing.T) {
	rnd := rand.New(rand.NewSource(64))
	checked := 0
	for i := 0; i < 800 && checked < 40; i++ {
		s1 := hexpr.GenerateContract(rnd, 3)
		s2 := hexpr.GenerateContract(rnd, 3)
		eq, err := contract.Equivalent(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			continue
		}
		checked++
		fwd, err := compliance.Substitutable(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		bwd, err := compliance.Substitutable(s2, s1)
		if err != nil {
			t.Fatal(err)
		}
		if !fwd || !bwd {
			t.Fatalf("equivalent but not two-way substitutable:\n  s1 %s\n  s2 %s",
				hexpr.Pretty(s1), hexpr.Pretty(s2))
		}
	}
	if checked == 0 {
		t.Fatal("degenerate sample")
	}
}
