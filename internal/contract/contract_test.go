package contract_test

import (
	"math/rand"
	"testing"

	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/paperex"
)

func TestProjectErasesEventsFramingsSessions(t *testing.T) {
	e := hexpr.Cat(
		hexpr.Act(hexpr.E("sgn", hexpr.Int(1))),
		hexpr.Frame("phi", hexpr.Act(hexpr.E("w"))),
		hexpr.Open("r9", "phi", hexpr.SendThen("inner", hexpr.Eps())),
		hexpr.SendThen("a", hexpr.Eps()),
	)
	got := contract.Project(e)
	want := hexpr.SendThen("a", hexpr.Eps())
	if !hexpr.Equal(got, want) {
		t.Errorf("Project = %s, want %s", got.Key(), want.Key())
	}
}

func TestProjectKeepsFramedCommunications(t *testing.T) {
	// φ[H]! = H!: communications inside a framing survive.
	e := hexpr.Frame("phi", hexpr.Cat(hexpr.Act(hexpr.E("a")), hexpr.RecvThen("x", hexpr.Eps())))
	got := contract.Project(e)
	want := hexpr.RecvThen("x", hexpr.Eps())
	if !hexpr.Equal(got, want) {
		t.Errorf("Project = %s, want %s", got.Key(), want.Key())
	}
}

func TestProjectRecursion(t *testing.T) {
	// μh. ā.(α.h) projects to μh. ā.h
	e := hexpr.Mu("h", hexpr.SendThen("a", hexpr.Cat(hexpr.Act(hexpr.E("ev")), hexpr.V("h"))))
	got := contract.Project(e)
	want := hexpr.Mu("h", hexpr.SendThen("a", hexpr.V("h")))
	if !hexpr.Equal(got, want) {
		t.Errorf("Project = %s, want %s", got.Key(), want.Key())
	}
	// a recursion whose body fully erases collapses to ε
	e2 := hexpr.Mu("h", hexpr.SendThen("a", hexpr.Act(hexpr.E("ev"))))
	got2 := contract.Project(e2)
	want2 := hexpr.SendThen("a", hexpr.Eps())
	if !hexpr.Equal(got2, want2) {
		t.Errorf("Project = %s, want %s", got2.Key(), want2.Key())
	}
}

func TestProjectBrokerMatchesPaper(t *testing.T) {
	// Br! = Req.(CoBo.Pay ⊕ NoAv): the nested open₃…close₃ disappears.
	got := contract.Project(paperex.Broker())
	want := hexpr.RecvThen("Req", hexpr.IntCh(
		hexpr.B(hexpr.Out("CoBo"), hexpr.RecvThen("Pay", hexpr.Eps())),
		hexpr.B(hexpr.Out("NoAv"), hexpr.Eps()),
	))
	if !hexpr.Equal(got, want) {
		t.Errorf("Br! = %s, want %s", hexpr.Pretty(got), hexpr.Pretty(want))
	}
}

func TestProjectHotelsMatchPaper(t *testing.T) {
	// S1! = IdC.(Bok ⊕ UnA)
	got := contract.Project(paperex.S1())
	want := hexpr.RecvThen("IdC", hexpr.IntCh(
		hexpr.B(hexpr.Out("Bok"), hexpr.Eps()),
		hexpr.B(hexpr.Out("UnA"), hexpr.Eps()),
	))
	if !hexpr.Equal(got, want) {
		t.Errorf("S1! = %s, want %s", hexpr.Pretty(got), hexpr.Pretty(want))
	}
	// S2! also offers Del
	got2 := contract.Project(paperex.S2())
	want2 := hexpr.RecvThen("IdC", hexpr.IntCh(
		hexpr.B(hexpr.Out("Bok"), hexpr.Eps()),
		hexpr.B(hexpr.Out("Del"), hexpr.Eps()),
		hexpr.B(hexpr.Out("UnA"), hexpr.Eps()),
	))
	if !hexpr.Equal(got2, want2) {
		t.Errorf("S2! = %s, want %s", hexpr.Pretty(got2), hexpr.Pretty(want2))
	}
}

func TestProjectClosedStaysClosedAndContract(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	cfg := hexpr.DefaultGenConfig()
	for i := 0; i < 500; i++ {
		e := hexpr.Generate(rnd, cfg)
		p := contract.Project(e)
		if !hexpr.Closed(p) {
			t.Fatalf("projection of closed expr not closed: %s -> %s", e.Key(), p.Key())
		}
		if !contract.IsContract(p) {
			t.Fatalf("projection not a contract: %s -> %s", e.Key(), p.Key())
		}
		if err := hexpr.Check(p); err != nil {
			t.Fatalf("projection ill-formed: %v", err)
		}
		// projection is idempotent
		if !hexpr.Equal(contract.Project(p), p) {
			t.Fatalf("projection not idempotent on %s", p.Key())
		}
	}
}

func TestIsContract(t *testing.T) {
	if !contract.IsContract(hexpr.Eps()) {
		t.Error("eps is a contract")
	}
	if contract.IsContract(hexpr.Act(hexpr.E("a"))) {
		t.Error("an event is not a contract")
	}
	if contract.IsContract(hexpr.Frame("phi", hexpr.Eps())) {
		t.Error("a framing is not a contract")
	}
}

func readySetKeys(t *testing.T, e hexpr.Expr) map[string]bool {
	t.Helper()
	sets, err := contract.ReadySets(e)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, s := range sets {
		out[s.Key()] = true
	}
	return out
}

// TestReadySetsPaperExamples checks the examples given below Definition 3:
// (ā₁⊕ā₂) ⇓ {ā₁} and {ā₂}; (a₁+a₂) ⇓ {a₁,a₂};
// μh.(ā₁⊕ā₂)·b̄·h ⇓ {ā₁} and {ā₂}; ε·(a+b)·(d̄⊕ē) ⇓ {a,b}.
func TestReadySetsPaperExamples(t *testing.T) {
	intc := hexpr.IntCh(
		hexpr.B(hexpr.Out("a1"), hexpr.Eps()),
		hexpr.B(hexpr.Out("a2"), hexpr.Eps()),
	)
	got := readySetKeys(t, intc)
	if len(got) != 2 || !got["{a1!}"] || !got["{a2!}"] {
		t.Errorf("internal choice ready sets = %v", got)
	}

	extc := hexpr.Ext(
		hexpr.B(hexpr.In("a1"), hexpr.Eps()),
		hexpr.B(hexpr.In("a2"), hexpr.Eps()),
	)
	got = readySetKeys(t, extc)
	if len(got) != 1 || !got["{a1?,a2?}"] {
		t.Errorf("external choice ready sets = %v", got)
	}

	rec := hexpr.Mu("h", hexpr.IntCh(
		hexpr.B(hexpr.Out("a1"), hexpr.SendThen("b", hexpr.V("h"))),
		hexpr.B(hexpr.Out("a2"), hexpr.SendThen("b", hexpr.V("h"))),
	))
	got = readySetKeys(t, rec)
	if len(got) != 2 || !got["{a1!}"] || !got["{a2!}"] {
		t.Errorf("recursive ready sets = %v", got)
	}

	seq := hexpr.Cat(
		hexpr.Ext(hexpr.B(hexpr.In("a"), hexpr.Eps()), hexpr.B(hexpr.In("b"), hexpr.Eps())),
		hexpr.IntCh(hexpr.B(hexpr.Out("d"), hexpr.Eps()), hexpr.B(hexpr.Out("e"), hexpr.Eps())),
	)
	got = readySetKeys(t, seq)
	if len(got) != 1 || !got["{a?,b?}"] {
		t.Errorf("sequence ready sets = %v", got)
	}
}

func TestReadySetsEpsAndSeqThroughEmpty(t *testing.T) {
	got := readySetKeys(t, hexpr.Eps())
	if len(got) != 1 || !got["{}"] {
		t.Errorf("eps ready sets = %v", got)
	}
	// (ā ⊕ ε-branch)·b̄: the ⊕ branch with empty continuation exposes b̄?
	// Here: left = ā.ε ⊕ c̄.ε never has the empty ready set, so the right is
	// invisible.
	seq := hexpr.Cat(
		hexpr.IntCh(hexpr.B(hexpr.Out("a"), hexpr.Eps()), hexpr.B(hexpr.Out("c"), hexpr.Eps())),
		hexpr.SendThen("b", hexpr.Eps()),
	)
	got = readySetKeys(t, seq)
	if got["{b!}"] {
		t.Errorf("b! must be hidden behind the non-empty left: %v", got)
	}
}

func TestReadySetsErrorOnNonContract(t *testing.T) {
	if _, err := contract.ReadySets(hexpr.Act(hexpr.E("a"))); err == nil {
		t.Error("ReadySets must reject non-contract expressions")
	}
	if _, err := contract.ReadySets(hexpr.Cat(hexpr.Eps(), hexpr.Eps())); err != nil {
		t.Errorf("eps-seq: %v", err)
	}
}

func TestReadySetOps(t *testing.T) {
	s := contract.NewReadySet(hexpr.Out("b"), hexpr.Out("a"), hexpr.Out("a"))
	if s.Key() != "{a!,b!}" {
		t.Errorf("canonical key = %q", s.Key())
	}
	if !s.Contains(hexpr.Out("a")) || s.Contains(hexpr.In("a")) {
		t.Error("Contains wrong")
	}
	// client ready {a!}, server ready {a?}: co-intersection non-empty
	c := contract.NewReadySet(hexpr.Out("a"))
	v := contract.NewReadySet(hexpr.In("a"), hexpr.In("b"))
	if !c.IntersectsCo(v) {
		t.Error("a! should synchronise with a?")
	}
	if c.IntersectsCo(contract.NewReadySet(hexpr.In("b"))) {
		t.Error("a! cannot synchronise with b?")
	}
}

func TestRequestBody(t *testing.T) {
	c1 := paperex.C1()
	body, pol, err := contract.RequestBody(c1, "r1")
	if err != nil {
		t.Fatal(err)
	}
	if pol != paperex.Phi1().ID() {
		t.Errorf("policy = %s", pol)
	}
	if hexpr.IsNil(body) {
		t.Error("body must not be empty")
	}
	if _, _, err := contract.RequestBody(c1, "nope"); err == nil {
		t.Error("missing request should error")
	}
	// nested request of the broker
	_, pol3, err := contract.RequestBody(paperex.Broker(), "r3")
	if err != nil || pol3 != hexpr.NoPolicy {
		t.Errorf("r3 policy = %v, err %v", pol3, err)
	}
}

func TestReadySetsMoreShapes(t *testing.T) {
	// recursion: μh. (ā.h ⊕ b̄)
	rec := hexpr.Mu("h", hexpr.IntCh(
		hexpr.B(hexpr.Out("a"), hexpr.V("h")),
		hexpr.B(hexpr.Out("b"), hexpr.Eps()),
	))
	got := readySetKeys(t, rec)
	if len(got) != 2 || !got["{a!}"] || !got["{b!}"] {
		t.Errorf("recursive ready sets = %v", got)
	}
	// a bare variable has the empty ready set
	sets, err := contract.ReadySets(hexpr.V("h"))
	if err != nil || len(sets) != 1 || len(sets[0]) != 0 {
		t.Errorf("var ready sets = %v, %v", sets, err)
	}
	// duplicate singleton sets are deduplicated
	dup := hexpr.IntChoice{Branches: []hexpr.Branch{
		{Comm: hexpr.Out("a"), Cont: hexpr.Eps()},
		{Comm: hexpr.Out("a"), Cont: hexpr.SendThen("b", hexpr.Eps())},
	}}
	got = readySetKeys(t, dup)
	if len(got) != 1 || !got["{a!}"] {
		t.Errorf("dedup ready sets = %v", got)
	}
	// MustReadySets panics on non-contracts
	if contract.MustReadySets(hexpr.Eps())[0].String() != "{}" {
		t.Error("MustReadySets/String wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustReadySets should panic on events")
		}
	}()
	contract.MustReadySets(hexpr.Act(hexpr.E("a")))
}

func TestReadySetsSeqErrorPropagates(t *testing.T) {
	// Seq with a non-contract on the right whose left can be empty
	bad := hexpr.Seq{Left: hexpr.V("h"), Right: hexpr.Act(hexpr.E("a"))}
	if _, err := contract.ReadySets(bad); err == nil {
		t.Error("non-contract right under empty left must error")
	}
	bad2 := hexpr.Seq{Left: hexpr.Act(hexpr.E("a")), Right: hexpr.Eps()}
	if _, err := contract.ReadySets(bad2); err == nil {
		t.Error("non-contract left must error")
	}
}
