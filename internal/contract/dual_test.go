package contract_test

import (
	"math/rand"
	"testing"

	"susc/internal/compliance"
	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/paperex"
)

func TestDualBasics(t *testing.T) {
	d := contract.MustDual(hexpr.SendThen("a", hexpr.RecvThen("b", hexpr.Eps())))
	want := hexpr.RecvThen("a", hexpr.SendThen("b", hexpr.Eps()))
	if !hexpr.Equal(d, want) {
		t.Errorf("dual = %s, want %s", d.Key(), want.Key())
	}
	// dual of the broker's contract is the canonical broker client
	brDual := contract.MustDual(paperex.Broker())
	want = hexpr.SendThen("Req", hexpr.Ext(
		hexpr.B(hexpr.In("CoBo"), hexpr.SendThen("Pay", hexpr.Eps())),
		hexpr.B(hexpr.In("NoAv"), hexpr.Eps()),
	))
	if !hexpr.Equal(brDual, want) {
		t.Errorf("dual(Br) = %s, want %s", brDual.Key(), want.Key())
	}
}

func TestDualInvolution(t *testing.T) {
	rnd := rand.New(rand.NewSource(71))
	for i := 0; i < 300; i++ {
		c := hexpr.GenerateContract(rnd, 4)
		dd := contract.MustDual(contract.MustDual(c))
		// involution holds up to projection normalisation (e.g. unused μ
		// binders collapse when projecting)
		if !hexpr.Equal(dd, contract.Project(c)) {
			t.Fatalf("dual not involutive on %s: got %s", c.Key(), dd.Key())
		}
	}
}

// TestDualIsCompliantPartner: every contract is compliant with its dual —
// both as client and (when the original is a reasonable client) the dual
// serves it exactly.
func TestDualIsCompliantPartner(t *testing.T) {
	rnd := rand.New(rand.NewSource(72))
	for i := 0; i < 400; i++ {
		c := hexpr.GenerateContract(rnd, 4)
		d := contract.MustDual(c)
		ok, err := compliance.Compliant(c, d)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("contract not compliant with its dual:\n  c %s\n  d %s",
				hexpr.Pretty(c), hexpr.Pretty(d))
		}
	}
}

// TestDualOfPaperClients: the duals of the clients' request bodies are
// services the brokers could be (compliance holds).
func TestDualOfPaperClients(t *testing.T) {
	body, _, err := contract.RequestBody(paperex.C1(), "r1")
	if err != nil {
		t.Fatal(err)
	}
	d := contract.MustDual(body)
	ok, err := compliance.Compliant(body, d)
	if err != nil || !ok {
		t.Errorf("C1's body should be compliant with its dual: %v %v", ok, err)
	}
	// and the real broker is substitutable-compatible with the dual in the
	// sense that both serve C1
	ok, err = compliance.Compliant(body, paperex.Broker())
	if err != nil || !ok {
		t.Errorf("C1's body should be compliant with Br: %v %v", ok, err)
	}
}

func TestDualRejectsOpenTerms(t *testing.T) {
	if _, err := contract.Dual(hexpr.V("h")); err == nil {
		t.Error("dual of an open term must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDual should panic")
		}
	}()
	contract.MustDual(hexpr.V("h"))
}
