package engine

import (
	"fmt"
	"strings"

	"susc/internal/budget"
	"susc/internal/hexpr"
	"susc/internal/lint"
	"susc/internal/parser"
	"susc/internal/plans"
	"susc/internal/verify"
)

// Lint runs the static-analysis suite at whole-file granularity over the
// session's tiers. A nil opts.Cache defaults to the session cache.
func (s *Session) Lint(src string, opts lint.Options) []lint.Diagnostic {
	if opts.Cache == nil {
		opts.Cache = s.Cache
	}
	return lint.SourceCached(src, s.Disk, opts)
}

// Audit runs the whole-network security-flow audit over the session's
// tiers. A nil opts.Cache defaults to the session cache (whose attached
// disk tier the audit pipeline reuses).
func (s *Session) Audit(src string, opts lint.Options) *lint.AuditResult {
	if opts.Cache == nil {
		opts.Cache = s.Cache
	}
	return lint.AuditSource(src, opts)
}

// Assess enumerates and classifies every plan of one client through the
// session cache.
func (s *Session) Assess(f *parser.File, c parser.ClientDecl, opts plans.Options) ([]plans.Assessment, error) {
	opts.Cache = s.Cache
	return plans.AssessAll(f.Repo, f.Table, c.Loc, c.Expr, opts)
}

// AssessStream is Assess with results yielded as the fused engine
// produces them.
func (s *Session) AssessStream(f *parser.File, c parser.ClientDecl, opts plans.Options, yield func(plans.Assessment) error) error {
	opts.Cache = s.Cache
	return plans.AssessStream(f.Repo, f.Table, c.Loc, c.Expr, opts, yield)
}

// CheckPlan validates one client's declared plan through the session
// cache.
func (s *Session) CheckPlan(f *parser.File, c parser.ClientDecl, bud *budget.Budget) (*verify.Report, error) {
	if c.Plan == nil {
		return nil, fmt.Errorf("client %s declares no plan", c.Name)
	}
	return verify.CheckPlanOpts(f.Repo, f.Table, c.Loc, c.Expr, c.Plan,
		verify.Options{Cache: s.Cache, Budget: bud})
}

// CheckAllResult is everything one checkall run produced: the network
// verdict plus the lint findings and declared-plan audit that ride along
// with it. The front ends render these; Err folds them into the
// exit-code protocol.
type CheckAllResult struct {
	Report *verify.Report
	Lint   []lint.Diagnostic // warning-or-worse findings, semantic analyzers included
	Audit  *lint.AuditResult // declared-plan flow audit (SUSC017–021)
}

// CheckAll validates every declared client, optionally under bounded
// availability. Without capacity bounds the components of a network
// never interact, so each client is checked by its own exploration — the
// per-client verdicts persist independently in the session's disk tier,
// which is what makes re-checking an edited repository proportional to
// the edit's dependency cone. With bounded availability the clients
// compete for replicas and only the whole-network product exploration is
// sound, so the verdict is checked (and persisted) whole.
//
// The lint and audit passes always run first, so a result carrying an
// error may still carry findings worth rendering.
func (s *Session) CheckAll(f *parser.File, src string, caps map[hexpr.Location]int, bud *budget.Budget) (*CheckAllResult, error) {
	res := &CheckAllResult{}
	if len(f.Clients) == 0 {
		return res, fmt.Errorf("the file declares no clients")
	}
	// Lint findings surface alongside the verdict, semantic analyzers
	// included; witness details stay behind `susc explain`. The file
	// parsed strictly, so there are no parse-level issues to forward.
	// With a disk tier, the whole run's findings persist under the file's
	// content hash.
	res.Lint = lint.RunCached(f, nil, src, s.Disk,
		lint.Options{MinSeverity: lint.Warning, Analyzers: lint.AllAnalyzers(), Cache: s.Cache})
	// Declared-plan flow audit (SUSC017–021): each client's declared plan
	// is flow-analyzed; warning-or-worse findings fail the run. Full plan
	// families stay behind `susc audit`.
	res.Audit = lint.Audit(f, nil, lint.Options{
		MinSeverity: lint.Warning, Cache: s.Cache, Budget: bud, AuditDeclaredOnly: true})
	var specs []verify.ClientSpec
	for _, c := range f.Clients {
		if c.Plan == nil {
			return res, fmt.Errorf("client %s declares no plan", c.Name)
		}
		specs = append(specs, verify.ClientSpec{Loc: c.Loc, Client: c.Expr, Plan: c.Plan})
	}
	opts := verify.Options{Cache: s.Cache, Budget: bud}
	if caps != nil {
		opts.Capacities = caps
		r, err := verify.CheckNetwork(f.Repo, f.Table, specs, opts)
		if err != nil {
			return res, err
		}
		res.Report = r
		return res, nil
	}
	// Component-wise validation: the network is valid iff every client
	// is, and the first failing client's report is the network's. Valid
	// components sum their explored states.
	agg := &verify.Report{Verdict: verify.Valid}
	for _, sp := range specs {
		cr, err := verify.CheckPlanOpts(f.Repo, f.Table, sp.Loc, sp.Client, sp.Plan, opts)
		if err != nil {
			return res, err
		}
		if cr.Verdict != verify.Valid {
			agg = cr
			break
		}
		agg.States += cr.States
	}
	res.Report = agg
	return res, nil
}

// AuditInternal returns the message of the first isolated analyzer panic
// in the audit pass, or "" — budget-cutoff SUSC016 diagnostics ("analysis
// stopped …") do not count.
func (r *CheckAllResult) AuditInternal() string {
	if r.Audit == nil {
		return ""
	}
	return internalIn(r.Audit.Diagnostics)
}

// AuditFindings counts the audit's warning-or-worse findings, internal
// errors excluded.
func (r *CheckAllResult) AuditFindings() int {
	if r.Audit == nil {
		return 0
	}
	n := 0
	for _, d := range r.Audit.Diagnostics {
		if d.Severity >= lint.Warning && d.Code != lint.CodeInternalError {
			n++
		}
	}
	return n
}

// Err folds a finished checkall run onto the exit-code protocol: an
// isolated analyzer panic outranks a budget cutoff, which outranks an
// invalid network, which outranks audit findings.
func (r *CheckAllResult) Err(bud *budget.Budget) error {
	if msg := r.AuditInternal(); msg != "" {
		return &budget.InternalError{Unit: "audit", Value: msg}
	}
	if r.Report.Verdict == verify.Unknown {
		if e := bud.Exhausted(); e != nil {
			return e
		}
		return fmt.Errorf("verdict unknown: %s", r.Report.Reason)
	}
	if r.Report.Verdict != verify.Valid {
		return fmt.Errorf("network is not valid")
	}
	if e := bud.Exhausted(); e != nil {
		return e
	}
	if n := r.AuditFindings(); n > 0 {
		return fmt.Errorf("audit: %d finding(s)", n)
	}
	return nil
}

// internalIn scans diagnostics for an isolated analyzer panic (a SUSC016
// "failed" diagnostic that is not a budget cutoff).
func internalIn(diags []lint.Diagnostic) string {
	for _, d := range diags {
		if d.Code == lint.CodeInternalError && !strings.HasPrefix(d.Message, "analysis stopped") {
			return d.Message
		}
	}
	return ""
}

// LintErr folds lint diagnostics onto the exit-code protocol: an
// isolated analyzer panic (exit 2) outranks a budget cutoff (exit 3),
// which outranks error-severity findings (exit 1).
func LintErr(diags []lint.Diagnostic, bud *budget.Budget) error {
	if msg := internalIn(diags); msg != "" {
		return &budget.InternalError{Unit: "lint", Value: msg}
	}
	if e := bud.Exhausted(); e != nil {
		return e
	}
	errs := 0
	for _, d := range diags {
		if d.Severity == lint.Error {
			errs++
		}
	}
	if errs > 0 {
		return fmt.Errorf("lint: %d error(s)", errs)
	}
	return nil
}

// AuditErr folds an audit run onto the exit-code protocol, counting
// warning-or-worse findings.
func AuditErr(res *lint.AuditResult, bud *budget.Budget) error {
	if msg := internalIn(res.Diagnostics); msg != "" {
		return &budget.InternalError{Unit: "audit", Value: msg}
	}
	if e := bud.Exhausted(); e != nil {
		return e
	}
	findings := 0
	for _, d := range res.Diagnostics {
		if d.Severity >= lint.Warning && d.Code != lint.CodeInternalError {
			findings++
		}
	}
	if findings > 0 {
		return fmt.Errorf("audit: %d finding(s)", findings)
	}
	return nil
}

// CheckErr folds a single-plan verdict onto the exit-code protocol.
func CheckErr(r *verify.Report, bud *budget.Budget) error {
	if r.Verdict == verify.Unknown {
		if e := bud.Exhausted(); e != nil {
			return e
		}
		return fmt.Errorf("verdict unknown: %s", r.Reason)
	}
	if r.Verdict != verify.Valid {
		return fmt.Errorf("plan is not valid")
	}
	return nil
}

// SelectClient resolves -client: an empty name picks the file's only
// client, anything else must match a declaration.
func SelectClient(f *parser.File, name string) (parser.ClientDecl, error) {
	if name == "" {
		if len(f.Clients) == 1 {
			return f.Clients[0], nil
		}
		return parser.ClientDecl{}, fmt.Errorf("the file declares %d clients; pick one with -client", len(f.Clients))
	}
	return f.Client(name)
}

// ParseCaps parses "loc=n,loc=n" availability specs.
func ParseCaps(spec string) (map[hexpr.Location]int, error) {
	out := map[hexpr.Location]int{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("-cap wants loc=n pairs, got %q", part)
		}
		n := 0
		if _, err := fmt.Sscanf(val, "%d", &n); err != nil {
			return nil, fmt.Errorf("-cap %q: %v", part, err)
		}
		out[hexpr.Location(name)] = n
	}
	return out, nil
}
