// Package engine hosts the verification session shared by every susc
// front end: one warm memo.Cache layered over an optional persistent
// store tier, the mode-level run functions, and the JSON entry shapes
// both the CLI and the server emit. Keeping the run logic and the entry
// shapes in one place is what makes a served NDJSON record
// byte-identical to the same record from a single-shot CLI run — the
// front ends differ only in where the bytes go and how text output is
// rendered.
package engine

import (
	"os"
	"path/filepath"

	"susc/internal/hash"
	"susc/internal/memo"
	"susc/internal/store"
)

// Session owns the warm verification state one front end shares across
// runs: an in-memory memo cache and, when opened with a cache directory,
// a content-addressed disk tier attached beneath it. The CLI opens one
// session per invocation; the server keeps one alive for its whole
// lifetime, which is where the warm-cache hit rates come from.
//
// The memo cache and the store are both concurrency-safe, so one session
// may serve any number of concurrent runs.
type Session struct {
	Cache *memo.Cache
	Disk  *store.Store // nil when the session is memory-only
}

// Open creates a session. A non-empty dir persists verdicts in
// DIR/susc.store, keyed to the current engine fingerprint; the store's
// advisory lock makes a second process opening the same directory fail
// with a *store.LockedError naming the holder. An empty dir yields a
// memory-only session.
func Open(dir string) (*Session, error) {
	var disk *store.Store
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		var err error
		disk, err = store.Open(filepath.Join(dir, "susc.store"), hash.Fingerprint())
		if err != nil {
			return nil, err
		}
	}
	c := memo.New()
	c.AttachDisk(disk)
	return &Session{Cache: c, Disk: disk}, nil
}

// Close syncs and releases the disk tier, if any. Safe on a nil session
// and idempotent only as far as store.Close is.
func (s *Session) Close() error {
	if s == nil || s.Disk == nil {
		return nil
	}
	return s.Disk.Close()
}
