package engine_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"susc/internal/budget"
	"susc/internal/engine"
	"susc/internal/parser"
	"susc/internal/store"
	"susc/internal/verify"
)

const hotelFile = "../../testdata/hotel.susc"

func hotel(t *testing.T) (*parser.File, string) {
	t.Helper()
	src, err := os.ReadFile(hotelFile)
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return f, string(src)
}

// TestOpenMemoryOnly: an empty dir yields a session with no disk tier,
// and Close is a no-op.
func TestOpenMemoryOnly(t *testing.T) {
	s, err := engine.Open("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Disk != nil {
		t.Fatal("memory-only session has a disk tier")
	}
	if s.Cache == nil {
		t.Fatal("session has no cache")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenLocksStore: two sessions over one cache directory conflict —
// the second Open surfaces the store's typed lock error.
func TestOpenLocksStore(t *testing.T) {
	dir := t.TempDir()
	s1, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = engine.Open(dir)
	var le *store.LockedError
	if !errors.As(err, &le) {
		t.Fatalf("second Open = %v, want *store.LockedError", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := engine.Open(dir)
	if err != nil {
		t.Fatalf("Open after Close = %v", err)
	}
	s2.Close()
}

// TestCheckAllWarm: a session's CheckAll verdict is Valid on the hotel
// network, and a second session over the same store replays it from
// disk.
func TestCheckAllWarm(t *testing.T) {
	f, src := hotel(t)
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		s, err := engine.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.CheckAll(f, src, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Verdict != verify.Valid {
			t.Fatalf("run %d: verdict %v", i, res.Report.Verdict)
		}
		if err := res.Err(nil); err != nil {
			t.Fatalf("run %d: Err = %v", i, err)
		}
		if i == 1 {
			st := s.Disk.Stats()
			if st.PerKind[store.KindPlanReport].Hits == 0 {
				t.Fatal("warm run replayed no plan verdicts from disk")
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckPlanErrors: a client without a plan is a typed refusal, and
// CheckErr maps verdicts onto the exit protocol.
func TestCheckPlanErrors(t *testing.T) {
	f, _ := hotel(t)
	s, err := engine.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := engine.SelectClient(f, "c1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.CheckPlan(f, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.CheckErr(r, nil); err != nil {
		t.Fatalf("valid plan: CheckErr = %v", err)
	}
	noPlan := c
	noPlan.Plan = nil
	if _, err := s.CheckPlan(f, noPlan, nil); err == nil {
		t.Fatal("plan-less client accepted")
	}
}

// TestExitCode pins the protocol every front end shares.
func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{fmt.Errorf("findings"), 1},
		{&budget.InternalError{Unit: "u", Value: "boom"}, 2},
		{&budget.ExhaustedError{Reason: budget.Cancelled}, 3},
		{fmt.Errorf("wrapped: %w", &budget.InternalError{Unit: "u"}), 2},
	}
	for _, c := range cases {
		if got := engine.ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestBudgetedCheckAllFlushesUnknown: a cancelled budget degrades the
// verdict to Unknown and Err reports exhaustion (exit 3), never a
// crash.
func TestBudgetedCheckAllFlushesUnknown(t *testing.T) {
	f, src := hotel(t)
	s, err := engine.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bud := budget.New(ctx, budget.Limits{})
	res, err := s.CheckAll(f, src, nil, bud)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Verdict != verify.Unknown {
		t.Fatalf("verdict %v, want unknown", res.Report.Verdict)
	}
	if got := engine.ExitCode(res.Err(bud)); got != 3 {
		t.Fatalf("exit %d, want 3", got)
	}
}

// TestParseCaps covers the availability-spec grammar.
func TestParseCaps(t *testing.T) {
	caps, err := engine.ParseCaps("br=2, s3=1")
	if err != nil {
		t.Fatal(err)
	}
	if caps["br"] != 2 || caps["s3"] != 1 {
		t.Fatalf("caps = %v", caps)
	}
	if _, err := engine.ParseCaps("nope"); err == nil {
		t.Fatal("malformed spec accepted")
	}
}
