package engine

import (
	"errors"

	"susc/internal/budget"
	"susc/internal/lint"
	"susc/internal/plans"
	"susc/internal/verify"
)

// PlanEntry is the JSON shape of one assessed plan: the batch array of
// `susc plans -json`, the per-line objects of `-json -stream`, and the
// server's plans NDJSON records.
type PlanEntry struct {
	Plan   map[string]string `json:"plan"`
	Report *verify.Report    `json:"report"`
}

// ToPlanEntry converts an assessment to its wire shape.
func ToPlanEntry(a plans.Assessment) PlanEntry {
	m := map[string]string{}
	for r, l := range a.Plan {
		m[string(r)] = string(l)
	}
	return PlanEntry{Plan: m, Report: a.Report}
}

// LintEntry is the JSON shape of one diagnostic in NDJSON output — the
// lint.Diagnostic fields plus the file the finding is in. lint, explain,
// audit and the served lint/audit endpoints all emit it.
type LintEntry struct {
	File string `json:"file"`
	lint.Diagnostic
}

// CoverageEntry is the JSON shape of one client's coverage tables in
// audit NDJSON output, emitted after the diagnostic lines.
type CoverageEntry struct {
	File     string              `json:"file"`
	Coverage lint.ClientCoverage `json:"coverage"`
}

// ExitCode maps a run's final error onto the exit-code protocol every
// front end shares: 0 success, 2 for an internal error (an isolated
// worker panic — the message carries the repro unit), 3 for a budget
// cutoff (state/edge limit, timeout, interruption), 1 for ordinary
// findings and failures. Internal errors outrank budget cutoffs, which
// outrank findings.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	var ie *budget.InternalError
	if errors.As(err, &ie) {
		return 2
	}
	var ee *budget.ExhaustedError
	if errors.As(err, &ee) {
		return 3
	}
	return 1
}
