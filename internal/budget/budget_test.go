package budget

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if e := b.ConsumeStates(1 << 40); e != nil {
		t.Fatalf("nil budget failed: %v", e)
	}
	if e := b.ConsumeEdges(1 << 40); e != nil {
		t.Fatalf("nil budget failed: %v", e)
	}
	if e := b.Check(); e != nil {
		t.Fatalf("nil budget failed: %v", e)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("nil budget Err: %v", err)
	}
	if b.States() != 0 || b.Edges() != 0 {
		t.Fatalf("nil budget counts: %d states, %d edges", b.States(), b.Edges())
	}
}

func TestStateLimitSticky(t *testing.T) {
	b := New(context.Background(), Limits{MaxStates: 10})
	var first *ExhaustedError
	for i := 0; i < 20; i++ {
		if e := b.ConsumeStates(1); e != nil {
			first = e
			break
		}
	}
	if first == nil || first.Reason != StateLimit {
		t.Fatalf("want StateLimit, got %v", first)
	}
	if first.States != 11 {
		t.Fatalf("snapshot states = %d, want 11", first.States)
	}
	// sticky: every later charge fails with the same error
	if e := b.ConsumeEdges(1); e != first {
		t.Fatalf("not sticky: got %v", e)
	}
	if e := b.Check(); e != first {
		t.Fatalf("Check not sticky: got %v", e)
	}
	var ee *ExhaustedError
	if !errors.As(b.Err(), &ee) {
		t.Fatalf("Err() is not an *ExhaustedError: %v", b.Err())
	}
}

func TestEdgeLimit(t *testing.T) {
	b := New(context.Background(), Limits{MaxEdges: 5})
	if e := b.ConsumeEdges(3); e != nil {
		t.Fatalf("unexpected: %v", e)
	}
	e := b.ConsumeEdges(3)
	if e == nil || e.Reason != EdgeLimit {
		t.Fatalf("want EdgeLimit, got %v", e)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{})
	if e := b.Exhausted(); e != nil {
		t.Fatalf("fresh budget exhausted: %v", e)
	}
	cancel()
	e := b.Exhausted()
	if e == nil || e.Reason != Cancelled {
		t.Fatalf("want Cancelled, got %v", e)
	}
	// the consume fast path observes the sticky flag immediately
	if e := b.ConsumeStates(1); e == nil || e.Reason != Cancelled {
		t.Fatalf("consume after cancel: %v", e)
	}
}

func TestConsumeNoticesCancellationWithinPollWindow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(ctx, Limits{})
	var e *ExhaustedError
	for i := 0; i < 2*pollEvery && e == nil; i++ {
		e = b.ConsumeStates(1)
	}
	if e == nil || e.Reason != Cancelled {
		t.Fatalf("cancellation not noticed within %d charges: %v", 2*pollEvery, e)
	}
}

func TestDeadline(t *testing.T) {
	b := New(context.Background(), Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	e := b.Exhausted()
	if e == nil || e.Reason != DeadlineExceeded {
		t.Fatalf("want DeadlineExceeded, got %v", e)
	}
}

func TestContextDeadlineMapsToDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	b := New(ctx, Limits{})
	e := b.Exhausted()
	if e == nil || e.Reason != DeadlineExceeded {
		t.Fatalf("want DeadlineExceeded, got %v", e)
	}
}

func TestConcurrentChargesSingleWinner(t *testing.T) {
	b := New(context.Background(), Limits{MaxStates: 1000})
	var wg sync.WaitGroup
	errs := make([]*ExhaustedError, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if e := b.ConsumeStates(1); e != nil {
					errs[w] = e
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var winner *ExhaustedError
	for _, e := range errs {
		if e == nil {
			continue
		}
		if winner == nil {
			winner = e
		} else if e != winner {
			t.Fatalf("two distinct exhaustion errors: %v vs %v", winner, e)
		}
	}
	if winner == nil || winner.Reason != StateLimit {
		t.Fatalf("want a shared StateLimit error, got %v", winner)
	}
}

func TestGuardConvertsPanic(t *testing.T) {
	err := Guard("plan r1=svc0", func() error { panic("boom") })
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InternalError, got %v", err)
	}
	if ie.Unit != "plan r1=svc0" || ie.Value != "boom" || ie.Stack == "" {
		t.Fatalf("repro bundle incomplete: %+v", ie)
	}
}

func TestGuardPassesThrough(t *testing.T) {
	if err := Guard("u", func() error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	want := errors.New("real")
	if err := Guard("u", func() error { return want }); err != want {
		t.Fatalf("got %v, want %v", err, want)
	}
}
