// Package budget provides the graceful-degradation primitives of the
// exploration engines: bounded, cancellable budgets with cheap atomic
// accounting, and panic isolation for worker pools.
//
// The state spaces behind plan synthesis and verification grow
// exponentially with the specification (Chained(12,2) already explores
// 4096 plans), so a production-scale checker must be able to stop —
// on a state or edge limit, a wall-clock deadline, or a cancelled
// context — and still report a sound partial answer. A Budget is the
// shared meter every engine charges its work against: exhausting it
// never aborts the process, it surfaces as the Unknown verdict of
// internal/verify ("budget exhausted after N states") while verdicts
// decided before the cutoff stand.
//
// A nil *Budget is valid everywhere and means "unbounded, never
// cancelled": every method on a nil receiver is a no-op, so engines
// thread budgets unconditionally without nil checks at call sites and
// un-budgeted runs pay (almost) nothing.
//
// Guard is the companion for worker pools: it converts a worker panic
// into a typed *InternalError carrying the offending unit (a plan key,
// a state key, an analyzer name) as a repro bundle, so one poisoned
// unit fails alone and the rest of the fleet finishes.
package budget

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Reason classifies why a budget was exhausted.
type Reason int

const (
	// StateLimit: the exploration charged more states than Limits.MaxStates.
	StateLimit Reason = iota + 1
	// EdgeLimit: the exploration charged more edges than Limits.MaxEdges.
	EdgeLimit
	// DeadlineExceeded: the wall-clock deadline (Limits.Timeout, or the
	// context's own deadline) passed.
	DeadlineExceeded
	// Cancelled: the context was cancelled (e.g. SIGINT).
	Cancelled
)

func (r Reason) String() string {
	switch r {
	case StateLimit:
		return "state budget exhausted"
	case EdgeLimit:
		return "edge budget exhausted"
	case DeadlineExceeded:
		return "deadline exceeded"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// ExhaustedError is the typed, sticky error a Budget returns once any
// limit is hit or the context is cancelled. The counters are a snapshot
// taken when the budget first failed.
type ExhaustedError struct {
	Reason Reason
	// States and Edges are the totals charged when the budget failed.
	States, Edges int64
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("%s after %d states, %d edges", e.Reason, e.States, e.Edges)
}

// Limits bounds one Budget. The zero value is unlimited.
type Limits struct {
	// MaxStates bounds the number of states charged (0 = unlimited).
	MaxStates int64
	// MaxEdges bounds the number of edges charged (0 = unlimited).
	MaxEdges int64
	// Timeout is the wall-clock budget from New (0 = none).
	Timeout time.Duration
}

// pollEvery is how many charges pass between two polls of the context
// and the deadline: polling costs a channel select and a time.Now, so it
// is amortised over a block of cheap atomic adds. Cancellation is still
// noticed within microseconds on any live exploration.
const pollEvery = 256

// Budget is a concurrency-safe work meter: exploration engines charge
// states and edges against it, and the first exceeded limit (or context
// cancellation, or passed deadline) makes every later charge fail with
// the same sticky *ExhaustedError. A nil *Budget is unlimited.
type Budget struct {
	ctx         context.Context
	deadline    time.Time
	hasDeadline bool
	maxStates   int64
	maxEdges    int64

	states atomic.Int64
	edges  atomic.Int64
	polls  atomic.Int64
	done   atomic.Pointer[ExhaustedError]
}

// New returns a budget drawing cancellation from ctx (nil = background)
// and bounded by lim. A Limits.Timeout starts counting now; if ctx also
// carries a deadline, whichever comes first wins (a passed context
// deadline surfaces as DeadlineExceeded, a plain cancellation as
// Cancelled).
func New(ctx context.Context, lim Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &Budget{ctx: ctx, maxStates: lim.MaxStates, maxEdges: lim.MaxEdges}
	if lim.Timeout > 0 {
		b.deadline = time.Now().Add(lim.Timeout)
		b.hasDeadline = true
	}
	return b
}

// ConsumeStates charges n states and reports the sticky failure, if any.
func (b *Budget) ConsumeStates(n int64) *ExhaustedError {
	if b == nil {
		return nil
	}
	if e := b.done.Load(); e != nil {
		return e
	}
	if s := b.states.Add(n); b.maxStates > 0 && s > b.maxStates {
		return b.fail(StateLimit)
	}
	return b.maybePoll()
}

// ConsumeEdges charges n edges and reports the sticky failure, if any.
func (b *Budget) ConsumeEdges(n int64) *ExhaustedError {
	if b == nil {
		return nil
	}
	if e := b.done.Load(); e != nil {
		return e
	}
	if s := b.edges.Add(n); b.maxEdges > 0 && s > b.maxEdges {
		return b.fail(EdgeLimit)
	}
	return b.maybePoll()
}

// Check charges nothing but still participates in the periodic
// context/deadline poll — the gate for loops that do work without
// visiting states (plan enumeration, per-declaration analyzer loops).
func (b *Budget) Check() *ExhaustedError {
	if b == nil {
		return nil
	}
	if e := b.done.Load(); e != nil {
		return e
	}
	return b.maybePoll()
}

// Exhausted returns the sticky failure, or nil while the budget holds.
// Unlike the Consume methods it always polls the context and deadline,
// so a cancellation is never missed at a decision point.
func (b *Budget) Exhausted() *ExhaustedError {
	if b == nil {
		return nil
	}
	if e := b.done.Load(); e != nil {
		return e
	}
	return b.poll()
}

// Err is Exhausted as a plain error (a nil error when the budget holds),
// for call sites that only propagate.
func (b *Budget) Err() error {
	if e := b.Exhausted(); e != nil {
		return e
	}
	return nil
}

// States returns the states charged so far.
func (b *Budget) States() int64 {
	if b == nil {
		return 0
	}
	return b.states.Load()
}

// Edges returns the edges charged so far.
func (b *Budget) Edges() int64 {
	if b == nil {
		return 0
	}
	return b.edges.Load()
}

func (b *Budget) maybePoll() *ExhaustedError {
	if b.polls.Add(1)%pollEvery != 0 {
		return nil
	}
	return b.poll()
}

func (b *Budget) poll() *ExhaustedError {
	if err := b.ctx.Err(); err != nil {
		if err == context.DeadlineExceeded {
			return b.fail(DeadlineExceeded)
		}
		return b.fail(Cancelled)
	}
	if b.hasDeadline && time.Now().After(b.deadline) {
		return b.fail(DeadlineExceeded)
	}
	return nil
}

// fail records the first failure; racing charges all observe the winner.
func (b *Budget) fail(r Reason) *ExhaustedError {
	e := &ExhaustedError{Reason: r, States: b.states.Load(), Edges: b.edges.Load()}
	if b.done.CompareAndSwap(nil, e) {
		return e
	}
	return b.done.Load()
}

// InternalError is the typed failure of one isolated unit of work: a
// worker panic converted by Guard into an error that names the unit it
// was processing (the repro bundle — a plan key, a state key, an
// analyzer name) and carries the recovered value and stack. It fails
// that unit only; sibling units of the pool keep running.
type InternalError struct {
	// Unit identifies the work item whose processing panicked, precise
	// enough to reproduce the failure (e.g. a plan key).
	Unit string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error in %s: %v", e.Unit, e.Value)
}

// Guard runs fn, converting a panic into a typed *InternalError naming
// the unit. Worker pools wrap each unit of work in a Guard so a poisoned
// unit fails alone instead of crashing the process.
func Guard(unit string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &InternalError{Unit: unit, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}

// GuardLazy is Guard with the unit name rendered only on the panic path.
// Hot loops whose unit description is expensive to build (e.g. a plan key
// formatted from a map) pass a closure instead of paying for the string on
// every healthy call.
func GuardLazy(unit func() string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &InternalError{Unit: unit(), Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}
