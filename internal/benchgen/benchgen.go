// Package benchgen builds the parameterized workloads of the benchmark
// harness: repositories with a scalable number of hotels, contracts of
// controlled depth and width, event chains with nested framings, and
// λ-programs of controlled size. Benchmarks (bench_test.go) and the
// experiment tables (cmd/experiments) share these generators.
package benchgen

import (
	"fmt"
	"sort"
	"strings"

	"susc/internal/hexpr"
	"susc/internal/lambda"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/policy"
)

// HotelWorld is a scaled-up variant of the paper's §2 scenario.
type HotelWorld struct {
	Repo   network.Repository
	Table  *policy.Table
	Client hexpr.Expr
	Loc    hexpr.Location
	// GoodPlan is a valid plan (broker + the first compliant, policy-
	// respecting hotel).
	GoodPlan network.Plan
}

// Hotels builds a repository with one broker and n hotels. Hotels cycle
// through four profiles mirroring S1–S4 of the paper: blacklisted,
// non-compliant (extra Del), valid, and threshold-violating. n must be at
// least 3 so that a valid hotel exists.
func Hotels(n int) *HotelWorld {
	phi := paperex.BookingPolicy()
	blacklist := []hexpr.Value{hexpr.Sym("h0")}
	in := phi.MustInstantiate(policy.Binding{
		Sets: map[string][]hexpr.Value{"bl": blacklist},
		Ints: map[string]int{"p": 45, "t": 100},
	})
	table := policy.NewTable(in)
	repo := network.Repository{paperex.LocBr: paperex.Broker()}
	goodHotel := hexpr.Location("")
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("h%d", i)
		var price, rating int
		withDel := false
		switch i % 4 {
		case 0: // blacklisted (h0) or cheap
			price, rating = 40, 80
		case 1: // non-compliant
			price, rating, withDel = 40, 80, true
		case 2: // valid: price over threshold but perfect rating
			price, rating = 90, 100
			if goodHotel == "" {
				goodHotel = hexpr.Location(name)
			}
		case 3: // threshold violation
			price, rating = 50, 90
		}
		outs := []hexpr.Branch{
			hexpr.B(hexpr.Out("Bok"), hexpr.Eps()),
			hexpr.B(hexpr.Out("UnA"), hexpr.Eps()),
		}
		if withDel {
			outs = append(outs, hexpr.B(hexpr.Out("Del"), hexpr.Eps()))
		}
		repo[hexpr.Location(name)] = hexpr.Cat(
			hexpr.Act(hexpr.E(paperex.EvSgn, hexpr.Sym(name))),
			hexpr.Act(hexpr.E(paperex.EvPrice, hexpr.Int(price))),
			hexpr.Act(hexpr.E(paperex.EvRating, hexpr.Int(rating))),
			hexpr.RecvThen("IdC", hexpr.IntCh(outs...)),
		)
	}
	client := hexpr.Open("r1", in.ID(),
		hexpr.SendThen("Req", hexpr.Ext(
			hexpr.B(hexpr.In("CoBo"), hexpr.SendThen("Pay", hexpr.Eps())),
			hexpr.B(hexpr.In("NoAv"), hexpr.Eps()),
		)))
	return &HotelWorld{
		Repo:     repo,
		Table:    table,
		Client:   client,
		Loc:      "cl",
		GoodPlan: network.Plan{"r1": paperex.LocBr, "r3": goodHotel},
	}
}

// ChainedWorld is a workload that scales the *request* dimension of plan
// synthesis: a chain of `depth` brokerage levels, each offering `fanout`
// interchangeable services, so the pruned plan space holds fanout^depth
// complete plans — every one of them valid.
type ChainedWorld struct {
	Repo   network.Repository
	Table  *policy.Table
	Client hexpr.Expr
	Loc    hexpr.Location
	// Requests lists the chained request identifiers r1…r<depth>.
	Requests []hexpr.RequestID
	// PlanCount is the number of complete plans surviving compliance
	// pruning: fanout^depth.
	PlanCount int
}

// Chained builds the chained-brokers world: the client opens r1 towards a
// level-1 service; every level-i service (i < depth) serves its level's
// protocol and opens r<i+1> towards a level-(i+1) service in a nested
// session. The `fanout` services of one level are interchangeable (same
// protocol, distinct signing events), and each level uses level-distinct
// channels, so compliance pruning confines request r<i> to level i — the
// plan space is exactly the fanout^depth level-respecting assignments.
// The policy table is empty: all plans are valid, which makes the workload
// a pure measurement of exploration cost across an exponential plan
// family with heavily shared state.
func Chained(depth, fanout int) *ChainedWorld {
	body := func(i int) hexpr.Expr {
		return hexpr.SendThen(fmt.Sprintf("m%d", i),
			hexpr.RecvThen(fmt.Sprintf("k%d", i), hexpr.Eps()))
	}
	repo := network.Repository{}
	count := 1
	var reqs []hexpr.RequestID
	for i := 1; i <= depth; i++ {
		reqs = append(reqs, hexpr.RequestID(fmt.Sprintf("r%d", i)))
		count *= fanout
		for j := 0; j < fanout; j++ {
			name := fmt.Sprintf("s%d_%d", i, j)
			reply := hexpr.SendThen(fmt.Sprintf("k%d", i), hexpr.Eps())
			var work hexpr.Expr = reply
			if i < depth {
				// The nested call: every level-i service requests r<i+1>
				// with the same body, so each plan selects one downstream
				// service for whichever level-i service it picked.
				work = hexpr.Cat(
					hexpr.Open(hexpr.RequestID(fmt.Sprintf("r%d", i+1)),
						hexpr.NoPolicy, body(i+1)),
					reply,
				)
			}
			repo[hexpr.Location(name)] = hexpr.Cat(
				hexpr.Act(hexpr.E("sgn", hexpr.Sym(name))),
				hexpr.RecvThen(fmt.Sprintf("m%d", i), work),
			)
		}
	}
	client := hexpr.Open("r1", hexpr.NoPolicy, body(1))
	return &ChainedWorld{
		Repo:      repo,
		Table:     policy.NewTable(),
		Client:    client,
		Loc:       "cl",
		Requests:  reqs,
		PlanCount: count,
	}
}

// ChainedSource renders the Chained world as a surface-syntax
// specification (one service declaration per repository entry, one
// planless client), so source-level tools — the lint suite in
// particular — can be benchmarked over the same exponential plan family
// the engine benchmarks use. The output parses back to the same world.
func ChainedSource(depth, fanout int) string {
	w := Chained(depth, fanout)
	locs := make([]string, 0, len(w.Repo))
	for loc := range w.Repo {
		locs = append(locs, string(loc))
	}
	sort.Strings(locs)
	var b strings.Builder
	for _, loc := range locs {
		fmt.Fprintf(&b, "service %s = %s;\n", loc, hexpr.Pretty(w.Repo[hexpr.Location(loc)]))
	}
	fmt.Fprintf(&b, "client cl at %s = %s;\n", w.Loc, hexpr.Pretty(w.Client))
	return b.String()
}

// ChainedClient is one planned client of the ChainedClients world.
type ChainedClient struct {
	Name string
	Loc  hexpr.Location
	// Req is the client's own opening request (unique per client, so the
	// declarations lint clean).
	Req  hexpr.RequestID
	Expr hexpr.Expr
	Plan network.Plan
}

// ChainedClientsWorld extends the Chained repository with n fully planned
// clients, the workload of the incremental-verification benchmarks: many
// declarations over one shared repository, each with a small, mostly
// disjoint dependency cone.
type ChainedClientsWorld struct {
	*ChainedWorld
	Clients []ChainedClient
	Depth   int
	Fanout  int
}

// ChainedClients builds n planned clients over the Chained(depth, fanout)
// repository. Every client follows the column-0 spine — r_i bound to
// s<i>_0 — except at one level, its *divergence*: client k diverges at
// level d = 1+(k mod depth) to column c = 1+(k div depth mod (fanout-1)).
// While n ≤ depth·(fanout-1), the divergences are pairwise distinct, so
// each divergent service s<d>_<c> sits in exactly ONE client's dependency
// cone: editing it must invalidate exactly one of the n persisted
// verdicts. (The spine services s<i>_0 sit in almost every cone — editing
// one is the worst case.) All plans are level-respecting, hence valid.
// fanout must be at least 2.
func ChainedClients(depth, fanout, n int) *ChainedClientsWorld {
	w := Chained(depth, fanout)
	out := &ChainedClientsWorld{ChainedWorld: w, Depth: depth, Fanout: fanout}
	for k := 0; k < n; k++ {
		req := hexpr.RequestID(fmt.Sprintf("q%d", k))
		c := ChainedClient{
			Name: fmt.Sprintf("c%d", k),
			Loc:  hexpr.Location(fmt.Sprintf("cl%d", k)),
			Req:  req,
			Expr: hexpr.Open(req, hexpr.NoPolicy,
				hexpr.SendThen("m1", hexpr.RecvThen("k1", hexpr.Eps()))),
			Plan: network.Plan{},
		}
		d := 1 + k%depth
		col := 1 + (k/depth)%(fanout-1)
		for i := 1; i <= depth; i++ {
			j := 0
			if i == d {
				j = col
			}
			r := req
			if i > 1 {
				r = hexpr.RequestID(fmt.Sprintf("r%d", i))
			}
			c.Plan[r] = hexpr.Location(fmt.Sprintf("s%d_%d", i, j))
		}
		out.Clients = append(out.Clients, c)
	}
	return out
}

// Divergent returns the service only client k's plan selects off the
// column-0 spine — the canonical single-cone edit target.
func (w *ChainedClientsWorld) Divergent(k int) hexpr.Location {
	d := 1 + k%w.Depth
	col := 1 + (k/w.Depth)%(w.Fanout-1)
	return hexpr.Location(fmt.Sprintf("s%d_%d", d, col))
}

// ChainedClientsSource renders the ChainedClients world as a
// surface-syntax specification with fully planned clients, ready for
// `susc checkall`: the workload of the incremental-smoke CI job. The
// output parses back to the same world.
func ChainedClientsSource(depth, fanout, n int) string {
	w := ChainedClients(depth, fanout, n)
	locs := make([]string, 0, len(w.Repo))
	for loc := range w.Repo {
		locs = append(locs, string(loc))
	}
	sort.Strings(locs)
	var b strings.Builder
	for _, loc := range locs {
		fmt.Fprintf(&b, "service %s = %s;\n", loc, hexpr.Pretty(w.Repo[hexpr.Location(loc)]))
	}
	for _, c := range w.Clients {
		var binds []string
		binds = append(binds, fmt.Sprintf("%s -> %s", c.Req, c.Plan[c.Req]))
		for i := 2; i <= depth; i++ {
			r := hexpr.RequestID(fmt.Sprintf("r%d", i))
			binds = append(binds, fmt.Sprintf("%s -> %s", r, c.Plan[r]))
		}
		fmt.Fprintf(&b, "client %s at %s plan { %s } = %s;\n",
			c.Name, c.Loc, strings.Join(binds, ", "), hexpr.Pretty(c.Expr))
	}
	return b.String()
}

// PingPong builds a compliant recursive contract pair exchanging `width`
// distinct messages per round for `depth` alternation layers: the product
// automaton grows with both parameters.
func PingPong(width, depth int) (client, server hexpr.Expr) {
	client = pingPongSide(width, depth, true)
	server = pingPongSide(width, depth, false)
	return client, server
}

func pingPongSide(width, depth int, isClient bool) hexpr.Expr {
	var build func(d int) hexpr.Expr
	build = func(d int) hexpr.Expr {
		if d == 0 {
			if isClient {
				return hexpr.SendThen("bye", hexpr.Eps())
			}
			return hexpr.RecvThen("bye", hexpr.Eps())
		}
		bs := make([]hexpr.Branch, 0, width)
		for i := 0; i < width; i++ {
			ch := fmt.Sprintf("m%d_%d", d, i)
			ack := fmt.Sprintf("ack%d_%d", d, i)
			if isClient {
				bs = append(bs, hexpr.B(hexpr.Out(ch),
					hexpr.RecvThen(ack, build(d-1))))
			} else {
				bs = append(bs, hexpr.B(hexpr.In(ch),
					hexpr.SendThen(ack, build(d-1))))
			}
		}
		if isClient {
			return hexpr.IntCh(bs...)
		}
		return hexpr.Ext(bs...)
	}
	return build(depth)
}

// LoopContract builds μh.(m0!.h ⊕ … ⊕ m_{w-1}!.h ⊕ bye!) and its dual —
// a compliant pair with a single recursive state of width w.
func LoopContract(width int) (client, server hexpr.Expr) {
	cbs := make([]hexpr.Branch, 0, width+1)
	sbs := make([]hexpr.Branch, 0, width+1)
	for i := 0; i < width; i++ {
		ch := fmt.Sprintf("m%d", i)
		cbs = append(cbs, hexpr.B(hexpr.Out(ch), hexpr.V("h")))
		sbs = append(sbs, hexpr.B(hexpr.In(ch), hexpr.V("k")))
	}
	cbs = append(cbs, hexpr.B(hexpr.Out("bye"), hexpr.Eps()))
	sbs = append(sbs, hexpr.B(hexpr.In("bye"), hexpr.Eps()))
	return hexpr.Mu("h", hexpr.IntCh(cbs...)), hexpr.Mu("k", hexpr.Ext(sbs...))
}

// EventChain builds a chain of n events wrapped in `nesting` framings of
// distinct policies (policy i forbids the event named bad_i, which the
// chain never fires, so the expression is valid). It returns the
// expression and the table with every policy.
func EventChain(n, nesting int) (hexpr.Expr, *policy.Table) {
	table := policy.NewTable()
	var e hexpr.Expr = hexpr.Eps()
	parts := make([]hexpr.Expr, 0, n)
	for i := 0; i < n; i++ {
		parts = append(parts, hexpr.Act(hexpr.E(fmt.Sprintf("ev%d", i%7), hexpr.Int(i))))
	}
	e = hexpr.Cat(parts...)
	for i := 0; i < nesting; i++ {
		a := &policy.Automaton{
			Name:   fmt.Sprintf("pol%d", i),
			States: []string{"q0", "qv"},
			Start:  "q0",
			Finals: []string{"qv"},
			Edges: []policy.Edge{
				{From: "q0", To: "qv", EventName: fmt.Sprintf("bad%d", i)},
			},
		}
		in := a.MustInstantiate(policy.Binding{})
		table.Add(in)
		e = hexpr.Frame(in.ID(), e)
	}
	return e, table
}

// RedundantFramings wraps the event chain in `depth` framings of the SAME
// policy — the workload the regularization of internal/valid collapses to
// depth one.
func RedundantFramings(n, depth int) (hexpr.Expr, *policy.Table) {
	a := &policy.Automaton{
		Name:   "pol",
		States: []string{"q0", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges:  []policy.Edge{{From: "q0", To: "qv", EventName: "bad"}},
	}
	in := a.MustInstantiate(policy.Binding{})
	table := policy.NewTable(in)
	parts := make([]hexpr.Expr, 0, n)
	for i := 0; i < n; i++ {
		parts = append(parts, hexpr.Act(hexpr.E(fmt.Sprintf("ev%d", i%7))))
	}
	e := hexpr.Cat(parts...)
	for i := 0; i < depth; i++ {
		e = hexpr.Frame(in.ID(), hexpr.Cat(hexpr.Act(hexpr.E("mark", hexpr.Int(i))), e))
	}
	return e, table
}

// LambdaChain builds a λ-program firing n events through n nested
// applications — a workload for effect-inference benchmarks.
func LambdaChain(n int) lambda.Term {
	var body lambda.Term = lambda.Unit{}
	for i := 0; i < n; i++ {
		body = lambda.Seq{
			First: lambda.Fire{Event: hexpr.E(fmt.Sprintf("ev%d", i%5), hexpr.Int(i))},
			Then:  body,
		}
	}
	fn := lambda.Abs{Param: "x", ParamType: lambda.UnitT{}, Body: body}
	return lambda.App{Fn: fn, Arg: lambda.Unit{}}
}
