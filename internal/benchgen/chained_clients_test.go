package benchgen_test

import (
	"testing"

	"susc/internal/benchgen"
	"susc/internal/hexpr"
	"susc/internal/memo"
	"susc/internal/parser"
	"susc/internal/verify"
)

// The CI incremental-smoke job runs `susc checkall -cache` over the
// rendered ChainedClients surface, so the generator's guarantees — the
// source parses back to the constructed world, every plan is valid, and
// each divergent service sits in exactly one client's cone — are load-
// bearing. depth=6, fanout=4, n=18 is the CI configuration.
const (
	ccDepth  = 6
	ccFanout = 4
	ccN      = 18
)

func TestChainedClientsSourceRoundTrips(t *testing.T) {
	w := benchgen.ChainedClients(ccDepth, ccFanout, ccN)
	src := benchgen.ChainedClientsSource(ccDepth, ccFanout, ccN)
	f, err := parser.ParseFile(src)
	if err != nil {
		t.Fatalf("rendered source does not parse: %v", err)
	}
	if len(f.Repo) != len(w.Repo) {
		t.Fatalf("parsed %d services, world has %d", len(f.Repo), len(w.Repo))
	}
	for loc, e := range w.Repo {
		got, ok := f.Repo[loc]
		if !ok {
			t.Fatalf("service %s missing from parsed file", loc)
		}
		if got.Key() != e.Key() {
			t.Errorf("service %s: parsed key %q, want %q", loc, got.Key(), e.Key())
		}
	}
	if len(f.Clients) != ccN {
		t.Fatalf("parsed %d clients, want %d", len(f.Clients), ccN)
	}
	for k, c := range w.Clients {
		got := f.Clients[k]
		if got.Name != c.Name || got.Loc != c.Loc {
			t.Fatalf("client %d: parsed %s at %s, want %s at %s",
				k, got.Name, got.Loc, c.Name, c.Loc)
		}
		if got.Expr.Key() != c.Expr.Key() {
			t.Errorf("client %s: parsed expr key %q, want %q", c.Name, got.Expr.Key(), c.Expr.Key())
		}
		if len(got.Plan) != len(c.Plan) {
			t.Fatalf("client %s: parsed plan has %d bindings, want %d",
				c.Name, len(got.Plan), len(c.Plan))
		}
		for r, loc := range c.Plan {
			if got.Plan[r] != loc {
				t.Errorf("client %s: plan binds %s -> %s, want %s", c.Name, r, got.Plan[r], loc)
			}
		}
	}
}

func TestChainedClientsPlansValid(t *testing.T) {
	w := benchgen.ChainedClients(ccDepth, ccFanout, ccN)
	cache := memo.New()
	for _, c := range w.Clients {
		r, err := verify.CheckPlanOpts(w.Repo, w.Table, c.Loc, c.Expr, c.Plan,
			verify.Options{Cache: cache})
		if err != nil {
			t.Fatalf("client %s: %v", c.Name, err)
		}
		if r.Verdict != verify.Valid {
			t.Fatalf("client %s: verdict %s, want Valid: %s", c.Name, r.Verdict, r)
		}
	}
}

func TestChainedClientsDivergencesDistinct(t *testing.T) {
	w := benchgen.ChainedClients(ccDepth, ccFanout, ccN)
	if max := ccDepth * (ccFanout - 1); ccN > max {
		t.Fatalf("n=%d exceeds depth·(fanout-1)=%d: divergences cannot be distinct", ccN, max)
	}
	seen := map[hexpr.Location]int{}
	for k := range w.Clients {
		d := w.Divergent(k)
		if prev, dup := seen[d]; dup {
			t.Fatalf("clients %d and %d share divergent service %s", prev, k, d)
		}
		seen[d] = k
	}
	// Each divergent service appears in its own client's plan and in no
	// other client's plan — the single-cone property the incremental-smoke
	// job's <10% recompute gate relies on.
	for k, c := range w.Clients {
		d := w.Divergent(k)
		found := false
		for _, loc := range c.Plan {
			if loc == d {
				found = true
			}
		}
		if !found {
			t.Fatalf("client %s does not bind its own divergent service %s", c.Name, d)
		}
		for j, other := range w.Clients {
			if j == k {
				continue
			}
			for _, loc := range other.Plan {
				if loc == d {
					t.Fatalf("client %s binds client %s's divergent service %s",
						other.Name, c.Name, d)
				}
			}
		}
	}
}
