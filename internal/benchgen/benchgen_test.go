package benchgen_test

import (
	"testing"

	"susc/internal/benchgen"
	"susc/internal/parser"
	"susc/internal/plans"
	"susc/internal/verify"
)

// TestChainedPlanSpace: the pruned plan space of Chained(depth, fanout) is
// exactly fanout^depth — every plan binds each level's request to one of
// that level's services — and every plan is valid.
func TestChainedPlanSpace(t *testing.T) {
	for _, tc := range []struct{ depth, fanout int }{
		{1, 3}, {2, 2}, {2, 3}, {3, 2},
	} {
		w := benchgen.Chained(tc.depth, tc.fanout)
		want := 1
		for i := 0; i < tc.depth; i++ {
			want *= tc.fanout
		}
		if w.PlanCount != want {
			t.Fatalf("Chained(%d,%d).PlanCount = %d, want %d",
				tc.depth, tc.fanout, w.PlanCount, want)
		}
		if len(w.Requests) != tc.depth {
			t.Fatalf("Chained(%d,%d) has %d requests", tc.depth, tc.fanout, len(w.Requests))
		}
		as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{PruneNonCompliant: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != want {
			t.Fatalf("Chained(%d,%d): %d pruned plans, want %d",
				tc.depth, tc.fanout, len(as), want)
		}
		for _, a := range as {
			if a.Report.Verdict != verify.Valid {
				t.Fatalf("Chained(%d,%d): plan %s is %s, want valid",
					tc.depth, tc.fanout, a.Plan, a.Report)
			}
		}
	}
}

// TestChainedSourceRoundTrips: the surface rendering of a Chained world
// parses back to a specification with the same repository, the same
// planless client, and the same pruned plan space.
func TestChainedSourceRoundTrips(t *testing.T) {
	const depth, fanout = 3, 2
	src := benchgen.ChainedSource(depth, fanout)
	f, err := parser.ParseFile(src)
	if err != nil {
		t.Fatalf("ChainedSource does not parse: %v\n%s", err, src)
	}
	w := benchgen.Chained(depth, fanout)
	if len(f.Repo) != len(w.Repo) {
		t.Fatalf("parsed %d services, world has %d", len(f.Repo), len(w.Repo))
	}
	c, err := f.Client("cl")
	if err != nil {
		t.Fatal(err)
	}
	as, err := plans.AssessAll(f.Repo, f.Table, c.Loc, c.Expr,
		plans.Options{PruneNonCompliant: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != w.PlanCount {
		t.Fatalf("parsed world has %d plans, want %d", len(as), w.PlanCount)
	}
	for _, a := range as {
		if a.Report.Verdict != verify.Valid {
			t.Fatalf("parsed plan %v is %v, want valid", a.Plan, a.Report.Verdict)
		}
	}
}
