package benchgen_test

import (
	"testing"

	"susc/internal/benchgen"
	"susc/internal/plans"
	"susc/internal/verify"
)

// TestChainedPlanSpace: the pruned plan space of Chained(depth, fanout) is
// exactly fanout^depth — every plan binds each level's request to one of
// that level's services — and every plan is valid.
func TestChainedPlanSpace(t *testing.T) {
	for _, tc := range []struct{ depth, fanout int }{
		{1, 3}, {2, 2}, {2, 3}, {3, 2},
	} {
		w := benchgen.Chained(tc.depth, tc.fanout)
		want := 1
		for i := 0; i < tc.depth; i++ {
			want *= tc.fanout
		}
		if w.PlanCount != want {
			t.Fatalf("Chained(%d,%d).PlanCount = %d, want %d",
				tc.depth, tc.fanout, w.PlanCount, want)
		}
		if len(w.Requests) != tc.depth {
			t.Fatalf("Chained(%d,%d) has %d requests", tc.depth, tc.fanout, len(w.Requests))
		}
		as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{PruneNonCompliant: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != want {
			t.Fatalf("Chained(%d,%d): %d pruned plans, want %d",
				tc.depth, tc.fanout, len(as), want)
		}
		for _, a := range as {
			if a.Report.Verdict != verify.Valid {
				t.Fatalf("Chained(%d,%d): plan %s is %s, want valid",
					tc.depth, tc.fanout, a.Plan, a.Report)
			}
		}
	}
}
