// Package paperex defines the running example of §2 of the paper — the
// hotel-booking scenario of Figures 1 and 2 — as reusable values: the
// parametric policy φ(bl,p,t), its two instances φ₁ and φ₂, the clients C1
// and C2, the broker Br and the hotels S1…S4, together with the repository
// they are published in. Tests, examples and benchmarks all build on it.
package paperex

import (
	"susc/internal/hexpr"
	"susc/internal/policy"
)

// Locations of the participants.
const (
	LocC1 hexpr.Location = "c1"
	LocC2 hexpr.Location = "c2"
	LocBr hexpr.Location = "br"
	LocS1 hexpr.Location = "s1"
	LocS2 hexpr.Location = "s2"
	LocS3 hexpr.Location = "s3"
	LocS4 hexpr.Location = "s4"
)

// Event names used by the hotels.
const (
	EvSgn    = "sgn"    // αsgn(x): the hotel x signs the contract
	EvPrice  = "price"  // αp(y): the hotel publishes its price y
	EvRating = "rating" // αta(z): the hotel publishes its Trip Advisor rating z
)

// BookingPolicy returns the parametric usage automaton φ(bl,p,t) of
// Figure 1: a violation occurs when the signing hotel is blacklisted, or
// when its price exceeds p while its rating is below t.
func BookingPolicy() *policy.Automaton {
	return &policy.Automaton{
		Name: "phi",
		Params: []policy.Param{
			{Name: "bl", Kind: policy.SetParam},
			{Name: "p", Kind: policy.IntParam},
			{Name: "t", Kind: policy.IntParam},
		},
		States: []string{"q1", "q2", "q3", "q4", "q5", "q6"},
		Start:  "q1",
		Finals: []string{"q6"},
		Edges: []policy.Edge{
			{From: "q1", To: "q2", EventName: EvSgn, Guards: []policy.Guard{policy.G(policy.NotInSet, "bl")}},
			{From: "q1", To: "q6", EventName: EvSgn, Guards: []policy.Guard{policy.G(policy.InSet, "bl")}},
			{From: "q2", To: "q3", EventName: EvPrice, Guards: []policy.Guard{policy.G(policy.LE, "p")}},
			{From: "q2", To: "q4", EventName: EvPrice, Guards: []policy.Guard{policy.G(policy.GT, "p")}},
			{From: "q4", To: "q5", EventName: EvRating, Guards: []policy.Guard{policy.G(policy.GE, "t")}},
			{From: "q4", To: "q6", EventName: EvRating, Guards: []policy.Guard{policy.G(policy.LT, "t")}},
		},
	}
}

// Phi1 instantiates φ({s1}, 45, 100), the policy client C1 imposes.
func Phi1() *policy.Instance {
	return BookingPolicy().MustInstantiate(policy.Binding{
		Sets: map[string][]hexpr.Value{"bl": {hexpr.Sym("s1")}},
		Ints: map[string]int{"p": 45, "t": 100},
	})
}

// Phi2 instantiates φ({s1,s3}, 40, 70), the policy client C2 imposes.
func Phi2() *policy.Instance {
	return BookingPolicy().MustInstantiate(policy.Binding{
		Sets: map[string][]hexpr.Value{"bl": {hexpr.Sym("s1"), hexpr.Sym("s3")}},
		Ints: map[string]int{"p": 40, "t": 70},
	})
}

// Policies returns the policy table holding φ₁ and φ₂.
func Policies() *policy.Table { return policy.NewTable(Phi1(), Phi2()) }

// clientBody is Req.(CoBo.Pay + NoAv): send the request, then either
// receive the confirmation and settle the bill, or receive the
// no-availability message.
func clientBody() hexpr.Expr {
	return hexpr.SendThen("Req", hexpr.Ext(
		hexpr.B(hexpr.In("CoBo"), hexpr.SendThen("Pay", hexpr.Eps())),
		hexpr.B(hexpr.In("NoAv"), hexpr.Eps()),
	))
}

// C1 is the first client: open₁,φ₁ Req.(CoBo.Pay + NoAv) close₁,φ₁.
func C1() hexpr.Expr {
	return hexpr.Open("r1", Phi1().ID(), clientBody())
}

// C2 is the second client: open₂,φ₂ Req.(CoBo.Pay + NoAv) close₂,φ₂.
func C2() hexpr.Expr {
	return hexpr.Open("r2", Phi2().ID(), clientBody())
}

// Broker is Br = Req.open₃,∅ IdC.(Bok + UnA) close₃,∅ (CoBo.Pay ⊕ NoAv):
// receive the request, contact a hotel in a nested session, forward the
// outcome to the client.
func Broker() hexpr.Expr {
	return hexpr.RecvThen("Req", hexpr.Cat(
		hexpr.Open("r3", hexpr.NoPolicy,
			hexpr.SendThen("IdC", hexpr.Ext(
				hexpr.B(hexpr.In("Bok"), hexpr.Eps()),
				hexpr.B(hexpr.In("UnA"), hexpr.Eps()),
			))),
		hexpr.IntCh(
			hexpr.B(hexpr.Out("CoBo"), hexpr.RecvThen("Pay", hexpr.Eps())),
			hexpr.B(hexpr.Out("NoAv"), hexpr.Eps()),
		),
	))
}

// hotel builds αsgn(id)·αp(price)·αta(rating)·IdC.(Bok ⊕ UnA [⊕ Del]).
func hotel(id string, price, rating int, withDel bool) hexpr.Expr {
	outs := []hexpr.Branch{
		hexpr.B(hexpr.Out("Bok"), hexpr.Eps()),
		hexpr.B(hexpr.Out("UnA"), hexpr.Eps()),
	}
	if withDel {
		outs = append(outs, hexpr.B(hexpr.Out("Del"), hexpr.Eps()))
	}
	return hexpr.Cat(
		hexpr.Act(hexpr.E(EvSgn, hexpr.Sym(id))),
		hexpr.Act(hexpr.E(EvPrice, hexpr.Int(price))),
		hexpr.Act(hexpr.E(EvRating, hexpr.Int(rating))),
		hexpr.RecvThen("IdC", hexpr.IntCh(outs...)),
	)
}

// S1 is αsgn(s1)·αp(45)·αta(80)·IdC.(Bok ⊕ UnA).
func S1() hexpr.Expr { return hotel("s1", 45, 80, false) }

// S2 is αsgn(s2)·αp(70)·αta(100)·IdC.(Bok ⊕ UnA ⊕ Del): the hotel that may
// answer Del, which the broker cannot handle — S2 is not compliant with Br.
func S2() hexpr.Expr { return hotel("s2", 70, 100, true) }

// S3 is αsgn(s3)·αp(90)·αta(100)·IdC.(Bok ⊕ UnA).
func S3() hexpr.Expr { return hotel("s3", 90, 100, false) }

// S4 is αsgn(s4)·αp(50)·αta(90)·IdC.(Bok ⊕ UnA).
func S4() hexpr.Expr { return hotel("s4", 50, 90, false) }

// Repository is the global trusted repository R of §2: the broker and the
// four hotels, each published at its location.
func Repository() map[hexpr.Location]hexpr.Expr {
	return map[hexpr.Location]hexpr.Expr{
		LocBr: Broker(),
		LocS1: S1(),
		LocS2: S2(),
		LocS3: S3(),
		LocS4: S4(),
	}
}

// Hotels returns the hotel services keyed by location, excluding the
// broker.
func Hotels() map[hexpr.Location]hexpr.Expr {
	return map[hexpr.Location]hexpr.Expr{
		LocS1: S1(), LocS2: S2(), LocS3: S3(), LocS4: S4(),
	}
}
