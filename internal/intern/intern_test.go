package intern

import (
	"math/rand"
	"sync"
	"testing"

	"susc/internal/hexpr"
)

// TestExprAgreesWithKey is the defining property of the table: two
// expressions receive the same ID iff their canonical Key() forms are
// equal. Checked over random well-formed expressions pairwise.
func TestExprAgreesWithKey(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	cfg := hexpr.DefaultGenConfig()
	tab := NewTable()
	const n = 120
	exprs := make([]hexpr.Expr, n)
	ids := make([]ID, n)
	for i := range exprs {
		exprs[i] = hexpr.Generate(rnd, cfg)
		ids[i] = tab.Expr(exprs[i])
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			sameKey := exprs[i].Key() == exprs[j].Key()
			sameID := ids[i] == ids[j]
			if sameKey != sameID {
				t.Fatalf("expr %d vs %d: sameKey=%v sameID=%v\n  a=%s\n  b=%s",
					i, j, sameKey, sameID, exprs[i].Key(), exprs[j].Key())
			}
		}
	}
}

// TestExprStableAcrossCalls re-interns the same expressions (same boxed
// values, exercising the identity fast path, and structurally equal
// rebuilt values, exercising the slow path) and expects identical IDs.
func TestExprStableAcrossCalls(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	cfg := hexpr.DefaultGenConfig()
	tab := NewTable()
	for i := 0; i < 50; i++ {
		e := hexpr.Generate(rnd, cfg)
		a := tab.Expr(e)
		if b := tab.Expr(e); b != a {
			t.Fatalf("re-interning the same value changed the ID: %d vs %d", a, b)
		}
		// A sequence built around e twice must intern both copies alike.
		s1 := hexpr.Cat(e, hexpr.Act(hexpr.E("read", hexpr.Sym("x"))))
		s2 := hexpr.Cat(e, hexpr.Act(hexpr.E("read", hexpr.Sym("x"))))
		if tab.Expr(s1) != tab.Expr(s2) {
			t.Fatalf("structurally equal terms got distinct IDs")
		}
	}
}

func TestKeyAndNodeNamespaces(t *testing.T) {
	tab := NewTable()
	k1 := tab.Key("x")
	k2 := tab.Key("x")
	if k1 != k2 {
		t.Fatalf("Key not idempotent: %d vs %d", k1, k2)
	}
	if tab.Key("y") == k1 {
		t.Fatalf("distinct keys share an ID")
	}
	n1 := tab.Node('P', k1, k2)
	if n2 := tab.Node('P', k1, k2); n2 != n1 {
		t.Fatalf("Node not idempotent: %d vs %d", n1, n2)
	}
	if tab.Node('L', k1, k2) == n1 {
		t.Fatalf("nodes with distinct tags share an ID")
	}
	if tab.Node('P', k2, tab.Key("y")) == n1 {
		t.Fatalf("nodes with distinct children share an ID")
	}
}

// TestConcurrentIntern hammers one table from many goroutines over a
// shared pool of expressions and checks every goroutine observed the same
// ID per expression. Run under -race this also exercises the identity
// fast path and shard locking for data races.
func TestConcurrentIntern(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	cfg := hexpr.DefaultGenConfig()
	const nExpr, nGo = 40, 8
	exprs := make([]hexpr.Expr, nExpr)
	for i := range exprs {
		exprs[i] = hexpr.Generate(rnd, cfg)
	}
	tab := NewTable()
	got := make([][]ID, nGo)
	var wg sync.WaitGroup
	for g := 0; g < nGo; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]ID, nExpr)
			// vary the visiting order per goroutine
			for k := 0; k < nExpr; k++ {
				i := (k*7 + g*13) % nExpr
				ids[i] = tab.Expr(exprs[i])
				tab.Node('P', ids[i], ids[i])
				tab.Key("shared")
			}
			got[g] = ids
		}(g)
	}
	wg.Wait()
	for g := 1; g < nGo; g++ {
		for i := range exprs {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutine %d interned expr %d as %d, goroutine 0 as %d",
					g, i, got[g][i], got[0][i])
			}
		}
	}
}

func TestPack(t *testing.T) {
	seen := map[uint64]bool{}
	for _, a := range []ID{0, 1, 2, 1000, 1 << 20} {
		for _, b := range []ID{0, 1, 2, 1000, 1 << 20} {
			k := Pack(a, b)
			if seen[k] {
				t.Fatalf("Pack collision at (%d,%d)", a, b)
			}
			seen[k] = true
		}
	}
	if Pack(1, 2) == Pack(2, 1) {
		t.Fatal("Pack must be order-sensitive")
	}
}
