// Package intern maps history expressions (and small caller-defined keys)
// to compact integer IDs. Two expressions receive the same ID iff their
// canonical Key() forms are equal, so an ID comparison replaces a full
// recursive Key() string build on the hot paths of the static analyses
// (the verify visited set, the compliance product index, the lts builder
// memo).
//
// Interning works bottom-up: children are interned first and a short
// per-node key — a type tag plus the child IDs — identifies the node, so
// the cost of interning a term is one small-map lookup per node instead of
// the quadratic string concatenation Key() performs on deep sequences.
// Tables are safe for concurrent use (sharded maps under RWMutexes) and
// are shared across goroutines by the memoisation layer (internal/memo).
package intern

import (
	"hash/maphash"
	"strconv"
	"sync"
	"sync/atomic"
	"unsafe"

	"susc/internal/hexpr"
)

// ID is a compact identifier for an interned value. IDs are unique within
// one Table and start at 0; they are never reused.
type ID int32

const shardCount = 64 // power of two

type shard struct {
	mu  sync.RWMutex
	ids map[string]ID
}

// nodeKey identifies a tagged pair of already-interned children — the key
// of Node. Comparable, so interning composite nodes needs no string
// building at all.
type nodeKey struct {
	tag  byte
	a, b ID
}

type nodeShard struct {
	mu  sync.RWMutex
	ids map[nodeKey]ID
}

// Table interns strings and expressions to IDs. The zero value is not
// usable; construct with NewTable.
type Table struct {
	seed   maphash.Seed
	next   atomic.Int32
	shards [shardCount]shard
	nodes  [shardCount]nodeShard
	// byIdent is the identity fast path: expression interface words →
	// ID. The analyses recirculate the same boxed expression values (the
	// repository services, memoised step targets, walked sub-terms), so
	// after the first structural intern of a term, re-interning it is a
	// single lock-free lookup instead of a full tree walk. Entries keep
	// their boxed value alive through the key's data pointer, so an
	// address is never reused while its entry is visible.
	byIdent sync.Map // ifaceWords -> ID
}

// ifaceWords is the runtime representation of a non-nil interface value.
// Two equal word pairs denote the very same boxed value, hence the same
// expression; distinct pairs say nothing (the slow path decides).
type ifaceWords struct {
	typ  unsafe.Pointer
	data unsafe.Pointer
}

func exprWords(e hexpr.Expr) ifaceWords {
	return *(*ifaceWords)(unsafe.Pointer(&e))
}

// NewTable returns an empty interning table.
func NewTable() *Table {
	t := &Table{seed: maphash.MakeSeed()}
	for i := range t.shards {
		t.shards[i].ids = map[string]ID{}
	}
	for i := range t.nodes {
		t.nodes[i].ids = map[nodeKey]ID{}
	}
	return t
}

// Len returns the number of distinct values interned so far.
func (t *Table) Len() int { return int(t.next.Load()) }

// intern returns the ID of key, assigning a fresh one on first sight.
func (t *Table) intern(key string) ID {
	s := &t.shards[maphash.String(t.seed, key)&(shardCount-1)]
	s.mu.RLock()
	id, ok := s.ids[key]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[key]; ok {
		return id
	}
	id = ID(t.next.Add(1) - 1)
	s.ids[key] = id
	return id
}

// Node interns a tagged pair of IDs: a composite whose children are
// already interned, e.g. an internal node of a session tree. Node IDs live
// in their own namespace — they never collide with Key or Expr IDs — and
// the lookup hashes three machine words instead of a built string.
func (t *Table) Node(tag byte, a, b ID) ID {
	k := nodeKey{tag: tag, a: a, b: b}
	s := &t.nodes[(uint32(a)*0x9e3779b1+uint32(b))&(shardCount-1)]
	s.mu.RLock()
	id, ok := s.ids[k]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[k]; ok {
		return id
	}
	id = ID(t.next.Add(1) - 1)
	s.ids[k] = id
	return id
}

// Key interns an arbitrary caller-constructed key. Caller keys live in
// their own namespace: they never collide with expression IDs, but two
// callers using the same key string share an ID, so callers composing
// structured keys should prefix them with a distinguishing tag.
func (t *Table) Key(k string) ID { return t.intern("u" + k) }

// Expr interns a history expression. IDs agree with the canonical
// congruence of hexpr: Expr(a) == Expr(b) iff a.Key() == b.Key().
func (t *Table) Expr(e hexpr.Expr) ID {
	w := exprWords(e)
	if id, ok := t.byIdent.Load(w); ok {
		return id.(ID)
	}
	id := t.exprSlow(e)
	t.byIdent.Store(w, id)
	return id
}

// exprSlow interns structurally, bottom-up; children go through Expr so
// they pick up (and seed) the identity fast path too.
func (t *Table) exprSlow(e hexpr.Expr) ID {
	switch x := e.(type) {
	case hexpr.Nil:
		return t.intern("e")
	case hexpr.Var:
		return t.intern("v" + x.Name)
	case hexpr.Ev:
		return t.intern("a" + x.Event.String())
	case hexpr.Rec:
		body := t.Expr(x.Body)
		return t.intern("r" + x.Name + "\x00" + itoa(body))
	case hexpr.Seq:
		l, r := t.Expr(x.Left), t.Expr(x.Right)
		return t.intern("s" + itoa(l) + "," + itoa(r))
	case hexpr.ExtChoice:
		return t.branches("x", x.Branches)
	case hexpr.IntChoice:
		return t.branches("i", x.Branches)
	case hexpr.Session:
		body := t.Expr(x.Body)
		return t.intern("o" + string(x.Req) + "\x00" + string(x.Policy) + "\x00" + itoa(body))
	case hexpr.Framing:
		body := t.Expr(x.Body)
		return t.intern("f" + string(x.Policy) + "\x00" + itoa(body))
	case hexpr.CloseTag:
		return t.intern("c" + string(x.Req) + "\x00" + string(x.Policy))
	case hexpr.FrameClose:
		return t.intern("q" + string(x.Policy))
	}
	panic("intern: unknown expression type")
}

// branches interns a choice node: the branch guards (channel + direction)
// and the interned continuation IDs, in the order the smart constructors
// canonicalised them to.
func (t *Table) branches(tag string, bs []hexpr.Branch) ID {
	buf := make([]byte, 0, 16+16*len(bs))
	buf = append(buf, tag...)
	for _, b := range bs {
		cont := t.Expr(b.Cont)
		buf = append(buf, b.Comm.Channel...)
		if b.Comm.IsSend() {
			buf = append(buf, '!')
		} else {
			buf = append(buf, '?')
		}
		buf = strconv.AppendInt(buf, int64(cont), 10)
		buf = append(buf, 0)
	}
	return t.intern(string(buf))
}

func itoa(id ID) string { return strconv.FormatInt(int64(id), 10) }

// Pack combines two IDs into a single map key, e.g. for caches keyed by a
// (client, server) pair.
func Pack(a, b ID) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }
