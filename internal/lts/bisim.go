package lts

import (
	"sort"
	"strconv"
	"strings"

	"susc/internal/hexpr"
	"susc/internal/intern"
)

// Bisimilar reports whether two closed expressions are strongly bisimilar:
// their LTSs match transition for transition, label by label. Bisimilarity
// implies equality of traces and preservation of every analysis in this
// module (compliance, validity), making it a sound notion of behavioural
// equality for contracts and services.
func Bisimilar(a, b hexpr.Expr) (bool, error) {
	la, err := Build(a)
	if err != nil {
		return false, err
	}
	lb, err := Build(b)
	if err != nil {
		return false, err
	}
	union := &LTS{} // index-less: only Bisimulation runs on the union
	offset := la.Len()
	union.States = append(union.States, la.States...)
	union.States = append(union.States, lb.States...)
	union.Edges = append(union.Edges, la.Edges...)
	for _, es := range lb.Edges {
		shifted := make([]Edge, len(es))
		for i, e := range es {
			shifted[i] = Edge{Label: e.Label, To: e.To + offset}
		}
		union.Edges = append(union.Edges, shifted)
	}
	class := union.Bisimulation()
	return class[0] == class[offset], nil
}

// Bisimulation computes the strong-bisimilarity partition of the LTS
// states (Kanellakis–Smolka style partition refinement on labelled
// transitions): the returned slice maps each state to its equivalence
// class, with classes numbered densely from 0.
func (l *LTS) Bisimulation() []int {
	// initial partition: terminated vs not
	class := make([]int, l.Len())
	for i := range class {
		if l.Terminated(i) {
			class[i] = 1
		}
	}
	for {
		// signature: sorted set of (label, class of target)
		sigs := make([]string, l.Len())
		for s := 0; s < l.Len(); s++ {
			var parts []string
			seen := map[string]bool{}
			for _, e := range l.Edges[s] {
				p := e.Label.Key() + "→" + strconv.Itoa(class[e.To])
				if !seen[p] {
					seen[p] = true
					parts = append(parts, p)
				}
			}
			sort.Strings(parts)
			sigs[s] = strconv.Itoa(class[s]) + "|" + strings.Join(parts, ";")
		}
		index := map[string]int{}
		next := make([]int, l.Len())
		changed := false
		for s := 0; s < l.Len(); s++ {
			c, ok := index[sigs[s]]
			if !ok {
				c = len(index)
				index[sigs[s]] = c
			}
			next[s] = c
			if next[s] != class[s] {
				changed = true
			}
		}
		class = next
		if !changed {
			return class
		}
	}
}

// Minimize returns the quotient LTS under strong bisimilarity. State 0 of
// the result is the class of the original initial state; the state
// expression of each class is a representative (the first original state
// of the class).
func (l *LTS) Minimize() *LTS {
	class := l.Bisimulation()
	numClasses := 0
	for _, c := range class {
		if c+1 > numClasses {
			numClasses = c + 1
		}
	}
	// remap so the initial state's class becomes 0
	remap := make([]int, numClasses)
	for i := range remap {
		remap[i] = -1
	}
	nextID := 0
	assign := func(c int) int {
		if remap[c] == -1 {
			remap[c] = nextID
			nextID++
		}
		return remap[c]
	}
	assign(class[0])
	for s := 0; s < l.Len(); s++ {
		assign(class[s])
	}
	out := &LTS{
		States: make([]hexpr.Expr, nextID),
		Edges:  make([][]Edge, nextID),
		tab:    intern.NewTable(),
		index:  map[intern.ID]int{},
	}
	filled := make([]bool, nextID)
	for s := 0; s < l.Len(); s++ {
		c := remap[class[s]]
		if filled[c] {
			continue
		}
		filled[c] = true
		out.States[c] = l.States[s]
		seen := map[string]bool{}
		for _, e := range l.Edges[s] {
			t := remap[class[e.To]]
			k := e.Label.Key() + "→" + strconv.Itoa(t)
			if !seen[k] {
				seen[k] = true
				out.Edges[c] = append(out.Edges[c], Edge{Label: e.Label, To: t})
			}
		}
	}
	for i, e := range out.States {
		// representatives may collide on keys across classes only if they
		// were bisimilar but structurally distinct; index keeps the first
		k := out.tab.Expr(e)
		if _, ok := out.index[k]; !ok {
			out.index[k] = i
		}
	}
	return out
}
