package lts

import (
	"math/rand"
	"testing"

	"susc/internal/hexpr"
)

func step1(t *testing.T, e hexpr.Expr) Transition {
	t.Helper()
	ts := Step(e)
	if len(ts) != 1 {
		t.Fatalf("Step(%s) has %d transitions, want 1", e.Key(), len(ts))
	}
	return ts[0]
}

func TestStepEvent(t *testing.T) {
	tr := step1(t, hexpr.Act(hexpr.E("sgn", hexpr.Int(1))))
	if tr.Label.Kind != hexpr.LEvent || tr.Label.Event.Name != "sgn" {
		t.Errorf("label = %v", tr.Label)
	}
	if !hexpr.IsNil(tr.To) {
		t.Errorf("target = %s, want eps", tr.To.Key())
	}
}

func TestStepChoices(t *testing.T) {
	ic := hexpr.IntCh(
		hexpr.B(hexpr.Out("Bok"), hexpr.Eps()),
		hexpr.B(hexpr.Out("UnA"), hexpr.Eps()),
	)
	ts := Step(ic)
	if len(ts) != 2 {
		t.Fatalf("internal choice: %d transitions, want 2", len(ts))
	}
	for _, tr := range ts {
		if tr.Label.Kind != hexpr.LComm || !tr.Label.Comm.IsSend() {
			t.Errorf("internal-choice label %v is not an output", tr.Label)
		}
	}
	ec := hexpr.Ext(
		hexpr.B(hexpr.In("Bok"), hexpr.Act(hexpr.E("ok"))),
		hexpr.B(hexpr.In("UnA"), hexpr.Eps()),
	)
	ts = Step(ec)
	if len(ts) != 2 {
		t.Fatalf("external choice: %d transitions, want 2", len(ts))
	}
	for _, tr := range ts {
		if tr.Label.Kind != hexpr.LComm || tr.Label.Comm.IsSend() {
			t.Errorf("external-choice label %v is not an input", tr.Label)
		}
	}
}

func TestStepSessionAndClose(t *testing.T) {
	s := hexpr.Open("r1", "phi", hexpr.SendThen("Req", hexpr.Eps()))
	tr := step1(t, s)
	if tr.Label.Kind != hexpr.LOpen || tr.Label.Req != "r1" || tr.Label.Policy != "phi" {
		t.Fatalf("label = %v", tr.Label)
	}
	// target is Req! · close[r1,phi]
	want := hexpr.Cat(hexpr.SendThen("Req", hexpr.Eps()), hexpr.CloseTag{Req: "r1", Policy: "phi"})
	if !hexpr.Equal(tr.To, want) {
		t.Fatalf("target = %s, want %s", tr.To.Key(), want.Key())
	}
	// run to the close
	tr2 := step1(t, tr.To) // fires Req!
	tr3 := step1(t, tr2.To)
	if tr3.Label.Kind != hexpr.LClose || tr3.Label.Req != "r1" {
		t.Fatalf("expected close, got %v", tr3.Label)
	}
	if !hexpr.IsNil(tr3.To) {
		t.Fatalf("after close: %s", tr3.To.Key())
	}
}

func TestStepFraming(t *testing.T) {
	f := hexpr.Frame("phi", hexpr.Act(hexpr.E("a")))
	tr := step1(t, f)
	if tr.Label.Kind != hexpr.LFrameOpen || tr.Label.Policy != "phi" {
		t.Fatalf("label = %v", tr.Label)
	}
	tr2 := step1(t, tr.To) // fires a
	tr3 := step1(t, tr2.To)
	if tr3.Label.Kind != hexpr.LFrameClose || tr3.Label.Policy != "phi" {
		t.Fatalf("expected frame close, got %v", tr3.Label)
	}
}

func TestStepSeqOnlyLeftMoves(t *testing.T) {
	e := hexpr.Cat(hexpr.Act(hexpr.E("a")), hexpr.Act(hexpr.E("b")))
	ts := Step(e)
	if len(ts) != 1 || ts[0].Label.Event.Name != "a" {
		t.Fatalf("Seq must move on the left first: %v", ts)
	}
	if !hexpr.Equal(ts[0].To, hexpr.Act(hexpr.E("b"))) {
		t.Fatalf("residual = %s", ts[0].To.Key())
	}
}

func TestStepRecUnfolds(t *testing.T) {
	r := hexpr.Mu("h", hexpr.SendThen("a", hexpr.V("h")))
	ts := Step(r)
	if len(ts) != 1 || ts[0].Label.Comm != hexpr.Out("a") {
		t.Fatalf("rec step = %v", ts)
	}
	if !hexpr.Equal(ts[0].To, r) {
		t.Fatalf("μh.ā.h should loop to itself, got %s", ts[0].To.Key())
	}
}

func TestStepTerminalStates(t *testing.T) {
	if len(Step(hexpr.Eps())) != 0 {
		t.Error("eps must be terminal")
	}
	if len(Step(hexpr.V("h"))) != 0 {
		t.Error("a free variable must be stuck")
	}
}

func TestBuildFiniteRecursion(t *testing.T) {
	// μh.(ā.h ⊕ b̄) has exactly 2 states: itself and ε.
	r := hexpr.Mu("h", hexpr.IntCh(
		hexpr.B(hexpr.Out("a"), hexpr.V("h")),
		hexpr.B(hexpr.Out("b"), hexpr.Eps()),
	))
	l, err := Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("states = %d, want 2", l.Len())
	}
	if !l.CanReachTermination(0) {
		t.Error("should reach termination via b̄")
	}
	if len(l.Stuck()) != 0 {
		t.Errorf("stuck states: %v", l.Stuck())
	}
}

func TestBuildBrokerExample(t *testing.T) {
	// Br = Req.open₃∅ IdC.(Bok+UnA) close₃ (CoBo.Pay ⊕ NoAv)
	br := hexpr.RecvThen("Req", hexpr.Cat(
		hexpr.Open("r3", hexpr.NoPolicy,
			hexpr.SendThen("IdC", hexpr.Ext(
				hexpr.B(hexpr.In("Bok"), hexpr.Eps()),
				hexpr.B(hexpr.In("UnA"), hexpr.Eps()),
			))),
		hexpr.IntCh(
			hexpr.B(hexpr.Out("CoBo"), hexpr.SendThen("Pay", hexpr.Eps())),
			hexpr.B(hexpr.Out("NoAv"), hexpr.Eps()),
		),
	))
	if err := hexpr.Check(br); err != nil {
		t.Fatal(err)
	}
	l, err := Build(br)
	if err != nil {
		t.Fatal(err)
	}
	if !l.CanReachTermination(0) {
		t.Error("broker should be able to terminate")
	}
	// Exactly one trace of the broker reaches ε via CoBo·Pay:
	// Req? open₃ IdC! Bok? close₃ CoBo! Pay!  (7 steps)
	found := false
	for _, tr := range l.Traces(7) {
		if len(tr) != 7 {
			continue
		}
		if tr[0].Kind == hexpr.LComm && tr[0].Comm == hexpr.In("Req") &&
			tr[6].Kind == hexpr.LComm && tr[6].Comm == hexpr.Out("Pay") {
			found = true
		}
	}
	if !found {
		t.Error("expected the Req…Pay trace of the broker")
	}
}

func TestBuildStateOf(t *testing.T) {
	e := hexpr.Cat(hexpr.Act(hexpr.E("a")), hexpr.Act(hexpr.E("b")))
	l, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	if l.StateOf(e) != 0 {
		t.Error("initial state must be 0")
	}
	if l.StateOf(hexpr.Act(hexpr.E("b"))) < 0 {
		t.Error("intermediate state missing")
	}
	if l.StateOf(hexpr.Act(hexpr.E("zzz"))) != -1 {
		t.Error("unknown state should be -1")
	}
}

func TestBuildBoundedRejectsExplosion(t *testing.T) {
	// A deep expression with a tiny bound.
	e := hexpr.Cat(
		hexpr.Act(hexpr.E("a")), hexpr.Act(hexpr.E("b")), hexpr.Act(hexpr.E("c")),
		hexpr.Act(hexpr.E("d")), hexpr.Act(hexpr.E("e")),
	)
	if _, err := BuildBounded(e, 2); err == nil {
		t.Error("expected state-bound error")
	}
}

func TestBuildRandomAlwaysFinite(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	cfg := hexpr.DefaultGenConfig()
	for i := 0; i < 300; i++ {
		e := hexpr.Generate(rnd, cfg)
		l, err := BuildBounded(e, 100000)
		if err != nil {
			t.Fatalf("Build(%s): %v", hexpr.Pretty(e), err)
		}
		// every closed well-formed expression can always terminate or loop,
		// but never gets stuck alone
		if s := l.Stuck(); len(s) != 0 {
			t.Fatalf("stand-alone expression stuck: %s at %v", hexpr.Pretty(e), s)
		}
	}
}

func TestTracesPrefixClosed(t *testing.T) {
	e := hexpr.Cat(hexpr.Act(hexpr.E("a")), hexpr.Act(hexpr.E("b")))
	l, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	trs := l.Traces(2)
	// ε, a, a·b
	if len(trs) != 3 {
		t.Fatalf("traces = %d, want 3", len(trs))
	}
	if len(trs[0]) != 0 || len(trs[1]) != 1 || len(trs[2]) != 2 {
		t.Errorf("trace lengths wrong: %v", trs)
	}
}
