// Package lts implements the operational semantics of stand-alone history
// expressions (the rules I-Choice, E-Choice, αAcc, S-Open, P-Open, Conc and
// Rec of the paper) and builds the finite labelled transition system of a
// closed expression.
//
// Finiteness follows from the syntactic restrictions of Definition 1:
// recursion is guarded tail recursion, so unfolding μh.H eventually
// reproduces already-visited terms; the builder memoises states on the
// canonical Key of the term.
package lts

import (
	"fmt"

	"susc/internal/budget"
	"susc/internal/faultinject"
	"susc/internal/hexpr"
	"susc/internal/intern"
)

// Transition is a single small step H —λ→ H′.
type Transition struct {
	Label hexpr.Label
	To    hexpr.Expr
}

// Step returns the successors of e under the stand-alone operational
// semantics. The order of the returned transitions is deterministic.
func Step(e hexpr.Expr) []Transition {
	switch t := e.(type) {
	case hexpr.Nil, hexpr.Var:
		return nil
	case hexpr.Ev:
		// (α Acc): α —α→ ε
		return []Transition{{Label: hexpr.EventLabel(t.Event), To: hexpr.Eps()}}
	case hexpr.IntChoice:
		// (I-Choice): ⊕ᵢ āᵢ.Hᵢ —āᵢ→ Hᵢ
		return branchSteps(t.Branches)
	case hexpr.ExtChoice:
		// (E-Choice): Σᵢ aᵢ.Hᵢ —aᵢ→ Hᵢ
		return branchSteps(t.Branches)
	case hexpr.Session:
		// (S-Open): open_{r,φ}·H·close_{r,φ} —open_{r,φ}→ H·close_{r,φ}
		return []Transition{{
			Label: hexpr.OpenLabel(t.Req, t.Policy),
			To:    hexpr.Cat(t.Body, hexpr.CloseTag{Req: t.Req, Policy: t.Policy}),
		}}
	case hexpr.CloseTag:
		return []Transition{{Label: hexpr.CloseLabel(t.Req, t.Policy), To: hexpr.Eps()}}
	case hexpr.Framing:
		// (P-Open): φ[H] —⌊φ→ H·⌋φ
		return []Transition{{
			Label: hexpr.FrameOpenLabel(t.Policy),
			To:    hexpr.Cat(t.Body, hexpr.FrameClose{Policy: t.Policy}),
		}}
	case hexpr.FrameClose:
		return []Transition{{Label: hexpr.FrameCloseLabel(t.Policy), To: hexpr.Eps()}}
	case hexpr.Seq:
		// (Conc): H —λ→ H′ implies H·H″ —λ→ H′·H″
		inner := Step(t.Left)
		out := make([]Transition, len(inner))
		for i, tr := range inner {
			out[i] = Transition{Label: tr.Label, To: hexpr.Cat(tr.To, t.Right)}
		}
		return out
	case hexpr.Rec:
		// (Rec): H{μh.H/h} —λ→ H′ implies μh.H —λ→ H′
		return Step(hexpr.Unfold(t))
	}
	panic(fmt.Sprintf("lts: unknown expression %T", e))
}

func branchSteps(bs []hexpr.Branch) []Transition {
	out := make([]Transition, len(bs))
	for i, b := range bs {
		out[i] = Transition{Label: hexpr.CommLabel(b.Comm), To: b.Cont}
	}
	return out
}

// Edge is a transition in a built LTS, with the target given as a state
// index.
type Edge struct {
	Label hexpr.Label
	To    int
}

// LTS is the finite transition system of a closed history expression.
// State 0 is the initial expression.
type LTS struct {
	// States holds the expression of each state; States[0] is the initial
	// expression.
	States []hexpr.Expr
	// Edges[i] are the outgoing transitions of state i, in deterministic
	// order.
	Edges [][]Edge

	tab   *intern.Table
	index map[intern.ID]int
}

// DefaultMaxStates bounds LTS construction; well-formed expressions stay
// far below it, the bound only guards against ill-formed input.
const DefaultMaxStates = 1 << 20

// Build explores the state space of e and returns its LTS. It fails if the
// exploration exceeds DefaultMaxStates states (which cannot happen for
// expressions accepted by hexpr.Check).
func Build(e hexpr.Expr) (*LTS, error) { return BuildBounded(e, DefaultMaxStates) }

// BuildBounded is Build with an explicit state bound.
func BuildBounded(e hexpr.Expr, maxStates int) (*LTS, error) {
	return BuildInterned(intern.NewTable(), e, maxStates)
}

// BuildInterned is BuildBounded over a caller-supplied interning table, so
// repeated builds (e.g. through a shared memo.Cache) reuse each other's
// interning work. The builder memoises states on interned IDs instead of
// the recursive Key() strings.
func BuildInterned(tab *intern.Table, e hexpr.Expr, maxStates int) (*LTS, error) {
	return BuildBudgeted(tab, e, maxStates, nil)
}

// BuildBudgeted is BuildInterned charging every explored state (and its
// outgoing edges) against the budget (nil = unlimited). Exhaustion or
// cancellation aborts construction with the typed *budget.ExhaustedError
// — never a partial LTS, so memoisation layers cannot cache a truncated
// state space.
func BuildBudgeted(tab *intern.Table, e hexpr.Expr, maxStates int, b *budget.Budget) (*LTS, error) {
	l := &LTS{tab: tab, index: map[intern.ID]int{}}
	l.add(e)
	for i := 0; i < len(l.States); i++ {
		if len(l.States) > maxStates {
			return nil, fmt.Errorf("lts: state space exceeds %d states", maxStates)
		}
		if err := b.ConsumeStates(1); err != nil {
			return nil, err
		}
		if faultinject.Enabled() {
			faultinject.Fire(faultinject.LTSBuild, "")
		}
		steps := Step(l.States[i])
		edges := make([]Edge, len(steps))
		for j, tr := range steps {
			edges[j] = Edge{Label: tr.Label, To: l.add(tr.To)}
		}
		l.Edges = append(l.Edges, edges)
		if err := b.ConsumeEdges(int64(len(edges))); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (l *LTS) add(e hexpr.Expr) int {
	k := l.tab.Expr(e)
	if i, ok := l.index[k]; ok {
		return i
	}
	i := len(l.States)
	l.States = append(l.States, e)
	l.index[k] = i
	return i
}

// StateOf returns the index of the state whose expression equals e, or -1.
func (l *LTS) StateOf(e hexpr.Expr) int {
	if l.tab == nil {
		return -1
	}
	if i, ok := l.index[l.tab.Expr(e)]; ok {
		return i
	}
	return -1
}

// Len returns the number of states.
func (l *LTS) Len() int { return len(l.States) }

// Terminated reports whether state i is the terminated expression ε.
func (l *LTS) Terminated(i int) bool { return hexpr.IsNil(l.States[i]) }

// Stuck returns the states that have no outgoing transition and are not
// terminated. A closed well-formed expression alone can only get stuck on a
// free variable, so for checked expressions this is always empty; stuck
// states matter for the product constructions built on top of this package.
func (l *LTS) Stuck() []int {
	var out []int
	for i, es := range l.Edges {
		if len(es) == 0 && !l.Terminated(i) {
			out = append(out, i)
		}
	}
	return out
}

// Trace is a sequence of labels from the initial state.
type Trace []hexpr.Label

// Traces enumerates all traces of length ≤ maxLen starting from the initial
// state, in depth-first deterministic order. Intended for tests and small
// examples; the number of traces can grow exponentially with maxLen.
func (l *LTS) Traces(maxLen int) []Trace {
	var out []Trace
	var walk func(state int, prefix Trace, depth int)
	walk = func(state int, prefix Trace, depth int) {
		out = append(out, append(Trace(nil), prefix...))
		if depth == maxLen {
			return
		}
		for _, e := range l.Edges[state] {
			walk(e.To, append(prefix, e.Label), depth+1)
		}
	}
	walk(0, nil, 0)
	return out
}

// CanReachTermination reports whether state i can reach the terminated
// state ε.
func (l *LTS) CanReachTermination(i int) bool {
	seen := make([]bool, len(l.States))
	var dfs func(int) bool
	dfs = func(s int) bool {
		if l.Terminated(s) {
			return true
		}
		if seen[s] {
			return false
		}
		seen[s] = true
		for _, e := range l.Edges[s] {
			if dfs(e.To) {
				return true
			}
		}
		return false
	}
	return dfs(i)
}
