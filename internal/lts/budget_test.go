package lts

import (
	"context"
	"errors"
	"testing"

	"susc/internal/budget"
	"susc/internal/hexpr"
	"susc/internal/intern"
)

// chainExpr builds a purely sequential expression with n+1 LTS states.
func chainExpr(n int) hexpr.Expr {
	e := hexpr.Eps()
	for i := 0; i < n; i++ {
		e = hexpr.Cat(hexpr.Act(hexpr.E("ev")), e)
	}
	return e
}

// TestBuildBudgetedExhaustion: hitting the state budget aborts with the
// typed error and never returns a partial LTS.
func TestBuildBudgetedExhaustion(t *testing.T) {
	b := budget.New(context.Background(), budget.Limits{MaxStates: 3})
	l, err := BuildBudgeted(intern.NewTable(), chainExpr(10), DefaultMaxStates, b)
	if l != nil {
		t.Fatalf("exhausted build must not return a partial LTS, got %d states", l.Len())
	}
	var ee *budget.ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *budget.ExhaustedError", err)
	}
	if ee.Reason != budget.StateLimit {
		t.Fatalf("reason = %v, want StateLimit", ee.Reason)
	}
}

// TestBuildBudgetedCancelled: a pre-cancelled context aborts the build.
// The context poll is amortised over pollEvery charges, so the expression
// must be large enough for a poll to fire.
func TestBuildBudgetedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := budget.New(ctx, budget.Limits{})
	_, err := BuildBudgeted(intern.NewTable(), chainExpr(1024), DefaultMaxStates, b)
	var ee *budget.ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *budget.ExhaustedError", err)
	}
	if ee.Reason != budget.Cancelled {
		t.Fatalf("reason = %v, want Cancelled", ee.Reason)
	}
}

// TestBuildBudgetedUnbounded: a nil budget and a roomy budget both build
// the full LTS, and the budget is charged for every state.
func TestBuildBudgetedUnbounded(t *testing.T) {
	e := chainExpr(5)
	plain, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	b := budget.New(context.Background(), budget.Limits{MaxStates: 1 << 20})
	l, err := BuildBudgeted(intern.NewTable(), e, DefaultMaxStates, b)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != plain.Len() {
		t.Fatalf("budgeted build has %d states, plain %d", l.Len(), plain.Len())
	}
	if b.States() != int64(l.Len()) {
		t.Fatalf("budget charged %d states for a %d-state LTS", b.States(), l.Len())
	}
}
