package lts

import (
	"math/rand"
	"testing"

	"susc/internal/hexpr"
)

// bisimilar wraps Bisimilar for tests.
func bisimilar(t *testing.T, a, b hexpr.Expr) bool {
	t.Helper()
	ok, err := Bisimilar(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestBisimulationIdenticalTerms(t *testing.T) {
	e := hexpr.Mu("h", hexpr.SendThen("a", hexpr.RecvThen("b", hexpr.V("h"))))
	if !bisimilar(t, e, e) {
		t.Error("a term must be bisimilar to itself")
	}
}

func TestBisimulationUnfolding(t *testing.T) {
	// μh.ā.h is bisimilar to its unfolding ā.μh.ā.h
	r := hexpr.Mu("h", hexpr.SendThen("a", hexpr.V("h")))
	u := hexpr.Unfold(r.(hexpr.Rec))
	if !bisimilar(t, r, u) {
		t.Error("recursion must be bisimilar to its unfolding")
	}
}

func TestBisimulationDistinguishesLabels(t *testing.T) {
	a := hexpr.SendThen("a", hexpr.Eps())
	b := hexpr.SendThen("b", hexpr.Eps())
	if bisimilar(t, a, b) {
		t.Error("different labels must not be bisimilar")
	}
	// ā.b̄ vs ā: different depth
	ab := hexpr.SendThen("a", hexpr.SendThen("b", hexpr.Eps()))
	if bisimilar(t, a, ab) {
		t.Error("different lengths must not be bisimilar")
	}
}

func TestBisimulationBranchDuplication(t *testing.T) {
	// a?.(X) + a?.(X) collapses to a?.(X)
	x := hexpr.SendThen("r", hexpr.Eps())
	dup := hexpr.ExtChoice{Branches: []hexpr.Branch{
		{Comm: hexpr.In("a"), Cont: x},
		{Comm: hexpr.In("a"), Cont: x},
	}}
	single := hexpr.RecvThen("a", x)
	if !bisimilar(t, dup, single) {
		t.Error("duplicated branches must be bisimilar to the single branch")
	}
}

func TestMinimizePreservesBisimilarity(t *testing.T) {
	rnd := rand.New(rand.NewSource(61))
	cfg := hexpr.DefaultGenConfig()
	for i := 0; i < 200; i++ {
		e := hexpr.Generate(rnd, cfg)
		l, err := Build(e)
		if err != nil {
			t.Fatal(err)
		}
		m := l.Minimize()
		if m.Len() > l.Len() {
			t.Fatalf("minimize grew the LTS: %d -> %d", l.Len(), m.Len())
		}
		// the quotient must be bisimilar to the original: compare the
		// initial states through a fresh union
		if !bisimilar(t, l.States[0], m.States[0]) {
			t.Fatalf("minimized LTS not bisimilar for %s", hexpr.Pretty(e))
		}
		// and the quotient must already be minimal: all classes distinct
		again := m.Minimize()
		if again.Len() != m.Len() {
			t.Fatalf("minimize not idempotent: %d -> %d", m.Len(), again.Len())
		}
	}
}

func TestMinimizeCollapsesUnfoldings(t *testing.T) {
	// a chain of identical loop bodies collapses to the loop
	r := hexpr.Mu("h", hexpr.SendThen("tick", hexpr.V("h")))
	chain := hexpr.SendThen("tick", hexpr.SendThen("tick", r))
	l, err := Build(chain)
	if err != nil {
		t.Fatal(err)
	}
	m := l.Minimize()
	if m.Len() != 1 {
		t.Errorf("infinite tick chain should minimize to 1 state, got %d", m.Len())
	}
}

// TestQuickBisimilarEquivalence: bisimilarity is reflexive and symmetric
// on random terms (transitivity is exercised implicitly by Minimize
// idempotence above).
func TestQuickBisimilarEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(81))
	cfg := hexpr.DefaultGenConfig()
	for i := 0; i < 150; i++ {
		a := hexpr.Generate(rnd, cfg)
		b := hexpr.Generate(rnd, cfg)
		if !bisimilar(t, a, a) {
			t.Fatalf("reflexivity failed on %s", hexpr.Pretty(a))
		}
		if bisimilar(t, a, b) != bisimilar(t, b, a) {
			t.Fatalf("symmetry failed on %s vs %s", hexpr.Pretty(a), hexpr.Pretty(b))
		}
	}
}
