package lts

import (
	"fmt"
	"strings"

	"susc/internal/hexpr"
)

// DOT renders the LTS in Graphviz dot syntax: states are numbered, the
// terminated state ε is a double circle, and edges carry their labels.
func (l *LTS) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	b.WriteString("  __start [shape=point];\n  __start -> s0;\n")
	for i := range l.States {
		shape := "circle"
		if l.Terminated(i) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [shape=%s, tooltip=%q];\n", i, shape, hexpr.Pretty(l.States[i]))
	}
	for i, es := range l.Edges {
		for _, e := range es {
			fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", i, e.To, e.Label.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}
