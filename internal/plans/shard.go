package plans

import (
	"errors"
	"sync"
	"sync/atomic"

	"susc/internal/budget"
	"susc/internal/ring"
	"susc/internal/verify"
)

// The sharded parallel frontier BFS expands the shared state graph ahead
// of the replay fleet. Expansion is where the engine's real work lives —
// compiled-row lifting, monitor advances, successor interning — while a
// replay over an already-expanded graph is a cheap walk of prebuilt edges.
// Running the expansion frontier across all workers first means the
// replay fleet almost never blocks on a node's expansion mutex.
//
// The prefetch is semantics-free by construction: a node's groups are a
// pure function of the node (buildGroups draws only on the compiled rows
// and the node's monitor), so it does not matter which worker expands a
// node or in which order nodes are reached — every replay still observes
// the exact groups the sequential engine would have built lazily, and
// replay output stays byte-identical. Node indices assigned during a
// concurrent prefetch may differ between runs, but an fnode.idx only
// addresses scratch arrays (visited slots); no output derives from it.
//
// Sharding: worker w owns the nodes with idx ≡ w (mod workers). Every
// worker expands only nodes it owns, so the per-shard visited array needs
// no synchronisation; successors owned by other shards are handed off in
// batches through mutex-guarded ring queues (one inbox per shard).
// Publishing never blocks — the inboxes are unbounded rings, not bounded
// channels — so shards cannot deadlock on each other's hand-off.

// serialAssessThreshold is the work size below which AssessStream ignores
// Options.Workers and runs sequentially: spawning a worker fleet, the
// reorder buffer and the per-worker replayers cost more than assessing a
// few dozen plans outright (the BENCH_pr2 Hotels(32) regression, where
// workers=4 was slower than workers=1). Plan count is the proxy for work
// size: past ~64 plans the shared graph is large enough that the fleet
// amortises its setup.
const serialAssessThreshold = 64

// prefetchBatch is the hand-off granularity: a worker accumulates this
// many foreign-shard successors before publishing the batch, so the
// cross-shard traffic costs one mutex and one wakeup per batch instead of
// per node.
const prefetchBatch = 128

// prefetchMaxNodes caps the prefetch at the per-replay state bound. The
// union graph the prefetch walks (every candidate of every open) can
// exceed the region any single plan's replay visits; past this many nodes
// the prefetch stops and the replays expand what they actually need,
// lazily, exactly as the sequential engine does.
const prefetchMaxNodes = verify.MaxStates

// shardInbox is one shard's incoming hand-off queue: batches of nodes the
// shard owns, published by the other workers.
type shardInbox struct {
	mu      sync.Mutex
	batches ring.Queue[[]*fnode]
	// notify wakes the idle owner; capacity 1 makes the send non-blocking
	// while guaranteeing a waiter never misses a publication.
	notify chan struct{}
}

func (in *shardInbox) put(batch []*fnode) {
	in.mu.Lock()
	in.batches.Push(batch)
	in.mu.Unlock()
	select {
	case in.notify <- struct{}{}:
	default:
	}
}

func (in *shardInbox) drainInto(q *ring.Queue[*fnode]) {
	in.mu.Lock()
	for in.batches.Len() > 0 {
		for _, n := range in.batches.Pop() {
			q.Push(n)
		}
	}
	in.mu.Unlock()
}

// expandSharded runs the sharded parallel frontier BFS from the start
// node, expanding the whole reachable graph (every candidate of every
// open) across Options.Workers goroutines. It is called only when the
// union call graph is acyclic (eng.cycleFree), which bounds the graph:
// with a cyclic union the nesting — and the graph — can be unbounded even
// though every individual plan is acyclic, and only the per-plan cycle
// precheck keeps replays away from the divergence.
//
// The prefetch is best-effort: budget exhaustion, cancellation, the node
// cap, or an isolated panic stop it early and the replay fleet picks up
// lazily from whatever was built. It never returns an error — a node's
// genuine expansion error is published on the node and every replay
// reaching it reports it exactly as the sequential engine would.
func (eng *fusedEngine) expandSharded() {
	workers := eng.opts.Workers
	inboxes := make([]*shardInbox, workers)
	for i := range inboxes {
		inboxes[i] = &shardInbox{notify: make(chan struct{}, 1)}
	}
	// pending counts nodes enqueued anywhere (a frontier, an inbox, an
	// unflushed batch) or being processed. It is incremented before a node
	// becomes visible and decremented after its successors are enqueued,
	// so it reaches zero exactly when no work remains anywhere.
	var pending atomic.Int64
	var expanded atomic.Int64
	done := make(chan struct{})
	var once sync.Once
	finish := func() { once.Do(func() { close(done) }) }

	pending.Store(1)
	inboxes[int(eng.start.idx)%workers].put([]*fnode{eng.start})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var frontier ring.Queue[*fnode]
			// seen dedups this shard's nodes, indexed by idx/workers. Only
			// the owner touches it, so it needs no lock; the prefetch runs
			// once per engine, so a plain byte per slot suffices (the
			// replayers' epoch-stamped arrays exist to be reused across
			// plans — nothing here is reused).
			var seen []bool
			out := make([][]*fnode, workers)
			flush := func() {
				for d, b := range out {
					if len(b) > 0 {
						inboxes[d].put(b)
						out[d] = nil
					}
				}
			}
			enqueue := func(s *fnode) {
				if s == nil || s.ready.Load() {
					return
				}
				pending.Add(1)
				d := int(s.idx) % workers
				if d == w {
					frontier.Push(s)
					return
				}
				out[d] = append(out[d], s)
				if len(out[d]) >= prefetchBatch {
					inboxes[d].put(out[d])
					out[d] = make([]*fnode, 0, prefetchBatch)
				}
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				if frontier.Len() == 0 {
					flush()
					inboxes[w].drainInto(&frontier)
					if frontier.Len() == 0 {
						select {
						case <-inboxes[w].notify:
							continue
						case <-done:
							return
						}
					}
				}
				n := frontier.Pop()
				si := int(n.idx) / workers
				if si >= len(seen) {
					grown := make([]bool, si+1+len(seen))
					copy(grown, seen)
					seen = grown
				}
				if seen[si] || n.ready.Load() {
					if pending.Add(-1) == 0 {
						finish()
						return
					}
					continue
				}
				seen[si] = true
				if expanded.Add(1) > prefetchMaxNodes {
					finish()
					return
				}
				// The guard converts an isolated panic (injected or genuine)
				// into an error; the node stays unexpanded, and the replay
				// that needs it re-runs the expansion under the per-plan
				// guard — same isolation contract as the lazy path.
				err := budget.GuardLazy(
					func() string { return "prefetch " + n.ct.treeKey() },
					func() error { return n.ensureExpanded(eng) },
				)
				if err != nil {
					var e *budget.ExhaustedError
					if errors.As(err, &e) {
						finish()
						return
					}
					// A published node error or an isolated panic: replays
					// reaching the node handle it; the rest of the graph is
					// still worth prefetching.
				} else {
					for gi := range n.groups {
						g := &n.groups[gi]
						if g.next != nil {
							enqueue(g.next)
							continue
						}
						if g.ext != nil {
							for _, c := range g.ext.cnexts {
								enqueue(c)
							}
						}
					}
				}
				if pending.Add(-1) == 0 {
					finish()
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
