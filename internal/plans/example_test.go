package plans_test

import (
	"fmt"

	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/plans"
)

// Synthesize extracts exactly the valid plans of the paper's §2 scenario:
// for client C1, request 1 must go to the broker and request 3 (the
// broker's) to hotel S3.
func ExampleSynthesize() {
	valid, _ := plans.Synthesize(
		paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(),
		plans.Options{PruneNonCompliant: true},
	)
	for _, p := range valid {
		fmt.Println(p)
	}
	// Output:
	// {r1>br,r3>s3}
}

// AssessAll classifies every orchestration, not just the valid ones.
func ExampleAssessAll() {
	repo := network.Repository{
		"good": hexpr.RecvThen("Order", hexpr.SendThen("Parcel", hexpr.Eps())),
		"bad":  hexpr.RecvThen("Order", hexpr.SendThen("Backorder", hexpr.Eps())),
	}
	client := hexpr.Open("r1", hexpr.NoPolicy,
		hexpr.SendThen("Order", hexpr.RecvThen("Parcel", hexpr.Eps())))
	as, _ := plans.AssessAll(repo, paperex.Policies(), "cl", client, plans.Options{})
	for _, a := range as {
		fmt.Printf("%s %s\n", a.Plan, a.Report.Verdict)
	}
	// Output:
	// {r1>bad} not-compliant
	// {r1>good} valid
}
