package plans_test

import (
	"encoding/json"
	"testing"

	"susc/internal/benchgen"
	"susc/internal/memo"
	"susc/internal/plans"
)

// TestAssessAllWorkersDeterministic: parallel validation must be invisible
// in the output — AssessAll with 1 worker and with 8 workers (sharing one
// memo cache or not) yields byte-identical assessments. Run under -race
// this also exercises the shared cache across validator goroutines.
func TestAssessAllWorkersDeterministic(t *testing.T) {
	w := benchgen.Hotels(12)
	marshal := func(workers int, cache *memo.Cache) []byte {
		t.Helper()
		as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{PruneNonCompliant: true, Workers: workers, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if len(as) == 0 {
			t.Fatal("no assessments")
		}
		type entry struct {
			Plan   string
			Report string
		}
		out := make([]entry, len(as))
		for i, a := range as {
			out[i] = entry{Plan: a.Plan.Key(), Report: a.Report.String()}
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	sequential := marshal(1, nil)
	for _, workers := range []int{1, 8} {
		for _, shared := range []bool{false, true} {
			var cache *memo.Cache
			if shared {
				cache = memo.New()
			}
			got := marshal(workers, cache)
			if string(got) != string(sequential) {
				t.Fatalf("workers=%d shared-cache=%v diverges from sequential:\n%s\nvs\n%s",
					workers, shared, got, sequential)
			}
			// a shared cache must also be reusable for a second, identical run
			if shared {
				if again := marshal(workers, cache); string(again) != string(sequential) {
					t.Fatalf("workers=%d warm-cache rerun diverges:\n%s", workers, again)
				}
				if cache.Stats().Hits() == 0 {
					t.Fatal("warm rerun produced no cache hits")
				}
			}
		}
	}
}
