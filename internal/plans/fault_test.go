package plans_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"susc/internal/benchgen"
	"susc/internal/budget"
	"susc/internal/faultinject"
	"susc/internal/plans"
	"susc/internal/verify"
)

// TestFaultInjectionPanicIsolated injects a one-shot panic at each named
// hook of the engines and asserts the isolation contract: the poisoned
// unit surfaces as a typed *budget.InternalError carrying a repro key,
// every sibling plan is still assessed with its true verdict, and the
// process never crashes. Runs under -race in CI, so the parallel cases
// also pin down the recovery paths' synchronisation.
func TestFaultInjectionPanicIsolated(t *testing.T) {
	w := benchgen.Chained(3, 2) // 8 plans, all valid
	cases := []struct {
		name   string
		point  faultinject.Point
		engine plans.Engine
	}{
		{"legacy-worker", faultinject.PlansWorker, plans.EngineLegacy},
		{"fused-worker", faultinject.PlansWorker, plans.EngineFused},
		{"fused-expand", faultinject.FusedExpand, plans.EngineFused},
		{"fused-replay", faultinject.FusedReplay, plans.EngineFused},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(tc.name, func(t *testing.T) {
				restore := faultinject.Set(faultinject.PanicOnce(tc.point, "", "injected fault"))
				defer restore()
				as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client, plans.Options{
					Engine: tc.engine, PruneNonCompliant: true, Workers: workers,
				})
				var ie *budget.InternalError
				if !errors.As(err, &ie) {
					t.Fatalf("workers=%d: err = %v, want *budget.InternalError", workers, err)
				}
				if ie.Unit == "" {
					t.Fatal("internal error must carry the repro unit")
				}
				if ie.Stack == "" {
					t.Fatal("internal error must carry the recovery stack")
				}
				if len(as) != w.PlanCount {
					t.Fatalf("workers=%d: %d assessments, want all %d plans despite the panic",
						workers, len(as), w.PlanCount)
				}
				unknown := 0
				for _, a := range as {
					switch a.Report.Verdict {
					case verify.Valid:
					case verify.Unknown:
						unknown++
						if !strings.Contains(a.Report.Reason, "internal error") {
							t.Fatalf("unknown reason = %q, want the internal error", a.Report.Reason)
						}
					default:
						t.Fatalf("plan %s: verdict %s on an all-valid workload", a.Plan, a.Report.Verdict)
					}
				}
				if unknown != 1 {
					t.Fatalf("workers=%d: %d unknown verdicts, want exactly 1 (the poisoned unit)",
						workers, unknown)
				}
			})
		}
	}
}

// TestFaultInjectionPanicKeyed: poisoning one specific plan key fails
// exactly that plan — the repro bundle names it.
func TestFaultInjectionPanicKeyed(t *testing.T) {
	w := benchgen.Chained(3, 2)
	all, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client, plans.Options{PruneNonCompliant: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := all[3].Plan.Key()
	restore := faultinject.Set(faultinject.PanicOnce(faultinject.PlansWorker, victim, "keyed fault"))
	defer restore()
	as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client, plans.Options{
		PruneNonCompliant: true, Workers: 4,
	})
	var ie *budget.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *budget.InternalError", err)
	}
	if !strings.Contains(ie.Unit, victim) {
		t.Fatalf("repro unit = %q, want the poisoned plan key %q", ie.Unit, victim)
	}
	for _, a := range as {
		want := verify.Valid
		if a.Plan.Key() == victim {
			want = verify.Unknown
		}
		if a.Report.Verdict != want {
			t.Fatalf("plan %s: verdict %s, want %s", a.Plan, a.Report.Verdict, want)
		}
	}
}

// TestAssessStreamCancelDrains is the acceptance run: Chained(14,2) has
// 16384 plans, far more than 100ms of work, and a cancellation mid-stream
// must drain promptly — verdicts flushed before the cutoff stand, nothing
// after the cutoff claims Valid spuriously (the workload is all-valid, so
// every flushed verdict must be Valid or Unknown), and no goroutine leaks.
func TestAssessStreamCancelDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation soak is not -short")
	}
	before := runtime.NumGoroutine()
	w := benchgen.Chained(14, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := budget.New(ctx, budget.Limits{})
	// Delay each plan while the budget still holds, so the cancellation
	// is guaranteed to land mid-stream; once it lands the hook goes
	// silent and the drain runs at full speed — which is exactly what the
	// test times.
	restore := faultinject.Set(func(p faultinject.Point, unit string) {
		if p == faultinject.PlansWorker && b.Exhausted() == nil {
			time.Sleep(500 * time.Microsecond)
		}
	})
	defer restore()
	time.AfterFunc(100*time.Millisecond, cancel)

	start := time.Now()
	seen, valid, unknown := 0, 0, 0
	err := plans.AssessStream(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Workers: 4, Budget: b},
		func(a plans.Assessment) error {
			seen++
			switch a.Report.Verdict {
			case verify.Valid:
				valid++
			case verify.Unknown:
				unknown++
			default:
				t.Errorf("plan %s: verdict %s on an all-valid workload", a.Plan, a.Report.Verdict)
			}
			return nil
		})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled stream must return nil (partial results), got %v", err)
	}
	e := b.Exhausted()
	if e == nil || e.Reason != budget.Cancelled {
		t.Fatalf("budget must report the cancellation, got %v", e)
	}
	if unknown == 0 {
		t.Fatal("the cut must have left some verdicts undecided (unknown)")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancelled after 100ms but stream drained in %v", elapsed)
	}
	t.Logf("drained after %v: %d flushed (%d valid, %d unknown) of %d plans",
		elapsed, seen, valid, unknown, w.PlanCount)

	// Goroutine-leak check: the worker fleet must be gone. Allow the
	// runtime a moment to park exiting goroutines.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if i > 50 {
			t.Fatalf("goroutine leak: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAssessAllDeadline: a wall-clock budget cuts a large synthesis short
// with partial, sound results and the deadline reason.
func TestAssessAllDeadline(t *testing.T) {
	w := benchgen.Chained(12, 2)
	b := budget.New(context.Background(), budget.Limits{Timeout: 50 * time.Millisecond})
	as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client, plans.Options{
		PruneNonCompliant: true, Workers: 4, Budget: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := b.Exhausted()
	if e == nil {
		t.Skip("machine finished Chained(12,2) inside 50ms; nothing to observe")
	}
	if e.Reason != budget.DeadlineExceeded {
		t.Fatalf("reason = %v, want DeadlineExceeded", e.Reason)
	}
	for _, a := range as {
		if v := a.Report.Verdict; v != verify.Valid && v != verify.Unknown {
			t.Fatalf("plan %s: verdict %s on an all-valid workload", a.Plan, v)
		}
	}
}
