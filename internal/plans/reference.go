// The reference engine: the shared-state-space synthesis engine exactly
// as it stood before the compiled-automata rework (the BENCH_pr2-era
// "fused" engine) — interpreted move stepping through
// network.TreeMovesLazy, map-keyed node interning, skeleton diffing for
// successor re-keying. It is kept for two jobs:
//
//   - an honest, same-machine baseline for the compiled engine:
//     `benchdump -chained-compare` emits legacy / fused (this engine) /
//     compiled series side by side, and the CI perf-smoke job fails when
//     the compiled engine regresses below this one;
//   - a third equivalence oracle: it shares no stepping code with either
//     the legacy engine or the compiled engine, so agreement of all three
//     pins the semantics from independent directions.
//
// It is intentionally frozen — sequential only (no worker fleet), no
// compiled rows, no arenas — and should not be optimised: its whole value
// is being the engine the speedup is measured against.
package plans

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"susc/internal/budget"
	"susc/internal/faultinject"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/intern"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/policy"
	"susc/internal/ring"
	"susc/internal/verify"
)

type refEngine struct {
	repo   network.Repository
	table  *policy.Table
	loc    hexpr.Location
	client hexpr.Expr
	opts   Options
	cache  *memo.Cache
	tab    *intern.Table
	stats  *FusedStats
	// locIDs pre-interns every location of the world (client + repository),
	// read-only after construction, so keying a leaf skips the string
	// build and shard lock of Table.Key.
	locIDs map[hexpr.Location]intern.ID

	// locations is the deterministic candidate order (sorted repository
	// locations), shared with the legacy enumerator.
	locations []hexpr.Location
	// bodies maps each request of the world to its body (request
	// identifiers are unique across a composition, Definition 1).
	bodies map[hexpr.RequestID]hexpr.Expr
	// clientPending/locPending hold the sessions of the client and of
	// every service, in hexpr.Walk pre-order — computed once and shared by
	// plan enumeration and the per-plan static compliance walk, which
	// would otherwise re-walk the expressions for every plan.
	clientPending []pendingReq
	locPending    map[hexpr.Location][]pendingReq
	// clientReqs/locReqs are the deduplicated per-expression request lists
	// feeding the call-cycle successor function.
	clientReqs []hexpr.RequestID
	locReqs    map[hexpr.Location][]hexpr.RequestID

	// cycleFree records that the union call graph — every request pointing
	// at every location enumeration could bind it to — is acyclic, which
	// proves every assessed plan acyclic (each plan's call graph is a
	// subgraph) and lets staticCheck skip the per-plan cycle DFS. Set
	// before workers start, read-only after.
	cycleFree bool

	candMu sync.Mutex
	cands  map[hexpr.RequestID][]hexpr.Location

	nodeMu sync.Mutex
	nodes  map[refNodeKey]*refNode
	start  *refNode

	memoMu sync.Mutex
	memo   *refDecisionTrie
}

// refNodeKey identifies an abstract configuration — the interned session tree
// and monitor signature, matching verify's visited-set key.
type refNodeKey struct {
	tree intern.ID
	sig  intern.ID
}

// refSkel mirrors a session tree with the interned ID of every subtree. A
// move rebuilds only the spine from the root to the leaf that moved — the
// untouched siblings of a successor tree are the very same boxed interface
// values as in the predecessor — so diffing against the predecessor's
// skeleton re-keys a successor in O(spine) instead of re-hashing every
// leaf (internDiff). IDs agree with verify.InternTree by construction.
type refSkel struct {
	id          intern.ID
	left, right *refSkel
}

// refSameBox reports whether two tree interface values share one boxed
// representation. False negatives only cost a re-intern; equal boxes
// always denote equal trees (trees are immutable).
func refSameBox(a, b network.Node) bool {
	type iface struct{ typ, data unsafe.Pointer }
	return *(*iface)(unsafe.Pointer(&a)) == *(*iface)(unsafe.Pointer(&b))
}

func (eng *refEngine) locKey(l hexpr.Location) intern.ID {
	if id, ok := eng.locIDs[l]; ok {
		return id
	}
	return eng.tab.Key(string(l))
}

// internSkel interns a tree from scratch (the start node).
func (eng *refEngine) internSkel(n network.Node) *refSkel {
	switch t := n.(type) {
	case network.Leaf:
		return &refSkel{id: eng.tab.Node('L', eng.locKey(t.Loc), eng.tab.Expr(t.Expr))}
	case network.Pair:
		l, r := eng.internSkel(t.Left), eng.internSkel(t.Right)
		return &refSkel{id: eng.tab.Node('P', l.id, r.id), left: l, right: r}
	}
	panic("plans: unknown tree node")
}

// refSkelArena block-allocates skeleton nodes: every refSkel built during
// expansion stays reachable from the shared graph for the engine's
// lifetime, so bump-allocating them in large blocks trades nothing for
// ~one malloc per thousands of nodes. One arena per worker — expansion
// happens under the expanding node's lock, but distinct nodes expand
// concurrently.
type refSkelArena struct {
	buf []refSkel
}

func (a *refSkelArena) alloc(id intern.ID, l, r *refSkel) *refSkel {
	if len(a.buf) == cap(a.buf) {
		a.buf = make([]refSkel, 0, 4096)
	}
	a.buf = append(a.buf, refSkel{id: id, left: l, right: r})
	return &a.buf[len(a.buf)-1]
}

// internDiff interns a successor tree against its predecessor's skeleton:
// box-identical subtrees reuse the predecessor's skeleton nodes wholesale,
// so only the rebuilt spine pays interning work.
func (eng *refEngine) internDiff(ar *refSkelArena, n, prev network.Node, ps *refSkel) *refSkel {
	if ps != nil && refSameBox(n, prev) {
		return ps
	}
	switch t := n.(type) {
	case network.Leaf:
		return ar.alloc(eng.tab.Node('L', eng.locKey(t.Loc), eng.tab.Expr(t.Expr)), nil, nil)
	case network.Pair:
		var pl, pr network.Node
		var sl, sr *refSkel
		if pp, ok := prev.(network.Pair); ok && ps != nil {
			pl, pr, sl, sr = pp.Left, pp.Right, ps.left, ps.right
		}
		l := eng.internDiff(ar, t.Left, pl, sl)
		r := eng.internDiff(ar, t.Right, pr, sr)
		return ar.alloc(eng.tab.Node('P', l.id, r.id), l, r)
	}
	panic("plans: unknown tree node")
}

// refNode is one shared graph state. The monitor is warmed (signature
// cached) before publication and never mutated afterwards; expansion
// advances only fresh snapshots.
type refNode struct {
	key  refNodeKey
	tree network.Node
	sk   *refSkel
	mon  *history.Monitor
	done bool
	// idx is the node's dense creation index; replays key their visited
	// arrays on it (an indexed slot instead of a map operation per visit).
	idx int32

	// ready flips once groups/err are final; replays check it lock-free
	// (Store is the release publishing the fields, Load the acquire), so
	// the n-th visit of an expanded node costs no mutex.
	ready    atomic.Bool
	mu       sync.Mutex
	expanded bool
	err      error
	groups   []refGroup
}

// refGroup is one outgoing move group of an expanded node: a concrete move
// (req == "", one successor) or a lazy open (one successor per compliant
// candidate, in candidate order). The monitor items of a group are shared
// by all its candidates, so violation is a per-group fact.
type refGroup struct {
	label     hexpr.Label
	req       hexpr.RequestID
	violation hexpr.PolicyID
	next      *refNode  // concrete groups (nil when the move violates)
	cands     []refCand // open groups
}

type refCand struct {
	loc  hexpr.Location
	next *refNode
}

// refDecision is one binding consulted during a replay, in consultation
// order.
type refDecision struct {
	req hexpr.RequestID
	loc hexpr.Location
}

// refDecisionTrie memoises replay reports on the ordered binding decisions
// the replay consulted. Plans agreeing on a replay's consulted decisions
// explore the very same projection of the graph, so they share its report;
// a plan that fails before its later bindings are ever consulted stands in
// for the whole (possibly exponential) family of plans extending the
// failing prefix. Replays consult decisions deterministically, so the
// next-consulted request at any trie position is a function of the path —
// the trie is well-formed by construction.
type refDecisionTrie struct {
	req      hexpr.RequestID // request this node branches on ("" = leaf/empty)
	branches map[hexpr.Location]*refDecisionTrie
	leaf     bool
	report   *verify.Report
}

func newRefEngine(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options) *refEngine {

	cache := opts.Cache
	if cache == nil {
		cache = memo.New()
	}
	stats := opts.Stats
	if stats == nil {
		stats = &FusedStats{}
	}
	eng := &refEngine{
		repo:      repo,
		table:     table,
		loc:       loc,
		client:    client,
		opts:      opts,
		cache:     cache,
		tab:       cache.Interner(),
		stats:     stats,
		locations: repo.Locations(),
		bodies:    map[hexpr.RequestID]hexpr.Expr{},
		cands:     map[hexpr.RequestID][]hexpr.Location{},
		nodes:     map[refNodeKey]*refNode{},
	}
	eng.locIDs = make(map[hexpr.Location]intern.ID, len(eng.locations)+1)
	eng.locIDs[loc] = eng.tab.Key(string(loc))
	for _, l := range eng.locations {
		eng.locIDs[l] = eng.tab.Key(string(l))
	}
	record := func(list []pendingReq) {
		for _, p := range list {
			if _, dup := eng.bodies[p.req]; !dup {
				eng.bodies[p.req] = p.body
			}
		}
	}
	eng.clientPending = requestsOf(client)
	eng.clientReqs = hexpr.Requests(client)
	eng.locPending = make(map[hexpr.Location][]pendingReq, len(eng.locations))
	eng.locReqs = make(map[hexpr.Location][]hexpr.RequestID, len(eng.locations))
	record(eng.clientPending)
	for _, l := range eng.locations {
		eng.locPending[l] = requestsOf(repo[l])
		eng.locReqs[l] = hexpr.Requests(repo[l])
		record(eng.locPending[l])
	}
	startTree := network.Leaf{Loc: loc, Expr: client}
	eng.start = eng.node(startTree, eng.internSkel(startTree), history.NewMonitor(table))
	return eng
}

// candidates returns the repository locations whose service is compliant
// with the request's body, in deterministic (sorted-location) order — the
// branching set of a lazy session-open. Cached per request.
func (eng *refEngine) candidates(req hexpr.RequestID) ([]hexpr.Location, error) {
	eng.candMu.Lock()
	defer eng.candMu.Unlock()
	if locs, ok := eng.cands[req]; ok {
		return locs, nil
	}
	body, known := eng.bodies[req]
	if !known {
		eng.cands[req] = nil
		return nil, nil
	}
	var locs []hexpr.Location
	for _, l := range eng.locations {
		ok, err := eng.cache.Compliant(body, eng.repo[l])
		if err != nil {
			return nil, err
		}
		if ok {
			locs = append(locs, l)
		}
	}
	eng.cands[req] = locs
	return locs, nil
}

// node interns (tree, monitor) into the shared graph, creating the node on
// first sight. The tree is keyed through its precomputed skeleton (sk.id ==
// verify.InternTree of the tree), and the monitor's signature is computed
// here — before the node is published through the map mutex — so readers
// in other goroutines never race on the signature cache.
func (eng *refEngine) node(tree network.Node, sk *refSkel, mon *history.Monitor) *refNode {
	k := refNodeKey{
		tree: sk.id,
		sig:  eng.tab.Key(mon.Signature()),
	}
	eng.nodeMu.Lock()
	defer eng.nodeMu.Unlock()
	if n, ok := eng.nodes[k]; ok {
		return n
	}
	n := &refNode{key: k, tree: tree, sk: sk, mon: mon, done: network.Done(tree), idx: int32(len(eng.nodes))}
	eng.nodes[k] = n
	return n
}

// ensureExpanded computes the node's outgoing groups once: the lazy move
// relation, one monitor advance per group (candidates share their items),
// and the successor nodes. Every plan whose replay reaches this state
// reuses the result.
func (n *refNode) ensureExpanded(eng *refEngine, ar *refSkelArena) error {
	if n.ready.Load() {
		return n.err
	}
	// Budget exhaustion aborts the expansion *without* publishing into
	// n.err: the cutoff is a property of this run's budget, not of the
	// node, and a cached exhaustion would poison replays of plans whose
	// verdict was already decided (or later unbudgeted runs sharing the
	// graph through a long-lived engine).
	if e := eng.opts.Budget.Exhausted(); e != nil {
		return e
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.expanded {
		return n.err
	}
	if faultinject.Enabled() {
		faultinject.Fire(faultinject.FusedExpand, n.tree.Key())
	}
	groups, err := network.TreeMovesLazy(n.tree, eng.repo, eng.candidates, eng.cache.Steps)
	if err != nil {
		n.expanded, n.err = true, err
		n.ready.Store(true)
		return err
	}
	// Built groups accumulate in a local slice published only on success:
	// if a panic (injected or genuine) unwinds mid-expansion, the node
	// stays unexpanded and a sibling plan's retry rebuilds from scratch
	// instead of appending duplicates after a partial n.groups.
	built := make([]refGroup, 0, len(groups))
	for _, g := range groups {
		fg := refGroup{label: g.Moves[0].Label, req: g.Req, violation: hexpr.NoPolicy}
		mon := n.mon
		// Inert items (plain events under an empty policy table) cannot
		// change the signature or violate, so the monitor is shared like
		// an item-less move instead of snapshotted.
		if items := g.Moves[0].Items; len(items) > 0 && !n.mon.InertFor(items) {
			mon = n.mon.Snapshot()
			for _, it := range items {
				if err := mon.Append(it); err != nil {
					if verr, ok := err.(*history.ViolationError); ok {
						fg.violation = verr.Policy
					} else {
						n.expanded = true
						n.err = fmt.Errorf("verify: unexpected monitor error: %w", err)
						n.ready.Store(true)
						return n.err
					}
					break
				}
			}
		}
		if fg.violation == hexpr.NoPolicy {
			if g.Req == "" {
				sk := eng.internDiff(ar, g.Moves[0].Tree, n.tree, n.sk)
				fg.next = eng.node(g.Moves[0].Tree, sk, mon)
				eng.stats.EdgesBuilt.Add(1)
				// The return value is deliberately dropped: the per-state
				// charge at the next pop observes the sticky exhaustion.
				eng.opts.Budget.ConsumeEdges(1)
			} else {
				fg.cands = make([]refCand, 0, len(g.Moves))
				for _, m := range g.Moves {
					sk := eng.internDiff(ar, m.Tree, n.tree, n.sk)
					fg.cands = append(fg.cands, refCand{loc: m.OpenLoc, next: eng.node(m.Tree, sk, mon)})
				}
				eng.stats.EdgesBuilt.Add(uint64(len(g.Moves)))
				eng.opts.Budget.ConsumeEdges(int64(len(g.Moves)))
			}
		}
		built = append(built, fg)
	}
	n.groups = built
	n.expanded = true
	n.ready.Store(true)
	eng.stats.StatesExpanded.Add(1)
	return nil
}

// refRvis is one slot of a refReplayer's visited array: the epoch stamps the
// replay the slot belongs to (bumping the epoch clears the whole array in
// O(1)), prev/gi record how the replay first reached the node (the trace
// label lives in the predecessor's group). prev == nil marks the start.
type refRvis struct {
	epoch uint32
	gi    int32
	prev  *refNode
}

// refPmove is one projected move of the current replay state: the group index
// (the trace label is the group's), the policy the move violates (if any)
// and the successor node (nil for violating moves).
type refPmove struct {
	gi        int32
	violation hexpr.PolicyID
	next      *refNode
}

// refReplayer holds one worker's reusable replay scratch: the epoch-stamped
// visited array (indexed by refNode.idx — a slot access instead of a map
// operation per visit), BFS ring, projected-move buffer and refDecision
// accumulators persist across plans, so assessing the n-th plan of a large
// family allocates almost nothing.
type refReplayer struct {
	visited []refRvis
	epoch   uint32
	queue   ring.Queue[*refNode]
	moves   []refPmove
	used    []refDecision
	usedSet map[hexpr.RequestID]bool
	// seen is the dedup set of the static compliance walk.
	seen map[hexpr.RequestID]bool
	// states counts this replay's visits, flushed to the shared stats in
	// one atomic add per plan.
	states uint64
	// arena block-allocates the skeleton nodes minted by expansions this
	// worker wins.
	arena refSkelArena
}

func newRefReplayer() *refReplayer {
	return &refReplayer{
		usedSet: map[hexpr.RequestID]bool{},
		seen:    map[hexpr.RequestID]bool{},
	}
}

// slot returns the visited slot of n, growing the array when expansion has
// minted nodes past its end mid-replay.
func (r *refReplayer) slot(n *refNode) *refRvis {
	if int(n.idx) >= len(r.visited) {
		size := len(r.visited) * 2
		if size <= int(n.idx) {
			size = int(n.idx) + 64
		}
		grown := make([]refRvis, size)
		copy(grown, r.visited)
		r.visited = grown
	}
	return &r.visited[n.idx]
}

func (r *refReplayer) trace(n *refNode) []network.TraceEntry {
	depth := 0
	for p := r.visited[n.idx]; p.prev != nil; p = r.visited[p.prev.idx] {
		depth++
	}
	// Non-nil even when empty, like verify's trace materialisation.
	out := make([]network.TraceEntry, depth)
	for p := r.visited[n.idx]; p.prev != nil; p = r.visited[p.prev.idx] {
		depth--
		out[depth] = network.TraceEntry{Label: p.prev.groups[p.gi].label}
	}
	return out
}

// replay recovers one plan's verification report from the shared graph: a
// BFS over the projection that keeps, in every open group, the candidate
// the plan selects. It visits exactly the states verify.CheckPlanOpts
// would (same keying, same move order), so verdicts, witnesses, traces and
// even state counts coincide — but each visit is a map lookup over
// prebuilt edges. The binding decisions consulted, in consultation order,
// are left in r.used for the replay memo.
func (eng *refEngine) replay(plan network.Plan, r *refReplayer) (*verify.Report, error) {
	r.used = r.used[:0]
	clear(r.usedSet)
	r.epoch++
	r.queue.Reset()
	r.states = 0
	s := r.slot(eng.start)
	*s = refRvis{epoch: r.epoch}
	r.queue.Push(eng.start)
	report := &verify.Report{}
	for r.queue.Len() > 0 {
		report.States++
		if report.States > verify.MaxStates {
			return nil, fmt.Errorf("verify: exploration exceeds %d states", verify.MaxStates)
		}
		if e := eng.opts.Budget.ConsumeStates(1); e != nil {
			report.States--
			return unknownReport(report, e, r.queue.Len()), nil
		}
		n := r.queue.Pop()
		r.states++
		if faultinject.Enabled() {
			faultinject.Fire(faultinject.FusedReplay, n.tree.Key())
		}
		if err := n.ensureExpanded(eng, &r.arena); err != nil {
			var e *budget.ExhaustedError
			if errors.As(err, &e) {
				report.States--
				return unknownReport(report, e, r.queue.Len()+1), nil
			}
			return nil, err
		}
		r.moves = r.moves[:0]
		for gi := range n.groups {
			g := &n.groups[gi]
			if g.req == "" {
				r.moves = append(r.moves, refPmove{int32(gi), g.violation, g.next})
				continue
			}
			if g.violation != hexpr.NoPolicy {
				// The open itself violates, whichever service it selects:
				// no binding refDecision is consulted, so every plan reaching
				// this state shares the verdict.
				r.moves = append(r.moves, refPmove{int32(gi), g.violation, nil})
				continue
			}
			loc := plan[g.req]
			if !r.usedSet[g.req] {
				r.usedSet[g.req] = true
				r.used = append(r.used, refDecision{req: g.req, loc: loc})
			}
			for ci := range g.cands {
				if g.cands[ci].loc == loc {
					r.moves = append(r.moves, refPmove{int32(gi), hexpr.NoPolicy, g.cands[ci].next})
					break
				}
			}
			// No matching candidate (request unbound, or bound outside the
			// candidate set): the open is not enabled, exactly as in the
			// direct exploration.
		}
		if len(r.moves) == 0 && !n.done {
			report.Verdict = verify.CommunicationDeadlock
			report.Trace = r.trace(n)
			report.StuckTree = n.tree.Key()
			return report, nil
		}
		for _, m := range r.moves {
			if m.violation != hexpr.NoPolicy {
				report.Verdict = verify.SecurityViolation
				report.Policy = m.violation
				report.Trace = append(r.trace(n), network.TraceEntry{Label: n.groups[m.gi].label})
				return report, nil
			}
			if s := r.slot(m.next); s.epoch != r.epoch {
				*s = refRvis{epoch: r.epoch, gi: m.gi, prev: n}
				r.queue.Push(m.next)
			}
		}
	}
	report.Verdict = verify.Valid
	return report, nil
}

// assessReplay returns the plan's exploration report, through the refDecision
// memo: a hit costs one trie walk; a miss replays and files the report
// under the decisions the replay consulted.
func (eng *refEngine) assessReplay(plan network.Plan, r *refReplayer) (*verify.Report, error) {
	eng.memoMu.Lock()
	for t := eng.memo; t != nil; {
		if t.leaf {
			rep := *t.report
			eng.memoMu.Unlock()
			eng.stats.ReplayMemoHits.Add(1)
			return &rep, nil
		}
		t = t.branches[plan[t.req]]
	}
	eng.memoMu.Unlock()

	report, err := eng.replay(plan, r)
	eng.stats.ReplayStates.Add(r.states)
	if err != nil {
		return nil, err
	}
	// An Unknown report reflects this run's cutoff, not a property of the
	// consulted decisions — filing it would serve a stale non-verdict to
	// every later plan sharing the prefix. Only definite verdicts memoise.
	if report.Verdict == verify.Unknown {
		return report, nil
	}

	eng.memoMu.Lock()
	node := eng.memo
	if node == nil {
		node = &refDecisionTrie{}
		eng.memo = node
	}
	for _, d := range r.used {
		if node.leaf {
			break // concurrent duplicate replay already filed a report
		}
		if node.req == "" {
			node.req = d.req
			node.branches = map[hexpr.Location]*refDecisionTrie{}
		}
		child := node.branches[d.loc]
		if child == nil {
			child = &refDecisionTrie{}
			node.branches[d.loc] = child
		}
		node = child
	}
	if !node.leaf && node.req == "" {
		node.leaf = true
		node.report = report
	}
	eng.memoMu.Unlock()
	rep := *report
	return &rep, nil
}

// staticCheck mirrors verify.StaticCheck over the engine's precomputed
// session lists: the call-cycle DFS draws its successors from the
// per-expression request lists, and the compliance check traverses the
// precollected sessions in the depth-first, first-occurrence order of
// verify.PlannedRequests — same first failure, same witness strings, no
// per-plan expression walks. The equivalence property test pins the
// parity.
func (eng *refEngine) staticCheck(plan network.Plan, r *refReplayer) (*verify.Report, error) {
	if !eng.cycleFree {
		succ := func(n hexpr.Location) []hexpr.Location {
			reqs := eng.locReqs[n]
			if n == verify.ClientNode {
				reqs = eng.clientReqs
			}
			var out []hexpr.Location
			for _, rq := range reqs {
				if l, ok := plan[rq]; ok {
					out = append(out, l)
				}
			}
			return out
		}
		if cyc := verify.CallCycleFunc(succ); cyc != nil {
			return &verify.Report{
				Verdict: verify.UnboundedNesting,
				Witness: fmt.Sprintf("cyclic service calls: %s", verify.LocPath(cyc)),
			}, nil
		}
	}
	clear(r.seen)
	var walk func(list []pendingReq) (*verify.Report, error)
	walk = func(list []pendingReq) (*verify.Report, error) {
		for _, s := range list {
			if r.seen[s.req] {
				continue
			}
			r.seen[s.req] = true
			loc, bound := plan[s.req]
			if !bound {
				continue // the exploration reports the deadlock with a trace
			}
			svc, present := eng.repo[loc]
			if !present {
				continue
			}
			ok, witness, err := eng.cache.Compliance(s.body, svc)
			if err != nil {
				return nil, err
			}
			if !ok {
				return &verify.Report{
					Verdict: verify.NotCompliant,
					Request: s.req,
					Witness: fmt.Sprintf("service at %s: %s", loc, witness),
				}, nil
			}
			if rep, err := walk(eng.locPending[loc]); err != nil || rep != nil {
				return rep, err
			}
		}
		return nil, nil
	}
	return walk(eng.clientPending)
}

// computeCycleSkip decides whether per-plan cycle detection is needed: it
// runs one DFS over the union call graph in which every request points at
// every location enumeration could bind it to — the compliant candidates
// under pruning, the whole repository otherwise. Every assessed plan's
// call graph is a subgraph of the union, so an acyclic union (from the
// client) proves every plan acyclic and staticCheck skips its per-plan
// DFS; a cyclic union just keeps the per-plan check.
func (eng *refEngine) computeCycleSkip() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[hexpr.Location]int{}
	var dfs func(n hexpr.Location) (bool, error)
	dfs = func(n hexpr.Location) (bool, error) {
		color[n] = grey
		reqs := eng.locReqs[n]
		if n == verify.ClientNode {
			reqs = eng.clientReqs
		}
		for _, rq := range reqs {
			targets := eng.locations
			if eng.opts.PruneNonCompliant {
				var err error
				targets, err = eng.candidates(rq)
				if err != nil {
					return false, err
				}
			}
			for _, m := range targets {
				switch color[m] {
				case grey:
					return true, nil
				case white:
					if cyc, err := dfs(m); err != nil || cyc {
						return cyc, err
					}
				}
			}
		}
		color[n] = black
		return false, nil
	}
	cyc, err := dfs(verify.ClientNode)
	if err != nil {
		return err
	}
	eng.cycleFree = !cyc
	return nil
}

// assess produces one plan's assessment: the static prechecks (mirroring
// verify.CheckPlanOpts, so witnesses are identical by construction), then
// the memoised replay.
func (eng *refEngine) assess(plan network.Plan, r *refReplayer) (Assessment, error) {
	eng.stats.PlansAssessed.Add(1)
	if rep, err := eng.staticCheck(plan, r); err != nil {
		return Assessment{}, err
	} else if rep != nil {
		return Assessment{Plan: plan, Report: rep}, nil
	}
	report, err := eng.assessReplay(plan, r)
	if err != nil {
		return Assessment{}, err
	}
	return Assessment{Plan: plan, Report: report}, nil
}

// assessGuarded is assess inside a panic guard: a panic anywhere in the
// plan's assessment (expansion, replay, static walk — injected or
// genuine) becomes a typed *budget.InternalError whose Unit is the plan
// key, the plan's verdict degrades to Unknown, and the error is returned
// alongside the assessment so the caller can report it after the rest of
// the fleet finishes. The refReplayer stays reusable: replay and staticCheck
// reset every piece of scratch state at entry.
func (eng *refEngine) assessGuarded(plan network.Plan, r *refReplayer) (Assessment, error) {
	key := plan.Key()
	var a Assessment
	err := budget.Guard("plan "+key, func() error {
		if faultinject.Enabled() {
			faultinject.Fire(faultinject.PlansWorker, key)
		}
		var err error
		a, err = eng.assess(plan, r)
		return err
	})
	if err != nil {
		var ie *budget.InternalError
		if errors.As(err, &ie) {
			return Assessment{Plan: plan,
				Report: &verify.Report{Verdict: verify.Unknown, Reason: ie.Error()}}, err
		}
		return Assessment{}, err
	}
	return a, nil
}

// enumerate mirrors the legacy enumerator exactly — same candidate order,
// same pruning, same MaxPlans semantics — so both engines assess the same
// plans. Pruned bindings are counted in the stats.
func (eng *refEngine) enumerate() ([]network.Plan, error) {
	var out []network.Plan
	var expand func(plan network.Plan, pending []pendingReq) error
	expand = func(plan network.Plan, pending []pendingReq) error {
		for len(pending) > 0 {
			if _, ok := plan[pending[0].req]; ok {
				pending = pending[1:]
				continue
			}
			break
		}
		if len(pending) == 0 {
			if eng.opts.MaxPlans > 0 && len(out) >= eng.opts.MaxPlans {
				return fmt.Errorf("plans: more than %d complete plans", eng.opts.MaxPlans)
			}
			if eng.opts.Budget.Exhausted() != nil {
				return errStopEnumeration
			}
			out = append(out, plan.Clone())
			return nil
		}
		head, rest := pending[0], pending[1:]
		for _, l := range eng.locations {
			service := eng.repo[l]
			if eng.opts.PruneNonCompliant {
				ok, err := eng.cache.Compliant(head.body, service)
				if err != nil {
					return err
				}
				if !ok {
					eng.stats.BindingsPruned.Add(1)
					continue
				}
			}
			plan[head.req] = l
			newPending := append(append([]pendingReq(nil), rest...), eng.locPending[l]...)
			if err := expand(plan, newPending); err != nil {
				return err
			}
			delete(plan, head.req)
		}
		return nil
	}
	if err := expand(network.Plan{}, eng.clientPending); err != nil && err != errStopEnumeration {
		return nil, err
	}
	return out, nil
}

// assessAllReference enumerates and assesses every plan with the
// reference engine, sequentially, and returns the assessments sorted like
// AssessAll. It backs EngineReference (see Engine).
func assessAllReference(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options) ([]Assessment, error) {

	eng := newRefEngine(repo, table, loc, client, opts)
	plans, err := eng.enumerate()
	if err != nil {
		return nil, err
	}
	if err := eng.computeCycleSkip(); err != nil {
		return nil, err
	}
	r := newRefReplayer()
	out := make([]Assessment, 0, len(plans))
	var firstInternal *budget.InternalError
	for _, p := range plans {
		a, err := eng.assessGuarded(p, r)
		if err != nil {
			var ie *budget.InternalError
			if !errors.As(err, &ie) {
				return nil, err
			}
			if firstInternal == nil {
				firstInternal = ie
			}
		}
		out = append(out, a)
	}
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].Plan.Key()
	}
	sort.Sort(&byKey{keys: keys, out: out})
	if firstInternal != nil {
		return out, firstInternal
	}
	return out, nil
}
