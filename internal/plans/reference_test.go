package plans_test

import (
	"reflect"
	"testing"

	"susc/internal/benchgen"
	"susc/internal/paperex"
	"susc/internal/plans"
)

// TestReferenceEngineEquivalence: the frozen pre-compiled-rework engine
// (EngineReference) agrees byte-for-byte with the legacy engine and the
// compiled engine. The three share no stepping code — legacy re-explores
// per plan, the reference engine interprets moves over a shared graph,
// the compiled engine replays compiled rows — so three-way agreement pins
// the semantics from independent directions, and keeps the benchmark
// baseline honest: -chained-compare measures three implementations of
// provably the same function.
func TestReferenceEngineEquivalence(t *testing.T) {
	c := benchgen.Chained(3, 2)
	cases := []struct {
		name string
		run  func(e plans.Engine) ([]plans.Assessment, error)
	}{
		{"paperex/C1", func(e plans.Engine) ([]plans.Assessment, error) {
			return plans.AssessAll(paperex.Repository(), paperex.Policies(),
				paperex.LocC1, paperex.C1(), plans.Options{Engine: e})
		}},
		{"paperex/C2", func(e plans.Engine) ([]plans.Assessment, error) {
			return plans.AssessAll(paperex.Repository(), paperex.Policies(),
				paperex.LocC2, paperex.C2(), plans.Options{Engine: e})
		}},
		{"chained(3,2)", func(e plans.Engine) ([]plans.Assessment, error) {
			return plans.AssessAll(c.Repo, c.Table, c.Loc, c.Client,
				plans.Options{Engine: e, PruneNonCompliant: true})
		}},
	}
	for _, tc := range cases {
		legacy, err := tc.run(plans.EngineLegacy)
		if err != nil {
			t.Fatalf("%s: legacy: %v", tc.name, err)
		}
		reference, err := tc.run(plans.EngineReference)
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		compiled, err := tc.run(plans.EngineFused)
		if err != nil {
			t.Fatalf("%s: compiled: %v", tc.name, err)
		}
		if !reflect.DeepEqual(legacy, reference) {
			t.Fatalf("%s: reference diverges from legacy:\n%+v\nvs\n%+v",
				tc.name, legacy, reference)
		}
		if !reflect.DeepEqual(legacy, compiled) {
			t.Fatalf("%s: compiled diverges from legacy", tc.name)
		}
	}
}
