package plans_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"susc/internal/benchgen"
	"susc/internal/budget"
	"susc/internal/hash"
	"susc/internal/hexpr"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/plans"
	"susc/internal/store"
	"susc/internal/verify"
)

// render flattens assessments into comparable strings: the plan key plus
// the report's full JSON wire form. Fresh and store-decoded reports differ
// internally (live trace entries vs labels), so equality is defined — as
// everywhere in the CLI — over the rendered output.
func render(t *testing.T, as []plans.Assessment) []string {
	t.Helper()
	out := make([]string, len(as))
	for i, a := range as {
		j, err := json.Marshal(a.Report)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = a.Plan.Key() + " " + a.Report.String() + " " + string(j)
	}
	return out
}

func assertSameAssessments(t *testing.T, label string, got, want []plans.Assessment) {
	t.Helper()
	g, w := render(t, got), render(t, want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d assessments, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: assessment %d:\ngot  %s\nwant %s", label, i, g[i], w[i])
		}
	}
}

// TestIncrementalWarmStoreMatches: with a store attached, AssessAll's
// verdicts are identical to the storeless run — cold (computing and
// persisting) and warm (replaying every plan from disk with zero
// exploration).
func TestIncrementalWarmStoreMatches(t *testing.T) {
	w := benchgen.Chained(3, 2)
	opts := plans.Options{PruneNonCompliant: true}
	baseline, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client, opts)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "susc.store")
	s1, err := store.Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	cold := memo.New()
	cold.AttachDisk(s1)
	coldAs, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAssessments(t, "cold", coldAs, baseline)
	if wb := s1.Stats().PerKind[store.KindPlanReport].Writebacks; wb != uint64(len(baseline)) {
		t.Fatalf("cold run wrote back %d plan reports, want %d", wb, len(baseline))
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	warm := memo.New()
	warm.AttachDisk(s2)
	warmAs, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAssessments(t, "warm", warmAs, baseline)
	st := s2.Stats().PerKind[store.KindPlanReport]
	if st.Misses != 0 || st.Hits != uint64(len(baseline)) {
		t.Fatalf("warm run: %d hits, %d misses; want %d hits, 0 misses",
			st.Hits, st.Misses, len(baseline))
	}
	if s2.Stats().Writebacks() != 0 {
		t.Fatal("warm run wrote back; the store was already complete")
	}
}

// TestIncrementalConeEditRecomputesOnlyCone is the incremental headline:
// after a one-declaration edit, the assessor recomputes exactly the plans
// whose dependency cone contains the edited service — counted by store
// misses AND by write-backs (each recomputed cone writes back once) — and
// replays everything else.
func TestIncrementalConeEditRecomputesOnlyCone(t *testing.T) {
	const depth, fanout = 2, 4 // 16 plans; editing one leaf invalidates 4 = 1/4 → per-plan recompute path
	w := benchgen.Chained(depth, fanout)
	opts := plans.Options{PruneNonCompliant: true, Workers: 4}

	path := filepath.Join(t.TempDir(), "susc.store")
	s1, err := store.Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	cold := memo.New()
	cold.AttachDisk(s1)
	coldAs, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Workers: 4, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if len(coldAs) != w.PlanCount {
		t.Fatalf("cold: %d plans, want %d", len(coldAs), w.PlanCount)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// The edit: an extra internal event at the head of leaf service s2_3.
	// Communication behaviour is unchanged, so every verdict stays Valid —
	// only the cones move.
	edited := network.Repository{}
	for l, e := range w.Repo {
		edited[l] = e
	}
	target := hexpr.Location("s2_3")
	edited[target] = hexpr.Cat(hexpr.Act(hexpr.E("tweak")), w.Repo[target])

	baseline, err := plans.AssessAll(edited, w.Table, w.Loc, w.Client, opts)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	warm := memo.New()
	warm.AttachDisk(s2)
	got, err := plans.AssessAll(edited, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Workers: 4, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAssessments(t, "after edit", got, baseline)

	st := s2.Stats().PerKind[store.KindPlanReport]
	wantMisses := uint64(w.PlanCount / fanout) // plans binding r2 → s2_3
	if st.Misses != wantMisses {
		t.Fatalf("edit invalidated %d plans, want exactly %d (the cone of %s)",
			st.Misses, wantMisses, target)
	}
	if st.Hits != uint64(w.PlanCount)-wantMisses {
		t.Fatalf("replayed %d plans, want %d", st.Hits, uint64(w.PlanCount)-wantMisses)
	}
	if st.Writebacks != wantMisses {
		t.Fatalf("recomputed (wrote back) %d plans, want exactly %d", st.Writebacks, wantMisses)
	}
}

// TestIncrementalLargeEditFallsBackToFused: when an edit invalidates more
// than a quarter of the plan space, the assessor switches to the shared-
// graph engine — results stay identical, and exactly the misses are
// written back.
func TestIncrementalLargeEditFallsBackToFused(t *testing.T) {
	const depth, fanout = 2, 2 // 4 plans; editing s2_1 invalidates 2 > 1/4
	w := benchgen.Chained(depth, fanout)

	path := filepath.Join(t.TempDir(), "susc.store")
	s1, err := store.Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	cold := memo.New()
	cold.AttachDisk(s1)
	if _, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Cache: cold}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	edited := network.Repository{}
	for l, e := range w.Repo {
		edited[l] = e
	}
	edited["s2_1"] = hexpr.Cat(hexpr.Act(hexpr.E("tweak")), w.Repo["s2_1"])
	baseline, err := plans.AssessAll(edited, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true})
	if err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	warm := memo.New()
	warm.AttachDisk(s2)
	got, err := plans.AssessAll(edited, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAssessments(t, "large edit", got, baseline)
	st := s2.Stats().PerKind[store.KindPlanReport]
	if st.Misses != 2 || st.Writebacks != 2 {
		t.Fatalf("misses=%d writebacks=%d, want 2 and 2", st.Misses, st.Writebacks)
	}
}

// TestEngineParityWithStore is the acceptance gate: all three engines
// produce byte-identical rendered verdicts with the store disabled,
// enabled-cold and enabled-warm. The paper world exercises every verdict
// class (valid, non-compliant, security violation).
func TestEngineParityWithStore(t *testing.T) {
	repo := paperex.Repository()
	table := paperex.Policies()
	client, loc := paperex.C1(), paperex.LocC1

	baseline, err := plans.AssessAll(repo, table, loc, client,
		plans.Options{PruneNonCompliant: false})
	if err != nil {
		t.Fatal(err)
	}
	want := render(t, baseline)

	engines := []struct {
		name string
		e    plans.Engine
	}{
		{"legacy", plans.EngineLegacy},
		{"reference", plans.EngineReference},
		{"fused", plans.EngineFused},
	}
	for _, eng := range engines {
		// Disabled: no store at all.
		as, err := plans.AssessAll(repo, table, loc, client,
			plans.Options{Engine: eng.e})
		if err != nil {
			t.Fatal(err)
		}
		compareRendered(t, eng.name+"/disabled", render(t, as), want)

		// Enabled-cold and enabled-warm share one store.
		s, err := store.Open(filepath.Join(t.TempDir(), "susc.store"), hash.Fingerprint())
		if err != nil {
			t.Fatal(err)
		}
		for _, phase := range []string{"cold", "warm"} {
			cache := memo.New()
			cache.AttachDisk(s)
			as, err := plans.AssessAll(repo, table, loc, client,
				plans.Options{Engine: eng.e, Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			compareRendered(t, eng.name+"/"+phase, render(t, as), want)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func compareRendered(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d assessments, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: assessment %d:\ngot  %s\nwant %s", label, i, got[i], want[i])
		}
	}
}

// TestIncrementalNeverPersistsUnknown: a budget cutoff mid-assessment
// leaves only decided verdicts on disk; entries equal write-backs, and a
// later unconstrained warm run completes the store.
func TestIncrementalNeverPersistsUnknown(t *testing.T) {
	w := benchgen.Chained(3, 2)
	s, err := store.Open(filepath.Join(t.TempDir(), "susc.store"), hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cache := memo.New()
	cache.AttachDisk(s)
	b := budget.New(context.Background(), budget.Limits{MaxStates: 40})
	as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Cache: cache, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	unknown := 0
	for _, a := range as {
		if a.Report.Verdict == verify.Unknown {
			unknown++
		}
	}
	if unknown == 0 {
		t.Skip("budget did not bite; nothing to assert")
	}
	st := s.Stats().PerKind[store.KindPlanReport]
	if st.Entries != uint64(len(as)-unknown) {
		t.Fatalf("store holds %d plan entries, want %d (the decided verdicts only)",
			st.Entries, len(as)-unknown)
	}

	free := memo.New()
	free.AttachDisk(s)
	full, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Cache: free})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range full {
		if a.Report.Verdict == verify.Unknown {
			t.Fatalf("unconstrained run still unknown for %s", a.Plan)
		}
	}
	if got := s.Stats().PerKind[store.KindPlanReport].Entries; got != uint64(len(full)) {
		t.Fatalf("store holds %d entries after completion, want %d", got, len(full))
	}
}
