// Package plans extracts viable orchestrations: it enumerates the plans of
// a client against a repository — lazily discovering the nested requests
// that selecting a service introduces — and filters them through the
// static checks of internal/verify, keeping exactly the *valid* plans of
// §2/§5: those driving computations that neither violate security nor get
// stuck on a missing communication. Adopting a synthesized plan lets the
// network run with no run-time monitor.
package plans

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"susc/internal/budget"
	"susc/internal/faultinject"
	"susc/internal/hexpr"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/policy"
	"susc/internal/verify"
)

// Options tunes synthesis.
type Options struct {
	// PruneNonCompliant rejects a binding as soon as the product automaton
	// of the request body and the candidate service is non-empty, instead
	// of completing the plan and validating it whole. Sound (compliance is
	// per-request) and usually much faster; the ablation benchmark
	// measures the difference.
	PruneNonCompliant bool
	// MaxPlans bounds the number of complete plans examined (0 = no
	// bound). Synthesis fails with an error when the bound is hit.
	MaxPlans int
	// Workers validates plans concurrently with this many goroutines
	// (0 or 1 = sequential). All analyses are read-only over the
	// repository and policy table, so parallel validation is safe.
	Workers int
	// Cache memoises compliance verdicts, product automata and one-step
	// transition sets across the whole synthesis: the enumeration probe
	// (PruneNonCompliant) and every worker validating candidate plans
	// share it, so per-pair work is done once instead of once per plan.
	// Nil builds a fresh cache for the call; supply one to share it
	// across calls (e.g. repeated synthesis over the same repository).
	Cache *memo.Cache
	// Engine selects the synthesis strategy: EngineFused (default)
	// validates every plan against one shared state graph, EngineLegacy
	// explores each plan independently. Both produce identical output.
	Engine Engine
	// Stats, when non-nil, receives the fused engine's work counters
	// (EngineFused only).
	Stats *FusedStats
	// MemoryTierOnly keeps per-plan verdicts out of the persistent store
	// even when the cache has one attached. Analyzer sweeps (the lint
	// plan-space emptiness check) assess whole plan families as an
	// existence probe; persisting fanout^depth sweep verdicts would bloat
	// the store and muddy the per-plan hit/miss counters the CLI stats and
	// CI gates key on. The compliance and LTS tiers underneath still use
	// the disk — those are shared with real verification runs.
	MemoryTierOnly bool
	// Budget meters the whole synthesis (nil = unbounded): enumeration,
	// graph expansion and every plan's exploration charge the same
	// budget. Exhaustion or cancellation degrades gracefully — plans
	// whose verdict was decided before the cutoff keep it, the rest are
	// reported Unknown — and AssessAll/AssessStream return nil: query
	// Budget.Exhausted() to learn the run was cut short.
	Budget *budget.Budget
}

// Assessment is a complete plan together with its verdict.
type Assessment struct {
	Plan   network.Plan
	Report *verify.Report
}

func (a Assessment) String() string {
	return fmt.Sprintf("%s: %s", a.Plan, a.Report)
}

// AssessAll enumerates every complete plan for the client and validates
// each, returning the assessments in deterministic order (lexicographic in
// the plan keys). The work runs on the engine opts.Engine selects; the
// result does not depend on the choice.
func AssessAll(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options) ([]Assessment, error) {

	if opts.Engine == EngineLegacy {
		// The legacy engine validates plans through CheckPlanOpts, which
		// carries its own persistent tier when the cache has a store
		// attached — no separate incremental dispatch needed.
		return assessAllLegacy(repo, table, loc, client, opts)
	}
	if opts.Engine == EngineReference {
		// The reference engine is a frozen baseline: it never touches the
		// persistent tier, by design, so it stays byte-for-byte the PR 2
		// engine.
		return assessAllReference(repo, table, loc, client, opts)
	}
	if opts.Cache != nil && opts.Cache.Disk() != nil && !opts.MemoryTierOnly {
		return assessAllIncremental(repo, table, loc, client, opts)
	}
	return assessAllFused(repo, table, loc, client, opts)
}

// assessAllFused runs the default shared-graph engine and collects the
// stream into deterministically ordered assessments.
func assessAllFused(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options) ([]Assessment, error) {

	var out []Assessment
	var keys []string
	err := assessStream(repo, table, loc, client, opts, func(a Assessment) error {
		out = append(out, a)
		return nil
	}, &keys)
	if err != nil && !errors.As(err, new(*budget.InternalError)) {
		return nil, err
	}
	if len(keys) != len(out) {
		// Defensive only: the stream yields one assessment per enumerated
		// plan on every surviving path, so the precomputed keys align with
		// out. Rebuild from the plan maps if that ever stops holding.
		keys = make([]string, len(out))
		for i := range out {
			keys[i] = out[i].Plan.Key()
		}
	}
	sort.Sort(&byKey{keys: keys, out: out})
	// An internal error (isolated worker panic) is returned alongside the
	// assessments: the poisoned plan is Unknown, the rest are intact.
	return out, err
}

// assessAllLegacy is the one-exploration-per-plan strategy: enumerate
// every complete plan, then verify each independently.
func assessAllLegacy(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options) ([]Assessment, error) {

	cache := opts.Cache
	if cache == nil {
		cache = memo.New()
	}
	complete, err := enumerate(repo, client, opts, cache)
	if err != nil {
		return nil, err
	}
	vopts := verify.Options{Cache: cache, Budget: opts.Budget,
		SkipDiskProbe: opts.MemoryTierOnly}
	// checkGuarded validates one plan inside a panic guard: a worker panic
	// becomes a typed *budget.InternalError carrying the plan key as a
	// repro bundle, the plan's verdict degrades to Unknown, and the rest
	// of the fleet finishes undisturbed.
	checkGuarded := func(plan network.Plan) (Assessment, error) {
		key := plan.Key()
		var report *verify.Report
		err := budget.Guard("plan "+key, func() error {
			if faultinject.Enabled() {
				faultinject.Fire(faultinject.PlansWorker, key)
			}
			var err error
			report, err = verify.CheckPlanOpts(repo, table, loc, client, plan, vopts)
			return err
		})
		if err != nil {
			var ie *budget.InternalError
			if errors.As(err, &ie) {
				return Assessment{Plan: plan,
					Report: &verify.Report{Verdict: verify.Unknown, Reason: ie.Error()}}, err
			}
			return Assessment{}, err
		}
		return Assessment{Plan: plan, Report: report}, nil
	}
	out := make([]Assessment, len(complete))
	var firstInternal *budget.InternalError
	if opts.Workers > 1 && len(complete) > 1 {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		jobs := make(chan int)
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					a, err := checkGuarded(complete[i])
					if err != nil {
						var ie *budget.InternalError
						mu.Lock()
						if errors.As(err, &ie) {
							if firstInternal == nil {
								firstInternal = ie
							}
						} else if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						if a.Report == nil {
							continue
						}
					}
					out[i] = a
				}
			}()
		}
		for i := range complete {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	} else {
		for i, plan := range complete {
			a, err := checkGuarded(plan)
			if err != nil {
				var ie *budget.InternalError
				if !errors.As(err, &ie) {
					return nil, err
				}
				if firstInternal == nil {
					firstInternal = ie
				}
			}
			out[i] = a
		}
	}
	// sort on precomputed keys: Plan.Key() rebuilds its string per call,
	// so computing it once per plan beats recomputing per comparison
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].Plan.Key()
	}
	sort.Sort(&byKey{keys: keys, out: out})
	if firstInternal != nil {
		return out, firstInternal
	}
	return out, nil
}

type byKey struct {
	keys []string
	out  []Assessment
}

func (s *byKey) Len() int           { return len(s.out) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.out[i], s.out[j] = s.out[j], s.out[i]
}

// Synthesize returns exactly the valid plans for the client, in
// deterministic order.
func Synthesize(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options) ([]network.Plan, error) {

	assessments, err := AssessAll(repo, table, loc, client, opts)
	if err != nil {
		return nil, err
	}
	var out []network.Plan
	for _, a := range assessments {
		if a.Report.Verdict == verify.Valid {
			out = append(out, a.Plan)
		}
	}
	return out, nil
}

// errStopEnumeration is the internal sentinel unwinding the enumeration
// recursion when the budget runs out: the plans discovered so far are
// returned with a nil error, and assessment degrades them to Unknown.
var errStopEnumeration = errors.New("plans: enumeration stopped by budget")

// enumerate produces every complete binding of the requests reachable
// under the binding itself (selecting a service adds its requests). The
// PruneNonCompliant probe decides compliance through the shared cache:
// backtracking re-asks the same (body, service) pair on every branch, and
// the memoised verdict turns the repeats into lookups.
func enumerate(repo network.Repository, client hexpr.Expr, opts Options, cache *memo.Cache) ([]network.Plan, error) {
	locations := repo.Locations()
	var out []network.Plan
	var expand func(plan network.Plan, pending []pendingReq) error
	expand = func(plan network.Plan, pending []pendingReq) error {
		// drop already-bound requests (cycles in the service graph)
		for len(pending) > 0 {
			if _, ok := plan[pending[0].req]; ok {
				pending = pending[1:]
				continue
			}
			break
		}
		if len(pending) == 0 {
			if opts.MaxPlans > 0 && len(out) >= opts.MaxPlans {
				return fmt.Errorf("plans: more than %d complete plans", opts.MaxPlans)
			}
			if opts.Budget.Exhausted() != nil {
				return errStopEnumeration
			}
			out = append(out, plan.Clone())
			return nil
		}
		head, rest := pending[0], pending[1:]
		for _, l := range locations {
			service := repo[l]
			if opts.PruneNonCompliant {
				ok, err := cache.Compliant(head.body, service)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			plan[head.req] = l
			newPending := append(append([]pendingReq(nil), rest...), requestsOf(service)...)
			if err := expand(plan, newPending); err != nil {
				return err
			}
			delete(plan, head.req)
		}
		return nil
	}
	if err := expand(network.Plan{}, requestsOf(client)); err != nil && err != errStopEnumeration {
		return nil, err
	}
	return out, nil
}

type pendingReq struct {
	req  hexpr.RequestID
	body hexpr.Expr
}

func requestsOf(e hexpr.Expr) []pendingReq {
	var out []pendingReq
	hexpr.Walk(e, func(x hexpr.Expr) {
		if s, ok := x.(hexpr.Session); ok {
			out = append(out, pendingReq{req: s.Req, body: s.Body})
		}
	})
	return out
}
