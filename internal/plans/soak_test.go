package plans_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"susc/internal/budget"
	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/plans"
	"susc/internal/verify"
)

// TestSoakCancellationSound is the randomized degradation soak: random
// worlds are assessed once unbounded (the oracle) and then repeatedly
// under random budgets and random cancellation points. The invariant is
// soundness of partial results — an interrupted run may drop plans or
// degrade verdicts to Unknown, but every definite verdict it does report
// must be exactly the oracle's verdict for that plan. In particular an
// interrupted run never reports Valid for a plan the oracle says is bad.
func TestSoakCancellationSound(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		g := &worldGen{r: rand.New(rand.NewSource(int64(1000 + seed)))}
		opens := 2
		nLocs := 2 + g.r.Intn(3)
		repo := network.Repository{}
		for i := 0; i < nLocs; i++ {
			repo[hexpr.Location(fmt.Sprintf("s%d", i))] = g.decorate(g.protocol(3), &opens, 3)
		}
		clientOpens := 1
		client := hexpr.Cat(
			hexpr.Open(g.req(), g.policyID(), g.protocol(3)),
			g.decorate(hexpr.Eps(), &clientOpens, 2),
		)

		oracle := map[string]verify.Verdict{}
		full, err := plans.AssessAll(repo, paperex.Policies(), "cl", client, plans.Options{})
		if err != nil {
			t.Fatalf("seed %d: oracle failed: %v", seed, err)
		}
		for _, a := range full {
			oracle[a.Plan.Key()] = a.Report.Verdict
		}

		for trial := 0; trial < 6; trial++ {
			lim := budget.Limits{MaxStates: 1 + int64(g.r.Intn(200))}
			ctx := context.Background()
			if g.r.Intn(4) == 0 {
				// An already-delivered SIGINT: the run starts cancelled.
				c, cancel := context.WithCancel(ctx)
				cancel()
				ctx = c
				lim = budget.Limits{}
			}
			b := budget.New(ctx, lim)
			for _, engine := range []plans.Engine{plans.EngineLegacy, plans.EngineFused} {
				as, err := plans.AssessAll(repo, paperex.Policies(), "cl", client, plans.Options{
					Engine: engine, Workers: 1 + g.r.Intn(4), Budget: b,
				})
				if err != nil {
					t.Fatalf("seed %d trial %d: budgeted run errored: %v", seed, trial, err)
				}
				for _, a := range as {
					want, ok := oracle[a.Plan.Key()]
					if !ok {
						t.Fatalf("seed %d trial %d: plan %s not in the oracle set", seed, trial, a.Plan)
					}
					if a.Report.Verdict == verify.Unknown {
						continue // degraded, not wrong
					}
					if a.Report.Verdict != want {
						t.Fatalf("seed %d trial %d: plan %s assessed %s under budget, oracle says %s",
							seed, trial, a.Plan, a.Report.Verdict, want)
					}
				}
			}
		}
	}
}
