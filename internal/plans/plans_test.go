package plans_test

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/plans"
	"susc/internal/verify"
)

// TestSynthesizeC1 (experiment E5): the only valid plan for C1 is
// π₁ = {r1↦br, r3↦s3}.
func TestSynthesizeC1(t *testing.T) {
	for _, prune := range []bool{false, true} {
		got, err := plans.Synthesize(paperex.Repository(), paperex.Policies(),
			paperex.LocC1, paperex.C1(), plans.Options{PruneNonCompliant: prune})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("prune=%v: %d valid plans, want 1: %v", prune, len(got), got)
		}
		if got[0].Key() != "{r1>br,r3>s3}" {
			t.Errorf("prune=%v: plan = %s, want {r1>br,r3>s3}", prune, got[0])
		}
	}
}

// TestSynthesizeC2: the only valid plan for C2 is {r2↦br, r3↦s4}.
func TestSynthesizeC2(t *testing.T) {
	got, err := plans.Synthesize(paperex.Repository(), paperex.Policies(),
		paperex.LocC2, paperex.C2(), plans.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key() != "{r2>br,r3>s4}" {
		t.Fatalf("plans = %v, want exactly {r2>br,r3>s4}", got)
	}
}

func TestAssessAllClassifies(t *testing.T) {
	as, err := plans.AssessAll(paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(), plans.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// r1 has 5 candidate bindings; only r1→br discovers r3 with 5 more:
	// 4 one-request plans (r1→s1..s4) + 5 two-request plans (r1→br, r3→*).
	if len(as) != 9 {
		t.Fatalf("%d assessments, want 9", len(as))
	}
	byKey := map[string]verify.Verdict{}
	for _, a := range as {
		byKey[a.Plan.Key()] = a.Report.Verdict
	}
	want := map[string]verify.Verdict{
		"{r1>br,r3>br}": verify.UnboundedNesting, // br calling itself is cyclic
		"{r1>br,r3>s1}": verify.SecurityViolation,
		"{r1>br,r3>s2}": verify.NotCompliant,
		"{r1>br,r3>s3}": verify.Valid,
		"{r1>br,r3>s4}": verify.SecurityViolation,
		"{r1>s1}":       verify.NotCompliant,
		"{r1>s2}":       verify.NotCompliant,
		"{r1>s3}":       verify.NotCompliant,
		"{r1>s4}":       verify.NotCompliant,
	}
	for k, v := range want {
		if byKey[k] != v {
			t.Errorf("plan %s: %s, want %s", k, byKey[k], v)
		}
	}
}

func TestPruningPreservesValidSet(t *testing.T) {
	full, err := plans.Synthesize(paperex.Repository(), paperex.Policies(),
		paperex.LocC2, paperex.C2(), plans.Options{PruneNonCompliant: false})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := plans.Synthesize(paperex.Repository(), paperex.Policies(),
		paperex.LocC2, paperex.C2(), plans.Options{PruneNonCompliant: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(pruned) {
		t.Fatalf("pruning changed the valid set: %v vs %v", full, pruned)
	}
	for i := range full {
		if full[i].Key() != pruned[i].Key() {
			t.Errorf("plan %d differs: %s vs %s", i, full[i], pruned[i])
		}
	}
}

func TestMaxPlansBound(t *testing.T) {
	_, err := plans.AssessAll(paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(), plans.Options{MaxPlans: 2})
	if err == nil {
		t.Fatal("expected the MaxPlans bound to trip")
	}
}

func TestSynthesizeNoRequests(t *testing.T) {
	// A client with no requests has exactly one plan: the empty one.
	client := hexpr.Cat(hexpr.Act(hexpr.E("a")), hexpr.Act(hexpr.E("b")))
	got, err := plans.Synthesize(paperex.Repository(), paperex.Policies(),
		"cl", client, plans.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("plans = %v, want one empty plan", got)
	}
}

func TestSynthesizeCyclicServices(t *testing.T) {
	// Service A calls B (request rb), B calls A back (request ra): the
	// enumeration terminates (bound requests are not re-expanded) and the
	// cyclic closure is classified as unbounded nesting, hence not valid.
	svcA := hexpr.RecvThen("pingA",
		hexpr.Open("rb", hexpr.NoPolicy, hexpr.SendThen("pingB", hexpr.Eps())))
	svcB := hexpr.RecvThen("pingB",
		hexpr.Open("ra", hexpr.NoPolicy, hexpr.SendThen("pingA", hexpr.Eps())))
	repo := network.Repository{"A": svcA, "B": svcB}
	client := hexpr.Open("r0", hexpr.NoPolicy, hexpr.SendThen("pingA", hexpr.Eps()))
	as, err := plans.AssessAll(repo, paperex.Policies(), "cl", client,
		plans.Options{PruneNonCompliant: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range as {
		if a.Plan["r0"] == "A" && a.Plan["rb"] == "B" && a.Plan["ra"] == "A" {
			found = true
			if a.Report.Verdict != verify.UnboundedNesting {
				t.Errorf("cyclic closure verdict = %s, want unbounded-nesting", a.Report)
			}
		}
	}
	if !found {
		t.Errorf("expected the cyclic closure plan among %v", as)
	}
	valid, err := plans.Synthesize(repo, paperex.Policies(), "cl", client,
		plans.Options{PruneNonCompliant: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range valid {
		if c := verify.CallCycle(repo, client, p); c != nil {
			t.Errorf("valid plan %s has a call cycle %v", p, c)
		}
	}
}

func TestAssessmentString(t *testing.T) {
	as, err := plans.AssessAll(paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(), plans.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) == 0 || as[0].String() == "" {
		t.Error("assessments must render")
	}
}

// TestParallelAssessmentMatchesSequential: the worker pool returns the
// same assessments as the sequential path.
func TestParallelAssessmentMatchesSequential(t *testing.T) {
	seq, err := plans.AssessAll(paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(), plans.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := plans.AssessAll(paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(), plans.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Plan.Key() != par[i].Plan.Key() ||
			seq[i].Report.Verdict != par[i].Report.Verdict {
			t.Errorf("assessment %d differs: %s vs %s", i, seq[i], par[i])
		}
	}
}
