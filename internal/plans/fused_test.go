package plans_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"susc/internal/benchgen"
	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/plans"
	"susc/internal/policy"
	"susc/internal/verify"
)

// assertEquivalent runs both engines on the world and requires identical
// assessments — plans, verdicts, witnesses, traces, even state counts — in
// identical order, for every prune × workers combination. This is the
// contract of the fused engine: it is an optimisation, never a semantic
// change.
func assertEquivalent(t *testing.T, label string, repo network.Repository,
	table *policy.Table, loc hexpr.Location, client hexpr.Expr) {
	t.Helper()
	for _, prune := range []bool{false, true} {
		legacy, legacyErr := plans.AssessAll(repo, table, loc, client, plans.Options{
			Engine: plans.EngineLegacy, PruneNonCompliant: prune,
		})
		for _, workers := range []int{1, 4} {
			fused, fusedErr := plans.AssessAll(repo, table, loc, client, plans.Options{
				Engine: plans.EngineFused, PruneNonCompliant: prune, Workers: workers,
			})
			if (legacyErr == nil) != (fusedErr == nil) {
				t.Fatalf("%s (prune=%v workers=%d): legacy err = %v, fused err = %v",
					label, prune, workers, legacyErr, fusedErr)
			}
			if legacyErr != nil {
				if legacyErr.Error() != fusedErr.Error() {
					t.Fatalf("%s (prune=%v workers=%d): legacy err = %q, fused err = %q",
						label, prune, workers, legacyErr, fusedErr)
				}
				continue
			}
			if len(legacy) != len(fused) {
				t.Fatalf("%s (prune=%v workers=%d): legacy %d assessments, fused %d",
					label, prune, workers, len(legacy), len(fused))
			}
			for i := range legacy {
				if !reflect.DeepEqual(legacy[i], fused[i]) {
					t.Fatalf("%s (prune=%v workers=%d): assessment %d differs:\nlegacy: %+v\n        %+v\nfused:  %+v\n        %+v",
						label, prune, workers, i,
						legacy[i], *legacy[i].Report, fused[i], *fused[i].Report)
				}
			}
		}
	}
}

// TestFusedEquivalenceDeterministic: the engines agree on the curated
// worlds — the paper's running example (valid, non-compliant, violating
// and cyclic plans), the scaled hotel world, and the chained-brokers
// workload.
func TestFusedEquivalenceDeterministic(t *testing.T) {
	repo := network.Repository(paperex.Repository())
	assertEquivalent(t, "paperex/C1", repo, paperex.Policies(), paperex.LocC1, paperex.C1())
	assertEquivalent(t, "paperex/C2", repo, paperex.Policies(), paperex.LocC2, paperex.C2())

	h := benchgen.Hotels(6)
	assertEquivalent(t, "hotels(6)", h.Repo, h.Table, h.Loc, h.Client)

	c := benchgen.Chained(2, 3)
	assertEquivalent(t, "chained(2,3)", c.Repo, c.Table, c.Loc, c.Client)
}

// worldGen builds small random worlds: services decorated with random
// events, framings and nested session-opens, and a client opening one or
// two requests. Request identifiers are globally unique (Definition 1);
// channels are drawn from a 2-letter alphabet so compliance holds often
// enough to reach the exploration, and the paper's policies make
// violations reachable.
type worldGen struct {
	r       *rand.Rand
	nextReq int
}

func (g *worldGen) req() hexpr.RequestID {
	g.nextReq++
	return hexpr.RequestID(fmt.Sprintf("r%d", g.nextReq))
}

func (g *worldGen) policyID() hexpr.PolicyID {
	switch g.r.Intn(3) {
	case 0:
		return paperex.Phi1().ID()
	case 1:
		return paperex.Phi2().ID()
	}
	return hexpr.NoPolicy
}

func (g *worldGen) event() hexpr.Expr {
	switch g.r.Intn(3) {
	case 0:
		return hexpr.Act(hexpr.E(paperex.EvSgn, hexpr.Sym([]string{"s1", "s2", "s9"}[g.r.Intn(3)])))
	case 1:
		return hexpr.Act(hexpr.E(paperex.EvPrice, hexpr.Int([]int{30, 50, 90}[g.r.Intn(3)])))
	}
	return hexpr.Act(hexpr.E(paperex.EvRating, hexpr.Int([]int{60, 80, 100}[g.r.Intn(3)])))
}

// protocol generates a communication skeleton over channels {a, b}.
func (g *worldGen) protocol(depth int) hexpr.Expr {
	if depth <= 0 || g.r.Intn(4) == 0 {
		return hexpr.Eps()
	}
	ch := []string{"a", "b"}[g.r.Intn(2)]
	if g.r.Intn(2) == 0 {
		return hexpr.SendThen(ch, g.protocol(depth-1))
	}
	return hexpr.RecvThen(ch, g.protocol(depth-1))
}

// decorate interleaves a protocol with events, framings and (budget
// permitting) nested opens.
func (g *worldGen) decorate(e hexpr.Expr, opens *int, depth int) hexpr.Expr {
	if depth <= 0 {
		return e
	}
	switch g.r.Intn(5) {
	case 0:
		return hexpr.Cat(g.event(), g.decorate(e, opens, depth-1))
	case 1:
		return hexpr.Frame(g.policyID(), g.decorate(e, opens, depth-1))
	case 2:
		if *opens > 0 {
			*opens--
			return hexpr.Cat(
				hexpr.Open(g.req(), g.policyID(), g.protocol(2)),
				g.decorate(e, opens, depth-1),
			)
		}
		return g.decorate(e, opens, depth-1)
	}
	return e
}

// TestFusedEquivalenceRandom is the equivalence property test: on
// randomized repositories the fused engine reproduces the legacy engine's
// assessments exactly, across pruning and worker settings (the CI runs
// this under -race, exercising the shared graph concurrently).
func TestFusedEquivalenceRandom(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		g := &worldGen{r: rand.New(rand.NewSource(int64(seed)))}
		opens := 2
		nLocs := 2 + g.r.Intn(3)
		repo := network.Repository{}
		for i := 0; i < nLocs; i++ {
			svc := g.decorate(g.protocol(3), &opens, 3)
			repo[hexpr.Location(fmt.Sprintf("s%d", i))] = svc
		}
		clientOpens := 1
		client := hexpr.Cat(
			hexpr.Open(g.req(), g.policyID(), g.protocol(3)),
			g.decorate(hexpr.Eps(), &clientOpens, 2),
		)
		label := fmt.Sprintf("seed=%d", seed)
		assertEquivalent(t, label, repo, paperex.Policies(), "cl", client)
	}
}

// TestAssessStreamDeterministicOrder: the stream's enumeration order is
// reproducible, also with a worker pool racing over the shared graph.
func TestAssessStreamDeterministicOrder(t *testing.T) {
	w := benchgen.Chained(3, 3)
	run := func() []string {
		var keys []string
		err := plans.AssessStream(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{PruneNonCompliant: true, Workers: 4},
			func(a plans.Assessment) error {
				keys = append(keys, a.Plan.Key())
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return keys
	}
	first := run()
	if len(first) != w.PlanCount {
		t.Fatalf("streamed %d assessments, want %d", len(first), w.PlanCount)
	}
	for i := 0; i < 3; i++ {
		if again := run(); !reflect.DeepEqual(again, first) {
			t.Fatalf("stream order changed between runs:\n%v\n%v", first, again)
		}
	}
}

// TestAssessStreamEarlyStop: a yield error stops the stream and surfaces
// unchanged, sequentially and with workers.
func TestAssessStreamEarlyStop(t *testing.T) {
	w := benchgen.Chained(2, 3)
	sentinel := errors.New("enough")
	for _, workers := range []int{1, 4} {
		seen := 0
		err := plans.AssessStream(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{PruneNonCompliant: true, Workers: workers},
			func(plans.Assessment) error {
				seen++
				if seen == 2 {
					return sentinel
				}
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if seen != 2 {
			t.Fatalf("workers=%d: yield ran %d times after stop", workers, seen)
		}
	}
}

// TestFusedStats: the counters report the sharing the engine achieves —
// on Chained every state is expanded once however many plans visit it, and
// replays cover the plans' explorations.
func TestFusedStats(t *testing.T) {
	w := benchgen.Chained(2, 3)
	var stats plans.FusedStats
	as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(stats.PlansAssessed.Load()); got != len(as) {
		t.Errorf("PlansAssessed = %d, want %d", got, len(as))
	}
	if stats.StatesExpanded.Load() == 0 || stats.EdgesBuilt.Load() == 0 || stats.ReplayStates.Load() == 0 {
		t.Errorf("empty work counters: states=%d edges=%d replay=%d",
			stats.StatesExpanded.Load(), stats.EdgesBuilt.Load(), stats.ReplayStates.Load())
	}
	var sumStates uint64
	for _, a := range as {
		sumStates += uint64(a.Report.States)
	}
	if stats.ReplayStates.Load() != sumStates {
		t.Errorf("ReplayStates = %d, want the summed per-plan state counts %d",
			stats.ReplayStates.Load(), sumStates)
	}
	if stats.StatesExpanded.Load() >= stats.ReplayStates.Load() {
		t.Errorf("no sharing: expanded %d states for %d replayed visits",
			stats.StatesExpanded.Load(), stats.ReplayStates.Load())
	}
}

// TestFusedMaxPlansParity: both engines fail the MaxPlans bound with the
// same error.
func TestFusedMaxPlansParity(t *testing.T) {
	w := benchgen.Chained(2, 3)
	for _, engine := range []plans.Engine{plans.EngineLegacy, plans.EngineFused} {
		_, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{PruneNonCompliant: true, MaxPlans: 4, Engine: engine})
		if err == nil || err.Error() != "plans: more than 4 complete plans" {
			t.Fatalf("engine %d: err = %v", engine, err)
		}
	}
}

// policyTableForRandom keeps the import of policy used even if the random
// generator evolves.
var _ *policy.Table = paperex.Policies()

// TestFusedReplayMemoCollapsesFailures: when a shared failing prefix dooms
// an exponential family of plans, the fused engine replays once and
// recovers the rest from the decision memo.
func TestFusedReplayMemoCollapsesFailures(t *testing.T) {
	// The client violates φ₂ right after its first open: whatever the
	// remaining bindings, the exploration fails at the same prefix. The
	// chained tail keeps an exponential family of suffix bindings alive.
	w := benchgen.Chained(3, 3)
	client := hexpr.Frame(paperex.Phi2().ID(), hexpr.Cat(
		hexpr.Act(hexpr.E(paperex.EvSgn, hexpr.Sym("s1"))), // blacklisted by φ₂
		w.Client,
	))
	table := paperex.Policies()
	var stats plans.FusedStats
	as, err := plans.AssessAll(w.Repo, table, w.Loc, client,
		plans.Options{PruneNonCompliant: true, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != w.PlanCount {
		t.Fatalf("%d assessments, want %d", len(as), w.PlanCount)
	}
	for _, a := range as {
		if a.Report.Verdict != verify.SecurityViolation {
			t.Fatalf("plan %s: verdict %s, want security-violation", a.Plan, a.Report)
		}
	}
	if want := uint64(len(as) - 1); stats.ReplayMemoHits.Load() != want {
		t.Errorf("ReplayMemoHits = %d, want %d (one replay serves the family)",
			stats.ReplayMemoHits.Load(), want)
	}
	// And the memoised reports still agree with the legacy engine.
	assertEquivalent(t, "violating prefix", w.Repo, table, w.Loc, client)
}
