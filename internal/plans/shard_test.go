package plans_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"susc/internal/benchgen"
	"susc/internal/budget"
	"susc/internal/plans"
	"susc/internal/verify"
)

// TestFusedEquivalenceSharded extends the equivalence contract to the
// sharded expansion path: worlds large enough to clear the serial-fallback
// threshold (so Workers>1 really runs the sharded frontier prefetch plus
// the replay fleet) must produce assessments byte-identical to the legacy
// engine and to the sequential fused engine. CI runs this under -race,
// which exercises the cross-shard hand-off and the shared canonical
// tables concurrently.
func TestFusedEquivalenceSharded(t *testing.T) {
	worlds := []struct {
		name string
		w    *benchgen.ChainedWorld
	}{
		{"chained(8,2)", benchgen.Chained(8, 2)},
		{"chained(4,3)", benchgen.Chained(4, 3)},
	}
	for _, tc := range worlds {
		w := tc.w
		legacy, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{Engine: plans.EngineLegacy, PruneNonCompliant: true})
		if err != nil {
			t.Fatalf("%s: legacy: %v", tc.name, err)
		}
		if len(legacy) != w.PlanCount {
			t.Fatalf("%s: legacy assessed %d plans, want %d", tc.name, len(legacy), w.PlanCount)
		}
		sequential, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{PruneNonCompliant: true, Workers: 1})
		if err != nil {
			t.Fatalf("%s: sequential fused: %v", tc.name, err)
		}
		var stats plans.FusedStats
		sharded, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
			plans.Options{PruneNonCompliant: true, Workers: 4, Stats: &stats})
		if err != nil {
			t.Fatalf("%s: sharded fused: %v", tc.name, err)
		}
		if stats.StatesExpanded.Load() == 0 {
			t.Fatalf("%s: sharded run expanded no states", tc.name)
		}
		for i := range legacy {
			if !reflect.DeepEqual(legacy[i], sharded[i]) {
				t.Fatalf("%s: assessment %d: sharded diverges from legacy:\nlegacy:  %+v %+v\nsharded: %+v %+v",
					tc.name, i, legacy[i], *legacy[i].Report, sharded[i], *sharded[i].Report)
			}
			if !reflect.DeepEqual(sequential[i], sharded[i]) {
				t.Fatalf("%s: assessment %d: sharded diverges from sequential fused",
					tc.name, i)
			}
		}
	}
}

// TestShardedBudgetExhaustion: an edge budget that dies during the sharded
// prefetch must degrade gracefully — no error, every verdict Valid or
// Unknown (the workload is all-valid), at least one Unknown, the budget
// reporting the edge limit, and no goroutine left behind.
func TestShardedBudgetExhaustion(t *testing.T) {
	before := runtime.NumGoroutine()
	w := benchgen.Chained(8, 2)
	b := budget.New(context.Background(), budget.Limits{MaxEdges: 200})
	as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Workers: 4, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	e := b.Exhausted()
	if e == nil || e.Reason != budget.EdgeLimit {
		t.Fatalf("budget must report the edge limit, got %v", e)
	}
	unknown := 0
	for _, a := range as {
		switch a.Report.Verdict {
		case verify.Valid:
		case verify.Unknown:
			unknown++
		default:
			t.Fatalf("plan %s: verdict %s on an all-valid workload", a.Plan, a.Report.Verdict)
		}
	}
	if unknown == 0 {
		t.Fatal("an exhausted edge budget must leave some verdicts Unknown")
	}
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if i > 50 {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShardedCancellation: a context cancelled mid-run stops the sharded
// prefetch and the fleet promptly, with sound partial output.
func TestShardedCancellation(t *testing.T) {
	w := benchgen.Chained(10, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := budget.New(ctx, budget.Limits{})
	time.AfterFunc(5*time.Millisecond, cancel)
	start := time.Now()
	as, err := plans.AssessAll(w.Repo, w.Table, w.Loc, w.Client,
		plans.Options{PruneNonCompliant: true, Workers: 4, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v to drain", elapsed)
	}
	for _, a := range as {
		if v := a.Report.Verdict; v != verify.Valid && v != verify.Unknown {
			t.Fatalf("plan %s: verdict %s on an all-valid workload", a.Plan, v)
		}
	}
}
