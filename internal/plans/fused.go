package plans

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"susc/internal/budget"
	"susc/internal/faultinject"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/intern"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/policy"
	"susc/internal/ring"
	"susc/internal/verify"
)

// Engine selects the synthesis strategy.
type Engine int

const (
	// EngineFused (the default) synthesizes and validates plans in one
	// shared exploration of the client's configuration space: request
	// bindings are resolved lazily at the first session-open, states
	// reachable under many plans are expanded once, and per-plan verdicts
	// are recovered by cheap replays over the shared graph, memoised on
	// the binding decisions they actually consult. Output is identical to
	// EngineLegacy — same assessments, same deterministic order.
	EngineFused Engine = iota
	// EngineLegacy enumerates every complete plan first and validates
	// each with an independent verify.CheckPlanOpts exploration.
	EngineLegacy
	// EngineReference is the shared-graph engine as it stood before the
	// compiled-automata rework (interpreted stepping, map-keyed interning;
	// see reference.go). Sequential only. It exists as the measured
	// baseline of `benchdump -chained-compare` and as a third equivalence
	// oracle — not for production use.
	EngineReference
)

// FusedStats counts the work of one fused synthesis. The fields are
// typed atomics: the engine's workers Add to them concurrently and any
// reader may Load at any time, including mid-run — there is no plain
// access to mix with. The struct must not be copied; Reset zeroes it
// in place between runs.
type FusedStats struct {
	// StatesExpanded is the number of distinct graph states whose moves
	// and monitor advances were computed (once, shared by every plan
	// reaching the state).
	StatesExpanded atomic.Uint64
	// EdgesBuilt is the number of graph edges built: one per concrete
	// move, one per compliant candidate of a lazy session-open.
	EdgesBuilt atomic.Uint64
	// ReplayStates is the total number of state visits across all plan
	// replays — the fused analogue of summing Report.States over the
	// plans that were actually explored.
	ReplayStates atomic.Uint64
	// ReplayMemoHits is the number of plans whose verdict was recovered
	// from an earlier replay consulting the same binding decisions.
	ReplayMemoHits atomic.Uint64
	// PlansAssessed is the number of complete plans assessed.
	PlansAssessed atomic.Uint64
	// BindingsPruned is the number of candidate bindings rejected by the
	// PruneNonCompliant probe during enumeration.
	BindingsPruned atomic.Uint64
}

// Reset zeroes every counter in place (the struct is not copyable, so
// `*st = FusedStats{}` is not an option for reuse across runs).
func (s *FusedStats) Reset() {
	s.StatesExpanded.Store(0)
	s.EdgesBuilt.Store(0)
	s.ReplayStates.Store(0)
	s.ReplayMemoHits.Store(0)
	s.PlansAssessed.Store(0)
	s.BindingsPruned.Store(0)
}

// fusedEngine is the shared-state-space synthesis engine. One engine
// serves one AssessStream call; the memo.Cache it draws compliance
// verdicts and transition sets from may outlive it.
//
// The state graph is plan-oblivious: a node is keyed by the interned
// session tree and monitor signature only — exactly the visited-set key of
// verify.CheckPlanOpts (synthesis never bounds availability, so the
// availability component is always empty). Session-opens are not resolved
// through a plan: a node's outgoing edges include one *group* per enabled
// open, carrying one sub-edge per compliant candidate service. A concrete
// plan's exploration is the projection of the graph that keeps, in every
// group, the candidate the plan selects — so one graph expansion serves
// every plan, and replaying a plan is a BFS over prebuilt edges with no
// stepping, no monitor copies and no interning.
//
// Everything on the expansion and replay hot paths is compiled to dense
// form at engine construction (see compiled.go): requests and repository
// locations get dense int32 indices (a plan becomes an int32 vector),
// session trees are ctrees carrying their interned IDs, and the move
// relation of a leaf is cached as a compiled row with successors
// pre-interned, items pre-built and monitor inertness pre-decided.
type fusedEngine struct {
	repo   network.Repository
	table  *policy.Table
	loc    hexpr.Location
	client hexpr.Expr
	opts   Options
	cache  *memo.Cache
	tab    *intern.Table
	stats  *FusedStats
	// monCT is the compiled view of the policy table; row building uses it
	// to pre-decide item inertness (inertItems).
	monCT *policy.CompiledTable
	// locIDs pre-interns every location of the world (client + repository),
	// read-only after construction, so keying a leaf skips the string
	// build and shard lock of Table.Key.
	locIDs map[hexpr.Location]intern.ID

	// locations is the deterministic candidate order (sorted repository
	// locations), shared with the legacy enumerator. locIdx maps a
	// location to its dense position in it; services mirrors the service
	// expressions by the same index.
	locations []hexpr.Location
	locIdx    map[hexpr.Location]int32
	services  []hexpr.Expr
	// bodies maps each request of the world to its body (request
	// identifiers are unique across a composition, Definition 1). reqIdx
	// assigns every request a dense index (sorted-request order); nReq is
	// the size of that index space.
	bodies map[hexpr.RequestID]hexpr.Expr
	reqIdx map[hexpr.RequestID]int32
	nReq   int
	// clientPending/locPending hold the sessions of the client and of
	// every service, in hexpr.Walk pre-order — computed once and shared by
	// plan enumeration and the per-plan static compliance walk, which
	// would otherwise re-walk the expressions for every plan. The pendIdx
	// variants carry the dense request index alongside (locPendIdx is
	// indexed by locIdx).
	clientPending []pendingReq
	locPending    map[hexpr.Location][]pendingReq
	clientPendIdx []pendEntry
	locPendIdx    [][]pendEntry
	// clientReqs/locReqs are the deduplicated per-expression request lists
	// feeding the call-cycle successor function.
	clientReqs []hexpr.RequestID
	locReqs    map[hexpr.Location][]hexpr.RequestID

	// concurrent records whether plan assessment may run on multiple
	// goroutines (opts.Workers > 1). Single-threaded engines skip the
	// canonical-table locks entirely — the locks exist only to make the
	// shared graph safe for parallel replay workers. Set at construction,
	// read-only after.
	concurrent bool

	// cycleFree records that the union call graph — every request pointing
	// at every location enumeration could bind it to — is acyclic, which
	// proves every assessed plan acyclic (each plan's call graph is a
	// subgraph) and lets staticCheck skip the per-plan cycle DFS. Set
	// before workers start, read-only after.
	cycleFree bool

	candMu sync.Mutex
	cands  map[hexpr.RequestID][]hexpr.Location

	// leaves/pairs intern the canonical ctrees — leaves keyed on (location
	// ID, expression ID), pairs on the children's engine-local IDs. IDs are
	// split odd (leaves, leafID) / even (pairs, pairID) so each counter is
	// guarded by the lock already held at creation. Pair ctrees and fnodes
	// are bump-allocated from arenas under their locks: they are
	// engine-lifetime and dominate the object population, so block
	// allocation removes both the per-object malloc and the garbage
	// collector's per-object tracking, and packs the replay-hot nodes
	// contiguously.
	leafMu    sync.RWMutex
	leaves    map[uint64]*ctree
	leafID    int32
	pairMu    sync.RWMutex
	pairs     u64map
	pairArena carena
	pairID    int32

	nodeMu    sync.Mutex
	nodes     u64map
	nodeArena narena
	start     *fnode

	memoMu sync.Mutex
	memo   *decisionTrie
}

// pendEntry is one pending session of the static compliance walk: the
// request (for diagnostics), its dense index (to index the plan vector)
// and its body.
type pendEntry struct {
	req    hexpr.RequestID
	reqIdx int32
	body   hexpr.Expr
}

func (eng *fusedEngine) locKey(l hexpr.Location) intern.ID {
	if id, ok := eng.locIDs[l]; ok {
		return id
	}
	return eng.tab.Key(string(l))
}

// fnode is one shared graph state. The monitor is warmed (signature
// cached and interned into sigID) before publication and never mutated
// afterwards; expansion advances only fresh snapshots.
type fnode struct {
	ct  *ctree
	mon *history.Monitor
	// sigID is the interned monitor signature, inherited by successors
	// that share the monitor so inert moves re-key nothing.
	sigID intern.ID
	done  bool
	// idx is the node's dense creation index; replays key their visited
	// arrays on it (an indexed slot instead of a map operation per visit).
	idx int32

	// ready flips once groups/err are final; replays check it lock-free
	// (Store is the release publishing the fields, Load the acquire), so
	// the n-th visit of an expanded node costs no mutex.
	ready    atomic.Bool
	mu       sync.Mutex
	expanded bool
	err      error
	groups   []fgroup
}

// fgroup is one outgoing move group of an expanded node. The overwhelming
// majority of groups are plain concrete moves, so the struct is three
// words — label, successor, and a nil ext — and everything rarer (a policy
// violation, or the candidate set of a lazy open) lives behind ext. The
// monitor items of a group are shared by all its candidates, so a
// violation is a per-group fact.
type fgroup struct {
	// label points into the shared steps cache (see cleafMove.label);
	// traces dereference it on the failure paths.
	label *hexpr.Label
	next  *fnode // concrete groups (nil when the move violates or opens)
	ext   *fgext
}

// fgext is the rare-group extension: a violating move (violation set,
// whichever kind the move was) or a lazy open (reqIdx plus one successor
// per compliant candidate, in candidate order; locIdxs is *shared* with
// the compiled row move the group was built from — the candidate set of an
// open is plan-independent, only the successors are per-node).
type fgext struct {
	reqIdx    int32
	violation hexpr.PolicyID
	locIdxs   []int32
	cnexts    []*fnode
}

// decision is one binding consulted during a replay, in consultation
// order, in dense index space (loc < 0 records "unbound or bound outside
// the world" — the two behave identically).
type decision struct {
	req int32
	loc int32
}

// decisionTrie memoises replay reports on the ordered binding decisions
// the replay consulted. Plans agreeing on a replay's consulted decisions
// explore the very same projection of the graph, so they share its report;
// a plan that fails before its later bindings are ever consulted stands in
// for the whole (possibly exponential) family of plans extending the
// failing prefix. Replays consult decisions deterministically, so the
// next-consulted request at any trie position is a function of the path —
// the trie is well-formed by construction.
type decisionTrie struct {
	req      int32 // dense request index this node branches on (-1 = leaf/unset)
	branches map[int32]*decisionTrie
	leaf     bool
	report   *verify.Report
}

func newFusedEngine(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options) *fusedEngine {

	cache := opts.Cache
	if cache == nil {
		cache = memo.New()
	}
	stats := opts.Stats
	if stats == nil {
		stats = &FusedStats{}
	}
	eng := &fusedEngine{
		repo:       repo,
		table:      table,
		loc:        loc,
		client:     client,
		opts:       opts,
		cache:      cache,
		tab:        cache.Interner(),
		stats:      stats,
		monCT:      table.Compiled(),
		concurrent: opts.Workers > 1,
		locations:  repo.Locations(),
		bodies:     map[hexpr.RequestID]hexpr.Expr{},
		cands:      map[hexpr.RequestID][]hexpr.Location{},
		leaves:     map[uint64]*ctree{},
	}
	eng.locIDs = make(map[hexpr.Location]intern.ID, len(eng.locations)+1)
	eng.locIDs[loc] = eng.tab.Key(string(loc))
	eng.locIdx = make(map[hexpr.Location]int32, len(eng.locations))
	eng.services = make([]hexpr.Expr, len(eng.locations))
	for i, l := range eng.locations {
		eng.locIDs[l] = eng.tab.Key(string(l))
		eng.locIdx[l] = int32(i)
		eng.services[i] = repo[l]
	}
	record := func(list []pendingReq) {
		for _, p := range list {
			if _, dup := eng.bodies[p.req]; !dup {
				eng.bodies[p.req] = p.body
			}
		}
	}
	eng.clientPending = requestsOf(client)
	eng.clientReqs = hexpr.Requests(client)
	eng.locPending = make(map[hexpr.Location][]pendingReq, len(eng.locations))
	eng.locReqs = make(map[hexpr.Location][]hexpr.RequestID, len(eng.locations))
	record(eng.clientPending)
	for _, l := range eng.locations {
		eng.locPending[l] = requestsOf(repo[l])
		eng.locReqs[l] = hexpr.Requests(repo[l])
		record(eng.locPending[l])
	}
	// Dense request index space: every request of the world, in sorted
	// order, so plan maps compile to int32 vectors (planVec).
	reqs := make([]string, 0, len(eng.bodies))
	for r := range eng.bodies {
		reqs = append(reqs, string(r))
	}
	sort.Strings(reqs)
	eng.reqIdx = make(map[hexpr.RequestID]int32, len(reqs))
	for i, r := range reqs {
		eng.reqIdx[hexpr.RequestID(r)] = int32(i)
	}
	eng.nReq = len(reqs)
	toIdx := func(list []pendingReq) []pendEntry {
		out := make([]pendEntry, len(list))
		for i, p := range list {
			out[i] = pendEntry{req: p.req, reqIdx: eng.reqIdx[p.req], body: p.body}
		}
		return out
	}
	eng.clientPendIdx = toIdx(eng.clientPending)
	eng.locPendIdx = make([][]pendEntry, len(eng.locations))
	for i, l := range eng.locations {
		eng.locPendIdx[i] = toIdx(eng.locPending[l])
	}
	mon := history.NewMonitor(table)
	eng.start = eng.node(eng.leaf(loc, eng.locIDs[loc], client), mon, eng.tab.Key(mon.Signature()))
	return eng
}

// candidates returns the repository locations whose service is compliant
// with the request's body, in deterministic (sorted-location) order — the
// branching set of a lazy session-open. Cached per request.
func (eng *fusedEngine) candidates(req hexpr.RequestID) ([]hexpr.Location, error) {
	eng.candMu.Lock()
	defer eng.candMu.Unlock()
	if locs, ok := eng.cands[req]; ok {
		return locs, nil
	}
	body, known := eng.bodies[req]
	if !known {
		eng.cands[req] = nil
		return nil, nil
	}
	var locs []hexpr.Location
	for _, l := range eng.locations {
		ok, err := eng.cache.Compliant(body, eng.repo[l])
		if err != nil {
			return nil, err
		}
		if ok {
			locs = append(locs, l)
		}
	}
	eng.cands[req] = locs
	return locs, nil
}

// narena bump-allocates fnodes in 4096-entry blocks, addressable by dense
// index (fnode.idx doubles as the arena index), under nodeMu. Besides
// removing per-object malloc/GC costs, it lays the nodes out in creation
// order, which is close to BFS order — the order replays touch them.
type narena struct {
	blocks [][]fnode
	n      int32
}

func (a *narena) alloc() (*fnode, int32) {
	if a.n>>arenaShift == int32(len(a.blocks)) {
		a.blocks = append(a.blocks, make([]fnode, 0, 1<<arenaShift))
	}
	b := &a.blocks[len(a.blocks)-1]
	*b = append(*b, fnode{})
	i := a.n
	a.n++
	return &(*b)[len(*b)-1], i
}

func (a *narena) at(i int32) *fnode {
	return &a.blocks[i>>arenaShift][i&(1<<arenaShift-1)]
}

// node interns (tree, monitor) into the shared graph, creating the node on
// first sight. The caller supplies the interned monitor signature —
// computed once per move group, before the node is published through the
// map mutex, so readers in other goroutines never race on the signature
// cache. The tree's one-entry node cache answers repeat lookups (the vast
// majority: worlds have few distinct signatures per tree) without the map.
func (eng *fusedEngine) node(ct *ctree, mon *history.Monitor, sigID intern.ID) *fnode {
	if n := ct.nd.Load(); n != nil && n.sigID == sigID {
		return n
	}
	k := intern.Pack(ct.id, sigID)
	if eng.concurrent {
		eng.nodeMu.Lock()
		defer eng.nodeMu.Unlock()
	}
	i, slot, ok := eng.nodes.getOrSlot(k)
	if ok {
		n := eng.nodeArena.at(i)
		ct.nd.Store(n)
		return n
	}
	n, idx := eng.nodeArena.alloc()
	n.ct = ct
	n.mon = mon
	n.sigID = sigID
	n.done = ct.left == nil && hexpr.IsNil(ct.lp.expr)
	n.idx = idx
	eng.nodes.putAt(slot, k, idx)
	ct.nd.Store(n)
	return n
}

// advance computes the monitor of a move group: shared with the
// predecessor when the items are provably inert (nothing to re-key, sigID
// inherited), a fresh snapshot advanced over the items otherwise. A
// violation is a per-group fact (the candidates of an open share their
// items). The returned sigID is the interned signature of the returned
// monitor.
func (eng *fusedEngine) advance(n *fnode, items []history.Item, inert bool) (
	mon *history.Monitor, sigID intern.ID, violation hexpr.PolicyID, err error) {

	if len(items) == 0 || inert {
		return n.mon, n.sigID, hexpr.NoPolicy, nil
	}
	mon = n.mon.Snapshot()
	for _, it := range items {
		if aerr := mon.Append(it); aerr != nil {
			if verr, ok := aerr.(*history.ViolationError); ok {
				return nil, 0, verr.Policy, nil
			}
			return nil, 0, hexpr.NoPolicy, fmt.Errorf("verify: unexpected monitor error: %w", aerr)
		}
	}
	return mon, eng.tab.Key(mon.Signature()), hexpr.NoPolicy, nil
}

// buildGroups computes the outgoing move groups of the node from the
// compiled rows, in the exact order of network.treeMovesLazyInto: for a
// pair, the left subtree's moves (successors lifted through the shared
// right sibling), then the right's (symmetrically), then the Synch/Close
// moves of leaf pairs. Child rows come cached from treeRowFor — only the
// top-level lift (one pairFor per move) is done here, because a node's
// root tree is almost always unique to it (caching root rows was tried
// and lost: the extra row per root inflated the live heap for no reuse).
// Each group costs one monitor advance (candidates share their items) and
// one successor-node interning per edge. The groups are returned, not
// published: the caller owns the partial-expansion retry semantics.
func (eng *fusedEngine) buildGroups(n *fnode) ([]fgroup, error) {
	var out []fgroup
	var edges uint64 // flushed to the shared stats in one add
	defer func() {
		if edges > 0 {
			eng.stats.EdgesBuilt.Add(edges)
		}
	}()
	// side 0: successor is already the whole tree (root is a leaf, or a
	// Synch/Close collapsing the root pair). side 1/2: the move evolved
	// the left/right child and the successor is lifted over the sibling.
	emit := func(moves []cleafMove, side int) error {
		for i := range moves {
			mv := &moves[i]
			fg := fgroup{label: mv.label}
			mon, sigID, violation, err := eng.advance(n, mv.moveItems(), mv.inert)
			if err != nil {
				return err
			}
			if violation != hexpr.NoPolicy {
				fg.ext = &fgext{reqIdx: mv.reqIdx, violation: violation}
			} else {
				lift := func(s *ctree) *ctree {
					switch side {
					case 1:
						return eng.pairFor(s, n.ct.right)
					case 2:
						return eng.pairFor(n.ct.left, s)
					}
					return s
				}
				if mv.reqIdx < 0 {
					fg.next = eng.node(lift(mv.next), mon, sigID)
					edges++
					// The return value is deliberately dropped: the per-state
					// charge at the next pop observes the sticky exhaustion.
					eng.opts.Budget.ConsumeEdges(1)
				} else {
					// locIdxs shared: candidate sets are plan-independent.
					ext := &fgext{reqIdx: mv.reqIdx, violation: hexpr.NoPolicy,
						locIdxs: mv.ext.locIdxs, cnexts: make([]*fnode, len(mv.ext.cnexts))}
					for ci, c := range mv.ext.cnexts {
						ext.cnexts[ci] = eng.node(lift(c), mon, sigID)
					}
					fg.ext = ext
					edges += uint64(len(mv.ext.cnexts))
					eng.opts.Budget.ConsumeEdges(int64(len(mv.ext.cnexts)))
				}
			}
			out = append(out, fg)
		}
		return nil
	}
	t := n.ct
	if t.left == nil {
		row, err := eng.rowFor(t)
		if err != nil {
			return nil, err
		}
		out = make([]fgroup, 0, len(row.moves))
		if err := emit(row.moves, 0); err != nil {
			return nil, err
		}
		return out, nil
	}
	lrow, err := eng.treeRowFor(t.left)
	if err != nil {
		return nil, err
	}
	rrow, err := eng.treeRowFor(t.right)
	if err != nil {
		return nil, err
	}
	// Synch/Close moves of a bottomed-out session. The root pair is unique
	// to this node, so the moves go straight into the groups (via a
	// scratch row) instead of being cached on the ctree.
	var scratch leafRow
	if t.left.left == nil && t.right.left == nil {
		eng.pairMovesInto(&scratch, t.left, t.right)
	}
	out = make([]fgroup, 0, len(lrow.moves)+len(rrow.moves)+len(scratch.moves))
	if err := emit(lrow.moves, 1); err != nil {
		return nil, err
	}
	if err := emit(rrow.moves, 2); err != nil {
		return nil, err
	}
	if err := emit(scratch.moves, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// ensureExpanded computes the node's outgoing groups once: the compiled
// move relation, one monitor advance per group (candidates share their
// items), and the successor nodes. Every plan whose replay reaches this
// state reuses the result.
func (n *fnode) ensureExpanded(eng *fusedEngine) error {
	if n.ready.Load() {
		return n.err
	}
	// Budget exhaustion aborts the expansion *without* publishing into
	// n.err: the cutoff is a property of this run's budget, not of the
	// node, and a cached exhaustion would poison replays of plans whose
	// verdict was already decided (or later unbudgeted runs sharing the
	// graph through a long-lived engine).
	if e := eng.opts.Budget.Exhausted(); e != nil {
		return e
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.expanded {
		return n.err
	}
	if faultinject.Enabled() {
		faultinject.Fire(faultinject.FusedExpand, n.ct.treeKey())
	}
	// Built groups accumulate in a local slice published only on success:
	// if a panic (injected or genuine) unwinds mid-expansion, the node
	// stays unexpanded and a sibling plan's retry rebuilds from scratch
	// instead of appending duplicates after a partial n.groups.
	built, err := eng.buildGroups(n)
	if err != nil {
		n.expanded, n.err = true, err
		n.ready.Store(true)
		return err
	}
	n.groups = built
	n.expanded = true
	n.ready.Store(true)
	eng.stats.StatesExpanded.Add(1)
	return nil
}

// unknownReport closes a replay cut off by the budget: Unknown verdict
// (never Valid — the projection was not exhausted), the budget's reason,
// the frontier of discovered-but-unexplored states.
func unknownReport(report *verify.Report, e *budget.ExhaustedError, frontier int) *verify.Report {
	report.Verdict = verify.Unknown
	report.Reason = e.Error()
	report.Frontier = frontier
	return report
}

// rvis is one slot of a replayer's visited array: the epoch stamps the
// replay the slot belongs to (bumping the epoch clears the whole array in
// O(1)), prev/gi record how the replay first reached the node (the trace
// label lives in the predecessor's group). prev == nil marks the start.
type rvis struct {
	epoch uint32
	gi    int32
	prev  *fnode
}

// pmove is one projected move of the current replay state: the group index
// (the trace label is the group's), the policy the move violates (if any)
// and the successor node (nil for violating moves).
type pmove struct {
	gi        int32
	violation hexpr.PolicyID
	next      *fnode
}

// replayer holds one worker's reusable replay scratch: the epoch-stamped
// visited array (indexed by fnode.idx — a slot access instead of a map
// operation per visit), BFS ring, projected-move buffer, the dense plan
// vector, decision accumulators and compliance matrix persist across
// plans, so assessing the n-th plan of a large family allocates almost
// nothing.
type replayer struct {
	visited []rvis
	epoch   uint32
	queue   ring.Queue[*fnode]
	moves   []pmove
	// vec is the dense plan vector: vec[reqIdx] = locIdx, or -1 when the
	// request is unbound (or bound outside the world — same behaviour).
	vec []int32
	// used accumulates the binding decisions the replay consulted, in
	// consultation order; usedMark dedups them per replay epoch.
	used     []decision
	usedMark []uint32
	// seenMark/seenEpoch dedup the static compliance walk; compl is the
	// per-worker compliance matrix (reqIdx*nLoc + locIdx → 0 unknown,
	// 1 compliant, 2 non-compliant), lazily filled from the shared cache
	// so the steady-state walk does no hashing at all.
	seenMark  []uint32
	seenEpoch uint32
	compl     []int8
	// states counts this replay's visits, flushed to the shared stats in
	// one atomic add per plan.
	states uint64
}

func (eng *fusedEngine) newReplayer() *replayer {
	return &replayer{
		vec:      make([]int32, eng.nReq),
		usedMark: make([]uint32, eng.nReq),
		seenMark: make([]uint32, eng.nReq),
		compl:    make([]int8, eng.nReq*len(eng.locations)),
	}
}

// planVec compiles the plan map into the replayer's dense vector:
// vec[reqIdx] = locIdx of the bound location, -1 when unbound or bound
// outside the repository (both make opens not enabled and the compliance
// walk skip, exactly as in the map-based walk).
func (eng *fusedEngine) planVec(plan network.Plan, vec []int32) []int32 {
	for i := range vec {
		vec[i] = -1
	}
	for req, loc := range plan {
		ri, ok := eng.reqIdx[req]
		if !ok {
			continue
		}
		li, ok := eng.locIdx[loc]
		if !ok {
			continue
		}
		vec[ri] = li
	}
	return vec
}

// slot returns the visited slot of n, growing the array when expansion has
// minted nodes past its end mid-replay.
func (r *replayer) slot(n *fnode) *rvis {
	if int(n.idx) >= len(r.visited) {
		size := len(r.visited) * 2
		if size <= int(n.idx) {
			size = int(n.idx) + 64
		}
		grown := make([]rvis, size)
		copy(grown, r.visited)
		r.visited = grown
	}
	return &r.visited[n.idx]
}

func (r *replayer) trace(n *fnode) []network.TraceEntry {
	depth := 0
	for p := r.visited[n.idx]; p.prev != nil; p = r.visited[p.prev.idx] {
		depth++
	}
	// Non-nil even when empty, like verify's trace materialisation.
	out := make([]network.TraceEntry, depth)
	for p := r.visited[n.idx]; p.prev != nil; p = r.visited[p.prev.idx] {
		depth--
		out[depth] = network.TraceEntry{Label: *p.prev.groups[p.gi].label}
	}
	return out
}

// replay recovers one plan's verification report from the shared graph: a
// BFS over the projection that keeps, in every open group, the candidate
// the plan selects. It visits exactly the states verify.CheckPlanOpts
// would (same keying, same move order), so verdicts, witnesses, traces and
// even state counts coincide — but each visit is an indexed-slot lookup
// over prebuilt edges, and every binding consultation is an int32 vector
// read. The binding decisions consulted, in consultation order, are left
// in r.used for the replay memo.
func (eng *fusedEngine) replay(vec []int32, r *replayer) (*verify.Report, error) {
	r.used = r.used[:0]
	r.epoch++
	r.queue.Reset()
	r.states = 0
	s := r.slot(eng.start)
	*s = rvis{epoch: r.epoch}
	r.queue.Push(eng.start)
	report := &verify.Report{}
	for r.queue.Len() > 0 {
		report.States++
		if report.States > verify.MaxStates {
			return nil, fmt.Errorf("verify: exploration exceeds %d states", verify.MaxStates)
		}
		if e := eng.opts.Budget.ConsumeStates(1); e != nil {
			report.States--
			return unknownReport(report, e, r.queue.Len()), nil
		}
		n := r.queue.Pop()
		r.states++
		if faultinject.Enabled() {
			faultinject.Fire(faultinject.FusedReplay, n.ct.treeKey())
		}
		if err := n.ensureExpanded(eng); err != nil {
			var e *budget.ExhaustedError
			if errors.As(err, &e) {
				report.States--
				return unknownReport(report, e, r.queue.Len()+1), nil
			}
			return nil, err
		}
		r.moves = r.moves[:0]
		for gi := range n.groups {
			g := &n.groups[gi]
			if g.ext == nil {
				r.moves = append(r.moves, pmove{int32(gi), hexpr.NoPolicy, g.next})
				continue
			}
			if g.ext.violation != hexpr.NoPolicy {
				// A violating move — if it is an open, it violates whichever
				// service it selects: no binding decision is consulted, so
				// every plan reaching this state shares the verdict.
				r.moves = append(r.moves, pmove{int32(gi), g.ext.violation, nil})
				continue
			}
			li := vec[g.ext.reqIdx]
			if r.usedMark[g.ext.reqIdx] != r.epoch {
				r.usedMark[g.ext.reqIdx] = r.epoch
				r.used = append(r.used, decision{req: g.ext.reqIdx, loc: li})
			}
			for ci, cli := range g.ext.locIdxs {
				if cli == li {
					r.moves = append(r.moves, pmove{int32(gi), hexpr.NoPolicy, g.ext.cnexts[ci]})
					break
				}
			}
			// No matching candidate (request unbound, or bound outside the
			// candidate set): the open is not enabled, exactly as in the
			// direct exploration.
		}
		if len(r.moves) == 0 && !n.done {
			report.Verdict = verify.CommunicationDeadlock
			report.Trace = r.trace(n)
			report.StuckTree = n.ct.treeKey()
			return report, nil
		}
		for _, m := range r.moves {
			if m.violation != hexpr.NoPolicy {
				report.Verdict = verify.SecurityViolation
				report.Policy = m.violation
				report.Trace = append(r.trace(n), network.TraceEntry{Label: *n.groups[m.gi].label})
				return report, nil
			}
			if s := r.slot(m.next); s.epoch != r.epoch {
				*s = rvis{epoch: r.epoch, gi: m.gi, prev: n}
				r.queue.Push(m.next)
			}
		}
	}
	report.Verdict = verify.Valid
	return report, nil
}

// assessReplay returns the plan's exploration report, through the decision
// memo: a hit costs one trie walk; a miss replays and files the report
// under the decisions the replay consulted.
func (eng *fusedEngine) assessReplay(vec []int32, r *replayer) (*verify.Report, error) {
	eng.memoMu.Lock()
	for t := eng.memo; t != nil; {
		if t.leaf {
			rep := *t.report
			eng.memoMu.Unlock()
			eng.stats.ReplayMemoHits.Add(1)
			return &rep, nil
		}
		if t.req < 0 {
			break // placeholder without a filed report yet
		}
		t = t.branches[vec[t.req]]
	}
	eng.memoMu.Unlock()

	report, err := eng.replay(vec, r)
	eng.stats.ReplayStates.Add(r.states)
	if err != nil {
		return nil, err
	}
	// An Unknown report reflects this run's cutoff, not a property of the
	// consulted decisions — filing it would serve a stale non-verdict to
	// every later plan sharing the prefix. Only definite verdicts memoise.
	if report.Verdict == verify.Unknown {
		return report, nil
	}

	eng.memoMu.Lock()
	node := eng.memo
	if node == nil {
		node = &decisionTrie{req: -1}
		eng.memo = node
	}
	for _, d := range r.used {
		if node.leaf {
			break // concurrent duplicate replay already filed a report
		}
		if node.req < 0 {
			node.req = d.req
			node.branches = map[int32]*decisionTrie{}
		}
		child := node.branches[d.loc]
		if child == nil {
			child = &decisionTrie{req: -1}
			node.branches[d.loc] = child
		}
		node = child
	}
	if !node.leaf && node.req < 0 {
		node.leaf = true
		node.report = report
	}
	eng.memoMu.Unlock()
	rep := *report
	return &rep, nil
}

// staticCheck mirrors verify.StaticCheck over the engine's precomputed
// session lists: the call-cycle DFS draws its successors from the
// per-expression request lists, and the compliance check traverses the
// precollected sessions in the depth-first, first-occurrence order of
// verify.PlannedRequests — same first failure, same witness strings, no
// per-plan expression walks. Compliance verdicts come from the replayer's
// dense matrix (the shared cache is consulted once per distinct cell, and
// again only on the failure path, to fetch the witness string). The
// equivalence property test pins the parity.
func (eng *fusedEngine) staticCheck(plan network.Plan, vec []int32, r *replayer) (*verify.Report, error) {
	if !eng.cycleFree {
		succ := func(n hexpr.Location) []hexpr.Location {
			reqs := eng.locReqs[n]
			if n == verify.ClientNode {
				reqs = eng.clientReqs
			}
			var out []hexpr.Location
			for _, rq := range reqs {
				if l, ok := plan[rq]; ok {
					out = append(out, l)
				}
			}
			return out
		}
		if cyc := verify.CallCycleFunc(succ); cyc != nil {
			return &verify.Report{
				Verdict: verify.UnboundedNesting,
				Witness: fmt.Sprintf("cyclic service calls: %s", verify.LocPath(cyc)),
			}, nil
		}
	}
	r.seenEpoch++
	nLoc := len(eng.locations)
	var walk func(list []pendEntry) (*verify.Report, error)
	walk = func(list []pendEntry) (*verify.Report, error) {
		for _, s := range list {
			if r.seenMark[s.reqIdx] == r.seenEpoch {
				continue
			}
			r.seenMark[s.reqIdx] = r.seenEpoch
			li := vec[s.reqIdx]
			if li < 0 {
				continue // unbound: the exploration reports the deadlock with a trace
			}
			cell := int(s.reqIdx)*nLoc + int(li)
			c := r.compl[cell]
			if c == 0 {
				ok, _, err := eng.cache.Compliance(s.body, eng.services[li])
				if err != nil {
					return nil, err
				}
				if ok {
					c = 1
				} else {
					c = 2
				}
				r.compl[cell] = c
			}
			if c == 2 {
				_, witness, err := eng.cache.Compliance(s.body, eng.services[li])
				if err != nil {
					return nil, err
				}
				return &verify.Report{
					Verdict: verify.NotCompliant,
					Request: s.req,
					Witness: fmt.Sprintf("service at %s: %s", eng.locations[li], witness),
				}, nil
			}
			if rep, err := walk(eng.locPendIdx[li]); err != nil || rep != nil {
				return rep, err
			}
		}
		return nil, nil
	}
	return walk(eng.clientPendIdx)
}

// computeCycleSkip decides whether per-plan cycle detection is needed: it
// runs one DFS over the union call graph in which every request points at
// every location enumeration could bind it to — the compliant candidates
// under pruning, the whole repository otherwise. Every assessed plan's
// call graph is a subgraph of the union, so an acyclic union (from the
// client) proves every plan acyclic and staticCheck skips its per-plan
// DFS; a cyclic union just keeps the per-plan check.
func (eng *fusedEngine) computeCycleSkip() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[hexpr.Location]int{}
	var dfs func(n hexpr.Location) (bool, error)
	dfs = func(n hexpr.Location) (bool, error) {
		color[n] = grey
		reqs := eng.locReqs[n]
		if n == verify.ClientNode {
			reqs = eng.clientReqs
		}
		for _, rq := range reqs {
			targets := eng.locations
			if eng.opts.PruneNonCompliant {
				var err error
				targets, err = eng.candidates(rq)
				if err != nil {
					return false, err
				}
			}
			for _, m := range targets {
				switch color[m] {
				case grey:
					return true, nil
				case white:
					if cyc, err := dfs(m); err != nil || cyc {
						return cyc, err
					}
				}
			}
		}
		color[n] = black
		return false, nil
	}
	cyc, err := dfs(verify.ClientNode)
	if err != nil {
		return err
	}
	eng.cycleFree = !cyc
	return nil
}

// assess produces one plan's assessment: the static prechecks (mirroring
// verify.CheckPlanOpts, so witnesses are identical by construction), then
// the memoised replay. The plan is compiled to its dense vector once and
// both phases index it.
func (eng *fusedEngine) assess(plan network.Plan, vec []int32, r *replayer) (Assessment, error) {
	eng.stats.PlansAssessed.Add(1)
	if vec == nil {
		vec = eng.planVec(plan, r.vec)
	}
	if rep, err := eng.staticCheck(plan, vec, r); err != nil {
		return Assessment{}, err
	} else if rep != nil {
		return Assessment{Plan: plan, Report: rep}, nil
	}
	report, err := eng.assessReplay(vec, r)
	if err != nil {
		return Assessment{}, err
	}
	return Assessment{Plan: plan, Report: report}, nil
}

// assessGuarded is assess inside a panic guard: a panic anywhere in the
// plan's assessment (expansion, replay, static walk — injected or
// genuine) becomes a typed *budget.InternalError whose Unit is the plan
// key, the plan's verdict degrades to Unknown, and the error is returned
// alongside the assessment so the caller can report it after the rest of
// the fleet finishes. The plan key is rendered lazily — only fault
// injection and the panic path pay the map-sort-format cost. The replayer
// stays reusable: replay and staticCheck reset every piece of scratch
// state at entry.
func (eng *fusedEngine) assessGuarded(plan network.Plan, vec []int32, r *replayer) (Assessment, error) {
	var a Assessment
	err := budget.GuardLazy(func() string { return "plan " + plan.Key() }, func() error {
		if faultinject.Enabled() {
			faultinject.Fire(faultinject.PlansWorker, plan.Key())
		}
		var err error
		a, err = eng.assess(plan, vec, r)
		return err
	})
	if err != nil {
		var ie *budget.InternalError
		if errors.As(err, &ie) {
			return Assessment{Plan: plan,
				Report: &verify.Report{Verdict: verify.Unknown, Reason: ie.Error()}}, err
		}
		return Assessment{}, err
	}
	return a, nil
}

// enumerate mirrors the legacy enumerator exactly — same candidate order,
// same pruning, same MaxPlans semantics — so both engines assess the same
// plans. The pending lists of every recursion level share one growing
// buffer: a child appends its service's sessions at the tail and the
// parent truncates on backtrack, so the traversal order matches the
// rest-then-locPending concatenation of the legacy enumerator while
// enumeration allocates only the returned plans. Pruned bindings are
// counted in the stats.
// Alongside each plan map it emits the plan's dense vector (the planVec
// compilation, built incrementally during the walk), so assessment never
// iterates the plan maps.
func (eng *fusedEngine) enumerate() ([]network.Plan, [][]int32, error) {
	var out []network.Plan
	var vecs [][]int32
	plan := network.Plan{}
	cur := make([]int32, eng.nReq)
	for i := range cur {
		cur[i] = -1
	}
	buf := append([]pendingReq(nil), eng.clientPending...)
	// Local memo of the compliance probe, indexed (request, candidate):
	// backtracking re-asks the same pair on every branch — millions of
	// times on deep workloads — and even a memo.Cache hit pays interning
	// plus a sharded-table read each time. One byte per pair caps that at
	// one cache round-trip per distinct pair (0 unknown, 1 ok, 2 pruned).
	var probe []int8
	if eng.opts.PruneNonCompliant {
		probe = make([]int8, eng.nReq*len(eng.locations))
	}
	var expand func(start int) error
	expand = func(start int) error {
		for start < len(buf) {
			if _, ok := plan[buf[start].req]; ok {
				start++ // already bound (repeated request in scope)
				continue
			}
			break
		}
		if start == len(buf) {
			if eng.opts.MaxPlans > 0 && len(out) >= eng.opts.MaxPlans {
				return fmt.Errorf("plans: more than %d complete plans", eng.opts.MaxPlans)
			}
			if eng.opts.Budget.Exhausted() != nil {
				return errStopEnumeration
			}
			out = append(out, plan.Clone())
			vecs = append(vecs, append([]int32(nil), cur...))
			return nil
		}
		head := buf[start]
		ri := eng.reqIdx[head.req]
		for li, l := range eng.locations {
			if eng.opts.PruneNonCompliant {
				p := &probe[int(ri)*len(eng.locations)+li]
				if *p == 0 {
					ok, err := eng.cache.Compliant(head.body, eng.repo[l])
					if err != nil {
						return err
					}
					if ok {
						*p = 1
					} else {
						*p = 2
					}
				}
				if *p == 2 {
					eng.stats.BindingsPruned.Add(1)
					continue
				}
			}
			plan[head.req] = l
			cur[ri] = int32(li)
			mark := len(buf)
			buf = append(buf, eng.locPending[l]...)
			err := expand(start + 1)
			buf = buf[:mark]
			delete(plan, head.req)
			cur[ri] = -1
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := expand(0); err != nil && err != errStopEnumeration {
		return nil, nil, err
	}
	return out, vecs, nil
}

// AssessStream enumerates every complete plan for the client and streams
// its assessment to yield, in deterministic enumeration order (depth-first
// over pending requests, candidates in sorted-location order). A non-nil
// error from yield stops the stream and is returned. Assessments come from
// the fused engine: plans are validated against one shared state graph,
// and with opts.Workers > 1 they are assessed concurrently (yield still
// observes enumeration order, and is never called concurrently).
//
// With a persistent store attached to opts.Cache, the stream uses only
// the compliance and LTS disk tiers (through the cache); per-plan report
// persistence is the batch assessor's job — AssessAll probes and writes
// the plan-report tier.
func AssessStream(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options,
	yield func(Assessment) error) error {

	return assessStream(repo, table, loc, client, opts, yield, nil)
}

// planKeys builds every enumerated plan's network.Plan.Key without
// touching the plan maps: the "req>loc" fragments are precomputed per
// (request, candidate) pair and concatenated in sorted-request order,
// skipping unbound requests. Byte-identical to Plan.Key — the
// cross-engine equivalence tests pin the resulting sort order against
// the legacy engine, which sorts on the map-built keys.
func (eng *fusedEngine) planKeys(vecs [][]int32) []string {
	names := make([]string, eng.nReq)
	for r, i := range eng.reqIdx {
		names[i] = string(r)
	}
	order := make([]int32, eng.nReq)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })
	frags := make([][]string, eng.nReq)
	for ri := range frags {
		fs := make([]string, len(eng.locations))
		for li, l := range eng.locations {
			fs[li] = names[ri] + ">" + string(l)
		}
		frags[ri] = fs
	}
	keys := make([]string, len(vecs))
	var buf []byte
	for vi, vec := range vecs {
		buf = append(buf[:0], '{')
		first := true
		for _, ri := range order {
			li := vec[ri]
			if li < 0 {
				continue
			}
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = append(buf, frags[ri][li]...)
		}
		buf = append(buf, '}')
		keys[vi] = string(buf)
	}
	return keys
}

// assessStream is AssessStream with a side channel: when keys is non-nil
// it receives the enumerated plans' Plan.Keys (planKeys), aligned with
// the yield order — every enumerated plan is yielded exactly once, also
// under budget exhaustion and isolated worker panics. AssessAll sorts on
// them instead of rebuilding each key from its plan map.
func assessStream(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options,
	yield func(Assessment) error, keys *[]string) error {

	eng := newFusedEngine(repo, table, loc, client, opts)
	plans, vecs, err := eng.enumerate()
	if err != nil {
		return err
	}
	if keys != nil {
		*keys = eng.planKeys(vecs)
	}
	// Presize the canonical-pair and node tables now that the workload
	// scale is known: the explored graph grows with plans × requests, and
	// letting the tables double their way up instead was a third of the
	// engine's allocated bytes (see u64map.reserve). The cap keeps a wide
	// plan space with a small shared graph from over-allocating — beyond
	// it, organic growth takes over.
	if n := len(plans) * eng.nReq; n > 0 {
		const maxReserve = 1 << 21
		eng.pairs.reserve(min(2*n, 2*maxReserve))
		eng.nodes.reserve(min(n, maxReserve/2))
	}
	if err := eng.computeCycleSkip(); err != nil {
		return err
	}
	if opts.Workers > 1 && len(plans) > serialAssessThreshold {
		if eng.cycleFree {
			// Warm the shared graph with the sharded parallel frontier
			// before the replay fleet starts; an acyclic union call graph
			// bounds it (see expandSharded).
			eng.expandSharded()
		}
		return eng.runParallel(plans, vecs, yield)
	}
	// Serial fallback: below the threshold the fleet costs more than the
	// work (see serialAssessThreshold). No goroutine will touch the graph,
	// so the engine also drops the canonical-table locking.
	eng.concurrent = false
	r := eng.newReplayer()
	var firstInternal *budget.InternalError
	for i, p := range plans {
		a, err := eng.assessGuarded(p, vecs[i], r)
		if err != nil {
			var ie *budget.InternalError
			if !errors.As(err, &ie) {
				return err
			}
			if firstInternal == nil {
				firstInternal = ie
			}
		}
		if err := yield(a); err != nil {
			return err
		}
	}
	if firstInternal != nil {
		return firstInternal
	}
	return nil
}

// runParallel assesses the plans with opts.Workers goroutines over the
// shared graph, delivering results to yield in enumeration order through a
// reorder buffer. Work-stealing is implicit: workers pull the next plan
// index as they free up, so an expensive replay never stalls the others.
func (eng *fusedEngine) runParallel(plans []network.Plan, vecs [][]int32, yield func(Assessment) error) error {
	type res struct {
		idx int
		a   Assessment
		err error
	}
	jobs := make(chan int)
	results := make(chan res, eng.opts.Workers)
	stop := make(chan struct{})
	defer close(stop)
	var wg sync.WaitGroup
	for w := 0; w < eng.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := eng.newReplayer()
			for i := range jobs {
				a, err := eng.assessGuarded(plans[i], vecs[i], r)
				select {
				case results <- res{idx: i, a: a, err: err}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := range plans {
			select {
			case jobs <- i:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()
	pending := map[int]res{}
	next := 0
	var firstInternal *budget.InternalError
	for r := range results {
		pending[r.idx] = r
		for {
			rr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if rr.err != nil {
				// An isolated worker panic is not fatal to the fleet: the
				// poisoned plan's Unknown assessment is still yielded and
				// the first internal error is reported once all plans are
				// through.
				var ie *budget.InternalError
				if !errors.As(rr.err, &ie) {
					return rr.err
				}
				if firstInternal == nil {
					firstInternal = ie
				}
			}
			if err := yield(rr.a); err != nil {
				return err
			}
			next++
		}
	}
	if firstInternal != nil {
		return firstInternal
	}
	return nil
}
