package plans

import (
	"sync/atomic"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/intern"
	"susc/internal/lts"
	"susc/internal/network"
)

// ctree is the engine's compiled session tree: a mirror of network.Node in
// which every subtree is *canonical* — the engine interns leaves by
// (location, expression) and pairs by the IDs of their children, so
// structurally equal subtrees are pointer-equal and carry one engine-local
// dense ID. Successor trees are built directly as ctrees: a move rebuilds
// only the spine from the root to the leaf that moved, each spine level is
// one uint64-keyed cache hit (no string hashing, no global intern table
// traffic, no allocation after first sight), and the untouched siblings
// are shared pointers.
//
// The struct is kept lean on purpose: pairs dominate the population by
// orders of magnitude (one per distinct subtree of the explored
// configuration space), so the leaf payload lives behind one pointer that
// pairs leave nil, and pairs themselves are bump-allocated in blocks under
// the intern lock (they are engine-lifetime, so individual GC tracking
// buys nothing).
//
// Canonical ctrees also carry their compiled move row (treeRowFor): the
// row pointer is filled once and every later expansion of any state
// containing the subtree reuses it lock-free.
type ctree struct {
	id          intern.ID // engine-local ID: odd for leaves, even for pairs
	left, right *ctree    // nil for leaves
	lp          *leafPayload
	row         atomic.Pointer[leafRow]
	// nd is a one-entry cache of the graph node last interned for this
	// tree: worlds have few distinct monitor signatures (often one), so
	// almost every node lookup is answered here without touching the node
	// map. The map stays the source of truth; the cache only ever holds a
	// node the map already published. (A two-way cache was tried and
	// bought nothing: signatures rarely alternate on one tree, and the
	// extra word per ctree just grew the scanned heap.)
	nd atomic.Pointer[fnode]
}

// leafPayload is the located process of a leaf ctree (left == nil). steps
// is the expression's cached transition set, resolved once at interning
// (leaf creation is rare) so the row builders never hash into the shared
// memo cache on their hot paths.
type leafPayload struct {
	loc   hexpr.Location
	locID intern.ID
	expr  hexpr.Expr
	steps []lts.Transition
}

// treeKey renders the tree canonically, matching network.Node.Key() of the
// mirrored tree exactly (fault-injection hooks and deadlock reports key on
// it). Cold path: only built for reports and enabled fault injection.
func (t *ctree) treeKey() string {
	if t.left == nil {
		return string(t.lp.loc) + ":" + t.lp.expr.Key()
	}
	return "[" + t.left.treeKey() + " , " + t.right.treeKey() + "]"
}

// u64map is a minimal open-addressed hash table from non-zero uint64 keys
// (intern.Pack values, whose high half is a ctree ID ≥ 1) to int32 arena
// indices. It exists because the canonical-pair and node tables are the
// hottest maps of the engine by an order of magnitude, and this layout
// beats the generic map twice over: probes are a multiplicative hash plus
// a linear scan of a bare []uint64 (no control bytes, no interface
// hashing), and the backing arrays are pointer-free, so the garbage
// collector never scans the tables at all. Callers provide their own
// locking (the tables live behind the engine's pairMu/nodeMu).
type u64map struct {
	slots []u64slot
	n     int
}

// u64slot interleaves the key with its value, padded to 16 bytes so four
// slots tile a cache line exactly: the probe that finds the key has
// already pulled the value in, where split key/value arrays pay a second
// miss on every hit.
type u64slot struct {
	key uint64
	val int32
	_   int32
}

// hash64 mixes both halves of the key before the multiply so the table
// index draws on every input bit — Pack keys often share a constant half
// (e.g. every node key of a single-signature world has the same low word).
func hash64(k uint64) uint64 {
	h := (k ^ k>>33) * 0x9E3779B97F4A7C15
	return h ^ h>>29
}

func (m *u64map) get(k uint64) (int32, bool) {
	if m.slots == nil {
		return 0, false
	}
	mask := uint64(len(m.slots) - 1)
	for i := hash64(k) & mask; ; i = (i + 1) & mask {
		switch m.slots[i].key {
		case k:
			return m.slots[i].val, true
		case 0:
			return 0, false
		}
	}
}

// put inserts k (absent, non-zero) → v, growing at 1/2 load. The low
// ceiling matters: every pairFor/nodeFor interning does a *failed* get
// first, and with linear probing the unsuccessful-search cost curve bends
// hard past half load (~3.5 expected probes at 2/3 versus ~1.5 at 1/2,
// each probe a likely cache miss on the million-entry tables).
func (m *u64map) put(k uint64, v int32) {
	if m.n*2 >= len(m.slots) {
		size := 1 << 13
		if len(m.slots) > 0 {
			size = len(m.slots) * 2
		}
		old := m.slots
		m.slots = make([]u64slot, size)
		m.n = 0
		for _, s := range old {
			if s.key != 0 {
				m.put(s.key, s.val)
			}
		}
	}
	mask := uint64(len(m.slots) - 1)
	i := hash64(k) & mask
	for m.slots[i].key != 0 {
		i = (i + 1) & mask
	}
	m.slots[i] = u64slot{key: k, val: v}
	m.n++
}

// getOrSlot looks k up like get; on a miss it also returns the empty slot
// its probe ended on, so a caller holding the table still (same lock, no
// intervening insert or growth) can complete the insert with putAt instead
// of re-walking the probe chain — on million-entry tables each walk is a
// cache miss, and every interning is a miss-then-insert. slot is -1 when
// the table has no backing array yet.
func (m *u64map) getOrSlot(k uint64) (v int32, slot int, ok bool) {
	if m.slots == nil {
		return 0, -1, false
	}
	mask := uint64(len(m.slots) - 1)
	for i := hash64(k) & mask; ; i = (i + 1) & mask {
		switch m.slots[i].key {
		case k:
			return m.slots[i].val, int(i), true
		case 0:
			return 0, int(i), false
		}
	}
}

// putAt inserts k → v into the empty slot a getOrSlot miss returned,
// falling back to a full put when the table needs to grow first (which
// relocates every slot, invalidating the hint).
func (m *u64map) putAt(slot int, k uint64, v int32) {
	if slot < 0 || m.n*2 >= len(m.slots) {
		m.put(k, v)
		return
	}
	m.slots[slot] = u64slot{key: k, val: v}
	m.n++
}

// reserve grows the table so about n insertions fit without further
// rehashing (a no-op when the table is already big enough). Callers with a
// workload-size estimate use it to skip the doubling ladder: growing a
// table through a dozen doublings allocates and clears more slot memory
// than the final table holds, and re-inserts every entry at each step —
// measured at a third of the engine's allocated bytes on large workloads.
func (m *u64map) reserve(n int) {
	size := 1 << 13
	for size < n*2 {
		size *= 2
	}
	if size <= len(m.slots) {
		return
	}
	old := m.slots
	m.slots = make([]u64slot, size)
	m.n = 0
	for _, s := range old {
		if s.key != 0 {
			m.put(s.key, s.val)
		}
	}
}

// carena bump-allocates pair ctrees in 4096-entry blocks, addressable by
// dense index (the value stored in the pair table). All allocation happens
// under the owning structure's write lock (pairFor), so no further
// synchronisation is needed; reads of at() happen under at least the read
// lock, after the entry was published.
type carena struct {
	blocks [][]ctree
	n      int32
}

const arenaShift = 12 // 4096-entry blocks

func (a *carena) alloc(id intern.ID, l, r *ctree) (*ctree, int32) {
	if a.n>>arenaShift == int32(len(a.blocks)) {
		a.blocks = append(a.blocks, make([]ctree, 0, 1<<arenaShift))
	}
	b := &a.blocks[len(a.blocks)-1]
	*b = append(*b, ctree{id: id, left: l, right: r})
	i := a.n
	a.n++
	return &(*b)[len(*b)-1], i
}

func (a *carena) at(i int32) *ctree {
	return &a.blocks[i>>arenaShift][i&(1<<arenaShift-1)]
}

// leaf interns the canonical ctree of the located process (loc, e), keyed
// on the interned (location, expression) pair. Leaf creation is rare (one
// per distinct process residual per location), so it may hash the
// expression through the shared intern table; everything downstream keys
// on the engine-local ID.
func (eng *fusedEngine) leaf(loc hexpr.Location, locID intern.ID, e hexpr.Expr) *ctree {
	k := intern.Pack(locID, eng.tab.Expr(e))
	if eng.concurrent {
		eng.leafMu.RLock()
		t := eng.leaves[k]
		eng.leafMu.RUnlock()
		if t != nil {
			return t
		}
		nt := &ctree{lp: &leafPayload{loc: loc, locID: locID, expr: e, steps: eng.cache.Steps(e)}}
		eng.leafMu.Lock()
		if ex := eng.leaves[k]; ex != nil {
			nt = ex
		} else {
			eng.leafID++
			nt.id = intern.ID(2*eng.leafID - 1) // odd IDs (pairs take the even ones)
			eng.leaves[k] = nt
		}
		eng.leafMu.Unlock()
		return nt
	}
	if t := eng.leaves[k]; t != nil {
		return t
	}
	eng.leafID++
	nt := &ctree{
		id: intern.ID(2*eng.leafID - 1),
		lp: &leafPayload{loc: loc, locID: locID, expr: e, steps: eng.cache.Steps(e)},
	}
	eng.leaves[k] = nt
	return nt
}

// pairFor interns the canonical pair ctree [l , r], keyed on the children's
// IDs. The children are canonical by construction (spines are rebuilt
// bottom-up from canonical leaves), so the key identifies the whole
// subtree. This is the innermost expansion hot path — one read-locked
// uint64 map hit per lifted move in the steady state.
func (eng *fusedEngine) pairFor(l, r *ctree) *ctree {
	k := intern.Pack(l.id, r.id)
	if eng.concurrent {
		eng.pairMu.RLock()
		var t *ctree
		if i, ok := eng.pairs.get(k); ok {
			t = eng.pairArena.at(i)
		}
		eng.pairMu.RUnlock()
		if t != nil {
			return t
		}
		eng.pairMu.Lock()
		if i, slot, ok := eng.pairs.getOrSlot(k); ok {
			t = eng.pairArena.at(i)
		} else {
			eng.pairID++
			var idx int32
			t, idx = eng.pairArena.alloc(intern.ID(2*eng.pairID), l, r) // even IDs (leaves take the odd ones)
			eng.pairs.putAt(slot, k, idx)
		}
		eng.pairMu.Unlock()
		return t
	}
	i, slot, ok := eng.pairs.getOrSlot(k)
	if ok {
		return eng.pairArena.at(i)
	}
	eng.pairID++
	t, idx := eng.pairArena.alloc(intern.ID(2*eng.pairID), l, r)
	eng.pairs.putAt(slot, k, idx)
	return t
}

// leafRow is the compiled move row of one canonical ctree — leaf or pair:
// the full move relation of the subtree with every plan-independent piece
// resolved once. Successor subtrees (and, for session-opens, the whole
// successor tree per compliant candidate) are pre-interned canonical
// ctrees, history items are pre-built, and the monitor inertness of the
// items is pre-decided against the engine's policy table. Pair rows are
// composed from the children's cached rows (treeRowFor), so the spine
// wrapping of a subtree's moves is paid once per *distinct* subtree and
// shared by every state containing it.
type leafRow struct {
	moves []cleafMove
}

// cleafMove is one compiled move of a row. Rows dominate the compiled
// graph's memory (one per distinct subtree, lift-copied per spine level),
// and the overwhelming majority of moves are concrete and monitor-inert,
// so the struct is kept to four words — label, successor, dense request
// index, inert flag — and everything rarer (history items that actually
// advance the monitor, the candidate arrays of a session-open) lives
// behind ext. Inert moves carry no items at all: the only consumer of
// items is the monitor advance, which inert moves skip by definition.
type cleafMove struct {
	// label points into the shared steps cache (or at hexpr.Tau): labels
	// are several string headers wide and every lift would otherwise copy
	// them; traces dereference on the (cold) failure paths only.
	label *hexpr.Label
	next  *ctree
	// reqIdx is the dense request index of a session-open, -1 for
	// concrete moves.
	reqIdx int32
	inert  bool // items provably monitor-neutral (history.Monitor.InertFor)
	ext    *cmext
}

// cmext is the rare-move extension: the history items of a non-inert move,
// and for session-opens (reqIdx >= 0) one pre-built successor tree per
// compliant candidate in cnexts, with the candidates' dense location
// indices in locIdxs. locIdxs and items are shared by every lift of the
// move (only the successors change when a move is lifted through a spine
// level); locIdxs is also shared by the fgroups compiled from the move.
type cmext struct {
	items   []history.Item
	locIdxs []int32
	cnexts  []*ctree
}

// moveItems returns the history items of the move (nil for inert moves,
// which dropped them at row-build time).
func (m *cleafMove) moveItems() []history.Item {
	if m.ext == nil {
		return nil
	}
	return m.ext.items
}

// inertItems reports whether the items are provably monitor-neutral for
// every monitor over the engine's table — the static analogue of
// history.Monitor.InertFor, decided once at row-build time: every item must
// be a plain event whose name no policy automaton watches.
func (eng *fusedEngine) inertItems(items []history.Item) bool {
	for _, it := range items {
		if it.Kind != history.ItemEvent || eng.monCT.WatchedMask(it.Event.Name) != 0 {
			return false
		}
	}
	return true
}

// rowFor returns the compiled move row of the canonical leaf, building it on
// first sight. The construction mirrors leafMovesLazyInto exactly — same
// step order, same label/item values, same candidate order, opens with no
// compliant candidate dropped — so projecting the compiled graph under a
// plan yields precisely the legacy move relation. Racing builders produce
// structurally identical rows; one wins the publish.
func (eng *fusedEngine) rowFor(t *ctree) (*leafRow, error) {
	if r := t.row.Load(); r != nil {
		return r, nil
	}
	lp := t.lp
	row := &leafRow{}
	steps := lp.steps
	for si := range steps {
		tr := &steps[si] // shared immutable cache entry: &tr.Label is stable
		switch tr.Label.Kind {
		case hexpr.LEvent:
			mv := cleafMove{
				label:  &tr.Label,
				next:   eng.leaf(lp.loc, lp.locID, tr.To),
				reqIdx: -1,
				inert:  eng.monCT.WatchedMask(tr.Label.Event.Name) == 0,
			}
			if !mv.inert {
				mv.ext = &cmext{items: []history.Item{history.EventItem(tr.Label.Event)}}
			}
			row.moves = append(row.moves, mv)
		case hexpr.LFrameOpen, hexpr.LFrameClose:
			mv := cleafMove{
				label:  &tr.Label,
				next:   eng.leaf(lp.loc, lp.locID, tr.To),
				reqIdx: -1,
				inert:  true, // no items unless the frame names a policy
			}
			if tr.Label.Policy != hexpr.NoPolicy {
				item := history.OpenItem(tr.Label.Policy)
				if tr.Label.Kind == hexpr.LFrameClose {
					item = history.CloseItem(tr.Label.Policy)
				}
				mv.inert = false
				mv.ext = &cmext{items: []history.Item{item}}
			}
			row.moves = append(row.moves, mv)
		case hexpr.LOpen:
			locs, err := eng.candidates(tr.Label.Req)
			if err != nil {
				return nil, err
			}
			ext := &cmext{}
			mv := cleafMove{
				label:  &tr.Label,
				reqIdx: eng.reqIdx[tr.Label.Req],
				inert:  true,
				ext:    ext,
			}
			if tr.Label.Policy != hexpr.NoPolicy {
				ext.items = []history.Item{history.OpenItem(tr.Label.Policy)}
				mv.inert = false
			}
			toLeaf := eng.leaf(lp.loc, lp.locID, tr.To)
			for _, loc := range locs {
				service, ok := eng.repo[loc]
				if !ok {
					continue // dangling candidate: not enabled
				}
				svcLeaf := eng.leaf(loc, eng.locKey(loc), service)
				ext.locIdxs = append(ext.locIdxs, eng.locIdx[loc])
				ext.cnexts = append(ext.cnexts, eng.pairFor(toLeaf, svcLeaf))
			}
			// Open groups with no candidate are dropped: no plan enables
			// them (same as the lazy walk).
			if len(ext.cnexts) > 0 {
				row.moves = append(row.moves, mv)
			}
		}
	}
	t.row.Store(row)
	return row, nil
}

// treeRowFor returns the compiled move row of any canonical ctree,
// composing pair rows from the children's rows in the exact order of
// network.treeMovesLazyInto: the left subtree's moves (each successor
// re-wrapped with the shared right sibling), then the right subtree's
// (symmetrically), then the Synch/Close moves when both children are
// leaves. Because children rows already carry canonical successors, each
// move is wrapped through exactly one pairFor per tree level it is lifted
// through — and that lift happens once per distinct subtree, not once per
// expansion. Racing builders produce structurally identical rows; one
// wins the publish.
func (eng *fusedEngine) treeRowFor(t *ctree) (*leafRow, error) {
	if r := t.row.Load(); r != nil {
		return r, nil
	}
	if t.left == nil {
		return eng.rowFor(t)
	}
	lrow, err := eng.treeRowFor(t.left)
	if err != nil {
		return nil, err
	}
	rrow, err := eng.treeRowFor(t.right)
	if err != nil {
		return nil, err
	}
	row := &leafRow{moves: make([]cleafMove, 0, len(lrow.moves)+len(rrow.moves))}
	lift := func(moves []cleafMove, wrap func(*ctree) *ctree) {
		for i := range moves {
			m := moves[i] // copy: successors rewritten, items/locIdxs shared
			if m.reqIdx < 0 {
				m.next = wrap(m.next)
			} else {
				ext := &cmext{items: m.ext.items, locIdxs: m.ext.locIdxs,
					cnexts: make([]*ctree, len(m.ext.cnexts))}
				for j, c := range m.ext.cnexts {
					ext.cnexts[j] = wrap(c)
				}
				m.ext = ext
			}
			row.moves = append(row.moves, m)
		}
	}
	lift(lrow.moves, func(s *ctree) *ctree { return eng.pairFor(s, t.right) })
	lift(rrow.moves, func(s *ctree) *ctree { return eng.pairFor(t.left, s) })
	if t.left.left == nil && t.right.left == nil {
		eng.pairMovesInto(row, t.left, t.right)
	}
	t.row.Store(row)
	return row, nil
}

// pairMovesInto appends the compiled Synch/Close moves of a session whose
// two sides are the given canonical leaves. The construction mirrors
// network.pairMoves: complementary communications in (left step, right
// step) order, then closes of the left side, then of the right. Built
// directly into the pair's row (the pair ctree is canonical, so the row
// is cached with it).
func (eng *fusedEngine) pairMovesInto(row *leafRow, l, r *ctree) {
	ls := l.lp.steps
	rs := r.lp.steps
	for _, a := range ls {
		if a.Label.Kind != hexpr.LComm {
			continue
		}
		for _, b := range rs {
			if b.Label.Kind != hexpr.LComm || b.Label.Comm != a.Label.Comm.Co() {
				continue
			}
			la := eng.leaf(l.lp.loc, l.lp.locID, a.To)
			rb := eng.leaf(r.lp.loc, r.lp.locID, b.To)
			row.moves = append(row.moves, cleafMove{
				label:  &hexpr.Tau,
				next:   eng.pairFor(la, rb),
				reqIdx: -1,
			})
		}
	}
	eng.closeRowInto(row, l, r, ls)
	eng.closeRowInto(row, r, l, rs)
}

// closeRowInto appends the compiled Close moves in which closer closes the
// session: the pair collapses to the closing leaf and Φ(other)·⌋φ is
// logged, mirroring network.closeMoves.
func (eng *fusedEngine) closeRowInto(row *leafRow, closer, other *ctree, steps []lts.Transition) {
	for si := range steps {
		tr := &steps[si]
		if tr.Label.Kind != hexpr.LClose {
			continue
		}
		items := network.ClosingFrames(other.lp.expr)
		if tr.Label.Policy != hexpr.NoPolicy {
			items = append(items, history.CloseItem(tr.Label.Policy))
		}
		mv := cleafMove{
			label:  &tr.Label,
			next:   eng.leaf(closer.lp.loc, closer.lp.locID, tr.To),
			reqIdx: -1,
			inert:  eng.inertItems(items),
		}
		if !mv.inert {
			mv.ext = &cmext{items: items}
		}
		row.moves = append(row.moves, mv)
	}
}
