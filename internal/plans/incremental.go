package plans

import (
	"errors"
	"sort"
	"sync"

	"susc/internal/budget"
	"susc/internal/faultinject"
	"susc/internal/hash"
	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/policy"
	"susc/internal/store"
	"susc/internal/verify"
)

// recomputeFraction is the miss-fraction threshold of the incremental
// assessor: at or below it, misses are recomputed one exploration per
// plan (the cost is proportional to what actually changed); above it, the
// shared-graph engine recomputes everything — paying once for the graph
// beats paying per plan when most of the plan space is cold.
const recomputeFraction = 4 // recompute per-plan while misses ≤ 1/4 of plans

// assessAllIncremental is the persistent-tier plan assessor: enumerate
// the candidate plans, probe the store for each plan's cone hash, decode
// the hits, and recompute only the misses. On an unchanged repository
// every probe hits and assessment costs no exploration at all; after an
// edit, the only misses are the plans whose dependency cone contains the
// edited declaration.
func assessAllIncremental(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options) ([]Assessment, error) {

	cache := opts.Cache
	disk := cache.Disk()
	complete, err := enumerate(repo, client, opts, cache)
	if err != nil {
		return nil, err
	}

	// Probe the store once per plan. Plan assessment is capacity-free
	// (capacities are a whole-network concern), so the cone key carries no
	// capacity component.
	out := make([]Assessment, len(complete))
	sums := make([]hash.Sum, len(complete))
	var misses []int
	for i, plan := range complete {
		sum, err := verify.PlanKey(repo, table, loc, client, plan, nil)
		if err != nil {
			return nil, err
		}
		sums[i] = sum
		if raw, ok := disk.Get(store.KindPlanReport, sum); ok {
			if r, derr := verify.DecodeReport(raw); derr == nil {
				out[i] = Assessment{Plan: plan, Report: r}
				continue
			}
		}
		misses = append(misses, i)
	}

	var firstInternal *budget.InternalError
	switch {
	case len(misses) == 0:
		// Warm store, unchanged repository: nothing to compute.
	case len(misses)*recomputeFraction <= len(complete):
		// A small edit: recompute exactly the invalidated cones, one
		// exploration per plan, under singleflight so concurrent callers
		// sharing the store compute a cone once.
		firstInternal, err = recomputeMisses(repo, table, loc, client, opts, complete, sums, misses, out)
		if err != nil {
			return nil, err
		}
	default:
		// A cold or mostly-invalidated store: the shared-graph engine
		// amortises the exploration across all plans, and the misses are
		// written back from its output.
		all, aerr := assessAllFused(repo, table, loc, client, opts)
		if aerr != nil && !errors.As(aerr, &firstInternal) {
			return nil, aerr
		}
		byPlanKey := make(map[string]*verify.Report, len(all))
		for _, a := range all {
			byPlanKey[a.Plan.Key()] = a.Report
		}
		for _, i := range misses {
			r := byPlanKey[complete[i].Key()]
			if r == nil {
				continue
			}
			out[i] = Assessment{Plan: complete[i], Report: r}
			if r.Verdict != verify.Unknown {
				enc, eerr := verify.EncodeReport(r)
				if eerr != nil {
					return nil, eerr
				}
				if perr := disk.Put(store.KindPlanReport, sums[i], enc); perr != nil {
					return nil, perr
				}
			}
		}
	}

	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].Plan.Key()
	}
	sort.Sort(&byKey{keys: keys, out: out})
	if firstInternal != nil {
		return out, firstInternal
	}
	return out, nil
}

// recomputeMisses validates the missed plans one exploration each —
// panic-guarded and worker-parallel exactly like the legacy engine — and
// writes decided verdicts back to the store. Unknown verdicts (budget
// cutoffs) are never persisted.
func recomputeMisses(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, opts Options,
	complete []network.Plan, sums []hash.Sum, misses []int, out []Assessment) (*budget.InternalError, error) {

	cache := opts.Cache
	disk := cache.Disk()
	vopts := verify.Options{Cache: cache, Budget: opts.Budget, SkipDiskProbe: true}
	checkOne := func(i int) (Assessment, error) {
		plan := complete[i]
		key := plan.Key()
		var report *verify.Report
		err := budget.Guard("plan "+key, func() error {
			got, err := disk.Once(store.KindPlanReport, sums[i], func() (any, error) {
				// A concurrent assessor may have written the cone while we
				// queued behind the flight.
				if raw, ok := disk.Peek(store.KindPlanReport, sums[i]); ok {
					if r, derr := verify.DecodeReport(raw); derr == nil {
						return r, nil
					}
				}
				if faultinject.Enabled() {
					faultinject.Fire(faultinject.PlansWorker, key)
				}
				r, err := verify.CheckPlanOpts(repo, table, loc, client, plan, vopts)
				if err != nil {
					return nil, err
				}
				if r.Verdict != verify.Unknown {
					enc, eerr := verify.EncodeReport(r)
					if eerr != nil {
						return nil, eerr
					}
					if perr := disk.Put(store.KindPlanReport, sums[i], enc); perr != nil {
						return nil, perr
					}
				}
				return r, nil
			})
			if err != nil {
				return err
			}
			report = got.(*verify.Report)
			return nil
		})
		if err != nil {
			var ie *budget.InternalError
			if errors.As(err, &ie) {
				return Assessment{Plan: plan,
					Report: &verify.Report{Verdict: verify.Unknown, Reason: ie.Error()}}, err
			}
			return Assessment{}, err
		}
		return Assessment{Plan: plan, Report: report}, nil
	}

	var firstInternal *budget.InternalError
	if opts.Workers > 1 && len(misses) > 1 {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		jobs := make(chan int)
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					a, err := checkOne(i)
					if err != nil {
						var ie *budget.InternalError
						mu.Lock()
						if errors.As(err, &ie) {
							if firstInternal == nil {
								firstInternal = ie
							}
						} else if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						if a.Report == nil {
							continue
						}
					}
					out[i] = a
				}
			}()
		}
		for _, i := range misses {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	} else {
		for _, i := range misses {
			a, err := checkOne(i)
			if err != nil {
				var ie *budget.InternalError
				if !errors.As(err, &ie) {
					return nil, err
				}
				if firstInternal == nil {
					firstInternal = ie
				}
			}
			out[i] = a
		}
	}
	return firstInternal, nil
}
