package lambda_test

import (
	"math/rand"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/lambda"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/parser"
	"susc/internal/verify"
)

// lamHotelWorld builds the paper's §2 scenario entirely as λ-programs: the
// broker opens a nested session with a hotel, the hotels fire their
// events, the client talks to the broker.
func lamHotelWorld(t *testing.T) (lambda.Term, lambda.ServiceRepo) {
	t.Helper()
	aliases := map[string]hexpr.PolicyID{
		"phi1": paperex.Phi1().ID(),
		"phi2": paperex.Phi2().ID(),
	}
	parse := func(src string) lambda.Term {
		t.Helper()
		term, err := parser.ParseLambdaWith(src, aliases)
		if err != nil {
			t.Fatal(err)
		}
		return term
	}
	client := parse(`
open r1 with phi1 {
  select { Req => branch { CoBo => select { Pay => () } | NoAv => () } }
}`)
	broker := parse(`
branch { Req =>
  open r3 {
    select { IdC => branch { Bok => () | UnA => () } }
  };
  select { CoBo => branch { Pay => () } | NoAv => () }
}`)
	hotel := func(id string, price, rating int, withDel bool) lambda.Term {
		extra := ""
		if withDel {
			extra = " | Del => ()"
		}
		return parse(`
fire sgn(` + id + `); fire price(` + itoa(price) + `); fire rating(` + itoa(rating) + `);
branch { IdC => select { Bok => () | UnA => ()` + extra + ` } }`)
	}
	repo := lambda.ServiceRepo{
		"br": broker,
		"s1": hotel("s1", 45, 80, false),
		"s2": hotel("s2", 70, 100, true),
		"s3": hotel("s3", 90, 100, false),
		"s4": hotel("s4", 50, 90, false),
	}
	return client, repo
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestLamHotelEffectsMatchPaper: the extracted effects of the λ-services
// coincide with the paper's history expressions.
func TestLamHotelEffectsMatchPaper(t *testing.T) {
	client, repo := lamHotelWorld(t)
	effects, err := repo.Effects()
	if err != nil {
		t.Fatal(err)
	}
	want := map[hexpr.Location]hexpr.Expr{
		"br": paperex.Broker(), "s1": paperex.S1(), "s2": paperex.S2(),
		"s3": paperex.S3(), "s4": paperex.S4(),
	}
	for loc, w := range want {
		if !hexpr.Equal(effects[loc], w) {
			t.Errorf("effect at %s:\n  got  %s\n  want %s", loc, effects[loc].Key(), w.Key())
		}
	}
	_, ceff, err := lambda.InferClosed(client)
	if err != nil {
		t.Fatal(err)
	}
	if !hexpr.Equal(ceff, paperex.C1()) {
		t.Errorf("client effect = %s, want C1", ceff.Key())
	}
}

// TestLamNetworkValidPlanCompletes: the verified plan π₁ runs the actual
// λ-programs to completion with the monitor off, under many schedulers.
func TestLamNetworkValidPlanCompletes(t *testing.T) {
	client, repo := lamHotelWorld(t)
	plan := network.Plan{"r1": "br", "r3": "s3"}
	// statically verify the plan on the extracted effects
	effects, err := repo.Effects()
	if err != nil {
		t.Fatal(err)
	}
	_, ceff, err := lambda.InferClosed(client)
	if err != nil {
		t.Fatal(err)
	}
	r, err := verify.CheckPlan(effects, paperex.Policies(), "c1", ceff, plan)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.Valid {
		t.Fatalf("π₁ should verify on the extracted effects: %s", r)
	}
	// then run the programs
	for seed := int64(0); seed < 30; seed++ {
		res, err := lambda.RunNetwork(client, "c1", repo, plan,
			lambda.NetOptions{Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != lambda.SessionCompleted {
			t.Fatalf("seed %d: %s", seed, res.Status)
		}
		if !res.Hist.Balanced() || !history.Valid(res.Hist, paperex.Policies()) {
			t.Fatalf("seed %d: bad history %s", seed, res.Hist)
		}
	}
}

// TestLamNetworkHistoryMatchesFig3: the deterministic run under π₁ logs
// exactly the Fig. 3 history of C1.
func TestLamNetworkHistoryMatchesFig3(t *testing.T) {
	client, repo := lamHotelWorld(t)
	plan := network.Plan{"r1": "br", "r3": "s3"}
	res, err := lambda.RunNetwork(client, "c1", repo, plan, lambda.NetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lambda.SessionCompleted {
		t.Fatalf("status = %s", res.Status)
	}
	phi1 := string(paperex.Phi1().ID())
	want := "[_" + phi1 + " sgn(s3) price(90) rating(100) _]" + phi1
	if res.Hist.String() != want {
		t.Errorf("history = %q, want %q", res.Hist, want)
	}
}

// TestLamNetworkMonitorAbortsBlacklisted: binding r3 to the blacklisted
// hotel trips the monitor at the sgn event.
func TestLamNetworkMonitorAbortsBlacklisted(t *testing.T) {
	client, repo := lamHotelWorld(t)
	plan := network.Plan{"r1": "br", "r3": "s1"}
	res, err := lambda.RunNetwork(client, "c1", repo, plan, lambda.NetOptions{
		Monitored: true, Table: paperex.Policies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lambda.SessionAborted {
		t.Fatalf("status = %s, want security-abort", res.Status)
	}
	if res.Violation != paperex.Phi1().ID() {
		t.Errorf("violation = %s", res.Violation)
	}
	// unmonitored, the same plan completes but the history is invalid
	res, err = lambda.RunNetwork(client, "c1", repo, plan, lambda.NetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lambda.SessionCompleted {
		t.Fatalf("free run: %s", res.Status)
	}
	if history.Valid(res.Hist, paperex.Policies()) {
		t.Error("free run under the bad plan must produce an invalid history")
	}
}

// TestLamNetworkStuckOnNonCompliant: a Del-only hotel deadlocks the run.
func TestLamNetworkStuckOnNonCompliant(t *testing.T) {
	client, repo := lamHotelWorld(t)
	delOnly, err := parser.ParseLambda(`
fire sgn(s2); fire price(70); fire rating(100);
branch { IdC => select { Del => () } }`)
	if err != nil {
		t.Fatal(err)
	}
	repo["s2"] = delOnly
	plan := network.Plan{"r1": "br", "r3": "s2"}
	res, err := lambda.RunNetwork(client, "c1", repo, plan, lambda.NetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lambda.SessionStuck {
		t.Fatalf("status = %s, want stuck", res.Status)
	}
}

// TestLamNetworkUnboundRequestStuck: unplanned requests are stuck.
func TestLamNetworkUnboundRequestStuck(t *testing.T) {
	client, repo := lamHotelWorld(t)
	res, err := lambda.RunNetwork(client, "c1", repo, network.Plan{"r1": "br"}, lambda.NetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lambda.SessionStuck {
		t.Fatalf("status = %s, want stuck", res.Status)
	}
	res, err = lambda.RunNetwork(client, "c1", repo,
		network.Plan{"r1": "ghost", "r3": "s3"}, lambda.NetOptions{})
	if err != nil || res.Status != lambda.SessionStuck {
		t.Fatalf("dangling: %v %v", res, err)
	}
}

// TestLamNetworkDanglingServiceFramesClosed: when the client closes a
// session while the service sits inside an Enforce, the Φ rule closes the
// dangling frame in the history.
func TestLamNetworkDanglingServiceFramesClosed(t *testing.T) {
	phi1 := paperex.Phi1().ID()
	svc, err := parser.ParseLambdaWith(`
enforce phi1 {
  branch { ping => branch { never => () } }
}`, map[string]hexpr.PolicyID{"phi1": phi1})
	if err != nil {
		t.Fatal(err)
	}
	client, err := parser.ParseLambda(`open r1 { select { ping => () } }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lambda.RunNetwork(client, "cl", lambda.ServiceRepo{"svc": svc},
		network.Plan{"r1": "svc"}, lambda.NetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lambda.SessionCompleted {
		t.Fatalf("status = %s", res.Status)
	}
	if !res.Hist.Balanced() {
		t.Errorf("history not balanced despite Φ: %s", res.Hist)
	}
}

func TestLamNetworkOutOfFuel(t *testing.T) {
	client, err := parser.ParseLambda(
		`open r1 { (rec f(x: unit): unit . select { tick => branch { tock => f () } }) () }`)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := parser.ParseLambda(
		`(rec g(x: unit): unit . branch { tick => select { tock => g () } }) ()`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lambda.RunNetwork(client, "cl", lambda.ServiceRepo{"svc": svc},
		network.Plan{"r1": "svc"}, lambda.NetOptions{Fuel: 200})
	if err != nil || res.Status != lambda.SessionOutOfFuel {
		t.Fatalf("res = %v err %v", res, err)
	}
}

func TestServiceRepoEffectsRejectsIllTyped(t *testing.T) {
	bad := lambda.App{Fn: lambda.Unit{}, Arg: lambda.Unit{}}
	if _, err := (lambda.ServiceRepo{"x": bad}).Effects(); err == nil {
		t.Error("ill-typed service must fail effect extraction")
	}
}
