package lambda

import (
	"fmt"

	"susc/internal/hexpr"
)

// TypeError reports a typing failure.
type TypeError struct {
	Term Term
	Msg  string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("lambda: %s: in %s", e.Msg, e.Term)
}

// Env is a typing environment.
type Env map[string]Type

// clone copies the environment.
func (env Env) clone() Env {
	out := make(Env, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	return out
}

// Infer runs the type and effect system: it returns the type of the term
// and its effect — the history expression abstracting every run of the
// term. The effect of a well-typed closed term always satisfies
// hexpr.Check; the guarded-tail-recursion restriction of Definition 1 is
// enforced on recursive functions at their definition.
func Infer(t Term, env Env) (Type, hexpr.Expr, error) {
	i := &inferrer{}
	ty, eff, err := i.infer(t, env)
	if err != nil {
		return nil, nil, err
	}
	return ty, eff, nil
}

// InferClosed infers a closed term against the empty environment and
// additionally checks the resulting effect's well-formedness.
func InferClosed(t Term) (Type, hexpr.Expr, error) {
	ty, eff, err := Infer(t, Env{})
	if err != nil {
		return nil, nil, err
	}
	if err := hexpr.Check(eff); err != nil {
		return nil, nil, &TypeError{Term: t, Msg: fmt.Sprintf("ill-formed effect: %v", err)}
	}
	return ty, eff, nil
}

type inferrer struct {
	recCount int
}

func (i *inferrer) infer(t Term, env Env) (Type, hexpr.Expr, error) {
	switch x := t.(type) {
	case Var:
		ty, ok := env[x.Name]
		if !ok {
			return nil, nil, &TypeError{Term: t, Msg: fmt.Sprintf("unbound variable %q", x.Name)}
		}
		return ty, hexpr.Eps(), nil
	case Unit:
		return UnitT{}, hexpr.Eps(), nil
	case IntLit:
		return IntT{}, hexpr.Eps(), nil
	case SymLit:
		return SymT{}, hexpr.Eps(), nil
	case Abs:
		inner := env.clone()
		inner[x.Param] = x.ParamType
		rty, reff, err := i.infer(x.Body, inner)
		if err != nil {
			return nil, nil, err
		}
		return FunT{Param: x.ParamType, Effect: reff, Result: rty}, hexpr.Eps(), nil
	case App:
		fty, feff, err := i.infer(x.Fn, env)
		if err != nil {
			return nil, nil, err
		}
		fun, ok := fty.(FunT)
		if !ok {
			return nil, nil, &TypeError{Term: t, Msg: fmt.Sprintf("applying a non-function of type %s", fty)}
		}
		aty, aeff, err := i.infer(x.Arg, env)
		if err != nil {
			return nil, nil, err
		}
		if !TypeEqual(aty, fun.Param) {
			return nil, nil, &TypeError{Term: t,
				Msg: fmt.Sprintf("argument type %s does not match parameter type %s", aty, fun.Param)}
		}
		// effect: evaluate the function, the argument, then the latent
		// effect fires
		return fun.Result, hexpr.Cat(feff, aeff, fun.Effect), nil
	case Fire:
		return UnitT{}, hexpr.Act(x.Event), nil
	case Seq:
		_, eff1, err := i.infer(x.First, env)
		if err != nil {
			return nil, nil, err
		}
		ty2, eff2, err := i.infer(x.Then, env)
		if err != nil {
			return nil, nil, err
		}
		return ty2, hexpr.Cat(eff1, eff2), nil
	case Let:
		bty, beff, err := i.infer(x.Bind, env)
		if err != nil {
			return nil, nil, err
		}
		inner := env.clone()
		inner[x.Name] = bty
		ty, eff, err := i.infer(x.Body, inner)
		if err != nil {
			return nil, nil, err
		}
		return ty, hexpr.Cat(beff, eff), nil
	case Enforce:
		ty, eff, err := i.infer(x.Body, env)
		if err != nil {
			return nil, nil, err
		}
		return ty, hexpr.Frame(x.Policy, eff), nil
	case Request:
		ty, eff, err := i.infer(x.Body, env)
		if err != nil {
			return nil, nil, err
		}
		return ty, hexpr.Open(x.Req, x.Policy, eff), nil
	case Select:
		return i.inferComm(t, x.Branches, env, hexpr.Send)
	case Branch:
		return i.inferComm(t, x.Branches, env, hexpr.Recv)
	case RecFun:
		i.recCount++
		h := fmt.Sprintf("h$%s%d", x.Name, i.recCount)
		inner := env.clone()
		inner[x.Name] = FunT{Param: x.ParamType, Effect: hexpr.V(h), Result: x.Result}
		inner[x.Param] = x.ParamType
		rty, reff, err := i.infer(x.Body, inner)
		if err != nil {
			return nil, nil, err
		}
		if !TypeEqual(rty, x.Result) {
			return nil, nil, &TypeError{Term: t,
				Msg: fmt.Sprintf("body type %s does not match declared result %s", rty, x.Result)}
		}
		var latent hexpr.Expr
		if hexpr.FreeVars(reff)[h] {
			latent = hexpr.Mu(h, reff)
			// The effect grammar only admits guarded tail recursion
			// (Definition 1): surface the violation at the definition site.
			if err := checkRecEffect(latent); err != nil {
				return nil, nil, &TypeError{Term: t, Msg: err.Error()}
			}
		} else {
			latent = reff
		}
		return FunT{Param: x.ParamType, Effect: latent, Result: x.Result}, hexpr.Eps(), nil
	}
	return nil, nil, &TypeError{Term: t, Msg: "unknown term"}
}

func (i *inferrer) inferComm(t Term, bs []CommBranch, env Env, dir hexpr.Dir) (Type, hexpr.Expr, error) {
	if len(bs) == 0 {
		return nil, nil, &TypeError{Term: t, Msg: "empty communication choice"}
	}
	sorted := sortedBranches(bs)
	seen := map[string]bool{}
	var ty Type
	branches := make([]hexpr.Branch, 0, len(sorted))
	for _, b := range sorted {
		if seen[b.Channel] {
			return nil, nil, &TypeError{Term: t, Msg: fmt.Sprintf("duplicate channel %q", b.Channel)}
		}
		seen[b.Channel] = true
		bty, beff, err := i.infer(b.Body, env)
		if err != nil {
			return nil, nil, err
		}
		if ty == nil {
			ty = bty
		} else if !TypeEqual(ty, bty) {
			return nil, nil, &TypeError{Term: t,
				Msg: fmt.Sprintf("branch types differ: %s vs %s", ty, bty)}
		}
		branches = append(branches, hexpr.B(hexpr.Comm{Channel: b.Channel, Dir: dir}, beff))
	}
	if dir == hexpr.Send {
		return ty, hexpr.IntCh(branches...), nil
	}
	return ty, hexpr.Ext(branches...), nil
}

// checkRecEffect validates that a recursive latent effect respects the
// guarded-tail-recursion restriction, reporting a readable error at the
// definition site. Effects still containing outer recursion variables are
// deferred to the enclosing definition (and ultimately to InferClosed).
func checkRecEffect(latent hexpr.Expr) error {
	if !hexpr.Closed(latent) {
		return nil
	}
	if err := hexpr.Check(latent); err != nil {
		return fmt.Errorf("recursive effect is not guarded tail recursion: %v", err)
	}
	return nil
}
