// Package lambda implements the service programming language the paper's
// methodology starts from ([Bartoletti–Degano–Ferrari]): a call-by-value
// λ-calculus with security events, policy framings, call-by-contract
// service requests and session communications, together with the type and
// effect system that extracts the history expression (the behavioural
// abstraction of internal/hexpr) of every well-typed program. The paper
// defers this front end to its references; it is implemented here so the
// pipeline λ-term → effect → verification runs end to end.
//
// Branching is communication-driven (select/branch), matching the paper's
// history expressions, whose choices are guarded by outputs and inputs
// respectively; there is no unguarded conditional.
package lambda

import (
	"fmt"
	"sort"
	"strings"

	"susc/internal/hexpr"
)

// Type is a λ-calculus type: a base type or an effect-annotated function
// type τ₁ --H--> τ₂ (H is the latent effect, fired at application time).
type Type interface {
	isType()
	String() string
}

// UnitT is the unit base type.
type UnitT struct{}

// IntT is the integer base type.
type IntT struct{}

// SymT is the symbol base type.
type SymT struct{}

// FunT is the function type with latent effect.
type FunT struct {
	Param  Type
	Effect hexpr.Expr
	Result Type
}

func (UnitT) isType() {}
func (IntT) isType()  {}
func (SymT) isType()  {}
func (FunT) isType()  {}

func (UnitT) String() string { return "unit" }
func (IntT) String() string  { return "int" }
func (SymT) String() string  { return "sym" }
func (f FunT) String() string {
	eff := f.Effect.Key()
	return fmt.Sprintf("(%s -[%s]-> %s)", f.Param, eff, f.Result)
}

// TypeEqual compares types structurally; latent effects are compared up to
// the canonical congruence of hexpr keys.
func TypeEqual(a, b Type) bool {
	switch x := a.(type) {
	case UnitT:
		_, ok := b.(UnitT)
		return ok
	case IntT:
		_, ok := b.(IntT)
		return ok
	case SymT:
		_, ok := b.(SymT)
		return ok
	case FunT:
		y, ok := b.(FunT)
		return ok && TypeEqual(x.Param, y.Param) && TypeEqual(x.Result, y.Result) &&
			hexpr.Equal(x.Effect, y.Effect)
	}
	return false
}

// Term is a λ-term.
type Term interface {
	isTerm()
	String() string
}

// Var is a variable occurrence.
type Var struct{ Name string }

// Unit is the unit value ().
type Unit struct{}

// IntLit is an integer literal.
type IntLit struct{ Value int }

// SymLit is a symbol literal.
type SymLit struct{ Value string }

// Abs is the abstraction λx:τ. e.
type Abs struct {
	Param     string
	ParamType Type
	Body      Term
}

// App is application e₁ e₂.
type App struct{ Fn, Arg Term }

// Fire is a security event α(v̄); the arguments are literals, so that the
// extracted effect is a concrete event.
type Fire struct{ Event hexpr.Event }

// Seq is sequencing e₁; e₂.
type Seq struct{ First, Then Term }

// Let is let x = e₁ in e₂.
type Let struct {
	Name string
	Bind Term
	Body Term
}

// Enforce is the security framing φ[e].
type Enforce struct {
	Policy hexpr.PolicyID
	Body   Term
}

// Request is the call-by-contract service request open_{r,φ}: the body is
// the client-side conversation of the session.
type Request struct {
	Req    hexpr.RequestID
	Policy hexpr.PolicyID
	Body   Term
}

// SelectBranch is one alternative of a Select (an output) or Branch (an
// input).
type CommBranch struct {
	Channel string
	Body    Term
}

// Select is the internal choice: the program decides which message to send
// and continues with the corresponding body.
type Select struct{ Branches []CommBranch }

// Branch is the external choice: the program waits for one of the
// messages and continues with the corresponding body.
type Branch struct{ Branches []CommBranch }

// RecFun is the recursive function rec f(x:τ₁):τ₂. e. Its latent effect is
// μh.H where recursive applications of f contribute h; the effect must be
// guarded tail recursion (checked at inference time).
type RecFun struct {
	Name      string
	Param     string
	ParamType Type
	Result    Type
	Body      Term
}

func (Var) isTerm()     {}
func (Unit) isTerm()    {}
func (IntLit) isTerm()  {}
func (SymLit) isTerm()  {}
func (Abs) isTerm()     {}
func (App) isTerm()     {}
func (Fire) isTerm()    {}
func (Seq) isTerm()     {}
func (Let) isTerm()     {}
func (Enforce) isTerm() {}
func (Request) isTerm() {}
func (Select) isTerm()  {}
func (Branch) isTerm()  {}
func (RecFun) isTerm()  {}

func (v Var) String() string    { return v.Name }
func (Unit) String() string     { return "()" }
func (l IntLit) String() string { return fmt.Sprintf("%d", l.Value) }
func (l SymLit) String() string { return l.Value }
func (a Abs) String() string {
	return fmt.Sprintf("(\\%s:%s. %s)", a.Param, a.ParamType, a.Body)
}
func (a App) String() string  { return fmt.Sprintf("(%s %s)", a.Fn, a.Arg) }
func (f Fire) String() string { return "fire " + f.Event.String() }
func (s Seq) String() string  { return fmt.Sprintf("%s; %s", s.First, s.Then) }
func (l Let) String() string {
	return fmt.Sprintf("let %s = %s in %s", l.Name, l.Bind, l.Body)
}
func (e Enforce) String() string {
	return fmt.Sprintf("enforce %s { %s }", e.Policy, e.Body)
}
func (r Request) String() string {
	if r.Policy == hexpr.NoPolicy {
		return fmt.Sprintf("open %s { %s }", r.Req, r.Body)
	}
	return fmt.Sprintf("open %s with %s { %s }", r.Req, r.Policy, r.Body)
}
func commString(kw string, bs []CommBranch, dir string) string {
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = fmt.Sprintf("%s%s => %s", b.Channel, dir, b.Body)
	}
	return kw + " { " + strings.Join(parts, " | ") + " }"
}
func (s Select) String() string { return commString("select", s.Branches, "!") }
func (b Branch) String() string { return commString("branch", b.Branches, "?") }
func (r RecFun) String() string {
	return fmt.Sprintf("(rec %s(%s:%s):%s. %s)", r.Name, r.Param, r.ParamType, r.Result, r.Body)
}

// sortedBranches returns the branches sorted by channel for deterministic
// effects.
func sortedBranches(bs []CommBranch) []CommBranch {
	out := append([]CommBranch(nil), bs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Channel < out[j].Channel })
	return out
}
