package lambda

import (
	"fmt"
	"math/rand"

	"susc/internal/hexpr"
	"susc/internal/history"
)

// SessionStatus classifies how a two-party session evaluation ended.
type SessionStatus int

const (
	// SessionCompleted: the client program reduced to a value (the paper's
	// notion of success — the server need not terminate).
	SessionCompleted SessionStatus = iota
	// SessionStuck: both sides paused on communications that cannot
	// synchronise — exactly the run-time failure compliance rules out.
	SessionStuck
	// SessionOutOfFuel: the step budget ran out.
	SessionOutOfFuel
	// SessionAborted: the run-time monitor stopped the run on a policy
	// violation (network runs only).
	SessionAborted
)

func (s SessionStatus) String() string {
	switch s {
	case SessionCompleted:
		return "completed"
	case SessionStuck:
		return "stuck"
	case SessionOutOfFuel:
		return "out-of-fuel"
	case SessionAborted:
		return "security-abort"
	}
	return "unknown"
}

// SessionResult is the outcome of EvalSession.
type SessionResult struct {
	Status SessionStatus
	// ClientValue is the client's result (Completed only).
	ClientValue Value
	// Hist is the shared session history: both parties log their events
	// and framing actions into it, as in the network semantics. Each side
	// runs to its next communication point before the other is scheduled.
	Hist history.History
	// Synchronised lists the channels synchronised, in order.
	Synchronised []string
}

// EvalSession runs a client and a server λ-program as the two parties of a
// session: non-communication steps reduce locally (call-by-value), and
// select/branch pairs synchronise — the side holding the select picks the
// channel (via rnd; deterministically first when rnd is nil), the other
// side must offer it. Service requests (open) are not supported inside a
// session evaluation; use the network semantics on extracted effects for
// nested sessions.
//
// EvalSession is the run-time ground truth for compliance at the λ level:
// when the inferred effects of the two programs are compliant, no
// scheduling of EvalSession ever returns SessionStuck (property-tested).
func EvalSession(client, server Term, fuel int, rnd *rand.Rand) (*SessionResult, error) {
	sess := &session{fuel: fuel}
	ce := &evaluator{sess: sess}
	se := &evaluator{sess: sess}
	res := &SessionResult{}
	co := ce.eval(client, valueK)
	so := se.eval(server, valueK)
	for {
		if co.err != nil {
			if isFuel(co.err) {
				res.Status = SessionOutOfFuel
				res.Hist = sess.hist
				return res, nil
			}
			return nil, co.err
		}
		if so.err != nil {
			if isFuel(so.err) {
				res.Status = SessionOutOfFuel
				res.Hist = sess.hist
				return res, nil
			}
			return nil, so.err
		}
		if co.req != nil || so.req != nil {
			return nil, &EvalError{Term: client,
				Msg: "nested service requests are not supported in session evaluation (use RunNetwork)"}
		}
		// the client finished: success regardless of the server residual
		if co.comm == nil {
			res.Status = SessionCompleted
			res.ClientValue = co.val
			res.Hist = sess.hist
			return res, nil
		}
		// client paused; server finished: nobody will ever answer
		if so.comm == nil {
			res.Status = SessionStuck
			res.Hist = sess.hist
			return res, nil
		}
		// both paused: they must form a sender/receiver pair
		var sender, receiver *pausedComm
		switch {
		case co.comm.send && !so.comm.send:
			sender, receiver = co.comm, so.comm
		case !co.comm.send && so.comm.send:
			sender, receiver = so.comm, co.comm
		default:
			res.Status = SessionStuck
			res.Hist = sess.hist
			return res, nil
		}
		// the sender decides
		idx := 0
		if rnd != nil {
			idx = rnd.Intn(len(sender.branches))
		}
		ch := sender.branches[idx].Channel
		rBranch, ok := findBranch(receiver.branches, ch)
		if !ok {
			res.Status = SessionStuck
			res.Hist = sess.hist
			return res, nil
		}
		res.Synchronised = append(res.Synchronised, ch)
		next1 := sender.resume(sender.branches[idx].Body)
		next2 := receiver.resume(rBranch.Body)
		if co.comm == sender {
			co, so = next1, next2
		} else {
			co, so = next2, next1
		}
	}
}

func findBranch(bs []CommBranch, ch string) (CommBranch, bool) {
	for _, b := range bs {
		if b.Channel == ch {
			return b, true
		}
	}
	return CommBranch{}, false
}

// outcome is the result of evaluating one side: a value, an error, or a
// pause — at a communication, or at a service request (handled only by the
// network runtime).
type outcome struct {
	val  Value
	err  error
	comm *pausedComm
	req  *pausedReq
}

// pausedComm is a side blocked on select (send=true) or branch; resume
// continues evaluation with the chosen branch body.
type pausedComm struct {
	send     bool
	branches []CommBranch
	resume   func(Term) *outcome
}

// pausedReq is a side blocked on a service request open_{r,φ}: the network
// runtime spawns the service, evaluates body in the session, and calls
// resume with the body's value once the session closes.
type pausedReq struct {
	req    hexpr.RequestID
	policy hexpr.PolicyID
	body   Term
	resume func(Value) *outcome
}

func valueK(v Value) *outcome { return &outcome{val: v} }

type fuelError struct{}

func (fuelError) Error() string { return "lambda: session out of fuel" }

func isFuel(err error) bool {
	_, ok := err.(fuelError)
	return ok
}

// session holds the shared fuel and history of an evaluation (one per
// network component; both parties of EvalSession share one).
type session struct {
	fuel int
	hist history.History
}

// evaluator is one party's CPS evaluation state: it shares the component
// session (fuel, history) and tracks its own stack of open Enforce frames,
// so the network runtime can close them (the Φ of rule Close) when the
// party is terminated mid-frame.
type evaluator struct {
	sess   *session
	frames []hexpr.PolicyID
}

// eval is a CPS evaluator: it reduces t and passes the value to k; when
// the redex is a communication or a service request, it returns a pause
// whose resume re-enters evaluation with the same continuation.
func (e *evaluator) eval(t Term, k func(Value) *outcome) *outcome {
	s := e.sess
	if s.fuel <= 0 {
		return &outcome{err: fuelError{}}
	}
	s.fuel--
	switch x := t.(type) {
	case Unit, IntLit, SymLit, Abs, RecFun:
		return k(t)
	case Var:
		return &outcome{err: &EvalError{Term: t, Msg: fmt.Sprintf("unbound variable %q", x.Name)}}
	case Fire:
		s.hist = append(s.hist, history.EventItem(x.Event))
		return k(Unit{})
	case Seq:
		return e.eval(x.First, func(Value) *outcome {
			return e.eval(x.Then, k)
		})
	case Let:
		return e.eval(x.Bind, func(v Value) *outcome {
			return e.eval(substTerm(x.Body, x.Name, v), k)
		})
	case Enforce:
		if x.Policy != hexpr.NoPolicy {
			s.hist = append(s.hist, history.OpenItem(x.Policy))
			e.frames = append(e.frames, x.Policy)
		}
		return e.eval(x.Body, func(v Value) *outcome {
			if x.Policy != hexpr.NoPolicy {
				s.hist = append(s.hist, history.CloseItem(x.Policy))
				e.frames = e.frames[:len(e.frames)-1]
			}
			return k(v)
		})
	case App:
		return e.eval(x.Fn, func(fv Value) *outcome {
			return e.eval(x.Arg, func(av Value) *outcome {
				switch fn := fv.(type) {
				case Abs:
					return e.eval(substTerm(fn.Body, fn.Param, av), k)
				case RecFun:
					body := substTerm(fn.Body, fn.Param, av)
					body = substTerm(body, fn.Name, fn)
					return e.eval(body, k)
				default:
					return &outcome{err: &EvalError{Term: t, Msg: fmt.Sprintf("applying non-function %s", fv)}}
				}
			})
		})
	case Select:
		return &outcome{comm: &pausedComm{
			send:     true,
			branches: x.Branches,
			resume:   func(body Term) *outcome { return e.eval(body, k) },
		}}
	case Branch:
		return &outcome{comm: &pausedComm{
			send:     false,
			branches: x.Branches,
			resume:   func(body Term) *outcome { return e.eval(body, k) },
		}}
	case Request:
		return &outcome{req: &pausedReq{
			req:    x.Req,
			policy: x.Policy,
			body:   x.Body,
			resume: func(v Value) *outcome { return k(v) },
		}}
	}
	return &outcome{err: &EvalError{Term: t, Msg: "unknown term"}}
}
