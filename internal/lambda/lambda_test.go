package lambda_test

import (
	"strings"
	"testing"

	"susc/internal/compliance"
	"susc/internal/hexpr"
	"susc/internal/lambda"
	"susc/internal/lts"
	"susc/internal/paperex"
	"susc/internal/valid"
)

func mustInfer(t *testing.T, term lambda.Term) (lambda.Type, hexpr.Expr) {
	t.Helper()
	ty, eff, err := lambda.InferClosed(term)
	if err != nil {
		t.Fatalf("InferClosed(%s): %v", term, err)
	}
	return ty, eff
}

func TestInferBasics(t *testing.T) {
	ty, eff := mustInfer(t, lambda.Unit{})
	if _, ok := ty.(lambda.UnitT); !ok || !hexpr.IsNil(eff) {
		t.Errorf("unit: %s / %s", ty, eff.Key())
	}
	ty, eff = mustInfer(t, lambda.IntLit{Value: 42})
	if _, ok := ty.(lambda.IntT); !ok || !hexpr.IsNil(eff) {
		t.Errorf("int: %s / %s", ty, eff.Key())
	}
	ty, eff = mustInfer(t, lambda.Fire{Event: hexpr.E("sgn", hexpr.Int(1))})
	if _, ok := ty.(lambda.UnitT); !ok || eff.Key() != "sgn(1)" {
		t.Errorf("fire: %s / %s", ty, eff.Key())
	}
}

func TestInferSeqAndLet(t *testing.T) {
	term := lambda.Seq{
		First: lambda.Fire{Event: hexpr.E("a")},
		Then: lambda.Let{
			Name: "x",
			Bind: lambda.IntLit{Value: 1},
			Body: lambda.Fire{Event: hexpr.E("b")},
		},
	}
	_, eff := mustInfer(t, term)
	want := hexpr.Cat(hexpr.Act(hexpr.E("a")), hexpr.Act(hexpr.E("b")))
	if !hexpr.Equal(eff, want) {
		t.Errorf("effect = %s, want %s", eff.Key(), want.Key())
	}
}

func TestInferLatentEffects(t *testing.T) {
	// (λx:unit. fire a) (): the event fires at application, not definition
	fn := lambda.Abs{Param: "x", ParamType: lambda.UnitT{}, Body: lambda.Fire{Event: hexpr.E("a")}}
	_, effDef := mustInfer(t, fn)
	if !hexpr.IsNil(effDef) {
		t.Errorf("abstraction effect = %s, want eps", effDef.Key())
	}
	_, effApp := mustInfer(t, lambda.App{Fn: fn, Arg: lambda.Unit{}})
	if effApp.Key() != "a" {
		t.Errorf("application effect = %s, want a", effApp.Key())
	}
}

func TestInferEnforceAndRequest(t *testing.T) {
	term := lambda.Enforce{Policy: "phi", Body: lambda.Fire{Event: hexpr.E("a")}}
	_, eff := mustInfer(t, term)
	want := hexpr.Frame("phi", hexpr.Act(hexpr.E("a")))
	if !hexpr.Equal(eff, want) {
		t.Errorf("enforce effect = %s", eff.Key())
	}
	req := lambda.Request{Req: "r1", Policy: "phi",
		Body: lambda.Select{Branches: []lambda.CommBranch{{Channel: "Req", Body: lambda.Unit{}}}}}
	_, eff = mustInfer(t, req)
	want = hexpr.Open("r1", "phi", hexpr.SendThen("Req", hexpr.Eps()))
	if !hexpr.Equal(eff, want) {
		t.Errorf("request effect = %s, want %s", eff.Key(), want.Key())
	}
}

func TestInferSelectBranch(t *testing.T) {
	sel := lambda.Select{Branches: []lambda.CommBranch{
		{Channel: "Bok", Body: lambda.Unit{}},
		{Channel: "UnA", Body: lambda.Unit{}},
	}}
	_, eff := mustInfer(t, sel)
	want := hexpr.IntCh(
		hexpr.B(hexpr.Out("Bok"), hexpr.Eps()),
		hexpr.B(hexpr.Out("UnA"), hexpr.Eps()),
	)
	if !hexpr.Equal(eff, want) {
		t.Errorf("select effect = %s, want %s", eff.Key(), want.Key())
	}
	br := lambda.Branch{Branches: []lambda.CommBranch{
		{Channel: "Bok", Body: lambda.Fire{Event: hexpr.E("ok")}},
		{Channel: "UnA", Body: lambda.Unit{}},
	}}
	_, eff = mustInfer(t, br)
	want = hexpr.Ext(
		hexpr.B(hexpr.In("Bok"), hexpr.Act(hexpr.E("ok"))),
		hexpr.B(hexpr.In("UnA"), hexpr.Eps()),
	)
	if !hexpr.Equal(eff, want) {
		t.Errorf("branch effect = %s, want %s", eff.Key(), want.Key())
	}
}

func TestInferRecursion(t *testing.T) {
	// rec f(x:unit):unit. select { ping! => branch { pong? => f () } | stop! => () }
	f := lambda.RecFun{
		Name: "f", Param: "x", ParamType: lambda.UnitT{}, Result: lambda.UnitT{},
		Body: lambda.Select{Branches: []lambda.CommBranch{
			{Channel: "ping", Body: lambda.Branch{Branches: []lambda.CommBranch{
				{Channel: "pong", Body: lambda.App{Fn: lambda.Var{Name: "f"}, Arg: lambda.Unit{}}},
			}}},
			{Channel: "stop", Body: lambda.Unit{}},
		}},
	}
	_, eff := mustInfer(t, lambda.App{Fn: f, Arg: lambda.Unit{}})
	// effect: μh. (ping! . pong? . h) ⊕ stop!
	rec, ok := eff.(hexpr.Rec)
	if !ok {
		t.Fatalf("effect = %s, want a recursion", eff.Key())
	}
	if err := hexpr.Check(eff); err != nil {
		t.Fatalf("effect ill-formed: %v", err)
	}
	l, err := lts.Build(eff)
	if err != nil {
		t.Fatal(err)
	}
	if !l.CanReachTermination(0) {
		t.Error("stop! branch should terminate")
	}
	_ = rec
}

func TestInferRejectsNonTailRecursion(t *testing.T) {
	// rec f(x). select { a! => (f x; fire b) }: the recursive call is not
	// in tail position.
	f := lambda.RecFun{
		Name: "f", Param: "x", ParamType: lambda.UnitT{}, Result: lambda.UnitT{},
		Body: lambda.Select{Branches: []lambda.CommBranch{
			{Channel: "a", Body: lambda.Seq{
				First: lambda.App{Fn: lambda.Var{Name: "f"}, Arg: lambda.Var{Name: "x"}},
				Then:  lambda.Fire{Event: hexpr.E("b")},
			}},
		}},
	}
	_, _, err := lambda.InferClosed(f)
	if err == nil || !strings.Contains(err.Error(), "tail") {
		t.Errorf("err = %v, want non-tail rejection", err)
	}
}

func TestInferRejectsUnguardedRecursion(t *testing.T) {
	// rec f(x). f x: no communication guard.
	f := lambda.RecFun{
		Name: "f", Param: "x", ParamType: lambda.UnitT{}, Result: lambda.UnitT{},
		Body: lambda.App{Fn: lambda.Var{Name: "f"}, Arg: lambda.Var{Name: "x"}},
	}
	_, _, err := lambda.InferClosed(f)
	if err == nil || !strings.Contains(err.Error(), "guard") {
		t.Errorf("err = %v, want unguarded rejection", err)
	}
}

func TestInferErrors(t *testing.T) {
	cases := []struct {
		term lambda.Term
		msg  string
	}{
		{lambda.Var{Name: "x"}, "unbound variable"},
		{lambda.App{Fn: lambda.Unit{}, Arg: lambda.Unit{}}, "non-function"},
		{lambda.App{
			Fn:  lambda.Abs{Param: "x", ParamType: lambda.IntT{}, Body: lambda.Var{Name: "x"}},
			Arg: lambda.Unit{},
		}, "does not match parameter type"},
		{lambda.Select{}, "empty communication choice"},
		{lambda.Select{Branches: []lambda.CommBranch{
			{Channel: "a", Body: lambda.Unit{}},
			{Channel: "a", Body: lambda.Unit{}},
		}}, "duplicate channel"},
		{lambda.Select{Branches: []lambda.CommBranch{
			{Channel: "a", Body: lambda.Unit{}},
			{Channel: "b", Body: lambda.IntLit{Value: 1}},
		}}, "branch types differ"},
		{lambda.RecFun{Name: "f", Param: "x", ParamType: lambda.UnitT{},
			Result: lambda.IntT{}, Body: lambda.Unit{}}, "does not match declared result"},
	}
	for _, c := range cases {
		_, _, err := lambda.InferClosed(c.term)
		if err == nil {
			t.Errorf("InferClosed(%s) succeeded, want %q", c.term, c.msg)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("InferClosed(%s) = %v, want mention of %q", c.term, err, c.msg)
		}
	}
}

// TestClientProgramMatchesPaperContract: a λ-program whose inferred effect
// is exactly the paper's client C1, end to end through compliance.
func TestClientProgramMatchesPaperContract(t *testing.T) {
	prog := lambda.Request{
		Req:    "r1",
		Policy: paperex.Phi1().ID(),
		Body: lambda.Select{Branches: []lambda.CommBranch{
			{Channel: "Req", Body: lambda.Branch{Branches: []lambda.CommBranch{
				{Channel: "CoBo", Body: lambda.Select{Branches: []lambda.CommBranch{
					{Channel: "Pay", Body: lambda.Unit{}},
				}}},
				{Channel: "NoAv", Body: lambda.Unit{}},
			}}},
		}},
	}
	_, eff := mustInfer(t, prog)
	if !hexpr.Equal(eff, paperex.C1()) {
		t.Fatalf("inferred effect = %s, want C1 = %s", eff.Key(), paperex.C1().Key())
	}
	// The extracted behaviour is compliant with the broker.
	body, _, _ := effRequestBody(eff)
	ok, err := compliance.Compliant(body, paperex.Broker())
	if err != nil || !ok {
		t.Errorf("compliance of extracted effect: %v %v", ok, err)
	}
}

func effRequestBody(e hexpr.Expr) (hexpr.Expr, hexpr.PolicyID, bool) {
	if s, ok := e.(hexpr.Session); ok {
		return s.Body, s.Policy, true
	}
	return nil, hexpr.NoPolicy, false
}

// TestEffectSoundness: for communication-free programs, the history
// produced by evaluation is valid iff the statically checked effect is —
// and the produced events are a trace of the effect's LTS.
func TestEffectSoundness(t *testing.T) {
	phi := paperex.Phi1()
	table := paperex.Policies()
	prog := lambda.Seq{
		First: lambda.Enforce{Policy: phi.ID(), Body: lambda.Seq{
			First: lambda.Fire{Event: hexpr.E(paperex.EvSgn, hexpr.Sym("s3"))},
			Then: lambda.Seq{
				First: lambda.Fire{Event: hexpr.E(paperex.EvPrice, hexpr.Int(90))},
				Then:  lambda.Fire{Event: hexpr.E(paperex.EvRating, hexpr.Int(100))},
			},
		}},
		Then: lambda.Unit{},
	}
	_, eff := mustInfer(t, prog)
	okStatic, err := valid.Valid(eff, table)
	if err != nil {
		t.Fatal(err)
	}
	if !okStatic {
		t.Fatal("effect should be statically valid (s3 satisfies phi1)")
	}
	_, hist, err := lambda.Eval(prog, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Flat()) != 3 {
		t.Errorf("history = %s", hist)
	}
	// The run's history must be a trace of the effect's LTS.
	l, err := lts.Build(eff)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range l.Traces(len(hist)) {
		if traceMatches(tr, hist) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("run history %s is not a trace of the effect", hist)
	}
}

func traceMatches(tr lts.Trace, h interface{ String() string }) bool {
	// compare via history rendering of the labels
	items := historyOfTrace(tr)
	return items == h.String()
}

func historyOfTrace(tr lts.Trace) string {
	parts := make([]string, 0, len(tr))
	for _, l := range tr {
		switch l.Kind {
		case hexpr.LEvent:
			parts = append(parts, l.Event.String())
		case hexpr.LFrameOpen, hexpr.LOpen:
			if l.Policy != hexpr.NoPolicy {
				parts = append(parts, "[_"+string(l.Policy))
			}
		case hexpr.LFrameClose, hexpr.LClose:
			if l.Policy != hexpr.NoPolicy {
				parts = append(parts, "_]"+string(l.Policy))
			}
		default:
			return "\x00mismatch"
		}
	}
	return strings.Join(parts, " ")
}

func TestEvalBasics(t *testing.T) {
	v, hist, err := lambda.Eval(lambda.Seq{
		First: lambda.Fire{Event: hexpr.E("a")},
		Then:  lambda.IntLit{Value: 7},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := v.(lambda.IntLit); !ok || n.Value != 7 {
		t.Errorf("value = %s", v)
	}
	if hist.String() != "a" {
		t.Errorf("history = %s", hist)
	}
}

func TestEvalApplication(t *testing.T) {
	// (λx:int. fire a; x) 5
	term := lambda.App{
		Fn: lambda.Abs{Param: "x", ParamType: lambda.IntT{},
			Body: lambda.Seq{First: lambda.Fire{Event: hexpr.E("a")}, Then: lambda.Var{Name: "x"}}},
		Arg: lambda.IntLit{Value: 5},
	}
	v, hist, err := lambda.Eval(term, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := v.(lambda.IntLit); !ok || n.Value != 5 {
		t.Errorf("value = %s", v)
	}
	if hist.String() != "a" {
		t.Errorf("history = %s", hist)
	}
}

func TestEvalOutOfFuel(t *testing.T) {
	// rec f(x). f x diverges (ill-typed as an effect, but evaluable).
	f := lambda.RecFun{Name: "f", Param: "x", ParamType: lambda.UnitT{}, Result: lambda.UnitT{},
		Body: lambda.App{Fn: lambda.Var{Name: "f"}, Arg: lambda.Var{Name: "x"}}}
	_, _, err := lambda.Eval(lambda.App{Fn: f, Arg: lambda.Unit{}}, 50)
	if err == nil || !strings.Contains(err.Error(), "fuel") {
		t.Errorf("err = %v, want out-of-fuel", err)
	}
}

func TestEvalRejectsCommunication(t *testing.T) {
	_, _, err := lambda.Eval(lambda.Select{Branches: []lambda.CommBranch{
		{Channel: "a", Body: lambda.Unit{}},
	}}, 10)
	if err == nil || !strings.Contains(err.Error(), "session partner") {
		t.Errorf("err = %v", err)
	}
}

func TestTypeStringsAndEquality(t *testing.T) {
	f := lambda.FunT{Param: lambda.UnitT{}, Effect: hexpr.Act(hexpr.E("a")), Result: lambda.IntT{}}
	if f.String() == "" {
		t.Error("empty type string")
	}
	if !lambda.TypeEqual(f, f) {
		t.Error("type not equal to itself")
	}
	g := lambda.FunT{Param: lambda.UnitT{}, Effect: hexpr.Eps(), Result: lambda.IntT{}}
	if lambda.TypeEqual(f, g) {
		t.Error("different latent effects must distinguish types")
	}
	if lambda.TypeEqual(lambda.UnitT{}, lambda.IntT{}) || !lambda.TypeEqual(lambda.SymT{}, lambda.SymT{}) {
		t.Error("base type equality wrong")
	}
}
