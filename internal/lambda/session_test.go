package lambda_test

import (
	"math/rand"
	"testing"

	"susc/internal/compliance"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/lambda"
	"susc/internal/paperex"
	"susc/internal/parser"
)

func mustLam(t *testing.T, src string) lambda.Term {
	t.Helper()
	term, err := parser.ParseLambda(src)
	if err != nil {
		t.Fatal(err)
	}
	return term
}

func TestEvalSessionPingPong(t *testing.T) {
	client := mustLam(t, `select { ping => branch { pong => 7 } }`)
	server := mustLam(t, `branch { ping => select { pong => () } }`)
	res, err := lambda.EvalSession(client, server, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lambda.SessionCompleted {
		t.Fatalf("status = %s", res.Status)
	}
	if n, ok := res.ClientValue.(lambda.IntLit); !ok || n.Value != 7 {
		t.Errorf("client value = %v", res.ClientValue)
	}
	if len(res.Synchronised) != 2 || res.Synchronised[0] != "ping" || res.Synchronised[1] != "pong" {
		t.Errorf("synchronised = %v", res.Synchronised)
	}
}

func TestEvalSessionStuckOnMismatch(t *testing.T) {
	client := mustLam(t, `select { hello => () }`)
	server := mustLam(t, `branch { goodbye => () }`)
	res, err := lambda.EvalSession(client, server, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lambda.SessionStuck {
		t.Fatalf("status = %s, want stuck", res.Status)
	}
	// both sending is stuck too
	server2 := mustLam(t, `select { hello => () }`)
	res, err = lambda.EvalSession(client, server2, 100, nil)
	if err != nil || res.Status != lambda.SessionStuck {
		t.Fatalf("both-send: %v %v", res, err)
	}
	// client waiting on a terminated server is stuck
	res, err = lambda.EvalSession(mustLam(t, `branch { x => () }`), mustLam(t, `()`), 100, nil)
	if err != nil || res.Status != lambda.SessionStuck {
		t.Fatalf("server-gone: %v %v", res, err)
	}
}

func TestEvalSessionClientFinishesFirst(t *testing.T) {
	// the client terminates while the server still wants to talk: success
	client := mustLam(t, `42`)
	server := mustLam(t, `branch { x => () }`)
	res, err := lambda.EvalSession(client, server, 100, nil)
	if err != nil || res.Status != lambda.SessionCompleted {
		t.Fatalf("res = %v, err %v", res, err)
	}
}

func TestEvalSessionHistories(t *testing.T) {
	client := mustLam(t, `enforce phi { fire order(1); select { Buy => branch { Ok => () } } }`)
	server := mustLam(t, `branch { Buy => fire charge(80); select { Ok => () } }`)
	res, err := lambda.EvalSession(client, server, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lambda.SessionCompleted {
		t.Fatalf("status = %s", res.Status)
	}
	want := "[_phi order(1) charge(80) _]phi"
	if res.Hist.String() != want {
		t.Errorf("history = %q, want %q", res.Hist, want)
	}
}

func TestEvalSessionRecursivePump(t *testing.T) {
	client := mustLam(t, `
(rec pump(n: unit): unit .
  select { more => branch { item => pump () }
         | done => () }) ()`)
	server := mustLam(t, `
(rec serve(n: unit): unit .
  branch { more => select { item => serve () }
         | done => () }) ()`)
	// the client picks more/done randomly: all seeds must complete or run
	// out of fuel mid-progress, never get stuck
	for seed := int64(0); seed < 30; seed++ {
		res, err := lambda.EvalSession(client, server, 2000, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == lambda.SessionStuck {
			t.Fatalf("seed %d: recursive pump stuck", seed)
		}
	}
}

func TestEvalSessionOutOfFuel(t *testing.T) {
	client := mustLam(t, `(rec f(x: unit): unit . select { a => f () }) ()`)
	server := mustLam(t, `(rec g(x: unit): unit . branch { a => g () }) ()`)
	res, err := lambda.EvalSession(client, server, 50, nil)
	if err != nil || res.Status != lambda.SessionOutOfFuel {
		t.Fatalf("res = %v, err = %v", res, err)
	}
}

func TestEvalSessionRejectsNestedRequests(t *testing.T) {
	client := mustLam(t, `open r1 { select { a => () } }`)
	if _, err := lambda.EvalSession(client, mustLam(t, `()`), 100, nil); err == nil {
		t.Error("nested requests should be rejected")
	}
}

// TestEvalSessionComplianceSoundness: when the inferred effects are
// compliant, no scheduling of the session evaluation is ever stuck; and
// the session history is always a valid, balanced history when the static
// validity of the combined effects holds. This is the λ-level statement of
// the paper's guarantee.
func TestEvalSessionComplianceSoundness(t *testing.T) {
	srcPairs := []struct {
		client, server string
	}{
		{`select { Req => branch { CoBo => select { Pay => () } | NoAv => () } }`,
			`branch { Req => select { CoBo => branch { Pay => () } | NoAv => () } }`},
		{`(rec p(x: unit): unit . select { a => branch { ack => p () } | q => () }) ()`,
			`(rec s(x: unit): unit . branch { a => select { ack => s () } | q => () }) ()`},
		{`select { hi => () }`, `branch { hi => () | bye => () }`},
	}
	for i, pair := range srcPairs {
		client := mustLam(t, pair.client)
		server := mustLam(t, pair.server)
		_, ceff, err := lambda.InferClosed(client)
		if err != nil {
			t.Fatal(err)
		}
		_, seff, err := lambda.InferClosed(server)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := compliance.Compliant(ceff, seff)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("pair %d should be compliant", i)
		}
		for seed := int64(0); seed < 25; seed++ {
			res, err := lambda.EvalSession(client, server, 2000, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Status == lambda.SessionStuck {
				t.Fatalf("pair %d seed %d: compliant session stuck", i, seed)
			}
		}
	}
}

// TestEvalSessionHistoryMatchesMonitor: the session history obeys the
// run-time monitor when the programs respect their policies.
func TestEvalSessionHistoryMatchesMonitor(t *testing.T) {
	phi1 := paperex.Phi1()
	client := lambda.Enforce{Policy: phi1.ID(), Body: lambda.Select{Branches: []lambda.CommBranch{
		{Channel: "Go", Body: lambda.Unit{}},
	}}}
	server := lambda.Branch{Branches: []lambda.CommBranch{
		{Channel: "Go", Body: lambda.Fire{Event: hexpr.E(paperex.EvSgn, hexpr.Sym("s3"))}},
	}}
	res, err := lambda.EvalSession(client, server, 100, nil)
	if err != nil || res.Status != lambda.SessionCompleted {
		t.Fatalf("res = %v err %v", res, err)
	}
	m := history.NewMonitor(paperex.Policies())
	if err := m.AppendAll(res.Hist); err != nil {
		t.Errorf("session history rejected by the monitor: %v (history %s)", err, res.Hist)
	}
}
