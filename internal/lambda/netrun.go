package lambda

import (
	"fmt"
	"math/rand"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/network"
	"susc/internal/policy"
)

// ServiceRepo publishes λ-service programs at locations — the λ-level
// counterpart of the effect-level repository. Services replicate: each
// session opening evaluates a fresh copy of the program.
type ServiceRepo map[hexpr.Location]Term

// Effects extracts the history expression of every published service,
// giving the effect-level repository the static analyses operate on. A
// service that fails to type-check aborts the extraction.
func (r ServiceRepo) Effects() (network.Repository, error) {
	out := network.Repository{}
	for loc, term := range r {
		_, eff, err := InferClosed(term)
		if err != nil {
			return nil, fmt.Errorf("lambda: service at %s: %w", loc, err)
		}
		out[loc] = eff
	}
	return out, nil
}

// NetResult is the outcome of a λ-network run.
type NetResult struct {
	Status SessionStatus
	// ClientValue is the client program's result (Completed only).
	ClientValue Value
	// Hist is the component history: every party of every (nested) session
	// of the client logs into it, as in the paper's network semantics.
	Hist history.History
	// Synchronised lists the synchronised channels in order.
	Synchronised []string
	// Violation is the policy the monitor tripped on (SessionAborted only).
	Violation hexpr.PolicyID
}

// NetOptions configures RunNetwork.
type NetOptions struct {
	// Fuel bounds the total number of evaluation steps (default 100000).
	Fuel int
	// Rand drives the sender's choices; nil picks the first branch.
	Rand *rand.Rand
	// Monitored aborts the run at the first history item violating an
	// active policy (the run-time monitor the paper's analysis removes).
	Monitored bool
	// Table supplies the policies for the monitor (required when
	// Monitored).
	Table *policy.Table
}

// netNode is a run-time session tree of λ-parties, mirroring the network
// semantics: a leaf is a party's evaluation state; a pair is an open
// session, remembering how the initiator continues once it closes.
type netNode interface{ isNetNode() }

type netLeaf struct {
	loc hexpr.Location
	ev  *evaluator
	o   *outcome
}

type netPair struct {
	initiator netNode // the caller side, evaluating the request body
	svc       netNode
	policy    hexpr.PolicyID
	callerLoc hexpr.Location
	callerEv  *evaluator
	resume    func(Value) *outcome // the caller's continuation after close
}

func (*netLeaf) isNetNode() {}
func (*netPair) isNetNode() {}

// RunNetwork runs a λ-client against a repository of λ-services under a
// plan: service requests open nested sessions exactly as in Definition 2
// (rule Open spawns a fresh copy of the planned service; rule Close
// terminates the service side, logging the ⌋φ of its still-open framings
// via its frame stack — the Φ of the paper — and the session policy's ⌋φ).
//
// This is the executable end of the paper's programme at the program
// level: a plan validated on the *extracted effects* (verify.CheckPlan on
// ServiceRepo.Effects()) runs here with the monitor off and can neither
// violate a policy nor get stuck.
func RunNetwork(client Term, loc hexpr.Location, repo ServiceRepo,
	plan network.Plan, opts NetOptions) (*NetResult, error) {

	fuel := opts.Fuel
	if fuel == 0 {
		fuel = 100000
	}
	sess := &session{fuel: fuel}
	var mon *history.Monitor
	if opts.Monitored {
		if opts.Table == nil {
			return nil, fmt.Errorf("lambda: monitored run needs a policy table")
		}
		mon = history.NewMonitor(opts.Table)
	}
	ev := &evaluator{sess: sess}
	var root netNode = &netLeaf{loc: loc, ev: ev, o: ev.eval(client, valueK)}
	res := &NetResult{}
	consumed := 0 // history items already fed to the monitor

	feedMonitor := func() (hexpr.PolicyID, error) {
		if mon == nil {
			return hexpr.NoPolicy, nil
		}
		for consumed < len(sess.hist) {
			if err := mon.Append(sess.hist[consumed]); err != nil {
				if verr, ok := err.(*history.ViolationError); ok {
					return verr.Policy, nil
				}
				return hexpr.NoPolicy, err
			}
			consumed++
		}
		return hexpr.NoPolicy, nil
	}

	for {
		if bad, err := feedMonitor(); err != nil {
			return nil, err
		} else if bad != hexpr.NoPolicy {
			res.Status = SessionAborted
			res.Violation = bad
			res.Hist = sess.hist
			return res, nil
		}
		// terminal and error states
		if leaf, ok := root.(*netLeaf); ok {
			if leaf.o.err != nil {
				if isFuel(leaf.o.err) {
					res.Status = SessionOutOfFuel
					res.Hist = sess.hist
					return res, nil
				}
				return nil, leaf.o.err
			}
			if leaf.o.comm == nil && leaf.o.req == nil {
				res.Status = SessionCompleted
				res.ClientValue = leaf.o.val
				res.Hist = sess.hist
				return res, nil
			}
		}
		progressed, err := step(&root, sess, plan, repo, opts.Rand, res)
		if err != nil {
			if isFuel(err) {
				res.Status = SessionOutOfFuel
				res.Hist = sess.hist
				return res, nil
			}
			return nil, err
		}
		if !progressed {
			res.Status = SessionStuck
			res.Hist = sess.hist
			return res, nil
		}
	}
}

// step makes one unit of progress somewhere in the tree: an open, a close,
// or a synchronisation. It reports false when nothing can move.
func step(node *netNode, sess *session, plan network.Plan, repo ServiceRepo,
	rnd *rand.Rand, res *NetResult) (bool, error) {

	switch n := (*node).(type) {
	case *netLeaf:
		if n.o.err != nil {
			return false, n.o.err
		}
		if n.o.req != nil {
			// rule Open
			loc, ok := plan[n.o.req.req]
			if !ok {
				return false, nil // unplanned request: stuck
			}
			svcTerm, ok := repo[loc]
			if !ok {
				return false, nil // dangling location: stuck
			}
			if n.o.req.policy != hexpr.NoPolicy {
				sess.hist = append(sess.hist, history.OpenItem(n.o.req.policy))
			}
			bodyEv := &evaluator{sess: sess, frames: n.ev.frames}
			svcEv := &evaluator{sess: sess}
			req := n.o.req
			*node = &netPair{
				initiator: &netLeaf{loc: n.loc, ev: bodyEv, o: bodyEv.eval(req.body, valueK)},
				svc:       &netLeaf{loc: loc, ev: svcEv, o: svcEv.eval(svcTerm, valueK)},
				policy:    req.policy,
				callerLoc: n.loc,
				callerEv:  n.ev,
				resume:    req.resume,
			}
			return true, nil
		}
		return false, nil
	case *netPair:
		// rule Close: the initiator side finished its body; as in the paper
		// the rule needs both sides to be leaves, so a service with its own
		// open nested session must close it first.
		if leaf, ok := n.initiator.(*netLeaf); ok && leaf.o.err == nil &&
			leaf.o.comm == nil && leaf.o.req == nil {
			if svcLeaf, ok := n.svc.(*netLeaf); ok {
				// Φ: close the killed service side's dangling framings
				for i := len(svcLeaf.ev.frames) - 1; i >= 0; i-- {
					sess.hist = append(sess.hist, history.CloseItem(svcLeaf.ev.frames[i]))
				}
				if n.policy != hexpr.NoPolicy {
					sess.hist = append(sess.hist, history.CloseItem(n.policy))
				}
				*node = &netLeaf{loc: n.callerLoc, ev: n.callerEv, o: n.resume(leaf.o.val)}
				return true, nil
			}
		}
		// rule Session: progress inside either side
		if ok, err := step(&n.initiator, sess, plan, repo, rnd, res); err != nil || ok {
			return ok, err
		}
		if ok, err := step(&n.svc, sess, plan, repo, rnd, res); err != nil || ok {
			return ok, err
		}
		// rule Synch: both sides are leaves paused on complementary comms
		il, iok := n.initiator.(*netLeaf)
		sl, sok := n.svc.(*netLeaf)
		if !iok || !sok || il.o.comm == nil || sl.o.comm == nil {
			return false, nil
		}
		var sender, receiver *netLeaf
		switch {
		case il.o.comm.send && !sl.o.comm.send:
			sender, receiver = il, sl
		case !il.o.comm.send && sl.o.comm.send:
			sender, receiver = sl, il
		default:
			return false, nil
		}
		idx := 0
		if rnd != nil {
			idx = rnd.Intn(len(sender.o.comm.branches))
		}
		ch := sender.o.comm.branches[idx].Channel
		rBranch, ok := findBranch(receiver.o.comm.branches, ch)
		if !ok {
			return false, nil
		}
		res.Synchronised = append(res.Synchronised, ch)
		sb := sender.o.comm.branches[idx].Body
		sender.o = sender.o.comm.resume(sb)
		receiver.o = receiver.o.comm.resume(rBranch.Body)
		return true, nil
	}
	return false, fmt.Errorf("lambda: unknown network node %T", *node)
}
