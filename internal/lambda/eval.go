package lambda

import (
	"fmt"

	"susc/internal/hexpr"
	"susc/internal/history"
)

// EvalError reports an evaluation failure.
type EvalError struct {
	Term Term
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("lambda: eval: %s: in %s", e.Msg, e.Term)
}

// Value is an evaluation result: Unit, IntLit, SymLit, Abs or RecFun
// (closures are realised by substitution, so closed abstractions are
// values).
type Value = Term

// Eval runs a closed, communication-free term under call-by-value,
// recording the history (events and framing actions) it produces. Terms
// containing select/branch/open need a session partner and cannot be
// evaluated stand-alone; Eval reports them as errors. The fuel bounds the
// number of β-steps, so diverging recursions fail rather than hang.
//
// Eval is the ground truth for the effect-soundness tests: the recorded
// history of a terminating run is always a trace of the inferred effect.
func Eval(t Term, fuel int) (Value, history.History, error) {
	e := &simpleEvaluator{fuel: fuel}
	v, err := e.eval(t)
	if err != nil {
		return nil, nil, err
	}
	return v, e.hist, nil
}

type simpleEvaluator struct {
	fuel int
	hist history.History
}

func (e *simpleEvaluator) eval(t Term) (Value, error) {
	if e.fuel <= 0 {
		return nil, &EvalError{Term: t, Msg: "out of fuel"}
	}
	e.fuel--
	switch x := t.(type) {
	case Unit, IntLit, SymLit, Abs, RecFun:
		return t, nil
	case Var:
		return nil, &EvalError{Term: t, Msg: fmt.Sprintf("unbound variable %q", x.Name)}
	case Fire:
		e.hist = append(e.hist, history.EventItem(x.Event))
		return Unit{}, nil
	case Seq:
		if _, err := e.eval(x.First); err != nil {
			return nil, err
		}
		return e.eval(x.Then)
	case Let:
		v, err := e.eval(x.Bind)
		if err != nil {
			return nil, err
		}
		return e.eval(substTerm(x.Body, x.Name, v))
	case Enforce:
		if x.Policy != hexpr.NoPolicy {
			e.hist = append(e.hist, history.OpenItem(x.Policy))
		}
		v, err := e.eval(x.Body)
		if err != nil {
			return nil, err
		}
		if x.Policy != hexpr.NoPolicy {
			e.hist = append(e.hist, history.CloseItem(x.Policy))
		}
		return v, nil
	case App:
		fv, err := e.eval(x.Fn)
		if err != nil {
			return nil, err
		}
		av, err := e.eval(x.Arg)
		if err != nil {
			return nil, err
		}
		switch fn := fv.(type) {
		case Abs:
			return e.eval(substTerm(fn.Body, fn.Param, av))
		case RecFun:
			body := substTerm(fn.Body, fn.Param, av)
			body = substTerm(body, fn.Name, fn)
			return e.eval(body)
		default:
			return nil, &EvalError{Term: t, Msg: fmt.Sprintf("applying non-function %s", fv)}
		}
	case Select, Branch, Request:
		return nil, &EvalError{Term: t, Msg: "communication requires a session partner"}
	}
	return nil, &EvalError{Term: t, Msg: "unknown term"}
}

// substTerm substitutes a value for a variable, capture-avoidingly. Values
// substituted are closed, so no renaming is needed.
func substTerm(t Term, name string, v Value) Term {
	switch x := t.(type) {
	case Var:
		if x.Name == name {
			return v
		}
		return t
	case Unit, IntLit, SymLit, Fire:
		return t
	case Abs:
		if x.Param == name {
			return t
		}
		return Abs{Param: x.Param, ParamType: x.ParamType, Body: substTerm(x.Body, name, v)}
	case RecFun:
		if x.Name == name || x.Param == name {
			return t
		}
		return RecFun{Name: x.Name, Param: x.Param, ParamType: x.ParamType,
			Result: x.Result, Body: substTerm(x.Body, name, v)}
	case App:
		return App{Fn: substTerm(x.Fn, name, v), Arg: substTerm(x.Arg, name, v)}
	case Seq:
		return Seq{First: substTerm(x.First, name, v), Then: substTerm(x.Then, name, v)}
	case Let:
		bind := substTerm(x.Bind, name, v)
		if x.Name == name {
			return Let{Name: x.Name, Bind: bind, Body: x.Body}
		}
		return Let{Name: x.Name, Bind: bind, Body: substTerm(x.Body, name, v)}
	case Enforce:
		return Enforce{Policy: x.Policy, Body: substTerm(x.Body, name, v)}
	case Request:
		return Request{Req: x.Req, Policy: x.Policy, Body: substTerm(x.Body, name, v)}
	case Select:
		return Select{Branches: substBranches(x.Branches, name, v)}
	case Branch:
		return Branch{Branches: substBranches(x.Branches, name, v)}
	}
	return t
}

func substBranches(bs []CommBranch, name string, v Value) []CommBranch {
	out := make([]CommBranch, len(bs))
	for i, b := range bs {
		out[i] = CommBranch{Channel: b.Channel, Body: substTerm(b.Body, name, v)}
	}
	return out
}
