package lambda_test

import (
	"fmt"

	"susc/internal/hexpr"
	"susc/internal/lambda"
	"susc/internal/parser"
)

// The type-and-effect system extracts the history expression of a program:
// the behavioural abstraction every static analysis runs on.
func ExampleInferClosed() {
	prog := parser.MustParseLambda(`
open r1 with phi {
  select { Order => branch { Parcel => () | Reject => () } }
}`)
	ty, eff, _ := lambda.InferClosed(prog)
	fmt.Println(ty)
	fmt.Println(hexpr.Pretty(eff))
	// Output:
	// unit
	// open r1 with phi { Order!.(Parcel? + Reject?) }
}

// EvalSession runs two programs as the parties of one session.
func ExampleEvalSession() {
	client := parser.MustParseLambda(`select { ping => branch { pong => 42 } }`)
	server := parser.MustParseLambda(`branch { ping => select { pong => () } }`)
	res, _ := lambda.EvalSession(client, server, 1000, nil)
	fmt.Println(res.Status, res.ClientValue, res.Synchronised)
	// Output:
	// completed 42 [ping pong]
}
