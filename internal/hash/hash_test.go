package hash

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/policy"
)

func TestFramingPreventsConcatenationCollisions(t *testing.T) {
	a := New()
	a.Str("ab")
	a.Str("c")
	b := New()
	b.Str("a")
	b.Str("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("length-prefixed strings collided by concatenation")
	}
}

func TestExprStableAcrossRebuilds(t *testing.T) {
	mk := func() hexpr.Expr {
		return hexpr.Open("r1", hexpr.NoPolicy,
			hexpr.SendThen("m", hexpr.RecvThen("k", hexpr.Eps())))
	}
	if Expr(mk()) != Expr(mk()) {
		t.Fatal("identical expressions hash differently")
	}
	other := hexpr.Open("r2", hexpr.NoPolicy,
		hexpr.SendThen("m", hexpr.RecvThen("k", hexpr.Eps())))
	if Expr(mk()) == Expr(other) {
		t.Fatal("distinct expressions hash equal")
	}
}

func TestPairIsOrdered(t *testing.T) {
	c := hexpr.SendThen("m", hexpr.Eps())
	s := hexpr.RecvThen("m", hexpr.Eps())
	if Pair(c, s) == Pair(s, c) {
		t.Fatal("compliance is directional; the pair digest must be ordered")
	}
	if Pair(c, s) != Pair(c, s) {
		t.Fatal("pair digest not deterministic")
	}
}

func TestPolicySensitiveToStructure(t *testing.T) {
	mk := func(to string) *policy.Instance {
		a := &policy.Automaton{
			Name:   "p",
			States: []string{"q0", "qv"},
			Start:  "q0",
			Finals: []string{"qv"},
			Edges:  []policy.Edge{{From: "q0", To: to, EventName: "bad"}},
		}
		return a.MustInstantiate(policy.Binding{})
	}
	if Policy(mk("qv")) != Policy(mk("qv")) {
		t.Fatal("identical policies hash differently")
	}
	if Policy(mk("qv")) == Policy(mk("q0")) {
		t.Fatal("retargeting an edge must change the policy digest")
	}
}

func TestFileExtrasMatter(t *testing.T) {
	src := []byte("service s = eps;")
	if File(src, "analyzers=a,b") == File(src, "analyzers=a") {
		t.Fatal("analysis configuration must be part of the file key")
	}
	if File(src) != File(src) {
		t.Fatal("file digest not deterministic")
	}
}

func TestFingerprintTracksEngineVersion(t *testing.T) {
	// The fingerprint is what store headers embed; it must be a pure
	// function of EngineVersion.
	if Fingerprint() != Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	h := New()
	h.Str("engine")
	h.Str(EngineVersion + "-other")
	if Fingerprint() == h.Sum() {
		t.Fatal("fingerprint does not depend on the version string")
	}
}
