package hash_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"susc/internal/hash"
	"susc/internal/parser"
	"susc/internal/verify"
)

var update = flag.Bool("update", false, "rewrite the golden content-hash table")

// TestGoldenContentHashes pins the content hashes of every checked-in
// specification: file keys, per-service expression digests, per-policy
// digests and per-client plan-report keys. These hashes ARE the persistent
// store's addressing scheme — if any line changes without a deliberate
// serialisation change (and an EngineVersion bump when verdict semantics
// move), previously persisted verdicts would silently stop being found, or
// worse, stale ones found under a new meaning. Run with -update to accept
// an intentional change.
func TestGoldenContentHashes(t *testing.T) {
	specs := []string{
		"../../testdata/hotel.susc",
		"../../examples/specs/booking.susc",
		"../../examples/specs/quickstart.susc",
	}
	var b strings.Builder
	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		name := filepath.Base(path)
		fmt.Fprintf(&b, "%s file %s\n", name, hash.File(src))
		for _, decl := range f.InstanceOrder {
			in, err := f.Table.Get(decl.ID)
			if err != nil {
				t.Fatalf("%s: instance %s: %v", path, decl.Alias, err)
			}
			fmt.Fprintf(&b, "%s policy %s %s\n", name, decl.Alias, hash.Policy(in))
		}
		for _, loc := range f.ServiceOrder {
			fmt.Fprintf(&b, "%s service %s %s\n", name, loc, hash.Expr(f.Repo[loc]))
		}
		for _, c := range f.Clients {
			fmt.Fprintf(&b, "%s client %s expr %s\n", name, c.Name, hash.Expr(c.Expr))
			sum, err := verify.PlanKey(f.Repo, f.Table, c.Loc, c.Expr, c.Plan, nil)
			if err != nil {
				t.Fatalf("%s: client %s: %v", path, c.Name, err)
			}
			fmt.Fprintf(&b, "%s client %s plankey %s\n", name, c.Name, sum)
		}
	}
	got := b.String()

	golden := filepath.Join("testdata", "specs.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/hash -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("content hashes diverged from %s:\n--- got ---\n%s--- want ---\n%s"+
			"(an intentional serialisation change needs -update AND an EngineVersion bump "+
			"when verdict semantics moved)", golden, got, want)
	}
}
