// Package hash computes stable, content-addressed identities for the
// declarations the verifier operates on: history expressions, policy
// instances, plans and whole source files. A Sum is a SHA-256 digest of a
// canonical, length-prefixed serialisation, so it is byte-identical across
// runs, platforms and process restarts — the property the persistent
// verdict store (internal/store) needs to reuse verdicts between `susc`
// invocations.
//
// The canonical forms are the ones the in-memory layers already maintain:
// hexpr.Expr.Key() is canonical up to structural congruence (PR 1 interns
// on it), policy.Instance.ID() is canonical in the binding, and the
// automaton template serialises field by field. Every variable-length part
// is length-prefixed, so distinct field sequences can never collide by
// concatenation.
//
// Two digests deliberately do NOT depend on the engine that computes the
// verdict: engine identity is carried once, in the store header, through
// Fingerprint — bumping EngineVersion invalidates a store wholesale
// instead of silently mixing verdicts from incompatible engines.
package hash

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"susc/internal/hexpr"
	"susc/internal/policy"
)

// Size is the byte length of a Sum.
const Size = sha256.Size

// Sum is a content hash: the identity of a declaration (plus, for
// verification artifacts, its dependency cone) in the persistent store.
type Sum [Size]byte

// String renders the sum as lower-case hex.
func (s Sum) String() string { return hex.EncodeToString(s[:]) }

// EngineVersion names the semantics of the verdict-producing engines.
// Bump it whenever a change could alter any persisted verdict, witness or
// report rendering — the store invalidates wholesale on a mismatch, which
// is always sound and never silently stale.
const EngineVersion = "susc-engine-pr7-v1"

// Fingerprint is the engine fingerprint embedded in store headers.
func Fingerprint() Sum {
	h := New()
	h.Str("engine")
	h.Str(EngineVersion)
	return h.Sum()
}

// Hasher accumulates a canonical serialisation. All writes are framed
// (length- or tag-prefixed), so the digest of a field sequence is
// unambiguous.
type Hasher struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
}

// New returns an empty Hasher.
func New() *Hasher { return &Hasher{h: sha256.New()} }

// Str writes a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.Int(len(s))
	h.h.Write([]byte(s))
}

// Bytes writes a length-prefixed byte slice.
func (h *Hasher) Bytes(b []byte) {
	h.Int(len(b))
	h.h.Write(b)
}

// Int writes an integer as a varint (stable across word sizes).
func (h *Hasher) Int(n int) {
	k := binary.PutVarint(h.buf[:], int64(n))
	h.h.Write(h.buf[:k])
}

// Sum finalises the digest. The Hasher must not be written to afterwards.
func (h *Hasher) Sum() Sum {
	var s Sum
	h.h.Sum(s[:0])
	return s
}

// Expr is the content hash of a history expression: a digest of its
// canonical Key form.
func Expr(e hexpr.Expr) Sum {
	h := New()
	h.Str("expr")
	h.Str(e.Key())
	return h.Sum()
}

// Pair is the content hash of an ordered expression pair — the key of a
// compliance verdict H_client ⊢ H_server. Compliance depends only on the
// two canonical forms (the communication projections derive from them), so
// the pair digest is the whole dependency cone of the verdict.
func Pair(client, server hexpr.Expr) Sum {
	h := New()
	h.Str("compliance")
	h.Str(client.Key())
	h.Str(server.Key())
	return h.Sum()
}

// Policy is the content hash of an instantiated usage automaton: the full
// template structure (states, start, finals, edges with their guards)
// plus the canonical instance identifier, which carries the binding. Two
// instances hash equal iff they accept the same traces for structural
// reasons — renaming a state or retargeting an edge changes the digest.
func Policy(in *policy.Instance) Sum {
	h := New()
	h.Str("policy")
	WritePolicy(h, in)
	return h.Sum()
}

// WritePolicy serialises the instance into an ongoing digest; callers
// hashing composite artifacts (dependency cones) embed policies with it.
func WritePolicy(h *Hasher, in *policy.Instance) {
	h.Str(string(in.ID()))
	a := in.Template()
	h.Str(a.Name)
	h.Int(len(a.Params))
	for _, p := range a.Params {
		h.Str(p.Name)
		h.Int(int(p.Kind))
	}
	h.Int(len(a.States))
	for _, s := range a.States {
		h.Str(s)
	}
	h.Str(a.Start)
	h.Int(len(a.Finals))
	for _, f := range a.Finals {
		h.Str(f)
	}
	h.Int(len(a.Edges))
	for _, e := range a.Edges {
		h.Str(e.From)
		h.Str(e.To)
		h.Str(e.EventName)
		h.Int(len(e.Guards))
		for _, g := range e.Guards {
			h.Str(g.String())
		}
	}
}

// File is the content hash of a whole source file together with the
// analysis configuration named by the extras (analyzer set, severity
// floor, …): the key of a persisted lint run.
func File(src []byte, extras ...string) Sum {
	h := New()
	h.Str("file")
	h.Bytes(src)
	h.Int(len(extras))
	for _, x := range extras {
		h.Str(x)
	}
	return h.Sum()
}
