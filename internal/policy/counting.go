package policy

import "fmt"

// Counting builds a quantitative policy in the spirit of the paper's §5
// outlook (quantitative security policies): the instance recognises as
// violations the traces in which the event occurs more than max times.
// The event is matched by name and arity, with unconstrained arguments.
// Counting policies are ordinary usage automata (max+2 states), so every
// analysis of the toolkit applies to them unchanged.
func Counting(name, eventName string, arity, max int) (*Automaton, error) {
	if max < 0 {
		return nil, fmt.Errorf("policy: negative bound %d", max)
	}
	if max+2 > MaxStates {
		return nil, fmt.Errorf("policy: bound %d needs %d states, exceeding the maximum %d",
			max, max+2, MaxStates)
	}
	a := &Automaton{Name: name, Start: "c0", Finals: []string{"over"}}
	guards := make([]Guard, arity)
	for i := range guards {
		guards[i] = GAny()
	}
	for i := 0; i <= max; i++ {
		a.States = append(a.States, fmt.Sprintf("c%d", i))
	}
	a.States = append(a.States, "over")
	for i := 0; i < max; i++ {
		a.Edges = append(a.Edges, Edge{
			From: fmt.Sprintf("c%d", i), To: fmt.Sprintf("c%d", i+1),
			EventName: eventName, Guards: guards,
		})
	}
	a.Edges = append(a.Edges, Edge{
		From: fmt.Sprintf("c%d", max), To: "over",
		EventName: eventName, Guards: guards,
	})
	return a, nil
}

// MustCounting is Counting panicking on error.
func MustCounting(name, eventName string, arity, max int) *Automaton {
	a, err := Counting(name, eventName, arity, max)
	if err != nil {
		panic(err)
	}
	return a
}
