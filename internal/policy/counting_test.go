package policy_test

import (
	"strings"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/policy"
)

func fires(n int) []hexpr.Event {
	out := make([]hexpr.Event, n)
	for i := range out {
		out[i] = hexpr.E("download", hexpr.Int(i))
	}
	return out
}

func TestCountingPolicy(t *testing.T) {
	a, err := policy.Counting("atMost3", "download", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	in, err := a.Instantiate(policy.Binding{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= 3; n++ {
		if in.Recognizes(fires(n)) {
			t.Errorf("%d downloads should respect the bound 3", n)
		}
	}
	for n := 4; n <= 6; n++ {
		if !in.Recognizes(fires(n)) {
			t.Errorf("%d downloads should violate the bound 3", n)
		}
	}
	// the violating prefix is exactly the (max+1)-th occurrence
	if at := in.ViolatingPrefix(fires(6)); at != 4 {
		t.Errorf("violating prefix = %d, want 4", at)
	}
	// other events do not count
	mixed := []hexpr.Event{
		hexpr.E("download", hexpr.Int(1)),
		hexpr.E("upload", hexpr.Int(1)),
		hexpr.E("download", hexpr.Int(2)),
	}
	if in.Recognizes(mixed) {
		t.Error("2 downloads among uploads should respect the bound 3")
	}
	// arity mismatches do not count
	if in.Recognizes([]hexpr.Event{
		hexpr.E("download"), hexpr.E("download"), hexpr.E("download"), hexpr.E("download"),
	}) {
		t.Error("0-ary download events should not match the 1-ary counter")
	}
}

func TestCountingZeroForbidsAnyOccurrence(t *testing.T) {
	a := policy.MustCounting("never", "rm", 0, 0)
	in := a.MustInstantiate(policy.Binding{})
	if in.Recognizes(nil) {
		t.Error("empty trace respects the zero bound")
	}
	if !in.Recognizes([]hexpr.Event{hexpr.E("rm")}) {
		t.Error("one rm violates the zero bound")
	}
}

func TestCountingErrors(t *testing.T) {
	if _, err := policy.Counting("x", "e", 0, -1); err == nil {
		t.Error("negative bound must fail")
	}
	if _, err := policy.Counting("x", "e", 0, policy.MaxStates); err == nil ||
		!strings.Contains(err.Error(), "exceed") {
		t.Errorf("oversized bound: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCounting should panic on bad input")
		}
	}()
	policy.MustCounting("x", "e", 0, -1)
}
