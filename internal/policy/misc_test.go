package policy_test

import (
	"strings"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/paperex"
	"susc/internal/policy"
)

func TestAutomatonDOT(t *testing.T) {
	dot := paperex.BookingPolicy().DOT()
	for _, want := range []string{
		`digraph "phi"`, `"q6" [shape=doublecircle, color=red]`,
		"sgn(1) when x0 not in bl", "rating(1) when x0 < t",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("automaton dot missing %q:\n%s", want, dot)
		}
	}
}

func TestInstanceDOT(t *testing.T) {
	dot := paperex.Phi1().DOT()
	if !strings.Contains(dot, `label="phi[bl={s1},p=45,t=100]"`) {
		t.Errorf("instance dot missing binding label:\n%s", dot)
	}
}

func TestGuardStrings(t *testing.T) {
	cases := []struct {
		g    policy.Guard
		want string
	}{
		{policy.GAny(), "*"},
		{policy.G(policy.InSet, "bl"), "in bl"},
		{policy.G(policy.NotInSet, "bl"), "not in bl"},
		{policy.G(policy.LE, "p"), "<= p"},
		{policy.G(policy.LT, "p"), "< p"},
		{policy.G(policy.GE, "p"), ">= p"},
		{policy.G(policy.GT, "p"), "> p"},
		{policy.GEq(hexpr.Int(7)), "== 7"},
		{policy.GNe(hexpr.Sym("x")), "!= x"},
	}
	for _, c := range cases {
		if got := c.g.String(); got != c.want {
			t.Errorf("guard string = %q, want %q", got, c.want)
		}
	}
}

func TestInstanceLowLevelAccessors(t *testing.T) {
	in := paperex.Phi1()
	if in.Name() != "phi" {
		t.Errorf("Name = %q", in.Name())
	}
	if in.NumStates() != 6 {
		t.Errorf("NumStates = %d", in.NumStates())
	}
	start := in.StartState()
	if in.IsFinalState(start) {
		t.Error("start must not be final")
	}
	// q1 --sgn(s1)--> q6 (blacklist)
	next := in.Next(start, hexpr.E(paperex.EvSgn, hexpr.Sym("s1")))
	if len(next) != 1 || !in.IsFinalState(next[0]) {
		t.Errorf("Next on blacklisted sgn = %v", next)
	}
	// implicit self-loop on unmatched events
	stay := in.Next(start, hexpr.E("unrelated"))
	if len(stay) != 1 || stay[0] != start {
		t.Errorf("Next on unrelated = %v", stay)
	}
}

func TestEdgeString(t *testing.T) {
	e := policy.Edge{From: "q1", To: "q6", EventName: "sgn",
		Guards: []policy.Guard{policy.G(policy.InSet, "bl")}}
	if s := e.String(); !strings.Contains(s, "q1") || !strings.Contains(s, "sgn") {
		t.Errorf("edge string = %q", s)
	}
}

func TestTableAdd(t *testing.T) {
	tab := policy.NewTable()
	tab.Add(paperex.Phi1())
	if _, err := tab.Get(paperex.Phi1().ID()); err != nil {
		t.Errorf("Get after Add: %v", err)
	}
}
