// Package policy implements usage automata [Bartoletti 2009], the
// parametric finite-state automata the paper uses to express security
// policies φ. A usage automaton recognises the *forbidden* traces of
// access events (the "default-allow" paradigm): a history violates the
// policy exactly when the automaton accepts it.
//
// A usage automaton has formal parameters (a blacklist, thresholds, ...);
// instantiating it with actual values yields an Instance, a finite-state
// recogniser over concrete events. Non-matching events leave the state
// unchanged (implicit self-loops), and overlapping guards may make the
// automaton nondeterministic, so instances step over *sets* of states.
package policy

import (
	"fmt"
	"strings"

	"susc/internal/hexpr"
)

// GuardKind enumerates the predicates a guard can apply to one event
// argument, possibly referring to a formal parameter of the automaton.
type GuardKind int

const (
	// Any matches every argument.
	Any GuardKind = iota
	// InSet holds when the argument belongs to the set parameter Param.
	InSet
	// NotInSet holds when the argument does not belong to the set
	// parameter Param.
	NotInSet
	// LE holds when the integer argument is ≤ the scalar parameter Param.
	LE
	// LT holds when the integer argument is < the scalar parameter Param.
	LT
	// GE holds when the integer argument is ≥ the scalar parameter Param.
	GE
	// GT holds when the integer argument is > the scalar parameter Param.
	GT
	// EqConst holds when the argument equals the constant Const.
	EqConst
	// NeConst holds when the argument differs from the constant Const.
	NeConst
)

// Guard is a predicate on a single event argument.
type Guard struct {
	Kind  GuardKind
	Param string      // parameter name, for the parameter-relative kinds
	Const hexpr.Value // constant, for EqConst/NeConst
}

// G is a convenience guard constructor for parameter-relative guards.
func G(kind GuardKind, param string) Guard { return Guard{Kind: kind, Param: param} }

// GAny matches anything.
func GAny() Guard { return Guard{Kind: Any} }

// GEq matches the given constant.
func GEq(v hexpr.Value) Guard { return Guard{Kind: EqConst, Const: v} }

// GNe matches anything but the given constant.
func GNe(v hexpr.Value) Guard { return Guard{Kind: NeConst, Const: v} }

func (g Guard) String() string {
	switch g.Kind {
	case Any:
		return "*"
	case InSet:
		return "in " + g.Param
	case NotInSet:
		return "not in " + g.Param
	case LE:
		return "<= " + g.Param
	case LT:
		return "< " + g.Param
	case GE:
		return ">= " + g.Param
	case GT:
		return "> " + g.Param
	case EqConst:
		return "== " + g.Const.String()
	case NeConst:
		return "!= " + g.Const.String()
	}
	return "?"
}

// Binding supplies actual values for the formal parameters of a usage
// automaton: value sets for set parameters and integers for scalar ones.
type Binding struct {
	Sets map[string][]hexpr.Value
	Ints map[string]int
}

// eval evaluates the guard against an argument under a binding.
func (g Guard) eval(arg hexpr.Value, b Binding) (bool, error) {
	switch g.Kind {
	case Any:
		return true, nil
	case InSet, NotInSet:
		set, ok := b.Sets[g.Param]
		if !ok {
			return false, fmt.Errorf("policy: unbound set parameter %q", g.Param)
		}
		found := false
		for _, v := range set {
			if v.Equal(arg) {
				found = true
				break
			}
		}
		if g.Kind == InSet {
			return found, nil
		}
		return !found, nil
	case LE, LT, GE, GT:
		n, ok := b.Ints[g.Param]
		if !ok {
			return false, fmt.Errorf("policy: unbound scalar parameter %q", g.Param)
		}
		if !arg.IsInt() {
			return false, nil // a non-integer never satisfies an arithmetic guard
		}
		switch g.Kind {
		case LE:
			return arg.IntVal() <= n, nil
		case LT:
			return arg.IntVal() < n, nil
		case GE:
			return arg.IntVal() >= n, nil
		default:
			return arg.IntVal() > n, nil
		}
	case EqConst:
		return arg.Equal(g.Const), nil
	case NeConst:
		return !arg.Equal(g.Const), nil
	}
	return false, fmt.Errorf("policy: unknown guard kind %d", g.Kind)
}

// idFragment renders the binding canonically, for instance identifiers.
func (b Binding) idFragment(params []Param) string {
	parts := make([]string, 0, len(params))
	for _, p := range params {
		switch p.Kind {
		case SetParam:
			vals := b.Sets[p.Name]
			strs := make([]string, len(vals))
			for i, v := range vals {
				strs[i] = v.String()
			}
			parts = append(parts, p.Name+"={"+strings.Join(strs, " ")+"}")
		case IntParam:
			parts = append(parts, fmt.Sprintf("%s=%d", p.Name, b.Ints[p.Name]))
		}
	}
	return strings.Join(parts, ",")
}
