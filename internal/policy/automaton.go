package policy

import (
	"fmt"

	"susc/internal/hexpr"
)

// ParamKind discriminates formal parameters of a usage automaton.
type ParamKind int

const (
	// SetParam is a finite set of values (e.g. a blacklist).
	SetParam ParamKind = iota
	// IntParam is an integer scalar (e.g. a price threshold).
	IntParam
)

// Param is a formal parameter declaration.
type Param struct {
	Name string
	Kind ParamKind
}

// Edge is a transition pattern of a usage automaton: it fires on events
// named EventName whose arguments satisfy the guards (one guard per
// argument; the arities must match).
type Edge struct {
	From, To  string
	EventName string
	Guards    []Guard
}

func (e Edge) String() string {
	gs := make([]string, len(e.Guards))
	for i, g := range e.Guards {
		gs[i] = g.String()
	}
	return fmt.Sprintf("%s --%s(%v)--> %s", e.From, e.EventName, gs, e.To)
}

// Automaton is a parametric usage automaton: a policy template. Final
// states are the *violation* states — the language of an instance is the
// set of forbidden traces (default allow).
type Automaton struct {
	Name   string
	Params []Param
	States []string
	Start  string
	Finals []string
	Edges  []Edge
}

// MaxStates bounds the size of a usage automaton: instances track state
// sets as 64-bit masks.
const MaxStates = 64

// Validate checks internal consistency of the automaton definition.
func (a *Automaton) Validate() error {
	if len(a.States) == 0 {
		return fmt.Errorf("policy %s: no states", a.Name)
	}
	if len(a.States) > MaxStates {
		return fmt.Errorf("policy %s: %d states exceed the maximum %d", a.Name, len(a.States), MaxStates)
	}
	idx := map[string]bool{}
	for _, s := range a.States {
		if idx[s] {
			return fmt.Errorf("policy %s: duplicate state %q", a.Name, s)
		}
		idx[s] = true
	}
	if !idx[a.Start] {
		return fmt.Errorf("policy %s: unknown start state %q", a.Name, a.Start)
	}
	for _, f := range a.Finals {
		if !idx[f] {
			return fmt.Errorf("policy %s: unknown final state %q", a.Name, f)
		}
	}
	params := map[string]ParamKind{}
	for _, p := range a.Params {
		if _, ok := params[p.Name]; ok {
			return fmt.Errorf("policy %s: duplicate parameter %q", a.Name, p.Name)
		}
		params[p.Name] = p.Kind
	}
	for _, e := range a.Edges {
		if !idx[e.From] {
			return fmt.Errorf("policy %s: edge from unknown state %q", a.Name, e.From)
		}
		if !idx[e.To] {
			return fmt.Errorf("policy %s: edge to unknown state %q", a.Name, e.To)
		}
		if e.EventName == "" {
			return fmt.Errorf("policy %s: edge with empty event name", a.Name)
		}
		for _, g := range e.Guards {
			switch g.Kind {
			case InSet, NotInSet:
				if k, ok := params[g.Param]; !ok || k != SetParam {
					return fmt.Errorf("policy %s: guard %s needs a set parameter", a.Name, g)
				}
			case LE, LT, GE, GT:
				if k, ok := params[g.Param]; !ok || k != IntParam {
					return fmt.Errorf("policy %s: guard %s needs a scalar parameter", a.Name, g)
				}
			}
		}
	}
	return nil
}

// Instantiate binds the formal parameters and returns a concrete policy
// instance. The binding must supply every declared parameter.
func (a *Automaton) Instantiate(b Binding) (*Instance, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	for _, p := range a.Params {
		switch p.Kind {
		case SetParam:
			if _, ok := b.Sets[p.Name]; !ok {
				return nil, fmt.Errorf("policy %s: missing set parameter %q", a.Name, p.Name)
			}
		case IntParam:
			if _, ok := b.Ints[p.Name]; !ok {
				return nil, fmt.Errorf("policy %s: missing scalar parameter %q", a.Name, p.Name)
			}
		}
	}
	stateIdx := map[string]int{}
	for i, s := range a.States {
		stateIdx[s] = i
	}
	in := &Instance{
		id:      hexpr.PolicyID(a.Name + "[" + b.idFragment(a.Params) + "]"),
		a:       a,
		binding: b,
		start:   stateIdx[a.Start],
	}
	for _, f := range a.Finals {
		in.finals |= 1 << uint(stateIdx[f])
	}
	for _, e := range a.Edges {
		in.edges = append(in.edges, instEdge{
			from:  stateIdx[e.From],
			to:    stateIdx[e.To],
			event: e.EventName,
			arity: len(e.Guards),
			match: func(guards []Guard) func([]hexpr.Value) (bool, error) {
				return func(args []hexpr.Value) (bool, error) {
					for i, g := range guards {
						ok, err := g.eval(args[i], b)
						if err != nil || !ok {
							return false, err
						}
					}
					return true, nil
				}
			}(e.Guards),
		})
	}
	return in, nil
}

// MustInstantiate is Instantiate that panics on error; convenient for
// statically known bindings in examples and tests.
func (a *Automaton) MustInstantiate(b Binding) *Instance {
	in, err := a.Instantiate(b)
	if err != nil {
		panic(err)
	}
	return in
}
