package policy_test

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/policy"
)

func ev0(names ...string) []hexpr.Event {
	out := make([]hexpr.Event, len(names))
	for i, n := range names {
		out[i] = hexpr.E(n)
	}
	return out
}

func TestNever(t *testing.T) {
	in := policy.MustInstance(policy.Never("noRm", "rm", 0))
	if in.Recognizes(ev0("ls", "cat")) {
		t.Error("unrelated events must pass")
	}
	if !in.Recognizes(ev0("ls", "rm")) {
		t.Error("rm must violate")
	}
}

func TestNeverAfter(t *testing.T) {
	in := policy.MustInstance(policy.NeverAfter("nwar", "read", 0, "write", 0))
	cases := []struct {
		trace   []string
		violate bool
	}{
		{[]string{"write"}, false},
		{[]string{"write", "read"}, false},
		{[]string{"read", "write"}, true},
		{[]string{"write", "read", "write"}, true},
		{[]string{"read", "read"}, false},
	}
	for _, c := range cases {
		if got := in.Recognizes(ev0(c.trace...)); got != c.violate {
			t.Errorf("trace %v: violate = %v, want %v", c.trace, got, c.violate)
		}
	}
}

func TestMutualExclusion(t *testing.T) {
	in := policy.MustInstance(policy.MutualExclusion("mx", "euApi", 0, "usApi", 0))
	cases := []struct {
		trace   []string
		violate bool
	}{
		{[]string{"euApi", "euApi"}, false},
		{[]string{"usApi"}, false},
		{[]string{"euApi", "usApi"}, true},
		{[]string{"usApi", "other", "euApi"}, true},
	}
	for _, c := range cases {
		if got := in.Recognizes(ev0(c.trace...)); got != c.violate {
			t.Errorf("trace %v: violate = %v, want %v", c.trace, got, c.violate)
		}
	}
}

func TestRequireBefore(t *testing.T) {
	in := policy.MustInstance(policy.RequireBefore("payFirst", "paid", 0, "ship", 0))
	if !in.Recognizes(ev0("ship")) {
		t.Error("ship before paid must violate")
	}
	if in.Recognizes(ev0("paid", "ship", "ship")) {
		t.Error("ship after paid must pass")
	}
}

func TestStdlibTemplatesValidate(t *testing.T) {
	for _, a := range []*policy.Automaton{
		policy.Never("a", "e", 2),
		policy.NeverAfter("b", "x", 1, "y", 0),
		policy.MutualExclusion("c", "x", 0, "y", 3),
		policy.RequireBefore("d", "x", 0, "y", 1),
	} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestMustInstancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInstance should panic on a parameterised template")
		}
	}()
	policy.MustInstance(&policy.Automaton{
		Name:   "broken",
		Params: []policy.Param{{Name: "p", Kind: policy.IntParam}},
		States: []string{"q"},
		Start:  "q",
	})
}
