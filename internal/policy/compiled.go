package policy

import (
	"math/bits"
	"sort"

	"susc/internal/hexpr"
)

// Compiled stepping. An instantiated usage automaton is interpreted
// guard-by-guard in Next; the hot paths (Monitor.Append, valid.Check, the
// fused engine) instead step through per-event rows compiled on first use:
// row[i] is the full successor set of state i on a concrete event,
// including the implicit self-loop, so stepping a state set is a bit-scan
// and a few OR instructions with no closure calls.

// stepRow is the compiled transition of an instance on one concrete
// event: stepRow[i] is the successor set of state i.
type stepRow []StateSet

// rowEntry pairs the concrete arguments with their compiled row; rows are
// bucketed by event name and the few argument vectors per name are found
// by linear structural comparison (hexpr.Value is a comparable struct).
type rowEntry struct {
	args []hexpr.Value
	row  stepRow
}

// row returns the compiled transition row for the event, building and
// caching it on first use. Safe for concurrent use.
func (in *Instance) row(ev hexpr.Event) stepRow {
	in.rowMu.RLock()
	for _, e := range in.rows[ev.Name] {
		if valuesEqual(e.args, ev.Args) {
			in.rowMu.RUnlock()
			return e.row
		}
	}
	in.rowMu.RUnlock()
	n := len(in.a.States)
	row := make(stepRow, n)
	for i := 0; i < n; i++ {
		var next StateSet
		moved := false
		for _, e := range in.edges {
			if e.from != i || e.event != ev.Name || e.arity != len(ev.Args) {
				continue
			}
			ok, err := e.match(ev.Args)
			if err != nil {
				// Unbound parameters are rejected at instantiation; stay put
				// rather than panic (mirrors the interpreted path).
				continue
			}
			if ok {
				next |= 1 << uint(e.to)
				moved = true
			}
		}
		if !moved {
			next = 1 << uint(i)
		}
		row[i] = next
	}
	in.rowMu.Lock()
	defer in.rowMu.Unlock()
	for _, e := range in.rows[ev.Name] {
		if valuesEqual(e.args, ev.Args) {
			return e.row
		}
	}
	if in.rows == nil {
		in.rows = map[string][]rowEntry{}
	}
	in.rows[ev.Name] = append(in.rows[ev.Name],
		rowEntry{args: append([]hexpr.Value(nil), ev.Args...), row: row})
	return row
}

func valuesEqual(a, b []hexpr.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// stepCompiled advances a state set through the compiled row.
func stepCompiled(row stepRow, s StateSet) StateSet {
	var next StateSet
	for rem := uint64(s); rem != 0; rem &= rem - 1 {
		next |= row[bits.TrailingZeros64(rem)]
	}
	return next
}

// CompiledTable is the dense, spec-load-time view of a Table: policy
// identifiers sorted once, instances indexed densely, and a watched-event
// index mapping event names to the bitmask of instances with an edge on
// that name. Monitors run on these arrays instead of per-call maps, and
// inertness (Monitor.InertFor) becomes a bitset membership test: an event
// whose name no automaton watches provably self-loops every state.
type CompiledTable struct {
	ids       []hexpr.PolicyID
	instances []*Instance
	index     map[hexpr.PolicyID]int32
	watched   map[string]uint64
	over      bool // more than 64 instances: masks saturate (conservative)
}

// Compiled returns the dense view of the table, built on first use and
// invalidated by Add. Safe for concurrent use.
func (t *Table) Compiled() *CompiledTable {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.compiled != nil {
		return t.compiled
	}
	ct := &CompiledTable{
		index:   make(map[hexpr.PolicyID]int32, len(t.m)),
		watched: map[string]uint64{},
	}
	for id := range t.m {
		ct.ids = append(ct.ids, id)
	}
	sort.Slice(ct.ids, func(i, j int) bool { return ct.ids[i] < ct.ids[j] })
	ct.over = len(ct.ids) > 64
	for i, id := range ct.ids {
		in := t.m[id]
		ct.instances = append(ct.instances, in)
		ct.index[id] = int32(i)
		bit := uint64(0)
		if !ct.over {
			bit = 1 << uint(i)
		}
		for _, e := range in.edges {
			if ct.over {
				ct.watched[e.event] = ^uint64(0)
			} else {
				ct.watched[e.event] |= bit
			}
		}
	}
	t.compiled = ct
	return ct
}

// Len returns the number of instances.
func (ct *CompiledTable) Len() int { return len(ct.instances) }

// IDs returns the sorted policy identifiers (shared; do not mutate).
func (ct *CompiledTable) IDs() []hexpr.PolicyID { return ct.ids }

// At returns the instance at dense index i.
func (ct *CompiledTable) At(i int) *Instance { return ct.instances[i] }

// Index returns the dense index of id, or -1 when unknown.
func (ct *CompiledTable) Index(id hexpr.PolicyID) int32 {
	if i, ok := ct.index[id]; ok {
		return i
	}
	return -1
}

// WatchedMask returns the bitmask of instances with an edge on the event
// name; zero means no automaton can move on any event of that name, at
// any arity. With more than 64 instances the mask saturates to all-ones
// for watched names, staying conservative.
func (ct *CompiledTable) WatchedMask(name string) uint64 {
	if len(ct.watched) == 0 {
		return 0
	}
	return ct.watched[name]
}
