package policy_test

import (
	"strings"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/paperex"
	"susc/internal/policy"
)

// hotelTrace is the event trace αsgn(id)·αp(price)·αta(rating).
func hotelTrace(id string, price, rating int) []hexpr.Event {
	return []hexpr.Event{
		hexpr.E(paperex.EvSgn, hexpr.Sym(id)),
		hexpr.E(paperex.EvPrice, hexpr.Int(price)),
		hexpr.E(paperex.EvRating, hexpr.Int(rating)),
	}
}

// TestFig1Phi1 reproduces the §2 claims for φ₁ = φ({s1},45,100): S1 and S4
// violate it, S2 and S3 do not.
func TestFig1Phi1(t *testing.T) {
	phi1 := paperex.Phi1()
	cases := []struct {
		hotel   string
		price   int
		rating  int
		violate bool
	}{
		{"s1", 45, 80, true},   // blacklisted
		{"s2", 70, 100, false}, // price high but rating 100 ≥ 100
		{"s3", 90, 100, false}, // price high but rating 100 ≥ 100
		{"s4", 50, 90, true},   // price 50 > 45 and rating 90 < 100
	}
	for _, c := range cases {
		got := phi1.Recognizes(hotelTrace(c.hotel, c.price, c.rating))
		if got != c.violate {
			t.Errorf("phi1 on %s: violate = %v, want %v", c.hotel, got, c.violate)
		}
	}
}

// TestFig1Phi2 reproduces the §2 claims for φ₂ = φ({s1,s3},40,70): S1 and
// S3 violate it (blacklist), S2 and S4 do not.
func TestFig1Phi2(t *testing.T) {
	phi2 := paperex.Phi2()
	cases := []struct {
		hotel   string
		price   int
		rating  int
		violate bool
	}{
		{"s1", 45, 80, true},   // blacklisted
		{"s2", 70, 100, false}, // 100 ≥ 70
		{"s3", 90, 100, true},  // blacklisted
		{"s4", 50, 90, false},  // 90 ≥ 70
	}
	for _, c := range cases {
		got := phi2.Recognizes(hotelTrace(c.hotel, c.price, c.rating))
		if got != c.violate {
			t.Errorf("phi2 on %s: violate = %v, want %v", c.hotel, got, c.violate)
		}
	}
}

func TestFig1ViolationIsAtSigningForBlacklist(t *testing.T) {
	phi1 := paperex.Phi1()
	trace := hotelTrace("s1", 45, 80)
	if got := phi1.ViolatingPrefix(trace); got != 1 {
		t.Errorf("blacklist violation should occur at the sgn event, got prefix %d", got)
	}
	trace = hotelTrace("s4", 50, 90)
	if got := phi1.ViolatingPrefix(trace); got != 3 {
		t.Errorf("threshold violation should occur at the rating event, got prefix %d", got)
	}
	if got := phi1.ViolatingPrefix(hotelTrace("s3", 90, 100)); got != -1 {
		t.Errorf("s3 should never violate phi1, got prefix %d", got)
	}
}

func TestInstanceIDsAreCanonical(t *testing.T) {
	id1 := paperex.Phi1().ID()
	if id1 != "phi[bl={s1},p=45,t=100]" {
		t.Errorf("phi1 id = %q", id1)
	}
	if paperex.Phi1().ID() != id1 {
		t.Error("re-instantiation must give the same ID")
	}
	if paperex.Phi2().ID() == id1 {
		t.Error("different bindings must give different IDs")
	}
}

func TestImplicitSelfLoops(t *testing.T) {
	phi1 := paperex.Phi1()
	// Events not mentioned by the automaton leave the state unchanged.
	trace := []hexpr.Event{
		hexpr.E("unrelated", hexpr.Int(1)),
		hexpr.E(paperex.EvSgn, hexpr.Sym("s1")),
	}
	if !phi1.Recognizes(trace) {
		t.Error("unrelated events must not mask a violation")
	}
	// An event with the right name but wrong arity is not matched.
	trace = []hexpr.Event{hexpr.E(paperex.EvSgn)} // no args
	if phi1.Recognizes(trace) {
		t.Error("arity mismatch should not fire the edge")
	}
}

func TestNondeterministicAutomaton(t *testing.T) {
	// Overlapping guards: sgn(x) goes to both q2 and qViol when x == 7;
	// a violation is reported when ANY run reaches a final state.
	a := &policy.Automaton{
		Name:   "nd",
		States: []string{"q0", "q1", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []policy.Edge{
			{From: "q0", To: "q1", EventName: "sgn", Guards: []policy.Guard{policy.GAny()}},
			{From: "q0", To: "qv", EventName: "sgn", Guards: []policy.Guard{policy.GEq(hexpr.Int(7))}},
		},
	}
	in, err := a.Instantiate(policy.Binding{})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Recognizes([]hexpr.Event{hexpr.E("sgn", hexpr.Int(7))}) {
		t.Error("nondeterministic violation run must be found")
	}
	if in.Recognizes([]hexpr.Event{hexpr.E("sgn", hexpr.Int(8))}) {
		t.Error("sgn(8) does not reach the violation state")
	}
}

func TestGuardKinds(t *testing.T) {
	a := &policy.Automaton{
		Name:   "g",
		Params: []policy.Param{{Name: "n", Kind: policy.IntParam}},
		States: []string{"q0", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []policy.Edge{
			{From: "q0", To: "qv", EventName: "lt", Guards: []policy.Guard{policy.G(policy.LT, "n")}},
			{From: "q0", To: "qv", EventName: "ge", Guards: []policy.Guard{policy.G(policy.GE, "n")}},
			{From: "q0", To: "qv", EventName: "ne", Guards: []policy.Guard{policy.GNe(hexpr.Sym("ok"))}},
		},
	}
	in, err := a.Instantiate(policy.Binding{Ints: map[string]int{"n": 10}})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		ev   hexpr.Event
		want bool
	}{
		{hexpr.E("lt", hexpr.Int(9)), true},
		{hexpr.E("lt", hexpr.Int(10)), false},
		{hexpr.E("ge", hexpr.Int(10)), true},
		{hexpr.E("ge", hexpr.Int(9)), false},
		{hexpr.E("lt", hexpr.Sym("x")), false}, // arithmetic guard on symbol
		{hexpr.E("ne", hexpr.Sym("bad")), true},
		{hexpr.E("ne", hexpr.Sym("ok")), false},
	}
	for _, c := range checks {
		if got := in.Recognizes([]hexpr.Event{c.ev}); got != c.want {
			t.Errorf("event %v: violate = %v, want %v", c.ev, got, c.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *policy.Automaton {
		return &policy.Automaton{
			Name:   "v",
			States: []string{"q0", "q1"},
			Start:  "q0",
			Finals: []string{"q1"},
		}
	}
	cases := []struct {
		name   string
		mutate func(*policy.Automaton)
		msg    string
	}{
		{"no states", func(a *policy.Automaton) { a.States = nil }, "no states"},
		{"dup state", func(a *policy.Automaton) { a.States = []string{"q0", "q0"} }, "duplicate state"},
		{"bad start", func(a *policy.Automaton) { a.Start = "zz" }, "unknown start"},
		{"bad final", func(a *policy.Automaton) { a.Finals = []string{"zz"} }, "unknown final"},
		{"bad edge from", func(a *policy.Automaton) {
			a.Edges = []policy.Edge{{From: "zz", To: "q1", EventName: "e"}}
		}, "unknown state"},
		{"bad edge to", func(a *policy.Automaton) {
			a.Edges = []policy.Edge{{From: "q0", To: "zz", EventName: "e"}}
		}, "unknown state"},
		{"empty event", func(a *policy.Automaton) {
			a.Edges = []policy.Edge{{From: "q0", To: "q1"}}
		}, "empty event"},
		{"set guard without param", func(a *policy.Automaton) {
			a.Edges = []policy.Edge{{From: "q0", To: "q1", EventName: "e",
				Guards: []policy.Guard{policy.G(policy.InSet, "zz")}}}
		}, "set parameter"},
		{"scalar guard without param", func(a *policy.Automaton) {
			a.Edges = []policy.Edge{{From: "q0", To: "q1", EventName: "e",
				Guards: []policy.Guard{policy.G(policy.LE, "zz")}}}
		}, "scalar parameter"},
		{"dup param", func(a *policy.Automaton) {
			a.Params = []policy.Param{{Name: "p", Kind: policy.IntParam}, {Name: "p", Kind: policy.SetParam}}
		}, "duplicate parameter"},
	}
	for _, c := range cases {
		a := base()
		c.mutate(a)
		err := a.Validate()
		if err == nil {
			t.Errorf("%s: Validate should fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("%s: error %q should mention %q", c.name, err, c.msg)
		}
	}
}

func TestInstantiateMissingParams(t *testing.T) {
	a := paperex.BookingPolicy()
	_, err := a.Instantiate(policy.Binding{Ints: map[string]int{"p": 1, "t": 1}})
	if err == nil || !strings.Contains(err.Error(), "missing set parameter") {
		t.Errorf("err = %v", err)
	}
	_, err = a.Instantiate(policy.Binding{Sets: map[string][]hexpr.Value{"bl": nil}, Ints: map[string]int{"p": 1}})
	if err == nil || !strings.Contains(err.Error(), "missing scalar parameter") {
		t.Errorf("err = %v", err)
	}
}

func TestTable(t *testing.T) {
	tab := paperex.Policies()
	phi1 := paperex.Phi1()
	if tab.Violates(hexpr.NoPolicy, hotelTrace("s1", 1, 1)) {
		t.Error("trivial policy never violated")
	}
	if !tab.Violates("no-such-policy", nil) {
		t.Error("unknown policy must be conservatively violated")
	}
	if !tab.Violates(phi1.ID(), hotelTrace("s1", 45, 80)) {
		t.Error("phi1 violated by s1")
	}
	if tab.Violates(phi1.ID(), hotelTrace("s3", 90, 100)) {
		t.Error("phi1 not violated by s3")
	}
	got, err := tab.Get(phi1.ID())
	if err != nil || got.ID() != phi1.ID() {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := tab.Get(hexpr.NoPolicy); err == nil {
		t.Error("Get(NoPolicy) should fail")
	}
	if _, err := tab.Get("zzz"); err == nil {
		t.Error("Get(zzz) should fail")
	}
	if n := len(tab.IDs()); n != 2 {
		t.Errorf("IDs = %d entries, want 2", n)
	}
}

func TestRespectsIsNegationOfRecognizes(t *testing.T) {
	phi1 := paperex.Phi1()
	for _, tr := range [][]hexpr.Event{
		hotelTrace("s1", 45, 80),
		hotelTrace("s3", 90, 100),
		nil,
	} {
		if phi1.Respects(tr) == phi1.Recognizes(tr) {
			t.Errorf("Respects and Recognizes must be complementary on %v", tr)
		}
	}
}

func TestMaxStatesEnforced(t *testing.T) {
	states := make([]string, policy.MaxStates+1)
	for i := range states {
		states[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	a := &policy.Automaton{Name: "big", States: states, Start: states[0]}
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Errorf("err = %v", err)
	}
}
