package policy_test

import (
	"fmt"

	"susc/internal/hexpr"
	"susc/internal/policy"
)

// A parametric usage automaton instantiates into a recogniser of the
// forbidden traces: here, charging more than a limit.
func ExampleAutomaton_Instantiate() {
	auto := &policy.Automaton{
		Name:   "nofraud",
		Params: []policy.Param{{Name: "limit", Kind: policy.IntParam}},
		States: []string{"ok", "bad"},
		Start:  "ok",
		Finals: []string{"bad"},
		Edges: []policy.Edge{
			{From: "ok", To: "bad", EventName: "charge",
				Guards: []policy.Guard{policy.G(policy.GT, "limit")}},
		},
	}
	inst, _ := auto.Instantiate(policy.Binding{Ints: map[string]int{"limit": 100}})
	fmt.Println(inst.ID())
	fmt.Println(inst.Recognizes([]hexpr.Event{hexpr.E("charge", hexpr.Int(80))}))
	fmt.Println(inst.Recognizes([]hexpr.Event{hexpr.E("charge", hexpr.Int(120))}))
	// Output:
	// nofraud[limit=100]
	// false
	// true
}

// Counting policies bound how many times an event may fire.
func ExampleCounting() {
	auto, _ := policy.Counting("quota", "download", 0, 2)
	inst, _ := auto.Instantiate(policy.Binding{})
	dl := hexpr.E("download")
	fmt.Println(inst.Recognizes([]hexpr.Event{dl, dl}))
	fmt.Println(inst.Recognizes([]hexpr.Event{dl, dl, dl}))
	// Output:
	// false
	// true
}
