package policy

import "fmt"

// This file offers canonical policy templates as one-call constructors.
// They are ordinary usage automata — everything the toolkit does to a
// hand-written policy applies to them.

// Never forbids any occurrence of the event (matched by name and arity).
func Never(name, eventName string, arity int) *Automaton {
	guards := anyGuards(arity)
	return &Automaton{
		Name:   name,
		States: []string{"q0", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []Edge{
			{From: "q0", To: "qv", EventName: eventName, Guards: guards},
		},
	}
}

// NeverAfter forbids any `then` event once a `first` event has occurred —
// the classic "never write after read" shape of the paper's §3.
func NeverAfter(name, first string, firstArity int, then string, thenArity int) *Automaton {
	return &Automaton{
		Name:   name,
		States: []string{"q0", "armed", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []Edge{
			{From: "q0", To: "armed", EventName: first, Guards: anyGuards(firstArity)},
			{From: "armed", To: "qv", EventName: then, Guards: anyGuards(thenArity)},
		},
	}
}

// MutualExclusion forbids both events occurring in the same history, in
// either order.
func MutualExclusion(name, a string, aArity int, b string, bArity int) *Automaton {
	return &Automaton{
		Name:   name,
		States: []string{"q0", "sawA", "sawB", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []Edge{
			{From: "q0", To: "sawA", EventName: a, Guards: anyGuards(aArity)},
			{From: "q0", To: "sawB", EventName: b, Guards: anyGuards(bArity)},
			{From: "sawA", To: "qv", EventName: b, Guards: anyGuards(bArity)},
			{From: "sawB", To: "qv", EventName: a, Guards: anyGuards(aArity)},
		},
	}
}

// RequireBefore forbids the `gated` event unless `enabler` has occurred
// first (e.g. "no ship before paid").
func RequireBefore(name, enabler string, enablerArity int, gated string, gatedArity int) *Automaton {
	return &Automaton{
		Name:   name,
		States: []string{"q0", "enabled", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []Edge{
			{From: "q0", To: "enabled", EventName: enabler, Guards: anyGuards(enablerArity)},
			{From: "q0", To: "qv", EventName: gated, Guards: anyGuards(gatedArity)},
		},
	}
}

// anyGuards builds n unconstrained guards.
func anyGuards(n int) []Guard {
	if n == 0 {
		return nil
	}
	out := make([]Guard, n)
	for i := range out {
		out[i] = GAny()
	}
	return out
}

// MustInstance instantiates a parameterless template, panicking on error —
// the stdlib templates take no parameters, so this is their one-liner.
func MustInstance(a *Automaton) *Instance {
	in, err := a.Instantiate(Binding{})
	if err != nil {
		panic(fmt.Sprintf("policy: %v", err))
	}
	return in
}
