package policy

import (
	"fmt"
	"sync"

	"susc/internal/hexpr"
)

// StateSet is a set of automaton states, as a bitmask (usage automata have
// at most 64 states).
type StateSet uint64

// Contains reports whether state i belongs to the set.
func (s StateSet) Contains(i int) bool { return s&(1<<uint(i)) != 0 }

// instEdge is an instantiated transition: guards are closed over the
// binding.
type instEdge struct {
	from, to int
	event    string
	arity    int
	match    func([]hexpr.Value) (bool, error)
}

// Instance is an instantiated usage automaton: a recogniser of forbidden
// traces over concrete events. Because guards may overlap, the recogniser
// is nondeterministic and steps over state sets; events matched by no edge
// leave each state unchanged (implicit self-loops), so stepping is total.
type Instance struct {
	id      hexpr.PolicyID
	a       *Automaton
	binding Binding
	start   int
	finals  StateSet
	edges   []instEdge

	// compiled per-event step rows (see compiled.go), built on first use
	rowMu sync.RWMutex
	rows  map[string][]rowEntry
}

// ID returns the canonical identifier of the instance, e.g.
// "phi[bl={s1},p=45,t=100]". It is the hexpr.PolicyID under which the
// instance is registered in a Table.
func (in *Instance) ID() hexpr.PolicyID { return in.id }

// Name returns the template name of the underlying automaton.
func (in *Instance) Name() string { return in.a.Name }

// Initial returns the singleton set holding the start state.
func (in *Instance) Initial() StateSet { return 1 << uint(in.start) }

// Final reports whether the set contains a violation state.
func (in *Instance) Final(s StateSet) bool { return s&in.finals != 0 }

// Step advances every state of the set on the event: states with matching
// edges move to all their targets, states without stay put. It runs on the
// compiled per-event row (see compiled.go), so repeated events cost a
// bit-scan instead of guard evaluations.
func (in *Instance) Step(s StateSet, ev hexpr.Event) StateSet {
	return stepCompiled(in.row(ev), s)
}

// NumStates returns the number of states of the underlying automaton.
func (in *Instance) NumStates() int { return len(in.a.States) }

// StartState returns the index of the start state.
func (in *Instance) StartState() int { return in.start }

// IsFinalState reports whether state i is a violation state.
func (in *Instance) IsFinalState(i int) bool { return in.finals.Contains(i) }

// StateName returns the declared name of state i in the underlying
// template.
func (in *Instance) StateName(i int) string { return in.a.States[i] }

// Template returns the underlying parametric automaton.
func (in *Instance) Template() *Automaton { return in.a }

// Next returns the successor states of a single state on an event,
// including the implicit self-loop when no edge matches. It exposes the
// raw (nondeterministic) transition relation for automata constructions.
func (in *Instance) Next(state int, ev hexpr.Event) []int {
	var out []int
	for _, e := range in.edges {
		if e.from != state || e.event != ev.Name || e.arity != len(ev.Args) {
			continue
		}
		if ok, err := e.match(ev.Args); err == nil && ok {
			out = append(out, e.to)
		}
	}
	if len(out) == 0 {
		out = append(out, state)
	}
	return out
}

// Run steps the instance over a whole trace from the initial set.
func (in *Instance) Run(trace []hexpr.Event) StateSet {
	s := in.Initial()
	for _, ev := range trace {
		s = in.Step(s, ev)
	}
	return s
}

// Recognizes reports whether the trace is in the language of the instance,
// i.e. whether the trace is forbidden by the policy.
func (in *Instance) Recognizes(trace []hexpr.Event) bool {
	return in.Final(in.Run(trace))
}

// Respects reports whether the trace obeys the policy: η♭ ⊨ φ in the
// paper's notation, i.e. the trace is *not* recognised.
func (in *Instance) Respects(trace []hexpr.Event) bool {
	return !in.Recognizes(trace)
}

// ViolatingPrefix returns the length of the shortest prefix of the trace
// recognised by the instance, or -1 when every prefix respects the policy.
// (Validity of histories is prefix-sensitive.)
func (in *Instance) ViolatingPrefix(trace []hexpr.Event) int {
	s := in.Initial()
	if in.Final(s) {
		return 0
	}
	for i, ev := range trace {
		s = in.Step(s, ev)
		if in.Final(s) {
			return i + 1
		}
	}
	return -1
}

// Table maps policy identifiers to instantiated usage automata. It
// implements the policy oracle needed by history validity checking
// (internal/history) and by the model checkers.
type Table struct {
	m map[hexpr.PolicyID]*Instance

	mu       sync.Mutex
	compiled *CompiledTable // dense view, built lazily; Add invalidates
}

// NewTable builds a table from the given instances.
func NewTable(instances ...*Instance) *Table {
	t := &Table{m: map[hexpr.PolicyID]*Instance{}}
	for _, in := range instances {
		t.m[in.ID()] = in
	}
	return t
}

// Add registers an instance (overwriting any instance with the same ID).
func (t *Table) Add(in *Instance) {
	t.mu.Lock()
	t.m[in.ID()] = in
	t.compiled = nil
	t.mu.Unlock()
}

// Get returns the instance registered under id.
func (t *Table) Get(id hexpr.PolicyID) (*Instance, error) {
	if id == hexpr.NoPolicy {
		return nil, fmt.Errorf("policy: the trivial policy has no instance")
	}
	in, ok := t.m[id]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q", id)
	}
	return in, nil
}

// IDs returns the registered identifiers (unordered).
func (t *Table) IDs() []hexpr.PolicyID {
	out := make([]hexpr.PolicyID, 0, len(t.m))
	for id := range t.m {
		out = append(out, id)
	}
	return out
}

// Violates reports whether the trace violates the policy registered under
// id. The trivial policy is violated by no trace; unknown identifiers are
// conservatively reported as violated.
func (t *Table) Violates(id hexpr.PolicyID, trace []hexpr.Event) bool {
	if id == hexpr.NoPolicy {
		return false
	}
	in, ok := t.m[id]
	if !ok {
		return true
	}
	return in.Recognizes(trace)
}
