package policy

import (
	"fmt"
	"strings"
)

// DOT renders the parametric automaton in Graphviz dot syntax: final
// (violation) states are red double circles; edges show the event pattern
// and its guards.
func (a *Automaton) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", a.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	fmt.Fprintf(&b, "  __start [shape=point];\n  __start -> %q;\n", a.Start)
	finals := map[string]bool{}
	for _, f := range a.Finals {
		finals[f] = true
	}
	for _, s := range a.States {
		if finals[s] {
			fmt.Fprintf(&b, "  %q [shape=doublecircle, color=red];\n", s)
		} else {
			fmt.Fprintf(&b, "  %q;\n", s)
		}
	}
	for _, e := range a.Edges {
		label := e.EventName
		var guards []string
		for i, g := range e.Guards {
			if g.Kind == Any {
				continue
			}
			guards = append(guards, fmt.Sprintf("x%d %s", i, g))
		}
		if len(e.Guards) > 0 {
			label += fmt.Sprintf("(%d)", len(e.Guards))
		}
		if len(guards) > 0 {
			label += " when " + strings.Join(guards, ", ")
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, label)
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the instantiated automaton, annotating the graph with the
// binding carried by the instance identifier.
func (in *Instance) DOT() string {
	dot := in.a.DOT()
	header := fmt.Sprintf("  label=%q;\n  labelloc=top;\n", string(in.id))
	i := strings.Index(dot, "\n")
	return dot[:i+1] + header + dot[i+1:]
}
