package history_test

import (
	"errors"
	"math/rand"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/paperex"
	"susc/internal/policy"
)

func ev(name string, args ...hexpr.Value) history.Item {
	return history.EventItem(hexpr.E(name, args...))
}

// noReadAfterWrite is the classic example policy of §3: never write after
// read (here: the trace read·write is forbidden).
func noWriteAfterRead() *policy.Instance {
	a := &policy.Automaton{
		Name:   "nwar",
		States: []string{"q0", "q1", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []policy.Edge{
			{From: "q0", To: "q1", EventName: "read"},
			{From: "q1", To: "qv", EventName: "write"},
		},
	}
	return a.MustInstantiate(policy.Binding{})
}

func TestFlat(t *testing.T) {
	phi := noWriteAfterRead()
	h := history.History{
		ev("gamma"),
		ev("read"),
		history.OpenItem(phi.ID()),
		ev("beta"),
		history.CloseItem(phi.ID()),
	}
	flat := h.Flat()
	if len(flat) != 3 || flat[0].Name != "gamma" || flat[1].Name != "read" || flat[2].Name != "beta" {
		t.Errorf("flat = %v", flat)
	}
}

func TestBalanced(t *testing.T) {
	phi := noWriteAfterRead()
	cases := []struct {
		h        history.History
		balanced bool
		prefix   bool
	}{
		{nil, true, true},
		{history.History{ev("a")}, true, true},
		{history.History{history.OpenItem(phi.ID()), history.CloseItem(phi.ID())}, true, true},
		{history.History{history.OpenItem(phi.ID())}, false, true},
		{history.History{history.CloseItem(phi.ID())}, false, false},
		{history.History{history.OpenItem("a"), history.OpenItem("b"),
			history.CloseItem("a")}, false, false}, // ill-nested
		{history.History{history.OpenItem("a"), history.OpenItem("b"),
			history.CloseItem("b"), history.CloseItem("a")}, true, true},
	}
	for i, c := range cases {
		if got := c.h.Balanced(); got != c.balanced {
			t.Errorf("case %d: Balanced = %v, want %v", i, got, c.balanced)
		}
		if got := c.h.PrefixOfBalanced(); got != c.prefix {
			t.Errorf("case %d: PrefixOfBalanced = %v, want %v", i, got, c.prefix)
		}
	}
}

func TestActive(t *testing.T) {
	h := history.History{
		history.OpenItem("a"),
		history.OpenItem("b"),
		history.OpenItem("a"),
		history.CloseItem("a"),
	}
	ap := h.Active()
	if ap["a"] != 1 || ap["b"] != 1 || len(ap) != 2 {
		t.Errorf("AP = %v", ap)
	}
	if n := (history.History{}).Active(); len(n) != 0 {
		t.Errorf("AP(ε) = %v", n)
	}
	// a closed framing is not active (see package comment on the paper's
	// left-to-right equations)
	closed := history.History{history.OpenItem("a"), history.CloseItem("a")}
	if len(closed.Active()) != 0 {
		t.Errorf("AP([_a _]a) = %v, want empty", closed.Active())
	}
}

// TestHistoryDependence reproduces the §3.1 example: with φ = "no α after
// γ", the history γ·α·⌊φ·β is invalid (the past γ·α does not obey φ when φ
// activates) while ⌊φ·γ·⌋φ·α·β is valid (φ is no longer active when α
// fires).
func TestHistoryDependence(t *testing.T) {
	a := &policy.Automaton{
		Name:   "noAlphaAfterGamma",
		States: []string{"q0", "q1", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []policy.Edge{
			{From: "q0", To: "q1", EventName: "gamma"},
			{From: "q1", To: "qv", EventName: "alpha"},
		},
	}
	phi := a.MustInstantiate(policy.Binding{})
	table := policy.NewTable(phi)

	invalid := history.History{
		ev("gamma"), ev("alpha"), history.OpenItem(phi.ID()), ev("beta"),
	}
	if history.Valid(invalid, table) {
		t.Error("γ α ⌊φ β must be invalid (history dependence)")
	}
	if at := history.FirstViolation(invalid, table); at != 3 {
		t.Errorf("violation at %d, want 3 (the framing opening)", at)
	}

	valid := history.History{
		history.OpenItem(phi.ID()), ev("gamma"), history.CloseItem(phi.ID()),
		ev("alpha"), ev("beta"),
	}
	if !history.Valid(valid, table) {
		t.Error("⌊φ γ ⌋φ α β must be valid")
	}
}

func TestValidInsideFraming(t *testing.T) {
	phi := noWriteAfterRead()
	table := policy.NewTable(phi)
	bad := history.History{
		history.OpenItem(phi.ID()), ev("read"), ev("write"),
	}
	if history.Valid(bad, table) {
		t.Error("read·write under φ must be invalid")
	}
	good := history.History{
		history.OpenItem(phi.ID()), ev("read"), history.CloseItem(phi.ID()), ev("write"),
	}
	if !history.Valid(good, table) {
		t.Error("write after the framing closed must be valid")
	}
}

func TestFromLabels(t *testing.T) {
	labels := []hexpr.Label{
		hexpr.EventLabel(hexpr.E("a")),
		hexpr.CommLabel(hexpr.Out("ch")),
		hexpr.Tau,
		hexpr.OpenLabel("r1", "phi"),
		hexpr.EventLabel(hexpr.E("b")),
		hexpr.CloseLabel("r1", "phi"),
		hexpr.OpenLabel("r2", hexpr.NoPolicy),
		hexpr.FrameOpenLabel("psi"),
		hexpr.FrameCloseLabel("psi"),
	}
	h := history.FromLabels(labels)
	want := history.History{
		ev("a"),
		history.OpenItem("phi"),
		ev("b"),
		history.CloseItem("phi"),
		history.OpenItem("psi"),
		history.CloseItem("psi"),
	}
	if len(h) != len(want) {
		t.Fatalf("history = %v (len %d), want %v", h, len(h), want)
	}
	for i := range h {
		if h[i].String() != want[i].String() {
			t.Errorf("item %d = %v, want %v", i, h[i], want[i])
		}
	}
}

func TestMonitorAgreesWithValid(t *testing.T) {
	phi1 := paperex.Phi1()
	phi2 := paperex.Phi2()
	table := policy.NewTable(phi1, phi2)
	items := []history.Item{
		ev(paperex.EvSgn, hexpr.Sym("s1")),
		ev(paperex.EvSgn, hexpr.Sym("s3")),
		ev(paperex.EvPrice, hexpr.Int(90)),
		ev(paperex.EvRating, hexpr.Int(100)),
		history.OpenItem(phi1.ID()),
		history.OpenItem(phi2.ID()),
		history.CloseItem(phi2.ID()),
		history.CloseItem(phi1.ID()),
	}
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		n := rnd.Intn(7)
		h := make(history.History, 0, n)
		depth := 0
		for i := 0; i < n; i++ {
			it := items[rnd.Intn(len(items))]
			// keep histories prefix-of-balanced: only close the matching top
			if it.Kind == history.ItemFrameClose {
				if depth == 0 {
					continue
				}
				// close the actual top of the stack
				for j := len(h) - 1; j >= 0; j-- {
					if h[j].Kind == history.ItemFrameOpen {
						it = history.CloseItem(h[j].Policy)
						break
					}
				}
				depth--
			} else if it.Kind == history.ItemFrameOpen {
				depth++
			}
			h = append(h, it)
		}
		if !h.PrefixOfBalanced() {
			continue
		}
		ref := history.Valid(h, table)
		m := history.NewMonitor(table)
		inc := m.AppendAll(h) == nil
		if ref != inc {
			t.Fatalf("monitor disagrees with Valid on %v: ref=%v inc=%v", h, ref, inc)
		}
	}
}

func TestMonitorViolationDetails(t *testing.T) {
	phi := noWriteAfterRead()
	table := policy.NewTable(phi)
	m := history.NewMonitor(table)
	if err := m.Append(history.OpenItem(phi.ID())); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(ev("read")); err != nil {
		t.Fatal(err)
	}
	err := m.Append(ev("write"))
	var verr *history.ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("err = %v, want ViolationError", err)
	}
	if verr.Policy != phi.ID() || verr.At != 3 {
		t.Errorf("violation = %+v", verr)
	}
	// The monitor state is unchanged: the event was rejected.
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	if len(m.Active()) != 1 {
		t.Errorf("Active = %v", m.Active())
	}
	// Closing the frame re-enables the write.
	if err := m.Append(history.CloseItem(phi.ID())); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(ev("write")); err != nil {
		t.Errorf("write after closing: %v", err)
	}
}

func TestMonitorNesting(t *testing.T) {
	phi := noWriteAfterRead()
	table := policy.NewTable(phi)
	m := history.NewMonitor(table)
	err := m.Append(history.CloseItem(phi.ID()))
	var nerr *history.NestingError
	if !errors.As(err, &nerr) {
		t.Fatalf("err = %v, want NestingError", err)
	}
}

func TestMonitorActivationChecksPast(t *testing.T) {
	phi := noWriteAfterRead()
	table := policy.NewTable(phi)
	m := history.NewMonitor(table)
	if err := m.Append(ev("read")); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(ev("write")); err != nil {
		t.Fatal(err) // no policy active yet
	}
	err := m.Append(history.OpenItem(phi.ID()))
	var verr *history.ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("activating φ over a violating past must fail, got %v", err)
	}
}

func TestMonitorSnapshotIndependence(t *testing.T) {
	phi := noWriteAfterRead()
	table := policy.NewTable(phi)
	m := history.NewMonitor(table)
	if err := m.Append(history.OpenItem(phi.ID())); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if err := m.Append(ev("read")); err != nil {
		t.Fatal(err)
	}
	// the snapshot has not seen "read": write must be fine there
	if err := snap.Append(ev("write")); err != nil {
		t.Errorf("snapshot polluted by original: %v", err)
	}
	// but not on the original
	if err := m.Append(ev("write")); err == nil {
		t.Error("original must reject write after read")
	}
}

func TestUnknownPolicyIsConservative(t *testing.T) {
	table := policy.NewTable()
	h := history.History{history.OpenItem("ghost")}
	if history.Valid(h, table) {
		t.Error("activating an unknown policy must be invalid")
	}
	m := history.NewMonitor(table)
	if err := m.Append(history.OpenItem("ghost")); err == nil {
		t.Error("monitor must reject unknown policies")
	}
}

func TestHistoryString(t *testing.T) {
	h := history.History{ev("a", hexpr.Int(1)), history.OpenItem("phi"), history.CloseItem("phi")}
	if got := h.String(); got != "a(1) [_phi _]phi" {
		t.Errorf("String = %q", got)
	}
}

func TestInertFor(t *testing.T) {
	events := []history.Item{ev("a"), ev("b", hexpr.Int(1))}
	// No policies: plain events are inert — sharing the monitor instead of
	// snapshotting must leave signature and acceptance unchanged.
	empty := history.NewMonitor(policy.NewTable())
	if !empty.InertFor(events) {
		t.Error("events under an empty table must be inert")
	}
	sig := empty.Signature()
	for _, it := range events {
		if err := empty.Append(it); err != nil {
			t.Fatal(err)
		}
	}
	if got := empty.Signature(); got != sig {
		t.Errorf("inert items changed the signature: %q -> %q", sig, got)
	}
	// Framing items are never inert, even under an empty table.
	if empty.InertFor([]history.Item{history.OpenItem(hexpr.NoPolicy)}) {
		t.Error("frame-open must not be inert")
	}
	// With policy automata present, events on *watched* names can advance
	// states: not inert. Events no automaton has an edge on self-loop every
	// state (the watched-name bitset test), so they stay inert.
	m := history.NewMonitor(policy.NewTable(noWriteAfterRead()))
	if m.InertFor([]history.Item{ev("read")}) {
		t.Error("a watched event must not be inert")
	}
	if m.InertFor([]history.Item{ev("a"), ev("read")}) {
		t.Error("a batch containing a watched event must not be inert")
	}
	if !m.InertFor(events) {
		t.Error("unwatched events must be inert even under a non-empty table")
	}
	sig = m.Signature()
	for _, it := range events {
		if err := m.Append(it); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Signature(); got != sig {
		t.Errorf("inert items changed the signature: %q -> %q", sig, got)
	}
}
