// Package history implements execution histories η ∈ (Ev ∪ Frm)* and their
// validity (§3.1 of the paper): balance, flattening η♭, the multiset AP(η)
// of active policies, and the history-dependent validity judgement ⊨ η.
//
// A note on AP: the paper's equations peel histories from the left, which
// read literally would leave a closed framing ⌊φ⌋φ active. We implement the
// evidently intended semantics — AP(η) is the multiset of policies opened
// but not yet closed (the equations read right-to-left) — which coincides
// with the paper's use of AP everywhere else.
package history

import (
	"fmt"
	"strings"

	"susc/internal/hexpr"
	"susc/internal/policy"
)

// ItemKind discriminates history items.
type ItemKind int

const (
	// ItemEvent is an access event α.
	ItemEvent ItemKind = iota
	// ItemFrameOpen is the framing action ⌊φ.
	ItemFrameOpen
	// ItemFrameClose is the framing action ⌋φ.
	ItemFrameClose
)

// Item is one element of a history: an event or a framing action.
type Item struct {
	Kind   ItemKind
	Event  hexpr.Event    // for ItemEvent
	Policy hexpr.PolicyID // for the framing kinds
}

// EventItem wraps an event as a history item.
func EventItem(e hexpr.Event) Item { return Item{Kind: ItemEvent, Event: e} }

// OpenItem is the ⌊φ item.
func OpenItem(p hexpr.PolicyID) Item { return Item{Kind: ItemFrameOpen, Policy: p} }

// CloseItem is the ⌋φ item.
func CloseItem(p hexpr.PolicyID) Item { return Item{Kind: ItemFrameClose, Policy: p} }

func (it Item) String() string {
	switch it.Kind {
	case ItemEvent:
		return it.Event.String()
	case ItemFrameOpen:
		return "[_" + string(it.Policy)
	default:
		return "_]" + string(it.Policy)
	}
}

// History is a sequence of events and framing actions.
type History []Item

func (h History) String() string {
	parts := make([]string, len(h))
	for i, it := range h {
		parts[i] = it.String()
	}
	return strings.Join(parts, " ")
}

// FromLabels extracts the history logged by a sequence of transition
// labels: events and framings are kept; open_{r,φ}/close_{r,φ} log ⌊φ/⌋φ
// when φ is non-trivial (as the network rules Open and Close do);
// communications and τ log nothing.
func FromLabels(labels []hexpr.Label) History {
	var h History
	for _, l := range labels {
		switch l.Kind {
		case hexpr.LEvent:
			h = append(h, EventItem(l.Event))
		case hexpr.LFrameOpen:
			h = append(h, OpenItem(l.Policy))
		case hexpr.LFrameClose:
			h = append(h, CloseItem(l.Policy))
		case hexpr.LOpen:
			if l.Policy != hexpr.NoPolicy {
				h = append(h, OpenItem(l.Policy))
			}
		case hexpr.LClose:
			if l.Policy != hexpr.NoPolicy {
				h = append(h, CloseItem(l.Policy))
			}
		}
	}
	return h
}

// Flat returns η♭: the history with all framing actions erased.
func (h History) Flat() []hexpr.Event {
	var out []hexpr.Event
	for _, it := range h {
		if it.Kind == ItemEvent {
			out = append(out, it.Event)
		}
	}
	return out
}

// Balanced reports whether the history is balanced: framings are properly
// opened and closed, in a well-nested fashion.
func (h History) Balanced() bool {
	ok, stack := h.scan()
	return ok && len(stack) == 0
}

// PrefixOfBalanced reports whether the history is a prefix of some balanced
// history, i.e. its closings are well-nested with its openings (openings
// may still be pending). Only such histories arise from executions.
func (h History) PrefixOfBalanced() bool {
	ok, _ := h.scan()
	return ok
}

// scan checks well-nesting and returns the stack of pending openings.
func (h History) scan() (bool, []hexpr.PolicyID) {
	var stack []hexpr.PolicyID
	for _, it := range h {
		switch it.Kind {
		case ItemFrameOpen:
			stack = append(stack, it.Policy)
		case ItemFrameClose:
			if len(stack) == 0 || stack[len(stack)-1] != it.Policy {
				return false, nil
			}
			stack = stack[:len(stack)-1]
		}
	}
	return true, stack
}

// Active returns AP(η), the multiset of active policies, as a map from
// policy to multiplicity. The history must be a prefix of a balanced one.
func (h History) Active() map[hexpr.PolicyID]int {
	out := map[hexpr.PolicyID]int{}
	for _, it := range h {
		switch it.Kind {
		case ItemFrameOpen:
			out[it.Policy]++
		case ItemFrameClose:
			out[it.Policy]--
			if out[it.Policy] <= 0 {
				delete(out, it.Policy)
			}
		}
	}
	return out
}

// Oracle decides whether a flat trace violates a policy. *policy.Table
// implements it.
type Oracle interface {
	Violates(id hexpr.PolicyID, trace []hexpr.Event) bool
}

var _ Oracle = (*policy.Table)(nil)

// Valid implements ⊨ η: for every split η₀η₁ = η and every φ ∈ AP(η₀), the
// flattened prefix η₀♭ respects φ. This is the reference (quadratic)
// implementation; Monitor provides the incremental one. The two are
// cross-checked by tests.
func Valid(h History, oracle Oracle) bool {
	return FirstViolation(h, oracle) == -1
}

// FirstViolation returns the length of the shortest invalid prefix of η, or
// -1 when η is valid.
func FirstViolation(h History, oracle Oracle) int {
	for i := 0; i <= len(h); i++ {
		prefix := h[:i]
		flat := prefix.Flat()
		for phi := range prefix.Active() {
			if oracle.Violates(phi, flat) {
				return i
			}
		}
	}
	return -1
}

// ViolationError reports an invalid history extension.
type ViolationError struct {
	Policy hexpr.PolicyID
	At     int // history length at which the violation occurred
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("history: policy %s violated at position %d", e.Policy, e.At)
}

// NestingError reports a framing action that is not well-nested.
type NestingError struct{ Item Item }

func (e *NestingError) Error() string {
	return fmt.Sprintf("history: ill-nested framing action %s", e.Item)
}
