package history_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/paperex"
	"susc/internal/policy"
)

// genHistory builds a random prefix-of-balanced history from the hotel
// vocabulary.
func genHistory(seed int64, table *policy.Table) history.History {
	rnd := rand.New(rand.NewSource(seed))
	ids := table.IDs()
	var h history.History
	var stack []hexpr.PolicyID
	n := rnd.Intn(12)
	for i := 0; i < n; i++ {
		switch rnd.Intn(4) {
		case 0:
			h = append(h, history.EventItem(hexpr.E(paperex.EvSgn,
				hexpr.Sym([]string{"s1", "s2", "s3", "s4"}[rnd.Intn(4)]))))
		case 1:
			h = append(h, history.EventItem(hexpr.E(paperex.EvPrice, hexpr.Int(rnd.Intn(100)))))
		case 2:
			id := ids[rnd.Intn(len(ids))]
			h = append(h, history.OpenItem(id))
			stack = append(stack, id)
		case 3:
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				h = append(h, history.CloseItem(top))
			}
		}
	}
	return h
}

// TestQuickValidityPrefixClosed: validity is a safety property — every
// prefix of a valid history is valid, and extending an invalid history
// never repairs it.
func TestQuickValidityPrefixClosed(t *testing.T) {
	table := paperex.Policies()
	f := func(seed int64) bool {
		h := genHistory(seed, table)
		at := history.FirstViolation(h, table)
		if at == -1 {
			// valid: all prefixes valid
			for i := 0; i <= len(h); i++ {
				if !history.Valid(h[:i], table) {
					return false
				}
			}
			return true
		}
		// invalid at `at`: every extension beyond is invalid too
		for i := at; i <= len(h); i++ {
			if history.Valid(h[:i], table) {
				return false
			}
		}
		// and the prefix strictly before is valid
		return history.Valid(h[:at-1], table)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickMonitorEquivalence: the incremental monitor accepts exactly the
// valid histories.
func TestQuickMonitorEquivalence(t *testing.T) {
	table := paperex.Policies()
	f := func(seed int64) bool {
		h := genHistory(seed, table)
		m := history.NewMonitor(table)
		return (m.AppendAll(h) == nil) == history.Valid(h, table)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickActiveNeverNegative: AP multiplicities stay positive on
// prefix-of-balanced histories, and closing everything empties AP.
func TestQuickActiveConsistency(t *testing.T) {
	table := paperex.Policies()
	f := func(seed int64) bool {
		h := genHistory(seed, table)
		if !h.PrefixOfBalanced() {
			return false // the generator only builds prefix-balanced histories
		}
		for _, n := range h.Active() {
			if n <= 0 {
				return false
			}
		}
		// close all pending frames in stack order: balanced, empty AP
		closed := append(history.History{}, h...)
		var stack []hexpr.PolicyID
		for _, it := range h {
			switch it.Kind {
			case history.ItemFrameOpen:
				stack = append(stack, it.Policy)
			case history.ItemFrameClose:
				stack = stack[:len(stack)-1]
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			closed = append(closed, history.CloseItem(stack[i]))
		}
		return closed.Balanced() && len(closed.Active()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickFlatErasesExactlyFrames: η♭ keeps the events in order and drops
// exactly the framing actions.
func TestQuickFlat(t *testing.T) {
	table := paperex.Policies()
	f := func(seed int64) bool {
		h := genHistory(seed, table)
		flat := h.Flat()
		events := 0
		for _, it := range h {
			if it.Kind == history.ItemEvent {
				if !flat[events].Equal(it.Event) {
					return false
				}
				events++
			}
		}
		return events == len(flat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
