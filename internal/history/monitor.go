package history

import (
	"sort"
	"strconv"

	"susc/internal/hexpr"
	"susc/internal/policy"
)

// Monitor is the incremental run-time validity monitor: it consumes history
// items one at a time and reports, in O(#policies) per item, whether the
// history so far is valid. It maintains, for every policy of the table, the
// state set reached by the policy automaton on the *whole* flat history —
// the approach is history-dependent, so automata run from the very first
// event even when the policy is activated later.
//
// The paper's programme is to make this monitor unnecessary: a plan
// validated by internal/verify never trips it. Benchmarks compare monitored
// and unmonitored execution.
//
// Framing closes are matched against openings as a multiset (the active
// multiset AP), not as a strict stack: in a network, the two parties of a
// session log framings into the same shared history, so openings and
// closings of *different* policies may cross even though each party's own
// framings are well-nested. Validity only depends on AP, which is
// multiset-based, so this is exactly the paper's judgement.
type Monitor struct {
	table  *policy.Table
	states map[hexpr.PolicyID]policy.StateSet
	active map[hexpr.PolicyID]int
	opened int // count of trivial-policy frames currently open
	length int
	sig    string // cached Signature ("" = stale); Append invalidates
}

// NewMonitor builds a monitor over the given policy table.
func NewMonitor(table *policy.Table) *Monitor {
	m := &Monitor{
		table:  table,
		states: map[hexpr.PolicyID]policy.StateSet{},
		active: map[hexpr.PolicyID]int{},
	}
	for _, id := range table.IDs() {
		in, _ := table.Get(id)
		m.states[id] = in.Initial()
	}
	return m
}

// Len returns the number of items consumed so far.
func (m *Monitor) Len() int { return m.length }

// Active returns the multiset of currently active policies.
func (m *Monitor) Active() map[hexpr.PolicyID]int {
	out := make(map[hexpr.PolicyID]int, len(m.active))
	for k, v := range m.active {
		out[k] = v
	}
	return out
}

// Append consumes one history item. It returns a *ViolationError when the
// extended history is invalid, a *NestingError when a framing action is
// ill-nested, and nil otherwise. After an error the monitor state is
// unchanged (the offending item is not recorded), matching the semantics in
// which invalid moves simply cannot be taken.
func (m *Monitor) Append(it Item) error {
	switch it.Kind {
	case ItemEvent:
		// Tentatively step every automaton, then check active policies.
		next := make(map[hexpr.PolicyID]policy.StateSet, len(m.states))
		for id, s := range m.states {
			in, _ := m.table.Get(id)
			next[id] = in.Step(s, it.Event)
		}
		for id, n := range m.active {
			if n <= 0 {
				continue
			}
			if id == hexpr.NoPolicy {
				continue
			}
			in, err := m.table.Get(id)
			if err != nil {
				return &ViolationError{Policy: id, At: m.length + 1}
			}
			if in.Final(next[id]) {
				return &ViolationError{Policy: id, At: m.length + 1}
			}
		}
		m.states = next
	case ItemFrameOpen:
		if it.Policy == hexpr.NoPolicy {
			m.opened++
			break
		}
		in, err := m.table.Get(it.Policy)
		if err != nil {
			return &ViolationError{Policy: it.Policy, At: m.length + 1}
		}
		// History dependence: the past must already respect the newly
		// activated policy.
		if in.Final(m.states[it.Policy]) {
			return &ViolationError{Policy: it.Policy, At: m.length + 1}
		}
		m.active[it.Policy]++
	case ItemFrameClose:
		if it.Policy == hexpr.NoPolicy {
			if m.opened == 0 {
				return &NestingError{Item: it}
			}
			m.opened--
			break
		}
		if m.active[it.Policy] == 0 {
			return &NestingError{Item: it}
		}
		m.active[it.Policy]--
		if m.active[it.Policy] == 0 {
			delete(m.active, it.Policy)
		}
	}
	m.length++
	m.sig = ""
	return nil
}

// InertFor reports whether appending the items would provably leave the
// monitor's abstract state unchanged and violation-free: with no policy
// automata to run (empty table — states is seeded with every table ID, so
// an empty map means no policies, hence nothing active), plain events
// advance nothing and cannot violate. Explorations use this to share a
// monitor across such moves instead of snapshotting and re-appending.
func (m *Monitor) InertFor(items []Item) bool {
	if len(m.states) > 0 {
		return false
	}
	for _, it := range items {
		if it.Kind != ItemEvent {
			return false
		}
	}
	return true
}

// AppendAll consumes a whole history, stopping at the first error.
func (m *Monitor) AppendAll(h History) error {
	for _, it := range h {
		if err := m.Append(it); err != nil {
			return err
		}
	}
	return nil
}

// Signature returns a canonical string of the monitor's abstract state —
// the policy-automaton state sets and the active multiset, but not the
// history length. Two monitors with equal signatures accept exactly the
// same future histories, which is what makes state-space exploration
// finite (internal/verify keys configurations on it).
// The signature is cached between calls: exploration keys every generated
// state, but monitors are shared across item-less moves and advanced only
// through Append (which invalidates the cache), so the string is built
// once per distinct monitor state instead of once per lookup.
func (m *Monitor) Signature() string {
	if m.sig != "" {
		return m.sig
	}
	ids := make([]string, 0, len(m.states))
	for id := range m.states {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	buf := make([]byte, 0, 8+16*len(ids))
	for _, id := range ids {
		buf = append(buf, id...)
		buf = append(buf, '=')
		buf = strconv.AppendUint(buf, uint64(m.states[hexpr.PolicyID(id)]), 16)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, int64(m.active[hexpr.PolicyID(id)]), 10)
		buf = append(buf, ';')
	}
	buf = append(buf, '#')
	buf = strconv.AppendInt(buf, int64(m.opened), 10)
	m.sig = string(buf)
	return m.sig
}

// Snapshot returns a deep copy of the monitor, so explorations can branch.
func (m *Monitor) Snapshot() *Monitor {
	out := &Monitor{
		table:  m.table,
		states: make(map[hexpr.PolicyID]policy.StateSet, len(m.states)),
		active: make(map[hexpr.PolicyID]int, len(m.active)),
		opened: m.opened,
		length: m.length,
		sig:    m.sig,
	}
	for k, v := range m.states {
		out.states[k] = v
	}
	for k, v := range m.active {
		out.active[k] = v
	}
	return out
}
