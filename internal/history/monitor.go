package history

import (
	"strconv"

	"susc/internal/hexpr"
	"susc/internal/policy"
)

// Monitor is the incremental run-time validity monitor: it consumes history
// items one at a time and reports, in O(#policies) per item, whether the
// history so far is valid. It maintains, for every policy of the table, the
// state set reached by the policy automaton on the *whole* flat history —
// the approach is history-dependent, so automata run from the very first
// event even when the policy is activated later.
//
// The paper's programme is to make this monitor unnecessary: a plan
// validated by internal/verify never trips it. Benchmarks compare monitored
// and unmonitored execution.
//
// Framing closes are matched against openings as a multiset (the active
// multiset AP), not as a strict stack: in a network, the two parties of a
// session log framings into the same shared history, so openings and
// closings of *different* policies may cross even though each party's own
// framings are well-nested. Validity only depends on AP, which is
// multiset-based, so this is exactly the paper's judgement.
//
// The monitor runs on the dense compiled view of the table
// (policy.CompiledTable): state sets and activation counts are slices
// indexed by the table's sorted policy order, and event stepping goes
// through compiled per-event rows instead of guard closures.
type Monitor struct {
	table   *policy.Table
	ct      *policy.CompiledTable
	states  []policy.StateSet // indexed by ct position
	active  []int32           // activation multiset, same indexing
	scratch []policy.StateSet // Append scratch: tentative next states
	opened  int               // count of trivial-policy frames currently open
	length  int
	sig     string // cached Signature ("" = stale); state changes invalidate
}

// NewMonitor builds a monitor over the given policy table.
func NewMonitor(table *policy.Table) *Monitor {
	ct := table.Compiled()
	m := &Monitor{
		table:   table,
		ct:      ct,
		states:  make([]policy.StateSet, ct.Len()),
		active:  make([]int32, ct.Len()),
		scratch: make([]policy.StateSet, ct.Len()),
	}
	for i := 0; i < ct.Len(); i++ {
		m.states[i] = ct.At(i).Initial()
	}
	return m
}

// Len returns the number of items consumed so far.
func (m *Monitor) Len() int { return m.length }

// Active returns the multiset of currently active policies.
func (m *Monitor) Active() map[hexpr.PolicyID]int {
	out := make(map[hexpr.PolicyID]int)
	for i, n := range m.active {
		if n > 0 {
			out[m.ct.IDs()[i]] = int(n)
		}
	}
	return out
}

// ActiveMask returns the activation multiset collapsed to a bitmask over
// the compiled table's sorted policy order: bit i is set iff policy i is
// active at least once. Tables with more than 64 policies cannot be
// represented; callers needing the mask must check the table size first.
func (m *Monitor) ActiveMask() uint64 {
	var mask uint64
	for i, n := range m.active {
		if n > 0 && i < 64 {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// Append consumes one history item. It returns a *ViolationError when the
// extended history is invalid, a *NestingError when a framing action is
// ill-nested, and nil otherwise. After an error the monitor state is
// unchanged (the offending item is not recorded), matching the semantics in
// which invalid moves simply cannot be taken.
func (m *Monitor) Append(it Item) error {
	switch it.Kind {
	case ItemEvent:
		// Events whose name no automaton watches self-loop every state:
		// nothing changes, and active policies cannot newly violate (the
		// invariant that active policies are never in final states is
		// maintained by the open/event cases below).
		if m.ct.WatchedMask(it.Event.Name) == 0 {
			break
		}
		// Tentatively step every automaton, then check active policies.
		for i := range m.states {
			m.scratch[i] = m.ct.At(i).Step(m.states[i], it.Event)
		}
		for i, n := range m.active {
			if n <= 0 {
				continue
			}
			if m.ct.At(i).Final(m.scratch[i]) {
				return &ViolationError{Policy: m.ct.IDs()[i], At: m.length + 1}
			}
		}
		copy(m.states, m.scratch)
		m.sig = ""
	case ItemFrameOpen:
		if it.Policy == hexpr.NoPolicy {
			m.opened++
			m.sig = ""
			break
		}
		i := m.ct.Index(it.Policy)
		if i < 0 {
			return &ViolationError{Policy: it.Policy, At: m.length + 1}
		}
		// History dependence: the past must already respect the newly
		// activated policy.
		if m.ct.At(int(i)).Final(m.states[i]) {
			return &ViolationError{Policy: it.Policy, At: m.length + 1}
		}
		m.active[i]++
		m.sig = ""
	case ItemFrameClose:
		if it.Policy == hexpr.NoPolicy {
			if m.opened == 0 {
				return &NestingError{Item: it}
			}
			m.opened--
			m.sig = ""
			break
		}
		i := m.ct.Index(it.Policy)
		if i < 0 || m.active[i] == 0 {
			return &NestingError{Item: it}
		}
		m.active[i]--
		m.sig = ""
	}
	m.length++
	return nil
}

// InertFor reports whether appending the items would provably leave the
// monitor's abstract state unchanged and violation-free: every item must
// be a plain event whose name no policy automaton has an edge on (a bitset
// membership test against the table's watched-event index), so every
// automaton self-loops and no active policy can newly violate.
// Explorations use this to share a monitor across such moves instead of
// snapshotting and re-appending.
func (m *Monitor) InertFor(items []Item) bool {
	for _, it := range items {
		if it.Kind != ItemEvent || m.ct.WatchedMask(it.Event.Name) != 0 {
			return false
		}
	}
	return true
}

// AppendAll consumes a whole history, stopping at the first error.
func (m *Monitor) AppendAll(h History) error {
	for _, it := range h {
		if err := m.Append(it); err != nil {
			return err
		}
	}
	return nil
}

// Signature returns a canonical string of the monitor's abstract state —
// the policy-automaton state sets and the active multiset, but not the
// history length. Two monitors with equal signatures accept exactly the
// same future histories, which is what makes state-space exploration
// finite (internal/verify keys configurations on it).
// The signature is cached between calls and invalidated only by state
// changes; the policy order is the compiled table's sorted order, so no
// per-call sorting happens.
func (m *Monitor) Signature() string {
	if m.sig != "" {
		return m.sig
	}
	ids := m.ct.IDs()
	buf := make([]byte, 0, 8+16*len(ids))
	for i, id := range ids {
		buf = append(buf, id...)
		buf = append(buf, '=')
		buf = strconv.AppendUint(buf, uint64(m.states[i]), 16)
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, int64(m.active[i]), 10)
		buf = append(buf, ';')
	}
	buf = append(buf, '#')
	buf = strconv.AppendInt(buf, int64(m.opened), 10)
	m.sig = string(buf)
	return m.sig
}

// Snapshot returns a deep copy of the monitor, so explorations can branch.
func (m *Monitor) Snapshot() *Monitor {
	out := &Monitor{
		table:   m.table,
		ct:      m.ct,
		states:  append([]policy.StateSet(nil), m.states...),
		active:  append([]int32(nil), m.active...),
		scratch: make([]policy.StateSet, len(m.scratch)),
		opened:  m.opened,
		length:  m.length,
		sig:     m.sig,
	}
	return out
}
