// Package govet is the engine's meta-linter: a self-contained static
// analyzer over the *Go source of this repository* that proves, at CI
// time, the safety invariants the exploration engines rely on — the same
// static-first programme the paper applies to services, turned on the
// checker itself. Where internal/lint analyses specification files,
// govet analyses the packages that analyse them: every worklist loop
// must charge its budget.Budget, no Unknown verdict may reach the
// persistent store, a field touched through sync/atomic must be atomic
// everywhere, every engine goroutine needs a cancellation path, and the
// CLI's error paths must flow through the 0/1/2/3 exit protocol.
//
// The driver is standard library only (go/parser, go/ast, go/types with
// the source importer — no golang.org/x/tools), matching the module's
// zero-dependency rule. Analyzers emit lint.Diagnostic-shaped findings
// under stable SVET codes; deliberate exceptions carry an explicit
//
//	//suscvet:ignore SVETnnn reason
//
// pragma which the driver honours and counts (and polices: an unknown
// code or a missing reason in a pragma is itself a finding).
package govet

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic codes, one per invariant. Codes are stable public API: CI,
// pragmas and tests key on them.
const (
	// CodeBadPragma: a //suscvet:ignore pragma naming an unregistered
	// code, or carrying no reason — suppressions must stay auditable.
	CodeBadPragma = "SVET000"
	// CodeBudgetLoop: a worklist loop in an exploration package drains a
	// frontier without charging the budget.Budget — under a -timeout or a
	// cancelled context the loop would churn on, unbounded.
	CodeBudgetLoop = "SVET001"
	// CodeUnknownPersist: a persistent-store write site is reachable
	// without an Unknown/error guard — a budget-degraded verdict could be
	// cached and poison every later run.
	CodeUnknownPersist = "SVET002"
	// CodeAtomicField: a struct field is accessed through sync/atomic in
	// one place and plainly in another — a latent data race the race
	// detector only sees on the schedule that loses.
	CodeAtomicField = "SVET003"
	// CodeLeakyGo: an engine goroutine loops without a cancellation path
	// (context, done-channel receive, channel-range inbox or budget
	// poll) — it would outlive a cancelled run.
	CodeLeakyGo = "SVET004"
	// CodeExitProto: a bare os.Exit (or log.Fatal) in the CLI bypasses
	// the 0/1/2/3 exit-code protocol that CI and the timeout smoke tests
	// key on.
	CodeExitProto = "SVET005"
)

// Diagnostic is one positioned finding — the same shape as
// internal/lint's Diagnostic, flattened to file:line:col since Go
// positions come from a token.FileSet rather than a parser span table.
type Diagnostic struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional single-line form
// "file:line:col: message [CODE]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Code)
}

// MarshalNDJSON renders the diagnostic as one NDJSON line.
func (d Diagnostic) MarshalNDJSON() ([]byte, error) { return json.Marshal(d) }

// An Analyzer is one named invariant checker. Run inspects a single
// package; Finish, when non-nil, runs once after every package has been
// visited (for whole-module invariants like atomicfield's
// anywhere/everywhere rule).
type Analyzer struct {
	Name string
	Code string
	Doc  string
	Run  func(*Pass)
	// Finish reports findings that need the whole module's facts.
	Finish func(*Checker)
}

// Analyzers returns the default suite, in running order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		budgetLoopAnalyzer,
		unknownPersistAnalyzer,
		atomicFieldAnalyzer,
		leakyGoAnalyzer,
		exitProtoAnalyzer,
	}
}

// Codes returns every registered diagnostic code, driver codes included,
// sorted.
func Codes() []string {
	out := []string{CodeBadPragma}
	for _, a := range Analyzers() {
		out = append(out, a.Code)
	}
	sort.Strings(out)
	return out
}

// Config scopes the analyzers to the packages whose invariants they
// encode. Each entry is matched against a package's import path on
// whole-segment boundaries ("cmd/susc" matches "susc/cmd/susc" but not
// "susc/cmd/suscvet").
type Config struct {
	// BudgetPackages hold the exploration engines: every worklist loop in
	// them must charge a budget.
	BudgetPackages []string
	// GoroutinePackages hold the engine code whose goroutines must be
	// cancellable.
	GoroutinePackages []string
	// ExitPackages hold the CLI whose error paths must flow through the
	// exit protocol.
	ExitPackages []string
}

// DefaultConfig scopes the suite to this repository's engine layout.
func DefaultConfig() Config {
	return Config{
		BudgetPackages: []string{
			"internal/lts", "internal/verify", "internal/plans", "internal/valid",
		},
		GoroutinePackages: []string{
			"internal/plans", "internal/verify", "internal/lts", "internal/valid",
			"internal/memo", "internal/store", "internal/network", "internal/lint",
			"internal/compliance", "internal/autom", "internal/server", "internal/engine",
		},
		ExitPackages: []string{"cmd/susc"},
	}
}

// pkgMatch reports whether the import path matches one of the patterns on
// whole-segment boundaries.
func pkgMatch(path string, pats []string) bool {
	for _, p := range pats {
		if path == p || strings.HasSuffix(path, "/"+p) ||
			strings.HasPrefix(path, p+"/") || strings.Contains(path, "/"+p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's visit of one package.
type Pass struct {
	*Checker
	Pkg *Package
}

// Reportf adds a finding anchored at pos.
func (p *Pass) Reportf(pos token.Pos, code, format string, args ...interface{}) {
	p.Checker.reportf(pos, code, format, args...)
}

// AnalyzerStat is the per-analyzer yield of one run.
type AnalyzerStat struct {
	Name       string
	Findings   int
	Suppressed int
}

// Checker runs the analyzer suite over a set of loaded packages.
type Checker struct {
	Config    Config
	Loader    *Loader
	Analyzers []*Analyzer

	diags   []Diagnostic
	state   map[string]interface{}
	pragmas []pragma
	stats   map[string]*AnalyzerStat
	byCode  map[string]string // code -> analyzer name
}

// New returns a checker with the default analyzer suite.
func New(l *Loader, cfg Config) *Checker {
	c := &Checker{
		Config:    cfg,
		Loader:    l,
		Analyzers: Analyzers(),
		state:     map[string]interface{}{},
		stats:     map[string]*AnalyzerStat{},
		byCode:    map[string]string{},
	}
	for _, a := range c.Analyzers {
		c.byCode[a.Code] = a.Name
	}
	c.byCode[CodeBadPragma] = "driver"
	return c
}

// State returns (lazily creating) the analyzer's cross-package state.
func (c *Checker) State(name string, mk func() interface{}) interface{} {
	if v, ok := c.state[name]; ok {
		return v
	}
	v := mk()
	c.state[name] = v
	return v
}

// Position resolves a token.Pos to a module-relative position.
func (c *Checker) Position(pos token.Pos) token.Position {
	p := c.Loader.Fset.Position(pos)
	if rel, err := filepath.Rel(c.Loader.Root, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		p.Filename = rel
	}
	return p
}

func (c *Checker) reportf(pos token.Pos, code, format string, args ...interface{}) {
	p := c.Position(pos)
	c.diags = append(c.diags, Diagnostic{
		Code:     code,
		Severity: SeverityOf(code),
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SeverityOf maps a diagnostic code to its severity. The engine
// invariants (SVET001…) are errors — each one is a latent runaway loop,
// cache poisoning or race; the driver's pragma hygiene (SVET000) is a
// warning — the suppression is merely unauditable, the code it hides is
// still checked.
func SeverityOf(code string) string {
	if code == CodeBadPragma {
		return "warning"
	}
	return "error"
}

// Run analyses the packages and returns the findings that survive the
// pragma filter, deduplicated and ordered by position then code.
func (c *Checker) Run(pkgs []*Package) []Diagnostic {
	for _, a := range c.Analyzers {
		c.stats[a.Name] = &AnalyzerStat{Name: a.Name}
	}
	c.stats["driver"] = &AnalyzerStat{Name: "driver"}
	for _, pkg := range pkgs {
		c.collectPragmas(pkg)
		for _, a := range c.Analyzers {
			before := len(c.diags)
			a.Run(&Pass{Checker: c, Pkg: pkg})
			c.stats[a.Name].Findings += len(c.diags) - before
		}
	}
	for _, a := range c.Analyzers {
		if a.Finish != nil {
			before := len(c.diags)
			a.Finish(c)
			c.stats[a.Name].Findings += len(c.diags) - before
		}
	}
	return c.finish()
}

// Stats returns per-analyzer finding and suppression counts, sorted by
// analyzer name, after Run.
func (c *Checker) Stats() []AnalyzerStat {
	var out []AnalyzerStat
	for _, s := range c.stats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// pragma is one parsed //suscvet:ignore comment.
type pragma struct {
	file   string // module-relative
	line   int
	code   string
	reason string
	pos    token.Pos
	used   bool
}

var pragmaRe = regexp.MustCompile(`^//suscvet:ignore\s+(\S+)\s*(.*)$`)

// collectPragmas scans the package's comments for //suscvet:ignore
// directives. A malformed pragma (unknown code, missing reason) is itself
// a finding: suppressions must stay auditable.
func (c *Checker) collectPragmas(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				m := pragmaRe.FindStringSubmatch(cm.Text)
				if m == nil {
					continue
				}
				code, reason := m[1], strings.TrimSpace(m[2])
				p := c.Position(cm.Pos())
				if _, known := c.byCode[code]; !known {
					c.reportf(cm.Pos(), CodeBadPragma,
						"pragma ignores unknown code %s (registered: %s)", code, strings.Join(Codes(), ", "))
					continue
				}
				if reason == "" {
					c.reportf(cm.Pos(), CodeBadPragma,
						"pragma ignoring %s gives no reason; write //suscvet:ignore %s why-this-is-safe", code, code)
					continue
				}
				c.pragmas = append(c.pragmas, pragma{
					file: p.Filename, line: p.Line, code: code, reason: reason, pos: cm.Pos(),
				})
			}
		}
	}
}

// finish applies pragmas, dedups and orders the findings. A pragma
// suppresses findings of its code on its own line or the line directly
// below (the pragma-above-the-statement style).
func (c *Checker) finish() []Diagnostic {
	var kept []Diagnostic
	for _, d := range c.diags {
		suppressed := false
		for i := range c.pragmas {
			pr := &c.pragmas[i]
			if pr.code != d.Code || pr.file != d.File {
				continue
			}
			if pr.line == d.Line || pr.line == d.Line-1 {
				pr.used = true
				suppressed = true
				break
			}
		}
		if suppressed {
			if name, ok := c.byCode[d.Code]; ok {
				c.stats[name].Suppressed++
				c.stats[name].Findings--
			}
			continue
		}
		kept = append(kept, d)
	}
	sort.SliceStable(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
	out := kept[:0]
	for i, d := range kept {
		if i > 0 && d == kept[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Suppressed returns the total number of findings pragmas swallowed.
func (c *Checker) Suppressed() int {
	n := 0
	for _, s := range c.stats {
		n += s.Suppressed
	}
	return n
}

// UnusedPragmas returns the pragmas that suppressed nothing in this run —
// stale exceptions worth deleting. They are reported through -stats, not
// as findings, so a fixed invariant does not fail CI twice.
func (c *Checker) UnusedPragmas() []string {
	var out []string
	for _, p := range c.pragmas {
		if !p.used {
			out = append(out, fmt.Sprintf("%s:%d: unused //suscvet:ignore %s (%s)", p.file, p.line, p.code, p.reason))
		}
	}
	sort.Strings(out)
	return out
}

// ---- shared AST / type helpers used by the analyzers ----

// walkStack walks the AST keeping the ancestor stack; fn returning false
// prunes the subtree. The stack passed to fn excludes n itself.
// ast.Inspect calls fn(nil) after a subtree it descended into, which is
// exactly the pop; a pruned node is never pushed and gets no pop.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// pkgPathIs reports whether the object's package import path ends in the
// given suffix on a segment boundary ("internal/budget" matches
// "susc/internal/budget").
func pkgPathIs(p *types.Package, suffix string) bool {
	if p == nil {
		return false
	}
	return p.Path() == suffix || strings.HasSuffix(p.Path(), "/"+suffix)
}

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// isTypeFrom reports whether t (possibly behind pointers) is the named
// type pkgSuffix.name.
func isTypeFrom(t types.Type, pkgSuffix, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	return n.Obj().Name() == name && pkgPathIs(n.Obj().Pkg(), pkgSuffix)
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (function or method), or nil for indirect/builtin calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.F).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBudgetCall reports whether the call invokes any method of
// *budget.Budget (ConsumeStates, ConsumeEdges, Check, Exhausted, Err…) —
// every one of them observes the sticky failure and polls cancellation,
// so any of them gives a loop its cutoff path.
func isBudgetCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isTypeFrom(sig.Recv().Type(), "internal/budget", "Budget")
}

// exprObj resolves an identifier or field selection to its object — the
// "container identity" the budgetloop analyzer tracks across a loop and
// its callees. Locals resolve to their *types.Var; field selections
// resolve to the field's *types.Var (shared across receivers).
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil {
			return o
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// funcBody returns the declaration and owning package of a resolved
// function, when its source is part of the loaded module.
func (c *Checker) funcBody(f *types.Func) (*Package, *ast.FuncDecl) {
	if f == nil || f.Pkg() == nil {
		return nil, nil
	}
	pkg := c.Loader.Loaded(f.Pkg().Path())
	if pkg == nil {
		return nil, nil
	}
	return pkg, pkg.FuncDecl(f)
}
