package govet

import (
	"go/ast"
	"go/types"
)

// budgetloop: every worklist loop in an exploration package must charge
// the budget. A "worklist loop" is a for statement whose condition
// measures a container (builtin len, or a .Len() method) that the loop
// body also GROWS — append or a Push-like method, directly or through a
// shallow callee. That is the expand-the-frontier shape whose trip
// count is data-dependent and unbounded without metering. Loops that
// only shrink what they measure (skip-a-prefix drains, hand-off Pop
// loops) do at most their initial length of work, which whoever built
// the container already paid for; plain fixed-slice iteration and
// intentionally infinite `for {}` server loops are likewise out of
// scope — the latter are the worker loops whose cutoff is leakygo's
// concern.
//
// A loop is considered charged when any path through its body (including
// callees up to a small depth) invokes any *budget.Budget method —
// every method observes the sticky exhaustion and polls cancellation, so
// each one gives the loop a cutoff.
var budgetLoopAnalyzer = &Analyzer{
	Name: "budgetloop",
	Code: CodeBudgetLoop,
	Doc:  "frontier-draining loops in exploration packages must charge the budget.Budget",
	Run:  runBudgetLoop,
}

func runBudgetLoop(p *Pass) {
	if !pkgMatch(p.Pkg.Path, p.Config.BudgetPackages) {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond == nil || loop.Body == nil {
				return true
			}
			containers := worklistContainers(info, loop.Cond)
			if len(containers) == 0 {
				return true
			}
			if !growsContainer(p.Checker, p.Pkg, loop.Body, containers, 1) {
				return true
			}
			if chargesBudget(p.Checker, p.Pkg, loop.Body, 3) {
				return true
			}
			name := "worklist"
			for _, obj := range containers {
				if obj != nil {
					name = obj.Name()
					break
				}
			}
			p.Reportf(loop.Pos(), CodeBudgetLoop,
				"worklist loop grows %q without charging the budget; call a *budget.Budget method (ConsumeStates/Check/Exhausted) on every iteration path", name)
			return true
		})
	}
}

// worklistContainers extracts the objects whose size the loop condition
// measures: len(x) for the builtin, or x.Len() for queue types.
func worklistContainers(info *types.Info, cond ast.Expr) []types.Object {
	var out []types.Object
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "len" && len(call.Args) == 1 {
				if obj := exprObj(info, call.Args[0]); obj != nil {
					out = append(out, obj)
				}
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Len" && len(call.Args) == 0 {
				if obj := exprObj(info, fun.X); obj != nil {
					out = append(out, obj)
				}
			}
		}
		return true
	})
	return out
}

// growsContainer reports whether the body (or a module-local callee, up
// to depth) adds elements to one of the containers: an append(c, …)
// call, or a Push-like method call on it. Depth-limited callee descent
// catches the lts shape where the loop grows l.States through a helper.
// Shrinking assignments (q = q[1:], stack = stack[:n-1]) deliberately
// do not count — a drain-only loop is bounded by its initial contents.
func growsContainer(c *Checker, pkg *Package, body ast.Node, containers []types.Object, depth int) bool {
	has := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		for _, o := range containers {
			if o == obj {
				return true
			}
		}
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		x, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" &&
				len(x.Args) > 0 && has(exprObj(pkg.Info, x.Args[0])) {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if growingMethodName(fun.Sel.Name) && has(exprObj(pkg.Info, fun.X)) {
				found = true
				return false
			}
		}
		if depth > 0 {
			if cpkg, decl := c.funcBody(calleeFunc(pkg.Info, x)); decl != nil && decl.Body != nil {
				if growsContainer(c, cpkg, decl.Body, containers, depth-1) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func growingMethodName(name string) bool {
	switch name {
	case "Push", "PushBack", "Add", "Append", "Insert", "Enqueue":
		return true
	}
	return false
}

// chargesBudget reports whether the node (or a module-local callee up to
// depth) invokes any *budget.Budget method.
func chargesBudget(c *Checker, pkg *Package, node ast.Node, depth int) bool {
	found := false
	seen := map[*types.Func]bool{}
	var scan func(p *Package, n ast.Node, d int)
	scan = func(p *Package, n ast.Node, d int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isBudgetCall(p.Info, call) {
				found = true
				return false
			}
			if d > 0 {
				if fn := calleeFunc(p.Info, call); fn != nil && !seen[fn] {
					seen[fn] = true
					if cpkg, decl := c.funcBody(fn); decl != nil && decl.Body != nil {
						scan(cpkg, decl.Body, d-1)
					}
				}
			}
			return true
		})
	}
	scan(pkg, node, depth)
	return found
}
