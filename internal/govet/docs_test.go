package govet_test

import (
	"os"
	"regexp"
	"testing"

	"susc/internal/govet"
)

var svetCodeRe = regexp.MustCompile(`SVET\d{3}`)

// TestSvetCodesDocumented mirrors the lint registry's drift guard for
// the meta-linter: every registered SVET code appears in DESIGN.md and
// the README, and neither document mentions a code the driver does not
// register.
func TestSvetCodesDocumented(t *testing.T) {
	registered := map[string]bool{}
	for _, c := range govet.Codes() {
		registered[c] = true
	}
	for _, path := range []string{"../../DESIGN.md", "../../README.md"} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mentioned := map[string]bool{}
		for _, m := range svetCodeRe.FindAllString(string(data), -1) {
			mentioned[m] = true
		}
		for code := range registered {
			if !mentioned[code] {
				t.Errorf("%s: registered suscvet code %s is not documented", path, code)
			}
		}
		for code := range mentioned {
			if !registered[code] {
				t.Errorf("%s: documents %s, which suscvet does not register", path, code)
			}
		}
	}
}
