// Command susc is the exitproto (SVET005) fixture: the analyzer scopes
// to cmd/susc, so this miniature carries both the sanctioned exit shape
// and the violations.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
)

// exitCode is the sanctioned translator from errors to the 0/1/2/3
// protocol.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	return 1
}

func run() error { return errors.New("findings") }

func main() {
	err := run()
	if err != nil && err.Error() == "fatal" {
		log.Fatalf("boom: %v", err) // want `log.Fatalf exits with an untyped status 1`
	}
	if err != nil && err.Error() == "impatient" {
		os.Exit(9) // want `bare os.Exit bypasses the 0/1/2/3 exit protocol`
	}
	os.Exit(exitCode(err))
}

// helper exits through the translator but outside main — still a
// finding: only main may terminate the process.
func helper(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(exitCode(err)) // want `bare os.Exit bypasses the 0/1/2/3 exit protocol`
}
