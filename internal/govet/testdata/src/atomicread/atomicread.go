// Package atomicread is the plain side of the cross-package atomicfield
// fixture: atomicmix increments Counters.Ops through sync/atomic; the
// read below never does. The analyzer joins the two facts only after
// every package has been visited.
package atomicread

import "fixture/atomicmix"

// Dump reads the counter plainly: flagged against the atomic site in
// the other package.
func Dump(c *atomicmix.Counters) uint64 {
	return c.Ops // want `field atomicmix.Ops is accessed via sync/atomic`
}
