// Package budget is a stub of the engine's budget package. The analyzers
// match the meter type by import-path suffix (internal/budget.Budget),
// so fixture code exercises the real detection paths against this
// miniature without importing the module under test.
package budget

// ExhaustedError mirrors the sticky exhaustion error.
type ExhaustedError struct{ Reason string }

func (e *ExhaustedError) Error() string { return "budget exhausted: " + e.Reason }

// Budget is the stub work meter; nil-safe like the real one.
type Budget struct {
	states int64
	max    int64
}

// ConsumeStates charges n states.
func (b *Budget) ConsumeStates(n int64) *ExhaustedError {
	if b == nil {
		return nil
	}
	b.states += n
	if b.max > 0 && b.states > b.max {
		return &ExhaustedError{Reason: "states"}
	}
	return nil
}

// Check polls for exhaustion without charging.
func (b *Budget) Check() *ExhaustedError {
	if b == nil {
		return nil
	}
	if b.max > 0 && b.states > b.max {
		return &ExhaustedError{Reason: "states"}
	}
	return nil
}

// Exhausted reports the sticky failure, if any.
func (b *Budget) Exhausted() *ExhaustedError { return b.Check() }
