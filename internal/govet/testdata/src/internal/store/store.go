// Package store is a stub of the engine's persistent verdict store. The
// nounknownpersist analyzer matches the write sites by import-path
// suffix (internal/store.Store), so fixture code triggers the same
// detection against this miniature.
package store

// Kind tags a record family.
type Kind uint8

// KindCompliance is the only kind the fixtures need.
const KindCompliance Kind = 1

// Sum is a content hash.
type Sum [32]byte

// Store is the stub persistent log.
type Store struct {
	records map[Kind]map[Sum][]byte
}

// Put appends one record.
func (s *Store) Put(k Kind, sum Sum, value []byte) error {
	if s.records == nil {
		s.records = map[Kind]map[Sum][]byte{}
	}
	if s.records[k] == nil {
		s.records[k] = map[Sum][]byte{}
	}
	s.records[k][sum] = value
	return nil
}

// Get probes for a record.
func (s *Store) Get(k Kind, sum Sum) ([]byte, bool) {
	v, ok := s.records[k][sum]
	return v, ok
}
