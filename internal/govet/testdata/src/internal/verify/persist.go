// Package verify holds the nounknownpersist (SVET002) fixtures: store
// writes with and without the guards the analyzer recognises.
package verify

import "fixture/internal/store"

// Verdict mirrors the engine's three-valued outcome.
type Verdict int

// The verdicts; Unknown is the one that must never be persisted.
const (
	Valid Verdict = iota
	Violation
	Unknown
)

type result struct {
	verdict Verdict
	err     error
}

// PersistUnguarded writes whatever it was handed: the canonical finding.
func PersistUnguarded(s *store.Store, sum store.Sum, raw []byte) {
	s.Put(store.KindCompliance, sum, raw) // want `store write is reachable without an Unknown/exhausted guard`
}

// PersistGuarded discriminates on Unknown around the write: clean.
func PersistGuarded(s *store.Store, sum store.Sum, r result, raw []byte) {
	if r.verdict != Unknown {
		s.Put(store.KindCompliance, sum, raw)
	}
}

// PersistEarlyReturn uses the early-return idiom: clean.
func PersistEarlyReturn(s *store.Store, sum store.Sum, r result, raw []byte) {
	if r.verdict == Unknown {
		return
	}
	s.Put(store.KindCompliance, sum, raw)
}

// PersistErrNil gates on a nil error: clean.
func PersistErrNil(s *store.Store, sum store.Sum, r result, raw []byte) {
	if r.err == nil {
		s.Put(store.KindCompliance, sum, raw)
	}
}

// persistable is the predicate-function guard shape.
func persistable(r result) bool { return r.verdict != Unknown && r.err == nil }

// PersistPredicate gates on the predicate: clean.
func PersistPredicate(s *store.Store, sum store.Sum, r result, raw []byte) {
	if persistable(r) {
		s.Put(store.KindCompliance, sum, raw)
	}
}

// PersistNonGuardIf sits inside an if, but one that discriminates on
// nothing verdict-shaped — still a finding.
func PersistNonGuardIf(s *store.Store, sum store.Sum, raw []byte) {
	if len(raw) > 0 {
		s.Put(store.KindCompliance, sum, raw) // want `store write is reachable without an Unknown/exhausted guard`
	}
}
