// Package plans holds the leakygo (SVET004) fixtures: the import path
// ends in internal/plans, one of the engine packages the analyzer
// scopes to.
package plans

import (
	"context"

	"fixture/internal/budget"
)

// LeakyWorker loops forever with no way to hear a cancellation: the
// canonical finding. The send on out is not a receive — a blocked send
// is how the leak manifests, not how it is avoided.
func LeakyWorker(jobs []int, out chan<- int) {
	go func() { // want `goroutine loops without a cancellation path`
		total := 0
		for {
			for _, j := range jobs {
				total += j
			}
			out <- total
		}
	}()
}

// InboxWorker ranges over a channel: the inbox-close idiom, clean by
// construction.
func InboxWorker(jobs <-chan int, out chan<- int) {
	go func() {
		for j := range jobs {
			out <- j * 2
		}
	}()
}

// DoneWorker selects on a done channel: clean.
func DoneWorker(done <-chan struct{}, out chan<- int) {
	go func() {
		i := 0
		for {
			select {
			case out <- i:
				i++
			case <-done:
				return
			}
		}
	}()
}

// CtxWorker holds a context it can poll: clean.
func CtxWorker(ctx context.Context, out chan<- int) {
	go func() {
		for i := 0; ; i++ {
			if ctx.Err() != nil {
				return
			}
			out <- i
		}
	}()
}

// BudgetWorker polls the budget, whose Check observes cancellation:
// clean.
func BudgetWorker(b *budget.Budget, out chan<- int) {
	go func() {
		for i := 0; i < 1000; i++ {
			if b.Check() != nil {
				return
			}
			out <- i
		}
	}()
}

// FireOnce has no loop at all — it terminates on its own: out of scope.
func FireOnce(out chan<- int) {
	go func() { out <- 1 }()
}

// spin is a declared worker body: detection must resolve the go'd
// function to its declaration.
func spin(vals []int, out chan<- int) {
	for {
		for _, v := range vals {
			out <- v
		}
	}
}

// NamedLoop launches the declared uncancellable worker: flagged at the
// go statement.
func NamedLoop(vals []int, out chan<- int) {
	go spin(vals, out) // want `goroutine loops without a cancellation path`
}
