// Package valid holds the budgetloop (SVET001) fixtures: the import
// path ends in internal/valid, one of the exploration packages the
// analyzer scopes to.
package valid

import "fixture/internal/budget"

// BadBFS grows its frontier without ever consulting the budget: the
// canonical finding.
func BadBFS(edges [][]int) int {
	visited := 0
	queue := []int{0}
	seen := map[int]bool{0: true}
	for len(queue) > 0 { // want `worklist loop grows "queue" without charging the budget`
		n := queue[0]
		queue = queue[1:]
		visited++
		for _, m := range edges[n] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	return visited
}

// GoodBFS charges one state per pop: clean.
func GoodBFS(edges [][]int, b *budget.Budget) (int, error) {
	visited := 0
	queue := []int{0}
	seen := map[int]bool{0: true}
	for len(queue) > 0 {
		if err := b.ConsumeStates(1); err != nil {
			return visited, err
		}
		n := queue[0]
		queue = queue[1:]
		visited++
		for _, m := range edges[n] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	return visited, nil
}

// DrainOnly pops a prefix and never grows what it measures — bounded by
// its initial contents, out of scope.
func DrainOnly(pending []int) int {
	total := 0
	for len(pending) > 0 {
		total += pending[0]
		pending = pending[1:]
	}
	return total
}

// FixedIteration never mutates what it measures: out of scope.
func FixedIteration(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// builder mirrors the lts shape: the loop grows the measured slice
// through a helper, so detection must descend one call deep.
type builder struct{ states []int }

func (b *builder) add(s int) { b.states = append(b.states, s) }

// GrowViaHelper is flagged even though the append hides in the callee.
func (b *builder) GrowViaHelper() {
	for i := 0; i < len(b.states); i++ { // want `worklist loop grows "states" without charging the budget`
		if b.states[i] < 10 {
			b.add(b.states[i] + 1)
		}
	}
}

// chargedPop pushes the budget poll into a helper; charge detection must
// descend into callees too.
func chargedPop(b *budget.Budget) error {
	if err := b.Check(); err != nil {
		return err
	}
	return nil
}

// ChargeViaHelper is clean: the budget poll lives one call down.
func ChargeViaHelper(edges [][]int, bud *budget.Budget) error {
	queue := []int{0}
	seen := map[int]bool{0: true}
	for len(queue) > 0 {
		if err := chargedPop(bud); err != nil {
			return err
		}
		n := queue[0]
		queue = queue[1:]
		for _, m := range edges[n] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	return nil
}

// ring is a Len/Push/Pop queue: the method-call worklist shape.
type ring struct{ buf []int }

func (r *ring) Len() int   { return len(r.buf) }
func (r *ring) Push(v int) { r.buf = append(r.buf, v) }
func (r *ring) Pop() int {
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

// MethodQueueBad grows a Len()-measured queue without the budget.
func MethodQueueBad(edges [][]int, seen []bool) int {
	var q ring
	q.Push(0)
	visited := 0
	for q.Len() > 0 { // want `worklist loop grows "q" without charging the budget`
		n := q.Pop()
		visited++
		for _, m := range edges[n] {
			if !seen[m] {
				seen[m] = true
				q.Push(m)
			}
		}
	}
	return visited
}

// MethodQueueGood is the same shape with a budget poll: clean.
func MethodQueueGood(edges [][]int, seen []bool, b *budget.Budget) (int, error) {
	var q ring
	q.Push(0)
	visited := 0
	for q.Len() > 0 {
		if err := b.ConsumeStates(1); err != nil {
			return visited, err
		}
		n := q.Pop()
		visited++
		for _, m := range edges[n] {
			if !seen[m] {
				seen[m] = true
				q.Push(m)
			}
		}
	}
	return visited, nil
}
