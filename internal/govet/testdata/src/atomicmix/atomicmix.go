// Package atomicmix holds the atomicfield (SVET003) fixtures. The
// analyzer is module-global and unscoped, so the package path does not
// matter; package atomicread carries the plain side of Counters.Ops so
// the cross-package join is exercised too.
package atomicmix

import "sync/atomic"

type stats struct {
	// hits is written atomically in Bump but read plainly in Read: the
	// canonical mixed access.
	hits uint64
	// misses is only ever touched through sync/atomic: clean.
	misses uint64
	// plain is never touched through sync/atomic: clean.
	plain uint64
	// typed uses the typed atomics, which cannot be mixed: clean.
	typed atomic.Uint64
}

// Bump is the atomic side.
func (s *stats) Bump() {
	atomic.AddUint64(&s.hits, 1)
	atomic.AddUint64(&s.misses, 1)
	s.plain++
	s.typed.Add(1)
}

// Read mixes a plain load of hits in with correctly-atomic reads.
func (s *stats) Read() uint64 {
	total := s.hits // want `field atomicmix.hits is accessed via sync/atomic`
	total += atomic.LoadUint64(&s.misses)
	total += s.plain
	total += s.typed.Load()
	return total
}

// Counters is the exported cross-package face: the atomic side lives
// here, the plain read in package atomicread — the shape of an engine
// counter bumped in one package and printed from another.
type Counters struct {
	// Ops is incremented atomically by Inc.
	Ops uint64
}

// Inc is the atomic side of Counters.Ops.
func (c *Counters) Inc() { atomic.AddUint64(&c.Ops, 1) }
