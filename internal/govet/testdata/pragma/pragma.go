// Package pragma exercises the //suscvet:ignore machinery: a
// well-formed pragma suppresses its finding (and is counted), a pragma
// naming an unknown code or giving no reason is itself a finding and
// suppresses nothing, and a pragma that never fires is surfaced as
// unused. The assertions live in TestPragmas, not in want comments —
// pragma findings anchor on the pragma's own line, which already holds
// the directive.
package pragma

import "pragmafix/internal/store"

// Suppressed: the pragma above the write swallows the SVET002 finding.
func Suppressed(s *store.Store, sum store.Sum, raw []byte) {
	//suscvet:ignore SVET002 fixture: deliberately unguarded write
	s.Put(store.KindCompliance, sum, raw)
}

// UnknownCode: SVET999 is not a registered code — the pragma is a
// SVET000 finding and the write below is still reported.
func UnknownCode(s *store.Store, sum store.Sum, raw []byte) {
	//suscvet:ignore SVET999 no such code
	s.Put(store.KindCompliance, sum, raw)
}

// MissingReason: a reason-less pragma is a SVET000 finding and the
// write below is still reported.
func MissingReason(s *store.Store, sum store.Sum, raw []byte) {
	//suscvet:ignore SVET002
	s.Put(store.KindCompliance, sum, raw)
}

// Unused: a well-formed pragma with nothing to suppress is surfaced
// through the unused-pragma report, not as a finding.
func Unused(s *store.Store) int {
	//suscvet:ignore SVET001 fixture: stale exception
	return 0
}
