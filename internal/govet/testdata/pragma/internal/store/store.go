// Package store is the pragma fixture's stub of the persistent store
// (matched by import-path suffix, like the main fixture's).
package store

// Kind tags a record family.
type Kind uint8

// KindCompliance is the only kind the fixture needs.
const KindCompliance Kind = 1

// Sum is a content hash.
type Sum [32]byte

// Store is the stub persistent log.
type Store struct{ n int }

// Put appends one record.
func (s *Store) Put(k Kind, sum Sum, value []byte) error {
	s.n++
	_ = k
	_ = sum
	_ = value
	return nil
}
