package govet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicfield: a struct field accessed through sync/atomic anywhere must
// be accessed atomically everywhere. Mixed access — atomic.AddUint64 on
// one side, a plain read on the other — is a data race the race detector
// only catches on the interleaving that loses, and the plain read can
// tear or stale-read on weaker memory models. The analyzer is
// module-global: atomic and plain access sites are collected per
// package, then joined after every package has been seen, so a field
// incremented atomically in internal/plans and printed plainly from
// cmd/susc is still caught. Fields migrated to the typed atomics
// (atomic.Uint64 and friends) can't trip this by construction — the
// value is private to the type.
var atomicFieldAnalyzer = &Analyzer{
	Name:   "atomicfield",
	Code:   CodeAtomicField,
	Doc:    "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:    runAtomicField,
	Finish: finishAtomicField,
}

type atomicFieldState struct {
	atomic map[*types.Var][]token.Pos // field -> sync/atomic access sites
	plain  map[*types.Var][]token.Pos // field -> plain access sites
}

func atomicState(c *Checker) *atomicFieldState {
	return c.State("atomicfield", func() interface{} {
		return &atomicFieldState{
			atomic: map[*types.Var][]token.Pos{},
			plain:  map[*types.Var][]token.Pos{},
		}
	}).(*atomicFieldState)
}

func runAtomicField(p *Pass) {
	st := atomicState(p.Checker)
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		// First pass: selector nodes that appear as &x.f arguments to
		// sync/atomic functions are atomic sites, and must not also be
		// counted as plain accesses below.
		atomicArgs := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVar(info, sel); fv != nil {
					atomicArgs[sel] = true
					st.atomic[fv] = append(st.atomic[fv], sel.Pos())
				}
			}
			return true
		})
		// Second pass: every other selection of a plain-integer field.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return true
			}
			fv := fieldVar(info, sel)
			if fv == nil || !isPlainWord(fv.Type()) {
				return true
			}
			st.plain[fv] = append(st.plain[fv], sel.Pos())
			return true
		})
	}
}

func finishAtomicField(c *Checker) {
	st := atomicState(c)
	var mixed []*types.Var
	for fv := range st.atomic {
		if len(st.plain[fv]) > 0 {
			mixed = append(mixed, fv)
		}
	}
	sort.Slice(mixed, func(i, j int) bool { return mixed[i].Pos() < mixed[j].Pos() })
	for _, fv := range mixed {
		plain := st.plain[fv]
		sort.Slice(plain, func(i, j int) bool { return plain[i] < plain[j] })
		at := st.atomic[fv]
		sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
		atPos := c.Position(at[0])
		for _, pos := range plain {
			c.reportf(pos, CodeAtomicField,
				"field %s.%s is accessed via sync/atomic at %s:%d but plainly here; use the typed atomics (atomic.Uint64 et al.) or atomic.Load/Store everywhere",
				ownerName(fv), fv.Name(), atPos.Filename, atPos.Line)
		}
	}
}

// fieldVar resolves a selector to the struct field it selects, or nil
// for methods, package members and qualified identifiers.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isSyncAtomicCall matches calls to package sync/atomic functions (the
// free functions that take &addr — the typed atomics call methods and
// never expose an address).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == "sync/atomic"
}

// isPlainWord reports whether the type is a bare machine word the old
// atomic API operates on — the only types a mixed access can involve.
func isPlainWord(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64,
		types.Uintptr, types.UnsafePointer, types.Int, types.Uint:
		return true
	}
	return false
}

func ownerName(fv *types.Var) string {
	if fv.Pkg() != nil {
		// The field's owner isn't recoverable from the Var alone; the
		// package-qualified field name is unambiguous enough for a human.
		return fv.Pkg().Name()
	}
	return "?"
}
