package govet_test

import (
	"path/filepath"
	"regexp"
	"testing"

	"susc/internal/govet"
)

// want is one expectation parsed from a fixture comment of the form
//
//	// want `regex`
//
// anchored to the comment's own line: the harness demands a finding
// there whose message the regex matches, and rejects any finding no
// want covers — so every clean function in the fixtures is a
// non-triggering assertion.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("^// want `(.+)`$")

func fixtureRun(t *testing.T, rel, module string) (*govet.Checker, []govet.Diagnostic, []want) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", rel))
	if err != nil {
		t.Fatal(err)
	}
	l := govet.NewFixtureLoader(root, module)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", module, err)
	}
	c := govet.New(l, govet.DefaultConfig())
	diags := c.Run(pkgs)

	var wants []want
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					m := wantRe.FindStringSubmatch(cm.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regex %q: %v", m[1], err)
					}
					pos := l.Fset.Position(cm.Pos())
					file, err := filepath.Rel(root, pos.Filename)
					if err != nil {
						t.Fatal(err)
					}
					wants = append(wants, want{file: file, line: pos.Line, re: re})
				}
			}
		}
	}
	return c, diags, wants
}

// TestFixtures runs the full suite over the fixture module and matches
// every finding against the want comments, both directions.
func TestFixtures(t *testing.T) {
	c, diags, wants := fixtureRun(t, "src", "fixture")
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
	// Each analyzer must have fired at least once — a code with zero
	// fixture findings means its triggering case rotted.
	byCode := map[string]int{}
	for _, d := range diags {
		byCode[d.Code]++
	}
	for _, a := range govet.Analyzers() {
		if byCode[a.Code] == 0 {
			t.Errorf("analyzer %s (%s) found nothing in the fixtures", a.Name, a.Code)
		}
	}
	if n := c.Suppressed(); n != 0 {
		t.Errorf("fixture module suppressed %d finding(s); pragmas belong in testdata/pragma", n)
	}
}

// TestPragmas exercises the //suscvet:ignore machinery on its own
// fixture module: suppression is honoured and counted, malformed
// pragmas are findings that suppress nothing, and stale pragmas are
// surfaced as unused.
func TestPragmas(t *testing.T) {
	c, diags, _ := fixtureRun(t, "pragma", "pragmafix")

	byCode := map[string][]govet.Diagnostic{}
	for _, d := range diags {
		byCode[d.Code] = append(byCode[d.Code], d)
	}
	// UnknownCode and MissingReason each yield one SVET000 (the pragma)
	// and one SVET002 (the write the bad pragma failed to suppress);
	// Suppressed yields nothing.
	if got := len(byCode[govet.CodeBadPragma]); got != 2 {
		t.Errorf("SVET000 findings = %d, want 2 (unknown code + missing reason): %v", got, byCode[govet.CodeBadPragma])
	}
	if got := len(byCode[govet.CodeUnknownPersist]); got != 2 {
		t.Errorf("SVET002 findings = %d, want 2 (bad pragmas suppress nothing): %v", got, byCode[govet.CodeUnknownPersist])
	}
	if len(diags) != 4 {
		t.Errorf("total findings = %d, want 4: %v", len(diags), diags)
	}
	var sawUnknown, sawNoReason bool
	for _, d := range byCode[govet.CodeBadPragma] {
		if regexp.MustCompile(`unknown code SVET999`).MatchString(d.Message) {
			sawUnknown = true
		}
		if regexp.MustCompile(`gives no reason`).MatchString(d.Message) {
			sawNoReason = true
		}
	}
	if !sawUnknown || !sawNoReason {
		t.Errorf("SVET000 messages missing unknown-code/no-reason variants: %v", byCode[govet.CodeBadPragma])
	}

	// The well-formed pragma suppressed exactly one SVET002 finding, and
	// the suppression is attributed to the right analyzer in -stats.
	if n := c.Suppressed(); n != 1 {
		t.Errorf("Suppressed() = %d, want 1", n)
	}
	for _, s := range c.Stats() {
		want := 0
		if s.Name == "nounknownpersist" {
			want = 1
		}
		if s.Suppressed != want {
			t.Errorf("stats: %s suppressed = %d, want %d", s.Name, s.Suppressed, want)
		}
	}

	// The stale SVET001 pragma suppressed nothing and is surfaced.
	unused := c.UnusedPragmas()
	if len(unused) != 1 || !regexp.MustCompile(`SVET001`).MatchString(unused[0]) {
		t.Errorf("UnusedPragmas() = %v, want one stale SVET001 entry", unused)
	}
}

// TestRepoClean runs the suite over this repository itself: the tree
// must stay finding-free (deliberate exceptions carry pragmas). This is
// the same gate CI's suscvet job enforces.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module plus the source-importer stdlib")
	}
	l, err := govet.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	c := govet.New(l, govet.DefaultConfig())
	for _, d := range c.Run(pkgs) {
		t.Errorf("repo finding: %s", d)
	}
}
