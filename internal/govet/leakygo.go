package govet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// leakygo: a goroutine launched in an engine package that contains a
// loop must have a cancellation path, or a cancelled run leaks it — the
// goroutine keeps expanding a frontier nobody will read. A cancellation
// path is any of: a channel receive (<-done, or any select with a
// receive arm), ranging over a channel (the inbox-close idiom — the
// range ends when the sender closes), holding a context.Context, or
// polling a *budget.Budget (whose Check observes context cancellation).
// Goroutines whose only loop ranges over a channel are fine by
// construction. Goroutines with no loops at all (fire-one-result
// helpers, wg.Wait+close janitors) terminate on their own and are out
// of scope.
var leakyGoAnalyzer = &Analyzer{
	Name: "leakygo",
	Code: CodeLeakyGo,
	Doc:  "engine goroutines with loops must have a ctx/done/inbox-close cancellation path",
	Run:  runLeakyGo,
}

func runLeakyGo(p *Pass) {
	if !pkgMatch(p.Pkg.Path, p.Config.GoroutinePackages) {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(p.Checker, p.Pkg, g)
			if body == nil {
				return true
			}
			if !hasUncancellableLoop(info, body) {
				return true
			}
			if hasCancelSignal(info, body) {
				return true
			}
			p.Reportf(g.Pos(), CodeLeakyGo,
				"goroutine loops without a cancellation path; give it a context, a done-channel receive, a channel-range inbox, or a budget poll")
			return true
		})
	}
}

// goBody resolves the goroutine's body: a func literal's block, or the
// declaration of a directly-invoked module function.
func goBody(c *Checker, pkg *Package, g *ast.GoStmt) ast.Node {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if f := calleeFunc(pkg.Info, g.Call); f != nil {
		if _, decl := c.funcBody(f); decl != nil && decl.Body != nil {
			return decl.Body
		}
	}
	return nil
}

// hasUncancellableLoop reports whether the body contains a loop that is
// not a range over a channel.
func hasUncancellableLoop(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.ForStmt:
			found = true
		case *ast.RangeStmt:
			if !isChannelExpr(info, x.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasCancelSignal reports whether the body can observe cancellation:
// any receive expression, a channel range, a context.Context value, or
// a budget method call.
func hasCancelSignal(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if isChannelExpr(info, x.X) {
				found = true
			}
		case *ast.CallExpr:
			if isBudgetCall(info, x) {
				found = true
			}
		case *ast.Ident:
			// Bare identifiers denoting objects live in Uses/Defs, not in
			// the Types map — resolve through the object.
			if obj := info.Uses[x]; obj != nil && isTypeFrom(obj.Type(), "context", "Context") {
				found = true
			}
		case ast.Expr:
			if tv, ok := info.Types[x]; ok && isTypeFrom(tv.Type, "context", "Context") {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChannelExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
