package govet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path ("susc/internal/plans")
	Dir   string // absolute directory
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	funcDecls map[*types.Func]*ast.FuncDecl
}

// FuncDecl returns the syntax of a function or method declared in this
// package, or nil.
func (p *Package) FuncDecl(f *types.Func) *ast.FuncDecl {
	return p.funcDecls[f]
}

// Loader parses and type-checks module packages with nothing but the
// standard library: module-internal imports are resolved by recursively
// loading the corresponding directory; everything else (the standard
// library) goes through the source importer. All packages share one
// token.FileSet so positions compare across packages.
type Loader struct {
	Fset   *token.FileSet
	Root   string // absolute module root (directory holding go.mod)
	Module string // module path from go.mod

	std      types.Importer
	pkgs     map[string]*Package // by import path
	loading  map[string]bool     // cycle guard
	TestMode bool                // fixtures: paths are rooted at Root, not Module
}

// NewLoader locates the module root at or above dir and prepares a
// loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("govet: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("govet: no module directive in %s/go.mod", root)
	}
	return NewFixtureLoader(root, mod), nil
}

// NewFixtureLoader builds a loader rooted at an explicit directory with
// an explicit module path — the shape fixture tests use, where a
// testdata tree stands in for a module.
func NewFixtureLoader(root, module string) *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		Root:    root,
		Module:  module,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l
}

// Loaded returns an already-loaded package by import path, or nil.
func (l *Loader) Loaded(path string) *Package { return l.pkgs[path] }

// Import implements types.Importer: module paths recurse into the
// loader, everything else delegates to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// load parses and type-checks one module package (non-test files only),
// memoized.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("govet: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("govet: load %s: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		// Respect build constraints (//go:build lines and _GOOS/_GOARCH
		// filename suffixes) so platform-gated siblings — e.g. a unix
		// flock implementation and its fallback — are not typechecked
		// into the same package.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("govet: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("govet: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("govet: typecheck %s: %w", path, err)
	}

	p := &Package{
		Path:      path,
		Dir:       dir,
		Files:     files,
		Pkg:       tpkg,
		Info:      info,
		funcDecls: map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				p.funcDecls[obj] = fd
			}
		}
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDir loads the package in one directory (given module-relative or
// absolute), returning it.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(l.Root, dir)
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("govet: %s is outside module root %s", dir, l.Root)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// LoadAll walks the module root and loads every package, skipping
// hidden, underscore, vendor and testdata directories. Packages come
// back sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dirs = append(dirs, filepath.Dir(p))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var pkgs []*Package
	for _, d := range dirs {
		if seen[d] {
			continue
		}
		seen[d] = true
		p, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
