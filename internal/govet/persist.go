package govet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// nounknownpersist: no persistent-store write may be reachable with a
// budget-degraded result. A call to (*store.Store).Put must be guarded —
// dominated by a condition that discriminates on an Unknown verdict, a
// budget Exhausted/Err probe, a persistability predicate, or an
// error-nil comparison. Without such a guard, a verdict produced under
// an exhausted budget could be written once and replayed forever: the
// cache-poisoning failure PR 5 and PR 7 were built to exclude.
//
// Two guard shapes are recognised: the Put sits inside an if whose
// condition is a guard, or an earlier statement in the same block is an
// if with a guard condition whose body always leaves (return / continue
// / break / panic) — the early-return idiom.
var unknownPersistAnalyzer = &Analyzer{
	Name: "nounknownpersist",
	Code: CodeUnknownPersist,
	Doc:  "persistent store writes must be guarded against Unknown/exhausted verdicts",
	Run:  runUnknownPersist,
}

func runUnknownPersist(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isStorePut(info, call) {
				return true
			}
			if putIsGuarded(info, call, stack) {
				return true
			}
			p.Reportf(call.Pos(), CodeUnknownPersist,
				"store write is reachable without an Unknown/exhausted guard; gate it on the verdict (v != Unknown, err == nil, or a persistability predicate) so budget-degraded results are never cached")
			return true
		})
	}
}

// isStorePut matches method calls named Put whose receiver is the
// persistent store type (internal/store.Store, behind any pointers).
func isStorePut(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isTypeFrom(sig.Recv().Type(), "internal/store", "Store")
}

// putIsGuarded walks the ancestor chain looking for a dominating guard.
func putIsGuarded(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	// Enclosing if-with-guard: the call lives in the body (or else arm —
	// `if v == Unknown { } else { put }` discriminates just as well) of
	// an if whose condition is a verdict guard.
	for _, anc := range stack {
		if ifs, ok := anc.(*ast.IfStmt); ok && isGuardExpr(info, ifs.Cond) {
			return true
		}
	}
	// Early-return idiom: in any enclosing block, a statement before the
	// one holding the call is an if-guard whose body always leaves.
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		// Find which statement of this block contains the call.
		idx := -1
		for j, st := range block.List {
			if st.Pos() <= call.Pos() && call.End() <= st.End() {
				idx = j
				break
			}
		}
		for j := 0; j < idx; j++ {
			ifs, ok := block.List[j].(*ast.IfStmt)
			if !ok || !isGuardExpr(info, ifs.Cond) {
				continue
			}
			if blockAlwaysLeaves(ifs.Body) {
				return true
			}
		}
	}
	return false
}

// isGuardExpr recognises verdict guards: any mention of an Unknown
// verdict, an Exhausted/Err budget probe, a *persistable* predicate, or
// a nil comparison against an error value.
func isGuardExpr(info *types.Info, cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	guard := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if guard {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if x.Name == "Unknown" {
				guard = true
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				if nameIsGuardFunc(fun.Name) {
					guard = true
				}
			case *ast.SelectorExpr:
				if nameIsGuardFunc(fun.Sel.Name) {
					guard = true
				}
			}
		case *ast.BinaryExpr:
			if (x.Op == token.EQL || x.Op == token.NEQ) && (isNilIdent(x.X) || isNilIdent(x.Y)) {
				other := x.X
				if isNilIdent(x.X) {
					other = x.Y
				}
				if tv, ok := info.Types[other]; ok && typeIsError(tv.Type) {
					guard = true
				}
			}
		}
		return true
	})
	return guard
}

func nameIsGuardFunc(name string) bool {
	low := strings.ToLower(name)
	return low == "exhausted" || strings.Contains(low, "persistable")
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func typeIsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// blockAlwaysLeaves reports whether the block's last statement
// unconditionally exits the surrounding flow.
func blockAlwaysLeaves(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
