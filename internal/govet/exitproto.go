package govet

import (
	"go/ast"
	"go/types"
	"strings"
)

// exitproto: the CLI's exit codes are a protocol — 0 success, 1
// findings, 2 internal error, 3 budget exhausted — that CI smoke tests
// and calling scripts key on. The only place allowed to call os.Exit is
// main, and only with the value produced by the exitCode translator;
// any other os.Exit (or a log.Fatal, which is os.Exit(1) in a trench
// coat) punches an untyped hole in the protocol and, worse, skips the
// deferred drains the signal handler relies on.
var exitProtoAnalyzer = &Analyzer{
	Name: "exitproto",
	Code: CodeExitProto,
	Doc:  "CLI error paths must flow through the exitCode protocol; no bare os.Exit or log.Fatal",
	Run:  runExitProto,
}

func runExitProto(p *Pass) {
	if !pkgMatch(p.Pkg.Path, p.Config.ExitPackages) {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "os" && fn.Name() == "Exit":
				if exitProtoOK(info, call, stack) {
					return true
				}
				p.Reportf(call.Pos(), CodeExitProto,
					"bare os.Exit bypasses the 0/1/2/3 exit protocol; return the error and let main call os.Exit(exitCode(err))")
			case fn.Pkg().Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal"):
				p.Reportf(call.Pos(), CodeExitProto,
					"log.%s exits with an untyped status 1 and skips deferred drains; return the error through the exit protocol instead", fn.Name())
			}
			return true
		})
	}
}

// exitProtoOK allows exactly the sanctioned shape: os.Exit inside func
// main, with the argument produced by the exitCode translator.
func exitProtoOK(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	inMain := false
	for _, anc := range stack {
		if fd, ok := anc.(*ast.FuncDecl); ok && fd.Name.Name == "main" && fd.Recv == nil {
			inMain = true
		}
	}
	if !inMain || len(call.Args) != 1 {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, arg)
	return fn != nil && fn.Name() == "exitCode"
}
