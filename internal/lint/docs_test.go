package lint_test

import (
	"os"
	"regexp"
	"testing"

	"susc/internal/lint"
)

var suscCodeRe = regexp.MustCompile(`SUSC\d{3}`)

// registeredCodes collects every code the lint registry can emit: the
// per-analyzer code lists of both the full suite and the flow-audit
// suite, plus the driver's own internal-error code.
func registeredCodes() map[string]bool {
	out := map[string]bool{lint.CodeInternalError: true}
	for _, a := range lint.AllAnalyzers() {
		for _, c := range a.Codes {
			out[c] = true
		}
	}
	for _, a := range lint.AuditAnalyzers() {
		for _, c := range a.Codes {
			out[c] = true
		}
	}
	return out
}

// TestLintCodesDocumented: every registered SUSC code appears in both
// DESIGN.md and the README, and every SUSC code either document
// mentions is actually registered — the registry and the docs must not
// drift apart in either direction.
func TestLintCodesDocumented(t *testing.T) {
	registered := registeredCodes()
	for _, path := range []string{"../../DESIGN.md", "../../README.md"} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mentioned := map[string]bool{}
		for _, m := range suscCodeRe.FindAllString(string(data), -1) {
			mentioned[m] = true
		}
		for code := range registered {
			if !mentioned[code] {
				t.Errorf("%s: registered lint code %s is not documented", path, code)
			}
		}
		for code := range mentioned {
			if !registered[code] {
				t.Errorf("%s: documents %s, which no analyzer registers", path, code)
			}
		}
	}
}
