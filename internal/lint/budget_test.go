package lint

import (
	"context"
	"strings"
	"testing"

	"susc/internal/budget"
	"susc/internal/faultinject"
)

// TestLintBudgetExhaustionReported: cutting the semantic suite short
// surfaces as a SUSC016 "analysis stopped" diagnostic instead of silently
// truncated findings — a lint run that did not finish must say so.
func TestLintBudgetExhaustionReported(t *testing.T) {
	src, _ := semanticSource(t, "susc011_violable.susc")
	b := budget.New(context.Background(), budget.Limits{MaxStates: 2})
	diags := Source(src, Options{Analyzers: AllAnalyzers(), Budget: b})
	found := false
	for _, d := range diags {
		if d.Code == CodeInternalError && strings.Contains(d.Message, "analysis stopped") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no SUSC016 cutoff diagnostic in %v", diags)
	}
	if b.Exhausted() == nil {
		t.Fatal("the budget must be exhausted")
	}
}

// TestLintBudgetUnlimitedMatches: a roomy budget changes nothing — the
// diagnostics are identical to the unbudgeted run.
func TestLintBudgetUnlimitedMatches(t *testing.T) {
	src, plain := semanticSource(t, "susc011_violable.susc")
	b := budget.New(context.Background(), budget.Limits{MaxStates: 1 << 30})
	budgeted := Source(src, Options{Analyzers: AllAnalyzers(), Budget: b})
	if len(plain) != len(budgeted) {
		t.Fatalf("budgeted run found %d diagnostics, plain %d", len(budgeted), len(plain))
	}
	for i := range plain {
		if plain[i].Code != budgeted[i].Code || plain[i].Message != budgeted[i].Message {
			t.Fatalf("diagnostic %d differs: %v vs %v", i, plain[i], budgeted[i])
		}
	}
}

// TestLintAnalyzerPanicIsolated: a panicking analyzer is absorbed — its
// own findings are dropped, the failure is reported as SUSC016 naming the
// analyzer, and every other analyzer still reports normally.
func TestLintAnalyzerPanicIsolated(t *testing.T) {
	src, plain := semanticSource(t, "susc011_violable.susc")
	restore := faultinject.Set(faultinject.PanicOnce(faultinject.LintAnalyzer, "violable", "injected"))
	defer restore()
	diags := Source(src, Options{Analyzers: AllAnalyzers()})

	var failure *Diagnostic
	for i, d := range diags {
		switch {
		case d.Code == CodeInternalError:
			failure = &diags[i]
		case d.Code == "SUSC011":
			t.Fatalf("the panicked analyzer's findings must be dropped, got %v", d)
		}
	}
	if failure == nil {
		t.Fatalf("no SUSC016 failure diagnostic in %v", diags)
	}
	if !strings.Contains(failure.Message, "violable") || !strings.Contains(failure.Message, "failed") {
		t.Fatalf("failure message = %q, want the analyzer name and 'failed'", failure.Message)
	}

	// Every non-SUSC011 finding of the clean run survives.
	want := map[string]int{}
	for _, d := range plain {
		if d.Code != "SUSC011" {
			want[d.Code]++
		}
	}
	got := map[string]int{}
	for _, d := range diags {
		if d.Code != CodeInternalError {
			got[d.Code]++
		}
	}
	for code, n := range want {
		if got[code] != n {
			t.Fatalf("code %s: %d findings after the panic, want %d", code, got[code], n)
		}
	}
}
