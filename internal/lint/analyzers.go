package lint

import (
	"errors"
	"fmt"

	"susc/internal/hexpr"
	"susc/internal/parser"
	"susc/internal/policy"
)

// --- span lookup helpers ------------------------------------------------

func (p *Pass) spanTable() *parser.SpanTable {
	if p.File != nil && p.File.Spans != nil {
		return p.File.Spans
	}
	return nil
}

func (p *Pass) policySpan(name string) parser.Span {
	if t := p.spanTable(); t != nil {
		return t.Policies[name]
	}
	return parser.Span{}
}

func (p *Pass) instanceSpan(alias string) parser.Span {
	if t := p.spanTable(); t != nil {
		return t.Instances[alias]
	}
	return parser.Span{}
}

func (p *Pass) serviceSpan(loc hexpr.Location) parser.Span {
	if t := p.spanTable(); t != nil {
		return t.Services[string(loc)]
	}
	return parser.Span{}
}

func (p *Pass) clientSpan(i int) parser.Span {
	if t := p.spanTable(); t != nil && i < len(t.Clients) {
		return t.Clients[i]
	}
	return parser.Span{}
}

func (p *Pass) serviceExprSpans(loc hexpr.Location) *parser.ExprSpans {
	if t := p.spanTable(); t != nil {
		return t.ServiceExprs[string(loc)]
	}
	return nil
}

func (p *Pass) clientExprSpans(i int) *parser.ExprSpans {
	if t := p.spanTable(); t != nil && i < len(t.ClientExprs) {
		return t.ClientExprs[i]
	}
	return nil
}

// --- declaration enumeration --------------------------------------------

// decl is one expression-bearing declaration, uniformly over services and
// clients.
type decl struct {
	kind  string // "service" or "client"
	name  string
	expr  hexpr.Expr
	span  parser.Span
	exprs *parser.ExprSpans
}

func (d decl) what() string { return d.kind + " " + d.name }

// decls enumerates services (declaration order) then clients.
func (p *Pass) decls() []decl {
	var out []decl
	for _, loc := range p.File.ServiceOrder {
		out = append(out, decl{
			kind: "service", name: string(loc), expr: p.File.Repo[loc],
			span: p.serviceSpan(loc), exprs: p.serviceExprSpans(loc),
		})
	}
	for i, c := range p.File.Clients {
		out = append(out, decl{
			kind: "client", name: c.Name, expr: c.Expr,
			span: p.clientSpan(i), exprs: p.clientExprSpans(i),
		})
	}
	return out
}

// reqBody is one request occurrence: who opens it, under which identifier,
// with what conversation body.
type reqBody struct {
	owner decl
	req   hexpr.RequestID
	body  hexpr.Expr
	span  parser.Span
}

// requestBodies enumerates every request occurrence in the file, once per
// (owner, request) pair, with its span.
func (p *Pass) requestBodies() []reqBody {
	if p.bodies != nil {
		return p.bodies
	}
	for _, d := range p.decls() {
		seen := map[hexpr.RequestID]bool{}
		hexpr.Walk(d.expr, func(x hexpr.Expr) {
			s, ok := x.(hexpr.Session)
			if !ok || seen[s.Req] {
				return
			}
			seen[s.Req] = true
			span := d.span
			if d.exprs != nil {
				if os, ok := d.exprs.Opens[string(s.Req)]; ok {
					span = os
				}
			}
			p.bodies = append(p.bodies, reqBody{owner: d, req: s.Req, body: s.Body, span: span})
		})
	}
	return p.bodies
}

// --- SUSC000 / SUSC001: well-formedness ----------------------------------

var wellformedAnalyzer = &Analyzer{
	Name:  "wellformed",
	Doc:   "report declarations rejected by the well-formedness restrictions of Definition 1; non-contractive recursion (unguarded or non-tail recursion variables, μh.h) gets its own code",
	Codes: []string{CodeIllFormed, CodeNonContractive},
	Run: func(pass *Pass) {
		for _, is := range pass.Issues {
			if errors.Is(is.Err, parser.ErrRedeclared) {
				continue // duplicate analyzer's turf
			}
			var ce *hexpr.CheckError
			if !errors.As(is.Err, &ce) {
				pass.Reportf(CodeIllFormed, Error, is.Span, "%s %s: %v", is.DeclKind, is.Name, is.Err)
				continue
			}
			switch ce.Kind {
			case hexpr.UnguardedRecursion, hexpr.NonTailRecursion:
				span := is.Span
				if is.Exprs != nil && len(is.Exprs.Mus) > 0 {
					span = is.Exprs.Mus[0].Span
				}
				pass.Reportf(CodeNonContractive, Error, span,
					"%s %s has non-contractive recursion: %s (it can diverge without making progress)",
					is.DeclKind, is.Name, ce.Reason)
			default:
				pass.Reportf(CodeIllFormed, Error, is.Span, "%s %s is ill-formed: %s", is.DeclKind, is.Name, ce.Reason)
			}
		}
	},
}

// --- SUSC002: redundant / ill-nested framings ----------------------------

var framingAnalyzer = &Analyzer{
	Name:  "framing",
	Doc:   "report security framings that cannot matter: a framing nested inside another framing (or policy-annotated session) of the same policy, and framings enclosing no behaviour",
	Codes: []string{CodeFraming},
	Run: func(pass *Pass) {
		for _, d := range pass.decls() {
			enforceSpans := map[string][]parser.Span{}
			if d.exprs != nil {
				for _, ns := range d.exprs.Enforces {
					enforceSpans[ns.ID] = append(enforceSpans[ns.ID], ns.Span)
				}
			}
			// first anchors an empty framing, last a nested re-framing (the
			// innermost occurrence is the redundant one).
			first := func(id hexpr.PolicyID) parser.Span {
				if ss := enforceSpans[string(id)]; len(ss) > 0 {
					return ss[0]
				}
				return d.span
			}
			last := func(id hexpr.PolicyID) parser.Span {
				if ss := enforceSpans[string(id)]; len(ss) > 0 {
					return ss[len(ss)-1]
				}
				return d.span
			}
			var walk func(e hexpr.Expr, active map[hexpr.PolicyID]bool)
			walk = func(e hexpr.Expr, active map[hexpr.PolicyID]bool) {
				switch t := e.(type) {
				case hexpr.Seq:
					walk(t.Left, active)
					walk(t.Right, active)
				case hexpr.Rec:
					walk(t.Body, active)
				case hexpr.ExtChoice:
					for _, b := range t.Branches {
						walk(b.Cont, active)
					}
				case hexpr.IntChoice:
					for _, b := range t.Branches {
						walk(b.Cont, active)
					}
				case hexpr.Session:
					enter(t.Policy, t.Body, active, walk)
				case hexpr.Framing:
					if active[t.Policy] {
						pass.Reportf(CodeFraming, Warning, last(t.Policy),
							"%s re-frames policy %s inside an enclosing framing of the same policy (the inner framing is redundant)",
							d.what(), policyLabel(pass.File, t.Policy))
					}
					if hexpr.IsNil(t.Body) {
						pass.Reportf(CodeFraming, Warning, first(t.Policy),
							"%s frames policy %s around no behaviour (the framing encloses only eps)",
							d.what(), policyLabel(pass.File, t.Policy))
					}
					enter(t.Policy, t.Body, active, walk)
				}
			}
			walk(d.expr, map[hexpr.PolicyID]bool{})
		}
	},
}

// enter walks body with pol added to the active framing set (and removed
// again afterwards, so siblings are unaffected).
func enter(pol hexpr.PolicyID, body hexpr.Expr,
	active map[hexpr.PolicyID]bool, walk func(hexpr.Expr, map[hexpr.PolicyID]bool)) {
	if pol == hexpr.NoPolicy || active[pol] {
		walk(body, active)
		return
	}
	active[pol] = true
	walk(body, active)
	delete(active, pol)
}

// policyLabel renders a policy identifier for messages, preferring the
// declared instance alias over the canonical instantiated identifier.
func policyLabel(f *parser.File, id hexpr.PolicyID) string {
	for alias, aid := range f.Instances {
		if aid == id {
			return alias
		}
	}
	return string(id)
}

// --- SUSC003: vacuous policies -------------------------------------------

var vacuityAnalyzer = &Analyzer{
	Name:  "vacuity",
	Doc:   "report policy templates whose offending states are unreachable from the start state even ignoring guards: no trace can ever violate such a policy, so framings of it never fire",
	Codes: []string{CodeVacuousPolicy},
	Run: func(pass *Pass) {
		for _, name := range pass.File.PolicyOrder {
			a := pass.File.Automata[name]
			if len(a.Finals) == 0 {
				pass.Reportf(CodeVacuousPolicy, Warning, pass.policySpan(name),
					"policy %s declares no offending state: it can never be violated, so framings of it never fire", name)
				continue
			}
			if !offendingReachable(a) {
				pass.Reportf(CodeVacuousPolicy, Warning, pass.policySpan(name),
					"policy %s can never reach an offending state (%v is unreachable from %s even ignoring guards): framings of it never fire",
					name, a.Finals, a.Start)
			}
		}
	},
}

// offendingReachable reports whether some final (violation) state of the
// template is reachable from the start by the edge graph, ignoring guards
// (an over-approximation of firability: unreachable here means vacuous).
func offendingReachable(a *policy.Automaton) bool {
	next := map[string][]string{}
	for _, e := range a.Edges {
		next[e.From] = append(next[e.From], e.To)
	}
	final := map[string]bool{}
	for _, f := range a.Finals {
		final[f] = true
	}
	seen := map[string]bool{a.Start: true}
	work := []string{a.Start}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if final[s] {
			return true
		}
		for _, t := range next[s] {
			if !seen[t] {
				seen[t] = true
				work = append(work, t)
			}
		}
	}
	return false
}

// --- SUSC004: always-violated policies -----------------------------------

var contradictionAnalyzer = &Analyzer{
	Name:  "contradiction",
	Doc:   "report policy instances violated by the empty history (the start state is already offending): every service framed with such an instance is invalid, so every plan using it fails",
	Codes: []string{CodeAlwaysViolated},
	Run: func(pass *Pass) {
		for _, d := range pass.File.InstanceOrder {
			in, err := pass.File.Table.Get(d.ID)
			if err != nil {
				continue
			}
			if in.Final(in.Initial()) {
				pass.Report(Diagnostic{
					Code: CodeAlwaysViolated, Severity: Error, Span: pass.instanceSpan(d.Alias),
					Message: fmt.Sprintf("instance %s is violated by the empty history: every service framed with it is invalid", d.Alias),
					Related: []Related{{Span: pass.policySpan(d.Template),
						Message: fmt.Sprintf("policy %s declares its start state as offending", d.Template)}},
				})
			}
		}
	},
}

// --- SUSC005: dead repository services -----------------------------------

var deadServiceAnalyzer = &Analyzer{
	Name:  "deadservice",
	Doc:   "report repository services that no request body in the file complies with: plan synthesis can never select them, so they are dead weight",
	Codes: []string{CodeDeadService},
	Run: func(pass *Pass) {
		bodies := pass.requestBodies()
		if len(bodies) == 0 {
			return
		}
		for _, loc := range pass.File.ServiceOrder {
			svc := pass.File.Repo[loc]
			dead := true
			for _, b := range bodies {
				ok, err := pass.Cache.Compliant(b.body, svc)
				if err == nil && ok {
					dead = false
					break
				}
			}
			if dead {
				pass.Reportf(CodeDeadService, Warning, pass.serviceSpan(loc),
					"service %s is dead: none of the %d request bodies in the file complies with it, so no plan can ever select it",
					loc, len(bodies))
			}
		}
	},
}

// --- SUSC006: unmatched requests -----------------------------------------

var unmatchedAnalyzer = &Analyzer{
	Name:  "unmatched",
	Doc:   "report requests whose body complies with no repository service: no binding exists for them, so every plan of their owner is invalid",
	Codes: []string{CodeUnmatchedRequest},
	Run: func(pass *Pass) {
		for _, b := range pass.requestBodies() {
			matched := false
			for _, loc := range pass.File.ServiceOrder {
				ok, err := pass.Cache.Compliant(b.body, pass.File.Repo[loc])
				if err == nil && ok {
					matched = true
					break
				}
			}
			if !matched {
				pass.Reportf(CodeUnmatchedRequest, Error, b.span,
					"request %s of %s complies with no service in the repository: every plan is invalid",
					b.req, b.owner.what())
			}
		}
	},
}

// --- SUSC007: duplicate / shadowed declarations --------------------------

var duplicateAnalyzer = &Analyzer{
	Name:  "duplicates",
	Doc:   "report duplicate declarations (policies, instances, services, clients) and cross-kind shadowing: client locations that also name services, instance aliases that also name policy templates",
	Codes: []string{CodeDuplicateDecl},
	Run: func(pass *Pass) {
		for _, is := range pass.Issues {
			if errors.Is(is.Err, parser.ErrRedeclared) {
				pass.Reportf(CodeDuplicateDecl, Error, is.Span, "%v", is.Err)
			}
		}
		seen := map[string]int{}
		for i, c := range pass.File.Clients {
			if j, dup := seen[c.Name]; dup {
				pass.Report(Diagnostic{
					Code: CodeDuplicateDecl, Severity: Error, Span: pass.clientSpan(i),
					Message: fmt.Sprintf("client %q redeclared", c.Name),
					Related: []Related{{Span: pass.clientSpan(j), Message: "first declared here"}},
				})
				continue
			}
			seen[c.Name] = i
		}
		for i, c := range pass.File.Clients {
			if _, isService := pass.File.Repo[c.Loc]; isService {
				pass.Report(Diagnostic{
					Code: CodeDuplicateDecl, Severity: Warning, Span: pass.clientSpan(i),
					Message: fmt.Sprintf("client %s is placed at location %s, which also names a repository service", c.Name, c.Loc),
					Related: []Related{{Span: pass.serviceSpan(c.Loc), Message: "service declared here"}},
				})
			}
		}
		for _, d := range pass.File.InstanceOrder {
			if _, shadows := pass.File.Automata[d.Alias]; shadows {
				pass.Report(Diagnostic{
					Code: CodeDuplicateDecl, Severity: Warning, Span: pass.instanceSpan(d.Alias),
					Message: fmt.Sprintf("instance alias %s shadows the policy template of the same name", d.Alias),
					Related: []Related{{Span: pass.policySpan(d.Alias), Message: "policy declared here"}},
				})
			}
		}
	},
}

// --- SUSC008: unused policy instances ------------------------------------

var unusedInstanceAnalyzer = &Analyzer{
	Name:  "unusedinstance",
	Doc:   "report policy instances never referenced by a with or enforce clause",
	Codes: []string{CodeUnusedInstance},
	Run: func(pass *Pass) {
		used := usedPolicyIDs(pass)
		for _, d := range pass.File.InstanceOrder {
			if !used[string(d.ID)] {
				pass.Reportf(CodeUnusedInstance, Info, pass.instanceSpan(d.Alias),
					"instance %s is never used in a with or enforce clause", d.Alias)
			}
		}
	},
}

// --- SUSC009: unused policy templates ------------------------------------

var unusedPolicyAnalyzer = &Analyzer{
	Name:  "unusedpolicy",
	Doc:   "report policy templates that are never instantiated and never referenced directly",
	Codes: []string{CodeUnusedPolicy},
	Run: func(pass *Pass) {
		used := usedPolicyIDs(pass)
		instantiated := map[string]bool{}
		for _, d := range pass.File.InstanceOrder {
			instantiated[d.Template] = true
		}
		for _, name := range pass.File.PolicyOrder {
			if !instantiated[name] && !used[name] {
				pass.Reportf(CodeUnusedPolicy, Info, pass.policySpan(name),
					"policy %s is never instantiated", name)
			}
		}
	},
}

// usedPolicyIDs collects every policy identifier referenced by a with or
// enforce clause of any declaration.
func usedPolicyIDs(pass *Pass) map[string]bool {
	used := map[string]bool{}
	for _, d := range pass.decls() {
		for _, id := range hexpr.Policies(d.expr) {
			used[string(id)] = true
		}
	}
	return used
}

// --- SUSC010: dangling references ----------------------------------------

var referenceAnalyzer = &Analyzer{
	Name:  "references",
	Doc:   "report dangling references: plan entries binding unknown services or requests nothing opens, and with/enforce clauses naming policies no instance declares",
	Codes: []string{CodeDanglingRef},
	Run: func(pass *Pass) {
		opened := map[hexpr.RequestID]bool{}
		for _, d := range pass.decls() {
			for _, r := range hexpr.Requests(d.expr) {
				opened[r] = true
			}
		}
		table := pass.spanTable()
		for i, c := range pass.File.Clients {
			var targets map[string]parser.Span
			if table != nil && i < len(table.PlanTargets) {
				targets = table.PlanTargets[i]
			}
			for _, r := range sortedRequests(c.Plan) {
				loc := c.Plan[r]
				span := pass.clientSpan(i)
				if s, ok := targets[string(r)]; ok {
					span = s
				}
				if _, ok := pass.File.Repo[loc]; !ok {
					pass.Reportf(CodeDanglingRef, Error, span,
						"plan of client %s binds %s to unknown service %q", c.Name, r, loc)
				}
				if !opened[r] {
					pass.Reportf(CodeDanglingRef, Warning, span,
						"plan of client %s binds request %q, which nothing in the file opens", c.Name, r)
				}
			}
		}
		known := map[string]bool{}
		for _, id := range pass.File.Instances {
			known[string(id)] = true
		}
		for _, d := range pass.decls() {
			if d.exprs == nil {
				continue
			}
			for _, ns := range d.exprs.Policies {
				if known[ns.ID] || ns.ID == string(hexpr.NoPolicy) {
					continue
				}
				if _, isTemplate := pass.File.Automata[ns.Name]; isTemplate {
					pass.Reportf(CodeDanglingRef, Error, ns.Span,
						"%s refers to policy template %s directly; declare an instance and use its alias", d.what(), ns.Name)
				} else {
					pass.Reportf(CodeDanglingRef, Error, ns.Span,
						"%s refers to unknown policy %q (no instance declares it)", d.what(), ns.Name)
				}
			}
		}
	},
}

// sortedRequests returns the plan's request identifiers in stable order.
func sortedRequests(plan map[hexpr.RequestID]hexpr.Location) []hexpr.RequestID {
	out := make([]hexpr.RequestID, 0, len(plan))
	for r := range plan {
		out = append(out, r)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
