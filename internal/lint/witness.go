package lint

import (
	"fmt"
	"sort"
	"strings"

	"susc/internal/compliance"
	"susc/internal/parser"
	"susc/internal/valid"
)

// Witness kinds, one per counterexample shape the semantic analyzers
// extract. The kind selects how the trace is to be read: a violating
// history, a stuck conversation, a failing representative plan, a trace
// two policies both forbid, or the live run a dead automaton part never
// joins.
const (
	WitnessViolation   = "violation"
	WitnessDeadlock    = "deadlock"
	WitnessNoPlan      = "no-plan"
	WitnessSubsumption = "subsumption"
	WitnessDeadCode    = "dead-code"

	// Audit witness kinds (SUSC017–021): network traces from the initial
	// configuration of one client under one plan, ending at the
	// occurrence the finding is about.
	WitnessUncovered        = "uncovered"
	WitnessRedundantFraming = "redundant-framing"
	WitnessPlanCoverage     = "plan-coverage"
	WitnessDeadPolicy       = "dead-policy"
	WitnessScopeLeak        = "scope-leak"
)

// WitnessStep is one step of a counterexample trace: the label fired (an
// event, a framing action, or a channel synchronisation), the automaton or
// product state reached after it, and the source span of the construct
// that produces the label, when the parser recorded one.
type WitnessStep struct {
	Label string      `json:"label"`
	State string      `json:"state,omitempty"`
	Span  parser.Span `json:"span"`
}

// Witness is the structured counterexample attached to a semantic
// diagnostic (SUSC011–015): a minimal trace demonstrating the finding,
// with the automaton run threaded through it. Traces are BFS-shortest by
// construction — no strictly shorter trace demonstrates the same finding.
type Witness struct {
	// Kind is one of the Witness* constants.
	Kind string `json:"kind"`
	// Start is the automaton state before the first step, when meaningful.
	Start string `json:"start,omitempty"`
	// Steps is the trace, in firing order.
	Steps []WitnessStep `json:"steps"`
	// Note closes the witness: the stuck pair, the violated state, the
	// dead construct — whatever the trace runs into.
	Note string `json:"note,omitempty"`
	// Plan is the plan binding the trace assumes (audit witnesses only):
	// request identifier to service location.
	Plan map[string]string `json:"plan,omitempty"`
}

// Render returns the step-by-step human rendering of the witness, one
// line per step. A non-empty file prefixes the source anchors.
func (w *Witness) Render(file string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "witness (%s)", w.Kind)
	if w.Start != "" {
		fmt.Fprintf(&b, ", start state %s", w.Start)
	}
	b.WriteString(":\n")
	if len(w.Plan) > 0 {
		reqs := make([]string, 0, len(w.Plan))
		for r := range w.Plan {
			reqs = append(reqs, r)
		}
		sort.Strings(reqs)
		parts := make([]string, len(reqs))
		for i, r := range reqs {
			parts[i] = r + ">" + w.Plan[r]
		}
		fmt.Fprintf(&b, "  plan {%s}\n", strings.Join(parts, ","))
	}
	width := 0
	for _, s := range w.Steps {
		if len(s.Label) > width {
			width = len(s.Label)
		}
	}
	for i, s := range w.Steps {
		line := fmt.Sprintf("  %2d. %-*s", i+1, width, s.Label)
		if s.State != "" {
			line += fmt.Sprintf("  -> %s", s.State)
		}
		if !s.Span.IsZero() {
			if file != "" {
				line += fmt.Sprintf("  at %s:%s", file, s.Span)
			} else {
				line += fmt.Sprintf("  at %s", s.Span)
			}
		}
		b.WriteString(strings.TrimRight(line, " "))
		b.WriteString("\n")
	}
	if w.Note != "" {
		fmt.Fprintf(&b, "  %s\n", w.Note)
	}
	return b.String()
}

// DOT renders the witness run as a linear Graphviz digraph, in the style
// of the automata DOT emitters: states as nodes (the last one doubled),
// steps as labelled edges.
func (w *Witness) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	label := func(i int) string {
		if i == 0 {
			if w.Start != "" {
				return w.Start
			}
			return "start"
		}
		if s := w.Steps[i-1].State; s != "" {
			return s
		}
		return fmt.Sprintf("s%d", i)
	}
	n := len(w.Steps)
	b.WriteString("  __start [shape=point];\n  __start -> n0;\n")
	for i := 0; i <= n; i++ {
		shape := "circle"
		if i == n {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", i, label(i), shape)
	}
	for i, s := range w.Steps {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", i, i+1, s.Label)
	}
	b.WriteString("}\n")
	return b.String()
}

// --- builders -------------------------------------------------------------

// itemSpan anchors a history item rendered in paper syntax: events resolve
// through the Events side table, framing actions ("[_φ"/"_]φ") through the
// policy reference spans.
func itemSpan(exprs *parser.ExprSpans, item string) parser.Span {
	if exprs == nil {
		return parser.Span{}
	}
	id := ""
	switch {
	case strings.HasPrefix(item, "[_"):
		id = strings.TrimPrefix(item, "[_")
	case strings.HasPrefix(item, "_]"):
		id = strings.TrimPrefix(item, "_]")
	default:
		return exprs.EventSpan(item)
	}
	for _, ns := range exprs.Policies {
		if ns.ID == id {
			return ns.Span
		}
	}
	return parser.Span{}
}

// violationWitness builds a Witness from a validity counterexample.
func violationWitness(ce *valid.Counterexample, exprs *parser.ExprSpans) *Witness {
	w := &Witness{Kind: WitnessViolation, Start: ce.Start}
	last := ce.Start
	for _, st := range ce.Trace {
		w.Steps = append(w.Steps, WitnessStep{
			Label: st.Item,
			State: st.State,
			Span:  itemSpan(exprs, st.Item),
		})
		if st.State != "" {
			last = st.State
		}
	}
	w.Note = fmt.Sprintf("state %s is offending: the history violates the policy", last)
	return w
}

// deadlockWitness builds a Witness from a compliance witness: channel
// synchronisations down to the stuck pair, with both endpoints' residuals
// as the product states.
func deadlockWitness(cw *compliance.Witness, exprs *parser.ExprSpans) *Witness {
	w := &Witness{Kind: WitnessDeadlock}
	if len(cw.Pairs) > 0 {
		w.Start = cw.Pairs[0].String()
	}
	for i, ch := range cw.Path {
		st := ""
		if i+1 < len(cw.Pairs) {
			st = cw.Pairs[i+1].String()
		}
		w.Steps = append(w.Steps, WitnessStep{
			Label: ch,
			State: st,
			Span:  eventOrChannelSpan(exprs, ch),
		})
	}
	w.Note = fmt.Sprintf("stuck at %s: no message either side offers is matched", cw.Stuck)
	return w
}

// eventOrChannelSpan anchors a channel name: channel actions are recorded
// as bare identifiers in the Events side table (the parser cannot tell a
// variable from a 0-ary event from a channel until resolution).
func eventOrChannelSpan(exprs *parser.ExprSpans, name string) parser.Span {
	if exprs == nil {
		return parser.Span{}
	}
	return exprs.EventSpan(name)
}
