package lint

import (
	"fmt"
	"sort"
	"strings"

	"susc/internal/autom"
	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/parser"
	"susc/internal/plans"
	"susc/internal/policy"
	"susc/internal/store"
	"susc/internal/valid"
	"susc/internal/verify"
)

// This file is the whole-network security-flow audit (`susc audit`,
// SUSC017–021): it runs the internal/valid flow core over every valid
// plan of every client, annotating each reachable event occurrence with
// its active-framing set, then decides coverage questions — which events
// run unguarded, which framings the ambient set already implies, which
// policies are dead, which scopes leak — with the autom language ops.

const (
	// maxAuditPlans bounds the plan families the audit enumerates; larger
	// families are skipped (and reported as such in the coverage output —
	// never silently).
	maxAuditPlans = 4096
	// maxAuditFlows bounds the valid plans flow-analyzed per client; the
	// rest of the family is counted but not explored, which silences the
	// universally quantified codes (SUSC017/018/020) for that client.
	maxAuditFlows = 256
)

// planAudit is one audited (plan, flow) pair of a client.
type planAudit struct {
	plan   network.Plan
	flow   *valid.PlanFlow
	cached bool
}

// clientAudit aggregates the audited flows of one client.
type clientAudit struct {
	idx        int
	name       string
	plans      []planAudit // valid flows only
	totalValid int
	capped     bool
	skipped    string // non-empty reason when the client could not be audited
}

// auditState is the shared flow computation behind the audit analyzers,
// built lazily once per pass.
type auditState struct {
	clients []clientAudit
	wide    bool // >64 policies: beyond the dense masks, analyzers stay silent
	// complete: every client's whole valid-plan family was fully
	// flow-analyzed — no skips, caps or budget cutoffs. The universally
	// quantified codes require it.
	complete bool
}

// auditData computes (once) the per-client flow audit: the valid-plan
// family (or just the declared plan, under AuditDeclaredOnly) and one
// PlanFlow per audited plan, drawn from the cone-keyed persistent tier
// when a store is attached.
func (p *Pass) auditData() *auditState {
	if p.audit != nil {
		return p.audit
	}
	st := &auditState{complete: true}
	p.audit = st
	st.wide = p.File.Table.Compiled().Len() > 64
	for i, c := range p.File.Clients {
		if p.Budget.Exhausted() != nil {
			st.complete = false
			return st
		}
		ca := clientAudit{idx: i, name: c.Name}
		var candidates []network.Plan
		if p.AuditDeclaredOnly {
			if len(c.Plan) == 0 && len(hexpr.Requests(c.Expr)) > 0 {
				ca.skipped = "no declared plan"
				st.complete = false
				st.clients = append(st.clients, ca)
				continue
			}
			candidates = []network.Plan{c.Plan}
		} else {
			as, err := plans.AssessAll(p.File.Repo, p.File.Table, c.Loc, c.Expr, plans.Options{
				PruneNonCompliant: true,
				MaxPlans:          maxAuditPlans,
				Cache:             p.Cache,
				Budget:            p.Budget,
				// The sweep only classifies plans; per-plan verdicts stay
				// in the memory tier. The audit's own records persist
				// under KindAudit below.
				MemoryTierOnly: true,
			})
			if err != nil {
				ca.skipped = fmt.Sprintf("plan family not enumerable: %v", err)
				st.complete = false
				st.clients = append(st.clients, ca)
				continue
			}
			for _, a := range as {
				switch a.Report.Verdict {
				case verify.Valid:
					candidates = append(candidates, a.Plan)
				case verify.Unknown:
					st.complete = false
				}
			}
			ca.totalValid = len(candidates)
			if len(candidates) > maxAuditFlows {
				candidates = candidates[:maxAuditFlows]
				ca.capped = true
				st.complete = false
			}
		}
		for _, plan := range candidates {
			flow, cached, err := p.flowFor(c, plan)
			if err != nil {
				ca.skipped = fmt.Sprintf("flow analysis failed: %v", err)
				st.complete = false
				break
			}
			if !flow.Valid() {
				// Declared plans may be invalid (checkall's verification
				// loop reports that); unknown means a budget cutoff.
				if flow.Verdict == verify.Unknown.String() {
					st.complete = false
				}
				continue
			}
			ca.plans = append(ca.plans, planAudit{plan: plan, flow: flow, cached: cached})
		}
		if p.AuditDeclaredOnly {
			ca.totalValid = len(ca.plans)
		}
		st.clients = append(st.clients, ca)
	}
	if p.Budget.Exhausted() != nil {
		st.complete = false
	}
	return st
}

// flowFor explores one (client, plan) flow, through the persistent tier
// keyed on the content hash of the verdict's dependency cone
// (verify.PlanKey) when a store is attached. Unknown flows — budget
// cutoffs — are never persisted.
func (p *Pass) flowFor(c parser.ClientDecl, plan network.Plan) (*valid.PlanFlow, bool, error) {
	fopts := valid.FlowOptions{Cache: p.Cache, Budget: p.Budget}
	disk := p.Cache.Disk()
	if disk == nil {
		f, err := valid.ExploreFlow(p.File.Repo, p.File.Table, c.Loc, c.Expr, plan, fopts)
		return f, false, err
	}
	sum, err := verify.PlanKey(p.File.Repo, p.File.Table, c.Loc, c.Expr, plan, nil)
	if err != nil {
		return nil, false, err
	}
	if raw, ok := disk.Get(store.KindAudit, sum); ok {
		if f, derr := valid.DecodeFlow(raw); derr == nil {
			return f, true, nil
		}
	}
	got, err := disk.Once(store.KindAudit, sum, func() (any, error) {
		if raw, ok := disk.Peek(store.KindAudit, sum); ok {
			if f, derr := valid.DecodeFlow(raw); derr == nil {
				return f, nil
			}
		}
		f, ferr := valid.ExploreFlow(p.File.Repo, p.File.Table, c.Loc, c.Expr, plan, fopts)
		if ferr != nil {
			return nil, ferr
		}
		if f.Verdict != verify.Unknown.String() {
			enc, eerr := valid.EncodeFlow(f)
			if eerr != nil {
				return nil, eerr
			}
			if perr := disk.Put(store.KindAudit, sum, enc); perr != nil {
				return nil, perr
			}
		}
		return f, nil
	})
	if err != nil {
		return nil, false, err
	}
	return got.(*valid.PlanFlow), false, nil
}

// --- shared helpers --------------------------------------------------------

// eventName strips the argument list off a canonical event rendering
// ("sgn(s3)" → "sgn"), the name the watched-event index keys on.
func eventName(rendering string) string {
	if i := strings.IndexByte(rendering, '('); i >= 0 {
		return rendering[:i]
	}
	return rendering
}

// relevantPolicies filters an active set down to the policies watching
// the given event name — the policies actually guarding that occurrence.
func relevantPolicies(ct *policy.CompiledTable, name string, active []string) []string {
	mask := ct.WatchedMask(name)
	if mask == 0 {
		return nil
	}
	var out []string
	for _, id := range active {
		if i := ct.Index(hexpr.PolicyID(id)); i >= 0 && i < 64 && mask&(1<<uint(i)) != 0 {
			out = append(out, id)
		}
	}
	return out
}

// auditLabelSpan anchors one trace label in one expression's side table:
// framing actions prefer the recorded framing scopes, session opens and
// closes resolve through the request's open span, events and channel
// actions through the events table.
func auditLabelSpan(ex *parser.ExprSpans, label string) parser.Span {
	if ex == nil || label == "tau" {
		return parser.Span{}
	}
	switch {
	case strings.HasPrefix(label, "[_"):
		if fs := ex.FramingSpan(strings.TrimPrefix(label, "[_")); fs.ID != "" {
			return fs.Open
		}
		return itemSpan(ex, label)
	case strings.HasPrefix(label, "_]"):
		if fs := ex.FramingSpan(strings.TrimPrefix(label, "_]")); fs.ID != "" {
			return fs.Close
		}
		return itemSpan(ex, label)
	case strings.HasPrefix(label, "open[") || strings.HasPrefix(label, "close["):
		inner := label[strings.IndexByte(label, '[')+1 : len(label)-1]
		req := inner
		if i := strings.IndexByte(inner, ','); i >= 0 {
			req = inner[:i]
		}
		return ex.Opens[req]
	case strings.HasSuffix(label, "!") || strings.HasSuffix(label, "?"):
		return ex.EventSpan(label[:len(label)-1])
	default:
		return ex.EventSpan(label)
	}
}

// auditStepSpan anchors a trace label, searching the client's expression
// first and the services' after — network traces interleave both sides.
func (p *Pass) auditStepSpan(clientIdx int, label string) parser.Span {
	if sp := auditLabelSpan(p.clientExprSpans(clientIdx), label); !sp.IsZero() {
		return sp
	}
	for _, loc := range p.File.ServiceOrder {
		if sp := auditLabelSpan(p.serviceExprSpans(loc), label); !sp.IsZero() {
			return sp
		}
	}
	return parser.Span{}
}

// framingSpan anchors a policy's framing: the recorded open token of the
// first framing of that policy anywhere in the file, falling back to the
// first with/enforce reference.
func (p *Pass) framingSpan(id string) parser.Span {
	tables := make([]*parser.ExprSpans, 0, len(p.File.Clients)+len(p.File.ServiceOrder))
	for i := range p.File.Clients {
		tables = append(tables, p.clientExprSpans(i))
	}
	for _, loc := range p.File.ServiceOrder {
		tables = append(tables, p.serviceExprSpans(loc))
	}
	for _, ex := range tables {
		if ex == nil {
			continue
		}
		if fs := ex.FramingSpan(id); fs.ID != "" {
			return fs.Open
		}
	}
	for _, ex := range tables {
		if sp := policyRefSpan(ex, id); !sp.IsZero() {
			return sp
		}
	}
	return parser.Span{}
}

// auditWitness builds a network-trace witness from a flow trace.
func (p *Pass) auditWitness(kind string, clientIdx int, plan network.Plan, trace []string, note string) *Witness {
	w := &Witness{Kind: kind, Note: note}
	if len(plan) > 0 {
		w.Plan = map[string]string{}
		for r, l := range plan {
			w.Plan[string(r)] = string(l)
		}
	}
	for _, label := range trace {
		w.Steps = append(w.Steps, WitnessStep{
			Label: label,
			Span:  p.auditStepSpan(clientIdx, label),
		})
	}
	return w
}

// eventSpanAnywhere anchors an event rendering: the client's occurrence
// if it has one, else the first service occurrence.
func (p *Pass) eventSpanAnywhere(clientIdx int, key string) parser.Span {
	if sp := p.clientExprSpans(clientIdx).EventSpan(key); !sp.IsZero() {
		return sp
	}
	for _, loc := range p.File.ServiceOrder {
		if sp := p.serviceExprSpans(loc).EventSpan(key); !sp.IsZero() {
			return sp
		}
	}
	return parser.Span{}
}

// --- SUSC017 + SUSC019: event coverage -------------------------------------

// eventCoverage classifies, for one client, each event rendering by the
// plans it occurs in: plans where every occurrence is guarded by some
// watching policy, and plans with an unguarded occurrence (with the
// BFS-minimal occurrence kept as witness).
type eventCoverage struct {
	event     string
	guarded   []int // indices into ca.plans
	unguarded []int
	occPlan   int             // plan index of the witness occurrence
	occ       valid.EventFlow // first unguarded occurrence
	guards    []string        // watching policies seen guarding it (union)
}

func (p *Pass) clientEventCoverage(ca *clientAudit) []*eventCoverage {
	ct := p.File.Table.Compiled()
	byEvent := map[string]*eventCoverage{}
	var order []string
	for pi, pa := range ca.plans {
		perPlan := map[string]*valid.EventFlow{} // first unguarded occurrence
		seen := map[string]bool{}
		for i, ef := range pa.flow.Events {
			seen[ef.Event] = true
			ec := byEvent[ef.Event]
			if ec == nil {
				ec = &eventCoverage{event: ef.Event, occPlan: -1}
				byEvent[ef.Event] = ec
				order = append(order, ef.Event)
			}
			rel := relevantPolicies(ct, eventName(ef.Event), ef.Active)
			if len(rel) == 0 {
				if _, ok := perPlan[ef.Event]; !ok {
					perPlan[ef.Event] = &pa.flow.Events[i]
				}
			} else {
				ec.guards = mergeSorted(ec.guards, rel)
			}
		}
		for ev := range seen {
			ec := byEvent[ev]
			if occ, ok := perPlan[ev]; ok {
				ec.unguarded = append(ec.unguarded, pi)
				if ec.occPlan < 0 {
					ec.occPlan = pi
					ec.occ = *occ
				}
			} else {
				ec.guarded = append(ec.guarded, pi)
			}
		}
	}
	out := make([]*eventCoverage, 0, len(order))
	sort.Strings(order)
	for _, ev := range order {
		out = append(out, byEvent[ev])
	}
	return out
}

func mergeSorted(acc, add []string) []string {
	for _, s := range add {
		i := sort.SearchStrings(acc, s)
		if i < len(acc) && acc[i] == s {
			continue
		}
		acc = append(acc, "")
		copy(acc[i+1:], acc[i:])
		acc[i] = s
	}
	return acc
}

var unguardedAnalyzer = &Analyzer{
	Name:  "unguarded",
	Doc:   "report critical events — events some declared policy watches — reachable with no watching policy active, under every audited plan in which they occur",
	Codes: []string{CodeUnguardedEvent},
	Run: func(pass *Pass) {
		st := pass.auditData()
		if st.wide {
			return
		}
		ct := pass.File.Table.Compiled()
		for ci := range st.clients {
			ca := &st.clients[ci]
			for _, ec := range pass.clientEventCoverage(ca) {
				if ct.WatchedMask(eventName(ec.event)) == 0 {
					continue // not critical: no policy watches it
				}
				if len(ec.unguarded) == 0 || len(ec.guarded) > 0 {
					continue // fully guarded, or SUSC019's plan-dependent case
				}
				pa := ca.plans[ec.occPlan]
				note := fmt.Sprintf("the occurrence fires with no watching policy active (%d plan(s) audited)",
					len(ca.plans))
				pass.Report(Diagnostic{
					Code: CodeUnguardedEvent, Severity: Warning,
					Span: pass.eventSpanAnywhere(ca.idx, ec.event),
					Message: fmt.Sprintf("critical event %s of client %s is reachable unguarded: no policy watching it is active at the occurrence, under every audited plan it occurs in",
						ec.event, ca.name),
					Witness: pass.auditWitness(WitnessUncovered, ca.idx, pa.plan, ec.occ.Trace, note),
				})
			}
		}
	},
}

var planCoverageAnalyzer = &Analyzer{
	Name:  "plancoverage",
	Doc:   "report events guarded under some valid plans but reachable unguarded under others — coverage that depends on the plan chosen",
	Codes: []string{CodePlanDependentCoverage},
	Run: func(pass *Pass) {
		st := pass.auditData()
		if st.wide {
			return
		}
		ct := pass.File.Table.Compiled()
		for ci := range st.clients {
			ca := &st.clients[ci]
			for _, ec := range pass.clientEventCoverage(ca) {
				if ct.WatchedMask(eventName(ec.event)) == 0 {
					continue
				}
				if len(ec.unguarded) == 0 || len(ec.guarded) == 0 {
					continue // uniform coverage: SUSC017's turf when fully unguarded
				}
				good := ca.plans[ec.guarded[0]]
				bad := ca.plans[ec.occPlan]
				note := fmt.Sprintf("under plan %s the occurrence fires with no watching policy active; under plan %s every occurrence is guarded (by %s)",
					bad.plan, good.plan, strings.Join(ec.guards, ", "))
				d := Diagnostic{
					Code: CodePlanDependentCoverage, Severity: Warning,
					Span: pass.eventSpanAnywhere(ca.idx, ec.event),
					Message: fmt.Sprintf("coverage of event %s in client %s depends on the plan: guarded under %d audited plan(s) (e.g. %s) but reachable unguarded under %d (e.g. %s)",
						ec.event, ca.name, len(ec.guarded), good.plan, len(ec.unguarded), bad.plan),
					Witness: pass.auditWitness(WitnessPlanCoverage, ca.idx, bad.plan, ec.occ.Trace, note),
				}
				if sp := pass.planTargetRelated(ca.idx); !sp.IsZero() {
					d.Related = []Related{{Span: sp, Message: "client " + ca.name + " picks the plan here"}}
				}
				pass.Report(d)
			}
		}
	},
}

// planTargetRelated anchors the client's plan clause (first target), for
// the SUSC019 related position. Zero when the client declares no plan.
func (p *Pass) planTargetRelated(clientIdx int) parser.Span {
	if clientIdx < len(p.File.Clients) {
		for _, r := range sortedRequests(p.File.Clients[clientIdx].Plan) {
			if sp := p.planTargetSpan(clientIdx, r); !sp.IsZero() {
				return sp
			}
		}
	}
	return parser.Span{}
}

// --- SUSC018: network-redundant framings -----------------------------------

var redundantFramingAnalyzer = &Analyzer{
	Name:  "netredundant",
	Doc:   "report framings whose policy is implied, at every reachable opening across every valid plan, by the ambient active set (language inclusion over the file's event alphabet): the whole-network generalisation of the pairwise SUSC014 check",
	Codes: []string{CodeRedundantFraming},
	Run: func(pass *Pass) {
		st := pass.auditData()
		if st.wide || !st.complete {
			return // implication over a partial flow set would be unsound
		}
		// The implication alphabet is the whole file's event set: events of
		// every declaration, so policies watching events of other services
		// keep their language.
		var events []hexpr.Event
		for _, c := range pass.File.Clients {
			events = append(events, hexpr.Events(c.Expr)...)
		}
		for _, loc := range pass.File.ServiceOrder {
			events = append(events, hexpr.Events(pass.File.Repo[loc])...)
		}
		events = dedupEvents(events)
		if len(events) == 0 {
			return
		}
		var alphabet []string
		alphaSig := ""
		for _, ev := range events {
			alphabet = append(alphabet, ev.String())
			alphaSig += "\x01" + ev.String()
		}
		dfas := map[string]*autom.Compiled{}
		automatonFor := func(id string) *autom.Compiled {
			if d, ok := dfas[id]; ok {
				return d
			}
			in, err := pass.File.Table.Get(hexpr.PolicyID(id))
			if err != nil {
				dfas[id] = nil
				return nil
			}
			d := pass.Cache.CompiledDFA("susc018:"+id+alphaSig, func() *autom.DFA {
				return instanceNFA(in, events).Determinize(alphabet)
			})
			dfas[id] = d
			return d
		}
		// Collect every reachable opening of every policy, across clients.
		type openRec struct {
			client int // index into st.clients
			plan   network.Plan
			flow   valid.OpenFlow
		}
		opensBy := map[string][]openRec{}
		var order []string
		for ci := range st.clients {
			ca := &st.clients[ci]
			for _, pa := range ca.plans {
				for _, of := range pa.flow.Opens {
					if _, ok := opensBy[of.Policy]; !ok {
						order = append(order, of.Policy)
					}
					opensBy[of.Policy] = append(opensBy[of.Policy], openRec{client: ci, plan: pa.plan, flow: of})
				}
			}
		}
		sort.Strings(order)
		for _, id := range order {
			inner := automatonFor(id)
			if inner == nil || inner.IsEmpty() {
				continue // unknown policy, or vacuous on this alphabet (SUSC003's turf)
			}
			implied := true
			ambient := map[string]bool{}
			for _, rec := range opensBy[id] {
				rest := inner
				covered := false
				for _, a := range rec.flow.Ambient {
					if a == id {
						covered = true // the policy is already active: re-opening adds nothing
						break
					}
					if d := automatonFor(a); d != nil {
						rest = rest.Difference(d)
					}
				}
				if !covered && !rest.IsEmpty() {
					implied = false
					break
				}
				for _, a := range rec.flow.Ambient {
					ambient[a] = true
				}
			}
			if !implied || len(opensBy[id]) == 0 {
				continue
			}
			var ambs []string
			for a := range ambient {
				ambs = append(ambs, a)
			}
			sort.Strings(ambs)
			rec := opensBy[id][0]
			ca := &st.clients[rec.client]
			note := fmt.Sprintf("at this opening the ambient active set {%s} already forbids every trace %s forbids",
				strings.Join(rec.flow.Ambient, ", "), id)
			pass.Report(Diagnostic{
				Code: CodeRedundantFraming, Severity: Warning,
				Span: pass.framingSpan(id),
				Message: fmt.Sprintf("framing of %s is redundant on this network: at every reachable opening (all valid plans audited) the ambient active policies {%s} already forbid every trace it forbids",
					id, strings.Join(ambs, ", ")),
				Witness: pass.auditWitness(WitnessRedundantFraming, ca.idx, rec.plan, rec.flow.Trace, note),
			})
		}
	},
}

// --- SUSC020: dead policies ------------------------------------------------

var deadPolicyAnalyzer = &Analyzer{
	Name:  "deadpolicy",
	Doc:   "report policies referenced by some framing yet never active on any reachable path of any valid plan of any client",
	Codes: []string{CodeDeadPolicy},
	Run: func(pass *Pass) {
		st := pass.auditData()
		if st.wide || !st.complete {
			return // an unexplored plan could still activate the policy
		}
		activated := map[string]bool{}
		flows, clients := 0, 0
		for ci := range st.clients {
			ca := &st.clients[ci]
			if len(ca.plans) > 0 {
				clients++
			}
			for _, pa := range ca.plans {
				flows += 1
				for _, of := range pa.flow.Opens {
					activated[of.Policy] = true
				}
			}
		}
		if flows == 0 {
			return // no valid plan anywhere: nothing sound to say
		}
		referenced := map[string]bool{}
		var order []string
		addRefs := func(e hexpr.Expr) {
			for _, id := range hexpr.Policies(e) {
				if !referenced[string(id)] {
					referenced[string(id)] = true
					order = append(order, string(id))
				}
			}
		}
		for _, c := range pass.File.Clients {
			addRefs(c.Expr)
		}
		for _, loc := range pass.File.ServiceOrder {
			addRefs(pass.File.Repo[loc])
		}
		sort.Strings(order)
		for _, id := range order {
			if activated[id] {
				continue
			}
			w := &Witness{Kind: WitnessDeadPolicy,
				Note: fmt.Sprintf("audited %d valid plan flow(s) across %d client(s); no reachable computation activates %s", flows, clients, id)}
			pass.Report(Diagnostic{
				Code: CodeDeadPolicy, Severity: Info,
				Span: pass.framingSpan(id),
				Message: fmt.Sprintf("policy %s is dead on this network: referenced by a framing, but never active on any reachable path of any valid plan",
					id),
				Witness: w,
			})
		}
	},
}

// --- SUSC021: framing-scope leaks ------------------------------------------

var scopeLeakAnalyzer = &Analyzer{
	Name:  "scopeleak",
	Doc:   "report framing scopes opened but never closed on some path: a reachable configuration with the policy active from which no configuration with it inactive is reachable",
	Codes: []string{CodeFramingLeak},
	Run: func(pass *Pass) {
		st := pass.auditData()
		if st.wide {
			return
		}
		for ci := range st.clients {
			ca := &st.clients[ci]
			reported := map[string]bool{}
			for _, pa := range ca.plans {
				for _, lf := range pa.flow.Leaks {
					if reported[lf.Policy] {
						continue
					}
					reported[lf.Policy] = true
					note := fmt.Sprintf("from here no reachable configuration closes the scope of %s: its η♭ flattening never balances the opening", lf.Policy)
					pass.Report(Diagnostic{
						Code: CodeFramingLeak, Severity: Warning,
						Span: pass.framingSpan(lf.Policy),
						Message: fmt.Sprintf("framing scope of %s in client %s can never close on some path: the scope leaks under plan %s",
							lf.Policy, ca.name, pa.plan),
						Witness: pass.auditWitness(WitnessScopeLeak, ca.idx, pa.plan, lf.Trace, note),
					})
				}
			}
		}
	},
}

// AuditAnalyzers returns the flow-audit suite (SUSC017–021), in running
// order. Like the semantic suite it is not part of the default suite:
// `susc audit` (and `susc checkall`) run it explicitly.
func AuditAnalyzers() []*Analyzer {
	return []*Analyzer{
		unguardedAnalyzer,
		planCoverageAnalyzer,
		redundantFramingAnalyzer,
		deadPolicyAnalyzer,
		scopeLeakAnalyzer,
	}
}

// --- coverage table --------------------------------------------------------

// CoverageRow is one line of the per-plan coverage table: an event with
// the policies guarding it. Occurrences counts the distinct
// (event, active set) observations of the flow; Guards are the watching
// policies active at every occurrence, Sometimes the ones active at some
// occurrences only; Unguarded marks a critical event with an occurrence
// no watching policy guards.
type CoverageRow struct {
	Event       string   `json:"event"`
	Occurrences int      `json:"occurrences"`
	Guards      []string `json:"guards,omitempty"`
	Sometimes   []string `json:"sometimes,omitempty"`
	Unguarded   bool     `json:"unguarded,omitempty"`
	Unwatched   bool     `json:"unwatched,omitempty"`
}

// PlanCoverage is the coverage table of one audited valid plan.
type PlanCoverage struct {
	Plan   map[string]string `json:"plan"`
	States int               `json:"states"`
	Cached bool              `json:"cached,omitempty"`
	Rows   []CoverageRow     `json:"rows,omitempty"`
}

// ClientCoverage aggregates one client's audited plans.
type ClientCoverage struct {
	Client     string         `json:"client"`
	ValidPlans int            `json:"valid_plans"`
	Audited    int            `json:"audited"`
	Capped     bool           `json:"capped,omitempty"`
	Skipped    string         `json:"skipped,omitempty"`
	Plans      []PlanCoverage `json:"plans,omitempty"`
}

// AuditResult is the outcome of one flow audit: the findings plus the
// per-client, per-plan coverage tables.
type AuditResult struct {
	Diagnostics []Diagnostic
	Coverage    []ClientCoverage
	// Complete: every client's whole valid-plan family was fully
	// flow-analyzed; when false, the universally quantified codes
	// (SUSC017/018/020) stayed silent rather than overclaim.
	Complete bool
}

// coverageRows builds the event × guarding-policies table of one flow.
func coverageRows(ct *policy.CompiledTable, flow *valid.PlanFlow) []CoverageRow {
	type agg struct {
		occ     int
		always  []string
		union   []string
		first   bool
		unguard bool
	}
	byEvent := map[string]*agg{}
	var order []string
	for _, ef := range flow.Events {
		a := byEvent[ef.Event]
		if a == nil {
			a = &agg{first: true}
			byEvent[ef.Event] = a
			order = append(order, ef.Event)
		}
		a.occ++
		rel := relevantPolicies(ct, eventName(ef.Event), ef.Active)
		if len(rel) == 0 {
			a.unguard = true
		}
		a.union = mergeSorted(a.union, rel)
		if a.first {
			a.always = append([]string(nil), rel...)
			a.first = false
		} else {
			a.always = intersectSorted(a.always, rel)
		}
	}
	sort.Strings(order)
	rows := make([]CoverageRow, 0, len(order))
	for _, ev := range order {
		a := byEvent[ev]
		watched := ct.WatchedMask(eventName(ev)) != 0
		var sometimes []string
		for _, id := range a.union {
			if i := sort.SearchStrings(a.always, id); i >= len(a.always) || a.always[i] != id {
				sometimes = append(sometimes, id)
			}
		}
		rows = append(rows, CoverageRow{
			Event:       ev,
			Occurrences: a.occ,
			Guards:      a.always,
			Sometimes:   sometimes,
			Unguarded:   watched && a.unguard,
			Unwatched:   !watched,
		})
	}
	return rows
}

func intersectSorted(a, b []string) []string {
	var out []string
	for _, s := range a {
		if i := sort.SearchStrings(b, s); i < len(b) && b[i] == s {
			out = append(out, s)
		}
	}
	return out
}

// coverageOf materialises the audit state into the exported coverage model.
func coverageOf(p *Pass, st *auditState) []ClientCoverage {
	ct := p.File.Table.Compiled()
	out := make([]ClientCoverage, 0, len(st.clients))
	for ci := range st.clients {
		ca := &st.clients[ci]
		cc := ClientCoverage{
			Client:     ca.name,
			ValidPlans: ca.totalValid,
			Audited:    len(ca.plans),
			Capped:     ca.capped,
			Skipped:    ca.skipped,
		}
		for _, pa := range ca.plans {
			pc := PlanCoverage{
				Plan:   map[string]string{},
				States: pa.flow.States,
				Cached: pa.cached,
				Rows:   coverageRows(ct, pa.flow),
			}
			for r, l := range pa.plan {
				pc.Plan[string(r)] = string(l)
			}
			cc.Plans = append(cc.Plans, pc)
		}
		out = append(out, cc)
	}
	return out
}

// Audit runs the flow-audit suite over an already-parsed file and returns
// the findings together with the coverage tables. Analyzer selection,
// budget metering, caching and severity filtering follow Run.
func Audit(f *parser.File, issues []parser.Issue, opts Options) *AuditResult {
	pass := newPass(f, issues, opts)
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = AuditAnalyzers()
	}
	diags := runSuite(pass, analyzers, opts)
	res := &AuditResult{Diagnostics: diags}
	if st := pass.audit; st != nil {
		res.Coverage = coverageOf(pass, st)
		res.Complete = st.complete
	}
	return res
}

// AuditSource audits a source file from its text; syntax errors come back
// as a single SUSC000 diagnostic, like Source.
func AuditSource(src string, opts Options) *AuditResult {
	f, issues, err := parser.ParseFileLenient(src)
	if err != nil {
		return &AuditResult{Diagnostics: sourceErrorDiags(err, opts)}
	}
	return Audit(f, issues, opts)
}

// planLabel renders a plan for the text table ("{}" for the empty plan).
func planLabel(plan map[string]string) string {
	if len(plan) == 0 {
		return "{}"
	}
	reqs := make([]string, 0, len(plan))
	for r := range plan {
		reqs = append(reqs, r)
	}
	sort.Strings(reqs)
	parts := make([]string, len(reqs))
	for i, r := range reqs {
		parts[i] = r + ">" + plan[r]
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// RenderCoverage renders the per-client, per-plan coverage tables as
// plain text, the default `susc audit` output under the findings.
func (r *AuditResult) RenderCoverage() string {
	var b strings.Builder
	for _, cc := range r.Coverage {
		fmt.Fprintf(&b, "client %s: %d valid plan(s), %d audited", cc.Client, cc.ValidPlans, cc.Audited)
		if cc.Capped {
			b.WriteString(" (capped)")
		}
		b.WriteString("\n")
		if cc.Skipped != "" {
			fmt.Fprintf(&b, "  skipped: %s\n", cc.Skipped)
			continue
		}
		for _, pc := range cc.Plans {
			fmt.Fprintf(&b, "  plan %s (%d states)\n", planLabel(pc.Plan), pc.States)
			if len(pc.Rows) == 0 {
				b.WriteString("    no events reachable\n")
				continue
			}
			width := len("event")
			for _, row := range pc.Rows {
				if len(row.Event) > width {
					width = len(row.Event)
				}
			}
			fmt.Fprintf(&b, "    %-*s  occ  guarded by\n", width, "event")
			for _, row := range pc.Rows {
				fmt.Fprintf(&b, "    %-*s  %3d  %s\n", width, row.Event, row.Occurrences, row.guardCell())
			}
		}
	}
	return b.String()
}

// guardCell renders the guarding-policies column of one row.
func (row CoverageRow) guardCell() string {
	if row.Unwatched {
		return "(unwatched)"
	}
	var parts []string
	if len(row.Guards) > 0 {
		parts = append(parts, strings.Join(row.Guards, ", "))
	}
	if len(row.Sometimes) > 0 {
		parts = append(parts, fmt.Sprintf("sometimes: %s", strings.Join(row.Sometimes, ", ")))
	}
	if row.Unguarded {
		parts = append(parts, "UNGUARDED")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "; ")
}
