package lint

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"susc/internal/memo"
	"susc/internal/parser"
)

var update = flag.Bool("update", false, "rewrite .lint.golden files")

// render prints diagnostics the way `susc lint` does, minus the file name
// prefix, so golden files stay valid if fixtures move. Witnesses (semantic
// diagnostics only) are rendered indented below their finding.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s\n", d)
		for _, r := range d.Related {
			fmt.Fprintf(&b, "\t%s: %s\n", r.Span, r.Message)
		}
		if d.Witness != nil {
			for _, line := range strings.Split(strings.TrimRight(d.Witness.Render(""), "\n"), "\n") {
				fmt.Fprintf(&b, "\t%s\n", line)
			}
		}
	}
	return b.String()
}

// specFiles lists every .susc file under the given roots (relative to
// this package directory).
func specFiles(t *testing.T, roots ...string) []string {
	t.Helper()
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".susc") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walk %s: %v", root, err)
		}
	}
	return files
}

// TestGolden lints every specification shipped in the repository — the
// dedicated fixtures here, the top-level testdata, and the examples —
// and compares the rendered diagnostics against sibling .lint.golden
// files. Fixtures under testdata/semantic run the full suite (default +
// semantic analyzers), everything else the default suite, so pre-existing
// goldens stay byte-stable. Run with -update to regenerate.
func TestGolden(t *testing.T) {
	cache := memo.New()
	for _, path := range specFiles(t, "testdata", "../../testdata", "../../examples") {
		t.Run(path, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Cache: cache}
			if strings.Contains(filepath.ToSlash(path), "testdata/semantic/") {
				opts.Analyzers = AllAnalyzers()
			}
			got := render(Source(string(src), opts))
			golden := path + ".lint.golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/lint -run TestGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("lint output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestFixtureCodes pins each dedicated fixture to the exact diagnostic
// codes it must trigger — one finding per analyzer under test — and
// checks that together the fixtures cover every published code.
func TestFixtureCodes(t *testing.T) {
	expected := map[string][]string{
		"parse_error.susc":            {CodeIllFormed},
		"susc000_illformed.susc":      {CodeIllFormed},
		"susc001_noncontractive.susc": {CodeNonContractive},
		"susc002_framing.susc":        {CodeFraming},
		"susc003_vacuous.susc":        {CodeVacuousPolicy},
		"susc004_contradiction.susc":  {CodeAlwaysViolated},
		"susc005_deadservice.susc":    {CodeDeadService},
		"susc006_unmatched.susc":      {CodeUnmatchedRequest},
		"susc007_duplicates.susc":     {CodeDuplicateDecl},
		"susc008_unusedinstance.susc": {CodeUnusedInstance},
		"susc009_unusedpolicy.susc":   {CodeUnusedPolicy},
		"susc010_danglingref.susc":    {CodeDanglingRef},
		"susc010_unknownpolicy.susc":  {CodeDanglingRef},
		"susc010_unopened.susc":       {CodeDanglingRef},
		"clean.susc":                  {},
	}
	covered := map[string]bool{}
	cache := memo.New()
	for name, want := range expected {
		src, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		diags := Source(string(src), Options{Cache: cache})
		var got []string
		for _, d := range diags {
			got = append(got, d.Code)
			covered[d.Code] = true
			if d.Span.IsZero() {
				t.Errorf("%s: diagnostic %s has no source span: %s", name, d.Code, d)
			}
		}
		if !equalStrings(got, want) {
			t.Errorf("%s: got codes %v, want %v", name, got, want)
		}
	}
	all := []string{
		CodeIllFormed, CodeNonContractive, CodeFraming, CodeVacuousPolicy,
		CodeAlwaysViolated, CodeDeadService, CodeUnmatchedRequest,
		CodeDuplicateDecl, CodeUnusedInstance, CodeUnusedPolicy, CodeDanglingRef,
	}
	for _, code := range all {
		if !covered[code] {
			t.Errorf("no fixture triggers %s", code)
		}
	}
	// Every code an analyzer declares must be in the published set.
	known := map[string]bool{}
	for _, c := range all {
		known[c] = true
	}
	for _, c := range []string{
		CodeViolableFraming, CodeDeadlockableRequest, CodeUnrealizableRequest,
		CodeSubsumedFraming, CodeUnreachableState,
	} {
		known[c] = true
	}
	for _, a := range AllAnalyzers() {
		for _, c := range a.Codes {
			if !known[c] {
				t.Errorf("analyzer %s declares unpublished code %s", a.Name, c)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSeverity(t *testing.T) {
	for _, tc := range []struct {
		text string
		sev  Severity
	}{{"info", Info}, {"warning", Warning}, {"error", Error}} {
		got, err := ParseSeverity(tc.text)
		if err != nil || got != tc.sev {
			t.Errorf("ParseSeverity(%q) = %v, %v", tc.text, got, err)
		}
		if got.String() != tc.text {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.text)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal) succeeded, want error")
	}
}

// TestMinSeverity checks that the threshold filters findings: the
// dead-service fixture only warns, so at -severity error it is clean.
func TestMinSeverity(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "susc005_deadservice.susc"))
	if err != nil {
		t.Fatal(err)
	}
	if diags := Source(string(src), Options{MinSeverity: Error}); len(diags) != 0 {
		t.Errorf("MinSeverity=Error: got %d diagnostics, want 0: %v", len(diags), diags)
	}
	if diags := Source(string(src), Options{MinSeverity: Warning}); len(diags) != 1 {
		t.Errorf("MinSeverity=Warning: got %d diagnostics, want 1: %v", len(diags), diags)
	}
}

// TestStats checks that per-analyzer statistics cover the whole suite and
// account for every reported finding.
func TestStats(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "susc005_deadservice.susc"))
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	diags := Source(string(src), Options{Stats: &stats})
	if len(stats.Analyzers) != len(Analyzers()) {
		t.Fatalf("got %d analyzer stats, want %d", len(stats.Analyzers), len(Analyzers()))
	}
	total := 0
	for _, s := range stats.Analyzers {
		if s.Name == "" {
			t.Error("analyzer stat with empty name")
		}
		total += s.Findings
	}
	if total != len(diags) {
		t.Errorf("stats count %d findings, run reported %d", total, len(diags))
	}
}

// TestParseErrorSpan checks that a hard syntax error comes back as one
// positioned SUSC000 diagnostic instead of an error.
func TestParseErrorSpan(t *testing.T) {
	diags := Source("service = ;", Options{})
	if len(diags) != 1 || diags[0].Code != CodeIllFormed || diags[0].Severity != Error {
		t.Fatalf("got %v, want one SUSC000 error", diags)
	}
	if diags[0].Span.Start.Line != 1 || diags[0].Span.Start.Col == 0 {
		t.Errorf("parse error span = %v, want line 1 with a column", diags[0].Span)
	}
}

// TestRunStrictFile checks Run on a strictly parsed file (no issues):
// analyzer findings still appear.
func TestRunStrictFile(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "hotel.susc"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := parser.ParseFile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(f, nil, Options{})
	if len(diags) != 1 || diags[0].Code != CodeDeadService {
		t.Fatalf("hotel.susc: got %v, want exactly the s2 dead-service warning", diags)
	}
	if !strings.Contains(diags[0].Message, "s2") {
		t.Errorf("message %q does not name s2", diags[0].Message)
	}
}
