// Package lint is a static-analysis pass over specification files: a
// suite of analyzers inspects a parsed file and reports positioned,
// machine-readable diagnostics — dead services, vacuous policies,
// non-contractive recursion, dangling references and the like. It is the
// "explain why" companion to the yes/no answers of internal/valid,
// internal/compliance and internal/plans, in the spirit of go/analysis:
// each Analyzer is a named, documented unit with a Run function over a
// shared Pass.
//
// Diagnostics carry a stable code (SUSC000…SUSC010), a severity, a source
// span from the parser's side table, and optional related positions. The
// suite runs on leniently parsed files (parser.ParseFileLenient), so a
// single run can report several independent problems.
package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"susc/internal/budget"
	"susc/internal/faultinject"
	"susc/internal/memo"
	"susc/internal/parser"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info marks stylistic or dead-code findings.
	Info Severity = iota
	// Warning marks suspicious constructs that do not by themselves make
	// every plan invalid.
	Warning
	// Error marks findings that break the file for some or all analyses.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its lower-case name, keeping the
// JSON stream stable against renumbering.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON is the inverse of MarshalJSON; diagnostics round-trip
// through the persistent store as JSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity parses "info", "warning" or "error".
func ParseSeverity(text string) (Severity, error) {
	switch text {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("lint: unknown severity %q (want info, warning or error)", text)
}

// Diagnostic codes, one per finding class. Codes are stable public API:
// tests, editors and CI pipelines key on them.
const (
	// CodeIllFormed: the declaration does not satisfy the well-formedness
	// restrictions of Definition 1 (or the file does not parse at all).
	CodeIllFormed = "SUSC000"
	// CodeNonContractive: recursion that can diverge without progress —
	// an unguarded or non-tail recursion variable (μh.h).
	CodeNonContractive = "SUSC001"
	// CodeFraming: redundant or ill-nested security framings.
	CodeFraming = "SUSC002"
	// CodeVacuousPolicy: a policy whose offending state is unreachable —
	// its framings can never fire.
	CodeVacuousPolicy = "SUSC003"
	// CodeAlwaysViolated: a policy instance violated by the empty history —
	// every service framed with it is invalid.
	CodeAlwaysViolated = "SUSC004"
	// CodeDeadService: a repository service no request in the file
	// complies with — never selectable by any plan.
	CodeDeadService = "SUSC005"
	// CodeUnmatchedRequest: a request no repository service complies
	// with — every plan for its owner is invalid.
	CodeUnmatchedRequest = "SUSC006"
	// CodeDuplicateDecl: duplicate or shadowed declarations.
	CodeDuplicateDecl = "SUSC007"
	// CodeUnusedInstance: a policy instance never used in a with or
	// enforce clause.
	CodeUnusedInstance = "SUSC008"
	// CodeUnusedPolicy: a policy template never instantiated or used.
	CodeUnusedPolicy = "SUSC009"
	// CodeDanglingRef: a dangling reference — a plan binding to an
	// unknown service, a plan entry for a request nothing opens, or a
	// with/enforce clause naming an unknown policy instance.
	CodeDanglingRef = "SUSC010"

	// Semantic codes (SUSC011…SUSC015) are emitted by the whole-network
	// model-checking analyzers (SemanticAnalyzers); their diagnostics carry
	// a Witness — a minimal counterexample trace.

	// CodeViolableFraming: a declaration whose history can violate one of
	// its own framed policies (Theorem 1 model check fails).
	CodeViolableFraming = "SUSC011"
	// CodeDeadlockableRequest: a request whose conversation deadlocks
	// against the service its owner's plan binds it to, although some
	// other repository service would comply.
	CodeDeadlockableRequest = "SUSC012"
	// CodeUnrealizableRequest: every request of a client complies with
	// some service individually, yet no complete plan is valid — the
	// requests' constraints are jointly unsatisfiable.
	CodeUnrealizableRequest = "SUSC013"
	// CodeSubsumedFraming: a framing nested inside a framing of a
	// *different* policy whose language is strictly stronger on the
	// declaration's alphabet — the inner framing can never fire first.
	CodeSubsumedFraming = "SUSC014"
	// CodeUnreachableState: a usage-automaton state unreachable from the
	// start, or a transition that can never lie on a violating run.
	CodeUnreachableState = "SUSC015"

	// Audit codes (SUSC017…SUSC021) are emitted by the whole-network
	// security-flow audit (AuditAnalyzers, `susc audit`): an abstract
	// interpretation annotating every reachable event occurrence with its
	// active-framing set, per valid plan.

	// CodeUnguardedEvent: a critical event (one some declared policy
	// watches) reachable with no watching policy active, under every
	// audited plan in which it occurs.
	CodeUnguardedEvent = "SUSC017"
	// CodeRedundantFraming: a framing implied at every reachable opening
	// by the ambient active set — the whole-network generalisation of
	// SUSC014's pairwise, single-declaration check.
	CodeRedundantFraming = "SUSC018"
	// CodePlanDependentCoverage: an event guarded under some valid plans
	// but reachable unguarded under others.
	CodePlanDependentCoverage = "SUSC019"
	// CodeDeadPolicy: a policy referenced by some framing yet never
	// active on any reachable path of any valid plan.
	CodeDeadPolicy = "SUSC020"
	// CodeFramingLeak: a framing scope opened but never closed on some
	// path — a reachable configuration from which the scope can no longer
	// close.
	CodeFramingLeak = "SUSC021"

	// CodeInternalError: an analyzer panicked and was isolated — the
	// diagnostic's message carries the analyzer name and panic value as a
	// repro bundle, and the remaining analyzers ran to completion. Also
	// used when an analyzer's exploration was cut short by the budget, so
	// absent findings are never mistaken for clean code.
	CodeInternalError = "SUSC016"
)

// Related is a secondary position attached to a diagnostic (the first of
// two duplicate declarations, the policy template of a bad instance, …).
type Related struct {
	Span    parser.Span `json:"span"`
	Message string      `json:"message"`
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Code     string      `json:"code"`
	Severity Severity    `json:"severity"`
	Span     parser.Span `json:"span"`
	Message  string      `json:"message"`
	Related  []Related   `json:"related,omitempty"`
	// Witness is the structured counterexample attached by the semantic
	// analyzers (SUSC011–015); nil for syntactic findings.
	Witness *Witness `json:"witness,omitempty"`
}

// String renders the conventional single-line form
// "line:col: severity: message [CODE]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Span, d.Severity, d.Message, d.Code)
}

// An Analyzer is one named static-analysis unit, in the mould of
// golang.org/x/tools/go/analysis: Name and Doc identify and document it,
// Codes lists the diagnostic codes it may emit, and Run inspects the Pass
// and reports findings through it.
type Analyzer struct {
	Name  string
	Doc   string
	Codes []string
	Run   func(*Pass)
}

// Pass carries one lint run over one file: the parsed declarations, the
// issues lenient parsing collected, and the shared memoisation cache the
// expensive analyzers (dead-service, unmatched-request) draw compliance
// verdicts from.
type Pass struct {
	File   *parser.File
	Issues []parser.Issue
	Cache  *memo.Cache
	// Budget meters the semantic analyzers' explorations (nil =
	// unbounded). An exhausted budget stops the remaining analyzers and
	// is reported as one SUSC016 diagnostic.
	Budget *budget.Budget
	// AuditDeclaredOnly restricts the flow audit to each client's
	// declared plan instead of the whole valid-plan family (see
	// Options.AuditDeclaredOnly).
	AuditDeclaredOnly bool

	diags  []Diagnostic
	bodies []reqBody
	audit  *auditState
}

// Report adds a finding.
func (p *Pass) Report(d Diagnostic) { p.diags = append(p.diags, d) }

// Reportf adds a finding built from a format string.
func (p *Pass) Reportf(code string, sev Severity, span parser.Span, format string, args ...interface{}) {
	p.Report(Diagnostic{Code: code, Severity: sev, Span: span, Message: fmt.Sprintf(format, args...)})
}

// AnalyzerStat is the per-analyzer cost and yield of one run.
type AnalyzerStat struct {
	Name     string
	Findings int
	Duration time.Duration
}

// Stats collects per-analyzer statistics when Options.Stats is set.
type Stats struct {
	Analyzers []AnalyzerStat
}

// Options tunes a lint run.
type Options struct {
	// MinSeverity drops findings below this grade (default Info: keep all).
	MinSeverity Severity
	// Analyzers overrides the default suite (nil = all).
	Analyzers []*Analyzer
	// Cache supplies a shared memoisation cache; nil builds a fresh one.
	Cache *memo.Cache
	// Stats, when non-nil, receives per-analyzer wall time and counts.
	Stats *Stats
	// Budget meters the run (nil = unbounded); see Pass.Budget.
	Budget *budget.Budget
	// AuditDeclaredOnly restricts the flow audit (AuditAnalyzers) to each
	// client's declared plan instead of the whole valid-plan family —
	// `susc checkall` uses it to audit exactly the network as deployed.
	AuditDeclaredOnly bool
}

// Analyzers returns the default suite, in running order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		wellformedAnalyzer,
		duplicateAnalyzer,
		framingAnalyzer,
		vacuityAnalyzer,
		contradictionAnalyzer,
		deadServiceAnalyzer,
		unmatchedAnalyzer,
		unusedInstanceAnalyzer,
		unusedPolicyAnalyzer,
		referenceAnalyzer,
	}
}

// SemanticAnalyzers returns the model-checking suite (SUSC011–015), in
// running order. These analyzers explore whole state spaces and attach
// Witness counterexamples; they are not part of the default suite, so
// quick lint runs stay cheap and existing outputs stable. `susc explain`
// runs AllAnalyzers.
func SemanticAnalyzers() []*Analyzer {
	return []*Analyzer{
		violableAnalyzer,
		deadlockableAnalyzer,
		unrealizableAnalyzer,
		subsumedAnalyzer,
		deadAutomatonAnalyzer,
	}
}

// AllAnalyzers returns the default suite followed by the semantic suite.
func AllAnalyzers() []*Analyzer {
	return append(Analyzers(), SemanticAnalyzers()...)
}

// Run lints an already-parsed file. The issues argument carries what
// lenient parsing collected (nil for a strictly parsed file). Diagnostics
// come back deduplicated and ordered by position, code, message.
func Run(f *parser.File, issues []parser.Issue, opts Options) []Diagnostic {
	pass := newPass(f, issues, opts)
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	return runSuite(pass, analyzers, opts)
}

func newPass(f *parser.File, issues []parser.Issue, opts Options) *Pass {
	pass := &Pass{File: f, Issues: issues, Cache: opts.Cache, Budget: opts.Budget,
		AuditDeclaredOnly: opts.AuditDeclaredOnly}
	if pass.Cache == nil {
		pass.Cache = memo.New()
	}
	return pass
}

// runSuite drives a suite of analyzers over one pass: budget cutoffs and
// panics become SUSC016 diagnostics, and the result is deduplicated,
// ordered and severity-filtered.
func runSuite(pass *Pass, analyzers []*Analyzer, opts Options) []Diagnostic {
	stopped := false
	for _, a := range analyzers {
		// An exhausted budget stops the suite: a truncated analyzer's
		// silence must not read as a clean bill, so the cutoff is itself
		// a finding.
		if e := pass.Budget.Exhausted(); e != nil {
			pass.Reportf(CodeInternalError, Error, parser.Span{},
				"analysis stopped before %s: %s", a.Name, e)
			stopped = true
			break
		}
		before := len(pass.diags)
		start := time.Now()
		// Each analyzer runs inside a panic guard: a panicking analyzer
		// (injected or genuine) is isolated into one SUSC016 diagnostic
		// naming it, and the rest of the suite still runs.
		err := budget.Guard(a.Name, func() error {
			if faultinject.Enabled() {
				faultinject.Fire(faultinject.LintAnalyzer, a.Name)
			}
			a.Run(pass)
			return nil
		})
		if err != nil {
			pass.diags = pass.diags[:before] // drop the panicked analyzer's partial findings
			pass.Reportf(CodeInternalError, Error, parser.Span{},
				"analyzer %s failed: %s", a.Name, err)
		}
		if opts.Stats != nil {
			opts.Stats.Analyzers = append(opts.Stats.Analyzers, AnalyzerStat{
				Name:     a.Name,
				Findings: len(pass.diags) - before,
				Duration: time.Since(start),
			})
		}
	}
	if !stopped {
		// Exhaustion during the last analyzer still truncated it.
		if e := pass.Budget.Exhausted(); e != nil {
			pass.Reportf(CodeInternalError, Error, parser.Span{},
				"analysis stopped: %s", e)
		}
	}
	return finish(pass.diags, opts.MinSeverity)
}

// Source lints a source file from its text. Syntax errors do not fail the
// run: they come back as a single SUSC000 diagnostic anchored at the
// error position, so `susc lint` always yields positioned findings.
func Source(src string, opts Options) []Diagnostic {
	f, issues, err := parser.ParseFileLenient(src)
	if err != nil {
		return sourceErrorDiags(err, opts)
	}
	return Run(f, issues, opts)
}

// sourceErrorDiags turns a hard parse error into the single positioned
// SUSC000 diagnostic Source and AuditSource report.
func sourceErrorDiags(err error, opts Options) []Diagnostic {
	d := Diagnostic{Code: CodeIllFormed, Severity: Error, Message: err.Error()}
	var pe *parser.Error
	if errors.As(err, &pe) {
		pos := parser.Pos{Line: pe.Line, Col: pe.Col}
		d.Span = parser.Span{Start: pos, End: pos}
		d.Message = pe.Msg
	}
	return finish([]Diagnostic{d}, opts.MinSeverity)
}

// finish deduplicates, orders and filters a diagnostic list.
func finish(diags []Diagnostic, min Severity) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		if d.Severity >= min {
			kept = append(kept, d)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		if kept[i].Span != kept[j].Span {
			return kept[i].Span.Before(kept[j].Span)
		}
		if kept[i].Code != kept[j].Code {
			return kept[i].Code < kept[j].Code
		}
		return kept[i].Message < kept[j].Message
	})
	out := kept[:0]
	for i, d := range kept {
		if i > 0 && d.Code == kept[i-1].Code && d.Span == kept[i-1].Span && d.Message == kept[i-1].Message {
			continue
		}
		out = append(out, d)
	}
	return out
}
