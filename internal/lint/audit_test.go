package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"susc/internal/hash"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/parser"
	"susc/internal/policy"
	"susc/internal/store"
)

// renderAudit prints an audit result the way `susc audit` does, minus the
// file name prefix: the findings (with witnesses) followed by the
// coverage tables, plus the incompleteness marker.
func renderAudit(res *AuditResult) string {
	var b strings.Builder
	b.WriteString(render(res.Diagnostics))
	b.WriteString(res.RenderCoverage())
	if !res.Complete {
		b.WriteString("audit incomplete\n")
	}
	return b.String()
}

// TestAuditGolden audits every specification shipped in the repository
// and compares the rendered findings and coverage tables against sibling
// .audit.golden files. Run with -update to regenerate (the flag is shared
// with TestGolden).
func TestAuditGolden(t *testing.T) {
	cache := memo.New()
	for _, path := range specFiles(t, "testdata", "../../testdata", "../../examples") {
		t.Run(path, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			got := renderAudit(AuditSource(string(src), Options{Cache: cache}))
			golden := path + ".audit.golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/lint -run TestAuditGolden -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("audit output mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestAuditFixtureCodes pins each audit fixture to the exact codes it
// must trigger, and checks the fixtures jointly cover SUSC017–021.
func TestAuditFixtureCodes(t *testing.T) {
	expected := map[string][]string{
		"susc017_unguarded.susc":     {CodeUnguardedEvent},
		"susc018_redundant.susc":     {CodeRedundantFraming},
		"susc019_plandependent.susc": {CodePlanDependentCoverage},
		"susc020_deadpolicy.susc":    {CodeDeadPolicy},
		"susc021_scopeleak.susc":     {CodeFramingLeak},
		"clean.susc":                 {},
	}
	covered := map[string]bool{}
	cache := memo.New()
	for name, want := range expected {
		src, err := os.ReadFile(filepath.Join("testdata", "audit", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := AuditSource(string(src), Options{Cache: cache})
		if !res.Complete {
			t.Errorf("%s: audit incomplete — the fixtures must be fully analysable", name)
		}
		var got []string
		for _, d := range res.Diagnostics {
			got = append(got, d.Code)
			covered[d.Code] = true
			if d.Span.IsZero() {
				t.Errorf("%s: diagnostic %s has no source span: %s", name, d.Code, d)
			}
			if d.Witness == nil {
				t.Errorf("%s: audit diagnostic %s carries no witness", name, d.Code)
			}
		}
		if !equalStrings(got, want) {
			t.Errorf("%s: got codes %v, want %v", name, got, want)
		}
	}
	for _, code := range []string{CodeUnguardedEvent, CodeRedundantFraming,
		CodePlanDependentCoverage, CodeDeadPolicy, CodeFramingLeak} {
		if !covered[code] {
			t.Errorf("no audit fixture triggers %s", code)
		}
	}
}

// replayWitness re-runs a witness trace on the actual network semantics:
// from the client's initial configuration under the witness's plan, it
// follows the recorded labels (DFS over the matching moves, since a label
// may resolve to several successors) and returns the monitor state the
// trace ends in. The replay proves the trace is executable — every
// audit finding must survive it.
func replayWitness(t *testing.T, f *parser.File, c parser.ClientDecl, w *Witness) *history.Monitor {
	t.Helper()
	plan := network.Plan{}
	for r, l := range w.Plan {
		plan[hexpr.RequestID(r)] = hexpr.Location(l)
	}
	cache := memo.New()
	var dfs func(tree network.Node, mon *history.Monitor, step int) *history.Monitor
	dfs = func(tree network.Node, mon *history.Monitor, step int) *history.Monitor {
		if step == len(w.Steps) {
			return mon
		}
		want := w.Steps[step].Label
		for _, m := range network.TreeMovesStep(tree, plan, f.Repo, cache.Steps) {
			if m.Label.String() != want {
				continue
			}
			next := mon
			if len(m.Items) > 0 {
				next = mon.Snapshot()
				ok := true
				for _, it := range m.Items {
					if err := next.Append(it); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
			}
			if got := dfs(m.Tree, next, step+1); got != nil {
				return got
			}
		}
		return nil
	}
	got := dfs(network.Leaf{Loc: c.Loc, Expr: c.Expr}, history.NewMonitor(f.Table), 0)
	if got == nil {
		t.Fatalf("witness trace %v is not executable on the network semantics", labelsOf(w))
	}
	return got
}

func labelsOf(w *Witness) []string {
	var out []string
	for _, s := range w.Steps {
		out = append(out, s.Label)
	}
	return out
}

// auditFixture audits one fixture and returns the parsed file plus the
// single expected diagnostic.
func auditFixture(t *testing.T, name, code string) (*parser.File, Diagnostic) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "audit", name))
	if err != nil {
		t.Fatal(err)
	}
	f, issues, err := parser.ParseFileLenient(string(src))
	if err != nil {
		t.Fatal(err)
	}
	res := Audit(f, issues, Options{Cache: memo.New()})
	for _, d := range res.Diagnostics {
		if d.Code == code {
			return f, d
		}
	}
	t.Fatalf("%s: no %s finding", name, code)
	return nil, Diagnostic{}
}

// clientOf resolves the client a witness belongs to: the one whose
// replayed trace is executable. Fixtures name the offending client in the
// message, so match on that.
func clientOf(t *testing.T, f *parser.File, d Diagnostic) parser.ClientDecl {
	t.Helper()
	for _, c := range f.Clients {
		if strings.Contains(d.Message, " client "+c.Name+" ") ||
			strings.Contains(d.Message, " in client "+c.Name) ||
			strings.HasSuffix(d.Message, " "+c.Name) {
			return c
		}
	}
	// Findings not tied to one client (SUSC018) replay on the client the
	// witness plan belongs to: the first client whose declared plan
	// matches, else the only client.
	if len(f.Clients) == 1 {
		return f.Clients[0]
	}
	t.Fatalf("cannot resolve the witness's client for %s: %s", d.Code, d.Message)
	return parser.ClientDecl{}
}

// TestReplaySUSC017: the uncovered witness executes, and at its end the
// reported event has just fired with no watching policy active.
func TestReplaySUSC017(t *testing.T) {
	f, d := auditFixture(t, "susc017_unguarded.susc", CodeUnguardedEvent)
	c := clientOf(t, f, d)
	mon := replayWitness(t, f, c, d.Witness)
	// The last step performs the event; the watching policies active at
	// the end must not include any watcher of `read` (opening framings in
	// the last step would have changed the mask, and there are none).
	ct := f.Table.Compiled()
	if got := relevantPolicies(ct, "read", activeIDs(mon, ct)); len(got) != 0 {
		t.Errorf("read replayed with watching policies %v active, want none", got)
	}
	if ct.WatchedMask("read") == 0 {
		t.Error("fixture broken: read must be critical")
	}
}

// TestReplaySUSC018: the redundant-framing witness executes, and at its
// end both the implied framing and its ambient cover are active.
func TestReplaySUSC018(t *testing.T) {
	f, d := auditFixture(t, "susc018_redundant.susc", CodeRedundantFraming)
	c := clientOf(t, f, d)
	mon := replayWitness(t, f, c, d.Witness)
	active := mon.Active()
	if active[hexpr.PolicyID("two_inner[]")] == 0 {
		t.Errorf("replay must end with the redundant framing open, active = %v", active)
	}
	if active[hexpr.PolicyID("two_outer[]")] == 0 {
		t.Errorf("replay must end with the ambient policy active, active = %v", active)
	}
}

// TestReplaySUSC019: the plan-coverage witness executes under the
// unguarded plan and ends with the critical event bare.
func TestReplaySUSC019(t *testing.T) {
	f, d := auditFixture(t, "susc019_plandependent.susc", CodePlanDependentCoverage)
	c := clientOf(t, f, d)
	if d.Witness.Plan["r1"] != "sb" {
		t.Fatalf("witness must replay under the unguarded plan, got %v", d.Witness.Plan)
	}
	mon := replayWitness(t, f, c, d.Witness)
	ct := f.Table.Compiled()
	if got := relevantPolicies(ct, "act", activeIDs(mon, ct)); len(got) != 0 {
		t.Errorf("act replayed with watching policies %v active, want none", got)
	}
}

// TestReplaySUSC020: the dead-policy witness has no steps — there is no
// activation to replay; the claim is the absence of one.
func TestReplaySUSC020(t *testing.T) {
	_, d := auditFixture(t, "susc020_deadpolicy.susc", CodeDeadPolicy)
	if len(d.Witness.Steps) != 0 {
		t.Errorf("dead-policy witness must be stepless, got %v", labelsOf(d.Witness))
	}
	if d.Witness.Note == "" {
		t.Error("dead-policy witness must explain the audited plan count")
	}
}

// TestReplaySUSC021: the scope-leak witness executes and ends inside the
// leaking scope — the policy is active when the trace stops.
func TestReplaySUSC021(t *testing.T) {
	f, d := auditFixture(t, "susc021_scopeleak.susc", CodeFramingLeak)
	c := clientOf(t, f, d)
	mon := replayWitness(t, f, c, d.Witness)
	if mon.Active()[hexpr.PolicyID("leakp[]")] == 0 {
		t.Errorf("replay must end with the leaking scope open, active = %v", mon.Active())
	}
}

// activeIDs renders the monitor's active set as policy-id strings.
func activeIDs(mon *history.Monitor, ct *policy.CompiledTable) []string {
	var out []string
	for id, n := range mon.Active() {
		if n > 0 {
			out = append(out, string(id))
		}
	}
	return out
}

// TestAuditCoverageShape pins the exported coverage model on the
// plan-dependent fixture: both plans appear, the guarded one lists the
// policy, the unguarded one flags the row.
func TestAuditCoverageShape(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "audit", "susc019_plandependent.susc"))
	if err != nil {
		t.Fatal(err)
	}
	res := AuditSource(string(src), Options{Cache: memo.New()})
	if len(res.Coverage) != 1 {
		t.Fatalf("coverage clients = %d, want 1", len(res.Coverage))
	}
	cc := res.Coverage[0]
	if cc.Client != "c" || cc.ValidPlans != 2 || cc.Audited != 2 {
		t.Fatalf("client coverage = %+v, want c with 2/2 plans", cc)
	}
	var guarded, unguarded *PlanCoverage
	for i := range cc.Plans {
		switch cc.Plans[i].Plan["r1"] {
		case "sg":
			guarded = &cc.Plans[i]
		case "sb":
			unguarded = &cc.Plans[i]
		}
	}
	if guarded == nil || unguarded == nil {
		t.Fatalf("both plans must be audited, got %+v", cc.Plans)
	}
	g := guarded.Rows[0]
	if g.Event != "act" || len(g.Guards) != 1 || g.Guards[0] != "two[]" || g.Unguarded {
		t.Errorf("guarded row = %+v, want act guarded by two[]", g)
	}
	u := unguarded.Rows[0]
	if u.Event != "act" || len(u.Guards) != 0 || !u.Unguarded {
		t.Errorf("unguarded row = %+v, want act flagged UNGUARDED", u)
	}
}

// TestAuditDeclaredOnly pins the checkall mode: only declared plans are
// flow-analyzed, so the plan-dependent fixture (whose client declares no
// plan) is skipped and reported incomplete.
func TestAuditDeclaredOnly(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "audit", "susc019_plandependent.susc"))
	if err != nil {
		t.Fatal(err)
	}
	res := AuditSource(string(src), Options{Cache: memo.New(), AuditDeclaredOnly: true})
	if res.Complete {
		t.Error("declared-only audit of a plan-less client must be incomplete")
	}
	if len(res.Diagnostics) != 0 {
		t.Errorf("no findings expected from the skipped client, got %v", res.Diagnostics)
	}
	if len(res.Coverage) != 1 || res.Coverage[0].Skipped == "" {
		t.Errorf("coverage must record the skip reason, got %+v", res.Coverage)
	}
	// The unguarded fixture declares plans for both clients: the declared
	// mode reproduces SUSC017 without enumerating the family.
	src2, err := os.ReadFile(filepath.Join("testdata", "audit", "susc017_unguarded.susc"))
	if err != nil {
		t.Fatal(err)
	}
	res2 := AuditSource(string(src2), Options{Cache: memo.New(), AuditDeclaredOnly: true})
	found := false
	for _, d := range res2.Diagnostics {
		if d.Code == CodeUnguardedEvent {
			found = true
		}
	}
	if !found {
		t.Errorf("declared-only audit must still report SUSC017, got %v", res2.Diagnostics)
	}
}

// TestAuditDiskTier: flows persist under KindAudit and replay on the next
// run; the second audit is all disk hits.
func TestAuditDiskTier(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "audit", "clean.susc"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	open := func() *store.Store {
		st, err := store.Open(filepath.Join(dir, "susc.store"), hash.Fingerprint())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	disk := open()
	cache := memo.New()
	cache.AttachDisk(disk)
	res := AuditSource(string(src), Options{Cache: cache})
	if len(res.Diagnostics) != 0 {
		t.Fatalf("clean fixture reported %v", res.Diagnostics)
	}
	if st := disk.Stats(); st.PerKind[store.KindAudit].Writebacks == 0 {
		t.Error("first audit must write flow records back to the store")
	}
	disk.Close()

	disk = open()
	cache = memo.New()
	cache.AttachDisk(disk)
	res = AuditSource(string(src), Options{Cache: cache})
	st := disk.Stats()
	if st.PerKind[store.KindAudit].Hits == 0 || st.PerKind[store.KindAudit].Misses != 0 {
		t.Errorf("second audit must replay from disk: audit tier %+v", st.PerKind[store.KindAudit])
	}
	if len(res.Coverage) != 1 || len(res.Coverage[0].Plans) != 1 || !res.Coverage[0].Plans[0].Cached {
		t.Errorf("replayed coverage must be marked cached, got %+v", res.Coverage)
	}
	disk.Close()
}
