package lint

import (
	"fmt"

	"susc/internal/autom"
	"susc/internal/hexpr"
	"susc/internal/parser"
	"susc/internal/plans"
	"susc/internal/policy"
	"susc/internal/valid"
	"susc/internal/verify"
)

// maxSemanticPlans bounds the plan spaces the unrealizable-request
// analyzer explores; larger clients are skipped rather than reported
// incompletely.
const maxSemanticPlans = 512

// --- SUSC011: violable framings ------------------------------------------

var violableAnalyzer = &Analyzer{
	Name:  "violable",
	Doc:   "model-check every declaration against the policies it frames (Theorem 1) and report each framing some history of the declaration can violate, with a shortest violating history as witness",
	Codes: []string{CodeViolableFraming},
	Run: func(pass *Pass) {
		for _, d := range pass.decls() {
			if pass.Budget.Exhausted() != nil {
				return // the suite loop reports the cutoff as SUSC016
			}
			ces, err := valid.FindCounterexamplesBudget(d.expr, pass.File.Table, pass.Budget)
			if err != nil {
				continue // unknown policies are the reference analyzer's turf
			}
			for _, ce := range ces {
				span := d.span
				if s := policyRefSpan(d.exprs, string(ce.Policy)); !s.IsZero() {
					span = s
				}
				pass.Report(Diagnostic{
					Code: CodeViolableFraming, Severity: Error, Span: span,
					Message: fmt.Sprintf("%s can violate policy %s: a %d-step history reaches the offending state",
						d.what(), policyLabel(pass.File, ce.Policy), len(ce.Trace)),
					Witness: violationWitness(ce, d.exprs),
				})
			}
		}
	},
}

// policyRefSpan returns the span of the first with/enforce reference
// resolving to the given policy identifier.
func policyRefSpan(exprs *parser.ExprSpans, id string) parser.Span {
	if exprs == nil {
		return parser.Span{}
	}
	for _, ns := range exprs.Policies {
		if ns.ID == id {
			return ns.Span
		}
	}
	return parser.Span{}
}

// --- SUSC012: deadlockable requests ---------------------------------------

var deadlockableAnalyzer = &Analyzer{
	Name:  "deadlockable",
	Doc:   "report requests whose conversation deadlocks against the service the owner's plan binds them to even though other repository services comply, with the shortest stuck run as witness",
	Codes: []string{CodeDeadlockableRequest},
	Run: func(pass *Pass) {
		for i, c := range pass.File.Clients {
			if pass.Budget.Exhausted() != nil {
				return // the suite loop reports the cutoff as SUSC016
			}
			if len(c.Plan) == 0 {
				continue
			}
			exprs := pass.clientExprSpans(i)
			seen := map[hexpr.RequestID]bool{}
			hexpr.Walk(c.Expr, func(x hexpr.Expr) {
				s, ok := x.(hexpr.Session)
				if !ok || seen[s.Req] {
					return
				}
				seen[s.Req] = true
				loc, bound := c.Plan[s.Req]
				if !bound {
					return
				}
				svc, known := pass.File.Repo[loc]
				if !known {
					return // dangling binding: the reference analyzer's turf
				}
				if ok, _ := pass.Cache.Compliant(s.Body, svc); ok {
					return
				}
				// Only report when the request is matchable at all; a body no
				// service complies with is the unmatched analyzer's turf.
				matchable := false
				for _, other := range pass.File.ServiceOrder {
					if other == loc {
						continue
					}
					if ok, err := pass.Cache.Compliant(s.Body, pass.File.Repo[other]); err == nil && ok {
						matchable = true
						break
					}
				}
				if !matchable {
					return
				}
				p, err := pass.Cache.Product(s.Body, svc)
				if err != nil {
					return
				}
				cw := p.FindWitness()
				if cw == nil {
					return
				}
				pass.Report(Diagnostic{
					Code: CodeDeadlockableRequest, Severity: Error, Span: pass.planTargetSpan(i, s.Req),
					Message: fmt.Sprintf("request %s of client %s deadlocks against service %s bound by its plan (another service in the repository complies)",
						s.Req, c.Name, loc),
					Witness: deadlockWitness(cw, exprs),
				})
			})
		}
	},
}

func (p *Pass) planTargetSpan(i int, req hexpr.RequestID) parser.Span {
	if t := p.spanTable(); t != nil && i < len(t.PlanTargets) {
		if s, ok := t.PlanTargets[i][string(req)]; ok {
			return s
		}
	}
	return p.clientSpan(i)
}

// --- SUSC013: unrealizable requests ---------------------------------------

var unrealizableAnalyzer = &Analyzer{
	Name:  "unrealizable",
	Doc:   "report clients whose every request complies with some repository service individually, yet for which no complete plan is valid — the requests' constraints are jointly unsatisfiable; a representative failing plan is the witness",
	Codes: []string{CodeUnrealizableRequest},
	Run: func(pass *Pass) {
		for i, c := range pass.File.Clients {
			if pass.Budget.Exhausted() != nil {
				return // the suite loop reports the cutoff as SUSC016
			}
			if len(hexpr.Requests(c.Expr)) == 0 {
				continue
			}
			// Every request must match some service individually: bodies no
			// service complies with are the unmatched analyzer's turf.
			allMatched := true
			seen := map[hexpr.RequestID]bool{}
			hexpr.Walk(c.Expr, func(x hexpr.Expr) {
				s, ok := x.(hexpr.Session)
				if !ok || seen[s.Req] || !allMatched {
					return
				}
				seen[s.Req] = true
				matched := false
				for _, loc := range pass.File.ServiceOrder {
					if ok, err := pass.Cache.Compliant(s.Body, pass.File.Repo[loc]); err == nil && ok {
						matched = true
						break
					}
				}
				if !matched {
					allMatched = false
				}
			})
			if !allMatched {
				continue
			}
			as, err := plans.AssessAll(pass.File.Repo, pass.File.Table, c.Loc, c.Expr, plans.Options{
				PruneNonCompliant: true,
				MaxPlans:          maxSemanticPlans,
				Cache:             pass.Cache,
				Budget:            pass.Budget,
				// The sweep is an existence probe over the whole plan
				// family; its per-plan verdicts stay in the memory tier
				// (the lint result itself is persisted whole-file).
				MemoryTierOnly: true,
			})
			if err != nil || len(as) == 0 {
				continue // plan space too large or empty: nothing sound to say
			}
			rep := as[0]
			anyValid, anyUnknown := false, false
			for _, a := range as {
				switch a.Report.Verdict {
				case verify.Valid:
					anyValid = true
				case verify.Unknown:
					anyUnknown = true
				}
			}
			// An Unknown verdict means some plan's exploration was cut
			// short: "none of the assessed plans is valid" is no longer
			// evidence that no valid plan exists, so stay silent rather
			// than report a false SUSC013.
			if anyValid || anyUnknown {
				continue
			}
			w := &Witness{Kind: WitnessNoPlan}
			for _, r := range sortedRequests(rep.Plan) {
				w.Steps = append(w.Steps, WitnessStep{
					Label: fmt.Sprintf("%s -> %s", r, rep.Plan[r]),
					Span:  pass.planTargetSpan(i, r),
				})
			}
			w.Note = fmt.Sprintf("representative plan fails: %s (%d plans examined, none valid)", rep.Report, len(as))
			pass.Report(Diagnostic{
				Code: CodeUnrealizableRequest, Severity: Error, Span: pass.clientSpan(i),
				Message: fmt.Sprintf("client %s is unrealizable: every request complies with some service, yet none of its %d complete plans is valid",
					c.Name, len(as)),
				Witness: w,
			})
		}
	},
}

// --- SUSC014: subsumed framings -------------------------------------------

var subsumedAnalyzer = &Analyzer{
	Name:  "subsumed",
	Doc:   "report framings nested inside a framing of a different policy that already forbids, on the declaration's events, every trace the inner one forbids (language inclusion over usage automata): the inner framing can never fire first",
	Codes: []string{CodeSubsumedFraming},
	Run: func(pass *Pass) {
		for _, d := range pass.decls() {
			if pass.Budget.Exhausted() != nil {
				return // the suite loop reports the cutoff as SUSC016
			}
			events := dedupEvents(hexpr.Events(d.expr))
			if len(events) == 0 {
				continue
			}
			var alphabet []string
			for _, ev := range events {
				alphabet = append(alphabet, ev.String())
			}
			// The inclusion checks run on compiled (dense-table) automata
			// memoised in the shared cache, keyed on the interned
			// (instance, alphabet) signature: declarations sharing an event
			// alphabet determinise and compile each policy exactly once.
			alphaSig := ""
			for _, sym := range alphabet {
				alphaSig += "\x01" + sym
			}
			dfas := map[hexpr.PolicyID]*autom.Compiled{}
			instances := map[hexpr.PolicyID]*policy.Instance{}
			automatonFor := func(id hexpr.PolicyID) bool {
				if _, ok := dfas[id]; ok {
					return true
				}
				in, err := pass.File.Table.Get(id)
				if err != nil {
					return false
				}
				instances[id] = in
				dfas[id] = pass.Cache.CompiledDFA("susc014:"+string(id)+alphaSig, func() *autom.DFA {
					return instanceNFA(in, events).Determinize(alphabet)
				})
				return true
			}
			reported := map[string]bool{}
			check := func(outer, inner hexpr.PolicyID) {
				key := string(outer) + "\x00" + string(inner)
				if outer == inner || reported[key] {
					return
				}
				if !automatonFor(outer) || !automatonFor(inner) {
					return
				}
				if dfas[inner].IsEmpty() {
					return // vacuous on this alphabet: the vacuity analyzer's turf
				}
				included, _ := dfas[inner].Included(dfas[outer])
				if !included {
					return
				}
				reported[key] = true
				word, _ := dfas[inner].AcceptingRun()
				w := &Witness{Kind: WitnessSubsumption}
				out := instances[outer]
				w.Start = out.StateName(out.StartState())
				// The NFA is only needed to reconstruct the outer automaton's
				// run for the witness, so it is built on the (rare) report path.
				run := instanceNFA(out, events).RunFor(word)
				for k, sym := range word {
					st := ""
					if run != nil && k+1 < len(run) {
						st = out.StateName(run[k+1])
					}
					w.Steps = append(w.Steps, WitnessStep{
						Label: sym, State: st, Span: eventOrChannelSpan(d.exprs, sym),
					})
				}
				w.Note = fmt.Sprintf("every trace %s forbids on these events is already forbidden by %s; shown: a shortest trace both forbid, with %s's run",
					policyLabel(pass.File, inner), policyLabel(pass.File, outer), policyLabel(pass.File, outer))
				span := d.span
				if s := policyRefSpan(d.exprs, string(inner)); !s.IsZero() {
					span = s
				}
				pass.Report(Diagnostic{
					Code: CodeSubsumedFraming, Severity: Warning, Span: span,
					Message: fmt.Sprintf("%s frames policy %s inside a framing of %s, which already forbids every trace it forbids: the inner framing never fires first",
						d.what(), policyLabel(pass.File, inner), policyLabel(pass.File, outer)),
					Witness: w,
				})
			}
			var walk func(e hexpr.Expr, active []hexpr.PolicyID)
			inspect := func(pol hexpr.PolicyID, body hexpr.Expr, active []hexpr.PolicyID) {
				if pol != hexpr.NoPolicy {
					for _, outer := range active {
						check(outer, pol)
					}
					active = append(active, pol)
				}
				walk(body, active)
			}
			walk = func(e hexpr.Expr, active []hexpr.PolicyID) {
				switch t := e.(type) {
				case hexpr.Seq:
					walk(t.Left, active)
					walk(t.Right, active)
				case hexpr.Rec:
					walk(t.Body, active)
				case hexpr.ExtChoice:
					for _, b := range t.Branches {
						walk(b.Cont, active)
					}
				case hexpr.IntChoice:
					for _, b := range t.Branches {
						walk(b.Cont, active)
					}
				case hexpr.Session:
					inspect(t.Policy, t.Body, active)
				case hexpr.Framing:
					inspect(t.Policy, t.Body, active)
				}
			}
			walk(d.expr, nil)
		}
	},
}

// dedupEvents drops duplicate events, preserving first-occurrence order.
func dedupEvents(evs []hexpr.Event) []hexpr.Event {
	seen := map[string]bool{}
	var out []hexpr.Event
	for _, ev := range evs {
		k := ev.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, ev)
		}
	}
	return out
}

// instanceNFA renders an instantiated usage automaton as an NFA over the
// given concrete events: guards are evaluated exactly (the events carry
// concrete arguments) and the implicit stay-put self-loops of instance
// stepping are materialised, so the NFA's language on this alphabet is
// exactly the set of forbidden traces.
func instanceNFA(in *policy.Instance, events []hexpr.Event) *autom.NFA {
	n := autom.NewNFA()
	for i := 1; i < in.NumStates(); i++ {
		n.AddState()
	}
	n.SetStart(in.StartState())
	for q := 0; q < in.NumStates(); q++ {
		n.SetAccept(q, in.IsFinalState(q))
		for _, ev := range events {
			for _, t := range in.Next(q, ev) {
				n.AddEdge(q, ev.String(), t)
			}
		}
	}
	return n
}

// --- SUSC015: dead automaton parts ----------------------------------------

var deadAutomatonAnalyzer = &Analyzer{
	Name:  "deadautomaton",
	Doc:   "report usage-automaton states unreachable from the start, and transitions whose source already cannot reach an offending state (guards ignored, a sound over-approximation) — dropping either changes no verdict; the witness shows a run the automaton does have",
	Codes: []string{CodeUnreachableState},
	Run: func(pass *Pass) {
		for _, name := range pass.File.PolicyOrder {
			if pass.Budget.Exhausted() != nil {
				return // the suite loop reports the cutoff as SUSC016
			}
			a := pass.File.Automata[name]
			if len(a.Finals) == 0 || !offendingReachable(a) {
				continue // wholly vacuous templates are the vacuity analyzer's turf
			}
			n, index := templateNFA(a)
			reach := n.Reachable()
			coreach := n.Coreachable()
			span := pass.policySpan(name)
			for _, s := range a.States {
				if reach[index[s]] {
					continue
				}
				w := templateRunWitness(n, a,
					fmt.Sprintf("state %s occurs on no run; shown: a shortest violating run, which avoids it", s))
				pass.Report(Diagnostic{
					Code: CodeUnreachableState, Severity: Info, Span: span,
					Message: fmt.Sprintf("policy %s: state %s is unreachable from %s even ignoring guards", name, s, a.Start),
					Witness: w,
				})
			}
			// A transition is dead only when its *source* is reachable but
			// cannot reach an offending state: the run has already escaped
			// into the benign region, so where the edge moves within it can
			// never matter. (Edges *into* that region from coreachable
			// states are load-bearing — they are how policies absolve a
			// trace — and are deliberately not flagged.)
			for _, e := range a.Edges {
				from := index[e.From]
				if !reach[from] || coreach[from] {
					continue // unreachable sources are covered by the state report
				}
				word, states := n.WordTo(from)
				w := &Witness{Kind: WitnessDeadCode, Start: a.Start}
				for k, sym := range word {
					st := ""
					if k+1 < len(states) {
						st = a.States[states[k+1]]
					}
					w.Steps = append(w.Steps, WitnessStep{Label: sym, State: st})
				}
				w.Steps = append(w.Steps, WitnessStep{Label: e.EventName, State: e.To})
				w.Note = fmt.Sprintf("no offending state is reachable from %s: dropping this transition changes no verdict", e.From)
				pass.Report(Diagnostic{
					Code: CodeUnreachableState, Severity: Info, Span: span,
					Message: fmt.Sprintf("policy %s: transition %s -> %s on %s moves within a region that cannot reach an offending state", name, e.From, e.To, e.EventName),
					Witness: w,
				})
			}
		}
	},
}

// templateNFA renders a policy template as an NFA over its event names,
// ignoring guards: every declared edge becomes a transition, final states
// accept. Reachability over it over-approximates reachability of any
// instance, so unreachable-here is sound evidence of dead automaton parts.
func templateNFA(a *policy.Automaton) (*autom.NFA, map[string]int) {
	n := autom.NewNFA()
	index := map[string]int{}
	for i, s := range a.States {
		if i > 0 {
			n.AddState()
		}
		index[s] = i
	}
	n.SetStart(index[a.Start])
	for _, f := range a.Finals {
		n.SetAccept(index[f], true)
	}
	for _, e := range a.Edges {
		n.AddEdge(index[e.From], e.EventName, index[e.To])
	}
	return n, index
}

// templateRunWitness builds a dead-code witness from a shortest violating
// run of the template NFA.
func templateRunWitness(n *autom.NFA, a *policy.Automaton, note string) *Witness {
	w := &Witness{Kind: WitnessDeadCode, Start: a.Start, Note: note}
	word, states := n.AcceptingRun()
	for k, sym := range word {
		st := ""
		if k+1 < len(states) {
			st = a.States[states[k+1]]
		}
		w.Steps = append(w.Steps, WitnessStep{Label: sym, State: st})
	}
	return w
}
