package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"susc/internal/compliance"
	"susc/internal/hexpr"
	"susc/internal/parser"
)

// semanticSource lints a semantic fixture with the full suite.
func semanticSource(t *testing.T, name string) (string, []Diagnostic) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "semantic", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(src), Source(string(src), Options{Analyzers: AllAnalyzers()})
}

// TestSemanticFixtureCodes pins each semantic fixture to the exact codes
// it must trigger under the full suite, and checks the witness contract:
// every semantic diagnostic carries a non-empty witness with a positioned
// span and JSON that round-trips.
func TestSemanticFixtureCodes(t *testing.T) {
	expected := map[string][]string{
		"susc011_violable.susc":      {CodeViolableFraming},
		"susc012_deadlockable.susc":  {CodeDeadlockableRequest},
		"susc013_unrealizable.susc":  {CodeUnrealizableRequest},
		"susc014_subsumed.susc":      {CodeSubsumedFraming},
		"susc015_deadautomaton.susc": {CodeUnreachableState, CodeUnreachableState},
		"clean.susc":                 {},
	}
	for name, want := range expected {
		_, diags := semanticSource(t, name)
		var got []string
		for _, d := range diags {
			got = append(got, d.Code)
			if d.Span.IsZero() {
				t.Errorf("%s: %s has no source span", name, d.Code)
			}
			if d.Witness == nil || len(d.Witness.Steps) == 0 {
				t.Errorf("%s: %s carries no witness trace: %s", name, d.Code, d)
				continue
			}
			var round Witness
			blob, err := json.Marshal(d.Witness)
			if err != nil {
				t.Fatalf("%s: marshal: %v", name, err)
			}
			if err := json.Unmarshal(blob, &round); err != nil {
				t.Fatalf("%s: unmarshal: %v", name, err)
			}
			if round.Kind != d.Witness.Kind || len(round.Steps) != len(d.Witness.Steps) {
				t.Errorf("%s: witness does not round-trip through JSON", name)
			}
		}
		if !equalStrings(got, want) {
			t.Errorf("%s: got codes %v, want %v", name, got, want)
		}
	}
}

// TestViolationWitnessReplays replays the SUSC011 witness over the policy
// instance itself: the event steps, run in order, must drive the automaton
// into an offending state, and the trace must be BFS-minimal (the fixture
// has exactly one shortest violation: frame open, read, write).
func TestViolationWitnessReplays(t *testing.T) {
	src, diags := semanticSource(t, "susc011_violable.susc")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	w := diags[0].Witness
	if w.Kind != WitnessViolation {
		t.Fatalf("witness kind = %s", w.Kind)
	}
	if len(w.Steps) != 3 {
		t.Fatalf("witness has %d steps, want the 3-step minimal trace: %v", len(w.Steps), w.Steps)
	}
	f, err := parser.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	in, err := f.Table.Get(f.Instances["noleak"])
	if err != nil {
		t.Fatal(err)
	}
	var trace []hexpr.Event
	for _, s := range w.Steps {
		if strings.HasPrefix(s.Label, "[_") || strings.HasPrefix(s.Label, "_]") {
			continue // framing actions are not events
		}
		trace = append(trace, hexpr.E(s.Label))
	}
	if !in.Recognizes(trace) {
		t.Errorf("witness trace %v does not replay to an offending state", trace)
	}
	if last := w.Steps[len(w.Steps)-1]; last.State == "" || !strings.Contains(w.Note, last.State) {
		t.Errorf("final step state %q not named by the note %q", last.State, w.Note)
	}
}

// TestDeadlockWitnessReplays replays the SUSC012 witness over the product
// automaton of the failing binding: following the channel labels from the
// initial pair must end in a stuck (final) state.
func TestDeadlockWitnessReplays(t *testing.T) {
	src, diags := semanticSource(t, "susc012_deadlockable.susc")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	w := diags[0].Witness
	if w.Kind != WitnessDeadlock {
		t.Fatalf("witness kind = %s", w.Kind)
	}
	f, err := parser.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.Client("c")
	if err != nil {
		t.Fatal(err)
	}
	var body hexpr.Expr
	hexpr.Walk(c.Expr, func(x hexpr.Expr) {
		if s, ok := x.(hexpr.Session); ok && s.Req == "r1" {
			body = s.Body
		}
	})
	p, err := compliance.NewProduct(body, f.Repo["bad"])
	if err != nil {
		t.Fatal(err)
	}
	cur := 0
	for _, step := range w.Steps {
		moved := false
		for _, e := range p.Edges[cur] {
			if e.Channel == step.Label {
				cur = e.To
				moved = true
				break
			}
		}
		if !moved {
			t.Fatalf("witness step %q does not replay from product state %d", step.Label, cur)
		}
	}
	if !p.Final[cur] {
		t.Errorf("witness replay ends in non-stuck product state %d", cur)
	}
}

// TestWitnessRenderAndDOT checks the human rendering anchors steps at
// file:line:col and the DOT emission is a well-formed linear digraph.
func TestWitnessRenderAndDOT(t *testing.T) {
	_, diags := semanticSource(t, "susc011_violable.susc")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	w := diags[0].Witness
	text := w.Render("fix.susc")
	if !strings.Contains(text, "at fix.susc:14:") {
		t.Errorf("rendering lacks file-prefixed anchors:\n%s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasSuffix(line, " ") {
			t.Errorf("rendered line has trailing spaces: %q", line)
		}
	}
	dot := w.DOT("susc011")
	for _, frag := range []string{`digraph "susc011"`, "rankdir=LR", "__start -> n0", "doublecircle", "n0 -> n1"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output lacks %q:\n%s", frag, dot)
		}
	}
}
