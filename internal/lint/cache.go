package lint

import (
	"encoding/json"
	"strings"

	"susc/internal/hash"
	"susc/internal/parser"
	"susc/internal/store"
)

// This file is lint's persistent tier. Lint findings are cached at
// whole-file granularity: the content key digests the source text plus
// the analysis configuration (analyzer set and severity floor), so an
// unchanged file replays its findings from disk and any edit — or a
// different `-severity` — recomputes the whole file. Finer granularity
// is not worth the bookkeeping: lint is already the cheap phase, and the
// semantic analyzers reuse the compliance disk tier underneath anyway.

// sourceKey is the content hash of one lint run's inputs.
func sourceKey(src string, opts Options) hash.Sum {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return hash.File([]byte(src),
		"analyzers="+strings.Join(names, ","),
		"min-severity="+opts.MinSeverity.String())
}

// persistable reports whether a diagnostic list may be written back:
// SUSC016 findings describe *this run* — an isolated analyzer panic or a
// budget cutoff — not the file's content, so lists carrying one are never
// persisted (the disk analogue of the never-cache-Unknown rule).
func persistable(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Code == CodeInternalError {
			return false
		}
	}
	return true
}

// SourceCached is Source with a persistent tier: probe disk under the
// file's content key, decode a hit, and otherwise lint and write the
// findings back. With a nil store it is exactly Source.
func SourceCached(src string, disk *store.Store, opts Options) []Diagnostic {
	return cached(src, disk, opts, func() []Diagnostic { return Source(src, opts) })
}

// RunCached is Run with a persistent tier, for callers that already hold
// the parsed file but know its source text — the key digests the text, so
// it is interchangeable with SourceCached on the same file.
func RunCached(f *parser.File, issues []parser.Issue, src string, disk *store.Store, opts Options) []Diagnostic {
	return cached(src, disk, opts, func() []Diagnostic { return Run(f, issues, opts) })
}

func cached(src string, disk *store.Store, opts Options, compute func() []Diagnostic) []Diagnostic {
	if disk == nil {
		return compute()
	}
	sum := sourceKey(src, opts)
	if raw, ok := disk.Get(store.KindLint, sum); ok {
		var diags []Diagnostic
		if err := json.Unmarshal(raw, &diags); err == nil {
			return diags
		}
	}
	diags := compute()
	if persistable(diags) {
		if enc, err := json.Marshal(diags); err == nil {
			disk.Put(store.KindLint, sum, enc)
		}
	}
	return diags
}
