package valid_test

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/paperex"
	"susc/internal/policy"
	"susc/internal/valid"
)

func TestHistoryNFAAcceptsExactlyThePrefixes(t *testing.T) {
	// φ[sgn(s1)] · price(45): histories are all prefixes of
	// ⌊φ sgn(s1) ⌋φ price(45)
	phi := paperex.Phi1().ID()
	e := hexpr.Cat(
		hexpr.Frame(phi, hexpr.Act(hexpr.E("sgn", hexpr.Sym("s1")))),
		hexpr.Act(hexpr.E("price", hexpr.Int(45))),
	)
	n, err := valid.HistoryNFA(e)
	if err != nil {
		t.Fatal(err)
	}
	full := history.History{
		history.OpenItem(phi),
		history.EventItem(hexpr.E("sgn", hexpr.Sym("s1"))),
		history.CloseItem(phi),
		history.EventItem(hexpr.E("price", hexpr.Int(45))),
	}
	word := func(h history.History) []string {
		out := make([]string, len(h))
		for i, it := range h {
			out[i] = valid.EncodeItem(it)
		}
		return out
	}
	for i := 0; i <= len(full); i++ {
		if !n.Accepts(word(full[:i])) {
			t.Errorf("prefix of length %d not accepted", i)
		}
	}
	// out-of-order histories are not
	bad := history.History{full[1], full[0]}
	if n.Accepts(word(bad)) {
		t.Error("reordered history accepted")
	}
	// and a history with a foreign event is not
	other := history.History{history.EventItem(hexpr.E("zzz"))}
	if n.Accepts(word(other)) {
		t.Error("foreign event accepted")
	}
}

func TestHistoryNFAElidesCommunications(t *testing.T) {
	// a? . sgn(1): the communication is silent, the event visible
	e := hexpr.RecvThen("a", hexpr.Act(hexpr.E("sgn", hexpr.Int(1))))
	n, err := valid.HistoryNFA(e)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Accepts([]string{valid.EncodeItem(history.EventItem(hexpr.E("sgn", hexpr.Int(1))))}) {
		t.Error("event behind a communication must be reachable silently")
	}
}

func TestFramedPolicyNFARecognisesViolations(t *testing.T) {
	phi1 := paperex.Phi1()
	events := []hexpr.Event{
		hexpr.E("sgn", hexpr.Sym("s1")),
		hexpr.E("sgn", hexpr.Sym("s3")),
	}
	frames := []hexpr.PolicyID{phi1.ID()}
	n := valid.FramedPolicyNFA(phi1, events, frames)
	enc := func(items ...history.Item) []string {
		out := make([]string, len(items))
		for i, it := range items {
			out[i] = valid.EncodeItem(it)
		}
		return out
	}
	// blacklisted sgn while φ active: violation (accepted)
	if !n.Accepts(enc(history.OpenItem(phi1.ID()), history.EventItem(events[0]))) {
		t.Error("active blacklist violation not recognised")
	}
	// the same event with φ inactive: not a violation
	if n.Accepts(enc(history.EventItem(events[0]))) {
		t.Error("inactive policy must not flag")
	}
	// history dependence: event first, then activation → violation at ⌊φ
	if !n.Accepts(enc(history.EventItem(events[0]), history.OpenItem(phi1.ID()))) {
		t.Error("activation over a violating past not recognised")
	}
	// a clean hotel never violates
	if n.Accepts(enc(history.OpenItem(phi1.ID()), history.EventItem(events[1]))) {
		t.Error("s3 should not violate phi1")
	}
	// deactivation forgives the future, not the past
	if n.Accepts(enc(
		history.OpenItem(phi1.ID()), history.CloseItem(phi1.ID()),
		history.EventItem(events[0]))) {
		t.Error("event after deactivation must not flag")
	}
}

func TestModelCheckOnSessionAnnotatedExpressions(t *testing.T) {
	// open_{r,φ} logs ⌊φ like the network does: a violating event inside
	// the session body is caught by the pipeline too.
	phi1 := paperex.Phi1()
	table := policy.NewTable(phi1)
	bad := hexpr.Open("r1", phi1.ID(), hexpr.Act(hexpr.E("sgn", hexpr.Sym("s1"))))
	if err := valid.ModelCheck(bad, table); err == nil {
		t.Error("session-scoped violation must be found")
	}
	good := hexpr.Open("r1", phi1.ID(), hexpr.Act(hexpr.E("sgn", hexpr.Sym("s3"))))
	if err := valid.ModelCheck(good, table); err != nil {
		t.Errorf("clean session flagged: %v", err)
	}
}
