package valid

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"susc/internal/budget"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/intern"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/policy"
	"susc/internal/ring"
	"susc/internal/verify"
)

// This file is the whole-network security-flow core behind `susc audit`:
// an abstract interpretation of one client under one plan that annotates
// every reachable event occurrence and framing opening with the *active
// policy set* AP (§3.1) at that instant — the framings whose scope,
// including the open_{r,φ}…close_{r,φ} session framings crossed via the
// plan binding, encloses the occurrence. The exploration is the same
// (session tree, monitor signature) BFS internal/verify runs, so the flow
// facts hold exactly for the histories the network semantics can produce.

// FlowOptions tunes one flow exploration.
type FlowOptions struct {
	// Cache memoises one-step transition sets and compliance verdicts
	// across explorations; nil builds a private cache.
	Cache *memo.Cache
	// Budget meters the exploration (nil = unbounded); exhaustion yields
	// a flow with Verdict "unknown" instead of an error.
	Budget *budget.Budget
	// MaxStates bounds the exploration (0 = verify.MaxStates).
	MaxStates int
}

// EventFlow is one distinct event occurrence: an event reachable with a
// particular active policy set. Trace is a BFS-minimal label sequence from
// the initial configuration whose last label performs the event.
type EventFlow struct {
	Event  string   `json:"event"`
	Active []string `json:"active,omitempty"`
	Trace  []string `json:"trace,omitempty"`
}

// OpenFlow is one distinct framing opening: a ⌊φ (or session open_{r,φ})
// reachable with a particular ambient active set, sampled just before the
// opening takes effect.
type OpenFlow struct {
	Policy  string   `json:"policy"`
	Ambient []string `json:"ambient,omitempty"`
	Trace   []string `json:"trace,omitempty"`
}

// LeakFlow is a definite framing-scope leak: a reachable configuration
// with φ active from which no configuration with φ inactive is reachable —
// on every continuation the scope stays open forever.
type LeakFlow struct {
	Policy string   `json:"policy"`
	Trace  []string `json:"trace,omitempty"`
}

// PlanFlow is the flow-audit record of one (client, plan) pair. The
// occurrence lists are only meaningful when Verdict is "valid" (the plan's
// full, finite state space was explored); other verdicts carry just the
// classification, mirroring verify.Verdict strings.
type PlanFlow struct {
	Verdict string      `json:"verdict"`
	Reason  string      `json:"reason,omitempty"`
	States  int         `json:"states"`
	Events  []EventFlow `json:"events,omitempty"`
	Opens   []OpenFlow  `json:"opens,omitempty"`
	Leaks   []LeakFlow  `json:"leaks,omitempty"`
	// LeaksSkipped: the table has more than 64 policies, beyond the dense
	// activation bitmask the leak analysis runs on.
	LeaksSkipped bool `json:"leaks_skipped,omitempty"`
}

// Valid reports whether the flow describes a fully explored valid plan.
func (f *PlanFlow) Valid() bool { return f.Verdict == verify.Valid.String() }

// EncodeFlow serialises a flow record for the persistent store.
func EncodeFlow(f *PlanFlow) ([]byte, error) { return json.Marshal(f) }

// DecodeFlow is the inverse of EncodeFlow.
func DecodeFlow(raw []byte) (*PlanFlow, error) {
	var f PlanFlow
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// flowRec is the per-state record kept after a state is dequeued: the
// activation bitmask plus the BFS-tree parent edge, enough to materialise
// minimal traces and run the leak analysis without keeping monitors alive.
type flowRec struct {
	mask   uint64
	parent int32
	label  string
}

// activeInfo renders the monitor's active set as a dedup key plus the
// sorted policy identifiers. Tables within the 64-policy bitmask use the
// mask directly; wider tables fall back to the activation map.
func activeInfo(mon *history.Monitor, ct *policy.CompiledTable, wide bool) (string, []string) {
	if !wide {
		mask := mon.ActiveMask()
		if mask == 0 {
			return "0", nil
		}
		var ids []string
		for i := 0; i < ct.Len(); i++ {
			if mask&(1<<uint(i)) != 0 {
				ids = append(ids, string(ct.IDs()[i]))
			}
		}
		return strconv.FormatUint(mask, 16), ids
	}
	m := mon.Active()
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return strings.Join(ids, "\x01"), ids
}

// traceOf materialises the BFS-minimal label trace to state i, optionally
// extended by one more label (the edge an occurrence sits on).
func traceOf(states []flowRec, i int32, extra string) []string {
	var rev []string
	if extra != "" {
		rev = append(rev, extra)
	}
	for j := i; j != 0; j = states[j].parent {
		rev = append(rev, states[j].label)
	}
	out := make([]string, 0, len(rev))
	for k := len(rev) - 1; k >= 0; k-- {
		out = append(out, rev[k])
	}
	return out
}

// ExploreFlow runs the flow analysis of one client under one plan: the
// static prechecks of plan validation followed by the exhaustive
// exploration, recording every distinct (event, active set) and
// (framing, ambient set) occurrence with a BFS-minimal witness trace, and
// the definite scope leaks. Non-valid plans return early with just the
// verdict; budget exhaustion returns Verdict "unknown".
func ExploreFlow(repo network.Repository, table *policy.Table, loc hexpr.Location,
	client hexpr.Expr, plan network.Plan, opts FlowOptions) (*PlanFlow, error) {

	cache := opts.Cache
	if cache == nil {
		cache = memo.New()
	}
	if r, err := verify.StaticCheck(repo, client, plan, cache); err != nil {
		return nil, err
	} else if r != nil {
		return &PlanFlow{Verdict: r.Verdict.String(), Reason: r.Witness}, nil
	}

	ct := table.Compiled()
	wide := ct.Len() > 64
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = verify.MaxStates
	}

	type evOcc struct {
		event string
		ids   []string
		state int32
		label string
	}
	type opOcc struct {
		policy string
		ids    []string
		state  int32
		label  string
	}
	evs := map[string]*evOcc{}
	ops := map[string]*opOcc{}

	type qstate struct {
		tree network.Node
		mon  *history.Monitor
		idx  int32
	}
	type fkey struct {
		tree, sig intern.ID
	}
	tab := cache.Interner()
	startMon := history.NewMonitor(table)
	start := qstate{tree: network.Leaf{Loc: loc, Expr: client}, mon: startMon}
	states := []flowRec{{mask: startMon.ActiveMask(), parent: -1}}
	edges := [][]int32{nil}
	seen := map[fkey]int32{
		{verify.InternTree(tab, start.tree), tab.Key(startMon.Signature())}: 0,
	}
	var queue ring.Queue[qstate]
	queue.Push(start)

	flow := &PlanFlow{Verdict: verify.Valid.String()}
	for queue.Len() > 0 {
		flow.States++
		if flow.States > maxStates {
			flow.States--
			flow.Verdict = verify.Unknown.String()
			flow.Reason = fmt.Sprintf("exploration exceeds %d states", maxStates)
			return flow, nil
		}
		if e := opts.Budget.ConsumeStates(1); e != nil {
			flow.States--
			flow.Verdict = verify.Unknown.String()
			flow.Reason = e.Error()
			return flow, nil
		}
		s := queue.Pop()
		moves := network.TreeMovesStep(s.tree, plan, repo, cache.Steps)
		if e := opts.Budget.ConsumeEdges(int64(len(moves))); e != nil {
			flow.Verdict = verify.Unknown.String()
			flow.Reason = e.Error()
			return flow, nil
		}
		if len(moves) == 0 && !network.Done(s.tree) {
			flow.Verdict = verify.CommunicationDeadlock.String()
			flow.Reason = s.tree.Key()
			return flow, nil
		}
		for _, m := range moves {
			mon := s.mon
			violated := false
			if len(m.Items) > 0 {
				mon = s.mon.Snapshot()
				for _, it := range m.Items {
					switch it.Kind {
					case history.ItemEvent:
						key, ids := activeInfo(mon, ct, wide)
						k := it.Event.String() + "\x00" + key
						if _, ok := evs[k]; !ok {
							evs[k] = &evOcc{event: it.Event.String(), ids: ids,
								state: s.idx, label: m.Label.String()}
						}
					case history.ItemFrameOpen:
						if it.Policy != hexpr.NoPolicy {
							key, ids := activeInfo(mon, ct, wide)
							k := string(it.Policy) + "\x00" + key
							if _, ok := ops[k]; !ok {
								ops[k] = &opOcc{policy: string(it.Policy), ids: ids,
									state: s.idx, label: m.Label.String()}
							}
						}
					}
					if err := mon.Append(it); err != nil {
						verr, ok := err.(*history.ViolationError)
						if !ok {
							return nil, fmt.Errorf("valid: unexpected monitor error: %w", err)
						}
						flow.Verdict = verify.SecurityViolation.String()
						flow.Reason = fmt.Sprintf("policy %s violated", verr.Policy)
						violated = true
						break
					}
				}
				if violated {
					return flow, nil
				}
			}
			nk := fkey{verify.InternTree(tab, m.Tree), tab.Key(mon.Signature())}
			ni, ok := seen[nk]
			if !ok {
				ni = int32(len(states))
				seen[nk] = ni
				states = append(states, flowRec{mask: mon.ActiveMask(), parent: s.idx, label: m.Label.String()})
				edges = append(edges, nil)
				queue.Push(qstate{tree: m.Tree, mon: mon, idx: ni})
			}
			edges[s.idx] = append(edges[s.idx], ni)
		}
	}

	// Materialise occurrences in a deterministic order: events by
	// (event, active set), openings by (policy, ambient set).
	for _, o := range evs {
		flow.Events = append(flow.Events, EventFlow{
			Event:  o.event,
			Active: o.ids,
			Trace:  traceOf(states, o.state, o.label),
		})
	}
	sort.Slice(flow.Events, func(i, j int) bool {
		a, b := flow.Events[i], flow.Events[j]
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		return strings.Join(a.Active, "\x01") < strings.Join(b.Active, "\x01")
	})
	for _, o := range ops {
		flow.Opens = append(flow.Opens, OpenFlow{
			Policy:  o.policy,
			Ambient: o.ids,
			Trace:   traceOf(states, o.state, o.label),
		})
	}
	sort.Slice(flow.Opens, func(i, j int) bool {
		a, b := flow.Opens[i], flow.Opens[j]
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return strings.Join(a.Ambient, "\x01") < strings.Join(b.Ambient, "\x01")
	})

	if wide {
		flow.LeaksSkipped = true
		return flow, nil
	}
	// Leak analysis: for each policy ever active, a reachable state with
	// the policy active that cannot reach any state with it inactive is a
	// definite scope leak (the η♭ flattening never balances the opening).
	n := len(states)
	preds := make([][]int32, n)
	for i, succ := range edges {
		for _, j := range succ {
			preds[j] = append(preds[j], int32(i))
		}
	}
	var anyMask uint64
	for _, st := range states {
		anyMask |= st.mask
	}
	for p := 0; p < ct.Len(); p++ {
		bit := uint64(1) << uint(p)
		if anyMask&bit == 0 {
			continue
		}
		can := make([]bool, n)
		var bq []int32
		for i := range states {
			if states[i].mask&bit == 0 {
				can[i] = true
				bq = append(bq, int32(i))
			}
		}
		for len(bq) > 0 {
			if opts.Budget.Check() != nil {
				flow.LeaksSkipped = true
				return flow, nil
			}
			i := bq[0]
			bq = bq[1:]
			for _, j := range preds[i] {
				if !can[j] {
					can[j] = true
					bq = append(bq, j)
				}
			}
		}
		for i := 0; i < n; i++ {
			if states[i].mask&bit != 0 && !can[i] {
				flow.Leaks = append(flow.Leaks, LeakFlow{
					Policy: string(ct.IDs()[p]),
					Trace:  traceOf(states, int32(i), ""),
				})
				break
			}
		}
	}
	return flow, nil
}
