package valid

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"susc/internal/budget"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/intern"
	"susc/internal/lts"
	"susc/internal/policy"
)

// Violation is a counterexample to validity: a history of the expression
// whose final item violates an active policy.
type Violation struct {
	Policy hexpr.PolicyID
	Trace  history.History
}

func (v *Violation) Error() string {
	return fmt.Sprintf("valid: policy %s violated by history %q", v.Policy, v.Trace.String())
}

// Check statically verifies that every history the expression can produce
// is valid: it explores the product of the expression's LTS with the state
// sets of every policy automaton the expression mentions, running each
// automaton from the very start (the approach is history-dependent).
// Communication labels are skipped (they log nothing); session open/close
// log policy activations exactly as the network rules do.
//
// It returns nil when the expression is valid, a *Violation with a
// shortest offending history otherwise, and a different error when a
// mentioned policy is not in the table.
func Check(e hexpr.Expr, table *policy.Table) error {
	return CheckBudget(e, table, nil)
}

// CheckBudget is Check with the exploration charged against the budget
// (nil = unbounded): the LTS construction meters its own states and
// edges, and the product BFS — whose state space is the LTS times the
// policy-vector space, so potentially far larger than what the build
// charged — additionally charges one state per dequeued product node and
// one edge per product transition. Exhaustion aborts with the typed
// *budget.ExhaustedError; a violation found before the cutoff stands.
func CheckBudget(e hexpr.Expr, table *policy.Table, b *budget.Budget) error {
	l, err := lts.BuildBudgeted(intern.NewTable(), e, lts.DefaultMaxStates, b)
	if err != nil {
		return err
	}
	ids := hexpr.Policies(e)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	instances := make([]*policy.Instance, len(ids))
	idIndex := map[hexpr.PolicyID]int{}
	for i, id := range ids {
		in, err := table.Get(id)
		if err != nil {
			return err
		}
		instances[i] = in
		idIndex[id] = i
	}

	// nodes record their BFS parent and the logged item, so violating
	// histories are reconstructed on demand instead of copied per state
	// (keeping exploration linear in the state count).
	type node struct {
		expr   int
		states []policy.StateSet
		active []int
		parent *node
		item   *history.Item
	}
	rebuild := func(n *node, last history.Item) history.History {
		var rev history.History
		rev = append(rev, last)
		for cur := n; cur != nil; cur = cur.parent {
			if cur.item != nil {
				rev = append(rev, *cur.item)
			}
		}
		out := make(history.History, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out
	}
	key := func(n *node) string {
		var b strings.Builder
		b.WriteString(strconv.Itoa(n.expr))
		for i := range n.states {
			b.WriteByte('|')
			b.WriteString(strconv.FormatUint(uint64(n.states[i]), 16))
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(n.active[i]))
		}
		return b.String()
	}

	start := &node{
		expr:   0,
		states: make([]policy.StateSet, len(ids)),
		active: make([]int, len(ids)),
	}
	for i, in := range instances {
		start.states[i] = in.Initial()
	}
	seen := map[string]bool{key(start): true}
	queue := []*node{start}

	for len(queue) > 0 {
		if err := b.ConsumeStates(1); err != nil {
			return err
		}
		n := queue[0]
		queue = queue[1:]
		for _, edge := range l.Edges[n.expr] {
			if err := b.ConsumeEdges(1); err != nil {
				return err
			}
			next, item, bad := step(n.states, n.active, instances, idIndex, edge.Label)
			if bad != hexpr.NoPolicy {
				return &Violation{Policy: bad, Trace: rebuild(n, *item)}
			}
			nn := &node{expr: edge.To, states: next.states, active: next.active,
				parent: n, item: item}
			k := key(nn)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, nn)
			}
		}
	}
	return nil
}

type policyVec struct {
	states []policy.StateSet
	active []int
}

// step advances the policy vector over one transition label. It returns
// the new vector, the history item logged (nil when the label logs
// nothing), and the violated policy if the step is invalid.
func step(states []policy.StateSet, active []int, instances []*policy.Instance,
	idIndex map[hexpr.PolicyID]int, label hexpr.Label) (policyVec, *history.Item, hexpr.PolicyID) {

	out := policyVec{
		states: append([]policy.StateSet(nil), states...),
		active: append([]int(nil), active...),
	}
	switch label.Kind {
	case hexpr.LEvent:
		it := history.EventItem(label.Event)
		for i, in := range instances {
			out.states[i] = in.Step(out.states[i], label.Event)
			if out.active[i] > 0 && in.Final(out.states[i]) {
				return out, &it, in.ID()
			}
		}
		return out, &it, hexpr.NoPolicy
	case hexpr.LFrameOpen, hexpr.LOpen:
		if label.Policy == hexpr.NoPolicy {
			return out, nil, hexpr.NoPolicy
		}
		it := history.OpenItem(label.Policy)
		i := idIndex[label.Policy]
		// History dependence: the past must already respect the policy.
		if instances[i].Final(out.states[i]) {
			return out, &it, label.Policy
		}
		out.active[i]++
		return out, &it, hexpr.NoPolicy
	case hexpr.LFrameClose, hexpr.LClose:
		if label.Policy == hexpr.NoPolicy {
			return out, nil, hexpr.NoPolicy
		}
		it := history.CloseItem(label.Policy)
		i := idIndex[label.Policy]
		if out.active[i] > 0 {
			out.active[i]--
		}
		return out, &it, hexpr.NoPolicy
	default:
		// communications and τ log nothing
		return out, nil, hexpr.NoPolicy
	}
}

// Valid reports whether every history of e is valid; see Check.
func Valid(e hexpr.Expr, table *policy.Table) (bool, error) {
	err := Check(e, table)
	if err == nil {
		return true, nil
	}
	if _, ok := err.(*Violation); ok {
		return false, nil
	}
	return false, err
}
