package valid

import (
	"susc/internal/autom"
	"susc/internal/budget"
	"susc/internal/hexpr"
	"susc/internal/policy"
)

// Counterexample is a typed, minimal witness to a validity violation: a
// BFS-shortest history of the expression whose final item trips the
// policy, together with the run of the policy automaton over it. It is
// what ModelCheck extracts from the intersection automaton of Theorem 1
// and what the semantic analyzers (internal/lint) attach to diagnostics.
type Counterexample struct {
	// Policy is the violated framing.
	Policy hexpr.PolicyID
	// Trace is the violating history, decoded into paper syntax.
	Trace []HistoryStep
	// Word is the same history in the internal alphabet encoding
	// (EncodeItem symbols); it replays over the product automaton.
	Word []string
	// Start is the policy-automaton start state name (the state before
	// the first item of the trace).
	Start string
}

// HistoryStep is one item of a violating history annotated with the policy
// automaton state reached *after* the item, and whether the framing is
// active at that point.
type HistoryStep struct {
	// Item renders the history item in paper syntax (an event, ⌊φ or ⌋φ).
	Item string
	// State is the policy-automaton state name after the item.
	State string
	// Active reports whether the framing is active after the item.
	Active bool
}

// Violation converts the counterexample to the legacy error type with the
// same message text ModelCheck historically produced.
func (c *Counterexample) Violation() *Violation {
	return &Violation{Policy: c.Policy, Trace: decodeWord(c.Word)}
}

// FindCounterexamples model-checks the expression against every policy it
// frames and returns one shortest counterexample per violated policy, in
// the document order of the framings (empty when the expression is valid).
// It is the structured core of ModelCheck: regularize, extract the
// history-prefix NFA, intersect with each framed policy automaton
// (Theorem 1), and decode the shortest accepted word plus its automaton
// run.
func FindCounterexamples(e hexpr.Expr, table *policy.Table) ([]*Counterexample, error) {
	return FindCounterexamplesBudget(e, table, nil)
}

// FindCounterexamplesBudget is FindCounterexamples with the state-space
// work — the history LTS and the per-policy intersections — charged
// against the budget (nil = unbounded). Exhaustion or cancellation aborts
// with the typed *budget.ExhaustedError; no partial counterexample list
// is returned, so callers never mistake a truncated check for validity.
func FindCounterexamplesBudget(e hexpr.Expr, table *policy.Table, b *budget.Budget) ([]*Counterexample, error) {
	reg := Regularize(e)
	hn, err := HistoryNFABudget(reg, b)
	if err != nil {
		return nil, err
	}
	events := hexpr.Events(reg)
	frames := hexpr.Policies(reg)
	var alphabet []string
	for _, ev := range events {
		alphabet = append(alphabet, symEvent+ev.String())
	}
	for _, f := range frames {
		alphabet = append(alphabet, symFrameOpen+string(f), symFrameClose+string(f))
	}
	// The per-policy intersections run on the compiled (dense-table) layer:
	// the history DFA is compiled once, each framed-policy DFA is compiled
	// after determinisation, and the product+shortest-word extraction index
	// int32 arrays. Witnesses are identical to the map-based constructions
	// (same BFS discovery order, same alphabet-order tie-breaking).
	hd := autom.Compile(hn.Determinize(alphabet))
	var out []*Counterexample
	for _, f := range frames {
		if err := b.Err(); err != nil {
			return nil, err
		}
		in, err := table.Get(f)
		if err != nil {
			return nil, err
		}
		bad := FramedPolicyNFA(in, events, frames)
		inter := hd.Intersect(autom.Compile(bad.Determinize(alphabet)))
		word := inter.AcceptingPath()
		if word == nil {
			continue
		}
		out = append(out, newCounterexample(f, in, bad, word))
	}
	return out, nil
}

// FindCounterexample returns the first counterexample of
// FindCounterexamples, or nil when the expression is valid.
func FindCounterexample(e hexpr.Expr, table *policy.Table) (*Counterexample, error) {
	ces, err := FindCounterexamples(e, table)
	if err != nil || len(ces) == 0 {
		return nil, err
	}
	return ces[0], nil
}

// newCounterexample decodes the violating word and reconstructs the policy
// automaton run by replaying it over the framed-policy NFA (whose states
// encode (q, active) as q*2+active).
func newCounterexample(f hexpr.PolicyID, in *policy.Instance, bad *autom.NFA, word []string) *Counterexample {
	ce := &Counterexample{
		Policy: f,
		Word:   append([]string(nil), word...),
		Start:  in.StateName(in.StartState()),
	}
	h := decodeWord(word)
	run := bad.RunFor(word)
	ce.Trace = make([]HistoryStep, len(h))
	for i := range h {
		step := HistoryStep{Item: h[i].String()}
		if run != nil && i+1 < len(run) {
			s := run[i+1]
			step.State = in.StateName(s / 2)
			step.Active = s%2 == 1
		}
		ce.Trace[i] = step
	}
	return ce
}
