package valid_test

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/policy"
	"susc/internal/valid"
)

func TestFindCounterexampleStructure(t *testing.T) {
	phi := nwar()
	table := policy.NewTable(phi)
	bad := hexpr.Frame(phi.ID(), hexpr.Cat(read(), write()))
	ce, err := valid.FindCounterexample(bad, table)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("want a counterexample")
	}
	if ce.Policy != phi.ID() {
		t.Errorf("policy = %s", ce.Policy)
	}
	if ce.Start != "q0" {
		t.Errorf("start = %q, want q0", ce.Start)
	}
	// shortest violating history: ⌊φ · read · write
	want := []valid.HistoryStep{
		{Item: "[_" + string(phi.ID()), State: "q0", Active: true},
		{Item: "read", State: "q1", Active: true},
		{Item: "write", State: "qv", Active: true},
	}
	if len(ce.Trace) != len(want) {
		t.Fatalf("trace = %+v, want %d steps", ce.Trace, len(want))
	}
	for i, w := range want {
		if ce.Trace[i] != w {
			t.Errorf("step %d = %+v, want %+v", i, ce.Trace[i], w)
		}
	}
	if len(ce.Word) != len(ce.Trace) {
		t.Errorf("word/trace length mismatch: %d vs %d", len(ce.Word), len(ce.Trace))
	}
	// the counterexample converts to the legacy error
	v := ce.Violation()
	if v.Policy != phi.ID() || len(v.Trace) != 3 {
		t.Errorf("violation = %v", v)
	}
}

func TestFindCounterexampleValidExpr(t *testing.T) {
	phi := nwar()
	table := policy.NewTable(phi)
	good := hexpr.Cat(hexpr.Frame(phi.ID(), read()), write())
	ce, err := valid.FindCounterexample(good, table)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("valid expression yielded counterexample %+v", ce)
	}
}

// TestFindCounterexamplesAllPolicies checks one counterexample per violated
// framing, in document order.
func TestFindCounterexamplesAllPolicies(t *testing.T) {
	phi := nwar()
	psi := (&policy.Automaton{
		Name:   "noboom",
		States: []string{"p0", "pv"},
		Start:  "p0",
		Finals: []string{"pv"},
		Edges:  []policy.Edge{{From: "p0", To: "pv", EventName: "boom"}},
	}).MustInstantiate(policy.Binding{})
	table := policy.NewTable(phi, psi)
	e := hexpr.Cat(
		hexpr.Frame(phi.ID(), hexpr.Cat(read(), write())),
		hexpr.Frame(psi.ID(), hexpr.Act(hexpr.E("boom"))),
	)
	ces, err := valid.FindCounterexamples(e, table)
	if err != nil {
		t.Fatal(err)
	}
	if len(ces) != 2 {
		t.Fatalf("got %d counterexamples, want 2", len(ces))
	}
	if ces[0].Policy != phi.ID() || ces[1].Policy != psi.ID() {
		t.Errorf("policies = %s, %s", ces[0].Policy, ces[1].Policy)
	}
	last := ces[1].Trace[len(ces[1].Trace)-1]
	if last.Item != "boom" || last.State != "pv" {
		t.Errorf("ψ trace ends with %+v", last)
	}
}

// TestCounterexampleIsMinimal replays the extraction on an expression with
// a short and a long violating path and checks the BFS-shortest one wins.
func TestCounterexampleIsMinimal(t *testing.T) {
	phi := nwar()
	table := policy.NewTable(phi)
	long := hexpr.Cat(
		hexpr.Act(hexpr.E("a")), hexpr.Act(hexpr.E("b")), read(), write())
	e := hexpr.Frame(phi.ID(), hexpr.Ext(
		hexpr.B(hexpr.In("short"), hexpr.Cat(read(), write())),
		hexpr.B(hexpr.In("long"), long),
	))
	ce, err := valid.FindCounterexample(e, table)
	if err != nil || ce == nil {
		t.Fatalf("ce = %v, err = %v", ce, err)
	}
	// ⌊φ + read + write = 3 items; the long branch would be 5.
	if len(ce.Trace) != 3 {
		t.Errorf("trace length = %d, want 3 (BFS-minimal): %+v", len(ce.Trace), ce.Trace)
	}
}
