package valid

import (
	"fmt"
	"strings"

	"susc/internal/autom"
	"susc/internal/budget"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/intern"
	"susc/internal/lts"
	"susc/internal/policy"
)

// Symbol encoding for the finite alphabets of the model-checking pipeline.
const (
	symEvent      = "e:"
	symFrameOpen  = "[:"
	symFrameClose = "]:"
)

// EncodeItem renders a history item as an alphabet symbol.
func EncodeItem(it history.Item) string {
	switch it.Kind {
	case history.ItemEvent:
		return symEvent + it.Event.String()
	case history.ItemFrameOpen:
		return symFrameOpen + string(it.Policy)
	default:
		return symFrameClose + string(it.Policy)
	}
}

// labelSymbol maps a transition label to its alphabet symbol; ok is false
// for labels that log nothing (communications, τ, trivial policies).
func labelSymbol(l hexpr.Label) (string, bool) {
	switch l.Kind {
	case hexpr.LEvent:
		return symEvent + l.Event.String(), true
	case hexpr.LFrameOpen, hexpr.LOpen:
		if l.Policy == hexpr.NoPolicy {
			return "", false
		}
		return symFrameOpen + string(l.Policy), true
	case hexpr.LFrameClose, hexpr.LClose:
		if l.Policy == hexpr.NoPolicy {
			return "", false
		}
		return symFrameClose + string(l.Policy), true
	}
	return "", false
}

// HistoryNFA renders the prefix-closed history language of the expression
// as an NFA over event/framing symbols: transitions that log nothing are
// ε-eliminated, and every state accepts (histories are prefixes).
func HistoryNFA(e hexpr.Expr) (*autom.NFA, error) {
	return HistoryNFABudget(e, nil)
}

// HistoryNFABudget is HistoryNFA with the underlying LTS construction
// charged against the budget (nil = unbounded); exhaustion aborts with
// the typed *budget.ExhaustedError before any partial automaton is built.
func HistoryNFABudget(e hexpr.Expr, b *budget.Budget) (*autom.NFA, error) {
	l, err := lts.BuildBudgeted(intern.NewTable(), e, lts.DefaultMaxStates, b)
	if err != nil {
		return nil, err
	}
	// ε-closure over silent edges. The closure revisits the charged LTS up
	// to states×edges times — quadratically more work than BuildBudgeted
	// metered — so the pop loop polls the budget: Check observes the sticky
	// exhaustion and the context deadline without re-charging work that the
	// construction already paid for.
	closure := make([][]int, l.Len())
	for s := 0; s < l.Len(); s++ {
		seen := map[int]bool{s: true}
		stack := []int{s}
		for len(stack) > 0 {
			if err := b.Check(); err != nil {
				return nil, err
			}
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, edge := range l.Edges[x] {
				if _, logged := labelSymbol(edge.Label); !logged && !seen[edge.To] {
					seen[edge.To] = true
					stack = append(stack, edge.To)
				}
			}
		}
		for x := range seen {
			closure[s] = append(closure[s], x)
		}
	}
	n := autom.NewNFA()
	for s := 1; s < l.Len(); s++ {
		n.AddState()
	}
	for s := 0; s < l.Len(); s++ {
		n.SetAccept(s, true)
		for _, x := range closure[s] {
			for _, edge := range l.Edges[x] {
				if sym, logged := labelSymbol(edge.Label); logged {
					n.AddEdge(s, sym, edge.To)
				}
			}
		}
	}
	return n, nil
}

// FramedPolicyNFA builds, over the given alphabet pieces, the automaton
// accepting exactly the histories that violate the instance: runs of the
// usage automaton (from the start of the history) paired with the
// activation flag of the policy, accepting when the policy is active on a
// violation state. The expression feeding the product must be regularized,
// so the activation flag is boolean.
func FramedPolicyNFA(in *policy.Instance, events []hexpr.Event, frames []hexpr.PolicyID) *autom.NFA {
	n := autom.NewNFA()
	// state (q, active) encoded as q*2 + active; state 0 is (start, 0) —
	// reindex so that the NFA start (always 0) is the encoded start state.
	id := func(q, active int) int { return q*2 + active }
	total := in.NumStates() * 2
	for i := 1; i < total; i++ {
		n.AddState()
	}
	// autom.NewNFA starts at 0; we need (in.StartState(), 0): swap roles by
	// setting the start explicitly.
	n.SetStart(id(in.StartState(), 0))
	for q := 0; q < in.NumStates(); q++ {
		for _, act := range []int{0, 1} {
			s := id(q, act)
			if act == 1 && in.IsFinalState(q) {
				n.SetAccept(s, true)
			}
			for _, ev := range events {
				sym := symEvent + ev.String()
				for _, q2 := range in.Next(q, ev) {
					n.AddEdge(s, sym, id(q2, act))
				}
			}
			for _, f := range frames {
				open := symFrameOpen + string(f)
				closeSym := symFrameClose + string(f)
				if f == in.ID() {
					if act == 0 {
						n.AddEdge(s, open, id(q, 1))
					} else {
						n.AddEdge(s, closeSym, id(q, 0))
					}
				} else {
					n.AddEdge(s, open, s)
					n.AddEdge(s, closeSym, s)
				}
			}
		}
	}
	return n
}

// ModelCheck decides validity of the expression through the literal
// finite-state pipeline of the paper: regularize the framings, extract the
// history-prefix NFA, intersect with each framed policy automaton, and
// report the shortest accepted word of the intersection as the violating
// history. It always agrees with Check (the tests verify the agreement).
func ModelCheck(e hexpr.Expr, table *policy.Table) error {
	ce, err := FindCounterexample(e, table)
	if err != nil {
		return err
	}
	if ce != nil {
		return ce.Violation()
	}
	return nil
}

// decodeWord turns alphabet symbols back into a history. Every symbol
// yields an item: an event symbol that fails to parse falls back to the
// raw text as an argument-less event, so the reported trace never silently
// shortens.
func decodeWord(word []string) history.History {
	h := make(history.History, 0, len(word))
	for _, sym := range word {
		switch {
		case strings.HasPrefix(sym, symEvent):
			raw := strings.TrimPrefix(sym, symEvent)
			ev, err := parseEventSymbol(raw)
			if err != nil {
				ev = hexpr.E(raw)
			}
			h = append(h, history.EventItem(ev))
		case strings.HasPrefix(sym, symFrameOpen):
			h = append(h, history.OpenItem(hexpr.PolicyID(strings.TrimPrefix(sym, symFrameOpen))))
		case strings.HasPrefix(sym, symFrameClose):
			h = append(h, history.CloseItem(hexpr.PolicyID(strings.TrimPrefix(sym, symFrameClose))))
		}
	}
	return h
}

// parseEventSymbol parses "name(a,b)" back into an event.
func parseEventSymbol(s string) (hexpr.Event, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return hexpr.E(s), nil
	}
	if !strings.HasSuffix(s, ")") {
		return hexpr.Event{}, fmt.Errorf("valid: malformed event symbol %q", s)
	}
	name := s[:open]
	argsStr := s[open+1 : len(s)-1]
	if argsStr == "" {
		return hexpr.E(name), nil
	}
	parts := strings.Split(argsStr, ",")
	args := make([]hexpr.Value, len(parts))
	for i, p := range parts {
		v, err := hexpr.ParseValue(strings.TrimSpace(p))
		if err != nil {
			return hexpr.Event{}, err
		}
		args[i] = v
	}
	return hexpr.Event{Name: name, Args: args}, nil
}
