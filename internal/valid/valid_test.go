package valid_test

import (
	"errors"
	"math/rand"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/paperex"
	"susc/internal/policy"
	"susc/internal/valid"
)

// nwar builds the "never write after read" policy instance.
func nwar() *policy.Instance {
	a := &policy.Automaton{
		Name:   "nwar",
		States: []string{"q0", "q1", "qv"},
		Start:  "q0",
		Finals: []string{"qv"},
		Edges: []policy.Edge{
			{From: "q0", To: "q1", EventName: "read"},
			{From: "q1", To: "qv", EventName: "write"},
		},
	}
	return a.MustInstantiate(policy.Binding{})
}

func read() hexpr.Expr  { return hexpr.Act(hexpr.E("read")) }
func write() hexpr.Expr { return hexpr.Act(hexpr.E("write")) }

func TestCheckSimpleViolation(t *testing.T) {
	phi := nwar()
	table := policy.NewTable(phi)
	bad := hexpr.Frame(phi.ID(), hexpr.Cat(read(), write()))
	err := valid.Check(bad, table)
	var v *valid.Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want Violation", err)
	}
	if v.Policy != phi.ID() {
		t.Errorf("policy = %s", v.Policy)
	}
	good := hexpr.Cat(hexpr.Frame(phi.ID(), read()), write())
	if err := valid.Check(good, table); err != nil {
		t.Errorf("φ[read]·write is valid: %v", err)
	}
}

func TestCheckHistoryDependence(t *testing.T) {
	phi := nwar()
	table := policy.NewTable(phi)
	// read·write outside the framing, then activate φ: the activation must
	// fail because the past does not respect φ.
	bad := hexpr.Cat(read(), write(), hexpr.Frame(phi.ID(), hexpr.Act(hexpr.E("other"))))
	var v *valid.Violation
	if !errors.As(valid.Check(bad, table), &v) {
		t.Fatal("activating φ over a violating past must be invalid")
	}
	// read before the framing, write inside: still a violation (history
	// dependence: the read is remembered).
	bad2 := hexpr.Cat(read(), hexpr.Frame(phi.ID(), write()))
	if !errors.As(valid.Check(bad2, table), &v) {
		t.Fatal("read·φ[write] must be invalid")
	}
}

func TestCheckBranching(t *testing.T) {
	phi := nwar()
	table := policy.NewTable(phi)
	// only one branch violates: the expression is still invalid
	e := hexpr.Frame(phi.ID(), hexpr.Cat(read(),
		hexpr.Ext(
			hexpr.B(hexpr.In("ok"), hexpr.Eps()),
			hexpr.B(hexpr.In("oops"), write()),
		)))
	if ok, err := valid.Valid(e, table); err != nil || ok {
		t.Errorf("branching violation must be found: ok=%v err=%v", ok, err)
	}
	// no branch violates
	e2 := hexpr.Frame(phi.ID(), hexpr.Cat(read(),
		hexpr.Ext(
			hexpr.B(hexpr.In("ok"), hexpr.Eps()),
			hexpr.B(hexpr.In("oops"), read()),
		)))
	if ok, err := valid.Valid(e2, table); err != nil || !ok {
		t.Errorf("no violation expected: ok=%v err=%v", ok, err)
	}
}

func TestCheckRecursionWithPolicies(t *testing.T) {
	phi := nwar()
	table := policy.NewTable(phi)
	// μh. (loop?.(read·h) + stop?) under φ: reads forever, never writes — valid
	e := hexpr.Frame(phi.ID(), hexpr.Mu("h", hexpr.Ext(
		hexpr.B(hexpr.In("loop"), hexpr.Cat(read(), hexpr.V("h"))),
		hexpr.B(hexpr.In("stop"), hexpr.Eps()),
	)))
	if ok, err := valid.Valid(e, table); err != nil || !ok {
		t.Errorf("recursive reads are valid: ok=%v err=%v", ok, err)
	}
	// a write somewhere in the loop makes it invalid
	e2 := hexpr.Frame(phi.ID(), hexpr.Mu("h", hexpr.Ext(
		hexpr.B(hexpr.In("loop"), hexpr.Cat(read(), hexpr.V("h"))),
		hexpr.B(hexpr.In("w"), hexpr.Cat(write(), hexpr.V("h"))),
		hexpr.B(hexpr.In("stop"), hexpr.Eps()),
	)))
	if ok, err := valid.Valid(e2, table); err != nil || ok {
		t.Errorf("write in loop is invalid: ok=%v err=%v", ok, err)
	}
}

func TestCheckUnknownPolicy(t *testing.T) {
	table := policy.NewTable()
	e := hexpr.Frame("ghost", hexpr.Eps())
	err := valid.Check(e, table)
	if err == nil {
		t.Fatal("unknown policy must error")
	}
	var v *valid.Violation
	if errors.As(err, &v) {
		t.Fatal("unknown policy is a hard error, not a violation")
	}
}

func TestRegularizeDropsNestedFraming(t *testing.T) {
	phi := nwar()
	inner := hexpr.Frame(phi.ID(), read())
	e := hexpr.Frame(phi.ID(), hexpr.Cat(read(), inner, write()))
	got := valid.Regularize(e)
	want := hexpr.Frame(phi.ID(), hexpr.Cat(read(), read(), write()))
	if !hexpr.Equal(got, want) {
		t.Errorf("Regularize = %s, want %s", got.Key(), want.Key())
	}
	if valid.FramingDepth(e) != 2 || valid.FramingDepth(got) != 1 {
		t.Errorf("depths: %d -> %d", valid.FramingDepth(e), valid.FramingDepth(got))
	}
}

func TestRegularizeKeepsDifferentPolicies(t *testing.T) {
	e := hexpr.Frame("a", hexpr.Frame("b", hexpr.Frame("a", read())))
	got := valid.Regularize(e)
	want := hexpr.Frame("a", hexpr.Frame("b", read()))
	if !hexpr.Equal(got, want) {
		t.Errorf("Regularize = %s, want %s", got.Key(), want.Key())
	}
}

func TestRegularizeSessionPolicies(t *testing.T) {
	phi := nwar()
	// A session under an active framing of the same policy is demoted.
	e := hexpr.Frame(phi.ID(), hexpr.Open("r1", phi.ID(), read()))
	got := valid.Regularize(e)
	want := hexpr.Frame(phi.ID(), hexpr.Open("r1", hexpr.NoPolicy, read()))
	if !hexpr.Equal(got, want) {
		t.Errorf("Regularize = %s, want %s", got.Key(), want.Key())
	}
	// A session policy shields its body from re-framing.
	e2 := hexpr.Open("r1", phi.ID(), hexpr.Frame(phi.ID(), read()))
	got2 := valid.Regularize(e2)
	want2 := hexpr.Open("r1", phi.ID(), read())
	if !hexpr.Equal(got2, want2) {
		t.Errorf("Regularize = %s, want %s", got2.Key(), want2.Key())
	}
}

func TestRegularizePreservesValidity(t *testing.T) {
	phi := nwar()
	psi := paperex.Phi1()
	table := policy.NewTable(phi, psi)
	rnd := rand.New(rand.NewSource(31))
	cfg := hexpr.DefaultGenConfig()
	cfg.Policies = []hexpr.PolicyID{phi.ID(), psi.ID()}
	cfg.Events = []string{"read", "write", paperex.EvSgn}
	for i := 0; i < 300; i++ {
		e := hexpr.Generate(rnd, cfg)
		v1, err := valid.Valid(e, table)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := valid.Valid(valid.Regularize(e), table)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Fatalf("regularization changed validity of %s: %v -> %v", hexpr.Pretty(e), v1, v2)
		}
	}
}

// TestModelCheckAgreesWithCheck cross-checks the two deciders on random
// expressions (the [5,4] automata pipeline vs. the direct exploration).
func TestModelCheckAgreesWithCheck(t *testing.T) {
	phi := nwar()
	psi := paperex.Phi1()
	table := policy.NewTable(phi, psi)
	rnd := rand.New(rand.NewSource(32))
	cfg := hexpr.DefaultGenConfig()
	cfg.Policies = []hexpr.PolicyID{phi.ID(), psi.ID()}
	cfg.Events = []string{"read", "write", paperex.EvSgn}
	valids, invalids := 0, 0
	for i := 0; i < 300; i++ {
		e := hexpr.Generate(rnd, cfg)
		if i%2 == 1 {
			// Bias half the sample towards violations: a read under φ makes
			// any later write invalid, so expressions containing writes trip.
			e = hexpr.Frame(phi.ID(), hexpr.Cat(read(), e))
		}
		direct, err := valid.Valid(e, table)
		if err != nil {
			t.Fatal(err)
		}
		mcErr := valid.ModelCheck(e, table)
		var v *valid.Violation
		mc := mcErr == nil
		if mcErr != nil && !errors.As(mcErr, &v) {
			t.Fatalf("ModelCheck hard error: %v", mcErr)
		}
		if direct != mc {
			t.Fatalf("deciders disagree on %s: direct=%v modelcheck=%v", hexpr.Pretty(e), direct, mc)
		}
		if direct {
			valids++
		} else {
			invalids++
		}
	}
	if valids == 0 || invalids == 0 {
		t.Errorf("degenerate sample: %d valid, %d invalid", valids, invalids)
	}
}

func TestModelCheckWitnessIsViolating(t *testing.T) {
	phi := nwar()
	table := policy.NewTable(phi)
	bad := hexpr.Frame(phi.ID(), hexpr.Cat(read(), write()))
	err := valid.ModelCheck(bad, table)
	var v *valid.Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v", err)
	}
	// The decoded witness must itself be an invalid history.
	flat := v.Trace.Flat()
	if len(flat) != 2 || flat[0].Name != "read" || flat[1].Name != "write" {
		t.Errorf("witness = %v", v.Trace)
	}
}

func TestHotelServicesValidityUnderPhi(t *testing.T) {
	table := paperex.Policies()
	phi1 := paperex.Phi1().ID()
	phi2 := paperex.Phi2().ID()
	cases := []struct {
		name  string
		hotel hexpr.Expr
		pol   hexpr.PolicyID
		valid bool
	}{
		{"S1/phi1", paperex.S1(), phi1, false},
		{"S2/phi1", paperex.S2(), phi1, true},
		{"S3/phi1", paperex.S3(), phi1, true},
		{"S4/phi1", paperex.S4(), phi1, false},
		{"S1/phi2", paperex.S1(), phi2, false},
		{"S2/phi2", paperex.S2(), phi2, true},
		{"S3/phi2", paperex.S3(), phi2, false},
		{"S4/phi2", paperex.S4(), phi2, true},
	}
	for _, c := range cases {
		framed := hexpr.Frame(c.pol, c.hotel)
		got, err := valid.Valid(framed, table)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.valid {
			t.Errorf("%s: valid = %v, want %v", c.name, got, c.valid)
		}
		// the automata pipeline agrees
		mcOK := valid.ModelCheck(framed, table) == nil
		if mcOK != c.valid {
			t.Errorf("%s: ModelCheck = %v, want %v", c.name, mcOK, c.valid)
		}
	}
}

func TestFramingDepth(t *testing.T) {
	if d := valid.FramingDepth(hexpr.Eps()); d != 0 {
		t.Errorf("depth(eps) = %d", d)
	}
	e := hexpr.Frame("a", hexpr.Cat(read(), hexpr.Frame("b", hexpr.Frame("c", read()))))
	if d := valid.FramingDepth(e); d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
}

// TestCheckWitnessTraceIsCompleteAndInvalid: the violation trace returned
// by Check contains the full offending history — it is itself invalid, and
// all of its proper prefixes are valid.
func TestCheckWitnessTraceIsComplete(t *testing.T) {
	phi := nwar()
	table := policy.NewTable(phi)
	bad := hexpr.Frame(phi.ID(), hexpr.Cat(
		hexpr.Act(hexpr.E("setup")), read(), hexpr.Act(hexpr.E("mid")), write(),
	))
	err := valid.Check(bad, table)
	var v *valid.Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v", err)
	}
	// expected: ⌊φ setup read mid write
	want := "[_" + string(phi.ID()) + " setup read mid write"
	if v.Trace.String() != want {
		t.Fatalf("witness = %q, want %q", v.Trace, want)
	}
	if history.Valid(v.Trace, table) {
		t.Error("witness must be an invalid history")
	}
	if !history.Valid(v.Trace[:len(v.Trace)-1], table) {
		t.Error("witness minus the last item must be valid")
	}
}
