// Package valid statically verifies the validity of (the histories of) a
// history expression against its security policies — the §3.1 machinery of
// the paper, inherited from Bartoletti–Degano–Ferrari. Because of framing
// nesting, validity is not a regular property of the raw expression; the
// semantics-preserving *regularization* removes redundant re-activations
// of already-active policies, after which validity is decidable by
// standard finite-state model checking.
//
// Two deciders are provided and cross-checked by the tests:
//
//   - Check: a direct product exploration of the expression's LTS with the
//     (nondeterministic) policy automata run from the start of the history
//     — exact, and independent of regularization;
//   - ModelCheck: the literal pipeline of the paper — history-prefix NFA of
//     the expression, framed policy automata over a concrete alphabet,
//     product and emptiness via the autom substrate (the LocUsT role).
package valid

import (
	"susc/internal/hexpr"
)

// Regularize removes redundant policy framings: inside φ[…], any nested
// framing of the same φ is dropped (its body is kept), and framings of the
// trivial policy disappear. Sessions open_{r,φ} keep their node but their
// bodies are regularized under φ active, matching the network semantics in
// which the session opening activates φ.
//
// Regularization preserves the flattened histories and the validity of
// every history of the expression (the [5,4] transformation): a nested
// re-activation of an active policy enforces nothing new, since validity
// already demands every prefix respect the active policy.
func Regularize(e hexpr.Expr) hexpr.Expr {
	return regularize(e, map[hexpr.PolicyID]bool{})
}

func regularize(e hexpr.Expr, active map[hexpr.PolicyID]bool) hexpr.Expr {
	switch t := e.(type) {
	case hexpr.Nil, hexpr.Var, hexpr.Ev, hexpr.CloseTag, hexpr.FrameClose:
		return e
	case hexpr.Seq:
		return hexpr.Cat(regularize(t.Left, active), regularize(t.Right, active))
	case hexpr.Rec:
		return hexpr.Mu(t.Name, regularize(t.Body, active))
	case hexpr.ExtChoice:
		return hexpr.Ext(regularizeBranches(t.Branches, active)...)
	case hexpr.IntChoice:
		return hexpr.IntCh(regularizeBranches(t.Branches, active)...)
	case hexpr.Session:
		if t.Policy == hexpr.NoPolicy || active[t.Policy] {
			// The policy adds nothing (trivial or already enforced): keep the
			// session but demote its policy to trivial inside an active scope.
			pol := t.Policy
			if active[pol] {
				pol = hexpr.NoPolicy
			}
			return hexpr.Open(t.Req, pol, regularize(t.Body, active))
		}
		active[t.Policy] = true
		body := regularize(t.Body, active)
		delete(active, t.Policy)
		return hexpr.Open(t.Req, t.Policy, body)
	case hexpr.Framing:
		if t.Policy == hexpr.NoPolicy || active[t.Policy] {
			return regularize(t.Body, active)
		}
		active[t.Policy] = true
		body := regularize(t.Body, active)
		delete(active, t.Policy)
		return hexpr.Frame(t.Policy, body)
	}
	panic("valid: unknown expression in Regularize")
}

func regularizeBranches(bs []hexpr.Branch, active map[hexpr.PolicyID]bool) []hexpr.Branch {
	out := make([]hexpr.Branch, len(bs))
	for i, b := range bs {
		out[i] = hexpr.Branch{Comm: b.Comm, Cont: regularize(b.Cont, active)}
	}
	return out
}

// FramingDepth returns the maximum static nesting depth of framings (and
// session policies) in e; after Regularize, no policy contributes more
// than one level per scope.
func FramingDepth(e hexpr.Expr) int {
	var depth func(hexpr.Expr) int
	depth = func(e hexpr.Expr) int {
		switch t := e.(type) {
		case hexpr.Seq:
			return max(depth(t.Left), depth(t.Right))
		case hexpr.Rec:
			return depth(t.Body)
		case hexpr.ExtChoice:
			d := 0
			for _, b := range t.Branches {
				d = max(d, depth(b.Cont))
			}
			return d
		case hexpr.IntChoice:
			d := 0
			for _, b := range t.Branches {
				d = max(d, depth(b.Cont))
			}
			return d
		case hexpr.Session:
			d := depth(t.Body)
			if t.Policy != hexpr.NoPolicy {
				d++
			}
			return d
		case hexpr.Framing:
			d := depth(t.Body)
			if t.Policy != hexpr.NoPolicy {
				d++
			}
			return d
		default:
			return 0
		}
	}
	return depth(e)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
