package server

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"susc/internal/faultinject"
)

// SignatureHeader carries the HMAC of a webhook body:
// "sha256=<hex hmac-sha256(secret, body)>". Receivers recompute it with
// VerifySignature before trusting the payload.
const SignatureHeader = "X-Susc-Signature"

// Sign computes the signature header value for a webhook body.
func Sign(secret, body []byte) string {
	m := hmac.New(sha256.New, secret)
	m.Write(body)
	return "sha256=" + hex.EncodeToString(m.Sum(nil))
}

// VerifySignature reports whether sig authenticates body under secret,
// in constant time.
func VerifySignature(secret, body []byte, sig string) bool {
	return hmac.Equal([]byte(Sign(secret, body)), []byte(sig))
}

// WebhookStats counts the lifecycle of callback deliveries.
type WebhookStats struct {
	Delivered int64 `json:"delivered"`
	Failed    int64 `json:"failed"`  // all retries exhausted, or shutdown cut the backoff
	Dropped   int64 `json:"dropped"` // queue full at enqueue time
}

// delivery is one callback waiting in the queue.
type delivery struct {
	url  string
	body []byte
}

// webhookQueue delivers result callbacks asynchronously: requests
// enqueue, one worker drains with bounded exponential backoff, and every
// body is HMAC-signed. The queue is bounded — under sustained callback
// failure the server sheds deliveries instead of memory.
type webhookQueue struct {
	ch     chan delivery
	ctx    context.Context // aborts in-flight backoff waits on shutdown
	cancel context.CancelFunc
	wg     sync.WaitGroup
	secret []byte
	client *http.Client

	attempts int           // delivery attempts per callback
	backoff  time.Duration // first retry delay; doubles per attempt

	delivered atomic.Int64
	failed    atomic.Int64
	dropped   atomic.Int64
}

func newWebhookQueue(secret []byte, depth int) *webhookQueue {
	ctx, cancel := context.WithCancel(context.Background())
	q := &webhookQueue{
		ch:       make(chan delivery, depth),
		ctx:      ctx,
		cancel:   cancel,
		secret:   secret,
		client:   &http.Client{Timeout: 10 * time.Second},
		attempts: 3,
		backoff:  100 * time.Millisecond,
	}
	q.wg.Add(1)
	go q.worker()
	return q
}

// enqueue queues one signed callback; a full queue drops it (graceful
// degradation: verification results were already streamed to the
// requester, the callback is best-effort).
func (q *webhookQueue) enqueue(url string, body []byte) bool {
	select {
	case q.ch <- delivery{url: url, body: body}:
		return true
	default:
		q.dropped.Add(1)
		return false
	}
}

// worker drains the queue until close(q.ch); the channel range is the
// cancellation signal.
func (q *webhookQueue) worker() {
	defer q.wg.Done()
	for d := range q.ch {
		q.deliver(d)
	}
}

// deliver POSTs one callback with bounded exponential backoff. Shutdown
// (q.ctx) aborts both the waits between attempts and a POST in flight,
// so a dead callback endpoint cannot stall the drain.
func (q *webhookQueue) deliver(d delivery) {
	back := q.backoff
	for attempt := 1; ; attempt++ {
		if faultinject.Enabled() {
			faultinject.Fire(faultinject.WebhookDeliver, d.url)
		}
		if err := q.post(d); err == nil {
			q.delivered.Add(1)
			return
		}
		if attempt >= q.attempts {
			q.failed.Add(1)
			return
		}
		select {
		case <-time.After(back):
			back *= 2
		case <-q.ctx.Done():
			q.failed.Add(1)
			return
		}
	}
}

func (q *webhookQueue) post(d delivery) error {
	req, err := http.NewRequestWithContext(q.ctx, http.MethodPost, d.url, bytes.NewReader(d.body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(SignatureHeader, Sign(q.secret, d.body))
	resp, err := q.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("webhook: %s returned %s", d.url, resp.Status)
	}
	return nil
}

// close drains outstanding deliveries (their retry backoffs cut short by
// the queue context) and waits for the worker to exit.
func (q *webhookQueue) close() {
	q.cancel()
	close(q.ch)
	q.wg.Wait()
}

func (q *webhookQueue) stats() WebhookStats {
	return WebhookStats{
		Delivered: q.delivered.Load(),
		Failed:    q.failed.Load(),
		Dropped:   q.dropped.Load(),
	}
}
