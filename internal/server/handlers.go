package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"

	"susc/internal/budget"
	"susc/internal/engine"
	"susc/internal/faultinject"
	"susc/internal/hexpr"
	"susc/internal/lint"
	"susc/internal/parser"
	"susc/internal/plans"
)

// stream writes one NDJSON response: record lines byte-identical to the
// CLI's -json output for the mode, control lines (first key "susc") for
// everything else, flushed per line so long verifications stream.
type stream struct {
	enc     *json.Encoder
	flusher http.Flusher
	records int
}

func newStream(w http.ResponseWriter) *stream {
	st := &stream{enc: json.NewEncoder(w)}
	st.flusher, _ = w.(http.Flusher)
	return st
}

func (st *stream) flush() {
	if st.flusher != nil {
		st.flusher.Flush()
	}
}

// record emits one result line — the shapes engine/entry.go pins.
func (st *stream) record(v any) error {
	if err := st.enc.Encode(v); err != nil {
		return err
	}
	st.records++
	st.flush()
	return nil
}

// control emits one out-of-band line; encode errors are unreportable
// (the response is the error channel) and deliberately dropped.
func (st *stream) control(v any) {
	st.enc.Encode(v)
	st.flush()
}

// doneLine ends every response: the exit code the CLI would have
// returned, and its error message when non-zero.
type doneLine struct {
	Susc    string `json:"susc"` // "done"
	Exit    int    `json:"exit"`
	Records int    `json:"records"`
	Error   string `json:"error,omitempty"`
}

// errorLine reports an isolated panic: the typed repro unit a client
// quotes when filing the failure.
type errorLine struct {
	Susc    string `json:"susc"` // "error"
	Unit    string `json:"unit"`
	Message string `json:"message"`
}

// diagLine carries a checkall finding that the CLI would print to
// stderr — in-band but out of the record stream.
type diagLine struct {
	Susc string           `json:"susc"` // "lint" or "audit"
	Diag engine.LintEntry `json:"diag"`
}

// webhookPayload is the signed result callback body.
type webhookPayload struct {
	Mode    string `json:"mode"`
	ID      int64  `json:"id"`
	File    string `json:"file"`
	Exit    int    `json:"exit"`
	Records int    `json:"records"`
	Error   string `json:"error,omitempty"`
}

// runRequest owns one admitted request: budget, panic guard, stream,
// done line, webhook. Every path through it ends the response with a
// control line, so clients can always distinguish a complete (possibly
// failed) verification from a torn connection.
func (s *Server) runRequest(w http.ResponseWriter, r *http.Request, mode string, id int64, src string) {
	bud, cancel, err := s.reqBudget(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	st := newStream(w)
	unit := fmt.Sprintf("serve/%s#%d", mode, id)
	runErr := budget.Guard(unit, func() error {
		if faultinject.Enabled() {
			faultinject.Fire(faultinject.ServeHandler, fmt.Sprintf("%s#%d", mode, id))
		}
		return s.runMode(mode, r, src, bud, st)
	})
	var ie *budget.InternalError
	if errors.As(runErr, &ie) {
		s.panics.Add(1)
		st.control(errorLine{Susc: "error", Unit: ie.Unit, Message: fmt.Sprint(ie.Value)})
	}
	exit := engine.ExitCode(runErr)
	done := doneLine{Susc: "done", Exit: exit, Records: st.records}
	if runErr != nil {
		done.Error = runErr.Error()
	}
	st.control(done)
	if url := r.URL.Query().Get("webhook"); url != "" && s.hooks != nil {
		body, _ := json.Marshal(webhookPayload{
			Mode: mode, ID: id, File: fileName(r), Exit: exit,
			Records: st.records, Error: done.Error,
		})
		s.hooks.enqueue(url, body)
	}
}

// fileName is the display name diagnostics anchor to, client-chosen.
func fileName(r *http.Request) string {
	if f := r.URL.Query().Get("file"); f != "" {
		return f
	}
	return "spec"
}

// runMode dispatches one mode, writing record lines and returning the
// error that becomes the exit code — the same epilogue helpers the CLI
// uses, so exit codes match run for run.
func (s *Server) runMode(mode string, r *http.Request, src string, bud *budget.Budget, st *stream) error {
	q := r.URL.Query()
	switch mode {
	case "lint":
		minSev, err := lint.ParseSeverity(severityParam(r))
		if err != nil {
			return err
		}
		diags := s.sess.Lint(src, lint.Options{MinSeverity: minSev, Budget: bud})
		for _, d := range diags {
			if err := st.record(engine.LintEntry{File: fileName(r), Diagnostic: d}); err != nil {
				return err
			}
		}
		return engine.LintErr(diags, bud)

	case "audit":
		minSev, err := lint.ParseSeverity(severityParam(r))
		if err != nil {
			return err
		}
		res := s.sess.Audit(src, lint.Options{
			MinSeverity:       minSev,
			Budget:            bud,
			AuditDeclaredOnly: boolParam(q.Get("plan"), false),
		})
		for _, d := range res.Diagnostics {
			if err := st.record(engine.LintEntry{File: fileName(r), Diagnostic: d}); err != nil {
				return err
			}
		}
		for _, cc := range res.Coverage {
			if err := st.record(engine.CoverageEntry{File: fileName(r), Coverage: cc}); err != nil {
				return err
			}
		}
		return engine.AuditErr(res, bud)

	case "check":
		f, err := parser.ParseFile(src)
		if err != nil {
			return err
		}
		c, err := engine.SelectClient(f, q.Get("client"))
		if err != nil {
			return err
		}
		rep, err := s.sess.CheckPlan(f, c, bud)
		if err != nil {
			return err
		}
		if err := st.record(rep); err != nil {
			return err
		}
		return engine.CheckErr(rep, bud)

	case "checkall":
		f, err := parser.ParseFile(src)
		if err != nil {
			return err
		}
		caps, err := capsParam(q.Get("cap"))
		if err != nil {
			return err
		}
		res, runErr := s.sess.CheckAll(f, src, caps, bud)
		for _, d := range res.Lint {
			st.control(diagLine{Susc: "lint", Diag: engine.LintEntry{File: fileName(r), Diagnostic: d}})
		}
		if res.Audit != nil {
			for _, d := range res.Audit.Diagnostics {
				st.control(diagLine{Susc: "audit", Diag: engine.LintEntry{File: fileName(r), Diagnostic: d}})
			}
		}
		if runErr != nil {
			return runErr
		}
		if err := st.record(res.Report); err != nil {
			return err
		}
		return res.Err(bud)

	case "plans":
		f, err := parser.ParseFile(src)
		if err != nil {
			return err
		}
		c, err := engine.SelectClient(f, q.Get("client"))
		if err != nil {
			return err
		}
		opts := plans.Options{
			PruneNonCompliant: boolParam(q.Get("prune"), true),
			Workers:           runtime.GOMAXPROCS(0),
			Budget:            bud,
		}
		err = s.sess.AssessStream(f, c, opts, func(a plans.Assessment) error {
			return st.record(engine.ToPlanEntry(a))
		})
		if err != nil {
			return err
		}
		if e := bud.Exhausted(); e != nil {
			return e
		}
		return nil
	}
	return fmt.Errorf("unknown mode %q", mode)
}

func severityParam(r *http.Request) string {
	if v := r.URL.Query().Get("severity"); v != "" {
		return v
	}
	return "info"
}

func boolParam(v string, dflt bool) bool {
	switch v {
	case "":
		return dflt
	case "0", "false", "no":
		return false
	}
	return true
}

func capsParam(spec string) (map[hexpr.Location]int, error) {
	if spec == "" {
		return nil, nil
	}
	return engine.ParseCaps(spec)
}
