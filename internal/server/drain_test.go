package server_test

import (
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"susc/internal/faultinject"
	"susc/internal/server"
)

// leakCheck asserts the goroutine count settles back near the baseline
// recorded before the test spun anything up (PR 5 harness idiom).
func leakCheck(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

// startNoCleanup boots a server the test shuts down itself.
func startNoCleanup(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String()
}

// TestDrainWaitsForInFlight: a shutdown with a generous grace lets the
// in-flight request finish normally (exit 0) and leaks nothing.
func TestDrainWaitsForInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	hold := make(chan struct{})
	var held atomic.Bool
	restore := faultinject.Set(func(p faultinject.Point, unit string) {
		if p == faultinject.ServeHandler && held.CompareAndSwap(false, true) {
			<-hold
		}
	})
	defer restore()
	srv, base := startNoCleanup(t, server.Config{})
	src := hotelSrc(t)
	done := make(chan *response, 1)
	go func() { done <- post(t, base+"/v1/checkall", src) }()
	waitInFlight(t, base, 1)

	shut := make(chan error, 1)
	go func() { shut <- srv.Shutdown(10 * time.Second) }()
	// Drain starts: health stops answering ok (503 on a live keep-alive
	// connection, or connection refused once the listener closes).
	waitDrainStarted(t, base)
	close(hold)
	if err := <-shut; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if r := <-done; exitOf(t, r) != 0 {
		t.Fatalf("in-flight request did not complete: %v", r.done)
	}
	leakCheck(t, before)
}

// TestDrainGraceExpiryFlushesUnknown: when the grace window expires
// with a request still running, the server cancels its budget; the
// request flushes a partial Unknown record and a done line with exit 3
// instead of a torn stream.
func TestDrainGraceExpiryFlushesUnknown(t *testing.T) {
	before := runtime.NumGoroutine()
	hold := make(chan struct{})
	var held atomic.Bool
	restore := faultinject.Set(func(p faultinject.Point, unit string) {
		if p == faultinject.ServeHandler && held.CompareAndSwap(false, true) {
			<-hold
		}
	})
	defer restore()
	srv, base := startNoCleanup(t, server.Config{})
	src := hotelSrc(t)
	done := make(chan *response, 1)
	go func() { done <- post(t, base+"/v1/checkall", src) }()
	waitInFlight(t, base, 1)

	shut := make(chan error, 1)
	go func() { shut <- srv.Shutdown(50 * time.Millisecond) }()
	// Let the grace window lapse so the server cancels request budgets,
	// then release the stalled exploration to observe the flush.
	time.Sleep(150 * time.Millisecond)
	close(hold)
	if err := <-shut; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	r := <-done
	if exitOf(t, r) != 3 {
		t.Fatalf("cancelled request exit %v, want 3", r.done)
	}
	if len(r.records) != 1 || !strings.Contains(r.records[0], `"verdict":"unknown"`) {
		t.Fatalf("no partial Unknown record flushed: %v", r.records)
	}
	leakCheck(t, before)
}

// TestDrainIdle: shutting down an idle server is immediate and clean.
func TestDrainIdle(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, base := startNoCleanup(t, server.Config{CacheDir: t.TempDir()})
	if r := post(t, base+"/v1/lint", "protocol P { role a }"); r.done == nil {
		t.Fatal("lint request failed")
	}
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	leakCheck(t, before)
}

func waitInFlight(t *testing.T, base string, n int) {
	t.Helper()
	for i := 0; i < 400; i++ {
		if getStats(t, base).InFlight >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("in-flight never reached %d", n)
}

func waitDrainStarted(t *testing.T, base string) {
	t.Helper()
	for i := 0; i < 400; i++ {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return // listener closed — drain under way
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("healthz never reported draining")
}
