// Package server is the long-running front end of the verification
// engine: `susc serve` boots one Server over a warm engine.Session and
// answers POSTed specification files with streamed NDJSON results.
//
// The protocol is deliberately plain. POST the spec source to
// /v1/<mode> (lint, audit, check, checkall, plans); record lines come
// back exactly as the CLI's -json mode prints them for that mode, so a
// served verdict is byte-identical to a single-shot `susc <mode> -json`
// run against the same session state. Everything the CLI would print to
// stderr — progress, findings riding along with a checkall verdict —
// arrives as control lines, JSON objects whose first key is "susc"
// (filter them with `grep -v '^{"susc"'`). The final line of every
// response is {"susc":"done","exit":N} carrying the exit code the CLI
// would have returned.
//
// Robustness is the point of the design:
//
//   - Admission control: at most MaxInFlight requests verify at once; the
//     rest are shed immediately with 429 and a Retry-After header instead
//     of queueing into memory exhaustion.
//   - Budget isolation: every request gets its own budget.Budget, its
//     requested limits clamped by the server-wide caps, so one expensive
//     spec degrades to an Unknown verdict instead of starving the rest.
//   - Panic isolation: each request runs under budget.Guard; a poisoned
//     spec yields a typed internal-error control line (exit 2) and the
//     serving goroutine survives.
//   - Graceful drain: Shutdown stops admitting, waits up to the grace for
//     in-flight requests, then cancels their budgets so they flush
//     partial Unknown results and the connections still close cleanly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"susc/internal/budget"
	"susc/internal/engine"
	"susc/internal/faultinject"
	"susc/internal/memo"
	"susc/internal/store"
)

// Config tunes one Server. The zero value serves with the defaults
// below and no persistence.
type Config struct {
	// CacheDir persists verdicts in CacheDir/susc.store ("" = memory
	// only). The store's advisory lock makes a second server on the same
	// directory fail at New with a *store.LockedError.
	CacheDir string
	// MaxInFlight bounds concurrently verifying requests (default 4).
	MaxInFlight int
	// MaxTimeout, MaxStates and MaxEdges clamp the per-request budget
	// caps. Zero leaves the dimension unlimited, and requests may then
	// choose any bound; a non-zero server cap also becomes the default
	// for requests that specify none.
	MaxTimeout time.Duration
	MaxStates  int64
	MaxEdges   int64
	// MaxBody bounds a request body in bytes (default 4 MiB).
	MaxBody int64
	// WebhookSecret enables HMAC-signed result callbacks; without it,
	// requests carrying a webhook parameter are rejected.
	WebhookSecret []byte
	// WebhookDepth bounds the callback queue (default 64).
	WebhookDepth int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 4 << 20
	}
	if c.WebhookDepth <= 0 {
		c.WebhookDepth = 64
	}
	return c
}

// Stats is the /stats payload: admission counters plus the session's
// memo- and store-tier counters.
type Stats struct {
	InFlight    int           `json:"inFlight"`
	MaxInFlight int           `json:"maxInFlight"`
	Served      int64         `json:"served"`
	Shed        int64         `json:"shed"`
	Panics      int64         `json:"panics"`
	Memo        MemoStats     `json:"memo"`
	Store       *StoreStats   `json:"store,omitempty"`
	Webhooks    *WebhookStats `json:"webhooks,omitempty"`
}

// MemoStats is the memory tier of Stats.
type MemoStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hitRate"`
	Entries uint64  `json:"entries"`
}

// StoreStats is the disk tier of Stats.
type StoreStats struct {
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	HitRate    float64 `json:"hitRate"`
	Writebacks uint64  `json:"writebacks"`
	Entries    uint64  `json:"entries"`
}

// Server is one verification service instance over a warm session.
type Server struct {
	cfg  Config
	sess *engine.Session
	http *http.Server
	lis  net.Listener

	// baseCtx parents every request budget; cancelReqs fires when the
	// drain grace expires, degrading still-running verifications to
	// partial Unknown results.
	baseCtx    context.Context
	cancelReqs context.CancelFunc

	sem      chan struct{}
	hooks    *webhookQueue
	reqID    atomic.Int64
	served   atomic.Int64
	shed     atomic.Int64
	panics   atomic.Int64
	draining atomic.Bool
}

// New opens the session (taking the store lock when cfg.CacheDir is
// set) and prepares the server. The caller owns the listener: pair New
// with Serve, then Shutdown.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	sess, err := engine.Open(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		sess:       sess,
		baseCtx:    ctx,
		cancelReqs: cancel,
		sem:        make(chan struct{}, cfg.MaxInFlight),
	}
	if len(cfg.WebhookSecret) > 0 {
		s.hooks = newWebhookQueue(cfg.WebhookSecret, cfg.WebhookDepth)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{mode}", s.handleVerify)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	s.http = &http.Server{Handler: mux}
	return s, nil
}

// Serve accepts on l until Shutdown. It returns http.ErrServerClosed
// after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	s.lis = l
	return s.http.Serve(l)
}

// Addr returns the bound address once Serve has a listener.
func (s *Server) Addr() net.Addr {
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Shutdown drains the server: stop admitting, wait up to grace for
// in-flight requests to finish, then cancel their budgets — the engines
// flush partial Unknown results and the responses still end with a done
// line — and wait for them to unwind. The webhook queue and the session
// close last, so every streamed verdict that should persist has hit the
// store before its lock releases.
func (s *Server) Shutdown(grace time.Duration) error {
	s.draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := s.http.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		s.cancelReqs()
		err = s.http.Shutdown(context.Background())
	}
	if s.hooks != nil {
		s.hooks.close()
	}
	s.cancelReqs()
	if cerr := s.sess.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the admission and cache counters.
func (s *Server) Stats() Stats {
	st := Stats{
		InFlight:    len(s.sem),
		MaxInFlight: s.cfg.MaxInFlight,
		Served:      s.served.Load(),
		Shed:        s.shed.Load(),
		Panics:      s.panics.Load(),
		Memo:        memoStats(s.sess.Cache),
	}
	if s.sess.Disk != nil {
		st.Store = storeStats(s.sess.Disk)
	}
	if s.hooks != nil {
		ws := s.hooks.stats()
		st.Webhooks = &ws
	}
	return st
}

func memoStats(c *memo.Cache) MemoStats {
	st := c.Stats()
	return MemoStats{Hits: st.Hits(), Misses: st.Misses(), HitRate: st.HitRate(), Entries: st.Entries()}
}

func storeStats(d *store.Store) *StoreStats {
	st := d.Stats()
	return &StoreStats{
		Hits: st.Hits(), Misses: st.Misses(), HitRate: st.HitRate(),
		Writebacks: st.Writebacks(), Entries: st.Entries(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// Modes are the servable verification modes, each reachable at
// /v1/<mode>; every one streams the same record shapes its CLI -json
// counterpart prints. Exported so the docs drift tests can hold the
// README's endpoint table to this list.
var Modes = []string{"lint", "audit", "check", "checkall", "plans"}

var modes = func() map[string]bool {
	m := map[string]bool{}
	for _, mode := range Modes {
		m[mode] = true
	}
	return m
}()

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	mode := r.PathValue("mode")
	if !modes[mode] {
		http.Error(w, fmt.Sprintf("unknown mode %q", mode), http.StatusNotFound)
		return
	}
	if faultinject.Enabled() {
		faultinject.Fire(faultinject.ServeAccept, mode)
	}
	if r.URL.Query().Get("webhook") != "" && s.hooks == nil {
		http.Error(w, "webhook callbacks disabled: the server has no signing secret", http.StatusBadRequest)
		return
	}
	// Admission control: a full semaphore sheds the request immediately —
	// a bounded queue of verifying goroutines, not an unbounded backlog.
	select {
	case s.sem <- struct{}{}:
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "too many in-flight verifications", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()
	src, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBody+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(src)) > s.cfg.MaxBody {
		http.Error(w, "spec exceeds the body limit", http.StatusRequestEntityTooLarge)
		return
	}
	s.served.Add(1)
	id := s.reqID.Add(1)
	s.runRequest(w, r, mode, id, string(src))
}

// reqBudget builds the request's isolated budget: client-requested
// limits clamped by the server caps, drawing cancellation from both the
// connection (client gone) and the server's drain context.
func (s *Server) reqBudget(r *http.Request) (*budget.Budget, context.CancelFunc, error) {
	q := r.URL.Query()
	lim := budget.Limits{
		Timeout:   s.cfg.MaxTimeout,
		MaxStates: s.cfg.MaxStates,
		MaxEdges:  s.cfg.MaxEdges,
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, nil, fmt.Errorf("timeout: %v", err)
		}
		lim.Timeout = clampDuration(d, s.cfg.MaxTimeout)
	}
	if v := q.Get("max-states"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("max-states: %v", err)
		}
		lim.MaxStates = clampInt64(n, s.cfg.MaxStates)
	}
	if v := q.Get("max-edges"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("max-edges: %v", err)
		}
		lim.MaxEdges = clampInt64(n, s.cfg.MaxEdges)
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	stop := context.AfterFunc(r.Context(), cancel)
	return budget.New(ctx, lim), func() { stop(); cancel() }, nil
}

// clampDuration bounds a requested wall-clock budget by the server cap
// (0 cap = unlimited, any request honoured; 0 or over-cap request =
// the cap).
func clampDuration(req, cap time.Duration) time.Duration {
	if cap <= 0 {
		return req
	}
	if req <= 0 || req > cap {
		return cap
	}
	return req
}

func clampInt64(req, cap int64) int64 {
	if cap <= 0 {
		return req
	}
	if req <= 0 || req > cap {
		return cap
	}
	return req
}
