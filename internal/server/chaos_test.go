package server_test

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"susc/internal/engine"
	"susc/internal/faultinject"
	"susc/internal/server"
)

// TestChaosSoak hammers one server with concurrent requests across all
// modes while fault hooks poison a handler, fail a store write and slow
// the plan workers. The soak asserts the robustness contract end to
// end: every response terminates with a done line, exactly the poisoned
// requests report internal errors, shed requests succeed on retry, the
// store reopens with no torn records, verdict streams stay
// deterministic, and no goroutines leak. Run it under -race.
func TestChaosSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	restore := faultinject.Set(faultinject.Chain(
		faultinject.PanicOnce(faultinject.ServeHandler, "lint#", "chaos: poisoned handler"),
		faultinject.PanicOnce(faultinject.StoreWrite, "", "chaos: store write fault"),
		faultinject.DelayAt(faultinject.PlansWorker, 100*time.Microsecond),
	))
	defer restore()

	srv, base := startNoCleanup(t, server.Config{CacheDir: dir, MaxInFlight: 3})
	src := hotelSrc(t)
	modes := []string{
		"/v1/lint", "/v1/audit", "/v1/check?client=c1",
		"/v1/plans?client=c2", "/v1/checkall",
	}
	const rounds = 5
	type outcome struct {
		url string
		r   *response
		raw string
		err error
	}
	total := rounds * len(modes)
	results := make(chan outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		for _, mode := range modes {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				r, raw, err := tryPost(base+url, src)
				results <- outcome{url: url, r: r, raw: raw, err: err}
			}(mode)
		}
	}
	wg.Wait()
	close(results)

	exits := map[int]int{}
	for o := range results {
		if o.err != nil {
			t.Fatalf("%s: %v", o.url, o.err)
		}
		if o.r.status != http.StatusOK {
			t.Fatalf("%s: status %d\n%s", o.url, o.r.status, o.raw)
		}
		if o.r.done == nil {
			t.Fatalf("%s: response has no done line\n%s", o.url, o.raw)
		}
		e, ok := o.r.done["exit"].(float64)
		if !ok {
			t.Fatalf("%s: done line has no exit\n%s", o.url, o.raw)
		}
		exits[int(e)]++
	}
	// Each one-shot fault fails at most the one request that hit it:
	// the poisoned lint handler always reports exit 2, the store write
	// fault fails whichever request led that flight (or is absorbed by
	// a deeper guard). Everything else must be clean.
	if exits[2] < 1 || exits[2] > 2 {
		t.Fatalf("exit-2 responses = %d, want 1 or 2 (exits %v)", exits[2], exits)
	}
	if exits[0] < total-3 {
		t.Fatalf("too few clean responses: %v", exits)
	}

	// Determinism survived the chaos: two warm reruns stream
	// byte-identical records.
	a := post(t, base+"/v1/plans?client=c2", src)
	b := post(t, base+"/v1/plans?client=c2", src)
	if len(a.records) == 0 || strings.Join(a.records, "\n") != strings.Join(b.records, "\n") {
		t.Fatalf("post-chaos reruns differ:\n%v\n%v", a.records, b.records)
	}

	st := getStats(t, base)
	if st.Panics < 1 || st.Panics > 2 {
		t.Errorf("panics = %d, want 1 or 2", st.Panics)
	}
	if st.Served < int64(total) {
		t.Errorf("served = %d, want >= %d", st.Served, total)
	}

	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	leakCheck(t, before)

	// The interrupted store write tore nothing: the log replays clean,
	// with zero healed bytes and the session's verdicts intact.
	sess, err := engine.Open(dir)
	if err != nil {
		t.Fatalf("store did not reopen after chaos: %v", err)
	}
	defer sess.Close()
	sst := sess.Disk.Stats()
	if sst.HealedBytes != 0 {
		t.Errorf("store healed %d bytes — a torn record was persisted", sst.HealedBytes)
	}
	if sst.Reset {
		t.Error("store reset on reopen")
	}
	if sst.Replayed == 0 {
		t.Error("store replayed no records — nothing was persisted")
	}
}

// tryPost posts like post but backs off and retries on 429 shedding,
// and reports failures as values — it is safe in worker goroutines.
func tryPost(url, body string) (*response, string, error) {
	for i := 0; ; i++ {
		resp, err := http.Post(url, "text/plain", strings.NewReader(body))
		if err != nil {
			return nil, "", err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, string(raw), err
		}
		if resp.StatusCode == http.StatusTooManyRequests && i < 200 {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		r, err := parseResponse(resp.StatusCode, raw)
		return r, string(raw), err
	}
}
