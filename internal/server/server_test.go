package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"susc/internal/faultinject"
	"susc/internal/server"
)

const hotelFile = "../../testdata/hotel.susc"

func hotelSrc(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile(hotelFile)
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// start boots a server on a free port and tears it down with the test.
func start(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Shutdown(5 * time.Second) })
	return srv, "http://" + ln.Addr().String()
}

// response is one parsed NDJSON reply: record lines raw (for byte
// comparisons), control lines decoded, the done line split out.
type response struct {
	status  int
	records []string
	control []map[string]any
	done    map[string]any
}

func post(t *testing.T, url, body string) *response {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseNDJSON(t, resp.StatusCode, raw)
}

func parseNDJSON(t *testing.T, status int, raw []byte) *response {
	t.Helper()
	out, err := parseResponse(status, raw)
	if err != nil {
		t.Fatalf("%v\n%s", err, raw)
	}
	if status == http.StatusOK && out.done == nil {
		t.Fatalf("response has no done line:\n%s", raw)
	}
	return out
}

func parseResponse(status int, raw []byte) (*response, error) {
	out := &response{status: status}
	if status != http.StatusOK {
		return out, nil
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if !strings.HasPrefix(line, `{"susc"`) {
			out.records = append(out.records, line)
			continue
		}
		var c map[string]any
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			return nil, fmt.Errorf("bad control line %q: %v", line, err)
		}
		if c["susc"] == "done" {
			out.done = c
		} else {
			out.control = append(out.control, c)
		}
	}
	return out, nil
}

func exitOf(t *testing.T, r *response) int {
	t.Helper()
	e, ok := r.done["exit"].(float64)
	if !ok {
		t.Fatalf("done line has no exit: %v", r.done)
	}
	return int(e)
}

func getStats(t *testing.T, base string) server.Stats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeCheckAll: the basic round trip — a valid network comes back
// as one report record, exit 0, and /healthz answers ok.
func TestServeCheckAll(t *testing.T) {
	_, base := start(t, server.Config{})
	r := post(t, base+"/v1/checkall", hotelSrc(t))
	if exitOf(t, r) != 0 {
		t.Fatalf("exit %v, want 0 (done: %v)", r.done, r.done)
	}
	if len(r.records) != 1 || !strings.Contains(r.records[0], `"verdict":"valid"`) {
		t.Fatalf("records = %v", r.records)
	}
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}
}

// TestServeRecordParity: identical requests stream byte-identical
// record lines — the served stream is as deterministic as a CLI rerun.
func TestServeRecordParity(t *testing.T) {
	_, base := start(t, server.Config{})
	src := hotelSrc(t)
	a := post(t, base+"/v1/plans?client=c2", src)
	b := post(t, base+"/v1/plans?client=c2", src)
	if exitOf(t, a) != 0 || exitOf(t, b) != 0 {
		t.Fatalf("exits: %v / %v", a.done, b.done)
	}
	if len(a.records) == 0 {
		t.Fatal("no plan records")
	}
	if strings.Join(a.records, "\n") != strings.Join(b.records, "\n") {
		t.Fatalf("reruns differ:\n%v\n%v", a.records, b.records)
	}
	la := post(t, base+"/v1/lint?file=hotel.susc", src)
	lb := post(t, base+"/v1/lint?file=hotel.susc", src)
	if strings.Join(la.records, "\n") != strings.Join(lb.records, "\n") {
		t.Fatalf("lint reruns differ:\n%v\n%v", la.records, lb.records)
	}
}

// TestServeWarmHitRate: a second identical checkall against a
// persistent session replays from the warm tiers.
func TestServeWarmHitRate(t *testing.T) {
	_, base := start(t, server.Config{CacheDir: t.TempDir()})
	src := hotelSrc(t)
	post(t, base+"/v1/checkall", src)
	cold := getStats(t, base)
	r := post(t, base+"/v1/checkall", src)
	if exitOf(t, r) != 0 {
		t.Fatalf("warm exit: %v", r.done)
	}
	warm := getStats(t, base)
	if warm.Store == nil || warm.Store.Hits <= cold.Store.Hits {
		t.Fatalf("no store hits on warm rerun: cold %+v warm %+v", cold.Store, warm.Store)
	}
}

// TestServeAdmissionControl: with one slot taken, the next request is
// shed with 429 and a Retry-After header instead of queueing.
func TestServeAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	restore := faultinject.Set(func(p faultinject.Point, unit string) {
		if p == faultinject.ServeHandler {
			<-release
		}
	})
	defer restore()
	defer close(release)
	_, base := start(t, server.Config{MaxInFlight: 1})
	src := hotelSrc(t)
	done := make(chan *response, 1)
	go func() { done <- post(t, base+"/v1/checkall", src) }()
	// Wait for the first request to hold the slot.
	for i := 0; ; i++ {
		if getStats(t, base).InFlight == 1 {
			break
		}
		if i > 200 {
			t.Fatal("first request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Post(base+"/v1/checkall", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	release <- struct{}{}
	if r := <-done; exitOf(t, r) != 0 {
		t.Fatalf("held request failed: %v", r.done)
	}
	if st := getStats(t, base); st.Shed < 1 {
		t.Fatalf("shed = %d, want >= 1", st.Shed)
	}
}

// TestServeBudgetClamp: the server-wide state cap clamps per-request
// budgets — even a request asking for more degrades to Unknown, exit 3.
func TestServeBudgetClamp(t *testing.T) {
	_, base := start(t, server.Config{MaxStates: 1})
	r := post(t, base+"/v1/checkall?max-states=1000000", hotelSrc(t))
	if exitOf(t, r) != 3 {
		t.Fatalf("exit %v, want 3 (budget exhausted)", r.done)
	}
	if len(r.records) != 1 || !strings.Contains(r.records[0], `"verdict":"unknown"`) {
		t.Fatalf("clamped run flushed no Unknown record: %v", r.records)
	}
}

// TestServePanicIsolation: a poisoned request yields a typed error line
// and exit 2; the server keeps serving and counts the panic.
func TestServePanicIsolation(t *testing.T) {
	restore := faultinject.Set(faultinject.PanicOnce(faultinject.ServeHandler, "checkall#", "poisoned spec"))
	defer restore()
	_, base := start(t, server.Config{})
	src := hotelSrc(t)
	r := post(t, base+"/v1/checkall", src)
	if exitOf(t, r) != 2 {
		t.Fatalf("poisoned exit %v, want 2", r.done)
	}
	found := false
	for _, c := range r.control {
		if c["susc"] == "error" && strings.Contains(fmt.Sprint(c["unit"]), "serve/checkall#") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no typed error line: %v", r.control)
	}
	if r2 := post(t, base+"/v1/checkall", src); exitOf(t, r2) != 0 {
		t.Fatalf("server did not survive the panic: %v", r2.done)
	}
	if st := getStats(t, base); st.Panics != 1 {
		t.Fatalf("panics = %d, want 1", st.Panics)
	}
}

// TestServeBadRequests: unknown modes, bad budgets and oversized bodies
// are refused up front with plain HTTP errors.
func TestServeBadRequests(t *testing.T) {
	_, base := start(t, server.Config{MaxBody: 64})
	cases := []struct {
		url, body string
		want      int
	}{
		{"/v1/nope", "x", http.StatusNotFound},
		{"/v1/lint?timeout=bogus", "x", http.StatusBadRequest},
		{"/v1/lint?webhook=http://example.com", "x", http.StatusBadRequest},
		{"/v1/lint", strings.Repeat("x", 100), http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, err := http.Post(base+c.url, "text/plain", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: %d, want %d", c.url, resp.StatusCode, c.want)
		}
	}
}

// TestServeWebhook: a result callback arrives HMAC-signed, and delivery
// retries failures with backoff until the receiver accepts.
func TestServeWebhook(t *testing.T) {
	secret := []byte("test-secret")
	type hit struct {
		body []byte
		sig  string
	}
	hits := make(chan hit, 4)
	var attempts int
	receiver := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		body, _ := io.ReadAll(r.Body)
		hits <- hit{body: body, sig: r.Header.Get(server.SignatureHeader)}
	}))
	defer receiver.Close()
	_, base := start(t, server.Config{WebhookSecret: secret})
	r := post(t, base+"/v1/checkall?webhook="+receiver.URL, hotelSrc(t))
	if exitOf(t, r) != 0 {
		t.Fatalf("exit %v", r.done)
	}
	select {
	case h := <-hits:
		if !server.VerifySignature(secret, h.body, h.sig) {
			t.Fatalf("signature %q does not authenticate %s", h.sig, h.body)
		}
		if server.VerifySignature([]byte("wrong"), h.body, h.sig) {
			t.Fatal("signature verifies under the wrong key")
		}
		var payload map[string]any
		if err := json.Unmarshal(h.body, &payload); err != nil {
			t.Fatal(err)
		}
		if payload["mode"] != "checkall" || payload["exit"] != float64(0) {
			t.Fatalf("payload = %v", payload)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("webhook never delivered")
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two failures, one success)", attempts)
	}
}

// TestServeAcceptFault: a panic at the admission point is a handler
// crash net/http absorbs — the server answers the next request.
func TestServeAcceptFault(t *testing.T) {
	restore := faultinject.Set(faultinject.PanicOnce(faultinject.ServeAccept, "lint", "accept fault"))
	defer restore()
	_, base := start(t, server.Config{})
	resp, err := http.Post(base+"/v1/lint", "text/plain", strings.NewReader("x"))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if r := post(t, base+"/v1/checkall", hotelSrc(t)); exitOf(t, r) != 0 {
		t.Fatalf("server did not survive accept fault: %v", r.done)
	}
}
