// Package ring provides a growable FIFO queue backed by a circular buffer.
//
// The breadth-first explorations of internal/verify and internal/plans used
// to pop with `queue = queue[1:]`, which keeps the whole backing array —
// every state ever enqueued — reachable until the exploration ends: the
// slice header advances but the array never shrinks, and popped states are
// pinned for the lifetime of the search. A ring buffer reuses the slots of
// dequeued elements, so the live memory of a BFS is the frontier, not the
// history.
package ring

// Queue is a FIFO queue. The zero value is an empty queue ready for use.
// Queue is not safe for concurrent use.
type Queue[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Push appends v to the back of the queue.
func (q *Queue[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// Pop removes and returns the front element. It panics on an empty queue.
// The vacated slot is zeroed so popped elements are not pinned by the
// backing array.
func (q *Queue[T]) Pop() T {
	if q.n == 0 {
		panic("ring: Pop of empty queue")
	}
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v
}

// Reset empties the queue, keeping the backing array for reuse. Occupied
// slots are zeroed so abandoned elements are not pinned.
func (q *Queue[T]) Reset() {
	var zero T
	for i := 0; i < q.n; i++ {
		q.buf[(q.head+i)%len(q.buf)] = zero
	}
	q.head, q.n = 0, 0
}

// grow doubles the capacity, unwrapping the elements in order.
func (q *Queue[T]) grow() {
	cap := len(q.buf) * 2
	if cap == 0 {
		cap = 16
	}
	buf := make([]T, cap)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
