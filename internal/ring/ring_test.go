package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
}

func TestInterleavedPushPop(t *testing.T) {
	// Exercise wrap-around: the head travels around the buffer repeatedly
	// while the queue stays short.
	var q Queue[int]
	next, expect := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := q.Pop(); got != expect {
				t.Fatalf("Pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != expect {
			t.Fatalf("Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d elements, pushed %d", expect, next)
	}
}

func TestPopFreesSlot(t *testing.T) {
	// Popped slots must be zeroed so the backing array does not pin
	// dequeued elements (the leak the ring buffer exists to fix).
	var q Queue[*int]
	v := new(int)
	q.Push(v)
	q.Pop()
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatal("Pop left a pointer in the backing array")
		}
	}
}

func TestReset(t *testing.T) {
	// Reset must empty the queue, keep the backing array, zero every
	// occupied slot (including wrapped ones), and leave the queue usable.
	var q Queue[*int]
	for i := 0; i < 20; i++ {
		q.Push(new(int))
	}
	for i := 0; i < 10; i++ {
		q.Pop()
	}
	for i := 0; i < 12; i++ { // wrap the tail past the array end
		q.Push(new(int))
	}
	buf := &q.buf[0]
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after Reset", q.Len())
	}
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("Reset left a pointer at slot %d", i)
		}
	}
	if &q.buf[0] != buf {
		t.Fatal("Reset reallocated the backing array")
	}
	want := 7
	q.Push(&want)
	if got := q.Pop(); got != &want {
		t.Fatal("queue unusable after Reset")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop of empty queue should panic")
		}
	}()
	var q Queue[int]
	q.Pop()
}
