package memo

import (
	"encoding/binary"
	"fmt"

	"susc/internal/hash"
	"susc/internal/hexpr"
	"susc/internal/lts"
	"susc/internal/store"
)

// AttachDisk adds a persistent second tier under the cache: a memory miss
// probes the store before computing, and freshly computed verdicts are
// written back. Compliance errors are never persisted (they are
// environmental, not content-determined), matching the rule that
// budget-aborted Unknown verdicts never reach disk either.
//
// Attach before sharing the cache across goroutines; the store itself is
// concurrency-safe.
func (c *Cache) AttachDisk(s *store.Store) { c.disk = s }

// Disk returns the attached persistent tier, or nil.
func (c *Cache) Disk() *store.Store { return c.disk }

// encodeVerdict serialises a compliance verdict: ok byte + witness text.
func encodeVerdict(v verdict) []byte {
	out := make([]byte, 1+len(v.witness))
	if v.ok {
		out[0] = 1
	}
	copy(out[1:], v.witness)
	return out
}

func decodeVerdict(b []byte) (verdict, error) {
	if len(b) < 1 || b[0] > 1 {
		return verdict{}, fmt.Errorf("memo: malformed compliance record")
	}
	return verdict{ok: b[0] == 1, witness: string(b[1:])}, nil
}

// complianceDisk is the disk tier of Compliance: probe, compute under
// singleflight on a miss, write back. The content key is the digest of
// both canonical expression forms — the entire dependency cone of a
// compliance verdict.
func (c *Cache) complianceDisk(k uint64, client, server hexpr.Expr) (verdict, error) {
	sum := hash.Pair(client, server)
	if raw, ok := c.disk.Get(store.KindCompliance, sum); ok {
		v, err := decodeVerdict(raw)
		if err == nil {
			c.verdicts.put(k, v, 16+uint64(len(v.witness)))
			return v, nil
		}
		// Malformed resident record (should be unreachable past the CRC):
		// fall through and recompute.
	}
	got, err := c.disk.Once(store.KindCompliance, sum, func() (any, error) {
		// A concurrent winner may have written the record while we waited.
		if raw, ok := c.disk.Peek(store.KindCompliance, sum); ok {
			if v, err := decodeVerdict(raw); err == nil {
				return v, nil
			}
		}
		v := c.computeCompliance(client, server)
		if v.err == nil {
			if perr := c.disk.Put(store.KindCompliance, sum, encodeVerdict(v)); perr != nil {
				return v, perr
			}
		}
		return v, nil
	})
	if err != nil {
		return verdict{}, err
	}
	v := got.(verdict)
	c.verdicts.put(k, v, 16+uint64(len(v.witness)))
	return v, nil
}

// LTSSummary is the persisted size summary of a built transition system.
type LTSSummary struct {
	States, Edges int
}

func encodeLTSSummary(s LTSSummary) []byte {
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], int64(s.States))
	n += binary.PutVarint(buf[n:], int64(s.Edges))
	return buf[:n]
}

func decodeLTSSummary(b []byte) (LTSSummary, bool) {
	states, n := binary.Varint(b)
	if n <= 0 {
		return LTSSummary{}, false
	}
	edges, m := binary.Varint(b[n:])
	if m <= 0 || n+m != len(b) {
		return LTSSummary{}, false
	}
	return LTSSummary{States: int(states), Edges: int(edges)}, true
}

func summarize(l *lts.LTS) LTSSummary {
	s := LTSSummary{States: len(l.States)}
	for _, es := range l.Edges {
		s.Edges += len(es)
	}
	return s
}

// persistLTSSummary writes the size summary of a successfully built LTS;
// failed builds (size-bound overruns) are never persisted.
func (c *Cache) persistLTSSummary(e hexpr.Expr, l *lts.LTS) {
	if c.disk == nil || l == nil {
		return
	}
	// This write carries no verdict, only the measured size of an LTS the
	// caller finished building (Cache.LTS persists only on err == nil), so
	// there is no Unknown state to leak into the store.
	//suscvet:ignore SVET002 size summary of a completed build, not a verdict; caller gates on err == nil
	c.disk.Put(store.KindLTSSummary, hash.Expr(e), encodeLTSSummary(summarize(l)))
}

// DiskLTSSummary returns the persisted size summary for e, if the store
// holds one — the cheap "how big was this last time" probe that avoids
// rebuilding a transition system just to report its size.
func (c *Cache) DiskLTSSummary(e hexpr.Expr) (LTSSummary, bool) {
	if c.disk == nil {
		return LTSSummary{}, false
	}
	raw, ok := c.disk.Get(store.KindLTSSummary, hash.Expr(e))
	if !ok {
		return LTSSummary{}, false
	}
	return decodeLTSSummary(raw)
}
