// Package memo is the shared memoisation layer of the static-analysis
// stack. One Cache holds every artifact that plan synthesis recomputes
// across candidate plans — compliance verdicts, product automata, one-step
// transition sets and built LTSs — keyed by interned expression IDs
// (internal/intern), so the cost of assessing N plans over a repository
// grows with the number of *distinct* (request body, service) pairs and
// distinct expression residuals, not with N.
//
// A Cache is safe for concurrent use: each table is sharded and guarded by
// per-shard RWMutexes, and every cached artifact is immutable after
// construction (products, transition slices and LTSs are never mutated by
// their consumers). Racing goroutines may build the same artifact twice on
// a cold key; both results are structurally identical and one wins, so
// callers observe deterministic values regardless of scheduling.
package memo

import (
	"sync"
	"sync/atomic"

	"susc/internal/autom"
	"susc/internal/compliance"
	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/intern"
	"susc/internal/lts"
	"susc/internal/store"
)

const shardCount = 16 // power of two

// Stats counts cache traffic. Counters are cumulative over the cache's
// lifetime; Stats values are snapshots.
type Stats struct {
	ComplianceHits, ComplianceMisses uint64
	ProductHits, ProductMisses       uint64
	StepsHits, StepsMisses           uint64
	LTSHits, LTSMisses               uint64
	ProjectHits, ProjectMisses       uint64
	CompiledHits, CompiledMisses     uint64

	// Entry counts per table: the number of distinct keys resident.
	ComplianceEntries, ProductEntries, StepsEntries, LTSEntries, ProjectEntries, CompiledEntries uint64
	// ApproxBytes estimates the resident size of all cached artifacts
	// (states, edges, witnesses, map overhead). It is a coarse,
	// cheaply-maintained gauge of cache pressure, not an accounting of
	// the Go heap.
	ApproxBytes uint64
}

// Entries returns the total number of cached entries across all tables.
func (s Stats) Entries() uint64 {
	return s.ComplianceEntries + s.ProductEntries + s.StepsEntries + s.LTSEntries + s.ProjectEntries + s.CompiledEntries
}

// Hits returns the total hit count across all tables.
func (s Stats) Hits() uint64 {
	return s.ComplianceHits + s.ProductHits + s.StepsHits + s.LTSHits + s.ProjectHits + s.CompiledHits
}

// Misses returns the total miss count across all tables.
func (s Stats) Misses() uint64 {
	return s.ComplianceMisses + s.ProductMisses + s.StepsMisses + s.LTSMisses + s.ProjectMisses + s.CompiledMisses
}

// HitRate returns the overall hit rate in [0,1] (0 when the cache is
// untouched).
func (s Stats) HitRate() float64 {
	h, m := s.Hits(), s.Misses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[uint64]V
}

type table[V any] struct {
	shards  [shardCount]shard[V]
	hits    atomic.Uint64
	misses  atomic.Uint64
	entries atomic.Uint64
	bytes   atomic.Uint64
}

// entryOverhead approximates the per-entry bookkeeping of a map slot
// (key, hash metadata, value header).
const entryOverhead = 48

func (t *table[V]) get(k uint64) (V, bool) {
	s := &t.shards[k&(shardCount-1)]
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return v, ok
}

// put stores v under k; approxBytes is the caller's estimate of the
// artifact's resident size, counted once per distinct key (racing
// builders of the same key are counted as the single entry they become).
func (t *table[V]) put(k uint64, v V, approxBytes uint64) {
	s := &t.shards[k&(shardCount-1)]
	s.mu.Lock()
	if s.m == nil {
		s.m = map[uint64]V{}
	}
	if _, dup := s.m[k]; !dup {
		t.entries.Add(1)
		t.bytes.Add(approxBytes + entryOverhead)
	}
	s.m[k] = v
	s.mu.Unlock()
}

// verdict is a memoised compliance decision with its diagnostic witness.
type verdict struct {
	ok      bool
	witness string
	err     error
}

type productEntry struct {
	p   *compliance.Product
	err error
}

type ltsEntry struct {
	l   *lts.LTS
	err error
}

// Cache is the shared memoisation handle. Construct with New; the zero
// value is not usable.
type Cache struct {
	tab      *intern.Table
	verdicts table[verdict]
	products table[productEntry]
	steps    table[[]lts.Transition]
	ltss     table[ltsEntry]
	projs    table[hexpr.Expr]
	compiled table[*autom.Compiled]

	// disk is the optional persistent second tier (see AttachDisk):
	// memory miss → disk probe → compute → write-back.
	disk *store.Store
}

// New returns an empty cache with a fresh interning table.
func New() *Cache { return &Cache{tab: intern.NewTable()} }

// Interner exposes the cache's interning table, so callers (e.g. the
// verify visited set) key their own maps in the same ID space.
func (c *Cache) Interner() *intern.Table { return c.tab }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		ComplianceHits:   c.verdicts.hits.Load(),
		ComplianceMisses: c.verdicts.misses.Load(),
		ProductHits:      c.products.hits.Load(),
		ProductMisses:    c.products.misses.Load(),
		StepsHits:        c.steps.hits.Load(),
		StepsMisses:      c.steps.misses.Load(),
		LTSHits:          c.ltss.hits.Load(),
		LTSMisses:        c.ltss.misses.Load(),
		ProjectHits:      c.projs.hits.Load(),
		ProjectMisses:    c.projs.misses.Load(),

		CompiledHits:   c.compiled.hits.Load(),
		CompiledMisses: c.compiled.misses.Load(),

		ComplianceEntries: c.verdicts.entries.Load(),
		ProductEntries:    c.products.entries.Load(),
		StepsEntries:      c.steps.entries.Load(),
		LTSEntries:        c.ltss.entries.Load(),
		ProjectEntries:    c.projs.entries.Load(),
		CompiledEntries:   c.compiled.entries.Load(),
		ApproxBytes: c.verdicts.bytes.Load() + c.products.bytes.Load() +
			c.steps.bytes.Load() + c.ltss.bytes.Load() + c.projs.bytes.Load() +
			c.compiled.bytes.Load(),
	}
}

// Artifact size estimators for the ApproxBytes gauge: per-state and
// per-edge constants cover the struct plus its share of slice headers.

func ltsBytes(l *lts.LTS) uint64 {
	if l == nil {
		return 0
	}
	n := uint64(len(l.States)) * 96
	for _, es := range l.Edges {
		n += uint64(len(es)) * 24
	}
	return n
}

func productBytes(p *compliance.Product) uint64 {
	if p == nil {
		return 0
	}
	n := uint64(len(p.States))*32 + uint64(len(p.Final))
	for _, es := range p.Edges {
		n += uint64(len(es)) * 24
	}
	return n
}

// Steps returns the one-step successors of e under the stand-alone
// operational semantics, memoised on the interned form of e. The returned
// slice is shared: callers must not mutate it.
func (c *Cache) Steps(e hexpr.Expr) []lts.Transition {
	k := uint64(uint32(c.tab.Expr(e)))
	if v, ok := c.steps.get(k); ok {
		return v
	}
	v := lts.Step(e)
	c.steps.put(k, v, uint64(len(v))*24)
	return v
}

// Project returns the communication projection H! of e, memoised on the
// interned form of e. Repeated products against the same service (or with
// the same request body) project it once.
func (c *Cache) Project(e hexpr.Expr) hexpr.Expr {
	k := uint64(uint32(c.tab.Expr(e)))
	if v, ok := c.projs.get(k); ok {
		return v
	}
	v := contract.Project(e)
	c.projs.put(k, v, uint64(hexpr.Size(v))*48)
	return v
}

// Product returns the product automaton of the pair, memoised on the
// interned (client, server) IDs. The product shares the cache's interner,
// projection memo and step memo, so building one product warms the
// others.
func (c *Cache) Product(client, server hexpr.Expr) (*compliance.Product, error) {
	k := intern.Pack(c.tab.Expr(client), c.tab.Expr(server))
	if v, ok := c.products.get(k); ok {
		return v.p, v.err
	}
	p, err := compliance.NewProductProjected(c.tab, c.Steps, c.Project(client), c.Project(server))
	c.products.put(k, productEntry{p: p, err: err}, productBytes(p))
	return p, err
}

// Compliance decides H_client ⊢ H_server, memoised per distinct pair. It
// returns the verdict together with the (deterministic) witness string of
// a shortest stuck run when non-compliant. With a disk tier attached, a
// memory miss probes the store (content-keyed on both canonical forms)
// before computing, and computed verdicts are written back.
func (c *Cache) Compliance(client, server hexpr.Expr) (ok bool, witness string, err error) {
	k := intern.Pack(c.tab.Expr(client), c.tab.Expr(server))
	if v, ok := c.verdicts.get(k); ok {
		return v.ok, v.witness, v.err
	}
	if c.disk != nil {
		v, derr := c.complianceDisk(k, client, server)
		if derr != nil {
			return false, "", derr
		}
		return v.ok, v.witness, v.err
	}
	v := c.computeCompliance(client, server)
	c.verdicts.put(k, v, 16+uint64(len(v.witness)))
	return v.ok, v.witness, v.err
}

// computeCompliance builds the product and extracts the verdict; the
// single compute path shared by the memory-only and disk-tier routes.
func (c *Cache) computeCompliance(client, server hexpr.Expr) verdict {
	v := verdict{}
	p, err := c.Product(client, server)
	if err != nil {
		v.err = err
	} else if w := p.FindWitness(); w != nil {
		v.witness = w.String()
	} else {
		v.ok = true
	}
	return v
}

// Compliant is Compliance without the witness, mirroring
// compliance.Compliant.
func (c *Cache) Compliant(client, server hexpr.Expr) (bool, error) {
	ok, _, err := c.Compliance(client, server)
	return ok, err
}

// CompiledDFA returns the compiled (dense-table) automaton registered
// under the signature, building it through the callback on a miss. The
// signature is interned, so repeated lookups hash an int, not the string.
// Lint's SUSC014 keys per-declaration policy automata here as
// (instance ID, event alphabet) signatures, so inclusion checks across
// declarations sharing an alphabet compile each automaton once.
func (c *Cache) CompiledDFA(sig string, build func() *autom.DFA) *autom.Compiled {
	k := uint64(uint32(c.tab.Key(sig)))
	if v, ok := c.compiled.get(k); ok {
		return v
	}
	v := autom.Compile(build())
	c.compiled.put(k, v, uint64(len(v.Trans))*4+uint64(len(v.Accept))*8)
	return v
}

// LTS returns the built transition system of e, memoised on its interned
// root. The LTS is immutable for cached use; callers needing to Minimize
// must build their own copy via lts.Build.
func (c *Cache) LTS(e hexpr.Expr) (*lts.LTS, error) {
	k := uint64(uint32(c.tab.Expr(e)))
	if v, ok := c.ltss.get(k); ok {
		return v.l, v.err
	}
	l, err := lts.BuildInterned(c.tab, e, lts.DefaultMaxStates)
	c.ltss.put(k, ltsEntry{l: l, err: err}, ltsBytes(l))
	if err == nil {
		c.persistLTSSummary(e, l)
	}
	return l, err
}
