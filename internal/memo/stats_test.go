package memo

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/paperex"
)

// TestStatsEntriesAndBytes: the cache-pressure counters track resident
// entries per table (new keys only — hits and racing duplicates don't
// inflate them) and a non-zero byte estimate once anything is cached.
func TestStatsEntriesAndBytes(t *testing.T) {
	c := New()
	if st := c.Stats(); st.Entries() != 0 || st.ApproxBytes != 0 {
		t.Fatalf("fresh cache reports %d entries, %d bytes", st.Entries(), st.ApproxBytes)
	}

	exprs := []hexpr.Expr{paperex.S1(), paperex.S2(), paperex.S3()}
	for _, e := range exprs {
		c.Steps(e)
	}
	st := c.Stats()
	if st.StepsEntries == 0 {
		t.Fatal("Steps population must register entries")
	}
	if st.Entries() < st.StepsEntries {
		t.Fatalf("total %d < steps %d", st.Entries(), st.StepsEntries)
	}
	if st.ApproxBytes == 0 {
		t.Fatal("a populated cache must estimate non-zero bytes")
	}

	// Pure hits: recomputing the same keys adds no entries.
	for _, e := range exprs {
		c.Steps(e)
	}
	st2 := c.Stats()
	if st2.StepsEntries != st.StepsEntries || st2.ApproxBytes != st.ApproxBytes {
		t.Fatalf("hits inflated the counters: %+v vs %+v", st2, st)
	}
	if st2.Hits() == st.Hits() {
		t.Fatal("the second pass must hit")
	}

	// Other tables feed the same aggregate.
	if _, err := c.LTS(paperex.S1()); err != nil {
		t.Fatal(err)
	}
	st3 := c.Stats()
	if st3.LTSEntries == 0 {
		t.Fatal("LTS population must register entries")
	}
	if st3.ApproxBytes <= st2.ApproxBytes {
		t.Fatal("caching an LTS must grow the byte estimate")
	}
}
