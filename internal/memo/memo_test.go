package memo

import (
	"math/rand"
	"sync"
	"testing"

	"susc/internal/compliance"
	"susc/internal/contract"
	"susc/internal/hexpr"
	"susc/internal/lts"
	"susc/internal/paperex"
)

// contractPairs yields random (client, server) contract pairs, plus the
// paper's broker/hotel pairs, for cross-checking the cached deciders
// against their uncached counterparts.
func contractPairs(t *testing.T, n int) [][2]hexpr.Expr {
	t.Helper()
	brBody, _, err := contract.RequestBody(paperex.Broker(), "r3")
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]hexpr.Expr{
		{brBody, paperex.S1()},
		{brBody, paperex.S2()},
		{brBody, paperex.S3()},
		{brBody, paperex.S4()},
	}
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		c := hexpr.GenerateContract(rnd, 4)
		s := hexpr.GenerateContract(rnd, 4)
		pairs = append(pairs, [2]hexpr.Expr{c, s})
	}
	return pairs
}

// TestComplianceMatchesUncached: the memoised verdict and witness must be
// exactly what the plain decider produces, on first sight and on a hit.
func TestComplianceMatchesUncached(t *testing.T) {
	c := New()
	for _, pr := range contractPairs(t, 60) {
		wantOK, wantErr := compliance.Compliant(pr[0], pr[1])
		var wantWitness string
		if wantErr == nil && !wantOK {
			p, err := compliance.NewProduct(pr[0], pr[1])
			if err != nil {
				t.Fatal(err)
			}
			wantWitness = p.FindWitness().String()
		}
		for round := 0; round < 2; round++ { // miss, then hit
			ok, witness, err := c.Compliance(pr[0], pr[1])
			if (err != nil) != (wantErr != nil) || ok != wantOK || witness != wantWitness {
				t.Fatalf("round %d: Compliance=(%v,%q,%v), uncached=(%v,%q,%v)",
					round, ok, witness, err, wantOK, wantWitness, wantErr)
			}
		}
	}
	st := c.Stats()
	if st.ComplianceHits == 0 || st.ComplianceMisses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
	if st.ComplianceHits < st.ComplianceMisses {
		t.Fatalf("second round should hit every pair: %+v", st)
	}
}

// TestProductMatchesUncached: cached products agree with fresh ones on
// emptiness and state count.
func TestProductMatchesUncached(t *testing.T) {
	c := New()
	for _, pr := range contractPairs(t, 40) {
		got, gotErr := c.Product(pr[0], pr[1])
		want, wantErr := compliance.NewProduct(pr[0], pr[1])
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("Product err=%v, uncached err=%v", gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if got.Empty() != want.Empty() || len(got.States) != len(want.States) {
			t.Fatalf("product mismatch: empty %v/%v, states %d/%d",
				got.Empty(), want.Empty(), len(got.States), len(want.States))
		}
	}
}

// TestStepsMatchesUncached: the memoised one-step relation is the plain
// lts.Step relation, and repeated calls return the shared slice.
func TestStepsMatchesUncached(t *testing.T) {
	c := New()
	rnd := rand.New(rand.NewSource(5))
	cfg := hexpr.DefaultGenConfig()
	for i := 0; i < 60; i++ {
		e := hexpr.Generate(rnd, cfg)
		got := c.Steps(e)
		want := lts.Step(e)
		if len(got) != len(want) {
			t.Fatalf("Steps count %d, lts.Step count %d", len(got), len(want))
		}
		for j := range got {
			if got[j].Label.String() != want[j].Label.String() || got[j].To.Key() != want[j].To.Key() {
				t.Fatalf("transition %d differs: %v vs %v", j, got[j], want[j])
			}
		}
		again := c.Steps(e)
		if len(again) != len(got) {
			t.Fatal("hit returned a different slice length")
		}
	}
}

// TestProjectMatchesUncached: memoised projection equals contract.Project.
func TestProjectMatchesUncached(t *testing.T) {
	c := New()
	rnd := rand.New(rand.NewSource(9))
	cfg := hexpr.DefaultGenConfig()
	for i := 0; i < 60; i++ {
		e := hexpr.Generate(rnd, cfg)
		if c.Project(e).Key() != contract.Project(e).Key() {
			t.Fatalf("projection mismatch for %s", e.Key())
		}
		if c.Project(e).Key() != contract.Project(e).Key() {
			t.Fatal("projection hit mismatch")
		}
	}
}

// TestLTSMatchesUncached: cached LTS construction agrees with BuildBounded.
func TestLTSMatchesUncached(t *testing.T) {
	c := New()
	rnd := rand.New(rand.NewSource(13))
	cfg := hexpr.DefaultGenConfig()
	for i := 0; i < 30; i++ {
		e := hexpr.Generate(rnd, cfg)
		got, gotErr := c.LTS(e)
		want, wantErr := lts.BuildBounded(e, lts.DefaultMaxStates)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("LTS err=%v, uncached err=%v", gotErr, wantErr)
		}
		if gotErr == nil && got.Len() != want.Len() {
			t.Fatalf("LTS size %d, uncached %d", got.Len(), want.Len())
		}
	}
}

// TestConcurrentCache hammers one cache from many goroutines and checks
// every goroutine observes the same verdicts. Run under -race this is the
// data-race check for the sharded tables and the shared interner.
func TestConcurrentCache(t *testing.T) {
	pairs := contractPairs(t, 30)
	want := make([]bool, len(pairs))
	for i, pr := range pairs {
		ok, err := compliance.Compliant(pr[0], pr[1])
		if err != nil {
			// keep the pair anyway; the cached decider must err alike
			_ = err
		}
		want[i] = ok
	}
	c := New()
	const nGo = 8
	var wg sync.WaitGroup
	errs := make(chan string, nGo*len(pairs))
	for g := 0; g < nGo; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := range pairs {
				i := (k*5 + g*11) % len(pairs)
				pr := pairs[i]
				ok, err := c.Compliant(pr[0], pr[1])
				if err == nil && ok != want[i] {
					errs <- "verdict mismatch"
				}
				c.Steps(pr[0])
				c.Project(pr[1])
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := c.Stats()
	if st.Hits() == 0 {
		t.Fatalf("concurrent reuse should produce hits: %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() > 1 {
		t.Fatalf("hit rate out of range: %v", st.HitRate())
	}
}

func TestStatsZero(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("zero stats must report rate 0")
	}
}
