package parser

import (
	"os"
	"path/filepath"
	"testing"

	"susc/internal/hexpr"
)

// addSpecSeeds seeds a fuzz corpus with every specification file shipped
// in the repository.
func addSpecSeeds(f *testing.F) {
	f.Helper()
	for _, pattern := range []string{
		"../../testdata/*.susc",
		"../../examples/specs/*.susc",
		"../lint/testdata/*.susc",
	} {
		paths, err := filepath.Glob(pattern)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			src, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
}

// FuzzParseFile checks that file parsing never panics, and that accepted
// files survive a format → reparse → format round trip unchanged.
func FuzzParseFile(f *testing.F) {
	addSpecSeeds(f)
	f.Add("service s = a?;")
	f.Add("policy p(n int) { states q0 q1; start q0; final q1; edge q0 -> q1 on ev(x) when x > n; }")
	f.Add("client c at l plan { r1 -> s } = open r1 { a! };")
	f.Add("service s = mu h . a? . h;")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ParseFile(src)

		// Lenient parsing must behave on the same input: never panic, and
		// succeed (possibly with issues) whenever strict parsing does.
		_, _, lerr := ParseFileLenient(src)
		if err == nil && lerr != nil {
			t.Fatalf("strict parse accepts, lenient rejects: %v", lerr)
		}
		if err != nil {
			return
		}

		out := Format(file)
		file2, err := ParseFile(out)
		if err != nil {
			t.Fatalf("formatted output fails to reparse: %v\n--- formatted ---\n%s", err, out)
		}
		if out2 := Format(file2); out2 != out {
			t.Fatalf("format is not idempotent\n--- first ---\n%s\n--- second ---\n%s", out, out2)
		}
	})
}

// FuzzParseExpr checks that expression parsing never panics and that
// accepted expressions round-trip through hexpr.Pretty to the same
// canonical term.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"eps",
		"a? . b!",
		"mu h . a? . h",
		"open r1 with p { a! }",
		"enforce p { ev(1) . a? }",
		"(a? + b?) . c!",
		"a! (+) b! . ev(x, 2)",
		"open r1 { enforce p { mu h . a? . h + b? } }",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		pretty := hexpr.Pretty(e)
		e2, err := ParseExpr(pretty)
		if err != nil {
			t.Fatalf("Pretty output fails to reparse: %v\n--- pretty ---\n%s", err, pretty)
		}
		if e.Key() != e2.Key() {
			t.Fatalf("round trip changes the term\n--- in  ---\n%s\n--- out ---\n%s", e.Key(), e2.Key())
		}
	})
}
