package parser_test

import (
	"math/rand"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/parser"
)

// TestFormatRoundTrip: formatting a parsed file and re-parsing yields an
// equivalent file.
func TestFormatRoundTrip(t *testing.T) {
	f1 := parseHotel(t)
	src2 := parser.Format(f1)
	f2, err := parser.ParseFile(src2)
	if err != nil {
		t.Fatalf("re-parse of formatted source failed: %v\n%s", err, src2)
	}
	// same instances (by canonical ID)
	for alias, id := range f1.Instances {
		if f2.Instances[alias] != id {
			t.Errorf("instance %s: %s vs %s", alias, id, f2.Instances[alias])
		}
	}
	// same services
	if len(f1.Repo) != len(f2.Repo) {
		t.Fatalf("repo sizes differ: %d vs %d", len(f1.Repo), len(f2.Repo))
	}
	for loc, e1 := range f1.Repo {
		e2, ok := f2.Repo[loc]
		if !ok || !hexpr.Equal(e1, e2) {
			t.Errorf("service %s differs after round trip", loc)
		}
	}
	// same clients and plans
	if len(f1.Clients) != len(f2.Clients) {
		t.Fatalf("client counts differ")
	}
	for i := range f1.Clients {
		c1, c2 := f1.Clients[i], f2.Clients[i]
		if c1.Name != c2.Name || c1.Loc != c2.Loc || !hexpr.Equal(c1.Expr, c2.Expr) {
			t.Errorf("client %s differs after round trip", c1.Name)
		}
		if (c1.Plan == nil) != (c2.Plan == nil) ||
			(c1.Plan != nil && c1.Plan.Key() != c2.Plan.Key()) {
			t.Errorf("client %s plan differs: %s vs %s", c1.Name, c1.Plan, c2.Plan)
		}
	}
	// idempotence: formatting again is stable
	if src3 := parser.Format(f2); src3 != src2 {
		t.Errorf("Format not idempotent:\n%s\nvs\n%s", src2, src3)
	}
}

// TestPrettyExprRoundTrip: Pretty output of random well-formed expressions
// re-parses to the same canonical term.
func TestPrettyExprRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	cfg := hexpr.DefaultGenConfig()
	for i := 0; i < 1000; i++ {
		e := hexpr.Generate(rnd, cfg)
		src := hexpr.Pretty(e)
		got, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatalf("re-parse of %q (from %s): %v", src, e.Key(), err)
		}
		if !hexpr.Equal(got, e) {
			t.Fatalf("round trip changed the term:\n  pretty %q\n  orig   %s\n  parsed %s",
				src, e.Key(), got.Key())
		}
	}
}

// TestPrettyGuardKindsRoundTrip formats a policy exercising every guard
// kind and re-parses it.
func TestPrettyGuardKindsRoundTrip(t *testing.T) {
	src := `
policy g(n int, s set) {
  states q0 qv;
  start q0;
  final qv;
  edge q0 -> qv on a(x0) when x0 in s;
  edge q0 -> qv on b(x0) when x0 notin s;
  edge q0 -> qv on c(x0) when x0 <= n;
  edge q0 -> qv on d(x0) when x0 < n;
  edge q0 -> qv on e(x0) when x0 >= n;
  edge q0 -> qv on f(x0) when x0 > n;
  edge q0 -> qv on g(x0) when x0 == 7;
  edge q0 -> qv on h(x0) when x0 != foo;
  edge q0 -> qv on i(x0, x1) when x1 == 1;
  edge q0 -> qv on j;
}
instance gi = g(n = 3, s = {a, b});
`
	f1, err := parser.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	out := parser.Format(f1)
	f2, err := parser.ParseFile(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if f2.Instances["gi"] != f1.Instances["gi"] {
		t.Errorf("instance id changed: %s vs %s", f1.Instances["gi"], f2.Instances["gi"])
	}
	// behavioural spot-checks across the round trip
	for _, ev := range []hexpr.Event{
		hexpr.E("a", hexpr.Sym("a")),
		hexpr.E("c", hexpr.Int(3)),
		hexpr.E("g", hexpr.Int(7)),
		hexpr.E("j"),
	} {
		id := f1.Instances["gi"]
		if f1.Table.Violates(id, []hexpr.Event{ev}) != f2.Table.Violates(id, []hexpr.Event{ev}) {
			t.Errorf("round trip changed behaviour on %v", ev)
		}
	}
}
