package parser

import (
	"fmt"

	"susc/internal/hexpr"
	"susc/internal/lambda"
)

// ParseLambda parses a program of the service λ-calculus (internal/lambda)
// from its surface syntax:
//
//	e ::= fun x: T . e                      abstraction
//	    | rec f(x: T): T . e                recursive function
//	    | let x = e in e                    binding
//	    | e ; e                             sequencing
//	    | e e                               application (left-assoc)
//	    | fire name(args)                   security event
//	    | enforce phi { e }                 policy framing
//	    | open r [with phi] { e }           service request
//	    | select { a => e | b => e }        internal choice (sends)
//	    | branch { a => e | b => e }        external choice (receives)
//	    | x | () | 42 | 'sym                variables and literals
//
//	T ::= unit | int | sym | T -[ H ]-> T   H: a history expression
//
// Policy names are taken verbatim as instance identifiers (combine with a
// declarations file to resolve aliases via ParseLambdaWith).
func ParseLambda(src string) (lambda.Term, error) {
	return ParseLambdaWith(src, nil)
}

// ParseLambdaWith is ParseLambda resolving policy aliases through the
// given table (e.g. a parsed File's Instances).
func ParseLambdaWith(src string, aliases map[string]hexpr.PolicyID) (lambda.Term, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, aliases: aliases}
	t, err := p.lamExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf(p.peek(), "trailing input: %s", p.peek())
	}
	return t, nil
}

// MustParseLambda is ParseLambda panicking on error.
func MustParseLambda(src string) lambda.Term {
	t, err := ParseLambda(src)
	if err != nil {
		panic(err)
	}
	return t
}

// lamExpr := binder | lamSeq
func (p *parser) lamExpr() (lambda.Term, error) {
	if t := p.peek(); t.kind == tokIdent {
		switch t.text {
		case "fun":
			return p.lamFun()
		case "rec":
			return p.lamRec()
		case "let":
			return p.lamLet()
		}
	}
	return p.lamSeq()
}

// lamSeq := lamApp [';' lamExpr]
func (p *parser) lamSeq() (lambda.Term, error) {
	first, err := p.lamApp()
	if err != nil {
		return nil, err
	}
	if p.at(tokSemi) {
		p.next()
		rest, err := p.lamExpr()
		if err != nil {
			return nil, err
		}
		return lambda.Seq{First: first, Then: rest}, nil
	}
	return first, nil
}

// lamApp := lamAtom lamAtom*
func (p *parser) lamApp() (lambda.Term, error) {
	fn, err := p.lamAtom()
	if err != nil {
		return nil, err
	}
	for p.startsLamAtom() {
		arg, err := p.lamAtom()
		if err != nil {
			return nil, err
		}
		fn = lambda.App{Fn: fn, Arg: arg}
	}
	return fn, nil
}

// startsLamAtom reports whether the next token can begin an atom (for
// application juxtaposition).
func (p *parser) startsLamAtom() bool {
	switch t := p.peek(); t.kind {
	case tokLParen, tokInt, tokQuote:
		return true
	case tokIdent:
		switch t.text {
		case "in", "fun", "rec", "let":
			return false
		}
		return true
	}
	return false
}

// lamAtom parses the non-application forms.
func (p *parser) lamAtom() (lambda.Term, error) {
	t := p.peek()
	switch t.kind {
	case tokLParen:
		p.next()
		if p.at(tokRParen) { // ()
			p.next()
			return lambda.Unit{}, nil
		}
		e, err := p.lamExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokInt:
		p.next()
		n := 0
		fmt.Sscanf(t.text, "%d", &n)
		return lambda.IntLit{Value: n}, nil
	case tokQuote:
		p.next()
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return lambda.SymLit{Value: id.text}, nil
	case tokIdent:
		switch t.text {
		case "fire":
			p.next()
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			args, err := p.valueArgs()
			if err != nil {
				return nil, err
			}
			return lambda.Fire{Event: hexpr.Event{Name: name.text, Args: args}}, nil
		case "enforce":
			p.next()
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			body, err := p.lamBraced()
			if err != nil {
				return nil, err
			}
			return lambda.Enforce{Policy: p.resolvePolicy(name.text), Body: body}, nil
		case "open":
			p.next()
			req, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			pol := hexpr.NoPolicy
			if w := p.peek(); w.kind == tokIdent && w.text == "with" {
				p.next()
				name, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				pol = p.resolvePolicy(name.text)
			}
			body, err := p.lamBraced()
			if err != nil {
				return nil, err
			}
			return lambda.Request{Req: hexpr.RequestID(req.text), Policy: pol, Body: body}, nil
		case "select":
			p.next()
			bs, err := p.lamBranches()
			if err != nil {
				return nil, err
			}
			return lambda.Select{Branches: bs}, nil
		case "branch":
			p.next()
			bs, err := p.lamBranches()
			if err != nil {
				return nil, err
			}
			return lambda.Branch{Branches: bs}, nil
		}
		p.next()
		return lambda.Var{Name: t.text}, nil
	}
	return nil, p.errf(t, "expected a λ-term, found %s", t)
}

func (p *parser) lamBraced() (lambda.Term, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	e, err := p.lamExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return e, nil
}

// lamBranches := '{' ident '=>' e ('|' ident '=>' e)* '}'
func (p *parser) lamBranches() ([]lambda.CommBranch, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []lambda.CommBranch
	for {
		ch, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDArrow); err != nil {
			return nil, err
		}
		body, err := p.lamExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, lambda.CommBranch{Channel: ch.text, Body: body})
		if !p.at(tokBar) {
			break
		}
		p.next()
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return out, nil
}

// lamLet := 'let' ident '=' e 'in' e
func (p *parser) lamLet() (lambda.Term, error) {
	p.next() // let
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	bind, err := p.lamExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	body, err := p.lamExpr()
	if err != nil {
		return nil, err
	}
	return lambda.Let{Name: name.text, Bind: bind, Body: body}, nil
}

// lamFun := 'fun' ident ':' type '.' e
func (p *parser) lamFun() (lambda.Term, error) {
	p.next() // fun
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	ty, err := p.lamType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	body, err := p.lamExpr()
	if err != nil {
		return nil, err
	}
	return lambda.Abs{Param: name.text, ParamType: ty, Body: body}, nil
}

// lamRec := 'rec' f '(' x ':' type ')' ':' type '.' e
func (p *parser) lamRec() (lambda.Term, error) {
	p.next() // rec
	fname, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	param, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	pty, err := p.lamType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	rty, err := p.lamType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	body, err := p.lamExpr()
	if err != nil {
		return nil, err
	}
	return lambda.RecFun{Name: fname.text, Param: param.text,
		ParamType: pty, Result: rty, Body: body}, nil
}

// lamType := base ['-[' effect ']->' lamType] | '(' lamType ')'
func (p *parser) lamType() (lambda.Type, error) {
	var left lambda.Type
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		inner, err := p.lamType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		left = inner
	case t.kind == tokIdent:
		p.next()
		switch t.text {
		case "unit":
			left = lambda.UnitT{}
		case "int":
			left = lambda.IntT{}
		case "sym":
			left = lambda.SymT{}
		default:
			return nil, p.errf(t, "unknown type %q (want unit, int or sym)", t.text)
		}
	default:
		return nil, p.errf(t, "expected a type, found %s", t)
	}
	if p.at(tokLEff) {
		p.next()
		eff, err := p.expr() // a history expression
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokREff); err != nil {
			return nil, err
		}
		result, err := p.lamType()
		if err != nil {
			return nil, err
		}
		return lambda.FunT{Param: left, Effect: eff, Result: result}, nil
	}
	return left, nil
}
