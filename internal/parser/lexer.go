// Package parser implements the surface language of the toolkit: a
// textual syntax for history expressions, usage-automata policies, policy
// instances, service repositories and clients with plans. The CLI
// (cmd/susc) and the examples consume it.
//
// A source file is a sequence of declarations:
//
//	policy phi(bl set, p int, t int) {
//	  states q1 q2 q3 q4 q5 q6;
//	  start q1;
//	  final q6;
//	  edge q1 -> q2 on sgn(x) when x notin bl;
//	  edge q2 -> q4 on price(y) when y > p;
//	  edge q4 -> q6 on rating(z) when z < t;
//	}
//
//	instance phi1 = phi(bl = {s1}, p = 45, t = 100);
//
//	service br = Req? . open r3 { IdC! . (Bok? + UnA?) } .
//	             (CoBo! . Pay? (+) NoAv!);
//
//	client c1 at c1 plan { r1 -> br, r3 -> s3 } =
//	    open r1 with phi1 { Req! . (CoBo? . Pay! + NoAv?) };
//
// Expression syntax (loosest to tightest): mu-recursion `mu h . E`,
// choices `E + E` (external) and `E (+) E` (internal), sequencing
// `E . E`, and atoms: `eps`, events `name(args)`, channel actions `a?`
// and `a!`, requests `open r [with phi] { E }`, framings
// `enforce phi { E }`, parentheses, and `//` line comments.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token kinds.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokLParen // (
	tokRParen // )
	tokLBrace // {
	tokRBrace // }
	tokDot    // .
	tokComma  // ,
	tokSemi   // ;
	tokPlus   // +
	tokOPlus  // (+)
	tokQuery  // ?
	tokBang   // !
	tokArrow  // ->
	tokAssign // =
	tokEq     // ==
	tokNe     // !=
	tokLe     // <=
	tokLt     // <
	tokGe     // >=
	tokGt     // >
	tokStar   // *
	tokColon  // :
	tokBar    // |
	tokDArrow // =>
	tokQuote  // '
	tokLEff   // -[
	tokREff   // ]->
	tokLBrack // [
	tokRBrack // ]
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokDot:
		return "'.'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokPlus:
		return "'+'"
	case tokOPlus:
		return "'(+)'"
	case tokQuery:
		return "'?'"
	case tokBang:
		return "'!'"
	case tokArrow:
		return "'->'"
	case tokAssign:
		return "'='"
	case tokEq:
		return "'=='"
	case tokNe:
		return "'!='"
	case tokLe:
		return "'<='"
	case tokLt:
		return "'<'"
	case tokGe:
		return "'>='"
	case tokGt:
		return "'>'"
	case tokStar:
		return "'*'"
	case tokColon:
		return "':'"
	case tokBar:
		return "'|'"
	case tokDArrow:
		return "'=>'"
	case tokQuote:
		return "quote"
	case tokLEff:
		return "'-['"
	case tokREff:
		return "']->'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokIdent || t.kind == tokInt {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parser: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lex tokenizes the input. The only lookahead subtlety is "(+)", which is
// recognised eagerly before "(".
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	emit := func(kind tokenKind, text string) {
		toks = append(toks, token{kind: kind, text: text, line: line, col: col})
	}
	// advance consumes n bytes, counting columns in runes so positions
	// stay editor-accurate on multi-byte (UTF-8) input.
	advance := func(n int) {
		for j := 0; j < n; {
			if src[i+j] == '\n' {
				line++
				col = 1
				j++
				continue
			}
			_, size := utf8.DecodeRuneInString(src[i+j : i+n])
			col++
			j += size
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case strings.HasPrefix(src[i:], "(+)"):
			emit(tokOPlus, "(+)")
			advance(3)
		case c == '(':
			emit(tokLParen, "(")
			advance(1)
		case c == ')':
			emit(tokRParen, ")")
			advance(1)
		case c == '{':
			emit(tokLBrace, "{")
			advance(1)
		case c == '}':
			emit(tokRBrace, "}")
			advance(1)
		case c == '.':
			emit(tokDot, ".")
			advance(1)
		case c == ',':
			emit(tokComma, ",")
			advance(1)
		case c == ';':
			emit(tokSemi, ";")
			advance(1)
		case c == '+':
			emit(tokPlus, "+")
			advance(1)
		case c == '?':
			emit(tokQuery, "?")
			advance(1)
		case c == '*':
			emit(tokStar, "*")
			advance(1)
		case strings.HasPrefix(src[i:], "=>"):
			emit(tokDArrow, "=>")
			advance(2)
		case strings.HasPrefix(src[i:], "-["):
			emit(tokLEff, "-[")
			advance(2)
		case strings.HasPrefix(src[i:], "]->"):
			emit(tokREff, "]->")
			advance(3)
		case strings.HasPrefix(src[i:], "->"):
			emit(tokArrow, "->")
			advance(2)
		case strings.HasPrefix(src[i:], "=="):
			emit(tokEq, "==")
			advance(2)
		case strings.HasPrefix(src[i:], "!="):
			emit(tokNe, "!=")
			advance(2)
		case strings.HasPrefix(src[i:], "<="):
			emit(tokLe, "<=")
			advance(2)
		case strings.HasPrefix(src[i:], ">="):
			emit(tokGe, ">=")
			advance(2)
		case c == '=':
			emit(tokAssign, "=")
			advance(1)
		case c == '!':
			emit(tokBang, "!")
			advance(1)
		case c == ':':
			emit(tokColon, ":")
			advance(1)
		case c == '|':
			emit(tokBar, "|")
			advance(1)
		case c == '\'':
			emit(tokQuote, "'")
			advance(1)
		case c == '[':
			emit(tokLBrack, "[")
			advance(1)
		case c == ']':
			emit(tokRBrack, "]")
			advance(1)
		case c == '<':
			emit(tokLt, "<")
			advance(1)
		case c == '>':
			emit(tokGt, ">")
			advance(1)
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			emit(tokInt, src[i:j])
			advance(j - i)
		default:
			r, size := utf8.DecodeRuneInString(src[i:])
			if !unicode.IsLetter(r) && r != '_' {
				return nil, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", r)}
			}
			j := i + size
			for j < len(src) {
				r2, s2 := utf8.DecodeRuneInString(src[j:])
				if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '_' {
					break
				}
				j += s2
			}
			emit(tokIdent, src[i:j])
			advance(j - i)
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}
