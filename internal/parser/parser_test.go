package parser_test

import (
	"strings"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/paperex"
	"susc/internal/parser"
	"susc/internal/plans"
	"susc/internal/verify"
)

// hotelSource is the paper's §2 scenario in the surface syntax.
const hotelSource = `
// Figure 1: the booking policy phi(bl, p, t)
policy phi(bl set, p int, t int) {
  states q1 q2 q3 q4 q5 q6;
  start q1;
  final q6;
  edge q1 -> q2 on sgn(x) when x notin bl;
  edge q1 -> q6 on sgn(x) when x in bl;
  edge q2 -> q3 on price(y) when y <= p;
  edge q2 -> q4 on price(y) when y > p;
  edge q4 -> q5 on rating(z) when z >= t;
  edge q4 -> q6 on rating(z) when z < t;
}

instance phi1 = phi(bl = {s1}, p = 45, t = 100);
instance phi2 = phi(bl = {s1, s3}, p = 40, t = 70);

// Figure 2: the broker and the hotels
service br = Req? . open r3 { IdC! . (Bok? + UnA?) } . (CoBo! . Pay? (+) NoAv!);
service s1 = sgn(s1) . price(45) . rating(80) . IdC? . (Bok! (+) UnA!);
service s2 = sgn(s2) . price(70) . rating(100) . IdC? . (Bok! (+) UnA! (+) Del!);
service s3 = sgn(s3) . price(90) . rating(100) . IdC? . (Bok! (+) UnA!);
service s4 = sgn(s4) . price(50) . rating(90) . IdC? . (Bok! (+) UnA!);

client c1 at c1 plan { r1 -> br, r3 -> s3 } =
    open r1 with phi1 { Req! . (CoBo? . Pay! + NoAv?) };
client c2 at c2 =
    open r2 with phi2 { Req! . (CoBo? . Pay! + NoAv?) };
`

func parseHotel(t *testing.T) *parser.File {
	t.Helper()
	f, err := parser.ParseFile(hotelSource)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestHotelFileMatchesPaperex: the parsed scenario coincides, term by term,
// with the programmatically built one.
func TestHotelFileMatchesPaperex(t *testing.T) {
	f := parseHotel(t)
	want := map[hexpr.Location]hexpr.Expr{
		paperex.LocBr: paperex.Broker(),
		paperex.LocS1: paperex.S1(),
		paperex.LocS2: paperex.S2(),
		paperex.LocS3: paperex.S3(),
		paperex.LocS4: paperex.S4(),
	}
	for loc, w := range want {
		got, ok := f.Repo[loc]
		if !ok {
			t.Fatalf("service %s missing", loc)
		}
		if !hexpr.Equal(got, w) {
			t.Errorf("service %s:\n  parsed %s\n  want   %s", loc, got.Key(), w.Key())
		}
	}
	c1, err := f.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	if !hexpr.Equal(c1.Expr, paperex.C1()) {
		t.Errorf("c1:\n  parsed %s\n  want   %s", c1.Expr.Key(), paperex.C1().Key())
	}
	if c1.Plan.Key() != "{r1>br,r3>s3}" {
		t.Errorf("c1 plan = %s", c1.Plan)
	}
	c2, err := f.Client("c2")
	if err != nil {
		t.Fatal(err)
	}
	if !hexpr.Equal(c2.Expr, paperex.C2()) {
		t.Errorf("c2:\n  parsed %s\n  want   %s", c2.Expr.Key(), paperex.C2().Key())
	}
	if c2.Plan != nil {
		t.Errorf("c2 has no plan, got %s", c2.Plan)
	}
}

// TestHotelFileInstances: the parsed instances carry the canonical IDs and
// the same behaviour as the paperex ones.
func TestHotelFileInstances(t *testing.T) {
	f := parseHotel(t)
	if f.Instances["phi1"] != paperex.Phi1().ID() {
		t.Errorf("phi1 id = %s, want %s", f.Instances["phi1"], paperex.Phi1().ID())
	}
	if f.Instances["phi2"] != paperex.Phi2().ID() {
		t.Errorf("phi2 id = %s", f.Instances["phi2"])
	}
	// behaviour check through the table
	trace := []hexpr.Event{
		hexpr.E("sgn", hexpr.Sym("s4")),
		hexpr.E("price", hexpr.Int(50)),
		hexpr.E("rating", hexpr.Int(90)),
	}
	if !f.Table.Violates(f.Instances["phi1"], trace) {
		t.Error("parsed phi1 must reject S4's trace")
	}
	if f.Table.Violates(f.Instances["phi2"], trace) {
		t.Error("parsed phi2 must accept S4's trace")
	}
}

// TestParsedScenarioEndToEnd: plan synthesis over the parsed file gives
// the paper's results.
func TestParsedScenarioEndToEnd(t *testing.T) {
	f := parseHotel(t)
	c1, _ := f.Client("c1")
	got, err := plans.Synthesize(f.Repo, f.Table, c1.Loc, c1.Expr, plans.Options{PruneNonCompliant: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key() != "{r1>br,r3>s3}" {
		t.Fatalf("plans = %v", got)
	}
	// and the declared plan verifies
	ok, err := verify.ValidPlan(f.Repo, f.Table, c1.Loc, c1.Expr, c1.Plan)
	if err != nil || !ok {
		t.Fatalf("declared plan should be valid: %v %v", ok, err)
	}
}

func TestParseExprForms(t *testing.T) {
	cases := []struct {
		src  string
		want hexpr.Expr
	}{
		{"eps", hexpr.Eps()},
		{"a?", hexpr.RecvThen("a", hexpr.Eps())},
		{"a!", hexpr.SendThen("a", hexpr.Eps())},
		{"a? . b!", hexpr.RecvThen("a", hexpr.SendThen("b", hexpr.Eps()))},
		{"sgn(1)", hexpr.Act(hexpr.E("sgn", hexpr.Int(1)))},
		{"sgn(s1, 2)", hexpr.Act(hexpr.E("sgn", hexpr.Sym("s1"), hexpr.Int(2)))},
		{"done()", hexpr.Act(hexpr.E("done"))},
		{"a? + b?", hexpr.Ext(
			hexpr.B(hexpr.In("a"), hexpr.Eps()),
			hexpr.B(hexpr.In("b"), hexpr.Eps()))},
		{"a! (+) b!", hexpr.IntCh(
			hexpr.B(hexpr.Out("a"), hexpr.Eps()),
			hexpr.B(hexpr.Out("b"), hexpr.Eps()))},
		{"a? . x() + b?", hexpr.Ext(
			hexpr.B(hexpr.In("a"), hexpr.Act(hexpr.E("x"))),
			hexpr.B(hexpr.In("b"), hexpr.Eps()))},
		{"mu h . a! . h", hexpr.Mu("h", hexpr.SendThen("a", hexpr.V("h")))},
		{"mu h . (a? . h + b?)", hexpr.Mu("h", hexpr.Ext(
			hexpr.B(hexpr.In("a"), hexpr.V("h")),
			hexpr.B(hexpr.In("b"), hexpr.Eps())))},
		{"open r1 with phi { a! }", hexpr.Open("r1", "phi", hexpr.SendThen("a", hexpr.Eps()))},
		{"open r1 { a! }", hexpr.Open("r1", hexpr.NoPolicy, hexpr.SendThen("a", hexpr.Eps()))},
		{"enforce phi { sgn(1) }", hexpr.Frame("phi", hexpr.Act(hexpr.E("sgn", hexpr.Int(1))))},
		{"(a?)", hexpr.RecvThen("a", hexpr.Eps())},
		{"sgn(1) . price(2)", hexpr.Cat(
			hexpr.Act(hexpr.E("sgn", hexpr.Int(1))),
			hexpr.Act(hexpr.E("price", hexpr.Int(2))))},
		// recursion after a prefix
		{"go? . mu h . ping! . pong? . h",
			hexpr.RecvThen("go", hexpr.Mu("h",
				hexpr.SendThen("ping", hexpr.RecvThen("pong", hexpr.V("h")))))},
	}
	for _, c := range cases {
		got, err := parser.ParseExpr(c.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.src, err)
			continue
		}
		if !hexpr.Equal(got, c.want) {
			t.Errorf("ParseExpr(%q) = %s, want %s", c.src, got.Key(), c.want.Key())
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	cases := []struct {
		src string
		msg string
	}{
		{"", "expected an expression"},
		{"a? +", "expected an expression"},
		{"a? + b!", "output-guarded summand in an external choice"},
		{"a! (+) b?", "input-guarded summand in an internal choice"},
		{"a? + b? (+) c!", "cannot mix"},
		{"eps + eps", "must start with a channel action"},
		{"open r1", "expected '{'"},
		{"open r1 { a! ", "expected '}'"},
		{"enforce { a! }", "expected identifier"},
		{"mu . a!", "expected identifier"},
		{"a? . ", "expected an expression"},
		{"(a?", "expected ')'"},
		{"a? b?", "trailing input"},
		{"sgn(", "expected a value"},
		{"@", "unexpected character"},
	}
	for _, c := range cases {
		_, err := parser.ParseExpr(c.src)
		if err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error %q", c.src, c.msg)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("ParseExpr(%q) = %v, want mention of %q", c.src, err, c.msg)
		}
	}
}

func TestParseFileErrors(t *testing.T) {
	cases := []struct {
		src string
		msg string
	}{
		{"bogus x;", "unknown declaration"},
		{"policy p() { start q; }", "no states"},
		{"policy p(x float) { }", "parameter kind"},
		{"policy p() { states q; start q; edge q -> z on e; }", "unknown state"},
		{"policy p() { states q; start q; edge q -> q on e(x) when y in s; }", "unknown variable"},
		{"policy p() { states q; start q; edge q -> q on e(x) when x in s, x in s; }", "constrained twice"},
		{"instance i = nope();", "unknown policy"},
		{"policy p() { states q; start q; }\ninstance i = p();\ninstance i = p();", "redeclared"},
		{"service s = a?;\nservice s = a?;", "redeclared"},
		{"service s = h;", "free recursion variables"},
		{"client c at l = h;", "free recursion variables"},
		{"123", "expected a declaration"},
	}
	for _, c := range cases {
		_, err := parser.ParseFile(c.src)
		if err == nil {
			t.Errorf("ParseFile(%q) succeeded, want error %q", c.src, c.msg)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("ParseFile(%q) = %v, want mention of %q", c.src, err, c.msg)
		}
	}
}

func TestParseGuardOperators(t *testing.T) {
	src := `
policy g(n int) {
  states q0 qv;
  start q0;
  final qv;
  edge q0 -> qv on eq(x) when x == 7;
  edge q0 -> qv on ne(x) when x != ok;
  edge q0 -> qv on lt(x) when x < n;
  edge q0 -> qv on any(x);
}
instance gi = g(n = 10);
`
	f, err := parser.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Instances["gi"]
	checks := []struct {
		ev   hexpr.Event
		want bool
	}{
		{hexpr.E("eq", hexpr.Int(7)), true},
		{hexpr.E("eq", hexpr.Int(8)), false},
		{hexpr.E("ne", hexpr.Sym("bad")), true},
		{hexpr.E("ne", hexpr.Sym("ok")), false},
		{hexpr.E("lt", hexpr.Int(9)), true},
		{hexpr.E("lt", hexpr.Int(10)), false},
		{hexpr.E("any", hexpr.Sym("whatever")), true},
	}
	for _, c := range checks {
		if got := f.Table.Violates(id, []hexpr.Event{c.ev}); got != c.want {
			t.Errorf("event %v: violates = %v, want %v", c.ev, got, c.want)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	e, err := parser.ParseExpr("a? . // comment here\n b!")
	if err != nil {
		t.Fatal(err)
	}
	want := hexpr.RecvThen("a", hexpr.SendThen("b", hexpr.Eps()))
	if !hexpr.Equal(e, want) {
		t.Errorf("got %s", e.Key())
	}
}

func TestMustHelpersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseExpr should panic on bad input")
		}
	}()
	parser.MustParseExpr("@@@")
}

func TestErrorPositions(t *testing.T) {
	_, err := parser.ParseExpr("a? .\n  @")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*parser.Error)
	if !ok {
		t.Fatalf("err type %T", err)
	}
	if perr.Line != 2 || perr.Col != 3 {
		t.Errorf("position = %d:%d, want 2:3", perr.Line, perr.Col)
	}
}
