package parser

import (
	"testing"

	"susc/internal/hexpr"
)

// TestSpanColumnsCountRunes asserts line:col stability on multi-byte
// (UTF-8) and CRLF input: columns count runes, not bytes, and carriage
// returns behave as ordinary whitespace.
func TestSpanColumnsCountRunes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// expected tokens: text with start line:col and end col
		want []struct {
			text              string
			line, col, endCol int
		}
	}{
		{
			name: "ascii baseline",
			src:  "ab cd",
			want: []struct {
				text              string
				line, col, endCol int
			}{
				{"ab", 1, 1, 3},
				{"cd", 1, 4, 6},
			},
		},
		{
			name: "multibyte identifier",
			// "héllo" is 6 bytes but 5 runes; "x" must start at col 7.
			src: "héllo x",
			want: []struct {
				text              string
				line, col, endCol int
			}{
				{"héllo", 1, 1, 6},
				{"x", 1, 7, 8},
			},
		},
		{
			name: "multibyte in comment",
			src:  "// π ≈ 3\nabc",
			want: []struct {
				text              string
				line, col, endCol int
			}{
				{"abc", 2, 1, 4},
			},
		},
		{
			name: "crlf newlines",
			src:  "ab\r\ncd\r\nef",
			want: []struct {
				text              string
				line, col, endCol int
			}{
				{"ab", 1, 1, 3},
				{"cd", 2, 1, 3},
				{"ef", 3, 1, 3},
			},
		},
		{
			name: "cjk identifier",
			// each CJK rune is 3 bytes, 1 column
			src: "日本語 q",
			want: []struct {
				text              string
				line, col, endCol int
			}{
				{"日本語", 1, 1, 4},
				{"q", 1, 5, 6},
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			toks, err := lex(c.src)
			if err != nil {
				t.Fatal(err)
			}
			if len(toks)-1 != len(c.want) { // minus EOF
				t.Fatalf("got %d tokens, want %d", len(toks)-1, len(c.want))
			}
			for i, w := range c.want {
				tok := toks[i]
				if tok.text != w.text {
					t.Errorf("token %d text = %q, want %q", i, tok.text, w.text)
				}
				sp := tok.span()
				if sp.Start.Line != w.line || sp.Start.Col != w.col {
					t.Errorf("%q start = %d:%d, want %d:%d", w.text,
						sp.Start.Line, sp.Start.Col, w.line, w.col)
				}
				if sp.End.Line != w.line || sp.End.Col != w.endCol {
					t.Errorf("%q end = %d:%d, want %d:%d", w.text,
						sp.End.Line, sp.End.Col, w.line, w.endCol)
				}
			}
		})
	}
}

// TestSpanTableCRLFFile parses a whole CRLF-terminated file and checks the
// declaration spans land on the same line:col as the LF version.
func TestSpanTableCRLFFile(t *testing.T) {
	lf := "service s = ping! . eps;\nclient c at c plan { } = ping? . done();\n"
	crlf := "service s = ping! . eps;\r\nclient c at c plan { } = ping? . done();\r\n"
	fl, err := ParseFile(lf)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ParseFile(crlf)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Spans.Services["s"] != fc.Spans.Services["s"] {
		t.Errorf("service span LF %v != CRLF %v", fl.Spans.Services["s"], fc.Spans.Services["s"])
	}
	if fl.Spans.Clients[0] != fc.Spans.Clients[0] {
		t.Errorf("client span LF %v != CRLF %v", fl.Spans.Clients[0], fc.Spans.Clients[0])
	}
	if got, want := fc.Spans.Clients[0], (Span{Start: Pos{2, 8}, End: Pos{2, 9}}); got != want {
		t.Errorf("client span = %v, want %v", got, want)
	}
}

// TestEventSpansRecorded checks the new Events side table: every event
// occurrence in a declaration body is anchored, keyed by canonical
// rendering.
func TestEventSpansRecorded(t *testing.T) {
	src := "service s = sgn(3) . ping! . sgn(3);\n"
	f, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	es := f.Spans.ServiceExprs["s"]
	if es == nil {
		t.Fatal("no expression spans for s")
	}
	key := hexpr.E("sgn", hexpr.Int(3)).String()
	spans := es.Events[key]
	if len(spans) != 2 {
		t.Fatalf("Events[%q] = %v, want 2 occurrences", key, spans)
	}
	if spans[0] != (Span{Start: Pos{1, 13}, End: Pos{1, 16}}) {
		t.Errorf("first occurrence = %v", spans[0])
	}
	if es.EventSpan(key) != spans[0] {
		t.Errorf("EventSpan(%q) = %v", key, es.EventSpan(key))
	}
	if !es.EventSpan("nosuch").IsZero() {
		t.Error("unknown event must yield a zero span")
	}
	var nilES *ExprSpans
	if !nilES.EventSpan(key).IsZero() {
		t.Error("nil receiver must yield a zero span")
	}
}

// TestFramingSpans: enforce and open-with scopes record the opening policy
// token and the closing brace, so witnesses can anchor framing labels at
// the framing itself. The recorded ID is the resolved policy identifier
// (the instantiated template), the same identifier framing labels carry.
func TestFramingSpans(t *testing.T) {
	src := "policy p() { states q0 qb; start q0; final qb; edge q0 -> qb on bad(); }\n" +
		"instance phi = p();\n" +
		"service s = Req? . enforce phi { tick() } . Ack!;\n" +
		"client c at l = open r1 with phi { Req! . Ack? };\n"
	f, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	svc := f.Spans.ServiceExprs["s"]
	if svc == nil || len(svc.Framings) != 1 {
		t.Fatalf("want 1 service framing, got %+v", svc)
	}
	id := svc.Framings[0].ID
	if id == "" || id == "phi" {
		t.Errorf("framing ID should be the resolved policy identifier, got %q", id)
	}
	fs := svc.FramingSpan(id)
	if fs.Open.Start.Line != 3 || fs.Open.Start.Col != 28 {
		t.Errorf("enforce open span = %v, want 3:28", fs.Open)
	}
	if fs.Close.Start.Line != 3 || fs.Close.Start.Col != 41 {
		t.Errorf("enforce close span = %v, want 3:41", fs.Close)
	}
	if len(f.Spans.ClientExprs) != 1 {
		t.Fatalf("want 1 client expr table, got %d", len(f.Spans.ClientExprs))
	}
	cs := f.Spans.ClientExprs[0].FramingSpan(id)
	if cs.ID != id {
		t.Fatalf("client with-framing not recorded: %+v", f.Spans.ClientExprs[0].Framings)
	}
	if cs.Open.Start.Line != 4 || cs.Open.Start.Col != 30 {
		t.Errorf("with open span = %v, want 4:30", cs.Open)
	}
	if cs.Close.Start.Line != 4 || cs.Close.Start.Col != 48 {
		t.Errorf("with close span = %v, want 4:48", cs.Close)
	}
	if (&ExprSpans{}).FramingSpan("nope") != (FramingSpan{}) {
		t.Error("missing framing should return zero FramingSpan")
	}
}
