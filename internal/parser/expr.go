package parser

import (
	"fmt"

	"susc/internal/hexpr"
)

// parser holds the token stream and the instance-alias resolution used for
// `with` and `enforce` clauses.
type parser struct {
	toks    []token
	pos     int
	aliases map[string]hexpr.PolicyID
	depth   int

	// File-level state (ParseFile / ParseFileLenient): lenient parsing
	// collects declaration-level issues instead of failing, spans is the
	// whole-file position side table, and cur collects expression-level
	// positions for the declaration being parsed.
	lenient bool
	issues  []Issue
	spans   *SpanTable
	cur     *ExprSpans
}

// maxParseDepth bounds expression nesting so hostile inputs (kilobytes of
// "((((…") fail with a parse error instead of exhausting the stack.
const maxParseDepth = 2048

// push enters one nesting level of the expression grammar.
func (p *parser) push(t token) error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errf(t, "expression nested more than %d levels deep", maxParseDepth)
	}
	return nil
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) next() token         { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, p.errf(t, "expected %s, found %s", k, t)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokIdent || t.text != kw {
		return p.errf(t, "expected %q, found %s", kw, t)
	}
	p.next()
	return nil
}

// resolvePolicy maps an instance alias to its PolicyID. Unknown aliases are
// kept verbatim as identifiers, so expression-only parsing (ParseExpr)
// works without declarations.
func (p *parser) resolvePolicy(name string) hexpr.PolicyID {
	if p.aliases != nil {
		if id, ok := p.aliases[name]; ok {
			return id
		}
	}
	return hexpr.PolicyID(name)
}

// ParseExpr parses a stand-alone history expression. Policy names in
// `with`/`enforce` clauses are taken verbatim as instance identifiers.
func ParseExpr(src string) (hexpr.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf(p.peek(), "trailing input: %s", p.peek())
	}
	return e, nil
}

// MustParseExpr is ParseExpr panicking on error, for statically known
// sources in examples and tests.
func MustParseExpr(src string) hexpr.Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// expr := 'mu' ident '.' expr | choice
func (p *parser) expr() (hexpr.Expr, error) {
	if err := p.push(p.peek()); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	if t := p.peek(); t.kind == tokIdent && t.text == "mu" {
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if p.cur != nil {
			p.cur.Mus = append(p.cur.Mus, NameSpan{Name: name.text, Span: name.span()})
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return hexpr.Mu(name.text, body), nil
	}
	return p.choice()
}

// choice := seq (('+' seq)* | ('(+)' seq)*)
func (p *parser) choice() (hexpr.Expr, error) {
	first, err := p.seq()
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tokPlus, tokOPlus:
	default:
		return first, nil
	}
	op := p.peek().kind
	opTok := p.peek()
	summands := []hexpr.Expr{first}
	for p.peek().kind == op {
		p.next()
		s, err := p.seq()
		if err != nil {
			return nil, err
		}
		summands = append(summands, s)
	}
	if k := p.peek().kind; k == tokPlus || k == tokOPlus {
		return nil, p.errf(p.peek(), "cannot mix '+' and '(+)' in one choice; parenthesise")
	}
	var branches []hexpr.Branch
	for _, s := range summands {
		bs, err := p.asBranches(s, op, opTok)
		if err != nil {
			return nil, err
		}
		branches = append(branches, bs...)
	}
	if op == tokPlus {
		return hexpr.Ext(branches...), nil
	}
	return hexpr.IntCh(branches...), nil
}

// asBranches views a summand as choice branches: the summand must begin
// with a communication prefix of the right direction (or be a choice of
// the same kind, which is flattened).
func (p *parser) asBranches(e hexpr.Expr, op tokenKind, at token) ([]hexpr.Branch, error) {
	flatten := func(bs []hexpr.Branch, rest hexpr.Expr) []hexpr.Branch {
		out := make([]hexpr.Branch, len(bs))
		for i, b := range bs {
			out[i] = hexpr.Branch{Comm: b.Comm, Cont: hexpr.Cat(b.Cont, rest)}
		}
		return out
	}
	head, rest := e, hexpr.Eps()
	if s, ok := e.(hexpr.Seq); ok {
		head, rest = s.Left, s.Right
	}
	switch h := head.(type) {
	case hexpr.ExtChoice:
		if op != tokPlus {
			return nil, p.errf(at, "input-guarded summand in an internal choice")
		}
		return flatten(h.Branches, rest), nil
	case hexpr.IntChoice:
		if op != tokOPlus {
			return nil, p.errf(at, "output-guarded summand in an external choice")
		}
		return flatten(h.Branches, rest), nil
	default:
		return nil, p.errf(at, "choice summand must start with a channel action")
	}
}

// seq := atom ('.' atom)*
func (p *parser) seq() (hexpr.Expr, error) {
	first, err := p.atom()
	if err != nil {
		return nil, err
	}
	parts := []hexpr.Expr{first}
	for p.at(tokDot) {
		p.next()
		// allow `a? . mu h. ...` — recursion in tail position of a prefix
		if t := p.peek(); t.kind == tokIdent && t.text == "mu" {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			break
		}
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		parts = append(parts, a)
	}
	return hexpr.Cat(parts...), nil
}

// atom := '(' expr ')' | 'eps' | 'open' ... | 'enforce' ... | chan action |
// event | variable
func (p *parser) atom() (hexpr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch t.text {
		case "eps":
			p.next()
			return hexpr.Eps(), nil
		case "open":
			return p.openExpr()
		case "enforce":
			return p.enforceExpr()
		}
		p.next()
		switch p.peek().kind {
		case tokQuery:
			p.next()
			if p.cur != nil {
				p.cur.Events[t.text] = append(p.cur.Events[t.text], t.span())
			}
			return hexpr.Ext(hexpr.B(hexpr.In(t.text), hexpr.Eps())), nil
		case tokBang:
			p.next()
			if p.cur != nil {
				p.cur.Events[t.text] = append(p.cur.Events[t.text], t.span())
			}
			return hexpr.IntCh(hexpr.B(hexpr.Out(t.text), hexpr.Eps())), nil
		case tokLParen:
			args, err := p.valueArgs()
			if err != nil {
				return nil, err
			}
			ev := hexpr.Event{Name: t.text, Args: args}
			if p.cur != nil {
				k := ev.String()
				p.cur.Events[k] = append(p.cur.Events[k], t.span())
			}
			return hexpr.Act(ev), nil
		default:
			// bare identifier: recursion variable or 0-ary event; the
			// well-formedness check disambiguates (variables must be bound)
			if p.cur != nil {
				p.cur.Events[t.text] = append(p.cur.Events[t.text], t.span())
			}
			return hexpr.Var{Name: t.text}, nil
		}
	}
	return nil, p.errf(t, "expected an expression, found %s", t)
}

// openExpr := 'open' ident ['with' ident] '{' expr '}'
func (p *parser) openExpr() (hexpr.Expr, error) {
	p.next() // open
	req, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if p.cur != nil {
		if _, seen := p.cur.Opens[req.text]; !seen {
			p.cur.Opens[req.text] = req.span()
		}
	}
	pol := hexpr.NoPolicy
	var polSpan Span
	if t := p.peek(); t.kind == tokIdent && t.text == "with" {
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		pol = p.resolvePolicy(name.text)
		polSpan = name.span()
		if p.cur != nil {
			p.cur.Policies = append(p.cur.Policies,
				NameSpan{Name: name.text, ID: string(pol), Span: polSpan})
		}
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	rb, err := p.expect(tokRBrace)
	if err != nil {
		return nil, err
	}
	if p.cur != nil && pol != hexpr.NoPolicy {
		p.cur.Framings = append(p.cur.Framings,
			FramingSpan{ID: string(pol), Open: polSpan, Close: rb.span()})
	}
	return hexpr.Open(hexpr.RequestID(req.text), pol, body), nil
}

// enforceExpr := 'enforce' ident '{' expr '}'
func (p *parser) enforceExpr() (hexpr.Expr, error) {
	p.next() // enforce
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if p.cur != nil {
		ns := NameSpan{Name: name.text, ID: string(p.resolvePolicy(name.text)), Span: name.span()}
		p.cur.Policies = append(p.cur.Policies, ns)
		p.cur.Enforces = append(p.cur.Enforces, ns)
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	rb, err := p.expect(tokRBrace)
	if err != nil {
		return nil, err
	}
	pol := p.resolvePolicy(name.text)
	if p.cur != nil && pol != hexpr.NoPolicy {
		p.cur.Framings = append(p.cur.Framings,
			FramingSpan{ID: string(pol), Open: name.span(), Close: rb.span()})
	}
	return hexpr.Frame(pol, body), nil
}

// valueArgs := '(' [value (',' value)*] ')'
func (p *parser) valueArgs() ([]hexpr.Value, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []hexpr.Value
	for !p.at(tokRParen) {
		if len(args) > 0 {
			if _, err := p.expect(tokComma); err != nil {
				return nil, err
			}
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	p.next() // ')'
	return args, nil
}

// value := int | ident
func (p *parser) value() (hexpr.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		v, err := hexpr.ParseValue(t.text)
		if err != nil {
			return hexpr.Value{}, p.errf(t, "%v", err)
		}
		return v, nil
	case tokIdent:
		p.next()
		return hexpr.Sym(t.text), nil
	}
	return hexpr.Value{}, p.errf(t, "expected a value, found %s", t)
}
