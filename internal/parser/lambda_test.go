package parser_test

import (
	"strings"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/lambda"
	"susc/internal/paperex"
	"susc/internal/parser"
)

func inferSrc(t *testing.T, src string) (lambda.Type, hexpr.Expr) {
	t.Helper()
	term, err := parser.ParseLambda(src)
	if err != nil {
		t.Fatalf("ParseLambda(%q): %v", src, err)
	}
	ty, eff, err := lambda.InferClosed(term)
	if err != nil {
		t.Fatalf("InferClosed(%q): %v", src, err)
	}
	return ty, eff
}

func TestParseLambdaBasics(t *testing.T) {
	cases := []struct {
		src        string
		wantEffect string // canonical key of the inferred effect
	}{
		{"()", "eps"},
		{"42", "eps"},
		{"'hello", "eps"},
		{"fire sgn(s1)", "sgn(s1)"},
		{"fire a(); fire b()", "(a . b)"},
		{"let x = fire a() in fire b()", "(a . b)"},
		{"(fun x: unit . fire a()) ()", "a"},
		{"enforce phi { fire a() }", "phi[a]"},
	}
	for _, c := range cases {
		_, eff := inferSrc(t, c.src)
		if eff.Key() != c.wantEffect {
			t.Errorf("%q: effect = %s, want %s", c.src, eff.Key(), c.wantEffect)
		}
	}
}

func TestParseLambdaCommunication(t *testing.T) {
	_, eff := inferSrc(t, "select { Bok => () | UnA => fire gone() }")
	want := hexpr.IntCh(
		hexpr.B(hexpr.Out("Bok"), hexpr.Eps()),
		hexpr.B(hexpr.Out("UnA"), hexpr.Act(hexpr.E("gone"))),
	)
	if !hexpr.Equal(eff, want) {
		t.Errorf("select effect = %s, want %s", eff.Key(), want.Key())
	}
	_, eff = inferSrc(t, "branch { a => () | b => () }")
	want = hexpr.Ext(
		hexpr.B(hexpr.In("a"), hexpr.Eps()),
		hexpr.B(hexpr.In("b"), hexpr.Eps()),
	)
	if !hexpr.Equal(eff, want) {
		t.Errorf("branch effect = %s, want %s", eff.Key(), want.Key())
	}
}

// TestParseLambdaClientC1: the paper's client as a surface program; the
// inferred effect coincides with paperex.C1 when the alias resolves.
func TestParseLambdaClientC1(t *testing.T) {
	src := `
open r1 with phi1 {
  select { Req =>
    branch { CoBo => select { Pay => () }
           | NoAv => () }
  }
}`
	term, err := parser.ParseLambdaWith(src, map[string]hexpr.PolicyID{
		"phi1": paperex.Phi1().ID(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, eff, err := lambda.InferClosed(term)
	if err != nil {
		t.Fatal(err)
	}
	if !hexpr.Equal(eff, paperex.C1()) {
		t.Errorf("effect = %s, want C1 = %s", eff.Key(), paperex.C1().Key())
	}
}

func TestParseLambdaRecursion(t *testing.T) {
	src := `
(rec pump(x: unit): unit .
  select { ping => branch { pong => pump () }
         | stop => () }) ()`
	_, eff := inferSrc(t, src)
	if _, ok := eff.(hexpr.Rec); !ok {
		t.Fatalf("effect = %s, want a recursion", eff.Key())
	}
	if err := hexpr.Check(eff); err != nil {
		t.Errorf("recursive effect ill-formed: %v", err)
	}
}

func TestParseLambdaHigherOrder(t *testing.T) {
	// a function taking an effectful callback: unit -[ a ]-> unit
	src := `
(fun cb: unit -[ a() ]-> unit . cb (); cb ())
(fun x: unit . fire a())`
	_, eff := inferSrc(t, src)
	want := hexpr.Cat(hexpr.Act(hexpr.E("a")), hexpr.Act(hexpr.E("a")))
	if !hexpr.Equal(eff, want) {
		t.Errorf("effect = %s, want %s", eff.Key(), want.Key())
	}
}

func TestParseLambdaHigherOrderEffectMismatch(t *testing.T) {
	// annotation says the callback fires b, the argument fires a: rejected
	src := `
(fun cb: unit -[ b() ]-> unit . cb ())
(fun x: unit . fire a())`
	term, err := parser.ParseLambda(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lambda.InferClosed(term); err == nil {
		t.Error("latent-effect mismatch should be rejected")
	}
}

func TestParseLambdaApplicationAssociativity(t *testing.T) {
	// f x y parses as (f x) y
	src := `
(fun f: unit -[ eps ]-> (unit -[ a() ]-> unit) . f () ())
(fun x: unit . fun y: unit . fire a())`
	_, eff := inferSrc(t, src)
	if eff.Key() != "a" {
		t.Errorf("effect = %s, want a", eff.Key())
	}
}

func TestParseLambdaEval(t *testing.T) {
	term, err := parser.ParseLambda("let x = 41 in fire count(1); x")
	if err != nil {
		t.Fatal(err)
	}
	v, hist, err := lambda.Eval(term, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := v.(lambda.IntLit); !ok || n.Value != 41 {
		t.Errorf("value = %v", v)
	}
	if hist.String() != "count(1)" {
		t.Errorf("history = %s", hist)
	}
}

func TestParseLambdaErrors(t *testing.T) {
	cases := []struct {
		src string
		msg string
	}{
		{"", "expected a λ-term"},
		{"fun x . e", "expected ':'"},
		{"fun x: float . ()", "unknown type"},
		{"rec f(x: unit) unit . ()", "expected ':'"},
		{"select { }", "expected identifier"},
		{"select { a => }", "expected a λ-term"},
		{"select { a () }", "expected '=>'"},
		{"open r1", "expected '{'"},
		{"enforce { () }", "expected identifier"},
		{"let x = 1", `expected "in"`},
		{"(1", "expected ')'"},
		{"1 2 3 )", "trailing input"},
		{"'", "expected identifier"},
		{"fun x: (unit -[ a ]- unit) . ()", "expected"},
	}
	for _, c := range cases {
		_, err := parser.ParseLambda(c.src)
		if err == nil {
			t.Errorf("ParseLambda(%q) succeeded, want error %q", c.src, c.msg)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("ParseLambda(%q) = %v, want mention of %q", c.src, err, c.msg)
		}
	}
}

func TestMustParseLambdaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseLambda should panic")
		}
	}()
	parser.MustParseLambda("@@")
}
