package parser_test

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/lambda"
	"susc/internal/parser"
)

// lamSources is a corpus covering every construct and tricky nesting.
var lamSources = []string{
	`()`,
	`42`,
	`'hello`,
	`fire sgn(s1)`,
	`fire pair(1, s2)`,
	`fire a(); fire b()`,
	`let x = 41 in x`,
	`fun x: unit . fire a()`,
	`(fun x: int . x) 5`,
	`(fun f: (unit -[ a() ]-> unit) . f (); f ()) (fun x: unit . fire a())`,
	`rec f(x: unit): unit . select { go => f () | stop => () }`,
	`enforce phi { fire a() }`,
	`open r1 with phi { select { Req => branch { Ok => () | No => () } } }`,
	`open r2 { () }`,
	`select { a => fire x(); () | b => let y = 1 in y }`,
	`branch { a => fun z: sym . z | b => (fun z: sym . z) }`,
	`(rec loop(n: int): int . branch { more => loop 1 | done => n }) 0`,
	`fire a(); let x = (fun y: unit . y) () in fire b(); x`,
}

// TestFormatLambdaRoundTrip: format ∘ parse is the identity on formatted
// output, and the inferred type/effect survives the round trip.
func TestFormatLambdaRoundTrip(t *testing.T) {
	for _, src := range lamSources {
		t1, err := parser.ParseLambda(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		out1 := parser.FormatLambda(t1, nil)
		t2, err := parser.ParseLambda(out1)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", out1, src, err)
		}
		out2 := parser.FormatLambda(t2, nil)
		if out1 != out2 {
			t.Errorf("format not a fixpoint:\n  %q\n  %q", out1, out2)
		}
		// the semantics (type and effect) survives
		ty1, eff1, err1 := lambda.InferClosed(t1)
		ty2, eff2, err2 := lambda.InferClosed(t2)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("typability changed across round trip for %q: %v vs %v", src, err1, err2)
			continue
		}
		if err1 != nil {
			continue
		}
		if !lambda.TypeEqual(ty1, ty2) {
			t.Errorf("type changed for %q: %s vs %s", src, ty1, ty2)
		}
		if !hexpr.Equal(eff1, eff2) {
			t.Errorf("effect changed for %q: %s vs %s", src, eff1.Key(), eff2.Key())
		}
	}
}

func TestFormatLambdaAliases(t *testing.T) {
	phi := hexpr.PolicyID("phi[bl={s1},p=45,t=100]")
	term := lambda.Enforce{Policy: phi, Body: lambda.Unit{}}
	out := parser.FormatLambda(term, func(id hexpr.PolicyID) string {
		if id == phi {
			return "phi1"
		}
		return string(id)
	})
	if out != "enforce phi1 { () }" {
		t.Errorf("aliased output = %q", out)
	}
}
