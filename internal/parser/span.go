package parser

import (
	"fmt"
	"unicode/utf8"
)

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// Span is a half-open source range [Start, End). Tokens never span lines,
// so End.Line == Start.Line for token-derived spans.
type Span struct {
	Start Pos `json:"start"`
	End   Pos `json:"end"`
}

// String renders the span as the conventional "line:col" anchor of its
// start, the form editors and CI annotations understand.
func (s Span) String() string { return fmt.Sprintf("%d:%d", s.Start.Line, s.Start.Col) }

// IsZero reports whether the span carries no position.
func (s Span) IsZero() bool { return s.Start.Line == 0 }

// Before orders spans by start position, then end position.
func (s Span) Before(o Span) bool {
	if s.Start.Line != o.Start.Line {
		return s.Start.Line < o.Start.Line
	}
	if s.Start.Col != o.Start.Col {
		return s.Start.Col < o.Start.Col
	}
	if s.End.Line != o.End.Line {
		return s.End.Line < o.End.Line
	}
	return s.End.Col < o.End.Col
}

// span is the source range of one token. Columns count runes, not bytes,
// so multi-byte identifiers report editor-accurate positions.
func (t token) span() Span {
	return Span{
		Start: Pos{Line: t.line, Col: t.col},
		End:   Pos{Line: t.line, Col: t.col + utf8.RuneCountInString(t.text)},
	}
}

// NameSpan records one named construct occurrence inside an expression: a
// `with`/`enforce` policy reference (Name as written, ID as resolved) or a
// `mu` binder (Name is the variable, ID empty).
type NameSpan struct {
	Name string
	ID   string
	Span Span
}

// FramingSpan records one framing scope in source: the resolved policy
// identifier, the span of the token that opens the scope (the policy name
// of an `enforce` or `with` clause) and the span of the `}` that closes
// it. Witnesses use it to anchor framing labels ([_φ / _]φ, open/close) at
// the framing itself rather than at the declaration head.
type FramingSpan struct {
	ID    string
	Open  Span
	Close Span
}

// ExprSpans is the per-declaration side table of positions inside one
// expression. Expressions themselves are canonicalised (internal/hexpr
// rebuilds and re-sorts terms), so positions cannot live on the nodes;
// instead the parser records them here, keyed by the stable handles lint
// diagnostics need: request identifiers, policy references and recursion
// binders.
type ExprSpans struct {
	// Opens maps each request identifier to the span of its first `open`.
	Opens map[string]Span
	// Policies are the `with` and `enforce` policy references, in source
	// order.
	Policies []NameSpan
	// Enforces are the `enforce` references only (a subset of Policies).
	Enforces []NameSpan
	// Mus are the `mu` binders, in source order.
	Mus []NameSpan
	// Framings are the framing scopes (`enforce φ { … }` and
	// `open r with φ { … }`), in source order of their opening token.
	Framings []FramingSpan
	// Events maps each event occurrence to its name-token spans, in source
	// order, keyed by the event's canonical rendering (hexpr.Event.String).
	// Bare identifiers and channel actions (a?/a!) are recorded too (under
	// their name), since a variable-vs-0-ary-event reading is only resolved
	// later; witness anchoring only looks up keys it knows denote events or
	// channels.
	Events map[string][]Span
}

func newExprSpans() *ExprSpans {
	return &ExprSpans{Opens: map[string]Span{}, Events: map[string][]Span{}}
}

// EventSpan returns the span of the first occurrence of the event with the
// given canonical rendering, or a zero span when unknown (e.g. the side
// table predates event tracking or the event arose from rewriting).
func (es *ExprSpans) EventSpan(key string) Span {
	if es == nil {
		return Span{}
	}
	if spans := es.Events[key]; len(spans) > 0 {
		return spans[0]
	}
	return Span{}
}

// FramingSpan returns the recorded scope of the first framing of the given
// resolved policy identifier, or a zero-valued record when unknown.
func (es *ExprSpans) FramingSpan(id string) FramingSpan {
	if es == nil {
		return FramingSpan{}
	}
	for _, fs := range es.Framings {
		if fs.ID == id {
			return fs
		}
	}
	return FramingSpan{}
}

// SpanTable is the whole-file side table of source positions, populated by
// ParseFile alongside the declarations themselves. Declaration spans cover
// the name token of the declaration.
type SpanTable struct {
	// Policies, Instances and Services map declaration names to the span
	// of the declaring name token.
	Policies  map[string]Span
	Instances map[string]Span
	Services  map[string]Span
	// Clients holds the name-token span of each client, parallel to
	// File.Clients (duplicate names make a name-keyed map lossy).
	Clients []Span
	// PlanTargets holds, per client, the span of each plan target
	// (the service token of "r -> loc"), keyed by request identifier.
	PlanTargets []map[string]Span
	// ServiceExprs and ClientExprs hold the per-expression side tables;
	// ClientExprs is parallel to File.Clients.
	ServiceExprs map[string]*ExprSpans
	ClientExprs  []*ExprSpans
}

func newSpanTable() *SpanTable {
	return &SpanTable{
		Policies:     map[string]Span{},
		Instances:    map[string]Span{},
		Services:     map[string]Span{},
		ServiceExprs: map[string]*ExprSpans{},
	}
}

// Issue is a declaration-level problem found while parsing leniently:
// a redeclaration, an ill-formed expression, or a bad policy instantiation.
// ParseFileLenient records issues and carries on where ParseFile stops.
type Issue struct {
	// Span anchors the issue, normally at the declaration's name token.
	Span Span
	// DeclKind is "policy", "instance", "service" or "client".
	DeclKind string
	// Name is the declared name.
	Name string
	// Err is the underlying error; for ill-formed expressions it is a
	// *hexpr.CheckError.
	Err error
	// Exprs is the expression side table of the offending declaration,
	// when one was parsed (nil otherwise).
	Exprs *ExprSpans
}

func (is Issue) Error() string {
	return fmt.Sprintf("%s: %s %s: %v", is.Span, is.DeclKind, is.Name, is.Err)
}
