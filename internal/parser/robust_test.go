package parser_test

import (
	"math/rand"
	"strings"
	"testing"

	"susc/internal/parser"
)

// mutate returns src with a random edit: deletion, duplication or
// substitution of a random chunk.
func mutate(rnd *rand.Rand, src string) string {
	if len(src) == 0 {
		return src
	}
	i := rnd.Intn(len(src))
	j := i + 1 + rnd.Intn(10)
	if j > len(src) {
		j = len(src)
	}
	switch rnd.Intn(3) {
	case 0: // delete
		return src[:i] + src[j:]
	case 1: // duplicate
		return src[:j] + src[i:j] + src[j:]
	default: // substitute
		garbage := []string{"(", ")", "{", "}", "(+)", "->", "mu ", "open ", ";;", "?", "!", "=>", "-[", "]->"}
		return src[:i] + garbage[rnd.Intn(len(garbage))] + src[j:]
	}
}

// TestParserNeverPanics hammers the three parsers with mutations of valid
// sources and raw noise: errors are fine, panics are not.
func TestParserNeverPanics(t *testing.T) {
	rnd := rand.New(rand.NewSource(101))
	exprSeed := "mu h . a? . enforce phi { sgn(1) . open r1 with phi { b! . (c? + d?) } } . h"
	lamSeed := "rec f(x: unit -[ a() ]-> unit): unit . select { a => f x | b => fire e(1); () }"
	fileSeed := hotelSource
	run := func(name string, parse func(string) error, seed string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s panicked: %v", name, r)
			}
		}()
		src := seed
		for i := 0; i < 3000; i++ {
			_ = parse(src) // errors expected, panics not
			if i%5 == 0 {
				src = seed // restart from the seed regularly
			}
			src = mutate(rnd, src)
		}
		// raw noise
		for i := 0; i < 500; i++ {
			n := rnd.Intn(40)
			b := make([]byte, n)
			for j := range b {
				b[j] = byte(rnd.Intn(128))
			}
			_ = parse(string(b))
		}
	}
	run("ParseExpr", func(s string) error { _, err := parser.ParseExpr(s); return err }, exprSeed)
	run("ParseLambda", func(s string) error { _, err := parser.ParseLambda(s); return err }, lamSeed)
	run("ParseFile", func(s string) error { _, err := parser.ParseFile(s); return err }, fileSeed)
}

// TestParserErrorsNeverEmpty: every parse failure carries a message and a
// position.
func TestParserErrorsNeverEmpty(t *testing.T) {
	rnd := rand.New(rand.NewSource(102))
	src := "service x = a? . b!;"
	for i := 0; i < 500; i++ {
		src = mutate(rnd, src)
		_, err := parser.ParseFile(src)
		if err == nil {
			continue
		}
		if strings.TrimSpace(err.Error()) == "" {
			t.Fatalf("empty error message for %q", src)
		}
	}
}
