package parser

import (
	"fmt"
	"sort"
	"strings"

	"susc/internal/hexpr"
	"susc/internal/policy"
)

// Format renders a parsed file back to canonical surface syntax. The
// result re-parses to an equivalent file (same automata, same instance
// identifiers, same expressions up to the canonical congruence); edge
// guard variables are renamed positionally (x0, x1, …).
func Format(f *File) string {
	aliases := map[hexpr.PolicyID]string{}
	for alias, id := range f.Instances {
		aliases[id] = alias
	}
	name := func(id hexpr.PolicyID) string {
		if a, ok := aliases[id]; ok {
			return a
		}
		return string(id)
	}
	render := func(e hexpr.Expr) string { return hexpr.PrettyWith(e, name) }
	var b strings.Builder
	for _, name := range f.PolicyOrder {
		formatPolicy(&b, f.Automata[name])
		b.WriteString("\n")
	}
	for _, d := range f.InstanceOrder {
		formatInstance(&b, f.Automata[d.Template], d)
	}
	if len(f.InstanceOrder) > 0 {
		b.WriteString("\n")
	}
	for _, loc := range f.ServiceOrder {
		fmt.Fprintf(&b, "service %s = %s;\n", loc, render(f.Repo[loc]))
	}
	if len(f.ServiceOrder) > 0 {
		b.WriteString("\n")
	}
	for _, c := range f.Clients {
		b.WriteString("client ")
		b.WriteString(c.Name)
		b.WriteString(" at ")
		b.WriteString(string(c.Loc))
		if c.Plan != nil {
			b.WriteString(" plan { ")
			reqs := make([]string, 0, len(c.Plan))
			for r := range c.Plan {
				reqs = append(reqs, string(r))
			}
			sort.Strings(reqs)
			for i, r := range reqs {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s -> %s", r, c.Plan[hexpr.RequestID(r)])
			}
			b.WriteString(" }")
		}
		fmt.Fprintf(&b, " = %s;\n", render(c.Expr))
	}
	return b.String()
}

func formatPolicy(b *strings.Builder, a *policy.Automaton) {
	fmt.Fprintf(b, "policy %s(", a.Name)
	for i, p := range a.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		kind := "set"
		if p.Kind == policy.IntParam {
			kind = "int"
		}
		fmt.Fprintf(b, "%s %s", p.Name, kind)
	}
	b.WriteString(") {\n")
	fmt.Fprintf(b, "  states %s;\n", strings.Join(a.States, " "))
	fmt.Fprintf(b, "  start %s;\n", a.Start)
	if len(a.Finals) > 0 {
		fmt.Fprintf(b, "  final %s;\n", strings.Join(a.Finals, " "))
	}
	for _, e := range a.Edges {
		fmt.Fprintf(b, "  edge %s -> %s on %s", e.From, e.To, e.EventName)
		if len(e.Guards) > 0 {
			vars := make([]string, len(e.Guards))
			for i := range e.Guards {
				vars[i] = fmt.Sprintf("x%d", i)
			}
			fmt.Fprintf(b, "(%s)", strings.Join(vars, ", "))
			var conds []string
			for i, g := range e.Guards {
				if c := guardText(vars[i], g); c != "" {
					conds = append(conds, c)
				}
			}
			if len(conds) > 0 {
				fmt.Fprintf(b, " when %s", strings.Join(conds, ", "))
			}
		}
		b.WriteString(";\n")
	}
	b.WriteString("}\n")
}

func guardText(v string, g policy.Guard) string {
	switch g.Kind {
	case policy.Any:
		return ""
	case policy.InSet:
		return fmt.Sprintf("%s in %s", v, g.Param)
	case policy.NotInSet:
		return fmt.Sprintf("%s notin %s", v, g.Param)
	case policy.LE:
		return fmt.Sprintf("%s <= %s", v, g.Param)
	case policy.LT:
		return fmt.Sprintf("%s < %s", v, g.Param)
	case policy.GE:
		return fmt.Sprintf("%s >= %s", v, g.Param)
	case policy.GT:
		return fmt.Sprintf("%s > %s", v, g.Param)
	case policy.EqConst:
		return fmt.Sprintf("%s == %s", v, g.Const)
	case policy.NeConst:
		return fmt.Sprintf("%s != %s", v, g.Const)
	}
	return ""
}

func formatInstance(b *strings.Builder, tmpl *policy.Automaton, d InstanceDecl) {
	fmt.Fprintf(b, "instance %s = %s(", d.Alias, d.Template)
	for i, p := range tmpl.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		switch p.Kind {
		case policy.SetParam:
			vals := d.Binding.Sets[p.Name]
			strs := make([]string, len(vals))
			for j, v := range vals {
				strs[j] = v.String()
			}
			fmt.Fprintf(b, "%s = {%s}", p.Name, strings.Join(strs, ", "))
		case policy.IntParam:
			fmt.Fprintf(b, "%s = %d", p.Name, d.Binding.Ints[p.Name])
		}
	}
	b.WriteString(");\n")
}
