package parser

import (
	"errors"
	"fmt"

	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/policy"
)

// ClientDecl is a parsed client declaration.
type ClientDecl struct {
	Name string
	Loc  hexpr.Location
	Plan network.Plan
	Expr hexpr.Expr
}

// InstanceDecl records an `instance` declaration with its binding, so
// files can be formatted back to source.
type InstanceDecl struct {
	Alias    string
	Template string
	Binding  policy.Binding
	ID       hexpr.PolicyID
}

// File is a parsed source file: policy templates, instantiated policies
// (with their alias table), the service repository and the clients.
type File struct {
	// Automata are the policy templates by name.
	Automata map[string]*policy.Automaton
	// Instances maps instance aliases to their canonical identifiers.
	Instances map[string]hexpr.PolicyID
	// Table registers every instantiated policy.
	Table *policy.Table
	// Repo holds the declared services.
	Repo network.Repository
	// Clients in declaration order.
	Clients []ClientDecl

	// Declaration order, for formatting.
	PolicyOrder   []string
	InstanceOrder []InstanceDecl
	ServiceOrder  []hexpr.Location

	// Spans is the source-position side table of every declaration (and
	// the request/policy/mu constructs inside expressions), for positioned
	// diagnostics. Always populated by ParseFile and ParseFileLenient.
	Spans *SpanTable
}

// Client returns the declared client with the given name.
func (f *File) Client(name string) (ClientDecl, error) {
	for _, c := range f.Clients {
		if c.Name == name {
			return c, nil
		}
	}
	return ClientDecl{}, fmt.Errorf("parser: no client %q", name)
}

// ErrRedeclared tags redeclaration issues, so tools inspecting lenient
// parse Issues can recognise them with errors.Is.
var ErrRedeclared = errors.New("redeclared")

// ParseFile parses a full source file. Any error — syntactic or semantic
// (redeclaration, ill-formed expression, bad instantiation) — aborts the
// parse.
func ParseFile(src string) (*File, error) {
	f, _, err := parseFile(src, false)
	return f, err
}

// ParseFileLenient parses a full source file, recovering from semantic
// declaration-level problems: redeclarations, ill-formed expressions and
// bad policy instantiations are recorded as Issues (and the offending
// declaration skipped) instead of aborting the parse. Syntax errors are
// still fatal. The linter builds on this to diagnose several problems in
// one run.
func ParseFileLenient(src string) (*File, []Issue, error) {
	return parseFile(src, true)
}

func parseFile(src string, lenient bool) (*File, []Issue, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks, aliases: map[string]hexpr.PolicyID{}, lenient: lenient, spans: newSpanTable()}
	f := &File{
		Automata:  map[string]*policy.Automaton{},
		Instances: p.aliases,
		Table:     policy.NewTable(),
		Repo:      network.Repository{},
		Spans:     p.spans,
	}
	for !p.at(tokEOF) {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.issues, p.errf(t, "expected a declaration, found %s", t)
		}
		switch t.text {
		case "policy":
			if err := p.policyDecl(f); err != nil {
				return nil, p.issues, err
			}
		case "instance":
			if err := p.instanceDecl(f); err != nil {
				return nil, p.issues, err
			}
		case "service":
			if err := p.serviceDecl(f); err != nil {
				return nil, p.issues, err
			}
		case "client":
			if err := p.clientDecl(f); err != nil {
				return nil, p.issues, err
			}
		default:
			return nil, p.issues, p.errf(t, "unknown declaration %q (want policy, instance, service or client)", t.text)
		}
	}
	return f, p.issues, nil
}

// semantic reports a declaration-level semantic problem: in lenient mode
// it is recorded as an Issue and parsing continues (the caller must skip
// registering the declaration); in strict mode it is a parse error.
func (p *parser) semantic(t token, declKind, name string, err error) error {
	if p.lenient {
		p.issues = append(p.issues, Issue{
			Span: t.span(), DeclKind: declKind, Name: name, Err: err, Exprs: p.cur,
		})
		return nil
	}
	return p.errf(t, "%v", err)
}

// MustParseFile is ParseFile panicking on error.
func MustParseFile(src string) *File {
	f, err := ParseFile(src)
	if err != nil {
		panic(err)
	}
	return f
}

// policyDecl := 'policy' ident '(' [ident kind (',' ident kind)*] ')'
// '{' policyItem* '}'
func (p *parser) policyDecl(f *File) error {
	p.next() // policy
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	a := &policy.Automaton{Name: name.text}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	for !p.at(tokRParen) {
		if len(a.Params) > 0 {
			if _, err := p.expect(tokComma); err != nil {
				return err
			}
		}
		pname, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		kind, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		var k policy.ParamKind
		switch kind.text {
		case "set":
			k = policy.SetParam
		case "int":
			k = policy.IntParam
		default:
			return p.errf(kind, "parameter kind must be 'set' or 'int', found %q", kind.text)
		}
		a.Params = append(a.Params, policy.Param{Name: pname.text, Kind: k})
	}
	p.next() // ')'
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for !p.at(tokRBrace) {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		switch kw.text {
		case "states":
			for p.at(tokIdent) {
				a.States = append(a.States, p.next().text)
			}
		case "start":
			s, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			a.Start = s.text
		case "final":
			for p.at(tokIdent) {
				a.Finals = append(a.Finals, p.next().text)
			}
		case "edge":
			e, err := p.edgeItem()
			if err != nil {
				return err
			}
			a.Edges = append(a.Edges, e)
		default:
			return p.errf(kw, "unknown policy item %q (want states, start, final or edge)", kw.text)
		}
		if _, err := p.expect(tokSemi); err != nil {
			return err
		}
	}
	p.next() // '}'
	if _, ok := f.Automata[name.text]; ok {
		return p.semantic(name, "policy", name.text, fmt.Errorf("policy %q %w", name.text, ErrRedeclared))
	}
	if err := a.Validate(); err != nil {
		return p.semantic(name, "policy", name.text, err)
	}
	f.Automata[name.text] = a
	f.PolicyOrder = append(f.PolicyOrder, name.text)
	p.spans.Policies[name.text] = name.span()
	return nil
}

// edgeItem := from '->' to 'on' event '(' vars ')' ['when' cond (',' cond)*]
func (p *parser) edgeItem() (policy.Edge, error) {
	var e policy.Edge
	from, err := p.expect(tokIdent)
	if err != nil {
		return e, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return e, err
	}
	to, err := p.expect(tokIdent)
	if err != nil {
		return e, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return e, err
	}
	ev, err := p.expect(tokIdent)
	if err != nil {
		return e, err
	}
	e.From, e.To, e.EventName = from.text, to.text, ev.text
	// variable list
	vars := map[string]int{}
	if p.at(tokLParen) {
		p.next()
		for !p.at(tokRParen) {
			if len(vars) > 0 {
				if _, err := p.expect(tokComma); err != nil {
					return e, err
				}
			}
			v, err := p.expect(tokIdent)
			if err != nil {
				return e, err
			}
			if _, dup := vars[v.text]; dup {
				return e, p.errf(v, "duplicate variable %q", v.text)
			}
			vars[v.text] = len(vars)
			e.Guards = append(e.Guards, policy.GAny())
		}
		p.next() // ')'
	}
	// conditions
	if t := p.peek(); t.kind == tokIdent && t.text == "when" {
		p.next()
		for {
			if err := p.condItem(&e, vars); err != nil {
				return e, err
			}
			if !p.at(tokComma) {
				break
			}
			p.next()
		}
	}
	return e, nil
}

// condItem := var ('in'|'notin') param | var ('<='|'<'|'>='|'>') param |
// var ('=='|'!=') value
func (p *parser) condItem(e *policy.Edge, vars map[string]int) error {
	v, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	idx, ok := vars[v.text]
	if !ok {
		return p.errf(v, "unknown variable %q in guard", v.text)
	}
	if e.Guards[idx].Kind != policy.Any {
		return p.errf(v, "variable %q constrained twice", v.text)
	}
	t := p.next()
	switch {
	case t.kind == tokIdent && t.text == "in":
		param, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		e.Guards[idx] = policy.G(policy.InSet, param.text)
	case t.kind == tokIdent && t.text == "notin":
		param, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		e.Guards[idx] = policy.G(policy.NotInSet, param.text)
	case t.kind == tokLe, t.kind == tokLt, t.kind == tokGe, t.kind == tokGt:
		param, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		kind := map[tokenKind]policy.GuardKind{
			tokLe: policy.LE, tokLt: policy.LT, tokGe: policy.GE, tokGt: policy.GT,
		}[t.kind]
		e.Guards[idx] = policy.G(kind, param.text)
	case t.kind == tokEq:
		val, err := p.value()
		if err != nil {
			return err
		}
		e.Guards[idx] = policy.GEq(val)
	case t.kind == tokNe:
		val, err := p.value()
		if err != nil {
			return err
		}
		e.Guards[idx] = policy.GNe(val)
	default:
		return p.errf(t, "expected a guard operator, found %s", t)
	}
	return nil
}

// instanceDecl := 'instance' ident '=' ident '(' bindings ')' ';'
func (p *parser) instanceDecl(f *File) error {
	p.next() // instance
	alias, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return err
	}
	tmplTok, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	b := policy.Binding{Sets: map[string][]hexpr.Value{}, Ints: map[string]int{}}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	first := true
	for !p.at(tokRParen) {
		if !first {
			if _, err := p.expect(tokComma); err != nil {
				return err
			}
		}
		first = false
		pname, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return err
		}
		if p.at(tokLBrace) { // set literal
			p.next()
			var vals []hexpr.Value
			for !p.at(tokRBrace) {
				if len(vals) > 0 {
					if _, err := p.expect(tokComma); err != nil {
						return err
					}
				}
				v, err := p.value()
				if err != nil {
					return err
				}
				vals = append(vals, v)
			}
			p.next() // '}'
			b.Sets[pname.text] = vals
		} else {
			t, err := p.expect(tokInt)
			if err != nil {
				return err
			}
			n := 0
			fmt.Sscanf(t.text, "%d", &n)
			b.Ints[pname.text] = n
		}
	}
	p.next() // ')'
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if _, dup := f.Instances[alias.text]; dup {
		return p.semantic(alias, "instance", alias.text, fmt.Errorf("instance %q %w", alias.text, ErrRedeclared))
	}
	tmpl, ok := f.Automata[tmplTok.text]
	if !ok {
		return p.semantic(tmplTok, "instance", alias.text, fmt.Errorf("unknown policy %q", tmplTok.text))
	}
	in, err := tmpl.Instantiate(b)
	if err != nil {
		return p.semantic(alias, "instance", alias.text, err)
	}
	f.Instances[alias.text] = in.ID()
	f.Table.Add(in)
	f.InstanceOrder = append(f.InstanceOrder, InstanceDecl{
		Alias: alias.text, Template: tmplTok.text, Binding: b, ID: in.ID(),
	})
	p.spans.Instances[alias.text] = alias.span()
	return nil
}

// serviceDecl := 'service' ident '=' expr ';'
func (p *parser) serviceDecl(f *File) error {
	p.next() // service
	loc, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return err
	}
	p.cur = newExprSpans()
	defer func() { p.cur = nil }()
	e, err := p.expr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if _, dup := f.Repo[hexpr.Location(loc.text)]; dup {
		return p.semantic(loc, "service", loc.text, fmt.Errorf("service %q %w", loc.text, ErrRedeclared))
	}
	if err := hexpr.Check(e); err != nil {
		return p.semantic(loc, "service", loc.text, fmt.Errorf("service %s: %w", loc.text, err))
	}
	f.Repo[hexpr.Location(loc.text)] = e
	f.ServiceOrder = append(f.ServiceOrder, hexpr.Location(loc.text))
	p.spans.Services[loc.text] = loc.span()
	p.spans.ServiceExprs[loc.text] = p.cur
	return nil
}

// clientDecl := 'client' ident 'at' ident ['plan' '{' r '->' loc, ... '}']
// '=' expr ';'
func (p *parser) clientDecl(f *File) error {
	p.next() // client
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if err := p.expectKeyword("at"); err != nil {
		return err
	}
	loc, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	decl := ClientDecl{Name: name.text, Loc: hexpr.Location(loc.text)}
	planSpans := map[string]Span{}
	if t := p.peek(); t.kind == tokIdent && t.text == "plan" {
		p.next()
		if _, err := p.expect(tokLBrace); err != nil {
			return err
		}
		decl.Plan = network.Plan{}
		for !p.at(tokRBrace) {
			if len(decl.Plan) > 0 {
				if _, err := p.expect(tokComma); err != nil {
					return err
				}
			}
			req, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return err
			}
			to, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			decl.Plan[hexpr.RequestID(req.text)] = hexpr.Location(to.text)
			planSpans[req.text] = to.span()
		}
		p.next() // '}'
	}
	if _, err := p.expect(tokAssign); err != nil {
		return err
	}
	p.cur = newExprSpans()
	defer func() { p.cur = nil }()
	e, err := p.expr()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return err
	}
	if err := hexpr.Check(e); err != nil {
		return p.semantic(name, "client", name.text, fmt.Errorf("client %s: %w", name.text, err))
	}
	decl.Expr = e
	f.Clients = append(f.Clients, decl)
	p.spans.Clients = append(p.spans.Clients, name.span())
	p.spans.PlanTargets = append(p.spans.PlanTargets, planSpans)
	p.spans.ClientExprs = append(p.spans.ClientExprs, p.cur)
	return nil
}
