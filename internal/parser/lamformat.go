package parser

import (
	"fmt"
	"strings"

	"susc/internal/hexpr"
	"susc/internal/lambda"
)

// λ-printer contexts: where a bare form is allowed.
const (
	lamTop  = iota // binders (fun/rec/let) and sequencing allowed bare
	lamApp         // application heads: applications and atoms
	lamAtom        // application operands: atoms only
)

// FormatLambda renders a λ-term in the surface syntax of ParseLambda; for
// source terms the output re-parses to an equal term (property-tested).
// Policy identifiers print through name when non-nil (e.g. alias tables).
func FormatLambda(t lambda.Term, name func(hexpr.PolicyID) string) string {
	p := &lamPrinter{policyName: name}
	var b strings.Builder
	p.print(&b, t, lamTop)
	return b.String()
}

type lamPrinter struct {
	policyName func(hexpr.PolicyID) string
}

func (p *lamPrinter) policy(id hexpr.PolicyID) string {
	if p.policyName != nil {
		return p.policyName(id)
	}
	return string(id)
}

func (p *lamPrinter) print(b *strings.Builder, t lambda.Term, ctx int) {
	switch x := t.(type) {
	case lambda.Unit:
		b.WriteString("()")
	case lambda.IntLit:
		fmt.Fprintf(b, "%d", x.Value)
	case lambda.SymLit:
		b.WriteString("'")
		b.WriteString(x.Value)
	case lambda.Var:
		b.WriteString(x.Name)
	case lambda.Abs:
		if ctx > lamTop {
			b.WriteString("(")
			defer b.WriteString(")")
		}
		b.WriteString("fun ")
		b.WriteString(x.Param)
		b.WriteString(": ")
		p.printType(b, x.ParamType)
		b.WriteString(" . ")
		p.print(b, x.Body, lamTop)
	case lambda.RecFun:
		if ctx > lamTop {
			b.WriteString("(")
			defer b.WriteString(")")
		}
		b.WriteString("rec ")
		b.WriteString(x.Name)
		b.WriteString("(")
		b.WriteString(x.Param)
		b.WriteString(": ")
		p.printType(b, x.ParamType)
		b.WriteString("): ")
		p.printType(b, x.Result)
		b.WriteString(" . ")
		p.print(b, x.Body, lamTop)
	case lambda.App:
		if ctx > lamApp {
			b.WriteString("(")
			defer b.WriteString(")")
		}
		p.print(b, x.Fn, lamApp)
		b.WriteString(" ")
		p.print(b, x.Arg, lamAtom)
	case lambda.Fire:
		if ctx > lamApp {
			b.WriteString("(")
			defer b.WriteString(")")
		}
		b.WriteString("fire ")
		b.WriteString(x.Event.Name)
		b.WriteString("(")
		for i, a := range x.Event.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	case lambda.Seq:
		if ctx > lamTop {
			b.WriteString("(")
			defer b.WriteString(")")
		}
		p.print(b, x.First, lamApp)
		b.WriteString("; ")
		p.print(b, x.Then, lamTop)
	case lambda.Let:
		if ctx > lamTop {
			b.WriteString("(")
			defer b.WriteString(")")
		}
		b.WriteString("let ")
		b.WriteString(x.Name)
		b.WriteString(" = ")
		p.print(b, x.Bind, lamApp)
		b.WriteString(" in ")
		p.print(b, x.Body, lamTop)
	case lambda.Enforce:
		b.WriteString("enforce ")
		b.WriteString(p.policy(x.Policy))
		b.WriteString(" { ")
		p.print(b, x.Body, lamTop)
		b.WriteString(" }")
	case lambda.Request:
		b.WriteString("open ")
		b.WriteString(string(x.Req))
		if x.Policy != hexpr.NoPolicy {
			b.WriteString(" with ")
			b.WriteString(p.policy(x.Policy))
		}
		b.WriteString(" { ")
		p.print(b, x.Body, lamTop)
		b.WriteString(" }")
	case lambda.Select:
		p.printComm(b, "select", x.Branches)
	case lambda.Branch:
		p.printComm(b, "branch", x.Branches)
	}
}

func (p *lamPrinter) printComm(b *strings.Builder, kw string, bs []lambda.CommBranch) {
	b.WriteString(kw)
	b.WriteString(" { ")
	for i, br := range bs {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(br.Channel)
		b.WriteString(" => ")
		p.print(b, br.Body, lamTop)
	}
	b.WriteString(" }")
}

func (p *lamPrinter) printType(b *strings.Builder, ty lambda.Type) {
	switch t := ty.(type) {
	case lambda.UnitT:
		b.WriteString("unit")
	case lambda.IntT:
		b.WriteString("int")
	case lambda.SymT:
		b.WriteString("sym")
	case lambda.FunT:
		b.WriteString("(")
		p.printType(b, t.Param)
		b.WriteString(" -[ ")
		b.WriteString(hexpr.PrettyWith(t.Effect, p.policyName))
		b.WriteString(" ]-> ")
		p.printType(b, t.Result)
		b.WriteString(")")
	}
}
