package verify

import "encoding/json"

// reportJSON is the wire form of a Report.
type reportJSON struct {
	Verdict   string   `json:"verdict"`
	Policy    string   `json:"policy,omitempty"`
	Request   string   `json:"request,omitempty"`
	Witness   string   `json:"witness,omitempty"`
	Trace     []string `json:"trace,omitempty"`
	StuckTree string   `json:"stuckTree,omitempty"`
	States    int      `json:"states"`
	Reason    string   `json:"reason,omitempty"`
	Frontier  int      `json:"frontier,omitempty"`
}

// MarshalJSON renders the report for machine consumption (CI pipelines,
// the CLI's -json flag): the verdict as its string form, the trace as
// label strings.
func (r *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Verdict:   r.Verdict.String(),
		Policy:    string(r.Policy),
		Request:   string(r.Request),
		Witness:   r.Witness,
		StuckTree: r.StuckTree,
		States:    r.States,
		Reason:    r.Reason,
		Frontier:  r.Frontier,
	}
	out.Trace = r.traceLabels()
	return json.Marshal(out)
}
