// Package verify statically validates plans: it explores exhaustively the
// (finite) state space of a client running against the repository under a
// given plan, and reports whether any reachable computation violates a
// security policy or deadlocks on a missing communication. A plan passing
// this check is *valid* in the sense of §2/§5 of the paper: the network
// needs no run-time monitor.
//
// Finiteness. A configuration is abstracted to (session-tree key, monitor
// signature): expression residuals range over the finite LTS state spaces
// (guarded tail recursion), session nesting is bounded by the static
// structure, and the monitor signature ranges over policy-automaton state
// sets and bounded activation counts — so the exploration always
// terminates.
//
// Parallel components of a network never interact (they only interleave,
// each with its own history), so validating a vector of clients reduces to
// validating each client separately; CheckClients does exactly that.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"susc/internal/budget"
	"susc/internal/faultinject"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/policy"
	"susc/internal/ring"
	"susc/internal/store"
)

// Verdict classifies a plan.
type Verdict int

const (
	// Valid: every request compliant, no reachable security violation, no
	// reachable deadlock.
	Valid Verdict = iota
	// SecurityViolation: some computation would violate an active policy.
	SecurityViolation
	// NotCompliant: some request is bound to a service that is not
	// compliant with the request body — the service could commit to an
	// output the caller cannot receive. The synchronisation-based network
	// semantics is angelic and never exhibits this as a stuck run (§3), so
	// it is detected statically with the product automaton of Definition 5.
	NotCompliant
	// CommunicationDeadlock: some computation reaches a configuration that
	// is not terminated yet has no enabled move (unbound request, dangling
	// location, or a genuinely stuck interleaving).
	CommunicationDeadlock
	// UnboundedNesting: the planned service call graph is cyclic, so the
	// composed behaviour opens sessions to unbounded depth and exhaustive
	// verification is refused. The paper's framework likewise assumes
	// finitely nested compositions.
	UnboundedNesting
	// Unknown: the exploration stopped before exhausting the state space —
	// a state/edge budget ran out, a deadline passed, or the run was
	// cancelled. Unknown is sound by construction: Valid is only ever
	// claimed for fully explored spaces, and any counterexample verdict
	// reached before the cutoff is a real counterexample. Report.Reason
	// says why the exploration stopped, Report.Frontier how many
	// discovered states were still unexplored.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Valid:
		return "valid"
	case SecurityViolation:
		return "security-violation"
	case NotCompliant:
		return "not-compliant"
	case CommunicationDeadlock:
		return "communication-deadlock"
	case UnboundedNesting:
		return "unbounded-nesting"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Report is the result of validating one client under one plan.
type Report struct {
	Verdict Verdict
	// Policy is the violated policy (security verdicts only).
	Policy hexpr.PolicyID
	// Request and Witness describe the failing request (non-compliance
	// verdicts only).
	Request hexpr.RequestID
	Witness string
	// Trace drives the configuration to the offending state.
	Trace []network.TraceEntry
	// TraceLabels is the trace as rendered label strings. Freshly computed
	// reports leave it nil (labels derive from Trace on demand); reports
	// decoded from the persistent store carry only labels — every rendering
	// path goes through labels, so the two are indistinguishable in output.
	TraceLabels []string
	// StuckTree is the session tree of the deadlocked configuration
	// (deadlock verdicts only).
	StuckTree string
	// States is the number of distinct abstract states explored.
	States int
	// Reason explains why the exploration stopped early (Unknown
	// verdicts only): budget exhausted, deadline exceeded, cancelled, or
	// an internal error in the worker that owned this unit.
	Reason string
	// Frontier is the number of states discovered but not yet explored
	// at the cutoff (Unknown verdicts only).
	Frontier int
}

func (r *Report) String() string {
	switch r.Verdict {
	case Valid:
		return fmt.Sprintf("valid (%d states)", r.States)
	case SecurityViolation:
		return fmt.Sprintf("security violation of %s after %s (%d states)",
			r.Policy, strings.Join(r.traceLabels(), "·"), r.States)
	case NotCompliant:
		return fmt.Sprintf("request %s not compliant: %s", r.Request, r.Witness)
	case UnboundedNesting:
		return fmt.Sprintf("unbounded session nesting: %s", r.Witness)
	case Unknown:
		return fmt.Sprintf("unknown: %s (%d states explored, %d frontier)",
			r.Reason, r.States, r.Frontier)
	default:
		return fmt.Sprintf("deadlock at %s after %s (%d states)",
			r.StuckTree, strings.Join(r.traceLabels(), "·"), r.States)
	}
}

// traceLabels returns the rendered trace: the stored labels when present
// (store-decoded reports), otherwise derived from the live entries.
func (r *Report) traceLabels() []string {
	if r.TraceLabels != nil || len(r.Trace) == 0 {
		return r.TraceLabels
	}
	parts := make([]string, len(r.Trace))
	for i, e := range r.Trace {
		parts[i] = e.Label.String()
	}
	return parts
}

// MaxStates bounds the exploration.
const MaxStates = 1 << 20

// Options tunes plan validation.
type Options struct {
	// Capacities bounds the availability of the listed service locations
	// (the §5 extension): opening a session consumes a replica, closing
	// releases it. Locations absent from the map replicate unboundedly.
	// Exhausted capacity shows up as a communication deadlock when some
	// computation can strand an open on an unavailable service.
	Capacities map[hexpr.Location]int
	// Cache memoises compliance verdicts, product automata and one-step
	// transition sets across CheckPlan calls; plan synthesis shares one
	// cache over every candidate plan. Nil builds a private per-call cache
	// (stepping is still amortised across the states of the exploration).
	Cache *memo.Cache
	// Budget meters the exploration (nil = unbounded): every popped state
	// and built edge is charged, and exhaustion or cancellation stops the
	// search with a sound Unknown report instead of an error — verdicts
	// decided before the cutoff stand.
	Budget *budget.Budget
	// SkipDiskProbe disables the persistent-report tier for this call even
	// when the cache has a store attached. Callers that already probed the
	// store themselves (the incremental plan assessor pre-probes every
	// candidate) set it so a recompute is not double-counted as a second
	// miss — the compliance and LTS tiers underneath stay active.
	SkipDiskProbe bool
}

// unknownReport closes an exploration cut off by the budget: the verdict
// is Unknown (never Valid — the space was not exhausted), the reason the
// budget's, the frontier the number of discovered-but-unexplored states.
func unknownReport(report *Report, e *budget.ExhaustedError, frontier int) *Report {
	report.Verdict = Unknown
	report.Reason = e.Error()
	report.Frontier = frontier
	return report
}

// CheckPlan validates the plan for one client against the repository,
// following the §5 recipe: (a) every request occurring in the composed
// service — in the client or transitively in the services the plan selects
// — must be bound to a compliant service (product automaton, Theorem 1);
// (b) the exhaustive exploration of the network under the plan must reach
// no security violation and no stuck configuration. It returns a Valid
// report when both hold, and a counterexample report otherwise.
func CheckPlan(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, plan network.Plan) (*Report, error) {
	return CheckPlanOpts(repo, table, loc, client, plan, Options{})
}

// StaticCheck runs the exploration-free prechecks of plan validation: it
// refuses cyclic compositions (their session nesting is unbounded and the
// state space infinite) and checks every bound request of the composed
// service for compliance. It returns a counterexample report when a check
// fails and nil when the plan passes — ready for the exhaustive
// exploration. CheckPlanOpts and the fused synthesis engine
// (internal/plans) share it, so static verdicts and witnesses are
// identical across engines by construction.
func StaticCheck(repo network.Repository, client hexpr.Expr,
	plan network.Plan, cache *memo.Cache) (*Report, error) {

	if cyc := CallCycle(repo, client, plan); cyc != nil {
		return &Report{
			Verdict: UnboundedNesting,
			Witness: fmt.Sprintf("cyclic service calls: %s", LocPath(cyc)),
		}, nil
	}

	// Per-request compliance over the composed service; verdicts (and
	// their witnesses) are memoised per distinct (body, service) pair, so
	// assessing many plans over the same repository decides each pair once.
	reqs, err := PlannedRequests(repo, client, plan)
	if err != nil {
		return nil, err
	}
	for _, pr := range reqs {
		if !pr.Bound {
			continue // the exploration reports the deadlock with a trace
		}
		ok, witness, err := cache.Compliance(pr.Body, pr.Service)
		if err != nil {
			return nil, err
		}
		if !ok {
			return &Report{
				Verdict: NotCompliant,
				Request: pr.Req,
				Witness: fmt.Sprintf("service at %s: %s", pr.Loc, witness),
			}, nil
		}
	}
	return nil, nil
}

// CheckPlanOpts is CheckPlan with extension options.
func CheckPlanOpts(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, plan network.Plan, opts Options) (*Report, error) {

	cache := opts.Cache
	if cache == nil {
		cache = memo.New()
	}

	// Persistent tier: probe the store under the content hash of the
	// verdict's dependency cone; on a miss compute under singleflight (so
	// concurrent workers explore a cone once) and write the report back.
	// Unknown reports — budget cutoffs, cancellations — are never
	// persisted: they describe this run's limits, not the cone's content.
	if disk := cache.Disk(); disk != nil && !opts.SkipDiskProbe {
		sum, err := PlanKey(repo, table, loc, client, plan, opts.Capacities)
		if err != nil {
			return nil, err
		}
		if raw, ok := disk.Get(store.KindPlanReport, sum); ok {
			if r, err := DecodeReport(raw); err == nil {
				return r, nil
			}
		}
		got, err := disk.Once(store.KindPlanReport, sum, func() (any, error) {
			if raw, ok := disk.Peek(store.KindPlanReport, sum); ok {
				if r, err := DecodeReport(raw); err == nil {
					return r, nil
				}
			}
			inner := opts
			inner.Cache = cache
			inner.SkipDiskProbe = true
			r, err := CheckPlanOpts(repo, table, loc, client, plan, inner)
			if err != nil {
				return nil, err
			}
			if r.Verdict != Unknown {
				enc, eerr := EncodeReport(r)
				if eerr != nil {
					return nil, eerr
				}
				if perr := disk.Put(store.KindPlanReport, sum, enc); perr != nil {
					return nil, perr
				}
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		return got.(*Report), nil
	}

	// (a) the static prechecks: cyclic composition, per-request compliance.
	if r, err := StaticCheck(repo, client, plan, cache); err != nil {
		return nil, err
	} else if r != nil {
		return r, nil
	}

	// (b) exhaustive exploration for security and structural deadlocks;
	// limited locations are tracked in a dense availability vector.
	var limited []hexpr.Location
	for l := range opts.Capacities {
		limited = append(limited, l)
	}
	sort.Slice(limited, func(i, j int) bool { return limited[i] < limited[j] })
	limitedIdx := map[hexpr.Location]int{}
	initialAvail := make([]int, len(limited))
	for i, l := range limited {
		limitedIdx[l] = i
		initialAvail[i] = opts.Capacities[l]
	}

	type state struct {
		tree  network.Node
		mon   *history.Monitor
		avail []int
		trace *traceNode
	}
	start := state{
		tree:  network.Leaf{Loc: loc, Expr: client},
		mon:   history.NewMonitor(table),
		avail: initialAvail,
	}
	// Visited states are keyed by a small comparable struct of interned
	// IDs — tree shape and monitor signature are interned once per state
	// instead of concatenated into an O(size) string per lookup.
	tab := cache.Interner()
	key := func(s state) stateKey {
		return stateKey{
			tree:  InternTree(tab, s.tree),
			sig:   tab.Key(s.mon.Signature()),
			avail: packAvail(s.avail),
		}
	}
	// The queue is a ring buffer: `queue = queue[1:]` would pin the whole
	// backing array — every state ever enqueued — until the exploration
	// ends, while the ring reuses dequeued slots and keeps only the
	// frontier live.
	seen := map[stateKey]bool{key(start): true}
	var queue ring.Queue[state]
	queue.Push(start)
	report := &Report{}
	for queue.Len() > 0 {
		report.States++
		if report.States > MaxStates {
			return nil, fmt.Errorf("verify: exploration exceeds %d states", MaxStates)
		}
		if e := opts.Budget.ConsumeStates(1); e != nil {
			report.States--
			return unknownReport(report, e, queue.Len()), nil
		}
		s := queue.Pop()
		if faultinject.Enabled() {
			faultinject.Fire(faultinject.VerifyState, s.tree.Key())
		}
		all := network.TreeMovesStep(s.tree, plan, repo, cache.Steps)
		moves := all[:0:0]
		for _, m := range all {
			if m.OpenLoc != "" {
				if i, ok := limitedIdx[m.OpenLoc]; ok && s.avail[i] == 0 {
					continue // no replica available: not enabled
				}
			}
			moves = append(moves, m)
		}
		if e := opts.Budget.ConsumeEdges(int64(len(moves))); e != nil {
			return unknownReport(report, e, queue.Len()), nil
		}
		if len(moves) == 0 && !network.Done(s.tree) {
			report.Verdict = CommunicationDeadlock
			report.Trace = s.trace.materialize()
			report.StuckTree = s.tree.Key()
			return report, nil
		}
		for _, m := range moves {
			// Item-less moves (synchronisations) leave the monitor
			// untouched; sharing it avoids a map copy per move. Monitors
			// are only ever advanced on fresh snapshots, so sharing is
			// safe.
			mon := s.mon
			bad := hexpr.NoPolicy
			if len(m.Items) > 0 {
				mon = s.mon.Snapshot()
				for _, it := range m.Items {
					if err := mon.Append(it); err != nil {
						if verr, ok := err.(*history.ViolationError); ok {
							bad = verr.Policy
						} else {
							return nil, fmt.Errorf("verify: unexpected monitor error: %w", err)
						}
						break
					}
				}
			}
			entry := network.TraceEntry{Comp: 0, Label: m.Label}
			if bad != hexpr.NoPolicy {
				report.Verdict = SecurityViolation
				report.Policy = bad
				report.Trace = (&traceNode{prev: s.trace, entry: entry}).materialize()
				return report, nil
			}
			avail := s.avail
			if len(limited) > 0 && (m.OpenLoc != "" || m.ReleaseLoc != "") {
				avail = append([]int(nil), s.avail...)
				if i, ok := limitedIdx[m.OpenLoc]; ok && m.OpenLoc != "" {
					avail[i]--
				}
				if i, ok := limitedIdx[m.ReleaseLoc]; ok && m.ReleaseLoc != "" {
					avail[i]++
				}
			}
			next := state{
				tree:  m.Tree,
				mon:   mon,
				avail: avail,
				trace: &traceNode{prev: s.trace, entry: entry},
			}
			k := key(next)
			if !seen[k] {
				seen[k] = true
				queue.Push(next)
			}
		}
	}
	report.Verdict = Valid
	return report, nil
}

// ValidPlan reports whether the plan is valid for the client.
func ValidPlan(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, plan network.Plan) (bool, error) {
	r, err := CheckPlan(repo, table, loc, client, plan)
	if err != nil {
		return false, err
	}
	return r.Verdict == Valid, nil
}

// ClientSpec pairs a client with its plan for vector validation.
type ClientSpec struct {
	Loc    hexpr.Location
	Client hexpr.Expr
	Plan   network.Plan
}

// CheckClients validates a vector of clients (one plan each). Components
// of a network never interact, so the vector is valid iff every component
// is; the reports are returned in order. One shared cache memoises
// compliance and stepping across all the clients.
func CheckClients(repo network.Repository, table *policy.Table, clients []ClientSpec) ([]*Report, bool, error) {
	opts := Options{Cache: memo.New()}
	reports := make([]*Report, len(clients))
	all := true
	for i, c := range clients {
		r, err := CheckPlanOpts(repo, table, c.Loc, c.Client, c.Plan, opts)
		if err != nil {
			return nil, false, err
		}
		reports[i] = r
		if r.Verdict != Valid {
			all = false
		}
	}
	return reports, all, nil
}
