// Package verify statically validates plans: it explores exhaustively the
// (finite) state space of a client running against the repository under a
// given plan, and reports whether any reachable computation violates a
// security policy or deadlocks on a missing communication. A plan passing
// this check is *valid* in the sense of §2/§5 of the paper: the network
// needs no run-time monitor.
//
// Finiteness. A configuration is abstracted to (session-tree key, monitor
// signature): expression residuals range over the finite LTS state spaces
// (guarded tail recursion), session nesting is bounded by the static
// structure, and the monitor signature ranges over policy-automaton state
// sets and bounded activation counts — so the exploration always
// terminates.
//
// Parallel components of a network never interact (they only interleave,
// each with its own history), so validating a vector of clients reduces to
// validating each client separately; CheckClients does exactly that.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"susc/internal/compliance"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/network"
	"susc/internal/policy"
)

// Verdict classifies a plan.
type Verdict int

const (
	// Valid: every request compliant, no reachable security violation, no
	// reachable deadlock.
	Valid Verdict = iota
	// SecurityViolation: some computation would violate an active policy.
	SecurityViolation
	// NotCompliant: some request is bound to a service that is not
	// compliant with the request body — the service could commit to an
	// output the caller cannot receive. The synchronisation-based network
	// semantics is angelic and never exhibits this as a stuck run (§3), so
	// it is detected statically with the product automaton of Definition 5.
	NotCompliant
	// CommunicationDeadlock: some computation reaches a configuration that
	// is not terminated yet has no enabled move (unbound request, dangling
	// location, or a genuinely stuck interleaving).
	CommunicationDeadlock
	// UnboundedNesting: the planned service call graph is cyclic, so the
	// composed behaviour opens sessions to unbounded depth and exhaustive
	// verification is refused. The paper's framework likewise assumes
	// finitely nested compositions.
	UnboundedNesting
)

func (v Verdict) String() string {
	switch v {
	case Valid:
		return "valid"
	case SecurityViolation:
		return "security-violation"
	case NotCompliant:
		return "not-compliant"
	case CommunicationDeadlock:
		return "communication-deadlock"
	case UnboundedNesting:
		return "unbounded-nesting"
	}
	return "unknown"
}

// Report is the result of validating one client under one plan.
type Report struct {
	Verdict Verdict
	// Policy is the violated policy (security verdicts only).
	Policy hexpr.PolicyID
	// Request and Witness describe the failing request (non-compliance
	// verdicts only).
	Request hexpr.RequestID
	Witness string
	// Trace drives the configuration to the offending state.
	Trace []network.TraceEntry
	// StuckTree is the session tree of the deadlocked configuration
	// (deadlock verdicts only).
	StuckTree string
	// States is the number of distinct abstract states explored.
	States int
}

func (r *Report) String() string {
	switch r.Verdict {
	case Valid:
		return fmt.Sprintf("valid (%d states)", r.States)
	case SecurityViolation:
		return fmt.Sprintf("security violation of %s after %s (%d states)",
			r.Policy, traceString(r.Trace), r.States)
	case NotCompliant:
		return fmt.Sprintf("request %s not compliant: %s", r.Request, r.Witness)
	case UnboundedNesting:
		return fmt.Sprintf("unbounded session nesting: %s", r.Witness)
	default:
		return fmt.Sprintf("deadlock at %s after %s (%d states)",
			r.StuckTree, traceString(r.Trace), r.States)
	}
}

func traceString(tr []network.TraceEntry) string {
	parts := make([]string, len(tr))
	for i, e := range tr {
		parts[i] = e.Label.String()
	}
	return strings.Join(parts, "·")
}

// MaxStates bounds the exploration.
const MaxStates = 1 << 20

// Options tunes plan validation.
type Options struct {
	// Capacities bounds the availability of the listed service locations
	// (the §5 extension): opening a session consumes a replica, closing
	// releases it. Locations absent from the map replicate unboundedly.
	// Exhausted capacity shows up as a communication deadlock when some
	// computation can strand an open on an unavailable service.
	Capacities map[hexpr.Location]int
}

// CheckPlan validates the plan for one client against the repository,
// following the §5 recipe: (a) every request occurring in the composed
// service — in the client or transitively in the services the plan selects
// — must be bound to a compliant service (product automaton, Theorem 1);
// (b) the exhaustive exploration of the network under the plan must reach
// no security violation and no stuck configuration. It returns a Valid
// report when both hold, and a counterexample report otherwise.
func CheckPlan(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, plan network.Plan) (*Report, error) {
	return CheckPlanOpts(repo, table, loc, client, plan, Options{})
}

// CheckPlanOpts is CheckPlan with extension options.
func CheckPlanOpts(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, plan network.Plan, opts Options) (*Report, error) {

	// Refuse cyclic compositions: their session nesting is unbounded and
	// the state space infinite.
	if cyc := CallCycle(repo, client, plan); cyc != nil {
		return &Report{
			Verdict: UnboundedNesting,
			Witness: fmt.Sprintf("cyclic service calls: %s", locPath(cyc)),
		}, nil
	}

	// (a) per-request compliance over the composed service
	reqs, err := PlannedRequests(repo, client, plan)
	if err != nil {
		return nil, err
	}
	for _, pr := range reqs {
		if !pr.Bound {
			continue // the exploration reports the deadlock with a trace
		}
		p, err := compliance.NewProduct(pr.Body, pr.Service)
		if err != nil {
			return nil, err
		}
		if w := p.FindWitness(); w != nil {
			return &Report{
				Verdict: NotCompliant,
				Request: pr.Req,
				Witness: fmt.Sprintf("service at %s: %s", pr.Loc, w),
			}, nil
		}
	}

	// (b) exhaustive exploration for security and structural deadlocks;
	// limited locations are tracked in a dense availability vector.
	var limited []hexpr.Location
	for l := range opts.Capacities {
		limited = append(limited, l)
	}
	sort.Slice(limited, func(i, j int) bool { return limited[i] < limited[j] })
	limitedIdx := map[hexpr.Location]int{}
	initialAvail := make([]int, len(limited))
	for i, l := range limited {
		limitedIdx[l] = i
		initialAvail[i] = opts.Capacities[l]
	}

	type state struct {
		tree  network.Node
		mon   *history.Monitor
		avail []int
		trace []network.TraceEntry
	}
	start := state{
		tree:  network.Leaf{Loc: loc, Expr: client},
		mon:   history.NewMonitor(table),
		avail: initialAvail,
	}
	key := func(s state) string {
		k := s.tree.Key() + "\x00" + s.mon.Signature()
		for _, n := range s.avail {
			k += fmt.Sprintf("\x00%d", n)
		}
		return k
	}
	seen := map[string]bool{key(start): true}
	queue := []state{start}
	report := &Report{}
	for len(queue) > 0 {
		report.States++
		if report.States > MaxStates {
			return nil, fmt.Errorf("verify: exploration exceeds %d states", MaxStates)
		}
		s := queue[0]
		queue = queue[1:]
		all := network.TreeMoves(s.tree, plan, repo)
		moves := all[:0:0]
		for _, m := range all {
			if m.OpenLoc != "" {
				if i, ok := limitedIdx[m.OpenLoc]; ok && s.avail[i] == 0 {
					continue // no replica available: not enabled
				}
			}
			moves = append(moves, m)
		}
		if len(moves) == 0 && !network.Done(s.tree) {
			report.Verdict = CommunicationDeadlock
			report.Trace = s.trace
			report.StuckTree = s.tree.Key()
			return report, nil
		}
		for _, m := range moves {
			mon := s.mon.Snapshot()
			bad := hexpr.NoPolicy
			for _, it := range m.Items {
				if err := mon.Append(it); err != nil {
					if verr, ok := err.(*history.ViolationError); ok {
						bad = verr.Policy
					} else {
						return nil, fmt.Errorf("verify: unexpected monitor error: %w", err)
					}
					break
				}
			}
			entry := network.TraceEntry{Comp: 0, Label: m.Label}
			if bad != hexpr.NoPolicy {
				report.Verdict = SecurityViolation
				report.Policy = bad
				report.Trace = append(append([]network.TraceEntry{}, s.trace...), entry)
				return report, nil
			}
			avail := s.avail
			if len(limited) > 0 && (m.OpenLoc != "" || m.ReleaseLoc != "") {
				avail = append([]int(nil), s.avail...)
				if i, ok := limitedIdx[m.OpenLoc]; ok && m.OpenLoc != "" {
					avail[i]--
				}
				if i, ok := limitedIdx[m.ReleaseLoc]; ok && m.ReleaseLoc != "" {
					avail[i]++
				}
			}
			next := state{
				tree:  m.Tree,
				mon:   mon,
				avail: avail,
				trace: append(append([]network.TraceEntry{}, s.trace...), entry),
			}
			k := key(next)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	report.Verdict = Valid
	return report, nil
}

// ValidPlan reports whether the plan is valid for the client.
func ValidPlan(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, plan network.Plan) (bool, error) {
	r, err := CheckPlan(repo, table, loc, client, plan)
	if err != nil {
		return false, err
	}
	return r.Verdict == Valid, nil
}

// ClientSpec pairs a client with its plan for vector validation.
type ClientSpec struct {
	Loc    hexpr.Location
	Client hexpr.Expr
	Plan   network.Plan
}

// CheckClients validates a vector of clients (one plan each). Components
// of a network never interact, so the vector is valid iff every component
// is; the reports are returned in order.
func CheckClients(repo network.Repository, table *policy.Table, clients []ClientSpec) ([]*Report, bool, error) {
	reports := make([]*Report, len(clients))
	all := true
	for i, c := range clients {
		r, err := CheckPlan(repo, table, c.Loc, c.Client, c.Plan)
		if err != nil {
			return nil, false, err
		}
		reports[i] = r
		if r.Verdict != Valid {
			all = false
		}
	}
	return reports, all, nil
}
