package verify

import (
	"strconv"

	"susc/internal/intern"
	"susc/internal/network"
)

// stateKey is the comparable visited-set key of one abstract configuration:
// interned session tree, interned monitor signature, and the packed
// availability vector (usually empty).
type stateKey struct {
	tree  intern.ID
	sig   intern.ID
	avail string
}

// InternTree interns a session tree bottom-up in the same ID space as the
// expressions it contains, so tree equality is one ID comparison. Leaves
// and pairs are interned as tagged ID pairs (intern.Node) — no key string
// is ever built. The fused synthesis engine (internal/plans) keys its
// shared state graph in the same ID space, which is why this is exported.
func InternTree(tab *intern.Table, n network.Node) intern.ID {
	switch t := n.(type) {
	case network.Leaf:
		return tab.Node('L', tab.Key(string(t.Loc)), tab.Expr(t.Expr))
	case network.Pair:
		return tab.Node('P', InternTree(tab, t.Left), InternTree(tab, t.Right))
	}
	panic("verify: unknown tree node")
}

// traceNode is a persistent (shared-tail) trace: explorations extend
// traces in O(1) per move and materialise a slice only for the report's
// counterexample.
type traceNode struct {
	prev  *traceNode
	entry network.TraceEntry
}

// materialize returns the trace as a slice, oldest entry first. A nil
// node is the empty trace.
func (n *traceNode) materialize() []network.TraceEntry {
	depth := 0
	for p := n; p != nil; p = p.prev {
		depth++
	}
	out := make([]network.TraceEntry, depth)
	for p := n; p != nil; p = p.prev {
		depth--
		out[depth] = p.entry
	}
	return out
}

// packAvail encodes an availability vector compactly. Replica counts are
// small non-negative ints; a comma keeps the encoding injective.
func packAvail(avail []int) string {
	if len(avail) == 0 {
		return ""
	}
	buf := make([]byte, 0, 4*len(avail))
	for _, n := range avail {
		buf = strconv.AppendInt(buf, int64(n), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}
