package verify_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"susc/internal/budget"
	"susc/internal/hash"
	"susc/internal/hexpr"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/store"
	"susc/internal/verify"
)

// paperPlans covers every verdict class the paper's running example
// produces: valid, security violation (with a trace), non-compliance
// (with a product witness) and a communication deadlock (with a stuck
// configuration tree).
var paperPlans = []network.Plan{
	{"r1": paperex.LocBr, "r3": paperex.LocS3},
	{"r1": paperex.LocBr, "r3": paperex.LocS1},
	{"r1": paperex.LocBr, "r3": paperex.LocS2},
	{"r1": paperex.LocBr},
}

func openTestStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(filepath.Join(t.TempDir(), "susc.store"), hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestReportRoundTrip: a report decoded from its stored form renders
// byte-identically to the fresh one, both as text and as JSON — the store
// must be invisible in every output.
func TestReportRoundTrip(t *testing.T) {
	for _, plan := range paperPlans {
		fresh, err := verify.CheckPlan(paperex.Repository(), paperex.Policies(),
			paperex.LocC1, paperex.C1(), plan)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := verify.EncodeReport(fresh)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := verify.DecodeReport(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := decoded.String(), fresh.String(); got != want {
			t.Errorf("plan %v: decoded String %q, fresh %q", plan, got, want)
		}
		fj, err := json.Marshal(fresh)
		if err != nil {
			t.Fatal(err)
		}
		dj, err := json.Marshal(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if string(fj) != string(dj) {
			t.Errorf("plan %v: decoded JSON %s, fresh %s", plan, dj, fj)
		}
	}
}

// TestDiskTierReplaysAcrossProcesses: a verdict persisted by one cache is
// found by a fresh cache over a reopened store — the cross-invocation
// reuse `-cache` exists for — and renders identically.
func TestDiskTierReplaysAcrossProcesses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "susc.store")
	want := make([]string, len(paperPlans))

	s1, err := store.Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	cache := memo.New()
	cache.AttachDisk(s1)
	for i, plan := range paperPlans {
		r, err := verify.CheckPlanOpts(paperex.Repository(), paperex.Policies(),
			paperex.LocC1, paperex.C1(), plan, verify.Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.String()
	}
	if w := s1.Stats().Writebacks(); w == 0 {
		t.Fatal("no write-backs recorded on the cold run")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(path, hash.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	warm := memo.New()
	warm.AttachDisk(s2)
	for i, plan := range paperPlans {
		r, err := verify.CheckPlanOpts(paperex.Repository(), paperex.Policies(),
			paperex.LocC1, paperex.C1(), plan, verify.Options{Cache: warm})
		if err != nil {
			t.Fatal(err)
		}
		if r.String() != want[i] {
			t.Errorf("plan %v: warm report %q, cold %q", paperPlans[i], r.String(), want[i])
		}
	}
	st := s2.Stats().PerKind[store.KindPlanReport]
	if st.Hits != uint64(len(paperPlans)) {
		t.Fatalf("plan-report stats = %+v, want %d hits", st, len(paperPlans))
	}
	if st.Misses != 0 {
		t.Fatalf("warm run recorded %d plan-report misses, want 0", st.Misses)
	}
	if s2.Stats().Writebacks() != 0 {
		t.Fatal("warm run wrote back; everything should have been resident")
	}
}

// TestUnknownNeverPersisted: a budget-aborted Unknown verdict describes
// this run's limits, not the cone's content — it must never be written
// back, and a later unconstrained run must decide (and only then persist)
// the real verdict.
func TestUnknownNeverPersisted(t *testing.T) {
	s := openTestStore(t)
	cache := memo.New()
	cache.AttachDisk(s)
	plan := network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}

	b := budget.New(context.Background(), budget.Limits{MaxStates: 2})
	r, err := verify.CheckPlanOpts(paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(), plan, verify.Options{Cache: cache, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.Unknown {
		t.Fatalf("verdict = %s, want unknown (the premise of the test)", r.Verdict)
	}
	if st := s.Stats().PerKind[store.KindPlanReport]; st.Entries != 0 {
		t.Fatalf("unknown verdict persisted: %d plan-report entries", st.Entries)
	}

	free := memo.New()
	free.AttachDisk(s)
	r2, err := verify.CheckPlanOpts(paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(), plan, verify.Options{Cache: free})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Verdict != verify.Valid {
		t.Fatalf("unconstrained verdict = %s, want valid", r2.Verdict)
	}
	if st := s.Stats().PerKind[store.KindPlanReport]; st.Entries != 1 {
		t.Fatalf("decided verdict not persisted: stats %+v", st)
	}
}

// TestPlanKeyConeSensitivity: the plan-report key must move with every
// declaration inside the verdict's dependency cone and with nothing
// outside it.
func TestPlanKeyConeSensitivity(t *testing.T) {
	repo := paperex.Repository()
	plan := network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}
	base, err := verify.PlanKey(repo, paperex.Policies(), paperex.LocC1, paperex.C1(), plan, nil)
	if err != nil {
		t.Fatal(err)
	}

	again, err := verify.PlanKey(paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(), plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Fatal("plan key not deterministic across repository rebuilds")
	}

	// Editing a service the plan binds (in-cone) moves the key.
	edited := network.Repository{}
	for l, e := range repo {
		edited[l] = e
	}
	edited[paperex.LocS3] = hexpr.Cat(hexpr.Act(hexpr.E("extra")), repo[paperex.LocS3])
	moved, err := verify.PlanKey(edited, paperex.Policies(), paperex.LocC1, paperex.C1(), plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if moved == base {
		t.Fatal("editing the bound service s3 did not move the plan key")
	}

	// Editing a service the plan never reaches (out-of-cone) must not.
	edited2 := network.Repository{}
	for l, e := range repo {
		edited2[l] = e
	}
	edited2[paperex.LocS2] = hexpr.Cat(hexpr.Act(hexpr.E("extra")), repo[paperex.LocS2])
	same, err := verify.PlanKey(edited2, paperex.Policies(), paperex.LocC1, paperex.C1(), plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Fatal("editing the unbound service s2 moved the plan key (cone too wide)")
	}

	// Capacities of cone locations are part of the key; others are not.
	capped, err := verify.PlanKey(repo, paperex.Policies(), paperex.LocC1, paperex.C1(), plan,
		map[hexpr.Location]int{paperex.LocS3: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped == base {
		t.Fatal("bounding an in-cone location did not move the plan key")
	}
	outside, err := verify.PlanKey(repo, paperex.Policies(), paperex.LocC1, paperex.C1(), plan,
		map[hexpr.Location]int{paperex.LocS2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if outside != base {
		t.Fatal("bounding an out-of-cone location moved the plan key")
	}
}
