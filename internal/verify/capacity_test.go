package verify_test

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/verify"
)

func capacityWorld() (network.Repository, hexpr.Expr, network.Plan) {
	repo := network.Repository{"echo": hexpr.RecvThen("hello", hexpr.Eps())}
	client := hexpr.Open("ra", hexpr.NoPolicy,
		hexpr.SendThen("hello",
			hexpr.Open("rb", hexpr.NoPolicy,
				hexpr.SendThen("hello", hexpr.Eps()))))
	return repo, client, network.Plan{"ra": "echo", "rb": "echo"}
}

// TestCapacityVerification: the §5 availability extension is statically
// checkable — nested sessions over a single replica are reported as a
// deadlock, two replicas verify, and the unbounded default also verifies.
func TestCapacityVerification(t *testing.T) {
	repo, client, plan := capacityWorld()
	cases := []struct {
		name    string
		caps    map[hexpr.Location]int
		verdict verify.Verdict
	}{
		{"one replica", map[hexpr.Location]int{"echo": 1}, verify.CommunicationDeadlock},
		{"two replicas", map[hexpr.Location]int{"echo": 2}, verify.Valid},
		{"unbounded", nil, verify.Valid},
	}
	for _, c := range cases {
		r, err := verify.CheckPlanOpts(repo, paperex.Policies(), "cl", client, plan,
			verify.Options{Capacities: c.caps})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if r.Verdict != c.verdict {
			t.Errorf("%s: %s, want %s", c.name, r, c.verdict)
		}
	}
}

// TestCapacityVerdictMatchesRuntime: the static verdict under capacities
// agrees with what actually happens at run time.
func TestCapacityVerdictMatchesRuntime(t *testing.T) {
	repo, client, plan := capacityWorld()
	for _, capacity := range []int{1, 2, 3} {
		caps := map[hexpr.Location]int{"echo": capacity}
		r, err := verify.CheckPlanOpts(repo, paperex.Policies(), "cl", client, plan,
			verify.Options{Capacities: caps})
		if err != nil {
			t.Fatal(err)
		}
		cfg := network.NewConfig(repo, paperex.Policies(),
			network.Client{Loc: "cl", Expr: client, Plan: plan}).
			WithAvailability(caps)
		res := cfg.Run(network.RunOptions{})
		staticOK := r.Verdict == verify.Valid
		runtimeOK := res.Status == network.Completed
		if staticOK != runtimeOK {
			t.Errorf("capacity %d: static %s vs runtime %s", capacity, r, res)
		}
	}
}

// TestCapacitySequentialFine: releases make one replica enough for
// sequential sessions.
func TestCapacitySequentialFine(t *testing.T) {
	repo := network.Repository{"echo": hexpr.RecvThen("hello", hexpr.Eps())}
	client := hexpr.Cat(
		hexpr.Open("ra", hexpr.NoPolicy, hexpr.SendThen("hello", hexpr.Eps())),
		hexpr.Open("rb", hexpr.NoPolicy, hexpr.SendThen("hello", hexpr.Eps())),
	)
	plan := network.Plan{"ra": "echo", "rb": "echo"}
	r, err := verify.CheckPlanOpts(repo, paperex.Policies(), "cl", client, plan,
		verify.Options{Capacities: map[hexpr.Location]int{"echo": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.Valid {
		t.Errorf("sequential sessions over 1 replica: %s, want valid", r)
	}
}
