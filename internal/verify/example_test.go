package verify_test

import (
	"fmt"

	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/verify"
)

// CheckPlan validates the paper's plan π₁ and rejects the plan that routes
// the broker to the blacklisted hotel.
func ExampleCheckPlan() {
	repo := paperex.Repository()
	table := paperex.Policies()
	good := network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}
	bad := network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS1}

	r, _ := verify.CheckPlan(repo, table, paperex.LocC1, paperex.C1(), good)
	fmt.Println("π₁:", r.Verdict)
	r, _ = verify.CheckPlan(repo, table, paperex.LocC1, paperex.C1(), bad)
	fmt.Println("to s1:", r.Verdict, "of", r.Policy)
	// Output:
	// π₁: valid
	// to s1: security-violation of phi[bl={s1},p=45,t=100]
}
