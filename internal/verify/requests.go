package verify

import (
	"fmt"
	"strings"

	"susc/internal/hexpr"
	"susc/internal/network"
)

// PlannedRequest describes one request of the composed service under a
// plan: the request identifier, its body H₁, and the service the plan
// binds it to.
type PlannedRequest struct {
	Req     hexpr.RequestID
	Policy  hexpr.PolicyID
	Body    hexpr.Expr
	Loc     hexpr.Location
	Service hexpr.Expr
	// Bound reports whether the plan binds the request to a location
	// present in the repository.
	Bound bool
}

// PlannedRequests collects every request of the composed service: the
// requests of the client plus, recursively, the requests of every service
// the plan selects. Request identifiers are unique across a composition
// (Definition 1), so collection deduplicates by identifier; services may
// invoke each other cyclically, which keeps the composed behaviour infinite
// but the request set finite.
func PlannedRequests(repo network.Repository, client hexpr.Expr, plan network.Plan) ([]PlannedRequest, error) {
	var out []PlannedRequest
	seen := map[hexpr.RequestID]bool{}
	var collect func(e hexpr.Expr) error
	collect = func(e hexpr.Expr) error {
		var sessions []hexpr.Session
		hexpr.Walk(e, func(x hexpr.Expr) {
			if s, ok := x.(hexpr.Session); ok {
				sessions = append(sessions, s)
			}
		})
		for _, s := range sessions {
			if seen[s.Req] {
				continue
			}
			seen[s.Req] = true
			pr := PlannedRequest{Req: s.Req, Policy: s.Policy, Body: s.Body}
			loc, ok := plan[s.Req]
			if ok {
				pr.Loc = loc
				if svc, ok := repo[loc]; ok {
					pr.Service = svc
					pr.Bound = true
				}
			}
			out = append(out, pr)
			if pr.Bound {
				if err := collect(pr.Service); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := collect(client); err != nil {
		return nil, err
	}
	return out, nil
}

// UnboundRequests returns the requests of the composition the plan fails
// to bind to a repository service.
func UnboundRequests(repo network.Repository, client hexpr.Expr, plan network.Plan) ([]hexpr.RequestID, error) {
	reqs, err := PlannedRequests(repo, client, plan)
	if err != nil {
		return nil, err
	}
	var out []hexpr.RequestID
	for _, pr := range reqs {
		if !pr.Bound {
			out = append(out, pr.Req)
		}
	}
	return out, nil
}

// ClientNode is the synthetic call-graph node standing for the client in
// CallCycleFunc (the NUL prefix keeps it disjoint from repository
// locations).
const ClientNode = hexpr.Location("\x00client")

// CallCycle detects a cycle in the planned service call graph reachable
// from the client: locations are nodes, and a location ℓ has an edge to
// plan[r] for every request r its service makes. It returns one cyclic
// path of locations (first element repeated at the end) or nil. The check
// is a static over-approximation: a cycle through dead code is still
// reported.
func CallCycle(repo network.Repository, client hexpr.Expr, plan network.Plan) []hexpr.Location {
	return CallCycleFunc(func(n hexpr.Location) []hexpr.Location {
		var e hexpr.Expr
		if n == ClientNode {
			e = client
		} else {
			var ok bool
			e, ok = repo[n]
			if !ok {
				return nil
			}
		}
		var out []hexpr.Location
		for _, r := range hexpr.Requests(e) {
			if l, ok := plan[r]; ok {
				out = append(out, l)
			}
		}
		return out
	})
}

// CallCycleFunc is CallCycle over an abstract successor function: the DFS
// starts at ClientNode and follows succ edges. Callers that precompute the
// per-location request lists (the fused synthesis engine) supply a succ
// closure over the precomputation instead of re-walking expressions per
// plan.
func CallCycleFunc(succ func(hexpr.Location) []hexpr.Location) []hexpr.Location {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[hexpr.Location]int{}
	var stack []hexpr.Location
	var dfs func(n hexpr.Location) []hexpr.Location
	dfs = func(n hexpr.Location) []hexpr.Location {
		color[n] = grey
		stack = append(stack, n)
		for _, m := range succ(n) {
			switch color[m] {
			case grey:
				// extract the cycle from the stack
				var cyc []hexpr.Location
				for i := len(stack) - 1; i >= 0; i-- {
					cyc = append([]hexpr.Location{stack[i]}, cyc...)
					if stack[i] == m {
						break
					}
				}
				return append(cyc, m)
			case white:
				if cyc := dfs(m); cyc != nil {
					return cyc
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return nil
	}
	return dfs(ClientNode)
}

// LocPath renders a location path the way cycle witnesses print it.
func LocPath(locs []hexpr.Location) string {
	parts := make([]string, len(locs))
	for i, l := range locs {
		parts[i] = string(l)
	}
	return strings.Join(parts, " -> ")
}

// String renders the planned request.
func (pr PlannedRequest) String() string {
	if !pr.Bound {
		return fmt.Sprintf("%s -> (unbound)", pr.Req)
	}
	return fmt.Sprintf("%s -> %s", pr.Req, pr.Loc)
}
