package verify

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"susc/internal/faultinject"
	"susc/internal/hexpr"
	"susc/internal/history"
	"susc/internal/memo"
	"susc/internal/network"
	"susc/internal/policy"
	"susc/internal/ring"
	"susc/internal/store"
)

// CheckNetwork validates a whole vector of clients in one exploration of
// the full product state space (component trees × monitors × shared
// availability). Without capacity bounds, components never interact and
// CheckClients (one exploration per client) is equivalent and much
// cheaper; with bounded availability the components *do* interact — they
// compete for replicas — so only the product exploration is sound, e.g. it
// finds the deadlock where two clients each hold the last replica the
// other needs.
func CheckNetwork(repo network.Repository, table *policy.Table,
	clients []ClientSpec, opts Options) (*Report, error) {

	cache := opts.Cache
	if cache == nil {
		cache = memo.New()
	}

	// Persistent tier, mirroring CheckPlanOpts: the key is the whole
	// network's cone (components compete for shared replicas, so there is
	// no per-component granularity to exploit). Unknown reports are never
	// persisted.
	if disk := cache.Disk(); disk != nil && !opts.SkipDiskProbe {
		sum, err := NetworkKey(repo, table, clients, opts.Capacities)
		if err != nil {
			return nil, err
		}
		if raw, ok := disk.Get(store.KindNetworkReport, sum); ok {
			if r, err := DecodeReport(raw); err == nil {
				return r, nil
			}
		}
		got, err := disk.Once(store.KindNetworkReport, sum, func() (any, error) {
			if raw, ok := disk.Peek(store.KindNetworkReport, sum); ok {
				if r, err := DecodeReport(raw); err == nil {
					return r, nil
				}
			}
			inner := opts
			inner.Cache = cache
			inner.SkipDiskProbe = true
			r, err := CheckNetwork(repo, table, clients, inner)
			if err != nil {
				return nil, err
			}
			if r.Verdict != Unknown {
				enc, eerr := EncodeReport(r)
				if eerr != nil {
					return nil, eerr
				}
				if perr := disk.Put(store.KindNetworkReport, sum, enc); perr != nil {
					return nil, perr
				}
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		return got.(*Report), nil
	}

	// per-client static prechecks (cycles, compliance)
	for _, c := range clients {
		if cyc := CallCycle(repo, c.Client, c.Plan); cyc != nil {
			return &Report{
				Verdict: UnboundedNesting,
				Witness: fmt.Sprintf("client at %s: cyclic service calls: %s", c.Loc, LocPath(cyc)),
			}, nil
		}
		reqs, err := PlannedRequests(repo, c.Client, c.Plan)
		if err != nil {
			return nil, err
		}
		for _, pr := range reqs {
			if !pr.Bound {
				continue
			}
			ok, witness, err := cache.Compliance(pr.Body, pr.Service)
			if err != nil {
				return nil, err
			}
			if !ok {
				return &Report{
					Verdict: NotCompliant,
					Request: pr.Req,
					Witness: fmt.Sprintf("client at %s, service at %s: %s", c.Loc, pr.Loc, witness),
				}, nil
			}
		}
	}

	var limited []hexpr.Location
	for l := range opts.Capacities {
		limited = append(limited, l)
	}
	sort.Slice(limited, func(i, j int) bool { return limited[i] < limited[j] })
	limitedIdx := map[hexpr.Location]int{}
	initialAvail := make([]int, len(limited))
	for i, l := range limited {
		limitedIdx[l] = i
		initialAvail[i] = opts.Capacities[l]
	}

	type state struct {
		trees []network.Node
		mons  []*history.Monitor
		avail []int
		trace *traceNode
	}
	start := state{avail: initialAvail}
	for _, c := range clients {
		start.trees = append(start.trees, network.Leaf{Loc: c.Loc, Expr: c.Client})
		start.mons = append(start.mons, history.NewMonitor(table))
	}
	// The visited-set key interns each component tree and monitor
	// signature, so a state collapses to a short string of IDs instead of
	// the concatenation of full tree keys.
	tab := cache.Interner()
	key := func(s state) string {
		buf := make([]byte, 0, 16*len(s.trees)+len(s.avail)*4)
		for i, tr := range s.trees {
			buf = strconv.AppendInt(buf, int64(InternTree(tab, tr)), 10)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, int64(tab.Key(s.mons[i].Signature())), 10)
			buf = append(buf, ';')
		}
		for _, n := range s.avail {
			buf = strconv.AppendInt(buf, int64(n), 10)
			buf = append(buf, ',')
		}
		return string(buf)
	}
	allDone := func(s state) bool {
		for _, tr := range s.trees {
			if !network.Done(tr) {
				return false
			}
		}
		return true
	}
	// Ring-buffer queue: see CheckPlanOpts — `queue[1:]` popping would pin
	// every state ever enqueued until the exploration ends.
	seen := map[string]bool{key(start): true}
	var queue ring.Queue[state]
	queue.Push(start)
	report := &Report{}
	for queue.Len() > 0 {
		report.States++
		if report.States > MaxStates {
			return nil, fmt.Errorf("verify: network exploration exceeds %d states", MaxStates)
		}
		if e := opts.Budget.ConsumeStates(1); e != nil {
			report.States--
			return unknownReport(report, e, queue.Len()), nil
		}
		s := queue.Pop()
		if faultinject.Enabled() {
			parts := make([]string, len(s.trees))
			for i, tr := range s.trees {
				parts[i] = tr.Key()
			}
			faultinject.Fire(faultinject.NetworkState, strings.Join(parts, " || "))
		}
		type compMove struct {
			comp int
			m    network.Move
		}
		var moves []compMove
		for ci := range s.trees {
			for _, m := range network.TreeMovesStep(s.trees[ci], clients[ci].Plan, repo, cache.Steps) {
				if m.OpenLoc != "" {
					if i, ok := limitedIdx[m.OpenLoc]; ok && s.avail[i] == 0 {
						continue
					}
				}
				moves = append(moves, compMove{comp: ci, m: m})
			}
		}
		if e := opts.Budget.ConsumeEdges(int64(len(moves))); e != nil {
			return unknownReport(report, e, queue.Len()), nil
		}
		if len(moves) == 0 && !allDone(s) {
			report.Verdict = CommunicationDeadlock
			report.Trace = s.trace.materialize()
			parts := make([]string, len(s.trees))
			for i, tr := range s.trees {
				parts[i] = tr.Key()
			}
			report.StuckTree = strings.Join(parts, " || ")
			return report, nil
		}
		for _, cm := range moves {
			// see CheckPlanOpts: item-less moves share the monitor
			mon := s.mons[cm.comp]
			bad := hexpr.NoPolicy
			if len(cm.m.Items) > 0 {
				mon = mon.Snapshot()
				for _, it := range cm.m.Items {
					if err := mon.Append(it); err != nil {
						if verr, ok := err.(*history.ViolationError); ok {
							bad = verr.Policy
						} else {
							return nil, fmt.Errorf("verify: unexpected monitor error: %w", err)
						}
						break
					}
				}
			}
			entry := network.TraceEntry{Comp: cm.comp, Label: cm.m.Label}
			if bad != hexpr.NoPolicy {
				report.Verdict = SecurityViolation
				report.Policy = bad
				report.Trace = (&traceNode{prev: s.trace, entry: entry}).materialize()
				return report, nil
			}
			next := state{
				trees: append([]network.Node(nil), s.trees...),
				mons:  append([]*history.Monitor(nil), s.mons...),
				avail: s.avail,
				trace: &traceNode{prev: s.trace, entry: entry},
			}
			next.trees[cm.comp] = cm.m.Tree
			next.mons[cm.comp] = mon
			if len(limited) > 0 && (cm.m.OpenLoc != "" || cm.m.ReleaseLoc != "") {
				next.avail = append([]int(nil), s.avail...)
				if i, ok := limitedIdx[cm.m.OpenLoc]; ok && cm.m.OpenLoc != "" {
					next.avail[i]--
				}
				if i, ok := limitedIdx[cm.m.ReleaseLoc]; ok && cm.m.ReleaseLoc != "" {
					next.avail[i]++
				}
			}
			k := key(next)
			if !seen[k] {
				seen[k] = true
				queue.Push(next)
			}
		}
	}
	report.Verdict = Valid
	return report, nil
}
