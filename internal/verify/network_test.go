package verify_test

import (
	"testing"

	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/verify"
)

// holdAndCall builds a client that opens svcA and, while holding it, opens
// svcB inside — the classic shape for resource-competition deadlocks.
func holdAndCall(reqA, reqB hexpr.RequestID) hexpr.Expr {
	return hexpr.Open(reqA, hexpr.NoPolicy,
		hexpr.SendThen("hello",
			hexpr.Open(reqB, hexpr.NoPolicy,
				hexpr.SendThen("hello", hexpr.Eps()))))
}

func TestCheckNetworkFindsCrossClientCapacityDeadlock(t *testing.T) {
	// Two services with one replica each; two clients grab them in opposite
	// orders while holding the first — some interleaving deadlocks. The
	// per-client check cannot see this; the network check must.
	repo := network.Repository{
		"A": hexpr.RecvThen("hello", hexpr.Eps()),
		"B": hexpr.RecvThen("hello", hexpr.Eps()),
	}
	clients := []verify.ClientSpec{
		{Loc: "c1", Client: holdAndCall("r1", "r2"),
			Plan: network.Plan{"r1": "A", "r2": "B"}},
		{Loc: "c2", Client: holdAndCall("r3", "r4"),
			Plan: network.Plan{"r3": "B", "r4": "A"}},
	}
	caps := map[hexpr.Location]int{"A": 1, "B": 1}

	// per-client validation is blind to the competition
	for _, c := range clients {
		r, err := verify.CheckPlanOpts(repo, paperex.Policies(), c.Loc, c.Client, c.Plan,
			verify.Options{Capacities: caps})
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict != verify.Valid {
			t.Fatalf("per-client check should pass in isolation: %s", r)
		}
	}

	// the product exploration finds the deadlock
	r, err := verify.CheckNetwork(repo, paperex.Policies(), clients,
		verify.Options{Capacities: caps})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.CommunicationDeadlock {
		t.Fatalf("network check: %s, want communication-deadlock", r)
	}

	// with one more replica of either service the deadlock disappears
	r, err = verify.CheckNetwork(repo, paperex.Policies(), clients,
		verify.Options{Capacities: map[hexpr.Location]int{"A": 2, "B": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.Valid {
		t.Fatalf("network check with 2 replicas of A: %s, want valid", r)
	}
}

func TestCheckNetworkUnboundedMatchesCheckClients(t *testing.T) {
	// without capacities the product exploration agrees with the
	// per-client validation on the paper scenario
	clients := []verify.ClientSpec{
		{Loc: paperex.LocC1, Client: paperex.C1(),
			Plan: network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}},
		{Loc: paperex.LocC2, Client: paperex.C2(),
			Plan: network.Plan{"r2": paperex.LocBr, "r3": paperex.LocS4}},
	}
	r, err := verify.CheckNetwork(paperex.Repository(), paperex.Policies(), clients, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.Valid {
		t.Fatalf("network check: %s", r)
	}
	_, all, err := verify.CheckClients(paperex.Repository(), paperex.Policies(), clients)
	if err != nil || !all {
		t.Fatalf("per-client check disagrees: %v %v", all, err)
	}
}

func TestCheckNetworkPropagatesClientVerdicts(t *testing.T) {
	clients := []verify.ClientSpec{
		{Loc: paperex.LocC1, Client: paperex.C1(),
			Plan: network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS2}},
	}
	r, err := verify.CheckNetwork(paperex.Repository(), paperex.Policies(), clients, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.NotCompliant {
		t.Fatalf("network check: %s, want not-compliant", r)
	}
	clients[0].Plan = network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS1}
	r, err = verify.CheckNetwork(paperex.Repository(), paperex.Policies(), clients, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.SecurityViolation {
		t.Fatalf("network check: %s, want security-violation", r)
	}
	clients[0].Plan = network.Plan{"r1": paperex.LocBr, "r3": paperex.LocBr}
	r, err = verify.CheckNetwork(paperex.Repository(), paperex.Policies(), clients, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.UnboundedNesting {
		t.Fatalf("network check: %s, want unbounded-nesting", r)
	}
}

func TestCheckNetworkDeadlockWitnessReplays(t *testing.T) {
	repo := network.Repository{
		"A": hexpr.RecvThen("hello", hexpr.Eps()),
		"B": hexpr.RecvThen("hello", hexpr.Eps()),
	}
	clients := []verify.ClientSpec{
		{Loc: "c1", Client: holdAndCall("r1", "r2"),
			Plan: network.Plan{"r1": "A", "r2": "B"}},
		{Loc: "c2", Client: holdAndCall("r3", "r4"),
			Plan: network.Plan{"r3": "B", "r4": "A"}},
	}
	caps := map[hexpr.Location]int{"A": 1, "B": 1}
	r, err := verify.CheckNetwork(repo, paperex.Policies(), clients, verify.Options{Capacities: caps})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.CommunicationDeadlock || len(r.Trace) == 0 {
		t.Fatalf("report = %s", r)
	}
	// the witness trace replays on the runtime configuration
	cfg := network.NewConfig(repo, paperex.Policies(),
		network.Client{Loc: "c1", Expr: clients[0].Client, Plan: clients[0].Plan},
		network.Client{Loc: "c2", Expr: clients[1].Client, Plan: clients[1].Plan},
	).WithAvailability(caps)
	if at := cfg.Replay(r.Trace, false); at != -1 {
		t.Fatalf("deadlock witness failed to replay at step %d", at)
	}
	// and the replayed configuration is indeed stuck
	if len(cfg.Moves()) != 0 || cfg.Done() {
		t.Error("replayed configuration should be stuck and not done")
	}
}
