package verify_test

import (
	"context"
	"strings"
	"testing"

	"susc/internal/budget"
	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/verify"
)

// TestCheckPlanBudgetUnknown: cutting the exploration short yields the
// Unknown verdict — never a spurious Valid — with the exhaustion reason,
// the states explored, and the frontier size attached.
func TestCheckPlanBudgetUnknown(t *testing.T) {
	b := budget.New(context.Background(), budget.Limits{MaxStates: 2})
	r, err := verify.CheckPlanOpts(paperex.Repository(), paperex.Policies(),
		paperex.LocC1, paperex.C1(),
		network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3},
		verify.Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.Unknown {
		t.Fatalf("verdict = %s, want unknown", r.Verdict)
	}
	if !strings.Contains(r.Reason, "state budget exhausted") {
		t.Fatalf("reason = %q, want state-budget exhaustion", r.Reason)
	}
	if r.States > 2 {
		t.Fatalf("report claims %d explored states under a 2-state budget", r.States)
	}
	if r.Frontier <= 0 {
		t.Fatalf("frontier = %d, want > 0 (the cutoff left work queued)", r.Frontier)
	}
}

// TestCheckPlanBudgetVerdictStands: a verdict decided within the budget is
// identical to the unbounded one — the budget only ever degrades to
// Unknown, never alters a decided verdict.
func TestCheckPlanBudgetVerdictStands(t *testing.T) {
	plans := []network.Plan{
		{"r1": paperex.LocBr, "r3": paperex.LocS3}, // valid
		{"r1": paperex.LocBr, "r3": paperex.LocS1}, // security violation
		{"r1": paperex.LocBr, "r3": paperex.LocS2}, // non-compliant
	}
	for _, plan := range plans {
		oracle, err := verify.CheckPlan(paperex.Repository(), paperex.Policies(),
			paperex.LocC1, paperex.C1(), plan)
		if err != nil {
			t.Fatal(err)
		}
		b := budget.New(context.Background(), budget.Limits{MaxStates: 1 << 20})
		r, err := verify.CheckPlanOpts(paperex.Repository(), paperex.Policies(),
			paperex.LocC1, paperex.C1(), plan, verify.Options{Budget: b})
		if err != nil {
			t.Fatal(err)
		}
		if r.Verdict != oracle.Verdict {
			t.Fatalf("plan %s: budgeted verdict %s, oracle %s", plan, r.Verdict, oracle.Verdict)
		}
	}
}

// TestCheckPlanCancelled: a cancelled context degrades to Unknown with
// the cancellation reason. The context poll is amortised over blocks of
// charges, so the protocol must be deep enough for a poll to fire — a
// cancelled run over a tiny state space may simply finish, which is
// sound (the completed verdict stands).
func TestCheckPlanCancelled(t *testing.T) {
	depth := 2048
	body := hexpr.Eps()
	svc := hexpr.Eps()
	for i := 0; i < depth; i++ {
		body = hexpr.SendThen("a", body)
		svc = hexpr.RecvThen("a", svc)
	}
	repo := network.Repository{"S": svc}
	client := hexpr.Open("r1", hexpr.NoPolicy, body)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := budget.New(ctx, budget.Limits{})
	r, err := verify.CheckPlanOpts(repo, paperex.Policies(), "cl", client,
		network.Plan{"r1": "S"}, verify.Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.Unknown {
		t.Fatalf("verdict = %s, want unknown", r.Verdict)
	}
	if !strings.Contains(r.Reason, "cancelled") {
		t.Fatalf("reason = %q, want cancellation", r.Reason)
	}
}

// TestCheckNetworkBudgetUnknown: the whole-network checker degrades the
// same way as the single-plan checker.
func TestCheckNetworkBudgetUnknown(t *testing.T) {
	specs := []verify.ClientSpec{
		{Loc: paperex.LocC1, Client: paperex.C1(),
			Plan: network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}},
	}
	b := budget.New(context.Background(), budget.Limits{MaxStates: 2})
	r, err := verify.CheckNetwork(paperex.Repository(), paperex.Policies(), specs,
		verify.Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.Unknown {
		t.Fatalf("verdict = %s, want unknown", r.Verdict)
	}
	if r.Reason == "" {
		t.Fatal("unknown network report must carry a reason")
	}

	// The same network with room to finish is valid: Unknown is a
	// property of the budget, not of the network.
	full, err := verify.CheckNetwork(paperex.Repository(), paperex.Policies(), specs,
		verify.Options{Budget: budget.New(context.Background(), budget.Limits{MaxStates: 1 << 20})})
	if err != nil {
		t.Fatal(err)
	}
	if full.Verdict != verify.Valid {
		t.Fatalf("unbudgeted network verdict = %s, want valid", full.Verdict)
	}
}
