package verify

import (
	"encoding/json"
	"fmt"
	"sort"

	"susc/internal/hash"
	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/policy"
)

// This file is the persistence boundary of plan validation: content keys
// for plan and network reports (the digest of the verdict's full
// dependency cone) and a faithful Report round-trip through the existing
// JSON wire form, so a report decoded from the store renders — as text
// and as JSON — byte-identically to one computed fresh.

// PlanKey is the content hash of the dependency cone of one (client, plan)
// verdict: the client's canonical form, every planned request with the
// service the plan binds it to, every policy instance any of those
// expressions activate, and the capacity bounds of the cone's locations.
// A declaration edit outside this cone leaves the key unchanged, which is
// exactly what makes re-verification incremental.
func PlanKey(repo network.Repository, table *policy.Table,
	loc hexpr.Location, client hexpr.Expr, plan network.Plan,
	caps map[hexpr.Location]int) (hash.Sum, error) {

	h := hash.New()
	h.Str("plan-report")
	h.Str(string(loc))
	h.Str(client.Key())

	reqs, err := PlannedRequests(repo, client, plan)
	if err != nil {
		return hash.Sum{}, err
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Req < reqs[j].Req })
	h.Int(len(reqs))
	coneLocs := map[hexpr.Location]bool{loc: true}
	policyIDs := map[hexpr.PolicyID]bool{}
	for _, id := range hexpr.Policies(client) {
		policyIDs[id] = true
	}
	for _, pr := range reqs {
		h.Str(string(pr.Req))
		h.Str(string(pr.Policy))
		h.Str(pr.Body.Key())
		h.Str(string(pr.Loc))
		if pr.Loc != "" {
			coneLocs[pr.Loc] = true
		}
		for _, id := range hexpr.Policies(pr.Body) {
			policyIDs[id] = true
		}
		if pr.Bound {
			h.Int(1)
			h.Str(pr.Service.Key())
			for _, id := range hexpr.Policies(pr.Service) {
				policyIDs[id] = true
			}
		} else {
			h.Int(0)
		}
	}

	writePolicies(h, table, policyIDs)
	writeCaps(h, caps, coneLocs)
	return h.Sum(), nil
}

// NetworkKey is the content hash of a whole-network verdict under bounded
// availability: the ordered client vector (each with its planned cone),
// the activated policies, and the full capacity map — components share
// limited replicas, so every capacity is in every component's cone.
func NetworkKey(repo network.Repository, table *policy.Table,
	specs []ClientSpec, caps map[hexpr.Location]int) (hash.Sum, error) {

	h := hash.New()
	h.Str("network-report")
	h.Int(len(specs))
	policyIDs := map[hexpr.PolicyID]bool{}
	for _, sp := range specs {
		h.Str(string(sp.Loc))
		h.Str(sp.Client.Key())
		for _, id := range hexpr.Policies(sp.Client) {
			policyIDs[id] = true
		}
		reqs, err := PlannedRequests(repo, sp.Client, sp.Plan)
		if err != nil {
			return hash.Sum{}, err
		}
		sort.Slice(reqs, func(i, j int) bool { return reqs[i].Req < reqs[j].Req })
		h.Int(len(reqs))
		for _, pr := range reqs {
			h.Str(string(pr.Req))
			h.Str(string(pr.Policy))
			h.Str(pr.Body.Key())
			h.Str(string(pr.Loc))
			for _, id := range hexpr.Policies(pr.Body) {
				policyIDs[id] = true
			}
			if pr.Bound {
				h.Int(1)
				h.Str(pr.Service.Key())
				for _, id := range hexpr.Policies(pr.Service) {
					policyIDs[id] = true
				}
			} else {
				h.Int(0)
			}
		}
	}
	writePolicies(h, table, policyIDs)
	writeCaps(h, caps, nil)
	return h.Sum(), nil
}

// writePolicies digests the referenced policy instances in sorted ID
// order: the full automaton structure, so editing a policy invalidates
// exactly the verdicts whose cone activates it. An ID missing from the
// table still contributes its name (the dangling reference is part of the
// content).
func writePolicies(h *hash.Hasher, table *policy.Table, ids map[hexpr.PolicyID]bool) {
	sorted := make([]hexpr.PolicyID, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h.Int(len(sorted))
	for _, id := range sorted {
		if table != nil {
			if in, err := table.Get(id); err == nil {
				hash.WritePolicy(h, in)
				continue
			}
		}
		h.Str(string(id))
	}
}

// writeCaps digests the capacity bounds, restricted to cone when non-nil
// — capacities of locations the verdict's exploration can never open are
// not part of its cone.
func writeCaps(h *hash.Hasher, caps map[hexpr.Location]int, cone map[hexpr.Location]bool) {
	var locs []hexpr.Location
	for l := range caps {
		if cone == nil || cone[l] {
			locs = append(locs, l)
		}
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	h.Int(len(locs))
	for _, l := range locs {
		h.Str(string(l))
		h.Int(caps[l])
	}
}

// ParseVerdict is the inverse of Verdict.String.
func ParseVerdict(s string) (Verdict, error) {
	for v := Valid; v <= Unknown; v++ {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("verify: unknown verdict %q", s)
}

// EncodeReport serialises a report for the persistent store using the
// same wire form as the CLI's -json output.
func EncodeReport(r *Report) ([]byte, error) {
	return json.Marshal(r)
}

// DecodeReport is the inverse of EncodeReport. The decoded report carries
// its trace as label strings (TraceLabels) rather than live TraceEntry
// values; String and MarshalJSON render both identically, so a persisted
// verdict is indistinguishable from a recomputed one in every output.
func DecodeReport(b []byte) (*Report, error) {
	var w reportJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, err
	}
	v, err := ParseVerdict(w.Verdict)
	if err != nil {
		return nil, err
	}
	return &Report{
		Verdict:     v,
		Policy:      hexpr.PolicyID(w.Policy),
		Request:     hexpr.RequestID(w.Request),
		Witness:     w.Witness,
		TraceLabels: w.Trace,
		StuckTree:   w.StuckTree,
		States:      w.States,
		Reason:      w.Reason,
		Frontier:    w.Frontier,
	}, nil
}
