package verify_test

import (
	"math/rand"
	"testing"

	"susc/internal/hexpr"
	"susc/internal/network"
	"susc/internal/paperex"
	"susc/internal/verify"
)

func check(t *testing.T, client hexpr.Expr, loc hexpr.Location, plan network.Plan) *verify.Report {
	t.Helper()
	r, err := verify.CheckPlan(paperex.Repository(), paperex.Policies(), loc, client, plan)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSect2Plans reproduces the plan-validity claims of §2 (experiment E5):
// π₁ = {1↦br, 3↦s3} is valid for C1; binding request 3 to S2 is invalid
// because of compliance (Del); binding request 3 to S3 for C2 is invalid
// because of security (S3 blacklisted by φ₂).
func TestSect2Plans(t *testing.T) {
	// π₁: valid
	r := check(t, paperex.C1(), paperex.LocC1, network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3})
	if r.Verdict != verify.Valid {
		t.Fatalf("π₁ should be valid: %s", r)
	}

	// π₂: C2 → broker → S2: S2 may send Del, unmatched by the broker
	r = check(t, paperex.C2(), paperex.LocC2, network.Plan{"r2": paperex.LocBr, "r3": paperex.LocS2})
	if r.Verdict != verify.NotCompliant {
		t.Fatalf("π₂ should be non-compliant: %s", r)
	}
	if r.Request != "r3" {
		t.Errorf("failing request = %s, want r3", r.Request)
	}

	// π₃: C2 → broker → S3: S3 is blacklisted by φ₂
	r = check(t, paperex.C2(), paperex.LocC2, network.Plan{"r2": paperex.LocBr, "r3": paperex.LocS3})
	if r.Verdict != verify.SecurityViolation {
		t.Fatalf("π₃ should violate security: %s", r)
	}
	if r.Policy != paperex.Phi2().ID() {
		t.Errorf("violated policy = %s, want φ₂", r.Policy)
	}
}

// TestAllPlansForC1 classifies every binding of r3 for client C1:
// S1 violates φ₁ (blacklist), S2 deadlocks (Del), S3 is valid, S4 violates
// φ₁ (price/rating thresholds).
func TestAllPlansForC1(t *testing.T) {
	want := map[hexpr.Location]verify.Verdict{
		paperex.LocS1: verify.SecurityViolation,
		paperex.LocS2: verify.NotCompliant,
		paperex.LocS3: verify.Valid,
		paperex.LocS4: verify.SecurityViolation,
	}
	for loc, verdict := range want {
		r := check(t, paperex.C1(), paperex.LocC1, network.Plan{"r1": paperex.LocBr, "r3": loc})
		if r.Verdict != verdict {
			t.Errorf("C1 with r3→%s: %s, want %s", loc, r, verdict)
		}
	}
}

// TestAllPlansForC2: S1 and S3 violate φ₂, S2 deadlocks, S4 is valid.
func TestAllPlansForC2(t *testing.T) {
	want := map[hexpr.Location]verify.Verdict{
		paperex.LocS1: verify.SecurityViolation,
		paperex.LocS2: verify.NotCompliant,
		paperex.LocS3: verify.SecurityViolation,
		paperex.LocS4: verify.Valid,
	}
	for loc, verdict := range want {
		r := check(t, paperex.C2(), paperex.LocC2, network.Plan{"r2": paperex.LocBr, "r3": loc})
		if r.Verdict != verdict {
			t.Errorf("C2 with r3→%s: %s, want %s", loc, r, verdict)
		}
	}
}

func TestUnboundRequestIsDeadlock(t *testing.T) {
	r := check(t, paperex.C1(), paperex.LocC1, network.Plan{"r1": paperex.LocBr})
	if r.Verdict != verify.CommunicationDeadlock {
		t.Fatalf("unbound r3: %s", r)
	}
	r = check(t, paperex.C1(), paperex.LocC1, network.Plan{"r1": "ghost", "r3": paperex.LocS3})
	if r.Verdict != verify.CommunicationDeadlock {
		t.Fatalf("dangling location: %s", r)
	}
}

// TestValidPlanRunsCleanly (the paper's headline guarantee): every run of
// a verified plan completes without the monitor ever pruning a move.
func TestValidPlanRunsCleanly(t *testing.T) {
	plan := network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}
	ok, err := verify.ValidPlan(paperex.Repository(), paperex.Policies(), paperex.LocC1, paperex.C1(), plan)
	if err != nil || !ok {
		t.Fatalf("plan should be valid: %v %v", ok, err)
	}
	for seed := int64(0); seed < 50; seed++ {
		cfg := network.NewConfig(paperex.Repository(), paperex.Policies(),
			network.Client{Loc: paperex.LocC1, Expr: paperex.C1(), Plan: plan})
		res := cfg.Run(network.RunOptions{Rand: rand.New(rand.NewSource(seed)), Monitored: false})
		if res.Status != network.Completed {
			t.Fatalf("seed %d: unmonitored run of a valid plan must complete: %s", seed, res)
		}
	}
}

// TestInvalidVerdictsAreWitnessed: the counterexample trace of a security
// report replays to the violation.
func TestSecurityWitnessReplays(t *testing.T) {
	plan := network.Plan{"r2": paperex.LocBr, "r3": paperex.LocS3}
	r := check(t, paperex.C2(), paperex.LocC2, plan)
	if r.Verdict != verify.SecurityViolation || len(r.Trace) == 0 {
		t.Fatalf("report = %s", r)
	}
	// All but the last step replay under the monitor; the full trace
	// replays only unmonitored.
	cfg := network.NewConfig(paperex.Repository(), paperex.Policies(),
		network.Client{Loc: paperex.LocC2, Expr: paperex.C2(), Plan: plan})
	if at := cfg.Replay(r.Trace[:len(r.Trace)-1], true); at != -1 {
		t.Errorf("witness prefix should replay monitored, failed at %d", at)
	}
	cfg2 := network.NewConfig(paperex.Repository(), paperex.Policies(),
		network.Client{Loc: paperex.LocC2, Expr: paperex.C2(), Plan: plan})
	if at := cfg2.Replay(r.Trace, false); at != -1 {
		t.Errorf("full witness should replay unmonitored, failed at %d", at)
	}
}

func TestCheckClientsVector(t *testing.T) {
	clients := []verify.ClientSpec{
		{Loc: paperex.LocC1, Client: paperex.C1(), Plan: network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}},
		{Loc: paperex.LocC2, Client: paperex.C2(), Plan: network.Plan{"r2": paperex.LocBr, "r3": paperex.LocS4}},
	}
	reports, all, err := verify.CheckClients(paperex.Repository(), paperex.Policies(), clients)
	if err != nil {
		t.Fatal(err)
	}
	if !all || len(reports) != 2 {
		t.Fatalf("both plans valid: all=%v reports=%v", all, reports)
	}
	// Break the second plan.
	clients[1].Plan = network.Plan{"r2": paperex.LocBr, "r3": paperex.LocS2}
	reports, all, err = verify.CheckClients(paperex.Repository(), paperex.Policies(), clients)
	if err != nil {
		t.Fatal(err)
	}
	if all {
		t.Error("vector with an invalid plan must not be all-valid")
	}
	if reports[0].Verdict != verify.Valid || reports[1].Verdict != verify.NotCompliant {
		t.Errorf("reports = %v, %v", reports[0], reports[1])
	}
}

func TestRecursiveClientTerminatesExploration(t *testing.T) {
	// A client whose session body loops forever against a recursive echo
	// service: the exploration must converge on the finite abstract state
	// space.
	body := hexpr.Mu("h", hexpr.IntCh(
		hexpr.B(hexpr.Out("req"), hexpr.Ext(
			hexpr.B(hexpr.In("done"), hexpr.Eps()),
			hexpr.B(hexpr.In("more"), hexpr.V("h")),
		)),
	))
	srv := hexpr.Mu("k", hexpr.RecvThen("req", hexpr.IntCh(
		hexpr.B(hexpr.Out("done"), hexpr.Eps()),
		hexpr.B(hexpr.Out("more"), hexpr.V("k")),
	)))
	repo := network.Repository{"echo": srv}
	cl := hexpr.Open("r1", hexpr.NoPolicy, body)
	r, err := verify.CheckPlan(repo, paperex.Policies(), "cl", cl, network.Plan{"r1": "echo"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != verify.Valid {
		t.Fatalf("recursive session should be valid: %s", r)
	}
	if r.States == 0 {
		t.Error("expected some states explored")
	}
}

func TestVerdictStrings(t *testing.T) {
	if verify.Valid.String() != "valid" ||
		verify.SecurityViolation.String() != "security-violation" ||
		verify.CommunicationDeadlock.String() != "communication-deadlock" {
		t.Error("verdict strings wrong")
	}
}

func TestUnboundRequests(t *testing.T) {
	plan := network.Plan{"r1": paperex.LocBr} // r3 discovered via the broker, unbound
	unbound, err := verify.UnboundRequests(paperex.Repository(), paperex.C1(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(unbound) != 1 || unbound[0] != "r3" {
		t.Errorf("unbound = %v, want [r3]", unbound)
	}
	full := network.Plan{"r1": paperex.LocBr, "r3": paperex.LocS3}
	unbound, err = verify.UnboundRequests(paperex.Repository(), paperex.C1(), full)
	if err != nil || len(unbound) != 0 {
		t.Errorf("unbound = %v err %v, want none", unbound, err)
	}
	// a location missing from the repository is also unbound
	dangling := network.Plan{"r1": "ghost", "r3": paperex.LocS3}
	unbound, err = verify.UnboundRequests(paperex.Repository(), paperex.C1(), dangling)
	if err != nil || len(unbound) != 1 || unbound[0] != "r1" {
		t.Errorf("unbound = %v err %v, want [r1]", unbound, err)
	}
}

func TestPlannedRequestsStrings(t *testing.T) {
	reqs, err := verify.PlannedRequests(paperex.Repository(), paperex.C1(),
		network.Plan{"r1": paperex.LocBr})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("requests = %v", reqs)
	}
	if reqs[0].String() != "r1 -> br" || reqs[1].String() != "r3 -> (unbound)" {
		t.Errorf("strings = %q, %q", reqs[0], reqs[1])
	}
	if reqs[0].Policy != paperex.Phi1().ID() {
		t.Errorf("r1 policy = %s", reqs[0].Policy)
	}
}
