package hexpr_test

import (
	"fmt"

	"susc/internal/hexpr"
)

// Build the paper's client C1 with the combinators and print it in the
// surface syntax.
func Example() {
	c1 := hexpr.Open("r1", "phi1",
		hexpr.SendThen("Req", hexpr.Ext(
			hexpr.B(hexpr.In("CoBo"), hexpr.SendThen("Pay", hexpr.Eps())),
			hexpr.B(hexpr.In("NoAv"), hexpr.Eps()),
		)))
	fmt.Println(hexpr.Pretty(c1))
	fmt.Println(hexpr.Check(c1) == nil)
	// Output:
	// open r1 with phi1 { Req!.(CoBo?.Pay! + NoAv?) }
	// true
}

// Cat normalises sequential composition: ε disappears and continuations
// distribute into choices, giving every term one canonical form.
func ExampleCat() {
	prefix := hexpr.Ext(
		hexpr.B(hexpr.In("a"), hexpr.Eps()),
		hexpr.B(hexpr.In("b"), hexpr.Eps()),
	)
	rest := hexpr.SendThen("done", hexpr.Eps())
	fmt.Println(hexpr.Pretty(hexpr.Cat(prefix, rest)))
	fmt.Println(hexpr.Pretty(hexpr.Cat(hexpr.Eps(), rest, hexpr.Eps())))
	// Output:
	// a?.done! + b?.done!
	// done!
}
