package hexpr

// Subst returns e with every free occurrence of the recursion variable name
// replaced by repl. Bound occurrences (under a μ binding the same name) are
// left untouched.
func Subst(e Expr, name string, repl Expr) Expr {
	switch t := e.(type) {
	case Nil, Ev, CloseTag, FrameClose:
		return e
	case Var:
		if t.Name == name {
			return repl
		}
		return e
	case Rec:
		if t.Name == name {
			return e // name is rebound; stop
		}
		return Rec{Name: t.Name, Body: Subst(t.Body, name, repl)}
	case Seq:
		return Cat(Subst(t.Left, name, repl), Subst(t.Right, name, repl))
	case ExtChoice:
		return Ext(substBranches(t.Branches, name, repl)...)
	case IntChoice:
		return IntCh(substBranches(t.Branches, name, repl)...)
	case Session:
		return Session{Req: t.Req, Policy: t.Policy, Body: Subst(t.Body, name, repl)}
	case Framing:
		return Framing{Policy: t.Policy, Body: Subst(t.Body, name, repl)}
	}
	panic("hexpr: unknown expression in Subst")
}

func substBranches(bs []Branch, name string, repl Expr) []Branch {
	out := make([]Branch, len(bs))
	for i, b := range bs {
		out[i] = Branch{Comm: b.Comm, Cont: Subst(b.Cont, name, repl)}
	}
	return out
}

// Unfold replaces the recursion variable of r by r itself in its body:
// μh.H ↦ H{μh.H/h}.
func Unfold(r Rec) Expr { return Subst(r.Body, r.Name, r) }

// FreeVars returns the set of free recursion variables of e.
func FreeVars(e Expr) map[string]bool {
	free := map[string]bool{}
	var walk func(Expr, map[string]bool)
	walk = func(e Expr, bound map[string]bool) {
		switch t := e.(type) {
		case Var:
			if !bound[t.Name] {
				free[t.Name] = true
			}
		case Rec:
			if bound[t.Name] {
				walk(t.Body, bound)
				return
			}
			bound[t.Name] = true
			walk(t.Body, bound)
			delete(bound, t.Name)
		case Seq:
			walk(t.Left, bound)
			walk(t.Right, bound)
		case ExtChoice:
			for _, b := range t.Branches {
				walk(b.Cont, bound)
			}
		case IntChoice:
			for _, b := range t.Branches {
				walk(b.Cont, bound)
			}
		case Session:
			walk(t.Body, bound)
		case Framing:
			walk(t.Body, bound)
		}
	}
	walk(e, map[string]bool{})
	return free
}

// Closed reports whether e has no free recursion variables.
func Closed(e Expr) bool { return len(FreeVars(e)) == 0 }

// Requests returns every request identifier occurring in e, in document
// order (outermost first, duplicates removed).
func Requests(e Expr) []RequestID {
	var out []RequestID
	seen := map[RequestID]bool{}
	Walk(e, func(x Expr) {
		if s, ok := x.(Session); ok && !seen[s.Req] {
			seen[s.Req] = true
			out = append(out, s.Req)
		}
	})
	return out
}

// Policies returns every policy identifier occurring in e (in framings or
// session annotations), duplicates removed, excluding the trivial policy.
func Policies(e Expr) []PolicyID {
	var out []PolicyID
	seen := map[PolicyID]bool{}
	add := func(p PolicyID) {
		if p != NoPolicy && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	Walk(e, func(x Expr) {
		switch t := x.(type) {
		case Session:
			add(t.Policy)
		case Framing:
			add(t.Policy)
		case CloseTag:
			add(t.Policy)
		case FrameClose:
			add(t.Policy)
		}
	})
	return out
}

// Events returns every distinct event occurring in e, in document order.
func Events(e Expr) []Event {
	var out []Event
	seen := map[string]bool{}
	Walk(e, func(x Expr) {
		if ev, ok := x.(Ev); ok {
			k := ev.Event.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, ev.Event)
			}
		}
	})
	return out
}

// Channels returns every channel name occurring in e, duplicates removed,
// in document order.
func Channels(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	Walk(e, func(x Expr) {
		var bs []Branch
		switch t := x.(type) {
		case ExtChoice:
			bs = t.Branches
		case IntChoice:
			bs = t.Branches
		}
		for _, b := range bs {
			if !seen[b.Comm.Channel] {
				seen[b.Comm.Channel] = true
				out = append(out, b.Comm.Channel)
			}
		}
	})
	return out
}

// Walk visits every node of e in pre-order, calling fn on each.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch t := e.(type) {
	case Rec:
		Walk(t.Body, fn)
	case Seq:
		Walk(t.Left, fn)
		Walk(t.Right, fn)
	case ExtChoice:
		for _, b := range t.Branches {
			Walk(b.Cont, fn)
		}
	case IntChoice:
		for _, b := range t.Branches {
			Walk(b.Cont, fn)
		}
	case Session:
		Walk(t.Body, fn)
	case Framing:
		Walk(t.Body, fn)
	}
}

// Size returns the number of AST nodes of e.
func Size(e Expr) int {
	n := 0
	Walk(e, func(Expr) { n++ })
	return n
}
