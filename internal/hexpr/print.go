package hexpr

import "strings"

// Rendering contexts, loosest construct allowed bare. They mirror the
// surface grammar of internal/parser: expr := mu | choice; choice := seq
// (('+'|'(+)') seq)*; seq := atom ('.' atom)*.
const (
	ctxTop    = iota // mu allowed bare
	ctxChoice        // multi-branch choices allowed bare
	ctxSeq           // sequences and communication prefixes allowed bare
	ctxAtom          // only atoms allowed bare
)

// Pretty returns a human-oriented rendering of e with minimal parentheses
// in the surface syntax accepted by internal/parser; for source
// expressions (no run-time residuals) the output re-parses to the same
// canonical term.
func Pretty(e Expr) string { return PrettyWith(e, nil) }

// PrettyWith renders e, mapping policy identifiers through name (when
// non-nil) — the parser's formatter uses it to print instance aliases
// instead of canonical instantiated identifiers.
func PrettyWith(e Expr, name func(PolicyID) string) string {
	p := &printer{policyName: name}
	var b strings.Builder
	p.print(&b, e, ctxTop)
	return b.String()
}

type printer struct {
	policyName func(PolicyID) string
}

func (p *printer) policy(id PolicyID) string {
	if p.policyName != nil {
		return p.policyName(id)
	}
	return string(id)
}

func (p *printer) print(b *strings.Builder, e Expr, ctx int) {
	switch t := e.(type) {
	case Nil:
		b.WriteString("eps")
	case Var:
		b.WriteString(t.Name)
	case Rec:
		if ctx > ctxTop {
			b.WriteString("(")
			defer b.WriteString(")")
		}
		b.WriteString("mu ")
		b.WriteString(t.Name)
		b.WriteString(". ")
		p.print(b, t.Body, ctxTop)
	case Ev:
		b.WriteString(t.Event.String())
		if len(t.Event.Args) == 0 {
			// disambiguate 0-ary events from recursion variables
			b.WriteString("()")
		}
	case Seq:
		if ctx > ctxSeq {
			b.WriteString("(")
			defer b.WriteString(")")
		}
		// the left of a normalised Seq is never a choice; atoms print bare,
		// recursions get parenthesised
		p.print(b, t.Left, ctxAtom)
		b.WriteString(" . ")
		p.print(b, t.Right, ctxSeq)
	case ExtChoice:
		p.printChoice(b, t.Branches, " + ", ctx)
	case IntChoice:
		p.printChoice(b, t.Branches, " (+) ", ctx)
	case Session:
		b.WriteString("open ")
		b.WriteString(string(t.Req))
		if t.Policy != NoPolicy {
			b.WriteString(" with ")
			b.WriteString(p.policy(t.Policy))
		}
		b.WriteString(" { ")
		p.print(b, t.Body, ctxTop)
		b.WriteString(" }")
	case Framing:
		b.WriteString("enforce ")
		b.WriteString(p.policy(t.Policy))
		b.WriteString(" { ")
		p.print(b, t.Body, ctxTop)
		b.WriteString(" }")
	case CloseTag:
		// run-time residual; not surface syntax
		b.WriteString("close ")
		b.WriteString(string(t.Req))
		if t.Policy != NoPolicy {
			b.WriteString(" with ")
			b.WriteString(p.policy(t.Policy))
		}
	case FrameClose:
		// run-time residual; not surface syntax
		b.WriteString("_]")
		b.WriteString(p.policy(t.Policy))
	}
}

func (p *printer) printChoice(b *strings.Builder, bs []Branch, sep string, ctx int) {
	multi := len(bs) > 1
	if (multi && ctx > ctxChoice) || (!multi && ctx > ctxSeq) {
		b.WriteString("(")
		defer b.WriteString(")")
	}
	for i, br := range bs {
		if i > 0 {
			b.WriteString(sep)
		}
		b.WriteString(br.Comm.String())
		if !IsNil(br.Cont) {
			b.WriteString(".")
			// a sequence re-parses correctly after a prefix (Cat
			// re-distributes it); recursions and choices need parentheses
			p.print(b, br.Cont, ctxSeq)
		}
	}
}
