package hexpr

import (
	"sort"
	"strings"
)

// Expr is a history expression (Definition 1). Expressions are immutable;
// all transformations build new terms. Two expressions denote the same
// process iff their Key strings are equal (Keys are canonical up to the
// structural congruence ε·H ≡ H ≡ H·ε and sorting of choice branches).
type Expr interface {
	// Key returns the canonical, fully parenthesised form of the
	// expression, used for memoisation and equality.
	Key() string
	isExpr()
}

// Nil is the terminated expression ε.
type Nil struct{}

// Var is a recursion variable h.
type Var struct{ Name string }

// Rec is the tail-recursive expression μh.H. Well-formed expressions have
// every occurrence of h guarded by a communication action (see Check).
type Rec struct {
	Name string
	Body Expr
}

// Ev is a security access event α.
type Ev struct{ Event Event }

// Seq is sequential composition H·H′.
type Seq struct{ Left, Right Expr }

// Branch is one summand of a choice: a communication prefix and its
// continuation.
type Branch struct {
	Comm Comm
	Cont Expr
}

// ExtChoice is the external choice Σᵢ aᵢ.Hᵢ, driven by the messages
// received: every branch is guarded by an input action.
type ExtChoice struct{ Branches []Branch }

// IntChoice is the internal choice ⊕ᵢ āᵢ.Hᵢ, resolved by the sender alone:
// every branch is guarded by an output action.
type IntChoice struct{ Branches []Branch }

// Session is the request open_{r,φ} H close_{r,φ}: open a session with the
// service the plan selects for r, enforce policy φ for the whole session,
// interact as H, then close. The body H is the caller's conversation with
// the invoked service.
type Session struct {
	Req    RequestID
	Policy PolicyID
	Body   Expr
}

// Framing is the security framing φ[H]: while H runs, every prefix of the
// whole execution history must respect policy φ.
type Framing struct {
	Policy PolicyID
	Body   Expr
}

// CloseTag is the residual close_{r,φ} left after a Session has fired its
// opening action (rule S-Open leaves H·close_{r,φ}). It only appears in
// run-time terms, never in source expressions.
type CloseTag struct {
	Req    RequestID
	Policy PolicyID
}

// FrameClose is the residual ⌋φ left after a Framing has fired ⌊φ (rule
// P-Open leaves H·⌋φ). It only appears in run-time terms.
type FrameClose struct{ Policy PolicyID }

func (Nil) isExpr()        {}
func (Var) isExpr()        {}
func (Rec) isExpr()        {}
func (Ev) isExpr()         {}
func (Seq) isExpr()        {}
func (ExtChoice) isExpr()  {}
func (IntChoice) isExpr()  {}
func (Session) isExpr()    {}
func (Framing) isExpr()    {}
func (CloseTag) isExpr()   {}
func (FrameClose) isExpr() {}

// Key implementations. Keys are canonical: Seq right-nested with ε units
// removed (guaranteed by the smart constructors), choice branches sorted.

func (Nil) Key() string { return "eps" }

// Var keys carry a sigil so that a variable h and a 0-ary event h have
// distinct canonical forms.
func (v Var) Key() string { return "$" + v.Name }
func (r Rec) Key() string { return "mu " + r.Name + ".(" + r.Body.Key() + ")" }
func (e Ev) Key() string  { return e.Event.String() }
func (s Seq) Key() string { return "(" + s.Left.Key() + " . " + s.Right.Key() + ")" }

func branchesKey(bs []Branch, sep string) string {
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = b.Comm.String() + ".(" + b.Cont.Key() + ")"
	}
	return "(" + strings.Join(parts, " "+sep+" ") + ")"
}

func (c ExtChoice) Key() string { return branchesKey(c.Branches, "+") }
func (c IntChoice) Key() string { return branchesKey(c.Branches, "(+)") }

func (s Session) Key() string {
	return "open[" + string(s.Req) + "," + policyName(s.Policy) + "]{" + s.Body.Key() + "}"
}
func (f Framing) Key() string { return string(f.Policy) + "[" + f.Body.Key() + "]" }
func (c CloseTag) Key() string {
	return "close[" + string(c.Req) + "," + policyName(c.Policy) + "]"
}
func (f FrameClose) Key() string { return "_]" + string(f.Policy) }

// Equal reports whether two expressions are structurally equal up to the
// canonical congruence.
func Equal(a, b Expr) bool { return a.Key() == b.Key() }

// IsNil reports whether e is the terminated expression ε.
func IsNil(e Expr) bool {
	_, ok := e.(Nil)
	return ok
}

// --- smart constructors -------------------------------------------------

// Eps is the terminated expression ε.
func Eps() Expr { return Nil{} }

// V is the recursion variable h.
func V(name string) Expr { return Var{Name: name} }

// Mu builds μh.H.
func Mu(name string, body Expr) Expr { return Rec{Name: name, Body: body} }

// Act builds the event expression α.
func Act(e Event) Expr { return Ev{Event: e} }

// Cat builds the sequential composition of the given expressions,
// normalising to a canonical form: ε units vanish, nesting is to the
// right, and a choice followed by a continuation distributes the
// continuation into its branches ((Σᵢ aᵢ.Hᵢ)·H ≡ Σᵢ aᵢ.(Hᵢ·H), and
// likewise for ⊕) — so prefixes have a single representation. Recursions,
// events, sessions and framings on the left keep the Seq node.
func Cat(es ...Expr) Expr {
	var flat []Expr
	var collect func(Expr)
	collect = func(e Expr) {
		switch t := e.(type) {
		case Nil:
		case Seq:
			collect(t.Left)
			collect(t.Right)
		default:
			flat = append(flat, e)
		}
	}
	for _, e := range es {
		collect(e)
	}
	if len(flat) == 0 {
		return Nil{}
	}
	out := flat[len(flat)-1]
	for i := len(flat) - 2; i >= 0; i-- {
		switch t := flat[i].(type) {
		case ExtChoice:
			out = Ext(distribute(t.Branches, out)...)
		case IntChoice:
			out = IntCh(distribute(t.Branches, out)...)
		default:
			out = Seq{Left: flat[i], Right: out}
		}
	}
	return out
}

func distribute(bs []Branch, rest Expr) []Branch {
	out := make([]Branch, len(bs))
	for i, b := range bs {
		out[i] = Branch{Comm: b.Comm, Cont: Cat(b.Cont, rest)}
	}
	return out
}

func sortBranches(bs []Branch) []Branch {
	out := make([]Branch, len(bs))
	copy(out, bs)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Comm.Channel != out[j].Comm.Channel {
			return out[i].Comm.Channel < out[j].Comm.Channel
		}
		return out[i].Cont.Key() < out[j].Cont.Key()
	})
	return out
}

// Ext builds the external choice Σᵢ aᵢ.Hᵢ. All guards must be inputs; this
// is checked by Check, not here.
func Ext(bs ...Branch) Expr {
	if len(bs) == 0 {
		return Nil{}
	}
	return ExtChoice{Branches: sortBranches(bs)}
}

// Int builds the internal choice ⊕ᵢ āᵢ.Hᵢ. All guards must be outputs; this
// is checked by Check, not here.
func IntCh(bs ...Branch) Expr {
	if len(bs) == 0 {
		return Nil{}
	}
	return IntChoice{Branches: sortBranches(bs)}
}

// Recv builds the single-branch external choice a.H.
func RecvThen(channel string, cont Expr) Expr {
	return Ext(Branch{Comm: In(channel), Cont: cont})
}

// SendThen builds the single-branch internal choice ā.H.
func SendThen(channel string, cont Expr) Expr {
	return IntCh(Branch{Comm: Out(channel), Cont: cont})
}

// Open builds the request open_{r,φ} body close_{r,φ}.
func Open(r RequestID, p PolicyID, body Expr) Expr {
	return Session{Req: r, Policy: p, Body: body}
}

// Frame builds the security framing φ[body].
func Frame(p PolicyID, body Expr) Expr {
	return Framing{Policy: p, Body: body}
}

// B is a convenience branch constructor.
func B(c Comm, cont Expr) Branch { return Branch{Comm: c, Cont: cont} }
