package hexpr

import (
	"math/rand"
	"strings"
	"testing"
)

func TestValueBasics(t *testing.T) {
	i := Int(45)
	s := Sym("s1")
	if !i.IsInt() || i.IntVal() != 45 {
		t.Errorf("Int(45) = %v", i)
	}
	if !s.IsSym() || s.SymVal() != "s1" {
		t.Errorf("Sym(s1) = %v", s)
	}
	if i.Equal(s) {
		t.Error("Int(45) should differ from Sym(s1)")
	}
	if i.String() != "45" || s.String() != "s1" {
		t.Errorf("String: %q %q", i, s)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(99), Sym("a"), -1},
		{Sym("a"), Int(99), 1},
		{Sym("a"), Sym("b"), -1},
		{Sym("b"), Sym("b"), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("42")
	if err != nil || !v.IsInt() || v.IntVal() != 42 {
		t.Errorf("ParseValue(42) = %v, %v", v, err)
	}
	v, err = ParseValue("s3")
	if err != nil || !v.IsSym() || v.SymVal() != "s3" {
		t.Errorf("ParseValue(s3) = %v, %v", v, err)
	}
	if _, err := ParseValue(""); err == nil {
		t.Error("ParseValue(\"\") should fail")
	}
}

func TestEventString(t *testing.T) {
	e := E("sgn", Int(3))
	if e.String() != "sgn(3)" {
		t.Errorf("got %q", e)
	}
	if E("done").String() != "done" {
		t.Errorf("got %q", E("done"))
	}
	if !e.Equal(E("sgn", Int(3))) {
		t.Error("equal events not Equal")
	}
	if e.Equal(E("sgn", Int(4))) || e.Equal(E("sgn")) || e.Equal(E("p", Int(3))) {
		t.Error("different events reported Equal")
	}
}

func TestCommCo(t *testing.T) {
	a := In("req")
	if a.Co() != Out("req") || a.Co().Co() != a {
		t.Errorf("co-action of %v wrong", a)
	}
	if a.String() != "req?" || a.Co().String() != "req!" {
		t.Errorf("strings: %q %q", a, a.Co())
	}
}

func TestCatNormalisation(t *testing.T) {
	a, b, c := Act(E("a")), Act(E("b")), Act(E("c"))
	// ε·H ≡ H ≡ H·ε
	if !Equal(Cat(Eps(), a), a) {
		t.Error("eps.a != a")
	}
	if !Equal(Cat(a, Eps()), a) {
		t.Error("a.eps != a")
	}
	if !Equal(Cat(), Eps()) {
		t.Error("empty Cat != eps")
	}
	// associativity
	if !Equal(Cat(Cat(a, b), c), Cat(a, Cat(b, c))) {
		t.Error("Cat not associative under Key")
	}
	if Cat(a, b).Key() != "(a . b)" {
		t.Errorf("key %q", Cat(a, b).Key())
	}
}

func TestChoiceCanonicalisation(t *testing.T) {
	x := Ext(B(In("b"), Eps()), B(In("a"), Eps()))
	y := Ext(B(In("a"), Eps()), B(In("b"), Eps()))
	if !Equal(x, y) {
		t.Errorf("branch order should not matter: %q vs %q", x.Key(), y.Key())
	}
	if !IsNil(Ext()) || !IsNil(IntCh()) {
		t.Error("empty choice should normalise to eps")
	}
}

func TestSubstAndUnfold(t *testing.T) {
	// μh. a!.h
	r := Mu("h", SendThen("a", V("h"))).(Rec)
	u := Unfold(r)
	want := SendThen("a", r)
	if !Equal(u, want) {
		t.Errorf("unfold = %s, want %s", u.Key(), want.Key())
	}
	// substitution stops at rebinding
	inner := Mu("h", SendThen("b", V("h")))
	e := Cat(V("h"), inner)
	got := Subst(e, "h", Act(E("x")))
	want2 := Cat(Act(E("x")), inner)
	if !Equal(got, want2) {
		t.Errorf("subst = %s, want %s", got.Key(), want2.Key())
	}
}

func TestFreeVarsClosed(t *testing.T) {
	if !Closed(Mu("h", SendThen("a", V("h")))) {
		t.Error("μh.ā.h should be closed")
	}
	if Closed(V("h")) {
		t.Error("h should not be closed")
	}
	fv := FreeVars(Cat(V("x"), Mu("y", RecvThen("a", V("y")))))
	if !fv["x"] || fv["y"] || len(fv) != 1 {
		t.Errorf("free vars = %v", fv)
	}
}

func TestRequestsPoliciesEventsChannels(t *testing.T) {
	e := Open("r1", "phi1", Cat(
		SendThen("Req", Eps()),
		Open("r2", NoPolicy, RecvThen("IdC", Eps())),
		Frame("psi", Act(E("w", Int(1)))),
	))
	reqs := Requests(e)
	if len(reqs) != 2 || reqs[0] != "r1" || reqs[1] != "r2" {
		t.Errorf("requests = %v", reqs)
	}
	pols := Policies(e)
	if len(pols) != 2 || pols[0] != "phi1" || pols[1] != "psi" {
		t.Errorf("policies = %v", pols)
	}
	evs := Events(e)
	if len(evs) != 1 || evs[0].Name != "w" {
		t.Errorf("events = %v", evs)
	}
	chs := Channels(e)
	if len(chs) != 2 || chs[0] != "Req" || chs[1] != "IdC" {
		t.Errorf("channels = %v", chs)
	}
}

func TestCheckAccepts(t *testing.T) {
	good := []Expr{
		Eps(),
		Act(E("a")),
		Mu("h", SendThen("a", V("h"))),
		Mu("h", Ext(B(In("a"), V("h")), B(In("b"), Eps()))),
		Open("r1", "phi", SendThen("Req", RecvThen("Ans", Eps()))),
		Frame("phi", Cat(Act(E("a")), Act(E("b")))),
		// recursion through a nested choice
		Mu("h", IntCh(B(Out("a"), RecvThen("b", V("h"))), B(Out("c"), Eps()))),
	}
	for _, e := range good {
		if err := Check(e); err != nil {
			t.Errorf("Check(%s) = %v, want nil", e.Key(), err)
		}
	}
}

func TestCheckRejects(t *testing.T) {
	bad := []struct {
		e      Expr
		reason string
	}{
		{V("h"), "free"},
		{Mu("h", V("h")), "unguarded"},
		{Mu("h", Cat(Act(E("a")), V("h"))), "unguarded"},
		{Mu("h", SendThen("a", Cat(V("h"), Act(E("b"))))), "non-tail"},
		{Mu("h", SendThen("a", Frame("phi", V("h")))), "non-tail"},
		{Mu("h", SendThen("a", Open("r1", "phi", V("h")))), "non-tail"},
		{ExtChoice{Branches: []Branch{{Comm: Out("a"), Cont: Nil{}}}}, "output"},
		{IntChoice{Branches: []Branch{{Comm: In("a"), Cont: Nil{}}}}, "input"},
		{Cat(Open("r1", "phi", Eps()), Open("r1", "phi", Eps())), "duplicate"},
		{CloseTag{Req: "r1"}, "residual"},
		{FrameClose{Policy: "phi"}, "residual"},
		{ExtChoice{}, "empty"},
	}
	for _, c := range bad {
		err := Check(c.e)
		if err == nil {
			t.Errorf("Check(%s) = nil, want error mentioning %q", c.e.Key(), c.reason)
			continue
		}
		if !strings.Contains(err.Error(), c.reason) {
			t.Errorf("Check(%s) = %v, want mention of %q", c.e.Key(), err, c.reason)
		}
	}
}

func TestPretty(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Eps(), "eps"},
		{Act(E("sgn", Int(1))), "sgn(1)"},
		{Cat(Act(E("a")), Act(E("b"))), "a() . b()"},
		{SendThen("a", Eps()), "a!"},
		{RecvThen("a", RecvThen("b", Eps())), "a?.b?"},
		{Ext(B(In("a"), Eps()), B(In("b"), Eps())), "a? + b?"},
		{IntCh(B(Out("a"), Eps()), B(Out("b"), Eps())), "a! (+) b!"},
		{Mu("h", SendThen("a", V("h"))), "mu h. a!.h"},
		{Open("r1", "phi", SendThen("Req", Eps())), "open r1 with phi { Req! }"},
		{Open("r3", NoPolicy, Eps()), "open r3 { eps }"},
		{Frame("phi", Act(E("a"))), "enforce phi { a() }"},
	}
	for _, c := range cases {
		if got := Pretty(c.e); got != c.want {
			t.Errorf("Pretty = %q, want %q", got, c.want)
		}
	}
}

func TestGenerateWellFormed(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	cfg := DefaultGenConfig()
	for i := 0; i < 500; i++ {
		e := Generate(rnd, cfg)
		if err := Check(e); err != nil {
			t.Fatalf("generated ill-formed expression: %v", err)
		}
	}
}

func TestGenerateContractFragment(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		e := GenerateContract(rnd, 5)
		if err := Check(e); err != nil {
			t.Fatalf("generated ill-formed contract: %v", err)
		}
		Walk(e, func(x Expr) {
			switch x.(type) {
			case Ev, Session, Framing, Seq:
				t.Fatalf("contract fragment contains %T: %s", x, e.Key())
			}
		})
	}
}

func TestKeyInjectivity(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	cfg := DefaultGenConfig()
	seen := map[string]Expr{}
	for i := 0; i < 300; i++ {
		e := Generate(rnd, cfg)
		k := e.Key()
		if old, ok := seen[k]; ok {
			// same key must round-trip to the same pretty form
			if Pretty(old) != Pretty(e) {
				t.Errorf("key collision: %q vs %q", Pretty(old), Pretty(e))
			}
		}
		seen[k] = e
	}
}

func TestSizeAndWalk(t *testing.T) {
	e := Cat(Act(E("a")), Frame("phi", Act(E("b"))))
	// Seq, Ev, Framing, Ev
	if got := Size(e); got != 4 {
		t.Errorf("Size = %d, want 4", got)
	}
}

func TestSubstClosedIsIdentity(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	cfg := DefaultGenConfig()
	for i := 0; i < 200; i++ {
		e := Generate(rnd, cfg)
		got := Subst(e, "zzz", Act(E("boom")))
		if !Equal(got, e) {
			t.Fatalf("subst of unused var changed term: %s -> %s", e.Key(), got.Key())
		}
	}
}
