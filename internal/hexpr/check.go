package hexpr

import "fmt"

// CheckKind classifies a well-formedness violation, so tools (the linter
// in particular) can react to the class of failure without matching on
// the human-readable reason.
type CheckKind int

const (
	// IllFormed is the catch-all class.
	IllFormed CheckKind = iota
	// FreeVariable: the expression has free recursion variables.
	FreeVariable
	// UnguardedRecursion: a recursion variable occurs with no
	// communication prefix between it and its binder (μh.h).
	UnguardedRecursion
	// NonTailRecursion: a recursion variable occurs outside tail position.
	NonTailRecursion
	// EmptyChoice: a choice with no branches.
	EmptyChoice
	// MixedGuards: an output guarding an external choice, or an input
	// guarding an internal one.
	MixedGuards
	// DuplicateRequest: one run may open the same request twice.
	DuplicateRequest
	// Residual: a run-time residual (close_{r,φ} or ⌋φ) in a source term.
	Residual
)

// CheckError describes a well-formedness violation of a history expression.
type CheckError struct {
	Expr   Expr
	Kind   CheckKind
	Reason string
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("hexpr: ill-formed expression %s: %s", e.Expr.Key(), e.Reason)
}

// Check verifies the syntactic restrictions Definition 1 places on source
// history expressions:
//
//   - the expression is closed;
//   - recursion is tail recursion, guarded by communication actions;
//   - internal choices are guarded by outputs, external choices by inputs;
//   - request identifiers are pairwise distinct;
//   - the run-time-only residuals close_{r,φ} and ⌋φ do not occur.
//
// These restrictions are what make the contract projection finite-state
// (see internal/contract) and hence compliance decidable.
func Check(e Expr) error {
	if !Closed(e) {
		return &CheckError{Expr: e, Kind: FreeVariable, Reason: "free recursion variables"}
	}
	if err := checkNode(e, e); err != nil {
		return err
	}
	if r, dup := duplicateRequestOnPath(e); dup {
		return &CheckError{Expr: e, Kind: DuplicateRequest, Reason: fmt.Sprintf("duplicate request identifier %q", r)}
	}
	return nil
}

// duplicateRequestOnPath finds a request identifier that two sessions of
// the same run would share. Occurrences in different branches of a choice
// are exclusive alternatives and therefore allowed (the canonicalisation
// of Cat duplicates continuations into branches); sequential or nested
// occurrences are rejected.
func duplicateRequestOnPath(e Expr) (RequestID, bool) {
	var conflict RequestID
	var found bool
	// reqs returns the identifiers some run of e may open.
	var reqs func(Expr) map[RequestID]bool
	merge := func(a, b map[RequestID]bool) map[RequestID]bool {
		if len(a) == 0 {
			return b
		}
		for r := range b {
			if a[r] && !found {
				conflict, found = r, true
			}
			a[r] = true
		}
		return a
	}
	union := func(a, b map[RequestID]bool) map[RequestID]bool {
		if len(a) == 0 {
			return b
		}
		for r := range b {
			a[r] = true
		}
		return a
	}
	reqs = func(e Expr) map[RequestID]bool {
		switch t := e.(type) {
		case Seq:
			return merge(reqs(t.Left), reqs(t.Right))
		case Rec:
			return reqs(t.Body)
		case ExtChoice:
			var out map[RequestID]bool
			for _, b := range t.Branches {
				out = union(out, reqs(b.Cont))
			}
			return out
		case IntChoice:
			var out map[RequestID]bool
			for _, b := range t.Branches {
				out = union(out, reqs(b.Cont))
			}
			return out
		case Framing:
			return reqs(t.Body)
		case Session:
			inner := reqs(t.Body)
			if inner[t.Req] && !found {
				conflict, found = t.Req, true
			}
			out := map[RequestID]bool{t.Req: true}
			return union(out, inner)
		default:
			return nil
		}
	}
	reqs(e)
	return conflict, found
}

func checkNode(root, e Expr) error {
	switch t := e.(type) {
	case Nil, Var, Ev:
		return nil
	case CloseTag:
		return &CheckError{Expr: root, Kind: Residual, Reason: "run-time residual close_{r,φ} in source term"}
	case FrameClose:
		return &CheckError{Expr: root, Kind: Residual, Reason: "run-time residual ⌋φ in source term"}
	case Seq:
		if err := checkNode(root, t.Left); err != nil {
			return err
		}
		return checkNode(root, t.Right)
	case ExtChoice:
		if len(t.Branches) == 0 {
			return &CheckError{Expr: root, Kind: EmptyChoice, Reason: "empty external choice"}
		}
		for _, b := range t.Branches {
			if b.Comm.IsSend() {
				return &CheckError{Expr: root, Kind: MixedGuards, Reason: fmt.Sprintf("output %s guards an external choice", b.Comm)}
			}
			if err := checkNode(root, b.Cont); err != nil {
				return err
			}
		}
		return nil
	case IntChoice:
		if len(t.Branches) == 0 {
			return &CheckError{Expr: root, Kind: EmptyChoice, Reason: "empty internal choice"}
		}
		for _, b := range t.Branches {
			if !b.Comm.IsSend() {
				return &CheckError{Expr: root, Kind: MixedGuards, Reason: fmt.Sprintf("input %s guards an internal choice", b.Comm)}
			}
			if err := checkNode(root, b.Cont); err != nil {
				return err
			}
		}
		return nil
	case Session:
		return checkNode(root, t.Body)
	case Framing:
		return checkNode(root, t.Body)
	case Rec:
		if err := checkRec(root, t); err != nil {
			return err
		}
		return checkNode(root, t.Body)
	}
	return &CheckError{Expr: root, Reason: "unknown node"}
}

// checkRec verifies that in μh.H every occurrence of h is (a) guarded by at
// least one communication prefix and (b) in tail position.
func checkRec(root Expr, r Rec) error {
	var visit func(e Expr, guarded, tail bool) error
	visit = func(e Expr, guarded, tail bool) error {
		switch t := e.(type) {
		case Var:
			if t.Name != r.Name {
				return nil
			}
			if !guarded {
				return &CheckError{Expr: root, Kind: UnguardedRecursion, Reason: fmt.Sprintf("unguarded recursion variable %s", r.Name)}
			}
			if !tail {
				return &CheckError{Expr: root, Kind: NonTailRecursion, Reason: fmt.Sprintf("non-tail occurrence of recursion variable %s", r.Name)}
			}
			return nil
		case Rec:
			if t.Name == r.Name {
				return nil // rebound
			}
			// A nested recursion body is its own tail context.
			return visit(t.Body, guarded, tail)
		case Seq:
			if err := visit(t.Left, guarded, false); err != nil {
				return err
			}
			// Whatever follows a subterm that necessarily performs a
			// communication before terminating is itself guarded.
			return visit(t.Right, guarded || alwaysCommunicates(t.Left), tail)
		case ExtChoice:
			for _, b := range t.Branches {
				if err := visit(b.Cont, true, tail); err != nil {
					return err
				}
			}
			return nil
		case IntChoice:
			for _, b := range t.Branches {
				if err := visit(b.Cont, true, tail); err != nil {
					return err
				}
			}
			return nil
		case Session:
			// The session close follows the body: not a tail context.
			return visit(t.Body, guarded, false)
		case Framing:
			// The frame close follows the body: not a tail context.
			return visit(t.Body, guarded, false)
		default:
			return nil
		}
	}
	return visit(r.Body, false, true)
}

// alwaysCommunicates reports whether every run of e performs at least one
// communication action before terminating — the cases relevant as guards:
// choices fire a communication immediately, and well-formed recursions have
// communication-guarded bodies.
func alwaysCommunicates(e Expr) bool {
	switch t := e.(type) {
	case ExtChoice, IntChoice:
		return true
	case Rec:
		return alwaysCommunicates(t.Body)
	case Seq:
		return alwaysCommunicates(t.Left) || alwaysCommunicates(t.Right)
	default:
		return false
	}
}
