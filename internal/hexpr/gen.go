package hexpr

import (
	"fmt"
	"math/rand"
)

// GenConfig controls random history-expression generation. Random
// expressions are used by the property-based tests and as workload
// generators for the benchmark harness.
type GenConfig struct {
	// MaxDepth bounds the nesting depth of generated terms.
	MaxDepth int
	// Channels is the alphabet of channel names.
	Channels []string
	// Events is the alphabet of event names.
	Events []string
	// Policies is the pool of policy identifiers for framings/sessions.
	Policies []PolicyID
	// MaxBranches bounds the width of generated choices (min 1).
	MaxBranches int
	// WithSessions enables generation of open_{r,φ}…close_{r,φ} subterms.
	WithSessions bool
	// WithFramings enables generation of φ[…] subterms.
	WithFramings bool
	// WithRecursion enables generation of guarded tail recursion.
	WithRecursion bool
	// ContractOnly restricts generation to the projected-contract fragment:
	// only ε, choices and guarded tail recursion (no events, sessions,
	// framings or general sequencing).
	ContractOnly bool
}

// DefaultGenConfig is a reasonable configuration for property tests.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MaxDepth:      5,
		Channels:      []string{"a", "b", "c", "d"},
		Events:        []string{"read", "write", "sgn"},
		Policies:      []PolicyID{"phi", "psi"},
		MaxBranches:   3,
		WithSessions:  true,
		WithFramings:  true,
		WithRecursion: true,
	}
}

// Generate produces a random well-formed closed history expression. The
// result always satisfies Check.
func Generate(rnd *rand.Rand, cfg GenConfig) Expr {
	g := &generator{rnd: rnd, cfg: cfg}
	e := g.expr(cfg.MaxDepth, nil, true)
	return e
}

type generator struct {
	rnd  *rand.Rand
	cfg  GenConfig
	reqs int
}

func (g *generator) channel() string {
	return g.cfg.Channels[g.rnd.Intn(len(g.cfg.Channels))]
}

func (g *generator) event() Event {
	name := g.cfg.Events[g.rnd.Intn(len(g.cfg.Events))]
	if g.rnd.Intn(2) == 0 {
		return E(name)
	}
	return E(name, Int(g.rnd.Intn(100)))
}

func (g *generator) policy() PolicyID {
	return g.cfg.Policies[g.rnd.Intn(len(g.cfg.Policies))]
}

// expr generates a term. vars is the stack of recursion variables usable in
// guarded tail position; tail reports whether the hole is a tail context.
func (g *generator) expr(depth int, vars []string, tail bool) Expr {
	if depth <= 0 {
		return Nil{}
	}
	kinds := []int{0, 1, 1, 2, 2} // eps, ext, int (choices weighted up)
	if !g.cfg.ContractOnly {
		kinds = append(kinds, 3, 4) // event, seq
		if g.cfg.WithSessions {
			kinds = append(kinds, 5)
		}
		if g.cfg.WithFramings {
			kinds = append(kinds, 6)
		}
	}
	if g.cfg.WithRecursion && tail {
		kinds = append(kinds, 7)
	}
	switch kinds[g.rnd.Intn(len(kinds))] {
	case 0:
		return Nil{}
	case 1:
		return Ext(g.branches(depth, vars, tail, Recv)...)
	case 2:
		return IntCh(g.branches(depth, vars, tail, Send)...)
	case 3:
		return Act(g.event())
	case 4:
		// The left of a sequence is not a tail context.
		return Cat(g.expr(depth-1, nil, false), g.expr(depth-1, vars, tail))
	case 5:
		g.reqs++
		return Open(RequestID(fmt.Sprintf("r%d", g.reqs)), g.policy(),
			g.expr(depth-1, nil, false))
	case 6:
		return Frame(g.policy(), g.expr(depth-1, nil, false))
	default:
		name := fmt.Sprintf("h%d", len(vars))
		body := g.recBody(depth-1, append(vars, name))
		return Mu(name, body)
	}
}

// recBody generates a body for μh.H in which h, if used, is guarded and in
// tail position: a choice whose continuations may end in a variable.
func (g *generator) recBody(depth int, vars []string) Expr {
	n := 1 + g.rnd.Intn(g.cfg.MaxBranches)
	dir := Recv
	if g.rnd.Intn(2) == 0 {
		dir = Send
	}
	bs := make([]Branch, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		ch := g.channel()
		if seen[ch] {
			continue
		}
		seen[ch] = true
		var cont Expr
		if g.rnd.Intn(2) == 0 {
			cont = Var{Name: vars[g.rnd.Intn(len(vars))]}
		} else {
			cont = g.expr(depth-1, vars, true)
		}
		bs = append(bs, Branch{Comm: Comm{Channel: ch, Dir: dir}, Cont: cont})
	}
	if dir == Send {
		return IntCh(bs...)
	}
	return Ext(bs...)
}

// branches generates choice branches with distinct channels and the given
// direction.
func (g *generator) branches(depth int, vars []string, tail bool, dir Dir) []Branch {
	n := 1 + g.rnd.Intn(g.cfg.MaxBranches)
	bs := make([]Branch, 0, n)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		ch := g.channel()
		if seen[ch] {
			continue
		}
		seen[ch] = true
		var cont Expr
		if tail && len(vars) > 0 && g.rnd.Intn(3) == 0 {
			cont = Var{Name: vars[g.rnd.Intn(len(vars))]}
		} else {
			cont = g.expr(depth-1, vars, tail)
		}
		bs = append(bs, Branch{Comm: Comm{Channel: ch, Dir: dir}, Cont: cont})
	}
	return bs
}

// GenerateContract produces a random closed expression in the contract
// fragment (choices + guarded tail recursion only), i.e. an expression H
// with H = H!.
func GenerateContract(rnd *rand.Rand, depth int) Expr {
	cfg := DefaultGenConfig()
	cfg.ContractOnly = true
	cfg.MaxDepth = depth
	return Generate(rnd, cfg)
}
