// Package hexpr defines history expressions, the behavioural abstraction of
// services in "Secure and Unfailing Services" (Basile, Degano, Ferrari).
//
// A history expression records the security-relevant events a service may
// fire, the communications it may perform, the sessions it may open with
// other services, and the security policies it activates (Definition 1 of
// the paper):
//
//	H ::= ε | h | μh.H | Σᵢ aᵢ.Hᵢ | ⊕ᵢ āᵢ.Hᵢ | α | H·H
//	    | open_{r,φ} H close_{r,φ} | φ[H]
//
// The package owns the shared vocabulary of the whole system: event
// parameter values, events α, communication actions a/ā/τ, framing actions
// ⌊φ/⌋φ, request identifiers and policy identifiers. Policies themselves
// (usage automata) live in internal/policy; here they are referred to by
// opaque instantiated identifiers, which keeps the AST independent of the
// automata machinery.
package hexpr

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a parameter of a security event: either an integer (prices,
// ratings, ...) or a symbol (service names, resource identifiers, ...).
// The zero Value is the integer 0.
type Value struct {
	sym   string
	n     int
	isSym bool
}

// Int returns an integer event parameter.
func Int(n int) Value { return Value{n: n} }

// Sym returns a symbolic event parameter.
func Sym(s string) Value { return Value{sym: s, isSym: true} }

// IsInt reports whether v is an integer parameter.
func (v Value) IsInt() bool { return !v.isSym }

// IsSym reports whether v is a symbolic parameter.
func (v Value) IsSym() bool { return v.isSym }

// IntVal returns the integer held by v; it is 0 when v is symbolic.
func (v Value) IntVal() int { return v.n }

// SymVal returns the symbol held by v; it is "" when v is an integer.
func (v Value) SymVal() string { return v.sym }

// Equal reports whether two values are identical parameters.
func (v Value) Equal(w Value) bool { return v == w }

// Compare orders values: all integers before all symbols, then by value.
// It returns -1, 0 or +1.
func (v Value) Compare(w Value) int {
	switch {
	case !v.isSym && w.isSym:
		return -1
	case v.isSym && !w.isSym:
		return 1
	case v.isSym:
		return strings.Compare(v.sym, w.sym)
	case v.n < w.n:
		return -1
	case v.n > w.n:
		return 1
	}
	return 0
}

func (v Value) String() string {
	if v.isSym {
		return v.sym
	}
	return strconv.Itoa(v.n)
}

// ParseValue interprets s as an integer if possible and as a symbol
// otherwise. Symbols must be non-empty.
func ParseValue(s string) (Value, error) {
	if s == "" {
		return Value{}, fmt.Errorf("hexpr: empty value")
	}
	if n, err := strconv.Atoi(s); err == nil {
		return Int(n), nil
	}
	return Sym(s), nil
}

// Event is a security-relevant access event α with parameters, e.g.
// sgn(3) or price(45).
type Event struct {
	Name string
	Args []Value
}

// E builds an event from a name and parameter values.
func E(name string, args ...Value) Event { return Event{Name: name, Args: args} }

// Equal reports whether two events are identical.
func (e Event) Equal(f Event) bool {
	if e.Name != f.Name || len(e.Args) != len(f.Args) {
		return false
	}
	for i := range e.Args {
		if !e.Args[i].Equal(f.Args[i]) {
			return false
		}
	}
	return true
}

func (e Event) String() string {
	if len(e.Args) == 0 {
		return e.Name
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

// RequestID identifies a service request (the r of open_{r,φ}). Request
// identifiers are unique within a client and its transitively invoked
// services.
type RequestID string

// PolicyID identifies an instantiated security policy. The empty PolicyID
// denotes the trivial policy ∅ (no constraint), as in open_{3,∅} of the
// paper's example.
type PolicyID string

// NoPolicy is the trivial policy imposed by open_{r,∅}.
const NoPolicy PolicyID = ""

// Location is the site hosting a client or a service (ℓ ∈ Loc).
type Location string
