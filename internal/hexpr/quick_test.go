package hexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genFromSeed builds a random well-formed expression from a seed, for
// testing/quick properties.
func genFromSeed(seed int64) Expr {
	return Generate(rand.New(rand.NewSource(seed)), DefaultGenConfig())
}

// TestQuickCatMonoid: Cat is a monoid with ε as unit, under canonical
// keys.
func TestQuickCatMonoid(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		a, b, c := genFromSeed(s1), genFromSeed(s2), genFromSeed(s3)
		// associativity
		if !Equal(Cat(Cat(a, b), c), Cat(a, Cat(b, c))) {
			return false
		}
		// unit laws
		return Equal(Cat(Eps(), a), a) && Equal(Cat(a, Eps()), a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickKeyDeterminism: Key is a function of the term (building the
// same term twice gives identical keys).
func TestQuickKeyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a := genFromSeed(seed)
		b := genFromSeed(seed)
		return a.Key() == b.Key() && Pretty(a) == Pretty(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubstIdempotentOnClosed: substitution is the identity on closed
// terms, for any variable and replacement.
func TestQuickSubstIdempotentOnClosed(t *testing.T) {
	f := func(s1, s2 int64, name string) bool {
		e := genFromSeed(s1)
		repl := genFromSeed(s2)
		if name == "" {
			name = "h"
		}
		return Equal(Subst(e, name, repl), e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnfoldPreservesClosedness: unfolding a closed recursion keeps
// the term closed and well-formed.
func TestQuickUnfoldPreservesClosedness(t *testing.T) {
	f := func(seed int64) bool {
		e := genFromSeed(seed)
		ok := true
		Walk(e, func(x Expr) {
			if r, isRec := x.(Rec); isRec {
				// close the subterm first: bind any outer variables
				sub := Expr(r)
				for v := range FreeVars(sub) {
					sub = Mu(v, sub)
				}
				if r2, isRec2 := sub.(Rec); isRec2 {
					u := Unfold(r2)
					if !Closed(u) {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSizePositive: every generated term has positive size and Walk
// visits exactly Size nodes.
func TestQuickSizeWalkAgree(t *testing.T) {
	f := func(seed int64) bool {
		e := genFromSeed(seed)
		n := 0
		Walk(e, func(Expr) { n++ })
		return n == Size(e) && n > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEventStringParse: event symbols round-trip through ParseValue.
func TestQuickEventValueRoundTrip(t *testing.T) {
	f := func(n int) bool {
		v := Int(n)
		parsed, err := ParseValue(v.String())
		return err == nil && parsed.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
